// Durability benchmark: what the write-ahead log costs on the publication
// path and what recovery costs at boot. Measures per-publication latency
// (KB epoch publication = template Add) in-memory vs WAL sync=interval vs
// sync=always, and data-directory recovery time against knowledge base
// size. TestEmitBenchDurabilityJSON writes BENCH_durability.json, the
// trajectory file CI uploads; it also gates the overhead claim: with
// sync=interval the WAL append is off the fsync path, so it must add no
// more than 10% to publication p50 (an epsilon absorbs timer granularity).
package galo_test

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"galo"
	"galo/internal/kb"
	"galo/internal/qgm"
	"galo/internal/workload/tpcds"
)

var durabilityFixture struct {
	once sync.Once
	err  error
	db   *galo.Database
}

// durabilityDB returns a small schema-only database; publication and
// recovery latency do not depend on table contents.
func durabilityDB(tb testing.TB) *galo.Database {
	tb.Helper()
	durabilityFixture.once.Do(func() {
		durabilityFixture.db, durabilityFixture.err =
			tpcds.Generate(tpcds.GenOptions{Seed: 7, Scale: 0.02})
	})
	if durabilityFixture.err != nil {
		tb.Fatal(durabilityFixture.err)
	}
	return durabilityFixture.db
}

// durTemplate builds a small distinct template, the unit of incremental
// epoch publication (mirrors the core test fixture).
func durTemplate(i int) *kb.Template {
	outer := &qgm.Node{Op: qgm.OpTBSCAN, Table: fmt.Sprintf("DUR_A%d", i), TableInstance: fmt.Sprintf("DUR_A%d", i), EstCardinality: 1000}
	inner := &qgm.Node{Op: qgm.OpIXSCAN, Table: fmt.Sprintf("DUR_B%d", i), TableInstance: fmt.Sprintf("DUR_B%d", i), Index: "IX", EstCardinality: 50}
	join := &qgm.Node{Op: qgm.OpHSJOIN, Outer: outer, Inner: inner, EstCardinality: 5000}
	plan := qgm.NewPlan(join)
	problem := plan.Root.Outer
	bounds := map[int]kb.Range{}
	problem.Walk(func(n *qgm.Node) {
		bounds[n.ID] = kb.Range{Lo: n.EstCardinality / 10, Hi: n.EstCardinality * 10}
	})
	return &kb.Template{
		Problem:      problem,
		Bounds:       bounds,
		GuidelineXML: "<OPTGUIDELINES><HSJOIN><TBSCAN TABID='TABLE_1'/><TBSCAN TABID='TABLE_2'/></HSJOIN></OPTGUIDELINES>",
		Improvement:  0.3,
		Structural:   true,
	}
}

// publicationRow is one publication-latency entry in BENCH_durability.json.
type publicationRow struct {
	Mode         string  `json:"mode"` // "memory", "wal-interval", "wal-always"
	Publications int     `json:"publications"`
	P50Millis    float64 `json:"publish_p50_ms"`
	P99Millis    float64 `json:"publish_p99_ms"`
	Fsyncs       uint64  `json:"fsyncs"`
}

// measurePublication times n epoch publications under cfg and returns the
// latency percentiles plus how many fsyncs the WAL issued on that path.
func measurePublication(tb testing.TB, cfg galo.Config, mode string, n int) publicationRow {
	tb.Helper()
	sys := galo.NewSystem(durabilityDB(tb), cfg)
	defer sys.Close()
	if cfg.DataDir != "" {
		if _, err := sys.OpenDataDir(); err != nil {
			tb.Fatal(err)
		}
	}
	lat := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		tmpl := durTemplate(i)
		t0 := time.Now()
		if _, err := sys.KB().Add(tmpl); err != nil {
			tb.Fatal(err)
		}
		lat = append(lat, float64(time.Since(t0).Microseconds())/1000)
	}
	row := publicationRow{
		Mode:         mode,
		Publications: n,
		P50Millis:    percentile(lat, 0.50),
		P99Millis:    percentile(lat, 0.99),
	}
	if st := sys.PersistStats(); st != nil {
		row.Fsyncs = st.Fsyncs
	}
	return row
}

// recoveryRow is one boot-recovery entry in BENCH_durability.json.
type recoveryRow struct {
	Templates       int     `json:"templates"`
	RecordsReplayed int64   `json:"records_replayed"`
	RecoveryMillis  float64 `json:"recovery_ms"`
}

// measureRecovery populates a data directory with `templates` publications
// (all on the WAL tail — below the snapshot threshold), then times a cold
// OpenDataDir over it.
func measureRecovery(tb testing.TB, templates int) recoveryRow {
	tb.Helper()
	dir := tb.TempDir()
	cfg := galo.DefaultConfig()
	cfg.Shards = 2
	cfg.DataDir = dir
	writer := galo.NewSystem(durabilityDB(tb), cfg)
	if _, err := writer.OpenDataDir(); err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < templates; i++ {
		if _, err := writer.KB().Add(durTemplate(i)); err != nil {
			tb.Fatal(err)
		}
	}
	writer.Close()

	reader := galo.NewSystem(durabilityDB(tb), cfg)
	defer reader.Close()
	t0 := time.Now()
	info, err := reader.OpenDataDir()
	if err != nil {
		tb.Fatal(err)
	}
	elapsed := time.Since(t0)
	if !info.Recovered || info.Templates != templates {
		tb.Fatalf("recovered %+v, want %d templates", info, templates)
	}
	return recoveryRow{
		Templates:       templates,
		RecordsReplayed: info.Stats.RecordsReplayed,
		RecoveryMillis:  float64(elapsed.Microseconds()) / 1000,
	}
}

// BenchmarkPublicationWALInterval reports ns/publication with the WAL on the
// default sync=interval policy (go test -bench).
func BenchmarkPublicationWALInterval(b *testing.B) {
	cfg := galo.DefaultConfig()
	cfg.Shards = 2
	cfg.DataDir = b.TempDir()
	sys := galo.NewSystem(durabilityDB(b), cfg)
	defer sys.Close()
	if _, err := sys.OpenDataDir(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.KB().Add(durTemplate(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// TestEmitBenchDurabilityJSON measures publication latency under the three
// durability modes and recovery time against knowledge base size, and
// records them in BENCH_durability.json. It only runs when GALO_BENCH_JSON=1
// (CI's benchmark job sets it) so a plain `go test ./...` stays hermetic. It
// fails when the interval-sync WAL append adds more than 10% to publication
// p50 over the in-memory baseline — the append is a buffered write off the
// fsync path, and this gate keeps it there.
func TestEmitBenchDurabilityJSON(t *testing.T) {
	if os.Getenv("GALO_BENCH_JSON") == "" {
		t.Skip("set GALO_BENCH_JSON=1 to (re)write BENCH_durability.json")
	}
	const publications = 512
	memCfg := galo.DefaultConfig()
	memCfg.Shards = 2
	intervalCfg := memCfg
	intervalCfg.DataDir = t.TempDir() // Sync zero value = interval
	alwaysCfg := memCfg
	alwaysCfg.DataDir = t.TempDir()
	alwaysCfg.Sync, _ = galo.ParseSyncPolicy("always")

	// Warm-up pass absorbs one-time costs (page cache, allocator growth)
	// before the measured comparison.
	measurePublication(t, memCfg, "warmup", 64)

	pubRows := []publicationRow{
		measurePublication(t, memCfg, "memory", publications),
		measurePublication(t, intervalCfg, "wal-interval", publications),
		measurePublication(t, alwaysCfg, "wal-always", publications),
	}
	for _, r := range pubRows {
		t.Logf("%-12s publish p50 %.3f ms, p99 %.3f ms, %d fsyncs", r.Mode, r.P50Millis, r.P99Millis, r.Fsyncs)
	}

	const epsilonMillis = 0.05 // timer granularity at microsecond scale
	mem, interval := pubRows[0], pubRows[1]
	if interval.P50Millis > 1.10*mem.P50Millis+epsilonMillis {
		t.Errorf("sync=interval publication p50 (%.3f ms) exceeds the in-memory baseline (%.3f ms) by more than 10%%",
			interval.P50Millis, mem.P50Millis)
	}

	var recRows []recoveryRow
	for _, size := range []int{64, 256, 1024} {
		r := measureRecovery(t, size)
		recRows = append(recRows, r)
		t.Logf("recovery of %4d templates: %.1f ms (%d WAL records replayed)", r.Templates, r.RecoveryMillis, r.RecordsReplayed)
	}

	doc := map[string]any{
		"benchmark":   "knowledge base durability: WAL publication overhead and boot recovery time",
		"note":        "publish_* is the latency of one epoch publication (template Add) at the knowledge base API: mode memory has no data dir; wal-interval appends to the WAL with batched fsync (the default serve policy); wal-always fsyncs every record before the publication returns. The gate: wal-interval p50 stays within 10% of memory. recovery rows time a cold OpenDataDir; records_replayed shows how background snapshot compaction bounds the replay tail as the knowledge base grows.",
		"publication": pubRows,
		"recovery":    recRows,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_durability.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote BENCH_durability.json:\n%s", data)
}
