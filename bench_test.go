// Benchmarks that regenerate every table and figure of the paper's
// evaluation (Section 4): one benchmark per experiment, built on the harness
// in internal/experiments. Each benchmark reports the figure's headline
// quantities as custom metrics (b.ReportMetric), and the galo-experiments
// command prints the full row/series data as text.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// The harness uses laptop-scale data; EXPERIMENTS.md records how the measured
// shapes compare with the numbers reported in the paper.
package galo_test

import (
	"testing"

	"galo"
	"galo/internal/executor"
	"galo/internal/experiments"
	"galo/internal/optimizer"
	"galo/internal/qgm"
	"galo/internal/workload/client"
	"galo/internal/workload/tpcds"
)

func benchConfig() experiments.Config {
	cfg := experiments.DefaultConfig()
	cfg.Scale = 0.10
	cfg.TPCDSQueries = 24
	cfg.ClientQueries = 30
	cfg.RandomPlans = 6
	cfg.Runs = 2
	cfg.Workers = 4
	return cfg
}

// --- Figure-level problem patterns (Figures 1, 4, 7, 8) ----------------------

// benchFigure learns a knowledge base from one problem query and reports the
// improvement GALO's re-optimization achieves on it, which is the content of
// the corresponding figure: the optimizer's plan versus the plan GALO finds.
func benchFigure(b *testing.B, db *galo.Database, query *galo.Query, workload string) {
	b.Helper()
	cfg := galo.DefaultConfig()
	cfg.Learning.Workload = workload
	cfg.Learning.RandomPlans = 12
	cfg.Learning.MinImprovement = 0.10
	cfg.Learning.Runs = 2
	cfg.Learning.Workers = 4
	sys := galo.NewSystem(db, cfg)
	if _, err := sys.Learn([]*galo.Query{query}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var lastImprovement float64
	for i := 0; i < b.N; i++ {
		outcomes, _, err := sys.ReoptimizeWorkload([]*galo.Query{query})
		if err != nil {
			b.Fatal(err)
		}
		lastImprovement = outcomes[0].Improvement()
	}
	b.ReportMetric(sysKBSize(sys), "templates")
	b.ReportMetric(lastImprovement*100, "%improvement")
}

func sysKBSize(sys *galo.System) float64 { return float64(sys.KB().Size()) }

// BenchmarkFig01ClientJoinRewrite regenerates Figure 1: the client workload's
// OPEN_IN / ENTRY_IDX join, comparing the problematic plan of Figure 1a (a
// merge join reading ENTRY_IDX through a spilling sort, with OPEN_IN as the
// outer) against the GALO rewrite of Figure 1b (a hash join with the inputs
// swapped). The problematic plan is constructed explicitly — our simulated
// optimizer does not repeat DB2's mistake on this query — so the benchmark
// measures the speedup the Figure 1 rewrite itself delivers.
func BenchmarkFig01ClientJoinRewrite(b *testing.B) {
	db, err := galo.GenerateClient(galo.ClientOptions{Seed: 3, Scale: 0.3, Hazards: true})
	if err != nil {
		b.Fatal(err)
	}
	q := client.Fig1Query()
	opt := optimizer.New(db.Catalog, optimizer.DefaultOptions())
	problematic, err := opt.BuildPlan(q, optimizer.Join(qgm.OpMSJOIN,
		optimizer.LeafAccess("OPEN_IN", qgm.OpIXSCAN, "OI_ENTRY_IDX"),
		optimizer.LeafAccess("ENTRY_IDX", qgm.OpTBSCAN, "")))
	if err != nil {
		b.Fatal(err)
	}
	rewritten, err := opt.BuildPlan(q, optimizer.Join(qgm.OpHSJOIN,
		optimizer.LeafAccess("ENTRY_IDX", qgm.OpTBSCAN, ""),
		optimizer.LeafAccess("OPEN_IN", qgm.OpTBSCAN, "")))
	if err != nil {
		b.Fatal(err)
	}
	ex := executor.New(db)
	b.ResetTimer()
	var before, after float64
	for i := 0; i < b.N; i++ {
		r1, err := ex.Execute(problematic, q)
		if err != nil {
			b.Fatal(err)
		}
		r2, err := ex.Execute(rewritten, q)
		if err != nil {
			b.Fatal(err)
		}
		before, after = r1.Stats.ElapsedMillis, r2.Stats.ElapsedMillis
	}
	b.ReportMetric(before, "msjoin-plan-ms")
	b.ReportMetric(after, "hsjoin-rewrite-ms")
	if after > 0 {
		b.ReportMetric(before/after, "speedup-factor")
	}
}

// BenchmarkFig04BloomFilterPattern regenerates Figure 4: the catalog_sales
// self-join star whose nested-loop / poorly-clustered-index plan GALO
// rewrites into bloom-filtered hash joins over table scans.
func BenchmarkFig04BloomFilterPattern(b *testing.B) {
	db, err := galo.GenerateTPCDS(galo.TPCDSOptions{Seed: 4, Scale: 0.12, Hazards: true})
	if err != nil {
		b.Fatal(err)
	}
	benchFigure(b, db, tpcds.Fig4Query(), "tpcds")
}

// BenchmarkFig07TransferRatePattern regenerates Figure 7: the store_sales /
// customer_demographics query whose scan costs the optimizer overestimates
// because of the configured transfer rate.
func BenchmarkFig07TransferRatePattern(b *testing.B) {
	db, err := galo.GenerateTPCDS(galo.TPCDSOptions{Seed: 7, Scale: 0.12, Hazards: true})
	if err != nil {
		b.Fatal(err)
	}
	benchFigure(b, db, tpcds.Fig7Query(), "tpcds")
}

// BenchmarkFig08SortPattern regenerates Figure 8: the store_sales / date_dim
// join over a date range far wider than the data, repaired by a merge join
// that stops early.
func BenchmarkFig08SortPattern(b *testing.B) {
	db, err := galo.GenerateTPCDS(galo.TPCDSOptions{Seed: 9, Scale: 0.12, Hazards: true})
	if err != nil {
		b.Fatal(err)
	}
	benchFigure(b, db, tpcds.Fig8Query(), "tpcds")
}

// --- Exp-1 / Figure 9: learning scalability ----------------------------------

// BenchmarkExp1LearningScalability regenerates Figure 9: offline learning
// time per query and per sub-query as the join-number threshold grows.
func BenchmarkExp1LearningScalability(b *testing.B) {
	cfg := benchConfig()
	cfg.TPCDSQueries = 16
	b.ResetTimer()
	var rows []experiments.Exp1Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RunExp1(cfg, []int{1, 2, 3, 4})
		if err != nil {
			b.Fatal(err)
		}
	}
	last := rows[len(rows)-1]
	b.ReportMetric(last.AvgMsPerQuery, "ms/query@4joins")
	b.ReportMetric(last.AvgMsPerSubQuery, "ms/subquery@4joins")
	b.ReportMetric(float64(last.TemplatesLearned), "templates")
	b.ReportMetric(last.AvgImprovement*100, "%avg-improvement")
}

// --- Exp-2 / Figure 10: matching performance improvement ---------------------

// BenchmarkExp2TPCDSImprovement regenerates Figure 10a (and the TPC-DS half
// of Exp-2): learn on the TPC-DS workload and re-optimize it.
func BenchmarkExp2TPCDSImprovement(b *testing.B) {
	cfg := benchConfig()
	b.ResetTimer()
	var res *experiments.Exp2Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunExp2(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.TPCDSSummary.Matched), "matched")
	b.ReportMetric(float64(res.TPCDSSummary.Applied), "rewritten")
	b.ReportMetric(res.TPCDSSummary.AvgImprovement*100, "%avg-improvement")
	b.ReportMetric(float64(res.TPCDSTemplates), "templates")
}

// BenchmarkExp2ClientImprovement regenerates Figure 10b and the
// cross-workload reuse count of Exp-2: the client workload re-optimized with
// its own knowledge plus the knowledge learned on TPC-DS.
func BenchmarkExp2ClientImprovement(b *testing.B) {
	cfg := benchConfig()
	b.ResetTimer()
	var res *experiments.Exp2Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunExp2(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.ClientSummary.Matched), "matched")
	b.ReportMetric(float64(res.ClientSummary.Applied), "rewritten")
	b.ReportMetric(res.ClientSummary.AvgImprovement*100, "%avg-improvement")
	b.ReportMetric(float64(res.CrossWorkloadMatches), "cross-workload-reuse")
}

// --- Exp-3 / Figure 11: matching scalability ----------------------------------

// BenchmarkExp3MatchingScalability regenerates Figure 11: knowledge base probe
// time per rewrite as the number of joined tables grows from 2 to 32.
func BenchmarkExp3MatchingScalability(b *testing.B) {
	cfg := benchConfig()
	b.ResetTimer()
	var rows []experiments.Exp3Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RunExp3(cfg, []int{2, 4, 8, 15, 24, 32})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Tables == 15 {
			b.ReportMetric(r.MatchMillisPerCall, "ms/probe@15tables")
		}
		if r.Tables == 32 {
			b.ReportMetric(r.MatchMillisPerCall, "ms/probe@32tables")
		}
	}
}

// --- Exp-4 / Figure 12: routinization ------------------------------------------

// BenchmarkExp4Routinization regenerates Figure 12: total matching time as
// the workload size and the knowledge base size grow (up to 1,000 problem
// patterns).
func BenchmarkExp4Routinization(b *testing.B) {
	cfg := benchConfig()
	b.ResetTimer()
	var rows []experiments.Exp4Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RunExp4(cfg, []int{10, 20, 40}, []int{100, 1000})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.KBTemplates >= 1000 && r.Queries == 40 {
			b.ReportMetric(r.TotalMillis/1000, "s/40queries@1000patterns")
		}
	}
}

// --- Exp-5 and Exp-6 / Figures 13 and 14: versus manual experts --------------

// BenchmarkExp5CostOfLearning regenerates Figure 13: the time to learn the
// four problem patterns manually (simulated experts) versus automatically.
func BenchmarkExp5CostOfLearning(b *testing.B) {
	cfg := benchConfig()
	b.ResetTimer()
	var rows []experiments.Exp56Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RunExp56(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	var expert, galoTime float64
	for _, r := range rows {
		expert += r.ExpertMinutes
		galoTime += r.GaloMinutes
	}
	b.ReportMetric(expert/float64(len(rows)), "expert-min/pattern")
	b.ReportMetric(galoTime/float64(len(rows)), "galo-min/pattern")
}

// BenchmarkExp6Quality regenerates Figure 14: the quality (improvement over
// the optimizer's plan) of the fixes found manually versus by GALO.
func BenchmarkExp6Quality(b *testing.B) {
	cfg := benchConfig()
	b.ResetTimer()
	var rows []experiments.Exp56Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RunExp56(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	var expert, galoImp float64
	missed := 0
	for _, r := range rows {
		expert += r.ExpertImprovement
		galoImp += r.GaloImprovement
		if !r.ExpertFoundFix {
			missed++
		}
	}
	b.ReportMetric(expert/float64(len(rows))*100, "%expert-improvement")
	b.ReportMetric(galoImp/float64(len(rows))*100, "%galo-improvement")
	b.ReportMetric(float64(missed), "patterns-expert-missed")
}

// --- Ablations (design choices called out in DESIGN.md) -----------------------

// BenchmarkAblationBoundsSlack measures how widening the learned cardinality
// bounds trades match coverage against precision, the design knob behind the
// paper's "lower and upper-bound cardinalities can be updated over time".
func BenchmarkAblationBoundsSlack(b *testing.B) {
	for _, slack := range []float64{1.5, 4, 16} {
		b.Run(slackName(slack), func(b *testing.B) {
			db, err := galo.GenerateTPCDS(galo.TPCDSOptions{Seed: 5, Scale: 0.1, Hazards: true})
			if err != nil {
				b.Fatal(err)
			}
			cfg := galo.DefaultConfig()
			cfg.Learning.BoundsSlack = slack
			cfg.Learning.Workers = 4
			cfg.Learning.Runs = 2
			sys := galo.NewSystem(db, cfg)
			workload := galo.TPCDSQueries()[8:24]
			if _, err := sys.Learn(workload); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var matched int
			for i := 0; i < b.N; i++ {
				_, summary, err := sys.ReoptimizeWorkload(workload)
				if err != nil {
					b.Fatal(err)
				}
				matched = summary.Matched
			}
			b.ReportMetric(float64(matched), "matched")
		})
	}
}

func slackName(s float64) string {
	switch {
	case s < 2:
		return "tight"
	case s < 8:
		return "default"
	default:
		return "loose"
	}
}

// BenchmarkAblationJoinThreshold measures learning cost and knowledge base
// yield as the sub-query join threshold varies — the trade-off the paper
// resolves at four joins.
func BenchmarkAblationJoinThreshold(b *testing.B) {
	for _, th := range []int{2, 4, 6} {
		b.Run(thresholdName(th), func(b *testing.B) {
			cfg := benchConfig()
			cfg.TPCDSQueries = 12
			b.ResetTimer()
			var rows []experiments.Exp1Row
			for i := 0; i < b.N; i++ {
				var err error
				rows, err = experiments.RunExp1(cfg, []int{th})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(rows[0].AvgMsPerQuery, "ms/query")
			b.ReportMetric(float64(rows[0].TemplatesLearned), "templates")
		})
	}
}

func thresholdName(th int) string {
	return map[int]string{2: "joins2", 4: "joins4", 6: "joins6"}[th]
}
