module galo

go 1.24
