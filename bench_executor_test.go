// Memory and wall-time profile of the streaming executor versus the
// materializing Volcano baseline it replaced: TestEmitBenchExecutorJSON runs
// deep pipelines (multi-join plus sort / group-by) both ways and records
// wall time and peak-resident intermediate rows in BENCH_executor.json, so
// future PRs can track the executor's memory behavior. The emit FAILS if the
// streaming path's peak residency regresses past half the materializing
// baseline — that 2x bound is the refactor's reason to exist.
package galo_test

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"galo/internal/executor"
	"galo/internal/optimizer"
	"galo/internal/qgm"
	"galo/internal/sqlparser"
	"galo/internal/storage"
	"galo/internal/workload/tpcds"
)

// benchPipeline is one deep-pipeline measurement: the same plan executed on
// the streaming and on the materializing path.
type benchPipeline struct {
	name string
	sql  string
	spec *optimizer.Spec
}

// execModeRow measures one executor mode over a pipeline: best wall time of
// several runs plus the (deterministic) simulated cost and peak residency.
type execModeRow struct {
	WallMS    float64 `json:"wall_ms"`
	SimMillis float64 `json:"sim_millis"`
	PeakRows  int64   `json:"peak_rows"`
	PeakBytes int64   `json:"peak_bytes"`
	Rows      int     `json:"rows"`
}

func runExecMode(t *testing.T, ex *executor.Executor, plan *qgm.Plan, q *sqlparser.Query) execModeRow {
	t.Helper()
	var row execModeRow
	const runs = 5
	for i := 0; i < runs; i++ {
		start := time.Now()
		res, err := ex.Execute(plan, q)
		wall := float64(time.Since(start).Microseconds()) / 1000
		if err != nil {
			t.Fatalf("Execute: %v", err)
		}
		if i == 0 || wall < row.WallMS {
			row.WallMS = wall
		}
		row.SimMillis = res.Stats.ElapsedMillis
		row.PeakRows = res.Stats.PeakIntermediateRows
		row.PeakBytes = res.Stats.PeakIntermediateBytes
		row.Rows = res.Stats.Rows
	}
	row.WallMS = round3(row.WallMS)
	row.SimMillis = round3(row.SimMillis)
	return row
}

// runParallelMode measures the streaming path at a given exchange worker
// count over the same pipeline.
func runParallelMode(t *testing.T, db *storage.Database, plan *qgm.Plan, q *sqlparser.Query, workers int) execModeRow {
	t.Helper()
	ex := executor.New(db)
	ex.Workers = workers
	return runExecMode(t, ex, plan, q)
}

// TestEmitBenchExecutorJSON writes BENCH_executor.json. Only runs when
// GALO_BENCH_JSON=1 (CI's bench-emit step sets it).
func TestEmitBenchExecutorJSON(t *testing.T) {
	if os.Getenv("GALO_BENCH_JSON") == "" {
		t.Skip("set GALO_BENCH_JSON=1 to (re)write BENCH_executor.json")
	}
	// Full laptop scale — the data volume the streaming refactor unlocked.
	db, err := tpcds.Generate(tpcds.GenOptions{Seed: 20190122, Scale: 1.0, Hazards: true})
	if err != nil {
		t.Fatal(err)
	}
	opt := optimizer.New(db.Catalog, optimizer.DefaultOptions())

	pipelines := []benchPipeline{
		{
			name: "three_way_join_sort",
			sql: `SELECT i_item_desc, ws_quantity FROM web_sales, item, date_dim
				WHERE ws_item_sk = i_item_sk AND ws_sold_date_sk = d_date_sk AND ws_quantity > 10
				ORDER BY i_item_desc`,
			spec: optimizer.Join(qgm.OpHSJOIN,
				optimizer.Join(qgm.OpHSJOIN,
					optimizer.Leaf("WEB_SALES"), optimizer.Leaf("DATE_DIM")),
				optimizer.Leaf("ITEM")),
		},
		{
			name: "three_way_join_groupby",
			sql: `SELECT i_category FROM store_sales, item, date_dim
				WHERE ss_item_sk = i_item_sk AND ss_sold_date_sk = d_date_sk AND ss_quantity > 10
				GROUP BY i_category`,
			spec: optimizer.Join(qgm.OpHSJOIN,
				optimizer.Join(qgm.OpHSJOIN,
					optimizer.Leaf("STORE_SALES"), optimizer.Leaf("DATE_DIM")),
				optimizer.Leaf("ITEM")),
		},
	}

	results := map[string]any{}
	for _, p := range pipelines {
		q := sqlparser.MustParse(p.sql)
		buildPlan := func() *qgm.Plan {
			plan, err := opt.BuildPlan(q, p.spec)
			if err != nil {
				t.Fatalf("BuildPlan %s: %v", p.name, err)
			}
			return plan
		}
		stream := runExecMode(t, executor.New(db), buildPlan(), q)
		matEx := executor.New(db)
		matEx.Materialize = true
		mat := runExecMode(t, matEx, buildPlan(), q)

		if stream.Rows == 0 {
			t.Fatalf("%s: pipeline produced no rows — not a meaningful benchmark", p.name)
		}
		if stream.Rows != mat.Rows {
			t.Fatalf("%s: row counts diverge: streaming=%d materializing=%d", p.name, stream.Rows, mat.Rows)
		}
		if stream.SimMillis <= 0 || mat.SimMillis <= 0 {
			t.Fatalf("%s: simulated cost missing", p.name)
		}
		// The refactor's gate: streaming peak residency must stay at or below
		// half the materializing baseline, or the emit fails the build.
		if stream.PeakRows*2 > mat.PeakRows {
			t.Errorf("%s: streaming peak %d rows exceeds 50%% of materializing peak %d rows",
				p.name, stream.PeakRows, mat.PeakRows)
		}
		reduction := 0.0
		if stream.PeakRows > 0 {
			reduction = float64(mat.PeakRows) / float64(stream.PeakRows)
		}
		// Parallel section: the same plan on the exchange at 1/2/4 workers.
		// Gates: simulated cost must stay bit-identical to serial streaming at
		// every worker count (the cost-parity invariant), and 4 workers must
		// halve the serial wall time on capable hardware.
		parallel := map[string]any{}
		var speedup4 float64
		for _, w := range []int{1, 2, 4} {
			pr := runParallelMode(t, db, buildPlan(), q, w)
			if pr.Rows != stream.Rows {
				t.Errorf("%s: workers=%d row count diverges: %d vs serial %d", p.name, w, pr.Rows, stream.Rows)
			}
			if pr.SimMillis != stream.SimMillis {
				t.Errorf("%s: workers=%d simulated cost %v diverges from serial %v — cost parity broken",
					p.name, w, pr.SimMillis, stream.SimMillis)
			}
			if w == 4 && pr.WallMS > 0 {
				speedup4 = stream.WallMS / pr.WallMS
			}
			parallel[fmt.Sprintf("workers_%d", w)] = pr
		}
		if runtime.NumCPU() >= 4 && speedup4 < 2 {
			t.Errorf("%s: 4-worker speedup %.2fx over serial streaming is below the 2x gate", p.name, speedup4)
		}
		parallel["speedup_at_4_workers"] = fmt.Sprintf("%.1fx", speedup4)

		results[p.name] = map[string]any{
			"streaming":          stream,
			"materializing":      mat,
			"peak_row_reduction": fmt.Sprintf("%.1fx", reduction),
			"parallel":           parallel,
		}
	}

	doc := map[string]any{
		"benchmark": "streaming executor vs materializing Volcano baseline on deep pipelines (3-way join + sort / group-by), TPC-DS-like data at scale 1.0 with hazards",
		"cpus":      runtime.NumCPU(),
		"note":      "wall_ms is the best of 5 runs; sim_millis is the deterministic simulated cost (identical across modes by the cost-parity invariant); peak_rows/peak_bytes is the high-water mark of rows resident in operator state (sort buffers, hash build sides, group sets — plus every intermediate rowset on the materializing path). The emit test fails if streaming peak_rows exceeds 50% of the materializing baseline. The parallel section runs the same plans on the exchange operator at 1/2/4 workers: sim_millis must stay bit-identical to serial streaming at every worker count, and the emit fails if 4 workers don't at least halve the serial wall time. That speedup gate only arms when the emitting machine has >= 4 CPUs (see the cpus field): exchange workers are real goroutines, so on fewer cores the parallel rows measure scheduling overhead, not speedup.",
		"pipelines": results,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_executor.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote BENCH_executor.json:\n%s", data)
}
