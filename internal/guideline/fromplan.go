package guideline

import (
	"fmt"

	"galo/internal/qgm"
)

// FromPlanNode derives the guideline element that would force the optimizer
// to reproduce the plan subtree rooted at n: join elements mirror the join
// methods and input order, access elements mirror the access methods. SORT,
// FILTER and GRPBY operators are transparent (the optimizer re-introduces
// them as needed); the guideline describes only the decisions guidelines can
// express.
func FromPlanNode(n *qgm.Node) (*Element, error) {
	if n == nil {
		return nil, fmt.Errorf("guideline: nil plan node")
	}
	switch {
	case n.Op.IsJoin():
		op := ElemHSJOIN
		switch n.Op {
		case qgm.OpNLJOIN:
			op = ElemNLJOIN
		case qgm.OpMSJOIN:
			op = ElemMSJOIN
		}
		outer, err := FromPlanNode(n.Outer)
		if err != nil {
			return nil, err
		}
		inner, err := FromPlanNode(n.Inner)
		if err != nil {
			return nil, err
		}
		return &Element{Op: op, Children: []*Element{outer, inner}}, nil
	case n.Op.IsScan():
		switch n.Op {
		case qgm.OpTBSCAN:
			return &Element{Op: ElemTBSCAN, TabID: n.TableInstance}, nil
		default: // IXSCAN or FETCH
			return &Element{Op: ElemIXSCAN, TabID: n.TableInstance, Index: n.Index}, nil
		}
	default:
		// Transparent unary operator: descend.
		if n.Outer == nil {
			return nil, fmt.Errorf("guideline: operator %s has no input to descend into", n.Op)
		}
		return FromPlanNode(n.Outer)
	}
}

// FromPlan derives a single-guideline document describing the whole plan
// below the RETURN operator.
func FromPlan(p *qgm.Plan) (*Document, error) {
	if p == nil || p.Root == nil {
		return nil, fmt.Errorf("guideline: empty plan")
	}
	root := p.Root
	if root.Op == qgm.OpRETURN {
		root = root.Outer
	}
	if root == nil {
		return nil, fmt.Errorf("guideline: plan has no operators below RETURN")
	}
	g, err := FromPlanNode(root)
	if err != nil {
		return nil, err
	}
	d := &Document{Guidelines: []*Element{g}}
	return d, d.Validate()
}
