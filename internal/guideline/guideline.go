// Package guideline implements DB2-style optimization guideline documents
// (the <OPTGUIDELINES> XML dialect shown in Figure 5 of the paper).
//
// A guideline is a partial specification of the plan the optimizer should
// build: join methods, join order (the order of child elements — outer first,
// inner second) and access methods, referencing table instances by TABID or
// tables by name. A guideline is a strong suggestion, not a command: the
// optimizer drops guidelines that become inapplicable (see
// internal/optimizer).
package guideline

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Element kinds. Join elements have exactly two children (outer, inner);
// access elements are leaves.
const (
	ElemHSJOIN = "HSJOIN"
	ElemMSJOIN = "MSJOIN"
	ElemNLJOIN = "NLJOIN"
	ElemTBSCAN = "TBSCAN"
	ElemIXSCAN = "IXSCAN"
)

// Element is one node of the guideline tree.
type Element struct {
	// Op is one of the Elem* constants.
	Op string
	// TabID references a table instance (query qualifier such as Q2).
	TabID string
	// Table references a table by fully qualified name (alternative to TabID).
	Table string
	// Index optionally names the index an IXSCAN should use.
	Index string
	// Children holds the join inputs: Children[0] is the outer input,
	// Children[1] the inner input. Access elements have no children.
	Children []*Element
}

// IsJoin reports whether the element specifies a join method.
func (e *Element) IsJoin() bool {
	return e.Op == ElemHSJOIN || e.Op == ElemMSJOIN || e.Op == ElemNLJOIN
}

// IsAccess reports whether the element specifies a table access method.
func (e *Element) IsAccess() bool {
	return e.Op == ElemTBSCAN || e.Op == ElemIXSCAN
}

// TabIDs returns the set of table instances referenced in the subtree,
// sorted.
func (e *Element) TabIDs() []string {
	seen := map[string]struct{}{}
	e.walk(func(x *Element) {
		if x.TabID != "" {
			seen[strings.ToUpper(x.TabID)] = struct{}{}
		}
	})
	out := make([]string, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

func (e *Element) walk(fn func(*Element)) {
	if e == nil {
		return
	}
	fn(e)
	for _, c := range e.Children {
		c.walk(fn)
	}
}

// Validate checks the structural rules of the guideline dialect.
func (e *Element) Validate() error {
	var err error
	e.walk(func(x *Element) {
		if err != nil {
			return
		}
		switch {
		case x.IsJoin():
			if len(x.Children) != 2 {
				err = fmt.Errorf("guideline: %s element must have exactly two children, has %d", x.Op, len(x.Children))
			}
		case x.IsAccess():
			if len(x.Children) != 0 {
				err = fmt.Errorf("guideline: %s element must be a leaf", x.Op)
			}
			if x.TabID == "" && x.Table == "" {
				err = fmt.Errorf("guideline: %s element needs a TABID or TABLE attribute", x.Op)
			}
		default:
			err = fmt.Errorf("guideline: unknown element %q", x.Op)
		}
	})
	return err
}

// Document is a complete OPTGUIDELINES document: a list of independent
// guideline trees, each constraining part of the plan.
type Document struct {
	Guidelines []*Element
}

// Empty reports whether the document carries no guidelines.
func (d *Document) Empty() bool { return d == nil || len(d.Guidelines) == 0 }

// Add appends a guideline tree to the document.
func (d *Document) Add(e *Element) { d.Guidelines = append(d.Guidelines, e) }

// Validate validates every guideline in the document.
func (d *Document) Validate() error {
	if d == nil {
		return nil
	}
	for i, g := range d.Guidelines {
		if err := g.Validate(); err != nil {
			return fmt.Errorf("guideline %d: %w", i, err)
		}
	}
	return nil
}

// TabIDs returns all table instances referenced anywhere in the document.
func (d *Document) TabIDs() []string {
	if d == nil {
		return nil
	}
	seen := map[string]struct{}{}
	for _, g := range d.Guidelines {
		for _, id := range g.TabIDs() {
			seen[id] = struct{}{}
		}
	}
	out := make([]string, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// --- XML encoding -----------------------------------------------------------

// MarshalXML encodes the element using its operator as the XML element name,
// matching the DB2 dialect.
func (e *Element) MarshalXML(enc *xml.Encoder, _ xml.StartElement) error {
	start := xml.StartElement{Name: xml.Name{Local: e.Op}}
	if e.TabID != "" {
		start.Attr = append(start.Attr, xml.Attr{Name: xml.Name{Local: "TABID"}, Value: e.TabID})
	}
	if e.Table != "" {
		start.Attr = append(start.Attr, xml.Attr{Name: xml.Name{Local: "TABLE"}, Value: e.Table})
	}
	if e.Index != "" {
		start.Attr = append(start.Attr, xml.Attr{Name: xml.Name{Local: "INDEX"}, Value: `"` + e.Index + `"`})
	}
	if err := enc.EncodeToken(start); err != nil {
		return err
	}
	for _, c := range e.Children {
		if err := c.MarshalXML(enc, xml.StartElement{}); err != nil {
			return err
		}
	}
	return enc.EncodeToken(start.End())
}

// UnmarshalXML decodes an element whose XML name is the operator.
func (e *Element) UnmarshalXML(dec *xml.Decoder, start xml.StartElement) error {
	e.Op = strings.ToUpper(start.Name.Local)
	for _, a := range start.Attr {
		v := strings.Trim(a.Value, `"`)
		switch strings.ToUpper(a.Name.Local) {
		case "TABID":
			e.TabID = v
		case "TABLE":
			e.Table = v
		case "INDEX":
			e.Index = v
		}
	}
	for {
		tok, err := dec.Token()
		if err != nil {
			return err
		}
		switch t := tok.(type) {
		case xml.StartElement:
			child := &Element{}
			if err := child.UnmarshalXML(dec, t); err != nil {
				return err
			}
			e.Children = append(e.Children, child)
		case xml.EndElement:
			return nil
		}
	}
}

// MarshalXML encodes the document as <OPTGUIDELINES>...</OPTGUIDELINES>.
func (d *Document) MarshalXML(enc *xml.Encoder, _ xml.StartElement) error {
	start := xml.StartElement{Name: xml.Name{Local: "OPTGUIDELINES"}}
	if err := enc.EncodeToken(start); err != nil {
		return err
	}
	for _, g := range d.Guidelines {
		if err := g.MarshalXML(enc, xml.StartElement{}); err != nil {
			return err
		}
	}
	return enc.EncodeToken(start.End())
}

// UnmarshalXML decodes an OPTGUIDELINES document.
func (d *Document) UnmarshalXML(dec *xml.Decoder, start xml.StartElement) error {
	if !strings.EqualFold(start.Name.Local, "OPTGUIDELINES") {
		return fmt.Errorf("guideline: expected OPTGUIDELINES root, got %s", start.Name.Local)
	}
	for {
		tok, err := dec.Token()
		if err != nil {
			return err
		}
		switch t := tok.(type) {
		case xml.StartElement:
			g := &Element{}
			if err := g.UnmarshalXML(dec, t); err != nil {
				return err
			}
			d.Guidelines = append(d.Guidelines, g)
		case xml.EndElement:
			return nil
		}
	}
}

// XML renders the document as an indented XML string.
func (d *Document) XML() (string, error) {
	var b strings.Builder
	enc := xml.NewEncoder(&b)
	enc.Indent("", "  ")
	if err := enc.Encode(d); err != nil {
		return "", err
	}
	if err := enc.Flush(); err != nil {
		return "", err
	}
	return b.String(), nil
}

// Parse decodes an OPTGUIDELINES document from XML text.
func Parse(s string) (*Document, error) {
	dec := xml.NewDecoder(strings.NewReader(s))
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			return nil, fmt.Errorf("guideline: no OPTGUIDELINES element found")
		}
		if err != nil {
			return nil, err
		}
		if start, ok := tok.(xml.StartElement); ok {
			d := &Document{}
			if err := d.UnmarshalXML(dec, start); err != nil {
				return nil, err
			}
			if err := d.Validate(); err != nil {
				return nil, err
			}
			return d, nil
		}
	}
}

// Merge combines several documents into one, de-duplicating guidelines whose
// rendered XML is identical.
func Merge(docs ...*Document) *Document {
	out := &Document{}
	seen := map[string]bool{}
	for _, d := range docs {
		if d == nil {
			continue
		}
		for _, g := range d.Guidelines {
			key := fingerprint(g)
			if seen[key] {
				continue
			}
			seen[key] = true
			out.Add(g)
		}
	}
	return out
}

func fingerprint(e *Element) string {
	var b strings.Builder
	var rec func(*Element)
	rec = func(x *Element) {
		b.WriteString(x.Op)
		b.WriteString("|")
		b.WriteString(x.TabID)
		b.WriteString("|")
		b.WriteString(x.Table)
		b.WriteString("|")
		b.WriteString(x.Index)
		b.WriteString("(")
		for _, c := range x.Children {
			rec(c)
			b.WriteString(",")
		}
		b.WriteString(")")
	}
	rec(e)
	return b.String()
}
