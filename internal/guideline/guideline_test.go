package guideline

import (
	"strings"
	"testing"

	"galo/internal/qgm"
)

// figure5Document reproduces the guideline of the paper's Figure 5.
func figure5Document() *Document {
	return &Document{Guidelines: []*Element{{
		Op: ElemHSJOIN,
		Children: []*Element{
			{Op: ElemHSJOIN, Children: []*Element{
				{Op: ElemTBSCAN, TabID: "Q2"},
				{Op: ElemHSJOIN, Children: []*Element{
					{Op: ElemTBSCAN, TabID: "Q4"},
					{Op: ElemTBSCAN, TabID: "Q1"},
				}},
			}},
			{Op: ElemIXSCAN, TabID: "Q3", Index: "D_DATE_SK"},
		},
	}}}
}

func TestFigure5XMLRoundtrip(t *testing.T) {
	doc := figure5Document()
	if err := doc.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	xmlText, err := doc.XML()
	if err != nil {
		t.Fatalf("XML: %v", err)
	}
	for _, want := range []string{"<OPTGUIDELINES>", "<HSJOIN>", `TABID="Q2"`, `TABID="Q4"`, `TABID="Q1"`,
		`<IXSCAN TABID="Q3"`, `INDEX="&#34;D_DATE_SK&#34;"`} {
		if !strings.Contains(xmlText, want) {
			t.Errorf("XML missing %q:\n%s", want, xmlText)
		}
	}
	parsed, err := Parse(xmlText)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(parsed.Guidelines) != 1 {
		t.Fatalf("parsed %d guidelines", len(parsed.Guidelines))
	}
	root := parsed.Guidelines[0]
	if root.Op != ElemHSJOIN || len(root.Children) != 2 {
		t.Fatalf("parsed root = %+v", root)
	}
	if root.Children[1].Op != ElemIXSCAN || root.Children[1].Index != "D_DATE_SK" || root.Children[1].TabID != "Q3" {
		t.Errorf("inner access = %+v", root.Children[1])
	}
	ids := parsed.Guidelines[0].TabIDs()
	if len(ids) != 4 || ids[0] != "Q1" || ids[3] != "Q4" {
		t.Errorf("TabIDs = %v", ids)
	}
}

func TestParsePaperLiteralXML(t *testing.T) {
	// The exact document from Figure 5 of the paper.
	text := `<OPTGUIDELINES>
	  <HSJOIN>
	    <HSJOIN>
	      <TBSCAN TABID='Q2'/>
	      <HSJOIN>
	        <TBSCAN TABID='Q4'/>
	        <TBSCAN TABID='Q1'/>
	      </HSJOIN>
	    </HSJOIN>
	    <IXSCAN TABID='Q3' INDEX='"D_DATE_SK"'/>
	  </HSJOIN>
	</OPTGUIDELINES>`
	doc, err := Parse(text)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	g := doc.Guidelines[0]
	if g.Op != ElemHSJOIN {
		t.Errorf("root = %s", g.Op)
	}
	// Outer child is the nested HSJOIN, inner is the IXSCAN on Q3.
	if g.Children[0].Op != ElemHSJOIN || g.Children[1].TabID != "Q3" {
		t.Errorf("child order not preserved: %+v", g.Children)
	}
	if g.Children[1].Index != "D_DATE_SK" {
		t.Errorf("index quotes not stripped: %q", g.Children[1].Index)
	}
}

func TestValidateRejectsMalformedGuidelines(t *testing.T) {
	cases := []*Element{
		{Op: ElemHSJOIN, Children: []*Element{{Op: ElemTBSCAN, TabID: "Q1"}}},                       // join with 1 child
		{Op: ElemTBSCAN},                                                                             // access without TABID/TABLE
		{Op: ElemTBSCAN, TabID: "Q1", Children: []*Element{{Op: ElemTBSCAN, TabID: "Q2"}}},           // access with child
		{Op: "MYSTERY", TabID: "Q1"},                                                                 // unknown op
		{Op: ElemNLJOIN, Children: []*Element{{Op: ElemTBSCAN, TabID: "Q1"}, {Op: "BAD"}, {Op: "X"}}}, // 3 children
	}
	for i, g := range cases {
		if err := g.Validate(); err == nil {
			t.Errorf("case %d should fail validation: %+v", i, g)
		}
	}
	if err := (&Document{Guidelines: []*Element{cases[0]}}).Validate(); err == nil {
		t.Errorf("document validation should propagate element errors")
	}
}

func TestParseErrors(t *testing.T) {
	for _, text := range []string{
		"",
		"<NOTGUIDELINES/>",
		"<OPTGUIDELINES><HSJOIN><TBSCAN TABID='Q1'/></HSJOIN></OPTGUIDELINES>", // invalid arity
		"<OPTGUIDELINES><HSJOIN>",
	} {
		if _, err := Parse(text); err == nil {
			t.Errorf("Parse(%q) should fail", text)
		}
	}
}

func TestFromPlanFigure4b(t *testing.T) {
	// Build the plan of Figure 4b and check the generated guideline matches
	// Figure 5's structure.
	q1 := &qgm.Node{Op: qgm.OpTBSCAN, Table: "CUSTOMER_ADDRESS", TableInstance: "Q1"}
	q2 := &qgm.Node{Op: qgm.OpTBSCAN, Table: "CATALOG_SALES", TableInstance: "Q2"}
	q4 := &qgm.Node{Op: qgm.OpTBSCAN, Table: "CATALOG_SALES", TableInstance: "Q4"}
	q3 := &qgm.Node{Op: qgm.OpFETCH, Table: "DATE_DIM", TableInstance: "Q3", Index: "D_DATE_SK"}
	j5 := &qgm.Node{Op: qgm.OpHSJOIN, Outer: q4, Inner: q1}
	j3 := &qgm.Node{Op: qgm.OpHSJOIN, Outer: q2, Inner: j5}
	j2 := &qgm.Node{Op: qgm.OpHSJOIN, Outer: j3, Inner: q3}
	plan := qgm.NewPlan(j2)

	doc, err := FromPlan(plan)
	if err != nil {
		t.Fatalf("FromPlan: %v", err)
	}
	xmlText, err := doc.XML()
	if err != nil {
		t.Fatalf("XML: %v", err)
	}
	wantOrder := []string{`TABID="Q2"`, `TABID="Q4"`, `TABID="Q1"`, `TABID="Q3"`}
	lastIdx := -1
	for _, w := range wantOrder {
		idx := strings.Index(xmlText, w)
		if idx < 0 {
			t.Fatalf("generated guideline missing %q:\n%s", w, xmlText)
		}
		if idx < lastIdx {
			t.Errorf("guideline child order wrong, %q appears too early:\n%s", w, xmlText)
		}
		lastIdx = idx
	}
	if !strings.Contains(xmlText, "<IXSCAN") {
		t.Errorf("FETCH should map to IXSCAN access element:\n%s", xmlText)
	}
}

func TestFromPlanSkipsTransparentOperators(t *testing.T) {
	// SORT between join and scan should not appear in the guideline.
	scan := &qgm.Node{Op: qgm.OpIXSCAN, Table: "ENTRY_IDX", TableInstance: "Q2", Index: "E_IDX"}
	sort := &qgm.Node{Op: qgm.OpSORT, Outer: scan}
	other := &qgm.Node{Op: qgm.OpIXSCAN, Table: "OPEN_IN", TableInstance: "Q1", Index: "O_IDX"}
	join := &qgm.Node{Op: qgm.OpMSJOIN, Outer: other, Inner: sort}
	doc, err := FromPlan(qgm.NewPlan(join))
	if err != nil {
		t.Fatalf("FromPlan: %v", err)
	}
	g := doc.Guidelines[0]
	if g.Op != ElemMSJOIN || g.Children[1].Op != ElemIXSCAN {
		t.Errorf("transparent SORT not skipped: %+v", g)
	}
	if _, err := FromPlan(nil); err == nil {
		t.Errorf("FromPlan(nil) should fail")
	}
	if _, err := FromPlanNode(nil); err == nil {
		t.Errorf("FromPlanNode(nil) should fail")
	}
}

func TestMergeDeduplicates(t *testing.T) {
	a := figure5Document()
	b := figure5Document()
	c := &Document{Guidelines: []*Element{{Op: ElemNLJOIN, Children: []*Element{
		{Op: ElemTBSCAN, TabID: "Q1"}, {Op: ElemTBSCAN, TabID: "Q2"},
	}}}}
	merged := Merge(a, b, c, nil)
	if len(merged.Guidelines) != 2 {
		t.Errorf("Merge produced %d guidelines, want 2", len(merged.Guidelines))
	}
	var empty *Document
	if !empty.Empty() || !(&Document{}).Empty() {
		t.Errorf("Empty() misreports")
	}
	if merged.Empty() {
		t.Errorf("merged document should not be empty")
	}
	if len(merged.TabIDs()) != 4 {
		t.Errorf("merged TabIDs = %v", merged.TabIDs())
	}
}
