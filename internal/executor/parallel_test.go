package executor

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"galo/internal/catalog"
	"galo/internal/optimizer"
	"galo/internal/qgm"
	"galo/internal/sqlparser"
	"galo/internal/storage"
)

// runWorkers executes the query on a fresh plan with the given worker count
// (0 = the serial baseline) and returns the result plus the annotated plan.
func runWorkers(t *testing.T, opt *optimizer.Optimizer, q *sqlparser.Query, spec *optimizer.Spec, workers int) (*Result, *qgm.Plan) {
	t.Helper()
	var plan *qgm.Plan
	if spec == nil {
		plan = opt.MustOptimize(q)
	} else {
		var err error
		plan, err = opt.BuildPlan(q, spec)
		if err != nil {
			t.Fatalf("BuildPlan: %v", err)
		}
	}
	ex := New(testDB)
	ex.Workers = workers
	res, err := ex.Execute(plan, q)
	if err != nil {
		t.Fatalf("Execute(workers=%d): %v", workers, err)
	}
	return res, plan
}

// rowKeys flattens rows into comparable strings.
func rowKeys(rows []storage.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		s := ""
		for _, v := range r {
			s += v.Key() + "|"
		}
		out[i] = s
	}
	return out
}

// assertSameExecution requires the parallel run to be indistinguishable from
// the serial baseline: identical rows (exact order when the segment promises
// it, multiset otherwise), bit-identical per-operator actuals, and identical
// aggregate stats including the summed ElapsedMillis — the cost-parity
// invariant at any worker count.
func assertSameExecution(t *testing.T, ser, par *Result, serPlan, parPlan *qgm.Plan, exactOrder bool, label string) {
	t.Helper()
	if !reflect.DeepEqual(ser.Columns, par.Columns) {
		t.Fatalf("%s: columns differ: %v vs %v", label, ser.Columns, par.Columns)
	}
	sKeys, pKeys := rowKeys(ser.Rows), rowKeys(par.Rows)
	if !exactOrder {
		sorted := func(rows []storage.Row) []storage.Row {
			cp := append([]storage.Row{}, rows...)
			sortRowsBy(cp)
			return cp
		}
		sKeys, pKeys = rowKeys(sorted(ser.Rows)), rowKeys(sorted(par.Rows))
	}
	if len(sKeys) != len(pKeys) {
		t.Fatalf("%s: row counts differ: serial=%d parallel=%d", label, len(sKeys), len(pKeys))
	}
	for i := range sKeys {
		if sKeys[i] != pKeys[i] {
			t.Fatalf("%s: row %d differs:\n  serial:   %s\n  parallel: %s", label, i, sKeys[i], pKeys[i])
		}
	}
	sOps, pOps := serPlan.Operators(), parPlan.Operators()
	if len(sOps) != len(pOps) {
		t.Fatalf("%s: operator counts differ", label)
	}
	for i := range sOps {
		if sOps[i].Op != pOps[i].Op {
			t.Fatalf("%s: operator %d differs: %s vs %s", label, i, sOps[i].Op, pOps[i].Op)
		}
		if sOps[i].ActMillis != pOps[i].ActMillis {
			t.Errorf("%s: %s#%d ActMillis serial=%v parallel=%v",
				label, sOps[i].Op, sOps[i].ID, sOps[i].ActMillis, pOps[i].ActMillis)
		}
		if sOps[i].ActCardinality != pOps[i].ActCardinality {
			t.Errorf("%s: %s#%d ActCardinality serial=%v parallel=%v",
				label, sOps[i].Op, sOps[i].ID, sOps[i].ActCardinality, pOps[i].ActCardinality)
		}
	}
	if ser.Stats != par.Stats {
		t.Errorf("%s: aggregate stats differ:\n  serial:   %+v\n  parallel: %+v", label, ser.Stats, par.Stats)
	}
	if serPlan.ActualMillis != parPlan.ActualMillis {
		t.Errorf("%s: plan ActualMillis serial=%v parallel=%v", label, serPlan.ActualMillis, parPlan.ActualMillis)
	}
}

// TestParallelMatchesSerialAcrossWorkerCounts is the golden parity gate of
// the exchange operator: at workers ∈ {1, 4, 8} every per-operator charge and
// the aggregate stats must be bit-identical to the serial run, and the rows
// identical (exact order whenever the segment is order-preserving).
func TestParallelMatchesSerialAcrossWorkerCounts(t *testing.T) {
	_, opt, _ := setup(t)
	join := func(outer, inner string) *optimizer.Spec {
		return optimizer.Join(qgm.OpHSJOIN, optimizer.Leaf(outer), optimizer.Leaf(inner))
	}
	cases := []struct {
		name       string
		sql        string
		spec       *optimizer.Spec
		exactOrder bool
		exchange   bool // must actually engage the exchange at workers=4
	}{
		{"join-sort", `SELECT i_item_desc, ss_quantity FROM store_sales, item
			WHERE ss_item_sk = i_item_sk AND ss_quantity > 5 ORDER BY i_item_desc`,
			join("STORE_SALES", "ITEM"), true, true},
		{"threeway-sort", `SELECT i_item_desc, ss_quantity, d_year FROM store_sales, item, date_dim
			WHERE ss_item_sk = i_item_sk AND ss_sold_date_sk = d_date_sk ORDER BY i_item_desc`,
			optimizer.Join(qgm.OpHSJOIN,
				optimizer.Join(qgm.OpHSJOIN, optimizer.Leaf("STORE_SALES"), optimizer.Leaf("ITEM")),
				optimizer.Leaf("DATE_DIM")), true, true},
		{"join-groupby", `SELECT i_category FROM store_sales, item
			WHERE ss_item_sk = i_item_sk GROUP BY i_category`,
			join("STORE_SALES", "ITEM"), true, true},
		{"join-unordered", `SELECT ss_quantity, i_current_price FROM store_sales, item
			WHERE ss_item_sk = i_item_sk AND ss_quantity > 20`,
			join("STORE_SALES", "ITEM"), false, true},
		{"ixscan-join", `SELECT ss_quantity, i_item_desc FROM store_sales, item
			WHERE ss_item_sk = i_item_sk`,
			optimizer.Join(qgm.OpHSJOIN,
				optimizer.LeafAccess("STORE_SALES", qgm.OpIXSCAN, "SS_ITEM_IDX"),
				optimizer.Leaf("ITEM")), true, true},
		// Small outer (item: below exchangeMinRows) must fall back to serial
		// and still be identical.
		{"too-small-serial-fallback", `SELECT i_item_desc, ss_quantity FROM item, store_sales
			WHERE ss_item_sk = i_item_sk ORDER BY i_item_desc`,
			join("ITEM", "STORE_SALES"), true, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			q := sqlparser.MustParse(tc.sql)
			ser, serPlan := runWorkers(t, opt, q, tc.spec, 0)
			for _, workers := range []int{1, 4, 8} {
				before := ExchangeSegmentCount()
				par, parPlan := runWorkers(t, opt, q, tc.spec, workers)
				engaged := ExchangeSegmentCount() > before
				if workers >= 4 && engaged != tc.exchange {
					t.Errorf("workers=%d: exchange engaged=%v, want %v", workers, engaged, tc.exchange)
				}
				assertSameExecution(t, ser, par, serPlan, parPlan, tc.exactOrder,
					fmt.Sprintf("workers=%d", workers))
			}
		})
	}
}

// TestParallelEarlyCloseCancelsWorkers pins cancellation: a high-multiplicity
// join (quantity ⋈ quantity fans each outer row out to dozens of matches)
// overflows the fan-in buffers so workers genuinely block mid-scan; closing
// the cursor after a few rows must stop every worker and charge only partial
// work.
func TestParallelEarlyCloseCancelsWorkers(t *testing.T) {
	_, opt, _ := setup(t)
	q := sqlparser.MustParse(`SELECT ss_net_profit FROM store_sales, catalog_sales
		WHERE ss_quantity = cs_quantity`)
	spec := optimizer.Join(qgm.OpHSJOIN, optimizer.Leaf("STORE_SALES"), optimizer.Leaf("CATALOG_SALES"))

	full, _ := runWorkers(t, opt, q, spec, 4)
	if full.Stats.Rows < 10000 {
		t.Fatalf("join not selective enough for the test: %d rows", full.Stats.Rows)
	}

	plan, err := opt.BuildPlan(q, spec)
	if err != nil {
		t.Fatal(err)
	}
	ex := New(testDB)
	ex.Workers = 4
	cur, err := ex.Open(plan, q)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, ok := cur.Next(); !ok {
			t.Fatalf("cursor exhausted after %d rows", i)
		}
	}
	cur.Close()
	if n := ExchangeWorkerCount(); n != 0 {
		t.Errorf("%d exchange workers still running after Close", n)
	}
	st := cur.Stats()
	if st.Rows != 3 {
		t.Errorf("partial Rows = %d, want 3", st.Rows)
	}
	if st.CPURows >= full.Stats.CPURows {
		t.Errorf("partial CPURows %d not below full-run %d — workers were not cancelled",
			st.CPURows, full.Stats.CPURows)
	}
	if st.ElapsedMillis >= full.Stats.ElapsedMillis {
		t.Errorf("partial elapsed %v not below full-run %v", st.ElapsedMillis, full.Stats.ElapsedMillis)
	}
}

// TestConcurrentCursorsShareOneExecutor runs many concurrent executions of
// the same plan shape (each on its own Plan clone — plans carry per-run
// actuals) against a single parallel executor; run under -race this is the
// thread-safety gate for the exchange, the shared LIKE cache and the build
// path.
func TestConcurrentCursorsShareOneExecutor(t *testing.T) {
	_, opt, _ := setup(t)
	q := sqlparser.MustParse(`SELECT i_item_desc, ss_quantity FROM store_sales, item
		WHERE ss_item_sk = i_item_sk AND i_item_desc LIKE '%item%' ORDER BY i_item_desc`)
	spec := optimizer.Join(qgm.OpHSJOIN, optimizer.Leaf("STORE_SALES"), optimizer.Leaf("ITEM"))
	base, err := opt.BuildPlan(q, spec)
	if err != nil {
		t.Fatal(err)
	}
	ref, refPlan := runWorkers(t, opt, q, spec, 0)

	ex := New(testDB)
	ex.Workers = 4
	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			plan := base.Clone()
			res, err := ex.Execute(plan, q)
			if err != nil {
				errs <- fmt.Sprintf("Execute: %v", err)
				return
			}
			if len(res.Rows) != len(ref.Rows) {
				errs <- fmt.Sprintf("rows = %d, want %d", len(res.Rows), len(ref.Rows))
				return
			}
			if res.Stats.ElapsedMillis != ref.Stats.ElapsedMillis {
				errs <- fmt.Sprintf("elapsed = %v, want %v", res.Stats.ElapsedMillis, ref.Stats.ElapsedMillis)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	_ = refPlan
}

// TestParallelHashBuildMatchesSerial pins the partitioned build: identical
// match chains (content and insertion order) to the single-map build, on both
// the single-column fastKey index and the multi-column string index.
func TestParallelHashBuildMatchesSerial(t *testing.T) {
	const n = 8192 // ≥ parallelBuildMinRows
	rows := make([]storage.Row, n)
	for i := range rows {
		rows[i] = storage.Row{
			catalog.Int(int64(i % 97)),
			catalog.String(fmt.Sprintf("g%d", i%13)),
			catalog.Int(int64(i)),
		}
	}
	probeRow := func(k int64, g string) storage.Row {
		return storage.Row{catalog.Int(k), catalog.String(g)}
	}
	cases := []struct {
		name string
		key  joinKey
	}{
		{"single-column", joinKey{outerPos: []int{0}, innerPos: []int{0}}},
		{"multi-column", joinKey{outerPos: []int{0, 1}, innerPos: []int{0, 1}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			serial := newHashBuild(rows, tc.key, 3, 1, float64(n))
			parallel := newHashBuild(rows, tc.key, 3, 4, float64(n))
			if tc.name == "single-column" && len(parallel.single) != 4 {
				t.Fatalf("parallel build not partitioned: %d partitions", len(parallel.single))
			}
			if tc.name == "multi-column" && len(parallel.multi) != 4 {
				t.Fatalf("parallel build not partitioned: %d partitions", len(parallel.multi))
			}
			var kb1, kb2 strings.Builder
			for k := int64(-1); k < 100; k++ {
				for _, g := range []string{"g0", "g5", "nope"} {
					probe := probeRow(k, g)
					sm := serial.matches(probe, &kb1)
					pm := parallel.matches(probe, &kb2)
					if len(sm) != len(pm) {
						t.Fatalf("probe (%d,%s): serial %d matches, parallel %d", k, g, len(sm), len(pm))
					}
					for i := range sm {
						if !reflect.DeepEqual(sm[i], pm[i]) {
							t.Fatalf("probe (%d,%s): match %d differs (insertion order lost)", k, g, i)
						}
					}
				}
			}
		})
	}
}

// TestSplitRangeContiguousCover pins the partitioning primitive: contiguous,
// in-order, complete, and never more parts than rows.
func TestSplitRangeContiguousCover(t *testing.T) {
	cases := []struct{ lo, hi, parts int }{
		{0, 10, 3}, {0, 10, 1}, {0, 10, 16}, {5, 5, 4}, {7, 2048, 8}, {0, 1, 8},
	}
	for _, c := range cases {
		parts := storage.SplitRange(c.lo, c.hi, c.parts)
		if len(parts) == 0 {
			t.Fatalf("SplitRange(%d,%d,%d) returned no parts", c.lo, c.hi, c.parts)
		}
		if parts[0][0] != c.lo || parts[len(parts)-1][1] != c.hi {
			t.Errorf("SplitRange(%d,%d,%d) does not cover the range: %v", c.lo, c.hi, c.parts, parts)
		}
		for i := 1; i < len(parts); i++ {
			if parts[i][0] != parts[i-1][1] {
				t.Errorf("SplitRange(%d,%d,%d) not contiguous: %v", c.lo, c.hi, c.parts, parts)
			}
		}
		if c.hi > c.lo && len(parts) > c.hi-c.lo {
			t.Errorf("SplitRange(%d,%d,%d): more parts than elements: %v", c.lo, c.hi, c.parts, parts)
		}
	}
}

// TestLikeCacheBoundedUnderConcurrency hammers the process-wide LIKE pattern
// cache from many goroutines with more distinct patterns than its capacity:
// it must stay bounded, stay correct, and (under -race) stay safe.
func TestLikeCacheBoundedUnderConcurrency(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				pat := fmt.Sprintf("val%%%d_%d", g, i)
				re := likeCache.get(pat)
				if re == nil {
					t.Errorf("pattern %q failed to compile", pat)
					return
				}
				if !re.MatchString(fmt.Sprintf("valXYZ%d_%d", g, i)) {
					t.Errorf("pattern %q did not match its own expansion", pat)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if n := likeCache.size(); n > likeCacheCap {
		t.Errorf("LIKE cache grew to %d entries, cap is %d", n, likeCacheCap)
	}
}
