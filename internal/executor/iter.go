package executor

import (
	"fmt"
	"strings"

	"galo/internal/catalog"
	"galo/internal/qgm"
	"galo/internal/sqlparser"
	"galo/internal/storage"
)

// rowIter is the pull iterator every streaming operator implements.
//
// The contract: Next returns the next output row, or false once the operator
// is exhausted — at which point the operator has charged its simulated cost
// (from the row counts it actually processed, through the same formulas the
// optimizer used at plan time) and released any buffered state. Close stops
// the operator early: it closes the children, charges the partial work done
// so far, and is idempotent. Rows handed out must not be mutated by callers;
// they may alias base-table storage.
type rowIter interface {
	Next() (storage.Row, bool)
	Close()
}

// open builds the iterator pipeline for the subtree rooted at node and
// returns it with its output column layout. All plan validation (unknown
// tables, missing indexes) happens here, before the first row flows.
func (c *execContext) open(node *qgm.Node) (rowIter, []string, error) {
	if c.workers > 1 {
		// Try to run this subtree as a parallel exchange segment; shapes
		// that don't qualify fall through to the serial operators (whose
		// children get their own chance to qualify).
		it, cols, ok, err := c.openParallel(node)
		if err != nil {
			return nil, nil, err
		}
		if ok {
			return it, cols, nil
		}
	}
	switch {
	case node.Op == qgm.OpRETURN:
		child, cols, err := c.open(node.Outer)
		if err != nil {
			return nil, nil, err
		}
		return &passIter{ctx: c, node: node, child: child, cpuFactor: 0.1}, cols, nil
	case node.Op == qgm.OpFILTER:
		child, cols, err := c.open(node.Outer)
		if err != nil {
			return nil, nil, err
		}
		return &passIter{ctx: c, node: node, child: child, cpuFactor: 0.2}, cols, nil
	case node.Op.IsScan():
		return c.openScan(node)
	case node.Op.IsJoin():
		return c.openJoin(node)
	case node.Op == qgm.OpSORT:
		child, cols, err := c.open(node.Outer)
		if err != nil {
			return nil, nil, err
		}
		return &sortIter{ctx: c, node: node, child: child, cols: cols, keyIdx: c.sortKey(node, cols)}, cols, nil
	case node.Op == qgm.OpGRPBY:
		child, cols, err := c.open(node.Outer)
		if err != nil {
			return nil, nil, err
		}
		keyIdx := make([]int, 0, len(c.query.GroupBy))
		for _, k := range c.query.GroupBy {
			inst := c.refToInst[strings.ToUpper(k.Table)]
			if p := colPos(cols, inst+"."+k.Column); p >= 0 {
				keyIdx = append(keyIdx, p)
			}
		}
		return &groupByIter{ctx: c, node: node, child: child, keyIdx: keyIdx, seen: map[string]struct{}{}}, cols, nil
	default:
		return nil, nil, fmt.Errorf("executor: unsupported operator %s", node.Op)
	}
}

// sortKey resolves the column positions a SORT orders by: the query's ORDER
// BY columns present in the input, overridden by the node's single-column
// order property when it names a different leading column (a SORT feeding a
// merge join establishes the merge column's order).
func (c *execContext) sortKey(node *qgm.Node, cols []string) []int {
	orderByIdx := make([]int, 0, len(c.query.OrderBy))
	for _, k := range c.query.OrderBy {
		inst := c.refToInst[strings.ToUpper(k.Table)]
		if p := colPos(cols, inst+"."+k.Column); p >= 0 {
			orderByIdx = append(orderByIdx, p)
		}
	}
	idx := orderByIdx
	if node.OrderedOn != "" {
		if p := colPos(cols, node.OrderedOn); p >= 0 && (len(orderByIdx) == 0 || orderByIdx[0] != p) {
			idx = []int{p}
		}
	}
	return idx
}

// --- pass-through operators (RETURN, FILTER) ---------------------------------

// passIter counts rows through and charges rows*CPUSpeed*cpuFactor at the
// end, matching the materializing path's RETURN/FILTER charges.
type passIter struct {
	ctx       *execContext
	node      *qgm.Node
	child     rowIter
	cpuFactor float64
	n         int
	charged   bool
	closed    bool
}

func (p *passIter) Next() (storage.Row, bool) {
	row, ok := p.child.Next()
	if !ok {
		p.finalize()
		return nil, false
	}
	p.n++
	return row, true
}

func (p *passIter) finalize() {
	if p.charged {
		return
	}
	p.charged = true
	p.ctx.charge(p.node, float64(p.n)*p.ctx.cfg.CPUSpeed*p.cpuFactor, p.n)
}

func (p *passIter) Close() {
	if p.closed {
		return
	}
	p.closed = true
	p.child.Close()
	p.finalize()
}

// --- scans -------------------------------------------------------------------

func (c *execContext) openScan(node *qgm.Node) (rowIter, []string, error) {
	refName := c.instToRef[node.TableInstance]
	if refName == "" {
		return nil, nil, fmt.Errorf("executor: plan instance %s not present in query", node.TableInstance)
	}
	table := c.exec.DB.Table(node.Table)
	if table == nil {
		return nil, nil, fmt.Errorf("executor: unknown table %s", node.Table)
	}
	preds := sqlparser.PredicatesFor(c.query, refName)
	cols := scanColumns(node.TableInstance, table.Def)
	tablePages := float64(c.exec.DB.Pages(node.Table))
	tableRows := float64(len(table.Rows))

	switch node.Op {
	case qgm.OpTBSCAN:
		it := &tbscanIter{
			ctx: c, node: node, table: table, preds: preds,
			snap: table.Rows, limit: len(table.Rows),
			tablePages: tablePages, tableRows: tableRows,
		}
		if reg := c.exec.shared; reg != nil && c.exec.ShareScans && len(table.Rows) >= sharedScanMinRows {
			it.reg = reg
			snap, feed := reg.attach(table)
			if feed != nil {
				// Joined a shared pass: serve the feed first, then wrap
				// around to cover [0, attachPos) privately.
				it.snap, it.feed = snap, feed
				it.pos, it.limit = 0, 0
			} else {
				it.regPrivate = true
			}
		}
		return it, cols, nil
	case qgm.OpIXSCAN, qgm.OpFETCH:
		idxDef := table.Def.IndexByName(node.Index)
		if idxDef == nil {
			return nil, nil, fmt.Errorf("executor: table %s has no index %s", node.Table, node.Index)
		}
		idx := c.exec.DB.Index(node.Table, idxDef.Name)
		it := &ixscanIter{
			ctx: c, node: node, table: table, preds: preds, idxDef: idxDef,
			tablePages: tablePages, tableRows: tableRows,
			rowsPerPage: float64(c.exec.DB.RowsPerPage(node.Table)),
		}
		if idx != nil {
			it.entries = idx.Entries
			it.pos, it.end = indexBounds(idx, idxDef.Columns[0], preds)
		}
		return it, cols, nil
	}
	return nil, nil, fmt.Errorf("executor: unsupported scan %s", node.Op)
}

// indexBounds resolves the entry range an index access touches, pushing the
// first sargable predicate on the index's leading column into the B-tree
// positioning instead of materializing a candidate row-ID list.
func indexBounds(idx *storage.IndexData, lead string, preds []sqlparser.Predicate) (start, end int) {
	for _, p := range preds {
		if !strings.EqualFold(p.Left.Column, lead) {
			continue
		}
		switch {
		case p.Kind == sqlparser.PredCompare && p.Op == "=":
			return idx.PositionsEqual(p.Value)
		case p.Kind == sqlparser.PredCompare && (p.Op == ">" || p.Op == ">="):
			v := p.Value
			return idx.PositionsRange(&v, nil)
		case p.Kind == sqlparser.PredCompare && (p.Op == "<" || p.Op == "<="):
			v := p.Value
			return idx.PositionsRange(nil, &v)
		case p.Kind == sqlparser.PredBetween && !p.Not:
			lo, hi := p.Lo, p.Hi
			return idx.PositionsRange(&lo, &hi)
		}
	}
	// No sargable predicate: the access touches every entry (in index order).
	return 0, idx.Len()
}

// tbscanIter streams a full table scan, filtering each row before it leaves
// the operator (predicate pushdown: non-matching rows never enter the
// pipeline). Under Executor.ShareScans it may source rows from a shared
// producer pass instead of reading the snapshot itself: the feed delivers
// [attachPos, end), then the iterator wraps to cover [0, attachPos)
// privately — every snapshot row exactly once, so counts and charges are
// identical to a private scan; only the row order rotates.
type tbscanIter struct {
	ctx   *execContext
	node  *qgm.Node
	table *storage.Table
	preds []sqlparser.Predicate

	snap       []storage.Row // pinned snapshot (shared passes read the same one)
	pos, limit int           // current private range [pos, limit)
	wrapEnd    int           // after the private range, continue over [0, wrapEnd)
	wrapped    bool

	reg        *scanRegistry
	regPrivate bool
	feed       *scanFeed
	feedBatch  []storage.Row
	fi         int

	nScan, nOut           int
	tablePages, tableRows float64
	charged, closed       bool
}

func (s *tbscanIter) Next() (storage.Row, bool) {
	for {
		row, ok := s.nextRaw()
		if !ok {
			s.finalize()
			return nil, false
		}
		s.nScan++
		if s.ctx.rowMatches(s.table.Def, row, s.preds) {
			s.nOut++
			return row, true
		}
	}
}

// nextRaw produces the next unfiltered snapshot row: feed batches while the
// shared producer is ahead of us, then the private ranges. A blocking feed
// receive is safe — the producer goroutine always runs to completion and
// closes every attached channel (detaching consumers it cannot keep fed).
func (s *tbscanIter) nextRaw() (storage.Row, bool) {
	if f := s.feed; f != nil {
		for {
			if s.fi < len(s.feedBatch) {
				row := s.feedBatch[s.fi]
				s.fi++
				return row, true
			}
			batch, ok := <-f.ch
			if !ok {
				// Producer finished (or detached us): read the undelivered
				// tail privately, then wrap to the prefix we attached after.
				s.pos, s.limit, s.wrapEnd = f.resume, len(s.snap), f.start
				s.feed, s.feedBatch = nil, nil
				break
			}
			s.feedBatch, s.fi = batch, 0
		}
	}
	for {
		if s.pos < s.limit {
			row := s.snap[s.pos]
			s.pos++
			return row, true
		}
		if s.wrapped || s.wrapEnd == 0 {
			return nil, false
		}
		s.wrapped = true
		s.pos, s.limit = 0, s.wrapEnd
	}
}

// finalize charges the scan for the fraction of the table actually read —
// the full tbscanCost formula when the scan was drained, a proportional
// slice when a bounded consumer stopped it early.
func (s *tbscanIter) finalize() {
	if s.charged {
		return
	}
	s.charged = true
	s.ctx.chargeTBScan(s.node, s.nScan, s.nOut, s.tablePages, s.tableRows)
	if s.reg != nil {
		s.reg.detach(s.table, s.feed, s.regPrivate)
		s.reg, s.feed, s.regPrivate = nil, nil, false
	}
}

func (s *tbscanIter) Close() {
	if s.closed {
		return
	}
	s.closed = true
	s.finalize()
}

// ixscanIter streams an index (or fetch-through-index) access: candidates
// come straight from the index's entry range — no row-ID list is ever
// materialized — and residual predicates filter each row before it leaves.
type ixscanIter struct {
	ctx    *execContext
	node   *qgm.Node
	table  *storage.Table
	preds  []sqlparser.Predicate
	idxDef *catalog.Index

	entries                            []storage.IndexEntry
	pos, end                           int
	nCand, nOut                        int
	tablePages, tableRows, rowsPerPage float64
	charged, closed                    bool
}

func (s *ixscanIter) Next() (storage.Row, bool) {
	for s.pos < s.end {
		e := s.entries[s.pos]
		s.pos++
		s.nCand++
		row := s.table.Rows[e.RowID]
		if s.ctx.rowMatches(s.table.Def, row, s.preds) {
			s.nOut++
			return row, true
		}
	}
	s.finalize()
	return nil, false
}

// finalize mirrors ixscanCost over the candidate entries actually touched.
func (s *ixscanIter) finalize() {
	if s.charged {
		return
	}
	s.charged = true
	s.ctx.chargeIXScan(s.node, s.idxDef, s.nCand, s.nOut, s.tablePages, s.tableRows, s.rowsPerPage)
}

func (s *ixscanIter) Close() {
	if s.closed {
		return
	}
	s.closed = true
	s.finalize()
}

// --- sort --------------------------------------------------------------------

// sortIter is a pipeline breaker: the first Next drains the child into a
// buffer (held in the intermediate accounting), sorts it, and charges the
// sort; rows then stream out of the buffer.
type sortIter struct {
	ctx    *execContext
	node   *qgm.Node
	child  rowIter
	cols   []string
	keyIdx []int

	rows      []storage.Row
	pos       int
	heldBytes int64
	sorted    bool
	closed    bool
}

func (s *sortIter) Next() (storage.Row, bool) {
	if !s.sorted {
		s.buffer()
	}
	if s.pos < len(s.rows) {
		row := s.rows[s.pos]
		s.pos++
		return row, true
	}
	return nil, false
}

func (s *sortIter) buffer() {
	s.sorted = true
	s.rows = make([]storage.Row, 0, presizeHint(s.node.Outer.EstCardinality))
	for {
		row, ok := s.child.Next()
		if !ok {
			break
		}
		s.rows = append(s.rows, row)
	}
	s.child.Close()
	if len(s.keyIdx) > 0 {
		sortStableBy(s.rows, s.keyIdx)
	}
	var sample storage.Row
	if len(s.rows) > 0 {
		sample = s.rows[0]
	}
	width := rowWidthOf(sample, len(s.cols))
	s.heldBytes = int64(width) * int64(len(s.rows))
	s.ctx.hold(len(s.rows), s.heldBytes)
	rows := float64(len(s.rows))
	s.ctx.charge(s.node, s.ctx.sortMillis(rows, width), len(s.rows))
}

func (s *sortIter) Close() {
	if s.closed {
		return
	}
	s.closed = true
	s.child.Close()
	if s.sorted {
		s.ctx.release(len(s.rows), s.heldBytes)
		s.rows = nil
	}
}

// --- group-by ----------------------------------------------------------------

// groupByIter streams distinct group keys in first-seen order. Only the key
// set is retained (held in the intermediate accounting) — group rows
// themselves flow straight through.
type groupByIter struct {
	ctx    *execContext
	node   *qgm.Node
	child  rowIter
	keyIdx []int
	seen   map[string]struct{}

	nIn, nOut       int
	heldBytes       int64
	key             strings.Builder
	charged, closed bool
}

func (g *groupByIter) Next() (storage.Row, bool) {
	for {
		row, ok := g.child.Next()
		if !ok {
			g.finalize()
			return nil, false
		}
		g.nIn++
		g.key.Reset()
		for _, p := range g.keyIdx {
			g.key.WriteString(row[p].Key())
			g.key.WriteByte('|')
		}
		k := g.key.String()
		if _, dup := g.seen[k]; dup {
			continue
		}
		g.seen[k] = struct{}{}
		g.ctx.hold(1, int64(len(k)))
		g.heldBytes += int64(len(k))
		g.nOut++
		return row, true
	}
}

func (g *groupByIter) finalize() {
	if g.charged {
		return
	}
	g.charged = true
	g.ctx.charge(g.node, float64(g.nIn)*g.ctx.cfg.CPUSpeed, g.nOut)
}

func (g *groupByIter) Close() {
	if g.closed {
		return
	}
	g.closed = true
	g.child.Close()
	g.finalize()
	g.ctx.release(g.nOut, g.heldBytes)
	g.seen = nil
}

// --- materialized-rowset adapter ---------------------------------------------

// rowsetIter serves an already-materialized rowset (the Materialize baseline
// path behind the Cursor API).
type rowsetIter struct {
	ctx    *execContext
	rs     *rowset
	pos    int
	closed bool
}

func (r *rowsetIter) Next() (storage.Row, bool) {
	if r.pos < len(r.rs.rows) {
		row := r.rs.rows[r.pos]
		r.pos++
		return row, true
	}
	return nil, false
}

func (r *rowsetIter) Close() {
	if r.closed {
		return
	}
	r.closed = true
	r.ctx.releaseRowset(r.rs)
}
