package executor

import (
	"math"

	"galo/internal/catalog"
	"galo/internal/qgm"
	"galo/internal/storage"
)

// This file centralizes the actual-cost charge formulas. Each operator's
// simulated charge is computed from the row counts it actually processed,
// through the same formulas the optimizer used at plan time (the PR 2
// cost-parity invariant). The serial iterators call these at exhaustion; the
// exchange operator calls the very same functions over counts summed across
// its workers — integer totals fed through one formula evaluation, in the
// serial pipeline's charge order, which is what makes per-operator ActMillis
// bit-identical at any worker count.

// chargeTBScan charges a table scan for the fraction of the table actually
// read: the full tbscanCost formula when drained, a proportional slice when a
// bounded consumer stopped it early.
func (c *execContext) chargeTBScan(node *qgm.Node, nScan, nOut int, tablePages, tableRows float64) {
	frac := 1.0
	if tableRows > 0 {
		frac = float64(nScan) / tableRows
	}
	pages := tablePages * frac
	c.stats.LogicalReads += int64(pages)
	c.stats.PhysicalReads += int64(pages)
	c.stats.CPURows += int64(nScan)
	c.charge(node, pages*c.rt()+float64(nScan)*c.cfg.CPUSpeed, nOut)
}

// chargeIXScan mirrors ixscanCost over the candidate entries actually
// touched (nCand), including the FETCH row-access terms.
func (c *execContext) chargeIXScan(node *qgm.Node, idxDef *catalog.Index, nCand, nOut int, tablePages, tableRows, rowsPerPage float64) {
	matchRows := float64(nCand)
	leafPages := math.Max(tableRows/300, 1)
	frac := matchRows / math.Max(tableRows, 1)
	// Mirrors ixscanCost: the B-tree dive only pays a full random I/O when
	// the table exceeds the buffer pool.
	dive := c.cfg.Overhead
	if tablePages <= float64(c.cfg.BufferPoolPages) {
		dive = c.cfg.Overhead * 0.1
	}
	millis := dive + leafPages*frac*c.rt() + matchRows*c.cfg.CPUSpeed*0.5
	c.stats.LogicalReads += int64(leafPages * frac)
	c.stats.CPURows += int64(matchRows)
	if node.Op == qgm.OpFETCH {
		clustered := matchRows * idxDef.ClusterRatio
		unclustered := matchRows * (1 - idxDef.ClusterRatio)
		randomIO := c.cfg.Overhead
		if tablePages <= float64(c.cfg.BufferPoolPages) {
			randomIO = c.rt() * 0.25
		}
		millis += (clustered/math.Max(rowsPerPage, 1))*c.rt() + unclustered*randomIO + matchRows*c.cfg.CPUSpeed
		c.stats.PhysicalReads += int64(unclustered) + int64(clustered/math.Max(rowsPerPage, 1))
		c.stats.LogicalReads += int64(matchRows)
	}
	c.charge(node, millis, nOut)
}

// joinActuals carries the processed-row truth one join operator observed —
// whether from a serial joinIter or summed over exchange workers.
type joinActuals struct {
	outerRows, outRows int
	innerRows          int
	// outerSample / innerSample are the first rows that entered each side
	// (nil when none did); they size the spill-branch page estimates. The
	// exchange picks the sample from the lowest-indexed partition that
	// produced one, which is exactly the serial first row.
	outerSample, innerSample storage.Row
	nOuterCols, nInnerCols   int
	// MSJOIN early-out: how many outer rows a merge join would have read
	// before passing the largest inner key.
	trackEarlyOut bool
	nProcessed    int
}

// chargeJoin charges one join operator's simulated cost from the row counts
// actually processed, through the same formulas the optimizer used at plan
// time.
func (c *execContext) chargeJoin(node *qgm.Node, a joinActuals) {
	outerRows := float64(a.outerRows)
	innerRows := float64(a.innerRows)
	outRows := float64(a.outRows)
	cpu := c.cfg.CPUSpeed

	switch node.Op {
	case qgm.OpHSJOIN:
		probeFactor := 1.0
		if node.BloomFilter {
			probeFactor = 0.6
		}
		millis := innerRows*cpu*2 + outerRows*cpu*probeFactor + outRows*cpu*0.1
		buildPages := pagesOf(c.cfg, innerRows, rowWidthOf(a.innerSample, a.nInnerCols))
		if buildPages > float64(c.cfg.SortHeapPages) {
			spill := buildPages
			outerPages := pagesOf(c.cfg, outerRows, rowWidthOf(a.outerSample, a.nOuterCols))
			if node.BloomFilter {
				outerPages *= 0.5
			}
			spill += outerPages
			millis += 2 * spill * c.rt()
			c.stats.SortSpillPages += int64(spill)
			c.stats.PhysicalReads += int64(spill)
		}
		c.stats.CPURows += int64(innerRows + outerRows)
		c.charge(node, millis, a.outRows)

	case qgm.OpNLJOIN:
		matchedPerProbe := 0.0
		if outerRows > 0 {
			matchedPerProbe = outRows / outerRows
		}
		perProbe := c.nlProbeMillis(node.Inner, matchedPerProbe, innerRows)
		millis := outerRows*perProbe + outRows*cpu
		c.stats.CPURows += int64(outerRows)
		c.charge(node, millis, a.outRows)

	case qgm.OpMSJOIN:
		// A merge join over sorted inputs can stop reading the outer as soon
		// as its key exceeds the largest inner key (the Figure 8 early-out).
		outerProcessed := outerRows
		if a.trackEarlyOut {
			outerProcessed = float64(a.nProcessed) + 1
			if outerProcessed > outerRows {
				outerProcessed = outerRows
			}
		}
		if innerRows == 0 {
			outerProcessed = 1
		}
		// Same formula as the optimizer's msjoinCost, over actual row counts:
		// a single interleaved pass over pre-sorted inputs.
		millis := (outerProcessed+innerRows)*cpu*0.5 + outRows*cpu*0.1
		c.stats.CPURows += int64(outerProcessed + innerRows)
		c.charge(node, millis, a.outRows)
	}
}
