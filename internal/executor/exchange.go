package executor

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"galo/internal/catalog"
	"galo/internal/qgm"
	"galo/internal/sqlparser"
	"galo/internal/storage"
)

// The exchange operator: intra-query parallelism on the rowIter contract.
//
// A qualifying pipeline segment — a TBSCAN/IXSCAN/FETCH leaf, the
// FILTER/HSJOIN spine above it, and an optional terminal SORT or GRPBY — runs
// as one exchange: the scan's row (or index-entry) range is split into
// contiguous partitions, one worker goroutine drives each partition through a
// replica of the spine (probing shared hash builds drained once on the
// consumer thread), and the consumer merges. Merging preserves the serial row
// order when it matters: partition-order concatenation reproduces an ordered
// scan exactly, worker-local sorts plus a stable lowest-partition-first merge
// reproduce the terminal SORT's sort.SliceStable output exactly, and
// partition-order global deduplication reproduces the terminal GRPBY's
// first-seen rows exactly. Segments with neither an order property nor a
// terminal breaker use unordered fan-in: the row multiset is deterministic,
// the interleaving is not.
//
// The cost-parity invariant survives at any worker count because workers only
// accumulate integer row counters; at exhaustion the consumer sums them and
// feeds the totals through the shared charge formulas (charges.go) in the
// exact order the serial pipeline fires them — build subtrees topmost-first,
// then the scan, then the spine bottom-up, then the terminal. One float
// evaluation per operator over identical integers ⇒ bit-identical ActMillis.
//
// Early Close propagates cancellation: workers observe a done channel on
// every send and a cancel flag every 1024 scan rows, the consumer waits for
// them to exit, then charges the partial counts — the same proportional
// charging a serial pipeline does when cut short.

const (
	// exchangeMinRows is the smallest partition source worth parallelizing.
	exchangeMinRows = 2048
	// exchangeBatchRows is the fan-in granularity; row-at-a-time channel
	// sends would drown the speedup in synchronization.
	exchangeBatchRows = 256
	// exchangeChanDepth bounds the batches buffered per partition stream, so
	// a fast worker cannot run unboundedly ahead of the consumer.
	exchangeChanDepth = 8
)

// exchangeWorkers counts live exchange worker goroutines process-wide; tests
// assert it returns to zero after early Close. exchangeSegments counts
// segments that actually started (parallelism engaged, not just requested).
var (
	exchangeWorkers  atomic.Int64
	exchangeSegments atomic.Int64
)

// ExchangeWorkerCount reports the number of currently running exchange
// worker goroutines (test and /stats instrumentation).
func ExchangeWorkerCount() int64 { return exchangeWorkers.Load() }

// ExchangeSegmentCount reports the cumulative number of exchange segments
// started process-wide (test and /stats instrumentation).
func ExchangeSegmentCount() int64 { return exchangeSegments.Load() }

type termKind int

const (
	termNone termKind = iota
	termSort
	termGrpBy
)

type segLevelKind int

const (
	levelFilter segLevelKind = iota
	levelJoin
)

// segLevel is one spine operator every worker replicates.
type segLevel struct {
	kind segLevelKind
	node *qgm.Node

	// join levels only:
	key        joinKey
	innerIter  rowIter // opened at plan time, drained in start()
	build      *hashBuild
	nOuterCols int // width of this level's input layout
	nInnerCols int
}

// segScan is the partitioned leaf access.
type segScan struct {
	node  *qgm.Node
	table *storage.Table
	preds []sqlparser.Predicate

	rows    []storage.Row       // TBSCAN source
	entries []storage.IndexEntry // IXSCAN/FETCH source
	idxDef  *catalog.Index
	lo, hi  int // candidate range (row or entry positions)

	tablePages, tableRows, rowsPerPage float64
}

type segment struct {
	scan     *segScan
	levels   []*segLevel // bottom-up
	term     termKind
	termNode *qgm.Node
	sortKey  []int
	grpKey   []int
	cols     []string
}

// openParallel tries to open node as an exchange segment. ok=false means the
// shape does not qualify and the caller should build serial operators.
func (c *execContext) openParallel(node *qgm.Node) (rowIter, []string, bool, error) {
	term, termNode, cur := termNone, (*qgm.Node)(nil), node
	switch node.Op {
	case qgm.OpSORT:
		term, termNode, cur = termSort, node, node.Outer
	case qgm.OpGRPBY:
		term, termNode, cur = termGrpBy, node, node.Outer
	}
	var chain []*qgm.Node // top-down spine
	nJoins := 0
walk:
	for {
		if cur == nil {
			return nil, nil, false, nil
		}
		switch cur.Op {
		case qgm.OpFILTER:
			chain = append(chain, cur)
			cur = cur.Outer
		case qgm.OpHSJOIN:
			chain = append(chain, cur)
			nJoins++
			cur = cur.Outer
		case qgm.OpTBSCAN, qgm.OpIXSCAN, qgm.OpFETCH:
			break walk
		default:
			// NLJOIN/MSJOIN (and anything else) break the segment; their
			// subtrees get their own qualification attempts.
			return nil, nil, false, nil
		}
	}
	// A bare unordered scan gains nothing from fan-in (and would make plain
	// result order nondeterministic for free): require a join, a terminal
	// breaker, or an ordered scan worth preserving in parallel.
	if nJoins == 0 && term == termNone && cur.OrderedOn == "" {
		return nil, nil, false, nil
	}
	sc, cols, err := c.resolveSegScan(cur)
	if err != nil {
		return nil, nil, false, err
	}
	if sc.hi-sc.lo < exchangeMinRows {
		return nil, nil, false, nil
	}

	seg := &segment{scan: sc, term: term, termNode: termNode}
	closeOpened := func() {
		for _, lv := range seg.levels {
			if lv.kind == levelJoin {
				lv.innerIter.Close()
			}
		}
	}
	for i := len(chain) - 1; i >= 0; i-- { // bottom-up
		n := chain[i]
		if n.Op == qgm.OpFILTER {
			seg.levels = append(seg.levels, &segLevel{kind: levelFilter, node: n})
			continue
		}
		// Build sides are drained serially on the consumer thread (start(),
		// topmost first — the serial nested-build order), so exchange never
		// nests into a build subtree and build insertion order stays
		// deterministic.
		innerIter, innerCols, err := c.openSerial(n.Inner)
		if err != nil {
			closeOpened()
			return nil, nil, false, err
		}
		key, _ := c.joinKeys(n, cols, innerCols)
		seg.levels = append(seg.levels, &segLevel{
			kind: levelJoin, node: n, key: key, innerIter: innerIter,
			nOuterCols: len(cols), nInnerCols: len(innerCols),
		})
		cols = append(append([]string{}, cols...), innerCols...)
	}
	seg.cols = cols
	switch term {
	case termSort:
		seg.sortKey = c.sortKey(termNode, cols)
	case termGrpBy:
		for _, k := range c.query.GroupBy {
			inst := c.refToInst[strings.ToUpper(k.Table)]
			if p := colPos(cols, inst+"."+k.Column); p >= 0 {
				seg.grpKey = append(seg.grpKey, p)
			}
		}
	}
	ex := &exchangeIter{
		ctx: c, seg: seg,
		// Partition-order delivery when the serial row order is observable:
		// an ordered scan, or a terminal breaker whose exact output we
		// reproduce. Everything else is unordered fan-in.
		ordered: sc.node.OrderedOn != "" || term != termNone,
	}
	return ex, cols, true, nil
}

// openSerial opens a subtree with the exchange disabled (build sides must
// drain deterministically).
func (c *execContext) openSerial(n *qgm.Node) (rowIter, []string, error) {
	saved := c.workers
	c.workers = 1
	defer func() { c.workers = saved }()
	return c.open(n)
}

func (c *execContext) resolveSegScan(node *qgm.Node) (*segScan, []string, error) {
	refName := c.instToRef[node.TableInstance]
	if refName == "" {
		return nil, nil, fmt.Errorf("executor: plan instance %s not present in query", node.TableInstance)
	}
	table := c.exec.DB.Table(node.Table)
	if table == nil {
		return nil, nil, fmt.Errorf("executor: unknown table %s", node.Table)
	}
	preds := sqlparser.PredicatesFor(c.query, refName)
	cols := scanColumns(node.TableInstance, table.Def)
	sc := &segScan{
		node: node, table: table, preds: preds,
		tablePages: float64(c.exec.DB.Pages(node.Table)),
		tableRows:  float64(len(table.Rows)),
	}
	if node.Op == qgm.OpTBSCAN {
		sc.rows = table.Rows
		sc.hi = len(table.Rows)
		return sc, cols, nil
	}
	idxDef := table.Def.IndexByName(node.Index)
	if idxDef == nil {
		return nil, nil, fmt.Errorf("executor: table %s has no index %s", node.Table, node.Index)
	}
	sc.idxDef = idxDef
	sc.rowsPerPage = float64(c.exec.DB.RowsPerPage(node.Table))
	if idx := c.exec.DB.Index(node.Table, idxDef.Name); idx != nil {
		sc.entries = idx.Entries
		sc.lo, sc.hi = indexBounds(idx, idxDef.Columns[0], preds)
	}
	return sc, cols, nil
}

// levelTotals is one spine level's counters summed across workers.
type levelTotals struct {
	nIn, nOut int
	sample    storage.Row
}

// exchangeIter is the consumer side of the exchange.
type exchangeIter struct {
	ctx     *execContext
	seg     *segment
	ordered bool

	started   bool
	cancelled atomic.Bool
	done      chan struct{}
	wg        sync.WaitGroup
	workers   []*segWorker
	fanin     chan []storage.Row // unordered mode

	batch []storage.Row
	bi    int
	part  int // next partition stream to drain (ordered mode)

	// terminal SORT merge state
	merged        bool
	bufs          [][]storage.Row
	heads         []int
	sortHeldRows  int
	sortHeldBytes int64

	// terminal GRPBY state
	seen         map[string]struct{}
	keyB         strings.Builder
	grpOut       int
	grpHeldBytes int64

	harvested  bool
	scanNScan  int
	scanNOut   int
	grpNIn     int
	lvTotals   []levelTotals
	upCharged  bool
	grpCharged bool

	finished, closed bool
}

// segWorker drives one contiguous partition through the spine.
type segWorker struct {
	ex     *exchangeIter
	id     int
	lo, hi int
	ch     chan []storage.Row

	batch     []storage.Row
	kb        strings.Builder
	sortBuf   []storage.Row
	localSeen map[string]struct{}

	// Counters; read by the consumer only after wg.Wait (happens-before).
	scanNScan, scanNOut int
	grpNIn              int
	lv                  []workerLevelCounters
}

// workerLevelCounters is one worker's per-level bookkeeping.
type workerLevelCounters struct {
	nIn, nOut int
	sample    storage.Row
}

func (e *exchangeIter) start() {
	e.started = true
	exchangeSegments.Add(1)
	e.done = make(chan struct{})
	// Drain build sides on the consumer thread, topmost level first — the
	// exact order serial nested buildInner calls fire — so build-subtree
	// charges, insertion order and samples are identical to serial.
	for i := len(e.seg.levels) - 1; i >= 0; i-- {
		lv := e.seg.levels[i]
		if lv.kind != levelJoin {
			continue
		}
		lv.build = e.ctx.drainBuild(lv.innerIter, lv.node.Inner, lv.key, lv.nInnerCols)
	}
	parts := storage.SplitRange(e.seg.scan.lo, e.seg.scan.hi, e.ctx.workers)
	e.workers = make([]*segWorker, len(parts))
	if !e.ordered {
		e.fanin = make(chan []storage.Row, exchangeChanDepth*len(parts))
	}
	if e.seg.term == termGrpBy {
		e.seen = make(map[string]struct{})
	}
	for i, p := range parts {
		w := &segWorker{ex: e, id: i, lo: p[0], hi: p[1]}
		w.lv = make([]workerLevelCounters, len(e.seg.levels))
		if e.ordered {
			w.ch = make(chan []storage.Row, exchangeChanDepth)
		}
		if e.seg.term == termGrpBy {
			w.localSeen = make(map[string]struct{})
		}
		e.workers[i] = w
	}
	for _, w := range e.workers {
		e.wg.Add(1)
		go w.main()
	}
	if !e.ordered {
		go func() {
			e.wg.Wait()
			close(e.fanin)
		}()
	}
}

func (e *exchangeIter) Next() (storage.Row, bool) {
	if e.finished {
		return nil, false
	}
	if !e.started {
		e.start()
	}
	switch e.seg.term {
	case termSort:
		if !e.merged {
			e.collectSorted()
		}
		row, ok := e.mergeNext()
		if !ok {
			e.finished = true
		}
		return row, ok
	case termGrpBy:
		for {
			row, ok := e.nextRaw()
			if !ok {
				e.finished = true
				e.finalizeCharges()
				return nil, false
			}
			k := groupKeyOf(row, e.seg.grpKey, &e.keyB)
			if _, dup := e.seen[k]; dup {
				continue
			}
			e.seen[k] = struct{}{}
			e.ctx.hold(1, int64(len(k)))
			e.grpHeldBytes += int64(len(k))
			e.grpOut++
			return row, true
		}
	default:
		row, ok := e.nextRaw()
		if !ok {
			e.finished = true
			e.finalizeCharges()
		}
		return row, ok
	}
}

// nextRaw serves the next merged spine-output row: partition streams drained
// in order (ordered mode) or the shared fan-in channel (unordered).
func (e *exchangeIter) nextRaw() (storage.Row, bool) {
	for {
		if e.bi < len(e.batch) {
			row := e.batch[e.bi]
			e.bi++
			return row, true
		}
		if e.ordered {
			if e.part >= len(e.workers) {
				return nil, false
			}
			batch, ok := <-e.workers[e.part].ch
			if !ok {
				e.part++
				continue
			}
			e.batch, e.bi = batch, 0
		} else {
			batch, ok := <-e.fanin
			if !ok {
				return nil, false
			}
			e.batch, e.bi = batch, 0
		}
	}
}

// collectSorted gathers every worker's locally sorted buffer, charges the
// whole segment (the serial sortIter charges at buffer time, before any row
// streams out), and arms the merge.
func (e *exchangeIter) collectSorted() {
	e.merged = true
	e.bufs = make([][]storage.Row, len(e.workers))
	for i, w := range e.workers {
		if buf, ok := <-w.ch; ok {
			e.bufs[i] = buf
		}
	}
	e.wg.Wait()
	e.harvest()
	e.chargeUpstream()
	// The serial pipeline releases its build sides when the sort closes its
	// drained child — before the sort buffer is held. Matching that chronology
	// keeps the peak-residency accounting identical to serial.
	for _, lv := range e.seg.levels {
		if lv.kind == levelJoin && lv.build != nil {
			lv.build.release(e.ctx)
			lv.build = nil
		}
	}
	e.heads = make([]int, len(e.bufs))
	total := 0
	for _, b := range e.bufs {
		total += len(b)
	}
	// The serial sort samples its first post-sort row for the width — the
	// global minimum, which the merge's first pick reproduces exactly.
	var sample storage.Row
	if row, ok := e.peekMin(); ok {
		sample = row
	}
	width := rowWidthOf(sample, len(e.seg.cols))
	e.sortHeldRows = total
	e.sortHeldBytes = int64(width) * int64(total)
	e.ctx.hold(total, e.sortHeldBytes)
	e.ctx.charge(e.seg.termNode, e.ctx.sortMillis(float64(total), width), total)
}

// peekMin returns the smallest head row across partitions without consuming
// it (ties resolve to the lowest partition — the stable-merge rule).
func (e *exchangeIter) peekMin() (storage.Row, bool) {
	best := -1
	for i, b := range e.bufs {
		if e.heads[i] >= len(b) {
			continue
		}
		if best < 0 || lessRows(b[e.heads[i]], e.bufs[best][e.heads[best]], e.seg.sortKey) {
			best = i
		}
	}
	if best < 0 {
		return nil, false
	}
	return e.bufs[best][e.heads[best]], true
}

func (e *exchangeIter) mergeNext() (storage.Row, bool) {
	best := -1
	for i, b := range e.bufs {
		if e.heads[i] >= len(b) {
			continue
		}
		if best < 0 || lessRows(b[e.heads[i]], e.bufs[best][e.heads[best]], e.seg.sortKey) {
			best = i
		}
	}
	if best < 0 {
		return nil, false
	}
	row := e.bufs[best][e.heads[best]]
	e.heads[best]++
	return row, true
}

// lessRows compares two rows on the sort key columns; false on equal keys,
// so an ascending partition sweep keeps the stable (lowest-partition-first)
// order — exactly sort.SliceStable over the concatenated partitions.
func lessRows(a, b storage.Row, keyIdx []int) bool {
	for _, p := range keyIdx {
		if cmp := catalog.Compare(a[p], b[p]); cmp != 0 {
			return cmp < 0
		}
	}
	return false
}

// harvest sums worker counters (workers have exited; partition order makes
// the sample picks deterministic).
func (e *exchangeIter) harvest() {
	if e.harvested {
		return
	}
	e.harvested = true
	e.lvTotals = make([]levelTotals, len(e.seg.levels))
	for _, w := range e.workers {
		e.scanNScan += w.scanNScan
		e.scanNOut += w.scanNOut
		e.grpNIn += w.grpNIn
		for li := range e.lvTotals {
			e.lvTotals[li].nIn += w.lv[li].nIn
			e.lvTotals[li].nOut += w.lv[li].nOut
			if e.lvTotals[li].sample == nil && w.lv[li].sample != nil {
				e.lvTotals[li].sample = w.lv[li].sample
			}
		}
	}
}

// chargeUpstream charges the scan and every spine level from the summed
// counters, in the serial pipeline's order: scan first (it exhausts first),
// then the spine bottom-up.
func (e *exchangeIter) chargeUpstream() {
	if e.upCharged {
		return
	}
	e.upCharged = true
	c := e.ctx
	sc := e.seg.scan
	if sc.node.Op == qgm.OpTBSCAN {
		c.chargeTBScan(sc.node, e.scanNScan, e.scanNOut, sc.tablePages, sc.tableRows)
	} else {
		c.chargeIXScan(sc.node, sc.idxDef, e.scanNScan, e.scanNOut, sc.tablePages, sc.tableRows, sc.rowsPerPage)
	}
	for li, lv := range e.seg.levels {
		t := e.lvTotals[li]
		if lv.kind == levelFilter {
			// Same charge the serial passIter(FILTER) computes.
			c.charge(lv.node, float64(t.nIn)*c.cfg.CPUSpeed*0.2, t.nIn)
			continue
		}
		c.chargeJoin(lv.node, joinActuals{
			outerRows: t.nIn, innerRows: len(lv.build.rows), outRows: t.nOut,
			outerSample: t.sample, innerSample: lv.build.sample(),
			nOuterCols: lv.nOuterCols, nInnerCols: lv.nInnerCols,
		})
	}
}

// finalizeCharges fires at exhaustion of the non-sort paths (the sort path
// charges in collectSorted): upstream first, then the terminal GRPBY —
// mirroring the serial order where the child pipeline finalizes inside the
// last groupByIter.Next.
func (e *exchangeIter) finalizeCharges() {
	e.harvest()
	e.chargeUpstream()
	if e.seg.term == termGrpBy && !e.grpCharged {
		e.grpCharged = true
		e.ctx.charge(e.seg.termNode, float64(e.grpNIn)*e.ctx.cfg.CPUSpeed, e.grpOut)
	}
}

func (e *exchangeIter) Close() {
	if e.closed {
		return
	}
	e.closed = true
	e.finished = true
	if e.started {
		e.cancelled.Store(true)
		close(e.done)
		e.wg.Wait()
	} else {
		// Never ran: close the un-drained build subtrees (charging their
		// zero work, as a closed serial pipeline would).
		for _, lv := range e.seg.levels {
			if lv.kind == levelJoin && lv.build == nil {
				lv.innerIter.Close()
			}
		}
	}
	e.finalizeCharges()
	for _, lv := range e.seg.levels {
		if lv.kind == levelJoin && lv.build != nil {
			lv.build.release(e.ctx)
			lv.build = nil
		}
	}
	if e.merged {
		e.ctx.release(e.sortHeldRows, e.sortHeldBytes)
		e.bufs = nil
	}
	if e.grpHeldBytes > 0 || e.grpOut > 0 {
		e.ctx.release(e.grpOut, e.grpHeldBytes)
		e.seen = nil
	}
}

// --- worker side -------------------------------------------------------------

func (w *segWorker) main() {
	exchangeWorkers.Add(1)
	// Deferred calls run LIFO: the counter must hit zero before wg.Done
	// releases a Close() waiting on the group, so tests observing
	// ExchangeWorkerCount()==0 after Close are exact, not eventual.
	defer w.ex.wg.Done()
	defer exchangeWorkers.Add(-1)
	ok := w.scanPartition()
	if w.ex.seg.term == termSort {
		if ok {
			w.sortLocal()
			select {
			case w.ch <- w.sortBuf:
			case <-w.ex.done:
			}
		}
		close(w.ch)
		return
	}
	if ok {
		w.flush()
	}
	if w.ex.ordered {
		close(w.ch)
	}
}

// scanPartition drives the partition's rows through the spine; false when
// cancelled.
func (w *segWorker) scanPartition() bool {
	sc := w.ex.seg.scan
	ctx := w.ex.ctx
	if sc.node.Op == qgm.OpTBSCAN {
		for i := w.lo; i < w.hi; i++ {
			if i&1023 == 0 && w.ex.cancelled.Load() {
				return false
			}
			row := sc.rows[i]
			w.scanNScan++
			if !ctx.rowMatches(sc.table.Def, row, sc.preds) {
				continue
			}
			w.scanNOut++
			if !w.feed(0, row) {
				return false
			}
		}
		return true
	}
	for i := w.lo; i < w.hi; i++ {
		if i&1023 == 0 && w.ex.cancelled.Load() {
			return false
		}
		row := sc.table.Rows[sc.entries[i].RowID]
		w.scanNScan++
		if !ctx.rowMatches(sc.table.Def, row, sc.preds) {
			continue
		}
		w.scanNOut++
		if !w.feed(0, row) {
			return false
		}
	}
	return true
}

// feed pushes one row through spine level li and everything above it.
func (w *segWorker) feed(li int, row storage.Row) bool {
	levels := w.ex.seg.levels
	if li == len(levels) {
		return w.emit(row)
	}
	lv := levels[li]
	cnt := &w.lv[li]
	cnt.nIn++
	if cnt.sample == nil {
		cnt.sample = row
	}
	if lv.kind == levelFilter {
		cnt.nOut++
		return w.feed(li+1, row)
	}
	for _, irow := range lv.build.matches(row, &w.kb) {
		cnt.nOut++
		if !w.feed(li+1, concatRows(row, irow)) {
			return false
		}
	}
	return true
}

// emit hands a spine-output row to the terminal: buffered for the local
// sort, locally deduplicated for GRPBY (the consumer dedupes globally), or
// batched straight out.
func (w *segWorker) emit(row storage.Row) bool {
	switch w.ex.seg.term {
	case termSort:
		w.sortBuf = append(w.sortBuf, row)
		return true
	case termGrpBy:
		w.grpNIn++
		k := groupKeyOf(row, w.ex.seg.grpKey, &w.kb)
		if _, dup := w.localSeen[k]; dup {
			return true
		}
		w.localSeen[k] = struct{}{}
	}
	w.batch = append(w.batch, row)
	if len(w.batch) >= exchangeBatchRows {
		return w.flush()
	}
	return true
}

func (w *segWorker) flush() bool {
	if len(w.batch) == 0 {
		return true
	}
	batch := w.batch
	w.batch = make([]storage.Row, 0, exchangeBatchRows)
	out := w.ch
	if !w.ex.ordered {
		out = w.ex.fanin
	}
	select {
	case out <- batch:
		return true
	case <-w.ex.done:
		return false
	}
}

// sortLocal stable-sorts the partition buffer; partition-local stable order
// plus the stable merge equals the serial global stable sort.
func (w *segWorker) sortLocal() {
	keyIdx := w.ex.seg.sortKey
	if len(keyIdx) == 0 {
		return
	}
	sortStableBy(w.sortBuf, keyIdx)
}

// sortStableBy stable-sorts rows on the key columns — the one comparison the
// serial sortIter, the materializing matSort and the exchange workers all
// share, so their orders agree row for row.
func sortStableBy(rows []storage.Row, keyIdx []int) {
	sort.SliceStable(rows, func(i, j int) bool {
		for _, p := range keyIdx {
			if cmp := catalog.Compare(rows[i][p], rows[j][p]); cmp != 0 {
				return cmp < 0
			}
		}
		return false
	})
}

// groupKeyOf serializes the group-by key columns (shared between workers'
// local dedupe and the consumer's global dedupe — the key strings must be
// identical).
func groupKeyOf(row storage.Row, keyIdx []int, kb *strings.Builder) string {
	kb.Reset()
	for _, p := range keyIdx {
		kb.WriteString(row[p].Key())
		kb.WriteByte('|')
	}
	return kb.String()
}
