package executor

import (
	"testing"
	"time"

	"galo/internal/catalog"
	"galo/internal/optimizer"
	"galo/internal/qgm"
	"galo/internal/sqlparser"
	"galo/internal/storage"
)

// TestSharedScanIdenticalCountsAndCharges pins the shared-scan contract: a
// consumer that joins a shared pass sees every snapshot row exactly once and
// charges exactly what a private scan charges — only the row order may rotate
// by the attach position.
func TestSharedScanIdenticalCountsAndCharges(t *testing.T) {
	_, opt, _ := setup(t)
	q := sqlparser.MustParse(`SELECT ss_net_profit, ss_quantity FROM store_sales WHERE ss_quantity >= 0`)
	spec := optimizer.LeafAccess("STORE_SALES", qgm.OpTBSCAN, "")
	buildPlan := func() *qgm.Plan {
		plan, err := opt.BuildPlan(q, spec)
		if err != nil {
			t.Fatalf("BuildPlan: %v", err)
		}
		return plan
	}

	ref, err := New(testDB).Execute(buildPlan(), q)
	if err != nil {
		t.Fatalf("reference Execute: %v", err)
	}

	ex := New(testDB)
	ex.ShareScans = true
	curA, err := ex.Open(buildPlan(), q)
	if err != nil {
		t.Fatalf("Open A: %v", err)
	}
	// A is mid-flight (registered private); B's open must spawn a shared pass
	// and attach to it.
	curB, err := ex.Open(buildPlan(), q)
	if err != nil {
		t.Fatalf("Open B: %v", err)
	}
	drain := func(cur *Cursor) []storage.Row {
		var rows []storage.Row
		for {
			row, ok := cur.Next()
			if !ok {
				break
			}
			rows = append(rows, row)
		}
		cur.Close()
		return rows
	}
	bRows := drain(curB)
	aRows := drain(curA)

	passes, attached, _ := ex.SharedScanStats()
	if passes != 1 || attached != 1 {
		t.Errorf("shared pass counters: passes=%d attached=%d, want 1/1", passes, attached)
	}
	for name, got := range map[string][]storage.Row{"shared": bRows, "private": aRows} {
		if len(got) != len(ref.Rows) {
			t.Fatalf("%s consumer saw %d rows, want %d", name, len(got), len(ref.Rows))
		}
		cp := append([]storage.Row{}, got...)
		want := append([]storage.Row{}, ref.Rows...)
		sortRowsBy(cp)
		sortRowsBy(want)
		for i := range cp {
			for j := range cp[i] {
				if cp[i][j].Key() != want[i][j].Key() {
					t.Fatalf("%s consumer row multiset differs at %d", name, i)
				}
			}
		}
	}
	if curB.Stats() != ref.Stats {
		t.Errorf("shared consumer stats differ from private scan:\n  shared:  %+v\n  private: %+v",
			curB.Stats(), ref.Stats)
	}
	if curA.Stats() != ref.Stats {
		t.Errorf("first (private) consumer stats differ:\n  got:  %+v\n  want: %+v", curA.Stats(), ref.Stats)
	}
}

// TestSharedScanProducerNeverBlocks pins the deadlock-freedom rule at the
// protocol level: a consumer that attaches and never pulls is detached by the
// producer (overflow), its feed closes with a resume position, and the
// feed + resume-tail + wrap-prefix protocol still covers every row exactly
// once.
func TestSharedScanProducerNeverBlocks(t *testing.T) {
	const n = sharedScanBatch * (sharedScanDepth + 8) // overflows the feed depth
	rows := make([]storage.Row, n)
	for i := range rows {
		rows[i] = storage.Row{catalog.Int(int64(i))}
	}
	tbl := &storage.Table{Rows: rows}
	reg := newScanRegistry()

	// First scan is private; second spawns the share.
	if snap, feed := reg.attach(tbl); snap != nil || feed != nil {
		t.Fatal("first attach should be private")
	}
	snap, feed := reg.attach(tbl)
	if feed == nil {
		t.Fatal("second attach should join a shared pass")
	}

	// Never pull: the producer must detach us and run to completion on its
	// own. Wait for the detach before draining — pulling earlier would keep
	// pace with the producer and dodge the overflow path under test.
	deadline := time.Now().Add(5 * time.Second)
	for reg.overflows.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if ov := reg.overflows.Load(); ov != 1 {
		t.Fatalf("producer did not detach the stalled consumer (overflows=%d)", ov)
	}
	seen := make(map[int64]int, n)
	delivered := 0
	for batch := range feed.ch { // closed by the detach; drains the buffer
		for _, r := range batch {
			seen[r[0].AsInt()]++
			delivered++
		}
	}
	if feed.resume < delivered+feed.start {
		t.Fatalf("resume %d behind delivered range [%d,%d)", feed.resume, feed.start, feed.start+delivered)
	}
	// Cover the undelivered tail and the pre-attach prefix, as tbscanIter does.
	for i := feed.resume; i < len(snap); i++ {
		seen[snap[i][0].AsInt()]++
	}
	for i := 0; i < feed.start; i++ {
		seen[snap[i][0].AsInt()]++
	}
	if len(seen) != n {
		t.Fatalf("saw %d distinct rows, want %d", len(seen), n)
	}
	for v, c := range seen {
		if c != 1 {
			t.Fatalf("row %d seen %d times", v, c)
		}
	}
	reg.detach(tbl, feed, false)
	reg.detach(tbl, nil, true)
}
