// Package executor runs QGM plans over the stored data and reports the
// runtime truth the optimizer could only estimate: actual cardinalities per
// operator, pages read, sort/hash spills and a simulated elapsed time.
//
// It replaces DB2's runtime plus the db2batch measurement utility in the
// paper's learning loop. Result rows are computed with efficient algorithms
// regardless of the plan's operator (so executing a bad plan does not make
// the test suite slow), but the simulated elapsed time is charged according
// to each operator's own cost formula evaluated over the *actual* row counts
// and the *runtime* system configuration — so a nested-loop join over an
// unclustered index really does "run" orders of magnitude slower than a hash
// join, which is exactly the signal GALO's learning engine ranks plans by.
//
// Execution is streaming: operators compose as pull iterators (Open / Next /
// Close) and only pipeline breakers — SORT buffers, hash-join build sides,
// GRPBY's group set — ever hold rows. Single-table predicates are pushed
// into the scans (applied per row, before any candidate-list or output
// materialization), so deep pipelines keep a bounded intermediate footprint.
// The pre-streaming materializing path is retained behind
// Executor.Materialize as the golden baseline: both paths must return
// byte-identical rows and charge identical per-operator actuals, because the
// cost formulas are evaluated over the same processed-row counts (the
// plan/actual cost-formula parity invariant the estimation-gap learner
// depends on).
package executor

import (
	"fmt"
	"math"
	"regexp"
	"strings"

	"galo/internal/catalog"
	"galo/internal/qgm"
	"galo/internal/sqlparser"
	"galo/internal/storage"
)

// RunStats aggregates the runtime counters of one plan execution. These are
// the "other resource usages" the paper's ranking module uses as tie
// breakers: buffer pool logical/physical reads, CPU rows and the sort-heap
// high-water mark.
type RunStats struct {
	Rows           int
	ElapsedMillis  float64
	LogicalReads   int64
	PhysicalReads  int64
	CPURows        int64
	SortSpillPages int64
	SortHeapPages  int64
	// PeakIntermediateRows / PeakIntermediateBytes record the high-water mark
	// of rows (and their approximate bytes) held in operator state at any one
	// moment during execution: sort buffers, hash-join build sides, group-by
	// group sets — and, on the materializing baseline, every intermediate
	// rowset. Base-table storage and the final result do not count; this is
	// the memory the plan's shape itself demands.
	PeakIntermediateRows  int64
	PeakIntermediateBytes int64
}

// Result is the outcome of executing a plan.
type Result struct {
	// Columns names the projected output columns.
	Columns []string
	// Rows holds the projected result rows.
	Rows []storage.Row
	// Stats aggregates runtime counters over the whole plan.
	Stats RunStats
}

// Executor runs plans against one database.
type Executor struct {
	DB *storage.Database
	// Materialize selects the pre-streaming Volcano behavior: every operator
	// drains its input into a full rowset before producing output. It exists
	// as the golden baseline for the streaming path (identical results and
	// per-operator actuals, much larger PeakIntermediateRows) and for the
	// BENCH_executor comparison; serving paths leave it false.
	Materialize bool
	// Workers enables intra-query parallelism: qualifying pipeline segments
	// (a scan plus the FILTER/HSJOIN spine above it, with an optional
	// terminal SORT or GRPBY) run as an exchange — the scan partitioned
	// across up to Workers goroutines, merged order-preserving when the
	// input is ordered or a terminal breaker demands it, unordered fan-in
	// otherwise. 0 or 1 means serial. Per-operator actuals are aggregated
	// deterministically, so charges are bit-identical at any worker count.
	Workers int
	// ShareScans lets concurrent executions of large table scans pin one
	// snapshot and read it once: the first overlapping scan triggers a
	// single shared producer pass that fans rows to every attached cursor
	// (late attachers wrap around to cover the prefix they missed). Row
	// counts and charges are unchanged; result row order rotates by attach
	// position.
	ShareScans bool

	shared *scanRegistry
}

// New returns an executor over the database.
func New(db *storage.Database) *Executor {
	return &Executor{DB: db, shared: newScanRegistry()}
}

// WithWorkers returns a view of the executor with a different worker count —
// a cheap copy sharing the database and the shared-scan registry, so a
// per-execution admission decision (the core memory governor degrading a
// too-big plan to serial) does not need a second executor.
func (e *Executor) WithWorkers(n int) *Executor {
	cp := *e
	cp.Workers = n
	return &cp
}

// SharedScanStats reports the shared-scan registry counters: shared producer
// passes started, consumers that attached to one, and consumers detached for
// falling behind the producer.
func (e *Executor) SharedScanStats() (passes, attached, overflows int64) {
	if e.shared == nil {
		return 0, 0, 0
	}
	return e.shared.passes.Load(), e.shared.attached.Load(), e.shared.overflows.Load()
}

// Execute runs the plan for the query. The plan's nodes are annotated with
// actual cardinalities and per-operator simulated milliseconds as a side
// effect (ActCardinality, ActMillis), and the plan's ActualMillis is set.
func (e *Executor) Execute(plan *qgm.Plan, q *sqlparser.Query) (*Result, error) {
	cur, err := e.Open(plan, q)
	if err != nil {
		return nil, err
	}
	out := &Result{Columns: cur.Columns}
	out.Rows = make([]storage.Row, 0, presizeHint(plan.Root.EstCardinality))
	for {
		row, ok := cur.Next()
		if !ok {
			break
		}
		out.Rows = append(out.Rows, row)
	}
	cur.Close()
	out.Stats = cur.Stats()
	return out, nil
}

// Cursor streams a plan's projected output row by row. Closing the cursor
// before exhaustion stops every upstream operator — scans included — and
// charges each operator only for the rows it actually processed; a bounded
// consumer therefore pays a bounded cost. Stats (and the plan's actuals) are
// final once Next has returned false or Close has been called.
type Cursor struct {
	// Columns names the projected output columns.
	Columns []string

	ctx      *execContext
	plan     *qgm.Plan
	root     rowIter
	projIdx  []int // nil means project everything in root order
	rows     int
	finished bool
}

// Open validates the plan against the query and returns a streaming cursor
// over its projected output. The caller must Close the cursor (Next returning
// false closes it implicitly).
func (e *Executor) Open(plan *qgm.Plan, q *sqlparser.Query) (*Cursor, error) {
	if plan == nil || plan.Root == nil {
		return nil, fmt.Errorf("executor: empty plan")
	}
	work := q.Clone()
	if err := sqlparser.Resolve(work, e.DB.Catalog.Schema); err != nil {
		return nil, err
	}
	ctx := &execContext{
		exec:      e,
		query:     work,
		cfg:       e.DB.Catalog.Config,
		instToRef: map[string]string{},
		refToInst: map[string]string{},
		workers:   e.Workers,
	}
	for i, ref := range work.From {
		inst := fmt.Sprintf("Q%d", i+1)
		ctx.instToRef[inst] = strings.ToUpper(ref.Name())
		ctx.refToInst[strings.ToUpper(ref.Name())] = inst
	}
	// A plan can be executed many times (and a cursor may stop early, leaving
	// deep operators unvisited); stale actuals from a previous run must never
	// survive into this one's estimation-gap reading.
	plan.ResetActuals()
	var root rowIter
	var cols []string
	if e.Materialize {
		rs, err := ctx.matRun(plan.Root)
		if err != nil {
			return nil, err
		}
		root, cols = &rowsetIter{ctx: ctx, rs: rs}, rs.cols
	} else {
		var err error
		root, cols, err = ctx.open(plan.Root)
		if err != nil {
			return nil, err
		}
	}
	cur := &Cursor{ctx: ctx, plan: plan, root: root}
	if work.Star || len(work.Select) == 0 {
		cur.Columns = cols
	} else {
		cur.projIdx = make([]int, 0, len(work.Select))
		for _, c := range work.Select {
			inst := ctx.refToInst[strings.ToUpper(c.Table)]
			pos := colPos(cols, inst+"."+c.Column)
			if pos < 0 {
				root.Close()
				return nil, fmt.Errorf("executor: projected column %s not in plan output", c)
			}
			cur.projIdx = append(cur.projIdx, pos)
			cur.Columns = append(cur.Columns, c.String())
		}
	}
	return cur, nil
}

// Next returns the next projected row, or false when the plan is exhausted
// (which finalizes stats and closes the pipeline).
func (c *Cursor) Next() (storage.Row, bool) {
	if c.finished {
		return nil, false
	}
	row, ok := c.root.Next()
	if !ok {
		c.finish()
		return nil, false
	}
	c.rows++
	if c.projIdx == nil {
		return row, true
	}
	out := make(storage.Row, len(c.projIdx))
	for j, p := range c.projIdx {
		out[j] = row[p]
	}
	return out, true
}

// Close stops the pipeline. Operators that were cut short charge only the
// work they actually did. Close is idempotent.
func (c *Cursor) Close() { c.finish() }

// Stats returns the execution counters; final after Next returned false or
// Close.
func (c *Cursor) Stats() RunStats { return c.ctx.stats }

func (c *Cursor) finish() {
	if c.finished {
		return
	}
	c.finished = true
	c.root.Close()
	c.ctx.stats.Rows = c.rows
	c.ctx.stats.PeakIntermediateRows = c.ctx.res.peakRows
	c.ctx.stats.PeakIntermediateBytes = c.ctx.res.peakBytes
	c.plan.ActualMillis = c.ctx.stats.ElapsedMillis
}

// execContext carries the per-execution state.
type execContext struct {
	exec      *Executor
	query     *sqlparser.Query
	cfg       catalog.SystemConfig
	stats     RunStats
	instToRef map[string]string
	refToInst map[string]string
	workers   int

	// res is the live intermediate-row accounting (see
	// RunStats.PeakIntermediateRows), shared by the streaming and
	// materializing engines through hold/release.
	res residency
}

func (c *execContext) hold(rows int, bytes int64)    { c.res.hold(rows, bytes) }
func (c *execContext) release(rows int, bytes int64) { c.res.release(rows, bytes) }

func (c *execContext) charge(node *qgm.Node, millis float64, rows int) {
	c.stats.ElapsedMillis += millis
	node.ActMillis = millis
	node.ActCardinality = float64(rows)
}

func (c *execContext) rt() float64 { return c.cfg.EffectiveRuntimeTransferRate() }

// rowset is the intermediate result flowing between operators on the
// materializing baseline.
type rowset struct {
	cols  []string // "Qi.COLUMN"
	rows  []storage.Row
	index map[string]int

	// Residency held for this rowset (set by holdRowset, cleared by
	// releaseRowset) so the release matches the hold even if rows change.
	heldRows  int
	heldBytes int64
}

func (r *rowset) colIndex(name string) int {
	if r.index == nil {
		r.index = make(map[string]int, len(r.cols))
		for i, c := range r.cols {
			r.index[c] = i
		}
	}
	if i, ok := r.index[strings.ToUpper(name)]; ok {
		return i
	}
	return -1
}

// colPos finds an instance-qualified column in an operator's output layout.
// Resolution happens once per operator at Open time, so a linear scan beats
// building a map.
func colPos(cols []string, name string) int {
	name = strings.ToUpper(name)
	for i, c := range cols {
		if c == name {
			return i
		}
	}
	return -1
}

// scanColumns returns the output layout of a base-table access.
func scanColumns(inst string, def *catalog.Table) []string {
	cols := make([]string, len(def.Columns))
	for i, col := range def.Columns {
		cols[i] = inst + "." + col.Name
	}
	return cols
}

// rowMatches applies the local predicates to a base-table row. LIKE patterns
// go through the process-wide compiled-pattern cache. Safe for concurrent use
// by exchange workers: it only reads execution state.
func (c *execContext) rowMatches(def *catalog.Table, row storage.Row, preds []sqlparser.Predicate) bool {
	for _, p := range preds {
		v := storage.Value(def, row, p.Left.Column)
		if p.Kind == sqlparser.PredLike {
			if !c.evalLike(p, v) {
				return false
			}
			continue
		}
		if !evalPredicate(p, v) {
			return false
		}
	}
	return true
}

// evalLike evaluates a LIKE predicate through the process-wide
// compiled-pattern cache (routinized repeats of a query stop recompiling).
func (c *execContext) evalLike(p sqlparser.Predicate, v catalog.Value) bool {
	if v.IsNull() {
		return false
	}
	re := likeCache.get(p.Value.AsString())
	ok := re != nil && re.MatchString(v.AsString())
	if p.Not {
		return !ok
	}
	return ok
}

// evalPredicate evaluates a local predicate against a value.
func evalPredicate(p sqlparser.Predicate, v catalog.Value) bool {
	switch p.Kind {
	case sqlparser.PredCompare:
		if v.IsNull() || p.Value.IsNull() {
			return false
		}
		cmp := catalog.Compare(v, p.Value)
		switch p.Op {
		case "=":
			return cmp == 0
		case "<>":
			return cmp != 0
		case "<":
			return cmp < 0
		case "<=":
			return cmp <= 0
		case ">":
			return cmp > 0
		case ">=":
			return cmp >= 0
		}
		return false
	case sqlparser.PredBetween:
		if v.IsNull() {
			return false
		}
		in := catalog.Compare(v, p.Lo) >= 0 && catalog.Compare(v, p.Hi) <= 0
		if p.Not {
			return !in
		}
		return in
	case sqlparser.PredIn:
		if v.IsNull() {
			return false
		}
		found := false
		for _, candidate := range p.Values {
			if catalog.Equal(v, candidate) {
				found = true
				break
			}
		}
		if p.Not {
			return !found
		}
		return found
	case sqlparser.PredLike:
		if v.IsNull() {
			return false
		}
		ok := likeMatch(p.Value.AsString(), v.AsString())
		if p.Not {
			return !ok
		}
		return ok
	case sqlparser.PredIsNull:
		if p.Not {
			return !v.IsNull()
		}
		return v.IsNull()
	default:
		return true
	}
}

// compileLike translates a SQL LIKE pattern (% and _ wildcards) into a
// case-insensitive regexp; nil when the pattern cannot compile.
func compileLike(pattern string) *regexp.Regexp {
	var b strings.Builder
	b.WriteString("^")
	for _, r := range pattern {
		switch r {
		case '%':
			b.WriteString(".*")
		case '_':
			b.WriteString(".")
		default:
			b.WriteString(regexp.QuoteMeta(string(r)))
		}
	}
	b.WriteString("$")
	re, err := regexp.Compile("(?i)" + b.String())
	if err != nil {
		return nil
	}
	return re
}

// likeMatch implements SQL LIKE with % and _ wildcards (uncached; execution
// paths use execContext.evalLike).
func likeMatch(pattern, s string) bool {
	re := compileLike(pattern)
	return re != nil && re.MatchString(s)
}

// rowWidthOf estimates a row's width in bytes from a sample row, falling back
// to 8 bytes per column when no row has been seen — the same estimate the
// plan-time cost model uses, which keeps spill decisions formula-identical.
func rowWidthOf(sample storage.Row, ncols int) int {
	if sample == nil {
		return 8 * ncols
	}
	w := 0
	for _, v := range sample {
		if v.K == catalog.KindString {
			w += len(v.S) + 4
		} else {
			w += 8
		}
	}
	return w
}

func rowWidth(rs *rowset) int {
	if len(rs.rows) == 0 {
		return rowWidthOf(nil, len(rs.cols))
	}
	return rowWidthOf(rs.rows[0], len(rs.cols))
}

func pagesOf(cfg catalog.SystemConfig, rows float64, width int) float64 {
	if width <= 0 {
		width = 64
	}
	ps := float64(cfg.PageSizeBytes)
	if ps <= 0 {
		ps = 4096
	}
	p := rows * float64(width) / ps
	if p < 1 {
		p = 1
	}
	return p
}

// presizeHint converts an estimated cardinality into a slice/map capacity,
// capped so a wild overestimate cannot allocate unbounded memory up front.
const presizeCap = 1 << 20

func presizeHint(est float64) int {
	if est <= 0 {
		return 0
	}
	if est > presizeCap {
		return presizeCap
	}
	return int(est)
}

// sortMillis charges a sort of the given size, tracking spill pages and the
// sort-heap high-water mark exactly like the plan-time sortCost formula.
func (c *execContext) sortMillis(rows float64, width int) float64 {
	if rows < 2 {
		return c.cfg.CPUSpeed
	}
	millis := rows * math.Log2(rows) * c.cfg.CPUSpeed
	pages := pagesOf(c.cfg, rows, width)
	if pages > float64(c.cfg.SortHeapPages) {
		millis += 2 * pages * c.rt() * 1.5
		c.stats.SortSpillPages += int64(pages)
	}
	if int64(pages) > c.stats.SortHeapPages {
		c.stats.SortHeapPages = int64(pages)
	}
	return millis
}
