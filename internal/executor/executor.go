// Package executor runs QGM plans over the stored data and reports the
// runtime truth the optimizer could only estimate: actual cardinalities per
// operator, pages read, sort/hash spills and a simulated elapsed time.
//
// It replaces DB2's runtime plus the db2batch measurement utility in the
// paper's learning loop. Result rows are computed with efficient algorithms
// regardless of the plan's operator (so executing a bad plan does not make
// the test suite slow), but the simulated elapsed time is charged according
// to each operator's own cost formula evaluated over the *actual* row counts
// and the *runtime* system configuration — so a nested-loop join over an
// unclustered index really does "run" orders of magnitude slower than a hash
// join, which is exactly the signal GALO's learning engine ranks plans by.
package executor

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strings"

	"galo/internal/catalog"
	"galo/internal/qgm"
	"galo/internal/sqlparser"
	"galo/internal/storage"
)

// RunStats aggregates the runtime counters of one plan execution. These are
// the "other resource usages" the paper's ranking module uses as tie
// breakers: buffer pool logical/physical reads, CPU rows and the sort-heap
// high-water mark.
type RunStats struct {
	Rows           int
	ElapsedMillis  float64
	LogicalReads   int64
	PhysicalReads  int64
	CPURows        int64
	SortSpillPages int64
	SortHeapPages  int64
}

// Result is the outcome of executing a plan.
type Result struct {
	// Columns names the projected output columns.
	Columns []string
	// Rows holds the projected result rows.
	Rows []storage.Row
	// Stats aggregates runtime counters over the whole plan.
	Stats RunStats
}

// Executor runs plans against one database.
type Executor struct {
	DB *storage.Database
}

// New returns an executor over the database.
func New(db *storage.Database) *Executor { return &Executor{DB: db} }

// Execute runs the plan for the query. The plan's nodes are annotated with
// actual cardinalities and per-operator simulated milliseconds as a side
// effect (ActCardinality, ActMillis), and the plan's ActualMillis is set.
func (e *Executor) Execute(plan *qgm.Plan, q *sqlparser.Query) (*Result, error) {
	if plan == nil || plan.Root == nil {
		return nil, fmt.Errorf("executor: empty plan")
	}
	work := q.Clone()
	if err := sqlparser.Resolve(work, e.DB.Catalog.Schema); err != nil {
		return nil, err
	}
	ctx := &execContext{
		exec:      e,
		query:     work,
		cfg:       e.DB.Catalog.Config,
		instToRef: map[string]string{},
		refToInst: map[string]string{},
	}
	for i, ref := range work.From {
		inst := fmt.Sprintf("Q%d", i+1)
		ctx.instToRef[inst] = strings.ToUpper(ref.Name())
		ctx.refToInst[strings.ToUpper(ref.Name())] = inst
	}
	rs, err := ctx.run(plan.Root)
	if err != nil {
		return nil, err
	}
	out := &Result{Stats: ctx.stats}
	out.Stats.Rows = len(rs.rows)
	// Project the SELECT list.
	if work.Star || len(work.Select) == 0 {
		out.Columns = rs.cols
		out.Rows = rs.rows
	} else {
		idx := make([]int, 0, len(work.Select))
		for _, c := range work.Select {
			inst := ctx.refToInst[strings.ToUpper(c.Table)]
			pos := rs.colIndex(inst + "." + c.Column)
			if pos < 0 {
				return nil, fmt.Errorf("executor: projected column %s not in plan output", c)
			}
			idx = append(idx, pos)
			out.Columns = append(out.Columns, c.String())
		}
		out.Rows = make([]storage.Row, len(rs.rows))
		for i, r := range rs.rows {
			row := make(storage.Row, len(idx))
			for j, p := range idx {
				row[j] = r[p]
			}
			out.Rows[i] = row
		}
	}
	plan.ActualMillis = ctx.stats.ElapsedMillis
	return out, nil
}

// execContext carries the per-execution state.
type execContext struct {
	exec      *Executor
	query     *sqlparser.Query
	cfg       catalog.SystemConfig
	stats     RunStats
	instToRef map[string]string
	refToInst map[string]string
}

// rowset is the intermediate result flowing between operators.
type rowset struct {
	cols  []string // "Qi.COLUMN"
	rows  []storage.Row
	index map[string]int
}

func (r *rowset) colIndex(name string) int {
	if r.index == nil {
		r.index = make(map[string]int, len(r.cols))
		for i, c := range r.cols {
			r.index[c] = i
		}
	}
	if i, ok := r.index[strings.ToUpper(name)]; ok {
		return i
	}
	return -1
}

func (c *execContext) charge(node *qgm.Node, millis float64, rows int) {
	c.stats.ElapsedMillis += millis
	node.ActMillis = millis
	node.ActCardinality = float64(rows)
}

func (c *execContext) rt() float64 { return c.cfg.EffectiveRuntimeTransferRate() }

// run executes the subtree rooted at node and returns its output rows.
func (c *execContext) run(node *qgm.Node) (*rowset, error) {
	switch {
	case node.Op == qgm.OpRETURN:
		rs, err := c.run(node.Outer)
		if err != nil {
			return nil, err
		}
		c.charge(node, float64(len(rs.rows))*c.cfg.CPUSpeed*0.1, len(rs.rows))
		return rs, nil
	case node.Op.IsScan():
		return c.runScan(node)
	case node.Op.IsJoin():
		return c.runJoin(node)
	case node.Op == qgm.OpSORT:
		return c.runSort(node)
	case node.Op == qgm.OpFILTER:
		rs, err := c.run(node.Outer)
		if err != nil {
			return nil, err
		}
		c.charge(node, float64(len(rs.rows))*c.cfg.CPUSpeed*0.2, len(rs.rows))
		return rs, nil
	case node.Op == qgm.OpGRPBY:
		return c.runGroupBy(node)
	default:
		return nil, fmt.Errorf("executor: unsupported operator %s", node.Op)
	}
}

// --- scans -------------------------------------------------------------------

func (c *execContext) runScan(node *qgm.Node) (*rowset, error) {
	refName := c.instToRef[node.TableInstance]
	if refName == "" {
		return nil, fmt.Errorf("executor: plan instance %s not present in query", node.TableInstance)
	}
	table := c.exec.DB.Table(node.Table)
	if table == nil {
		return nil, fmt.Errorf("executor: unknown table %s", node.Table)
	}
	preds := sqlparser.PredicatesFor(c.query, refName)
	cols := make([]string, len(table.Def.Columns))
	for i, col := range table.Def.Columns {
		cols[i] = node.TableInstance + "." + col.Name
	}
	tablePages := float64(c.exec.DB.Pages(node.Table))
	tableRows := float64(len(table.Rows))
	rowsPerPage := float64(c.exec.DB.RowsPerPage(node.Table))

	switch node.Op {
	case qgm.OpTBSCAN:
		var out []storage.Row
		for _, row := range table.Rows {
			if c.rowMatches(table.Def, row, preds) {
				out = append(out, row)
			}
		}
		c.stats.LogicalReads += int64(tablePages)
		c.stats.PhysicalReads += int64(tablePages)
		c.stats.CPURows += int64(tableRows)
		c.charge(node, tablePages*c.rt()+tableRows*c.cfg.CPUSpeed, len(out))
		return &rowset{cols: cols, rows: out}, nil

	case qgm.OpIXSCAN, qgm.OpFETCH:
		idxDef := table.Def.IndexByName(node.Index)
		if idxDef == nil {
			return nil, fmt.Errorf("executor: table %s has no index %s", node.Table, node.Index)
		}
		lead := idxDef.Columns[0]
		matched := c.indexMatches(node.Table, idxDef, lead, table, preds)
		var out []storage.Row
		for _, rid := range matched {
			row := table.Rows[rid]
			if c.rowMatches(table.Def, row, preds) {
				out = append(out, row)
			}
		}
		matchRows := float64(len(matched))
		leafPages := math.Max(tableRows/300, 1)
		frac := matchRows / math.Max(tableRows, 1)
		// Mirrors ixscanCost: the B-tree dive only pays a full random I/O when
		// the table exceeds the buffer pool.
		dive := c.cfg.Overhead
		if tablePages <= float64(c.cfg.BufferPoolPages) {
			dive = c.cfg.Overhead * 0.1
		}
		millis := dive + leafPages*frac*c.rt() + matchRows*c.cfg.CPUSpeed*0.5
		c.stats.LogicalReads += int64(leafPages * frac)
		c.stats.CPURows += int64(matchRows)
		if node.Op == qgm.OpFETCH {
			clustered := matchRows * idxDef.ClusterRatio
			unclustered := matchRows * (1 - idxDef.ClusterRatio)
			randomIO := c.cfg.Overhead
			if tablePages <= float64(c.cfg.BufferPoolPages) {
				randomIO = c.rt() * 0.25
			}
			millis += (clustered/math.Max(rowsPerPage, 1))*c.rt() + unclustered*randomIO + matchRows*c.cfg.CPUSpeed
			c.stats.PhysicalReads += int64(unclustered) + int64(clustered/math.Max(rowsPerPage, 1))
			c.stats.LogicalReads += int64(matchRows)
		}
		c.charge(node, millis, len(out))
		return &rowset{cols: cols, rows: out}, nil
	}
	return nil, fmt.Errorf("executor: unsupported scan %s", node.Op)
}

// indexMatches returns the row IDs the index access touches, using the local
// predicates on the index's leading column to narrow the range when possible.
func (c *execContext) indexMatches(tableName string, idxDef *catalog.Index, lead string, table *storage.Table, preds []sqlparser.Predicate) []int {
	idx := c.exec.DB.Index(tableName, idxDef.Name)
	if idx == nil {
		return nil
	}
	for _, p := range preds {
		if !strings.EqualFold(p.Left.Column, lead) {
			continue
		}
		switch {
		case p.Kind == sqlparser.PredCompare && p.Op == "=":
			return idx.LookupEqual(p.Value)
		case p.Kind == sqlparser.PredCompare && (p.Op == ">" || p.Op == ">="):
			v := p.Value
			return idx.LookupRange(&v, nil)
		case p.Kind == sqlparser.PredCompare && (p.Op == "<" || p.Op == "<="):
			v := p.Value
			return idx.LookupRange(nil, &v)
		case p.Kind == sqlparser.PredBetween && !p.Not:
			lo, hi := p.Lo, p.Hi
			return idx.LookupRange(&lo, &hi)
		}
	}
	// No sargable predicate: the access touches every entry (in index order).
	all := make([]int, 0, idx.Len())
	for _, e := range idx.Entries {
		all = append(all, e.RowID)
	}
	return all
}

// rowMatches applies the local predicates to a base-table row.
func (c *execContext) rowMatches(def *catalog.Table, row storage.Row, preds []sqlparser.Predicate) bool {
	for _, p := range preds {
		v := storage.Value(def, row, p.Left.Column)
		if !evalPredicate(p, v) {
			return false
		}
	}
	return true
}

// evalPredicate evaluates a local predicate against a value.
func evalPredicate(p sqlparser.Predicate, v catalog.Value) bool {
	switch p.Kind {
	case sqlparser.PredCompare:
		if v.IsNull() || p.Value.IsNull() {
			return false
		}
		cmp := catalog.Compare(v, p.Value)
		switch p.Op {
		case "=":
			return cmp == 0
		case "<>":
			return cmp != 0
		case "<":
			return cmp < 0
		case "<=":
			return cmp <= 0
		case ">":
			return cmp > 0
		case ">=":
			return cmp >= 0
		}
		return false
	case sqlparser.PredBetween:
		if v.IsNull() {
			return false
		}
		in := catalog.Compare(v, p.Lo) >= 0 && catalog.Compare(v, p.Hi) <= 0
		if p.Not {
			return !in
		}
		return in
	case sqlparser.PredIn:
		if v.IsNull() {
			return false
		}
		found := false
		for _, candidate := range p.Values {
			if catalog.Equal(v, candidate) {
				found = true
				break
			}
		}
		if p.Not {
			return !found
		}
		return found
	case sqlparser.PredLike:
		if v.IsNull() {
			return false
		}
		ok := likeMatch(p.Value.AsString(), v.AsString())
		if p.Not {
			return !ok
		}
		return ok
	case sqlparser.PredIsNull:
		if p.Not {
			return !v.IsNull()
		}
		return v.IsNull()
	default:
		return true
	}
}

// likeMatch implements SQL LIKE with % and _ wildcards.
func likeMatch(pattern, s string) bool {
	var b strings.Builder
	b.WriteString("^")
	for _, r := range pattern {
		switch r {
		case '%':
			b.WriteString(".*")
		case '_':
			b.WriteString(".")
		default:
			b.WriteString(regexp.QuoteMeta(string(r)))
		}
	}
	b.WriteString("$")
	re, err := regexp.Compile("(?i)" + b.String())
	if err != nil {
		return false
	}
	return re.MatchString(s)
}

// --- sorts and grouping ------------------------------------------------------

func (c *execContext) runSort(node *qgm.Node) (*rowset, error) {
	rs, err := c.run(node.Outer)
	if err != nil {
		return nil, err
	}
	// A SORT carrying an order property (one feeding a merge join, or a final
	// ORDER BY sort) physically establishes that order, so downstream
	// operators — the merge join's early-out in particular — see honestly
	// sorted rows. When the property names the query's leading ORDER BY
	// column, the full ORDER BY key list is used (the property only records
	// the primary order); SORTs without a property fall back to the query's
	// ORDER BY columns.
	orderByIdx := make([]int, 0, len(c.query.OrderBy))
	for _, k := range c.query.OrderBy {
		inst := c.refToInst[strings.ToUpper(k.Table)]
		if p := rs.colIndex(inst + "." + k.Column); p >= 0 {
			orderByIdx = append(orderByIdx, p)
		}
	}
	idx := orderByIdx
	if node.OrderedOn != "" {
		if p := rs.colIndex(node.OrderedOn); p >= 0 && (len(orderByIdx) == 0 || orderByIdx[0] != p) {
			idx = []int{p}
		}
	}
	if len(idx) > 0 {
		sort.SliceStable(rs.rows, func(i, j int) bool {
			for _, p := range idx {
				if cmp := catalog.Compare(rs.rows[i][p], rs.rows[j][p]); cmp != 0 {
					return cmp < 0
				}
			}
			return false
		})
	}
	rows := float64(len(rs.rows))
	millis := c.sortMillis(rows, rowWidth(rs))
	c.charge(node, millis, len(rs.rows))
	return rs, nil
}

func (c *execContext) sortMillis(rows float64, width int) float64 {
	if rows < 2 {
		return c.cfg.CPUSpeed
	}
	millis := rows * math.Log2(rows) * c.cfg.CPUSpeed
	pages := pagesOf(c.cfg, rows, width)
	if pages > float64(c.cfg.SortHeapPages) {
		millis += 2 * pages * c.rt() * 1.5
		c.stats.SortSpillPages += int64(pages)
	}
	if int64(pages) > c.stats.SortHeapPages {
		c.stats.SortHeapPages = int64(pages)
	}
	return millis
}

func (c *execContext) runGroupBy(node *qgm.Node) (*rowset, error) {
	rs, err := c.run(node.Outer)
	if err != nil {
		return nil, err
	}
	idx := make([]int, 0, len(c.query.GroupBy))
	for _, k := range c.query.GroupBy {
		inst := c.refToInst[strings.ToUpper(k.Table)]
		if p := rs.colIndex(inst + "." + k.Column); p >= 0 {
			idx = append(idx, p)
		}
	}
	seen := map[string]bool{}
	var out []storage.Row
	var key strings.Builder
	for _, row := range rs.rows {
		key.Reset()
		for _, p := range idx {
			key.WriteString(row[p].Key())
			key.WriteByte('|')
		}
		if !seen[key.String()] {
			seen[key.String()] = true
			out = append(out, row)
		}
	}
	c.charge(node, float64(len(rs.rows))*c.cfg.CPUSpeed, len(out))
	return &rowset{cols: rs.cols, rows: out}, nil
}

func rowWidth(rs *rowset) int {
	if len(rs.rows) == 0 {
		return 8 * len(rs.cols)
	}
	w := 0
	for _, v := range rs.rows[0] {
		if v.K == catalog.KindString {
			w += len(v.S) + 4
		} else {
			w += 8
		}
	}
	return w
}

func pagesOf(cfg catalog.SystemConfig, rows float64, width int) float64 {
	if width <= 0 {
		width = 64
	}
	ps := float64(cfg.PageSizeBytes)
	if ps <= 0 {
		ps = 4096
	}
	p := rows * float64(width) / ps
	if p < 1 {
		p = 1
	}
	return p
}
