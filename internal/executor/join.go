package executor

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"galo/internal/catalog"
	"galo/internal/qgm"
	"galo/internal/sqlparser"
	"galo/internal/storage"
)

// joinKey describes the equi-join columns between the outer and inner inputs
// of a join, as positions into the respective row layouts.
type joinKey struct {
	outerPos []int
	innerPos []int
}

// openJoin builds the streaming join iterator. All join operators compute
// result rows with a hash-based algorithm for speed; the simulated time is
// charged according to the operator's own execution characteristics over the
// row counts actually processed. The inner (build) side is the only buffered
// input — the outer streams through.
func (c *execContext) openJoin(node *qgm.Node) (rowIter, []string, error) {
	switch node.Op {
	case qgm.OpHSJOIN, qgm.OpNLJOIN, qgm.OpMSJOIN:
	default:
		return nil, nil, fmt.Errorf("executor: unsupported join %s", node.Op)
	}
	outer, outerCols, err := c.open(node.Outer)
	if err != nil {
		return nil, nil, err
	}
	inner, innerCols, err := c.open(node.Inner)
	if err != nil {
		outer.Close()
		return nil, nil, err
	}
	key, _ := c.joinKeys(node, outerCols, innerCols)
	cols := append(append([]string{}, outerCols...), innerCols...)
	return &joinIter{
		ctx: c, node: node, outer: outer, inner: inner, key: key,
		nOuterCols: len(outerCols), nInnerCols: len(innerCols),
	}, cols, nil
}

// joinIter is a half pipeline breaker: the first Next drains the inner child
// into the build side (held in the intermediate accounting), then streams the
// outer, emitting matches in build-insertion order — the same emission order
// the materializing hashJoinRows produced.
type joinIter struct {
	ctx   *execContext
	node  *qgm.Node
	outer rowIter
	inner rowIter
	key   joinKey

	nOuterCols, nInnerCols int

	built     bool
	buildRows []storage.Row
	build     map[string][]storage.Row
	// buildFast replaces build for single-column join keys (the common case):
	// hashing a comparable struct skips the per-row key-string allocation.
	buildFast map[fastKey][]storage.Row
	heldBytes int64

	// MSJOIN early-out bookkeeping (the Figure 8 rescue): count how many
	// outer rows a merge join would have read before passing the largest
	// inner key.
	trackEarlyOut bool
	maxInner      catalog.Value
	nProcessed    int

	kb      strings.Builder
	cur     storage.Row
	matches []storage.Row
	mi      int

	outerSample     storage.Row
	nOuterRows      int
	nOut            int
	charged, closed bool
}

func (j *joinIter) Next() (storage.Row, bool) {
	if !j.built {
		j.buildInner()
	}
	for {
		if j.mi < len(j.matches) {
			irow := j.matches[j.mi]
			j.mi++
			j.nOut++
			return concatRows(j.cur, irow), true
		}
		orow, ok := j.outer.Next()
		if !ok {
			j.finalize()
			return nil, false
		}
		j.nOuterRows++
		if j.outerSample == nil {
			j.outerSample = orow
		}
		if j.trackEarlyOut && catalog.Compare(orow[j.key.outerPos[0]], j.maxInner) <= 0 {
			j.nProcessed++
		}
		j.cur = orow
		j.matches = j.matchesFor(orow)
		j.mi = 0
	}
}

// buildInner drains the inner child into the build side and indexes it by
// join key. The buffer is charged to the intermediate accounting until Close.
func (j *joinIter) buildInner() {
	j.built = true
	j.buildRows = make([]storage.Row, 0, presizeHint(j.node.Inner.EstCardinality))
	for {
		row, ok := j.inner.Next()
		if !ok {
			break
		}
		j.buildRows = append(j.buildRows, row)
	}
	j.inner.Close()

	var sample storage.Row
	if len(j.buildRows) > 0 {
		sample = j.buildRows[0]
	}
	j.heldBytes = int64(rowWidthOf(sample, j.nInnerCols)) * int64(len(j.buildRows))
	j.ctx.hold(len(j.buildRows), j.heldBytes)

	switch {
	case len(j.key.outerPos) == 1:
		j.buildFast = make(map[fastKey][]storage.Row, len(j.buildRows))
		p := j.key.innerPos[0]
		for _, irow := range j.buildRows {
			if irow[p].IsNull() {
				continue
			}
			k := fastKeyOf(irow[p])
			j.buildFast[k] = append(j.buildFast[k], irow)
		}
	case len(j.key.outerPos) > 1:
		j.build = make(map[string][]storage.Row, len(j.buildRows))
		for _, irow := range j.buildRows {
			k, ok := j.keyOf(irow, j.key.innerPos)
			if !ok {
				continue
			}
			j.build[k] = append(j.build[k], irow)
		}
	}
	if j.node.Op == qgm.OpMSJOIN && j.node.EarlyOut && len(j.key.outerPos) > 0 && len(j.buildRows) > 0 {
		j.trackEarlyOut = true
		j.maxInner = maxKey(j.buildRows, j.key.innerPos[0])
	}
}

// fastKey is a comparable, allocation-free stand-in for a single join-key
// value's Key() string: two non-null values produce equal fastKeys exactly
// when their Key() strings are equal (strings compare as strings, every
// numeric kind through its float value — the same normalization Key uses).
type fastKey struct {
	s     string
	f     float64
	isStr bool
}

func fastKeyOf(v catalog.Value) fastKey {
	if v.K == catalog.KindString {
		return fastKey{s: v.S, isStr: true}
	}
	return fastKey{f: v.AsFloat()}
}

// keyOf serializes the (multi-column) join-key columns of a row; ok is false
// when any key column is null (null keys never match).
func (j *joinIter) keyOf(row storage.Row, pos []int) (string, bool) {
	j.kb.Reset()
	for _, p := range pos {
		if row[p].IsNull() {
			return "", false
		}
		j.kb.WriteString(row[p].Key())
		j.kb.WriteByte('|')
	}
	return j.kb.String(), true
}

// matchesFor returns the inner rows joining with one outer row. With no
// equi-join key the join degrades to a cartesian product.
func (j *joinIter) matchesFor(orow storage.Row) []storage.Row {
	switch {
	case len(j.key.outerPos) == 0:
		return j.buildRows
	case len(j.key.outerPos) == 1:
		v := orow[j.key.outerPos[0]]
		if v.IsNull() {
			return nil
		}
		return j.buildFast[fastKeyOf(v)]
	}
	k, ok := j.keyOf(orow, j.key.outerPos)
	if !ok {
		return nil
	}
	return j.build[k]
}

// finalize charges the join's simulated cost from the row counts actually
// processed, through the same formulas the optimizer used at plan time.
func (j *joinIter) finalize() {
	if j.charged {
		return
	}
	j.charged = true
	c := j.ctx
	outerRows := float64(j.nOuterRows)
	innerRows := float64(len(j.buildRows))
	outRows := float64(j.nOut)
	cpu := c.cfg.CPUSpeed

	switch j.node.Op {
	case qgm.OpHSJOIN:
		probeFactor := 1.0
		if j.node.BloomFilter {
			probeFactor = 0.6
		}
		millis := innerRows*cpu*2 + outerRows*cpu*probeFactor + outRows*cpu*0.1
		var innerSample storage.Row
		if len(j.buildRows) > 0 {
			innerSample = j.buildRows[0]
		}
		buildPages := pagesOf(c.cfg, innerRows, rowWidthOf(innerSample, j.nInnerCols))
		if buildPages > float64(c.cfg.SortHeapPages) {
			spill := buildPages
			outerPages := pagesOf(c.cfg, outerRows, rowWidthOf(j.outerSample, j.nOuterCols))
			if j.node.BloomFilter {
				outerPages *= 0.5
			}
			spill += outerPages
			millis += 2 * spill * c.rt()
			c.stats.SortSpillPages += int64(spill)
			c.stats.PhysicalReads += int64(spill)
		}
		c.stats.CPURows += int64(innerRows + outerRows)
		c.charge(j.node, millis, j.nOut)

	case qgm.OpNLJOIN:
		matchedPerProbe := 0.0
		if outerRows > 0 {
			matchedPerProbe = outRows / outerRows
		}
		perProbe := c.nlProbeMillis(j.node.Inner, matchedPerProbe, innerRows)
		millis := outerRows*perProbe + outRows*cpu
		c.stats.CPURows += int64(outerRows)
		c.charge(j.node, millis, j.nOut)

	case qgm.OpMSJOIN:
		// A merge join over sorted inputs can stop reading the outer as soon
		// as its key exceeds the largest inner key (the Figure 8 early-out).
		outerProcessed := outerRows
		if j.trackEarlyOut {
			outerProcessed = float64(j.nProcessed) + 1
			if outerProcessed > outerRows {
				outerProcessed = outerRows
			}
		}
		if innerRows == 0 {
			outerProcessed = 1
		}
		// Same formula as the optimizer's msjoinCost, over actual row counts:
		// a single interleaved pass over pre-sorted inputs.
		millis := (outerProcessed+innerRows)*cpu*0.5 + outRows*cpu*0.1
		c.stats.CPURows += int64(outerProcessed + innerRows)
		c.charge(j.node, millis, j.nOut)
	}
}

func (j *joinIter) Close() {
	if j.closed {
		return
	}
	j.closed = true
	j.outer.Close()
	if !j.built {
		j.inner.Close()
	}
	j.finalize()
	if j.built {
		j.ctx.release(len(j.buildRows), j.heldBytes)
		j.buildRows = nil
		j.build = nil
		j.buildFast = nil
	}
}

// nlProbeMillis is the per-outer-row cost of probing the inner input of a
// nested-loop join.
func (c *execContext) nlProbeMillis(innerNode *qgm.Node, matchedPerProbe, innerRows float64) float64 {
	cfg := c.cfg
	tablePages := float64(c.exec.DB.Pages(innerNode.Table))
	fitsBP := tablePages <= float64(cfg.BufferPoolPages)
	if innerNode.Op == qgm.OpIXSCAN || innerNode.Op == qgm.OpFETCH {
		cr := 0.5
		if innerNode.Table != "" && innerNode.Index != "" {
			if def := c.exec.DB.Catalog.Table(innerNode.Table); def != nil {
				if idx := def.IndexByName(innerNode.Index); idx != nil {
					cr = idx.ClusterRatio
				}
			}
		}
		perProbe := cfg.Overhead * 0.5
		if fitsBP {
			perProbe = c.rt()
		}
		fetchRows := math.Max(matchedPerProbe, 1)
		randomIO := cfg.Overhead
		if fitsBP {
			randomIO = c.rt() * 0.25
		}
		if randomIO > 0 {
			c.stats.PhysicalReads += int64(fetchRows * (1 - cr))
		}
		return perProbe + fetchRows*(1-cr)*randomIO + fetchRows*cr*c.rt()/8 + fetchRows*cfg.CPUSpeed
	}
	// Scan probe.
	if fitsBP {
		return tablePages*c.rt()*0.05 + innerRows*cfg.CPUSpeed
	}
	return tablePages*c.rt() + innerRows*cfg.CPUSpeed
}

// joinKeys finds the equi-join column positions between the two inputs.
func (c *execContext) joinKeys(node *qgm.Node, outerCols, innerCols []string) (joinKey, []sqlparser.Predicate) {
	outerInst := instanceSet(node.Outer)
	innerInst := instanceSet(node.Inner)
	var key joinKey
	var used []sqlparser.Predicate
	for _, p := range c.query.JoinPredicates() {
		li := c.refToInst[strings.ToUpper(p.Left.Table)]
		ri := c.refToInst[strings.ToUpper(p.Right.Table)]
		var op, ip int
		switch {
		case outerInst[li] && innerInst[ri]:
			op = colPos(outerCols, li+"."+p.Left.Column)
			ip = colPos(innerCols, ri+"."+p.Right.Column)
		case outerInst[ri] && innerInst[li]:
			op = colPos(outerCols, ri+"."+p.Right.Column)
			ip = colPos(innerCols, li+"."+p.Left.Column)
		default:
			continue
		}
		if op >= 0 && ip >= 0 {
			key.outerPos = append(key.outerPos, op)
			key.innerPos = append(key.innerPos, ip)
			used = append(used, p)
		}
	}
	return key, used
}

func instanceSet(n *qgm.Node) map[string]bool {
	set := map[string]bool{}
	n.Walk(func(x *qgm.Node) {
		if x.TableInstance != "" {
			set[x.TableInstance] = true
		}
	})
	return set
}

// hashJoinRows computes the equi-join of two rowsets (the materializing
// baseline path). With no key it degrades to a cartesian product. The build
// map is pre-sized from the inner's actual row count and the output slice
// from the plan's estimated output cardinality.
func hashJoinRows(outer, inner *rowset, key joinKey, estOut int) []storage.Row {
	out := make([]storage.Row, 0, estOut)
	if len(key.outerPos) == 0 {
		for _, orow := range outer.rows {
			for _, irow := range inner.rows {
				out = append(out, concatRows(orow, irow))
			}
		}
		return out
	}
	build := make(map[string][]storage.Row, len(inner.rows))
	var kb strings.Builder
	for _, irow := range inner.rows {
		kb.Reset()
		null := false
		for _, p := range key.innerPos {
			if irow[p].IsNull() {
				null = true
				break
			}
			kb.WriteString(irow[p].Key())
			kb.WriteByte('|')
		}
		if null {
			continue
		}
		build[kb.String()] = append(build[kb.String()], irow)
	}
	for _, orow := range outer.rows {
		kb.Reset()
		null := false
		for _, p := range key.outerPos {
			if orow[p].IsNull() {
				null = true
				break
			}
			kb.WriteString(orow[p].Key())
			kb.WriteByte('|')
		}
		if null {
			continue
		}
		for _, irow := range build[kb.String()] {
			out = append(out, concatRows(orow, irow))
		}
	}
	return out
}

func concatRows(a, b storage.Row) storage.Row {
	out := make(storage.Row, 0, len(a)+len(b))
	out = append(out, a...)
	return append(out, b...)
}

func maxKey(rows []storage.Row, pos int) catalog.Value {
	var max catalog.Value
	for _, r := range rows {
		if max.IsNull() || catalog.Compare(r[pos], max) > 0 {
			max = r[pos]
		}
	}
	return max
}

// sortRowsBy is a helper used in tests to check result equivalence
// independent of row order.
func sortRowsBy(rows []storage.Row) {
	sort.Slice(rows, func(i, j int) bool {
		for k := range rows[i] {
			if k >= len(rows[j]) {
				return false
			}
			if cmp := catalog.Compare(rows[i][k], rows[j][k]); cmp != 0 {
				return cmp < 0
			}
		}
		return len(rows[i]) < len(rows[j])
	})
}
