package executor

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"galo/internal/catalog"
	"galo/internal/qgm"
	"galo/internal/sqlparser"
	"galo/internal/storage"
)

// joinKey describes the equi-join columns between the outer and inner inputs
// of a join, as positions into the respective row layouts.
type joinKey struct {
	outerPos []int
	innerPos []int
}

// openJoin builds the streaming join iterator. All join operators compute
// result rows with a hash-based algorithm for speed; the simulated time is
// charged according to the operator's own execution characteristics over the
// row counts actually processed. The inner (build) side is the only buffered
// input — the outer streams through.
func (c *execContext) openJoin(node *qgm.Node) (rowIter, []string, error) {
	switch node.Op {
	case qgm.OpHSJOIN, qgm.OpNLJOIN, qgm.OpMSJOIN:
	default:
		return nil, nil, fmt.Errorf("executor: unsupported join %s", node.Op)
	}
	outer, outerCols, err := c.open(node.Outer)
	if err != nil {
		return nil, nil, err
	}
	inner, innerCols, err := c.open(node.Inner)
	if err != nil {
		outer.Close()
		return nil, nil, err
	}
	key, _ := c.joinKeys(node, outerCols, innerCols)
	cols := append(append([]string{}, outerCols...), innerCols...)
	return &joinIter{
		ctx: c, node: node, outer: outer, inner: inner, key: key,
		nOuterCols: len(outerCols), nInnerCols: len(innerCols),
	}, cols, nil
}

// joinIter is a half pipeline breaker: the first Next drains the inner child
// into the build side (held in the intermediate accounting), then streams the
// outer, emitting matches in build-insertion order — the same emission order
// the materializing hashJoinRows produced.
type joinIter struct {
	ctx   *execContext
	node  *qgm.Node
	outer rowIter
	inner rowIter
	key   joinKey

	nOuterCols, nInnerCols int

	built bool
	hb    *hashBuild

	// MSJOIN early-out bookkeeping (the Figure 8 rescue): count how many
	// outer rows a merge join would have read before passing the largest
	// inner key.
	trackEarlyOut bool
	maxInner      catalog.Value
	nProcessed    int

	kb      strings.Builder
	cur     storage.Row
	matches []storage.Row
	mi      int

	outerSample     storage.Row
	nOuterRows      int
	nOut            int
	charged, closed bool
}

func (j *joinIter) Next() (storage.Row, bool) {
	if !j.built {
		j.buildInner()
	}
	for {
		if j.mi < len(j.matches) {
			irow := j.matches[j.mi]
			j.mi++
			j.nOut++
			return concatRows(j.cur, irow), true
		}
		orow, ok := j.outer.Next()
		if !ok {
			j.finalize()
			return nil, false
		}
		j.nOuterRows++
		if j.outerSample == nil {
			j.outerSample = orow
		}
		if j.trackEarlyOut && catalog.Compare(orow[j.key.outerPos[0]], j.maxInner) <= 0 {
			j.nProcessed++
		}
		j.cur = orow
		j.matches = j.hb.matches(orow, &j.kb)
		j.mi = 0
	}
}

// buildInner drains the inner child into the build side and indexes it by
// join key. The buffer is charged to the intermediate accounting until Close.
func (j *joinIter) buildInner() {
	j.built = true
	j.hb = j.ctx.drainBuild(j.inner, j.node.Inner, j.key, j.nInnerCols)
	if j.node.Op == qgm.OpMSJOIN && j.node.EarlyOut && len(j.key.outerPos) > 0 && len(j.hb.rows) > 0 {
		j.trackEarlyOut = true
		j.maxInner = maxKey(j.hb.rows, j.key.innerPos[0])
	}
}

// drainBuild drains a join's inner child into a hashBuild (holding the
// buffered rows in the intermediate accounting until the owner releases
// them). Shared by the serial joinIter and the exchange's build phase.
func (c *execContext) drainBuild(inner rowIter, innerNode *qgm.Node, key joinKey, nInnerCols int) *hashBuild {
	rows := make([]storage.Row, 0, presizeHint(innerNode.EstCardinality))
	for {
		row, ok := inner.Next()
		if !ok {
			break
		}
		rows = append(rows, row)
	}
	inner.Close()
	b := newHashBuild(rows, key, nInnerCols, c.workers, innerNode.EstCardinality)
	c.hold(len(rows), b.heldBytes)
	return b
}

// parallelBuildMinRows is the smallest build side worth hash-partitioning
// across workers; below it the partitioning pass costs more than it saves.
const parallelBuildMinRows = 4096

// hashBuild is a hash-join build side: the buffered inner rows plus the
// key → rows index. With workers > 1 and a large input the index is
// hash-partitioned — a serial pass splits rows by key hash (preserving drain
// order within each partition), then per-worker goroutines build the
// partition maps concurrently. Within-bucket insertion order equals the
// global drain order either way, so match chains — and therefore emission
// order and every charge — are identical to the serial build.
type hashBuild struct {
	key        joinKey
	rows       []storage.Row
	nInnerCols int
	heldBytes  int64

	// single indexes single-column keys (the common case) by comparable
	// fastKey — no per-row key-string allocation; multi indexes multi-column
	// keys by their serialized string. len > 1 means hash-partitioned.
	single []map[fastKey][]storage.Row
	multi  []map[string][]storage.Row
}

func newHashBuild(rows []storage.Row, key joinKey, nInnerCols, workers int, estCard float64) *hashBuild {
	b := &hashBuild{key: key, rows: rows, nInnerCols: nInnerCols}
	b.heldBytes = rowsFootprint(rows, nInnerCols)
	if workers < 2 || len(rows) < parallelBuildMinRows {
		workers = 1
	}
	switch {
	case len(key.outerPos) == 0:
		// No equi-join key: the join degrades to a cartesian product over
		// b.rows; no index needed.
	case len(key.innerPos) == 1:
		p := key.innerPos[0]
		if workers == 1 {
			m := make(map[fastKey][]storage.Row, len(rows))
			for _, irow := range rows {
				if irow[p].IsNull() {
					continue
				}
				k := fastKeyOf(irow[p])
				m[k] = append(m[k], irow)
			}
			b.single = []map[fastKey][]storage.Row{m}
			break
		}
		parts := partitionRows(rows, workers, estCard, func(irow storage.Row) (uint64, bool) {
			if irow[p].IsNull() {
				return 0, false
			}
			return fastKeyHash(fastKeyOf(irow[p])), true
		})
		b.single = make([]map[fastKey][]storage.Row, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				m := make(map[fastKey][]storage.Row, len(parts[w]))
				for _, irow := range parts[w] {
					k := fastKeyOf(irow[p])
					m[k] = append(m[k], irow)
				}
				b.single[w] = m
			}(w)
		}
		wg.Wait()
	default:
		if workers == 1 {
			m := make(map[string][]storage.Row, len(rows))
			var kb strings.Builder
			for _, irow := range rows {
				k, ok := multiKeyOf(irow, key.innerPos, &kb)
				if !ok {
					continue
				}
				m[k] = append(m[k], irow)
			}
			b.multi = []map[string][]storage.Row{m}
			break
		}
		var kb strings.Builder
		parts := partitionRows(rows, workers, estCard, func(irow storage.Row) (uint64, bool) {
			k, ok := multiKeyOf(irow, key.innerPos, &kb)
			if !ok {
				return 0, false
			}
			return hashString(k), true
		})
		b.multi = make([]map[string][]storage.Row, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				m := make(map[string][]storage.Row, len(parts[w]))
				var wkb strings.Builder
				for _, irow := range parts[w] {
					k, _ := multiKeyOf(irow, key.innerPos, &wkb)
					m[k] = append(m[k], irow)
				}
				b.multi[w] = m
			}(w)
		}
		wg.Wait()
	}
	return b
}

// partitionRows splits build rows into hash partitions in one serial pass —
// drain order is preserved within each partition. Partition slices are
// pre-sized from the plan's estimated build cardinality.
func partitionRows(rows []storage.Row, workers int, estCard float64, hash func(storage.Row) (uint64, bool)) [][]storage.Row {
	est := presizeHint(estCard)/workers + 1
	parts := make([][]storage.Row, workers)
	for i := range parts {
		parts[i] = make([]storage.Row, 0, est)
	}
	for _, irow := range rows {
		h, ok := hash(irow)
		if !ok {
			continue
		}
		parts[h%uint64(workers)] = append(parts[h%uint64(workers)], irow)
	}
	return parts
}

// matches returns the build rows joining with one probe-side row, in build
// insertion order. kb is the caller's scratch builder (each exchange worker
// probes with its own). With no equi-join key the join degrades to a
// cartesian product.
func (b *hashBuild) matches(orow storage.Row, kb *strings.Builder) []storage.Row {
	switch {
	case len(b.key.outerPos) == 0:
		return b.rows
	case len(b.key.outerPos) == 1:
		v := orow[b.key.outerPos[0]]
		if v.IsNull() {
			return nil
		}
		k := fastKeyOf(v)
		if len(b.single) == 1 {
			return b.single[0][k]
		}
		return b.single[fastKeyHash(k)%uint64(len(b.single))][k]
	default:
		k, ok := multiKeyOf(orow, b.key.outerPos, kb)
		if !ok {
			return nil
		}
		if len(b.multi) == 1 {
			return b.multi[0][k]
		}
		return b.multi[hashString(k)%uint64(len(b.multi))][k]
	}
}

// sample returns the first build row (the serial spill-formula sample).
func (b *hashBuild) sample() storage.Row {
	if len(b.rows) == 0 {
		return nil
	}
	return b.rows[0]
}

// release returns the build's buffered rows to the residency accounting.
func (b *hashBuild) release(c *execContext) {
	c.release(len(b.rows), b.heldBytes)
	b.rows, b.single, b.multi = nil, nil, nil
}

// FNV-1a hashing for build partitioning: deterministic across runs (Go's
// map hash is seeded per process, so it cannot pick partitions).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func hashString(s string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

func fastKeyHash(k fastKey) uint64 {
	h := uint64(fnvOffset64)
	if k.isStr {
		h ^= 1
		h *= fnvPrime64
		return h ^ hashString(k.s)
	}
	bits := math.Float64bits(k.f)
	for i := 0; i < 8; i++ {
		h ^= (bits >> (8 * i)) & 0xff
		h *= fnvPrime64
	}
	return h
}

// fastKey is a comparable, allocation-free stand-in for a single join-key
// value's Key() string: two non-null values produce equal fastKeys exactly
// when their Key() strings are equal (strings compare as strings, every
// numeric kind through its float value — the same normalization Key uses).
type fastKey struct {
	s     string
	f     float64
	isStr bool
}

func fastKeyOf(v catalog.Value) fastKey {
	if v.K == catalog.KindString {
		return fastKey{s: v.S, isStr: true}
	}
	return fastKey{f: v.AsFloat()}
}

// multiKeyOf serializes the (multi-column) join-key columns of a row; ok is
// false when any key column is null (null keys never match).
func multiKeyOf(row storage.Row, pos []int, kb *strings.Builder) (string, bool) {
	kb.Reset()
	for _, p := range pos {
		if row[p].IsNull() {
			return "", false
		}
		kb.WriteString(row[p].Key())
		kb.WriteByte('|')
	}
	return kb.String(), true
}

// finalize charges the join's simulated cost from the row counts actually
// processed, through the shared charge formulas.
func (j *joinIter) finalize() {
	if j.charged {
		return
	}
	j.charged = true
	innerRows := 0
	var innerSample storage.Row
	if j.hb != nil {
		innerRows = len(j.hb.rows)
		innerSample = j.hb.sample()
	}
	j.ctx.chargeJoin(j.node, joinActuals{
		outerRows: j.nOuterRows, innerRows: innerRows, outRows: j.nOut,
		outerSample: j.outerSample, innerSample: innerSample,
		nOuterCols: j.nOuterCols, nInnerCols: j.nInnerCols,
		trackEarlyOut: j.trackEarlyOut, nProcessed: j.nProcessed,
	})
}

func (j *joinIter) Close() {
	if j.closed {
		return
	}
	j.closed = true
	j.outer.Close()
	if !j.built {
		j.inner.Close()
	}
	j.finalize()
	if j.built {
		j.hb.release(j.ctx)
	}
}

// nlProbeMillis is the per-outer-row cost of probing the inner input of a
// nested-loop join.
func (c *execContext) nlProbeMillis(innerNode *qgm.Node, matchedPerProbe, innerRows float64) float64 {
	cfg := c.cfg
	tablePages := float64(c.exec.DB.Pages(innerNode.Table))
	fitsBP := tablePages <= float64(cfg.BufferPoolPages)
	if innerNode.Op == qgm.OpIXSCAN || innerNode.Op == qgm.OpFETCH {
		cr := 0.5
		if innerNode.Table != "" && innerNode.Index != "" {
			if def := c.exec.DB.Catalog.Table(innerNode.Table); def != nil {
				if idx := def.IndexByName(innerNode.Index); idx != nil {
					cr = idx.ClusterRatio
				}
			}
		}
		perProbe := cfg.Overhead * 0.5
		if fitsBP {
			perProbe = c.rt()
		}
		fetchRows := math.Max(matchedPerProbe, 1)
		randomIO := cfg.Overhead
		if fitsBP {
			randomIO = c.rt() * 0.25
		}
		if randomIO > 0 {
			c.stats.PhysicalReads += int64(fetchRows * (1 - cr))
		}
		return perProbe + fetchRows*(1-cr)*randomIO + fetchRows*cr*c.rt()/8 + fetchRows*cfg.CPUSpeed
	}
	// Scan probe.
	if fitsBP {
		return tablePages*c.rt()*0.05 + innerRows*cfg.CPUSpeed
	}
	return tablePages*c.rt() + innerRows*cfg.CPUSpeed
}

// joinKeys finds the equi-join column positions between the two inputs.
func (c *execContext) joinKeys(node *qgm.Node, outerCols, innerCols []string) (joinKey, []sqlparser.Predicate) {
	outerInst := instanceSet(node.Outer)
	innerInst := instanceSet(node.Inner)
	var key joinKey
	var used []sqlparser.Predicate
	for _, p := range c.query.JoinPredicates() {
		li := c.refToInst[strings.ToUpper(p.Left.Table)]
		ri := c.refToInst[strings.ToUpper(p.Right.Table)]
		var op, ip int
		switch {
		case outerInst[li] && innerInst[ri]:
			op = colPos(outerCols, li+"."+p.Left.Column)
			ip = colPos(innerCols, ri+"."+p.Right.Column)
		case outerInst[ri] && innerInst[li]:
			op = colPos(outerCols, ri+"."+p.Right.Column)
			ip = colPos(innerCols, li+"."+p.Left.Column)
		default:
			continue
		}
		if op >= 0 && ip >= 0 {
			key.outerPos = append(key.outerPos, op)
			key.innerPos = append(key.innerPos, ip)
			used = append(used, p)
		}
	}
	return key, used
}

func instanceSet(n *qgm.Node) map[string]bool {
	set := map[string]bool{}
	n.Walk(func(x *qgm.Node) {
		if x.TableInstance != "" {
			set[x.TableInstance] = true
		}
	})
	return set
}

// hashJoinRows computes the equi-join of two rowsets (the materializing
// baseline path). With no key it degrades to a cartesian product. The build
// map is pre-sized from the inner's actual row count and the output slice
// from the plan's estimated output cardinality.
func hashJoinRows(outer, inner *rowset, key joinKey, estOut int) []storage.Row {
	out := make([]storage.Row, 0, estOut)
	if len(key.outerPos) == 0 {
		for _, orow := range outer.rows {
			for _, irow := range inner.rows {
				out = append(out, concatRows(orow, irow))
			}
		}
		return out
	}
	build := make(map[string][]storage.Row, len(inner.rows))
	var kb strings.Builder
	for _, irow := range inner.rows {
		kb.Reset()
		null := false
		for _, p := range key.innerPos {
			if irow[p].IsNull() {
				null = true
				break
			}
			kb.WriteString(irow[p].Key())
			kb.WriteByte('|')
		}
		if null {
			continue
		}
		build[kb.String()] = append(build[kb.String()], irow)
	}
	for _, orow := range outer.rows {
		kb.Reset()
		null := false
		for _, p := range key.outerPos {
			if orow[p].IsNull() {
				null = true
				break
			}
			kb.WriteString(orow[p].Key())
			kb.WriteByte('|')
		}
		if null {
			continue
		}
		for _, irow := range build[kb.String()] {
			out = append(out, concatRows(orow, irow))
		}
	}
	return out
}

func concatRows(a, b storage.Row) storage.Row {
	out := make(storage.Row, 0, len(a)+len(b))
	out = append(out, a...)
	return append(out, b...)
}

func maxKey(rows []storage.Row, pos int) catalog.Value {
	var max catalog.Value
	for _, r := range rows {
		if max.IsNull() || catalog.Compare(r[pos], max) > 0 {
			max = r[pos]
		}
	}
	return max
}

// sortRowsBy is a helper used in tests to check result equivalence
// independent of row order.
func sortRowsBy(rows []storage.Row) {
	sort.Slice(rows, func(i, j int) bool {
		for k := range rows[i] {
			if k >= len(rows[j]) {
				return false
			}
			if cmp := catalog.Compare(rows[i][k], rows[j][k]); cmp != 0 {
				return cmp < 0
			}
		}
		return len(rows[i]) < len(rows[j])
	})
}
