package executor

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"galo/internal/catalog"
	"galo/internal/qgm"
	"galo/internal/sqlparser"
	"galo/internal/storage"
)

// joinKey describes the equi-join columns between the outer and inner inputs
// of a join, as positions into the respective rowsets.
type joinKey struct {
	outerPos []int
	innerPos []int
}

// runJoin executes one join operator. Result rows are always computed with a
// hash-based algorithm for speed; the simulated time is charged according to
// the operator's own execution characteristics over the actual row counts.
func (c *execContext) runJoin(node *qgm.Node) (*rowset, error) {
	outer, err := c.run(node.Outer)
	if err != nil {
		return nil, err
	}
	inner, err := c.run(node.Inner)
	if err != nil {
		return nil, err
	}
	key, preds := c.joinKeys(node, outer, inner)
	joined := hashJoinRows(outer, inner, key)
	cols := append(append([]string{}, outer.cols...), inner.cols...)
	out := &rowset{cols: cols, rows: joined}

	outerRows := float64(len(outer.rows))
	innerRows := float64(len(inner.rows))
	outRows := float64(len(joined))
	cpu := c.cfg.CPUSpeed

	switch node.Op {
	case qgm.OpHSJOIN:
		probeFactor := 1.0
		if node.BloomFilter {
			probeFactor = 0.6
		}
		millis := innerRows*cpu*2 + outerRows*cpu*probeFactor + outRows*cpu*0.1
		buildPages := pagesOf(c.cfg, innerRows, rowWidth(inner))
		if buildPages > float64(c.cfg.SortHeapPages) {
			spill := buildPages
			outerPages := pagesOf(c.cfg, outerRows, rowWidth(outer))
			if node.BloomFilter {
				outerPages *= 0.5
			}
			spill += outerPages
			millis += 2 * spill * c.rt()
			c.stats.SortSpillPages += int64(spill)
			c.stats.PhysicalReads += int64(spill)
		}
		c.stats.CPURows += int64(innerRows + outerRows)
		c.charge(node, millis, len(joined))

	case qgm.OpNLJOIN:
		matchedPerProbe := 0.0
		if outerRows > 0 {
			matchedPerProbe = outRows / outerRows
		}
		perProbe := c.nlProbeMillis(node.Inner, matchedPerProbe, innerRows)
		millis := outerRows*perProbe + outRows*cpu
		c.stats.CPURows += int64(outerRows)
		c.charge(node, millis, len(joined))

	case qgm.OpMSJOIN:
		// A merge join over sorted inputs can stop reading the outer as soon
		// as its key exceeds the largest inner key (the Figure 8 early-out).
		outerProcessed := outerRows
		if node.EarlyOut && len(key.outerPos) > 0 && innerRows > 0 {
			maxInner := maxKey(inner, key.innerPos[0])
			processed := 0
			for _, r := range outer.rows {
				if catalog.Compare(r[key.outerPos[0]], maxInner) <= 0 {
					processed++
				}
			}
			outerProcessed = float64(processed) + 1
			if outerProcessed > outerRows {
				outerProcessed = outerRows
			}
		}
		if innerRows == 0 {
			outerProcessed = 1
		}
		// Same formula as the optimizer's msjoinCost, over actual row counts:
		// a single interleaved pass over pre-sorted inputs.
		millis := (outerProcessed+innerRows)*cpu*0.5 + outRows*cpu*0.1
		c.stats.CPURows += int64(outerProcessed + innerRows)
		c.charge(node, millis, len(joined))
	default:
		return nil, fmt.Errorf("executor: unsupported join %s", node.Op)
	}
	_ = preds
	return out, nil
}

// nlProbeMillis is the per-outer-row cost of probing the inner input of a
// nested-loop join.
func (c *execContext) nlProbeMillis(innerNode *qgm.Node, matchedPerProbe, innerRows float64) float64 {
	cfg := c.cfg
	tablePages := float64(c.exec.DB.Pages(innerNode.Table))
	fitsBP := tablePages <= float64(cfg.BufferPoolPages)
	if innerNode.Op == qgm.OpIXSCAN || innerNode.Op == qgm.OpFETCH {
		cr := 0.5
		if innerNode.Table != "" && innerNode.Index != "" {
			if def := c.exec.DB.Catalog.Table(innerNode.Table); def != nil {
				if idx := def.IndexByName(innerNode.Index); idx != nil {
					cr = idx.ClusterRatio
				}
			}
		}
		perProbe := cfg.Overhead * 0.5
		if fitsBP {
			perProbe = c.rt()
		}
		fetchRows := math.Max(matchedPerProbe, 1)
		randomIO := cfg.Overhead
		if fitsBP {
			randomIO = c.rt() * 0.25
		}
		if randomIO > 0 {
			c.stats.PhysicalReads += int64(fetchRows * (1 - cr))
		}
		return perProbe + fetchRows*(1-cr)*randomIO + fetchRows*cr*c.rt()/8 + fetchRows*cfg.CPUSpeed
	}
	// Scan probe.
	if fitsBP {
		return tablePages*c.rt()*0.05 + innerRows*cfg.CPUSpeed
	}
	return tablePages*c.rt() + innerRows*cfg.CPUSpeed
}

// joinKeys finds the equi-join column positions between the two inputs.
func (c *execContext) joinKeys(node *qgm.Node, outer, inner *rowset) (joinKey, []sqlparser.Predicate) {
	outerInst := instanceSet(node.Outer)
	innerInst := instanceSet(node.Inner)
	var key joinKey
	var used []sqlparser.Predicate
	for _, p := range c.query.JoinPredicates() {
		li := c.refToInst[strings.ToUpper(p.Left.Table)]
		ri := c.refToInst[strings.ToUpper(p.Right.Table)]
		var op, ip int
		switch {
		case outerInst[li] && innerInst[ri]:
			op = outer.colIndex(li + "." + p.Left.Column)
			ip = inner.colIndex(ri + "." + p.Right.Column)
		case outerInst[ri] && innerInst[li]:
			op = outer.colIndex(ri + "." + p.Right.Column)
			ip = inner.colIndex(li + "." + p.Left.Column)
		default:
			continue
		}
		if op >= 0 && ip >= 0 {
			key.outerPos = append(key.outerPos, op)
			key.innerPos = append(key.innerPos, ip)
			used = append(used, p)
		}
	}
	return key, used
}

func instanceSet(n *qgm.Node) map[string]bool {
	set := map[string]bool{}
	n.Walk(func(x *qgm.Node) {
		if x.TableInstance != "" {
			set[x.TableInstance] = true
		}
	})
	return set
}

// hashJoinRows computes the equi-join of two rowsets. With no key it degrades
// to a cartesian product.
func hashJoinRows(outer, inner *rowset, key joinKey) []storage.Row {
	var out []storage.Row
	if len(key.outerPos) == 0 {
		for _, orow := range outer.rows {
			for _, irow := range inner.rows {
				out = append(out, concatRows(orow, irow))
			}
		}
		return out
	}
	build := make(map[string][]storage.Row, len(inner.rows))
	var kb strings.Builder
	for _, irow := range inner.rows {
		kb.Reset()
		null := false
		for _, p := range key.innerPos {
			if irow[p].IsNull() {
				null = true
				break
			}
			kb.WriteString(irow[p].Key())
			kb.WriteByte('|')
		}
		if null {
			continue
		}
		build[kb.String()] = append(build[kb.String()], irow)
	}
	for _, orow := range outer.rows {
		kb.Reset()
		null := false
		for _, p := range key.outerPos {
			if orow[p].IsNull() {
				null = true
				break
			}
			kb.WriteString(orow[p].Key())
			kb.WriteByte('|')
		}
		if null {
			continue
		}
		for _, irow := range build[kb.String()] {
			out = append(out, concatRows(orow, irow))
		}
	}
	return out
}

func concatRows(a, b storage.Row) storage.Row {
	out := make(storage.Row, 0, len(a)+len(b))
	out = append(out, a...)
	return append(out, b...)
}

func maxKey(rs *rowset, pos int) catalog.Value {
	var max catalog.Value
	for _, r := range rs.rows {
		if max.IsNull() || catalog.Compare(r[pos], max) > 0 {
			max = r[pos]
		}
	}
	return max
}

// sortRowsBy is a helper used in tests to check result equivalence
// independent of row order.
func sortRowsBy(rows []storage.Row) {
	sort.Slice(rows, func(i, j int) bool {
		for k := range rows[i] {
			if k >= len(rows[j]) {
				return false
			}
			if cmp := catalog.Compare(rows[i][k], rows[j][k]); cmp != 0 {
				return cmp < 0
			}
		}
		return len(rows[i]) < len(rows[j])
	})
}
