package executor

import (
	"strings"
	"testing"

	"galo/internal/catalog"
	"galo/internal/optimizer"
	"galo/internal/qgm"
	"galo/internal/sqlparser"
	"galo/internal/storage"
	"galo/internal/workload/tpcds"
)

var (
	testDB  *storage.Database
	testOpt *optimizer.Optimizer
)

func setup(t *testing.T) (*storage.Database, *optimizer.Optimizer, *Executor) {
	t.Helper()
	if testDB == nil {
		var err error
		testDB, err = tpcds.Generate(tpcds.GenOptions{Seed: 5, Scale: 0.1, Hazards: true})
		if err != nil {
			t.Fatalf("generate: %v", err)
		}
		testOpt = optimizer.New(testDB.Catalog, optimizer.DefaultOptions())
	}
	return testDB, testOpt, New(testDB)
}

// referenceRows computes the expected result of a conjunctive query by brute
// force, for correctness checks against arbitrary plans.
func referenceRows(t *testing.T, db *storage.Database, q *sqlparser.Query) int {
	t.Helper()
	work := q.Clone()
	if err := sqlparser.Resolve(work, db.Catalog.Schema); err != nil {
		t.Fatal(err)
	}
	// Start with the first table's filtered rows and iteratively join.
	type partial struct {
		cols map[string]catalog.Value
	}
	var parts []map[string]catalog.Value
	for i, ref := range work.From {
		tbl := db.Table(ref.Table)
		preds := sqlparser.PredicatesFor(work, ref.Name())
		var filtered []map[string]catalog.Value
		for _, row := range tbl.Rows {
			match := true
			for _, p := range preds {
				if !evalPredicate(p, storage.Value(tbl.Def, row, p.Left.Column)) {
					match = false
					break
				}
			}
			if !match {
				continue
			}
			m := map[string]catalog.Value{}
			for ci, col := range tbl.Def.Columns {
				m[strings.ToUpper(ref.Name())+"."+col.Name] = row[ci]
			}
			filtered = append(filtered, m)
		}
		if i == 0 {
			parts = filtered
			continue
		}
		var next []map[string]catalog.Value
		joins := joinPredsTouching(work, ref.Name(), i)
		for _, left := range parts {
			for _, right := range filtered {
				ok := true
				for _, jp := range joins {
					lv, lok := left[strings.ToUpper(jp.Left.Table)+"."+jp.Left.Column]
					rv, rok := right[strings.ToUpper(jp.Left.Table)+"."+jp.Left.Column]
					var a, b catalog.Value
					if lok {
						a = lv
					} else {
						a = left[strings.ToUpper(jp.Right.Table)+"."+jp.Right.Column]
					}
					if rok {
						b = rv
					} else {
						b = right[strings.ToUpper(jp.Right.Table)+"."+jp.Right.Column]
					}
					if !catalog.Equal(a, b) {
						ok = false
						break
					}
				}
				if ok {
					merged := map[string]catalog.Value{}
					for k, v := range left {
						merged[k] = v
					}
					for k, v := range right {
						merged[k] = v
					}
					next = append(next, merged)
				}
			}
		}
		parts = next
	}
	_ = partial{}
	return len(parts)
}

// joinPredsTouching returns join predicates between the i-th FROM entry and
// any earlier entry.
func joinPredsTouching(q *sqlparser.Query, refName string, idx int) []sqlparser.Predicate {
	earlier := map[string]bool{}
	for i := 0; i < idx; i++ {
		earlier[strings.ToUpper(q.From[i].Name())] = true
	}
	var out []sqlparser.Predicate
	for _, p := range q.JoinPredicates() {
		l, r := strings.ToUpper(p.Left.Table), strings.ToUpper(p.Right.Table)
		if (l == strings.ToUpper(refName) && earlier[r]) || (r == strings.ToUpper(refName) && earlier[l]) {
			out = append(out, p)
		}
	}
	return out
}

func TestExecuteSingleTableFilter(t *testing.T) {
	db, opt, ex := setup(t)
	q := sqlparser.MustParse(`SELECT i_item_desc, i_current_price FROM item WHERE i_category = 'Music'`)
	plan := opt.MustOptimize(q)
	res, err := ex.Execute(plan, q)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	want := db.CountWhereEqual(tpcds.Item, "I_CATEGORY", catalog.String("Music"))
	if len(res.Rows) != want {
		t.Errorf("rows = %d, want %d", len(res.Rows), want)
	}
	if len(res.Columns) != 2 {
		t.Errorf("columns = %v", res.Columns)
	}
	if res.Stats.ElapsedMillis <= 0 {
		t.Errorf("elapsed = %v", res.Stats.ElapsedMillis)
	}
	if plan.ActualMillis != res.Stats.ElapsedMillis {
		t.Errorf("plan.ActualMillis not set")
	}
}

func TestExecuteJoinMatchesBruteForce(t *testing.T) {
	db, opt, ex := setup(t)
	q := sqlparser.MustParse(`SELECT i_item_desc, ws_quantity FROM web_sales, item
		WHERE ws_item_sk = i_item_sk AND i_category = 'Jewelry'`)
	plan := opt.MustOptimize(q)
	res, err := ex.Execute(plan, q)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	want := referenceRows(t, db, q)
	if len(res.Rows) != want {
		t.Errorf("optimizer plan rows = %d, brute force = %d", len(res.Rows), want)
	}
}

func TestAllJoinMethodsProduceSameResult(t *testing.T) {
	db, opt, ex := setup(t)
	q := sqlparser.MustParse(`SELECT i_item_desc, ws_quantity FROM web_sales, item
		WHERE ws_item_sk = i_item_sk AND i_category = 'Books'`)
	want := referenceRows(t, db, q)
	for _, method := range []qgm.OpType{qgm.OpHSJOIN, qgm.OpMSJOIN, qgm.OpNLJOIN} {
		spec := optimizer.Join(method, optimizer.Leaf("WEB_SALES"), optimizer.Leaf("ITEM"))
		plan, err := opt.BuildPlan(q, spec)
		if err != nil {
			t.Fatalf("BuildPlan(%s): %v", method, err)
		}
		res, err := ex.Execute(plan, q)
		if err != nil {
			t.Fatalf("Execute(%s): %v", method, err)
		}
		if len(res.Rows) != want {
			t.Errorf("%s produced %d rows, want %d", method, len(res.Rows), want)
		}
		// Swapped inputs produce the same result too.
		swapped := optimizer.Join(method, optimizer.Leaf("ITEM"), optimizer.Leaf("WEB_SALES"))
		plan2, err := opt.BuildPlan(q, swapped)
		if err != nil {
			t.Fatalf("BuildPlan swapped (%s): %v", method, err)
		}
		res2, err := ex.Execute(plan2, q)
		if err != nil {
			t.Fatalf("Execute swapped (%s): %v", method, err)
		}
		if len(res2.Rows) != want {
			t.Errorf("%s (swapped) produced %d rows, want %d", method, len(res2.Rows), want)
		}
	}
}

func TestThreeWayJoinCorrectAcrossPlans(t *testing.T) {
	db, opt, ex := setup(t)
	q := tpcds.Fig3Query()
	want := referenceRows(t, db, q)
	optimal := opt.MustOptimize(q)
	res, err := ex.Execute(optimal, q)
	if err != nil {
		t.Fatalf("Execute optimal: %v", err)
	}
	if len(res.Rows) != want {
		t.Errorf("optimal plan rows = %d, want %d", len(res.Rows), want)
	}
	alt := optimizer.Join(qgm.OpHSJOIN,
		optimizer.Join(qgm.OpHSJOIN, Leaf3("DATE_DIM"), Leaf3("WEB_SALES")),
		Leaf3("ITEM"))
	plan, err := opt.BuildPlan(q, alt)
	if err != nil {
		t.Fatalf("BuildPlan: %v", err)
	}
	res2, err := ex.Execute(plan, q)
	if err != nil {
		t.Fatalf("Execute alt: %v", err)
	}
	if len(res2.Rows) != want {
		t.Errorf("alternative plan rows = %d, want %d", len(res2.Rows), want)
	}
}

// Leaf3 is a local alias to keep the spec construction readable.
func Leaf3(ref string) *optimizer.Spec { return optimizer.Leaf(ref) }

func TestActualCardinalitiesAnnotated(t *testing.T) {
	_, opt, ex := setup(t)
	q := tpcds.Fig8Query()
	plan := opt.MustOptimize(q)
	if _, err := ex.Execute(plan, q); err != nil {
		t.Fatalf("Execute: %v", err)
	}
	annotated := 0
	plan.Root.Walk(func(n *qgm.Node) {
		if n.ActMillis > 0 || n.ActCardinality > 0 {
			annotated++
		}
	})
	if annotated < plan.NumOps()/2 {
		t.Errorf("only %d of %d operators annotated with actuals", annotated, plan.NumOps())
	}
}

func TestEstimationErrorVisibleAtRuntime(t *testing.T) {
	// With hazards installed the optimizer's estimate for a stale fact table
	// diverges from the actual row count revealed by execution.
	db, opt, ex := setup(t)
	q := sqlparser.MustParse(`SELECT cs_quantity FROM catalog_sales WHERE cs_quantity > 0`)
	plan := opt.MustOptimize(q)
	if _, err := ex.Execute(plan, q); err != nil {
		t.Fatalf("Execute: %v", err)
	}
	scan := plan.Root.Scans()[0]
	if scan.ActCardinality < scan.EstCardinality*2 {
		t.Errorf("expected under-estimation: est=%v act=%v", scan.EstCardinality, scan.ActCardinality)
	}
	_ = db
}

func TestGroupByAndOrderByExecution(t *testing.T) {
	db, _, ex := setup(t)
	opt := optimizer.New(db.Catalog, optimizer.DefaultOptions())
	q := sqlparser.MustParse(`SELECT i_category FROM item WHERE i_current_price > 0 GROUP BY i_category ORDER BY i_category`)
	plan := opt.MustOptimize(q)
	res, err := ex.Execute(plan, q)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if len(res.Rows) == 0 || len(res.Rows) > len(tpcds.Categories) {
		t.Errorf("group by produced %d rows", len(res.Rows))
	}
	for i := 1; i < len(res.Rows); i++ {
		if catalog.Compare(res.Rows[i-1][0], res.Rows[i][0]) > 0 {
			t.Errorf("result not ordered at %d: %v > %v", i, res.Rows[i-1][0], res.Rows[i][0])
		}
	}
}

func TestPredicateEvaluation(t *testing.T) {
	mk := func(sql string) sqlparser.Predicate {
		q := sqlparser.MustParse("SELECT * FROM item WHERE " + sql)
		return q.Where[0]
	}
	cases := []struct {
		pred sqlparser.Predicate
		val  catalog.Value
		want bool
	}{
		{mk("i_x = 5"), catalog.Int(5), true},
		{mk("i_x = 5"), catalog.Int(6), false},
		{mk("i_x <> 5"), catalog.Int(6), true},
		{mk("i_x < 5"), catalog.Int(4), true},
		{mk("i_x >= 5"), catalog.Int(5), true},
		{mk("i_x BETWEEN 2 AND 8"), catalog.Int(8), true},
		{mk("i_x BETWEEN 2 AND 8"), catalog.Int(9), false},
		{mk("i_x NOT BETWEEN 2 AND 8"), catalog.Int(9), true},
		{mk("i_x IN ('a','b')"), catalog.String("b"), true},
		{mk("i_x NOT IN ('a','b')"), catalog.String("c"), true},
		{mk("i_x LIKE 'Mus%'"), catalog.String("Music"), true},
		{mk("i_x LIKE 'Mus_c'"), catalog.String("Music"), true},
		{mk("i_x NOT LIKE 'Mus%'"), catalog.String("Books"), true},
		{mk("i_x IS NULL"), catalog.Null(), true},
		{mk("i_x IS NOT NULL"), catalog.Null(), false},
		{mk("i_x = 5"), catalog.Null(), false},
	}
	for i, c := range cases {
		if got := evalPredicate(c.pred, c.val); got != c.want {
			t.Errorf("case %d (%s over %v): got %v, want %v", i, c.pred.String(), c.val, got, c.want)
		}
	}
}

func TestExecuteErrors(t *testing.T) {
	_, opt, ex := setup(t)
	q := sqlparser.MustParse(`SELECT i_item_desc FROM item WHERE i_category = 'Music'`)
	if _, err := ex.Execute(nil, q); err == nil {
		t.Errorf("nil plan should fail")
	}
	plan := opt.MustOptimize(q)
	other := sqlparser.MustParse(`SELECT ws_quantity FROM web_sales WHERE ws_quantity > 0`)
	if _, err := ex.Execute(plan, other); err == nil {
		t.Errorf("mismatched query/plan should fail")
	}
}

func TestSpilledHashJoinSlowerThanBloomFiltered(t *testing.T) {
	// The same HSJOIN with and without a bloom filter: the filtered variant
	// must not be slower (Figure 4's fix direction).
	_, opt, ex := setup(t)
	q := sqlparser.MustParse(`SELECT ss_quantity FROM store_sales, date_dim
		WHERE ss_sold_date_sk = d_date_sk AND d_year >= 1990`)
	spec := optimizer.Join(qgm.OpHSJOIN, optimizer.Leaf("STORE_SALES"), optimizer.Leaf("DATE_DIM"))
	plan, err := opt.BuildPlan(q, spec)
	if err != nil {
		t.Fatal(err)
	}
	join := plan.Root.Joins()[0]
	join.BloomFilter = false
	if _, err := ex.Execute(plan, q); err != nil {
		t.Fatal(err)
	}
	slow := plan.ActualMillis
	join.BloomFilter = true
	if _, err := ex.Execute(plan, q); err != nil {
		t.Fatal(err)
	}
	fast := plan.ActualMillis
	if fast > slow {
		t.Errorf("bloom-filtered join slower: %v > %v", fast, slow)
	}
}
