package executor

import (
	"regexp"
	"sync"

	"galo/internal/storage"
)

// residency is the single high-water implementation of intermediate-row
// accounting, shared by the streaming engine, the materializing baseline and
// the exchange operator (RunStats.PeakIntermediateRows/Bytes). An operator
// holds the rows it buffers (sort buffers, hash build sides, group-by key
// sets, materialized rowsets) and releases them when its state is dropped;
// the peak is the worst simultaneous footprint.
//
// All holds and releases of one execution happen on the thread currently
// driving the cursor (exchange workers buffer locally and account through the
// merge side), so the tracker needs no synchronization.
type residency struct {
	curRows, peakRows   int64
	curBytes, peakBytes int64
}

func (r *residency) hold(rows int, bytes int64) {
	r.curRows += int64(rows)
	r.curBytes += bytes
	if r.curRows > r.peakRows {
		r.peakRows = r.curRows
	}
	if r.curBytes > r.peakBytes {
		r.peakBytes = r.curBytes
	}
}

func (r *residency) release(rows int, bytes int64) {
	r.curRows -= int64(rows)
	r.curBytes -= bytes
}

// rowsFootprint sizes a buffered row slice for the residency accounting: the
// sampled row width times the row count (the same estimate the cost formulas
// use, so accounting and spill decisions agree).
func rowsFootprint(rows []storage.Row, ncols int) int64 {
	var sample storage.Row
	if len(rows) > 0 {
		sample = rows[0]
	}
	return int64(rowWidthOf(sample, ncols)) * int64(len(rows))
}

// likeCacheCap bounds the process-wide compiled-LIKE-pattern cache. Real
// workloads repeat a small set of patterns across executions (routinized
// re-optimization re-runs the same queries), so a few hundred entries cover
// them; an adversarial stream of unique patterns just cycles the cache.
const likeCacheCap = 256

// likePatternCache is the process-wide compiled LIKE pattern cache. It
// replaced the per-execution map: routinized repeats of the same query were
// recompiling identical patterns once per execution, and exchange workers
// need a concurrency-safe path anyway.
type likePatternCache struct {
	mu sync.Mutex
	m  map[string]*regexp.Regexp
}

var likeCache = &likePatternCache{m: make(map[string]*regexp.Regexp)}

// get returns the compiled regexp for a LIKE pattern (nil when the pattern
// cannot compile — also cached, so a bad pattern is not recompiled per row).
func (lc *likePatternCache) get(pattern string) *regexp.Regexp {
	lc.mu.Lock()
	re, ok := lc.m[pattern]
	lc.mu.Unlock()
	if ok {
		return re
	}
	// Compile outside the lock; a concurrent miss on the same pattern just
	// compiles twice and the second insert wins harmlessly.
	re = compileLike(pattern)
	lc.mu.Lock()
	if len(lc.m) >= likeCacheCap {
		// Evict an arbitrary entry (map iteration order): bounded beats LRU
		// bookkeeping on a cache this small and this hot.
		for k := range lc.m {
			delete(lc.m, k)
			break
		}
	}
	lc.m[pattern] = re
	lc.mu.Unlock()
	return re
}

// size reports the current entry count (tests).
func (lc *likePatternCache) size() int {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return len(lc.m)
}
