package executor

import (
	"fmt"
	"reflect"
	"testing"

	"galo/internal/catalog"
	"galo/internal/optimizer"
	"galo/internal/qgm"
	"galo/internal/sqlparser"
	"galo/internal/storage"
)

// assertParity executes the same plan shape on the streaming path and on the
// materializing baseline and requires byte-identical rows, identical
// per-operator actuals, and identical aggregate stats — the golden
// equivalence the cost-parity invariant promises. It returns both stat sets
// so callers can additionally compare the peak-intermediate accounting (the
// one field the two paths are allowed — required, even — to disagree on).
func assertParity(t *testing.T, db *storage.Database, opt *optimizer.Optimizer, q *sqlparser.Query, spec *optimizer.Spec) (stream, mat RunStats) {
	t.Helper()
	buildPlan := func() *qgm.Plan {
		if spec == nil {
			return opt.MustOptimize(q)
		}
		plan, err := opt.BuildPlan(q, spec)
		if err != nil {
			t.Fatalf("BuildPlan: %v", err)
		}
		return plan
	}
	sPlan, mPlan := buildPlan(), buildPlan()

	sEx := New(db)
	mEx := New(db)
	mEx.Materialize = true
	sRes, err := sEx.Execute(sPlan, q)
	if err != nil {
		t.Fatalf("streaming Execute: %v", err)
	}
	mRes, err := mEx.Execute(mPlan, q)
	if err != nil {
		t.Fatalf("materializing Execute: %v", err)
	}

	if !reflect.DeepEqual(sRes.Columns, mRes.Columns) {
		t.Fatalf("columns differ: streaming=%v materializing=%v", sRes.Columns, mRes.Columns)
	}
	if len(sRes.Rows) != len(mRes.Rows) {
		t.Fatalf("row counts differ: streaming=%d materializing=%d", len(sRes.Rows), len(mRes.Rows))
	}
	for i := range sRes.Rows {
		if len(sRes.Rows[i]) != len(mRes.Rows[i]) {
			t.Fatalf("row %d widths differ", i)
		}
		for j := range sRes.Rows[i] {
			if sRes.Rows[i][j].Key() != mRes.Rows[i][j].Key() {
				t.Fatalf("row %d col %d differs: streaming=%v materializing=%v",
					i, j, sRes.Rows[i][j], mRes.Rows[i][j])
			}
		}
	}

	sOps, mOps := sPlan.Operators(), mPlan.Operators()
	if len(sOps) != len(mOps) {
		t.Fatalf("operator counts differ: %d vs %d", len(sOps), len(mOps))
	}
	for i := range sOps {
		if sOps[i].Op != mOps[i].Op {
			t.Fatalf("operator %d differs: %s vs %s", i, sOps[i].Op, mOps[i].Op)
		}
		if sOps[i].ActMillis != mOps[i].ActMillis {
			t.Errorf("%s#%d ActMillis: streaming=%v materializing=%v",
				sOps[i].Op, sOps[i].ID, sOps[i].ActMillis, mOps[i].ActMillis)
		}
		if sOps[i].ActCardinality != mOps[i].ActCardinality {
			t.Errorf("%s#%d ActCardinality: streaming=%v materializing=%v",
				sOps[i].Op, sOps[i].ID, sOps[i].ActCardinality, mOps[i].ActCardinality)
		}
	}

	// Per-operator millis are compared exactly above; the aggregate is the sum
	// of those charges, and the two paths sum them in different orders (the
	// streaming path drains a join's inner side before its outer), so allow
	// float-addition reordering noise and nothing more.
	sSt, mSt := sRes.Stats, mRes.Stats
	if sSt.Rows != mSt.Rows ||
		sSt.LogicalReads != mSt.LogicalReads || sSt.PhysicalReads != mSt.PhysicalReads ||
		sSt.CPURows != mSt.CPURows || sSt.SortSpillPages != mSt.SortSpillPages ||
		sSt.SortHeapPages != mSt.SortHeapPages {
		t.Errorf("aggregate stats differ:\n  streaming:     %+v\n  materializing: %+v", sSt, mSt)
	}
	if !withinULPs(sSt.ElapsedMillis, mSt.ElapsedMillis) {
		t.Errorf("aggregate ElapsedMillis: streaming=%v materializing=%v", sSt.ElapsedMillis, mSt.ElapsedMillis)
	}
	if !withinULPs(sPlan.ActualMillis, mPlan.ActualMillis) {
		t.Errorf("plan ActualMillis: streaming=%v materializing=%v", sPlan.ActualMillis, mPlan.ActualMillis)
	}
	if sSt.PeakIntermediateRows > mSt.PeakIntermediateRows {
		t.Errorf("streaming peak rows %d exceeds materializing %d",
			sSt.PeakIntermediateRows, mSt.PeakIntermediateRows)
	}
	return sSt, mSt
}

// withinULPs reports whether two float sums agree up to addition-reordering
// noise (a relative error of 1e-12 — a handful of ULPs — or exact equality).
func withinULPs(a, b float64) bool {
	if a == b {
		return true
	}
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	mag := a
	if mag < 0 {
		mag = -mag
	}
	if b > mag {
		mag = b
	} else if -b > mag {
		mag = -b
	}
	return diff <= mag*1e-12
}

// TestStreamingMatchesMaterializingMatrix is the golden equivalence suite
// over the operator matrix named in the roadmap: scan/ixscan access × the
// three join methods × a sort-terminated and a group-by-terminated query.
func TestStreamingMatchesMaterializingMatrix(t *testing.T) {
	db, opt, _ := setup(t)

	queries := []struct {
		name string
		sql  string
	}{
		{"sort", `SELECT i_item_desc, ws_quantity FROM web_sales, item
			WHERE ws_item_sk = i_item_sk AND i_category = 'Books' ORDER BY i_item_desc`},
		{"groupby", `SELECT i_category FROM web_sales, item
			WHERE ws_item_sk = i_item_sk AND ws_quantity > 40 GROUP BY i_category`},
	}
	accesses := []struct {
		name  string
		outer *optimizer.Spec
		inner *optimizer.Spec
	}{
		{"scan", optimizer.Leaf("WEB_SALES"), optimizer.Leaf("ITEM")},
		{"ixscan",
			optimizer.LeafAccess("WEB_SALES", qgm.OpIXSCAN, "WS_ITEM_IDX"),
			optimizer.LeafAccess("ITEM", qgm.OpFETCH, "I_ITEM_SK_IDX")},
	}

	ran := 0
	for _, method := range []qgm.OpType{qgm.OpHSJOIN, qgm.OpMSJOIN, qgm.OpNLJOIN} {
		for _, acc := range accesses {
			for _, qc := range queries {
				name := fmt.Sprintf("%s/%s/%s", method, acc.name, qc.name)
				t.Run(name, func(t *testing.T) {
					q := sqlparser.MustParse(qc.sql)
					spec := optimizer.Join(method, acc.outer, acc.inner)
					if _, err := opt.BuildPlan(q, spec); err != nil {
						t.Skipf("combination not plannable: %v", err)
					}
					assertParity(t, db, opt, q, spec)
					ran++
				})
			}
		}
	}
	if ran < 8 {
		t.Errorf("only %d matrix combinations ran; the suite lost coverage", ran)
	}
}

// TestStreamingMatchesMaterializingSingleTable covers the scan-only shapes:
// pushdown through index bounds (equality, range, BETWEEN), LIKE through the
// per-execution regexp cache, and the optimizer's own plan choice.
func TestStreamingMatchesMaterializingSingleTable(t *testing.T) {
	db, opt, _ := setup(t)
	cases := []struct {
		name string
		sql  string
		spec *optimizer.Spec
	}{
		{"optimizer-choice", `SELECT i_item_desc FROM item WHERE i_category = 'Music' ORDER BY i_item_desc`, nil},
		{"tbscan-like", `SELECT i_item_desc FROM item WHERE i_item_desc LIKE '%er%'`,
			optimizer.LeafAccess("ITEM", qgm.OpTBSCAN, "")},
		{"ixscan-eq", `SELECT i_item_id FROM item WHERE i_category = 'Music'`,
			optimizer.LeafAccess("ITEM", qgm.OpFETCH, "I_CATEGORY_IDX")},
		{"ixscan-range", `SELECT d_year FROM date_dim WHERE d_date_sk < 2451000`,
			optimizer.LeafAccess("DATE_DIM", qgm.OpIXSCAN, "D_DATE_SK")},
		{"ixscan-between", `SELECT ws_quantity FROM web_sales WHERE ws_sold_date_sk BETWEEN 2450900 AND 2451200`,
			optimizer.LeafAccess("WEB_SALES", qgm.OpIXSCAN, "WS_SOLD_DATE_IDX")},
		{"groupby-orderby", `SELECT i_category FROM item WHERE i_current_price > 0 GROUP BY i_category ORDER BY i_category`, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			q := sqlparser.MustParse(tc.sql)
			assertParity(t, db, opt, q, tc.spec)
		})
	}
}

// TestStreamingBoundsIntermediateRows pins the point of the refactor: on a
// join pipeline the streaming path's peak resident intermediate rows stay
// well under the materializing baseline's.
func TestStreamingBoundsIntermediateRows(t *testing.T) {
	db, opt, _ := setup(t)
	q := sqlparser.MustParse(`SELECT i_item_desc, ws_quantity FROM web_sales, item
		WHERE ws_item_sk = i_item_sk ORDER BY i_item_desc`)
	spec := optimizer.Join(qgm.OpHSJOIN, optimizer.Leaf("WEB_SALES"), optimizer.Leaf("ITEM"))
	stream, mat := assertParity(t, db, opt, q, spec)
	if stream.PeakIntermediateRows <= 0 || mat.PeakIntermediateRows <= 0 {
		t.Fatalf("peak accounting missing: streaming=%d materializing=%d",
			stream.PeakIntermediateRows, mat.PeakIntermediateRows)
	}
	if stream.PeakIntermediateRows*2 > mat.PeakIntermediateRows {
		t.Errorf("streaming peak %d rows is not ≤ half the materializing peak %d rows",
			stream.PeakIntermediateRows, mat.PeakIntermediateRows)
	}
}

// TestEarlyTerminationStopsUpstreamScans proves a bounded consumer stops the
// pipeline: closing the cursor after a few rows must leave the scan charged
// for only the rows it actually produced, not the whole table.
func TestEarlyTerminationStopsUpstreamScans(t *testing.T) {
	db, opt, ex := setup(t)
	q := sqlparser.MustParse(`SELECT ss_quantity FROM store_sales WHERE ss_quantity >= 0`)
	plan := opt.MustOptimize(q)

	full, err := ex.Execute(plan, q)
	if err != nil {
		t.Fatalf("full Execute: %v", err)
	}
	if full.Stats.Rows < 100 {
		t.Fatalf("table too small for the test: %d rows", full.Stats.Rows)
	}

	cur, err := ex.Open(plan, q)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	const want = 3
	for i := 0; i < want; i++ {
		if _, ok := cur.Next(); !ok {
			t.Fatalf("cursor exhausted after %d rows", i)
		}
	}
	cur.Close()
	st := cur.Stats()
	if st.Rows != want {
		t.Errorf("partial Rows = %d, want %d", st.Rows, want)
	}
	if st.CPURows >= full.Stats.CPURows {
		t.Errorf("partial CPURows %d not below full-run %d — upstream scan did not stop", st.CPURows, full.Stats.CPURows)
	}
	if st.ElapsedMillis >= full.Stats.ElapsedMillis {
		t.Errorf("partial elapsed %v not below full-run %v", st.ElapsedMillis, full.Stats.ElapsedMillis)
	}
	// ResetActuals at Open must have cleared the full run's annotations, and
	// the partial run re-annotates with partial truth only.
	for _, scan := range plan.Root.Scans() {
		if scan.ActCardinality > want {
			t.Errorf("scan %s ActCardinality = %v after pulling %d rows — stale or unstopped",
				scan.Op, scan.ActCardinality, want)
		}
	}
	_ = db
}

// BenchmarkHashJoin pins the pre-sizing satellite: build map and output slice
// are allocated from (actual build count, estimated output) instead of
// growing from zero. Run with -benchmem to watch allocs/op.
func BenchmarkHashJoin(b *testing.B) {
	const nOuter, nInner = 4096, 512
	outer := &rowset{cols: []string{"Q1.A", "Q1.B"}}
	inner := &rowset{cols: []string{"Q2.A", "Q2.C"}}
	outer.rows = make([]storage.Row, nOuter)
	inner.rows = make([]storage.Row, nInner)
	for i := range outer.rows {
		outer.rows[i] = storage.Row{catalog.Int(int64(i % nInner)), catalog.Int(int64(i))}
	}
	for i := range inner.rows {
		inner.rows[i] = storage.Row{catalog.Int(int64(i)), catalog.Int(int64(-i))}
	}
	key := joinKey{outerPos: []int{0}, innerPos: []int{0}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := hashJoinRows(outer, inner, key, nOuter)
		if len(out) != nOuter {
			b.Fatalf("join produced %d rows, want %d", len(out), nOuter)
		}
	}
}
