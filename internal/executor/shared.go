package executor

import (
	"sync"
	"sync/atomic"

	"galo/internal/storage"
)

// Shared scans: when Executor.ShareScans is on and two executions scan the
// same large base table concurrently, the registry spawns one producer
// goroutine that pins the table snapshot and reads it once, fanning row
// batches to every attached consumer. A consumer that attaches after the
// producer has advanced receives [attachPos, end) from the feed and covers
// [0, attachPos) itself afterwards, so it still sees every snapshot row
// exactly once — counts and charges are identical to a private scan; only
// the row order rotates by the attach position.
//
// The producer never blocks on a consumer: sends are non-blocking, and a
// consumer whose channel is full is detached (its feed closes with a resume
// position; it falls back to private reads). That is what makes the path
// deadlock-free even when a cursor attaches and then never pulls — e.g. a
// join whose outer is not drained until its inner build finishes.

const (
	// sharedScanMinRows is the smallest table worth sharing: below it a
	// private pass is cheaper than the channel traffic.
	sharedScanMinRows = 2048
	sharedScanBatch   = 256
	sharedScanDepth   = 16 // batches buffered per consumer feed
)

// scanFeed is one consumer's subscription to a shared producer pass.
type scanFeed struct {
	ch    chan []storage.Row
	start int // snapshot position the producer was at when we attached
	// resume is the first snapshot position NOT delivered through ch; set by
	// the producer before closing ch (the close is the happens-before edge).
	resume int
}

// scanShare is one in-flight shared pass over a table snapshot.
type scanShare struct {
	table *storage.Table
	rows  []storage.Row // pinned snapshot

	mu    sync.Mutex
	feeds []*scanFeed // nil slots are detached consumers
	pos   int
	done  bool
}

// scanRegistry tracks, per executor, which tables have scans in flight so a
// second concurrent scan can trigger a shared pass.
type scanRegistry struct {
	mu      sync.Mutex
	private map[*storage.Table]int // open private tbscan iterators
	shares  map[*storage.Table]*scanShare

	passes    atomic.Int64 // shared producer passes started
	attached  atomic.Int64 // consumers that joined a shared pass
	overflows atomic.Int64 // consumers detached for falling behind
}

func newScanRegistry() *scanRegistry {
	return &scanRegistry{
		private: make(map[*storage.Table]int),
		shares:  make(map[*storage.Table]*scanShare),
	}
}

// attach registers a new scan of t. If a shared pass is running (or another
// scan is already mid-flight, which spawns one), the returned feed — and the
// snapshot the pass pinned — replace private reading; a nil feed means scan
// privately.
func (r *scanRegistry) attach(t *storage.Table) ([]storage.Row, *scanFeed) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if sh := r.shares[t]; sh != nil {
		if f := sh.subscribe(); f != nil {
			r.attached.Add(1)
			return sh.rows, f
		}
	}
	if r.private[t] > 0 {
		// A concurrent scan of this table is mid-flight: start one shared
		// pass for every scan from here on (the in-flight one finishes
		// privately — it is already past an unknown position).
		sh := &scanShare{table: t, rows: t.Rows}
		r.shares[t] = sh
		f := sh.subscribe()
		r.passes.Add(1)
		r.attached.Add(1)
		go sh.produce(r)
		return sh.rows, f
	}
	r.private[t]++
	return nil, nil
}

// detach unregisters a finished or closed scan.
func (r *scanRegistry) detach(t *storage.Table, feed *scanFeed, private bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if private {
		if r.private[t] > 0 {
			r.private[t]--
		}
		return
	}
	if feed == nil {
		return
	}
	// Still feeding: remove our slot so the producer stops sending to us.
	if sh := r.shares[t]; sh != nil {
		sh.mu.Lock()
		for i, f := range sh.feeds {
			if f == feed {
				sh.feeds[i] = nil
			}
		}
		sh.mu.Unlock()
	}
}

// finish removes a completed share from the registry.
func (r *scanRegistry) finish(sh *scanShare) {
	r.mu.Lock()
	if r.shares[sh.table] == sh {
		delete(r.shares, sh.table)
	}
	r.mu.Unlock()
}

// subscribe adds a consumer feed starting at the producer's current
// position; nil once the pass has completed.
func (s *scanShare) subscribe() *scanFeed {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done {
		return nil
	}
	f := &scanFeed{ch: make(chan []storage.Row, sharedScanDepth), start: s.pos}
	s.feeds = append(s.feeds, f)
	return f
}

// produce is the shared pass: one sweep over the pinned snapshot, fanning
// each batch to every live feed with a non-blocking send. It always runs to
// completion (or until every consumer detached) and closes every feed it
// still owns — consumers may therefore block on their channel safely.
func (s *scanShare) produce(reg *scanRegistry) {
	rows := s.rows
	for {
		s.mu.Lock()
		if s.pos >= len(rows) {
			break // holds s.mu; closed below
		}
		end := s.pos + sharedScanBatch
		if end > len(rows) {
			end = len(rows)
		}
		batch := rows[s.pos:end]
		live := 0
		for i, f := range s.feeds {
			if f == nil {
				continue
			}
			select {
			case f.ch <- batch:
				live++
			default:
				// Consumer too slow (or not pulling at all): detach it. It
				// resumes privately at this batch — everything already in
				// its channel buffer was sent before this position.
				f.resume = s.pos
				close(f.ch)
				s.feeds[i] = nil
				reg.overflows.Add(1)
			}
		}
		s.pos = end
		if live == 0 {
			// Nobody left listening; stop reading.
			break // holds s.mu; closed below
		}
		s.mu.Unlock()
	}
	// s.mu held here.
	for i, f := range s.feeds {
		if f == nil {
			continue
		}
		f.resume = s.pos
		close(f.ch)
		s.feeds[i] = nil
	}
	s.done = true
	s.mu.Unlock()
	reg.finish(s)
}
