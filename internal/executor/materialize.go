package executor

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"galo/internal/catalog"
	"galo/internal/qgm"
	"galo/internal/sqlparser"
	"galo/internal/storage"
)

// This file is the pre-streaming executor, kept verbatim behind
// Executor.Materialize: every operator drains its input into a full rowset
// before producing output. It is the golden baseline the streaming path is
// tested against — both must return byte-identical rows and charge identical
// per-operator actuals — and the comparison point for BENCH_executor's
// peak-intermediate-row measurements. The only additions over the original
// code are the holdRowset/releaseRowset calls feeding the intermediate-row
// accounting (an operator's output is held before its inputs are released,
// so the peak reflects the in+out residency materialization actually has).

// holdRowset charges a materialized intermediate rowset to the same residency
// tracker the streaming path uses (execContext.res), remembering the footprint
// so release returns exactly what was held.
func (c *execContext) holdRowset(rs *rowset) {
	rs.heldBytes = rowsFootprint(rs.rows, len(rs.cols))
	rs.heldRows = len(rs.rows)
	c.hold(rs.heldRows, rs.heldBytes)
}

// releaseRowset returns a materialized rowset's rows to the accounting.
func (c *execContext) releaseRowset(rs *rowset) {
	c.release(rs.heldRows, rs.heldBytes)
	rs.heldRows, rs.heldBytes = 0, 0
}

// matRun executes the subtree rooted at node and returns its output rows.
func (c *execContext) matRun(node *qgm.Node) (*rowset, error) {
	switch {
	case node.Op == qgm.OpRETURN:
		rs, err := c.matRun(node.Outer)
		if err != nil {
			return nil, err
		}
		c.charge(node, float64(len(rs.rows))*c.cfg.CPUSpeed*0.1, len(rs.rows))
		return rs, nil
	case node.Op.IsScan():
		return c.matScan(node)
	case node.Op.IsJoin():
		return c.matJoin(node)
	case node.Op == qgm.OpSORT:
		return c.matSort(node)
	case node.Op == qgm.OpFILTER:
		rs, err := c.matRun(node.Outer)
		if err != nil {
			return nil, err
		}
		c.charge(node, float64(len(rs.rows))*c.cfg.CPUSpeed*0.2, len(rs.rows))
		return rs, nil
	case node.Op == qgm.OpGRPBY:
		return c.matGroupBy(node)
	default:
		return nil, fmt.Errorf("executor: unsupported operator %s", node.Op)
	}
}

func (c *execContext) matScan(node *qgm.Node) (*rowset, error) {
	refName := c.instToRef[node.TableInstance]
	if refName == "" {
		return nil, fmt.Errorf("executor: plan instance %s not present in query", node.TableInstance)
	}
	table := c.exec.DB.Table(node.Table)
	if table == nil {
		return nil, fmt.Errorf("executor: unknown table %s", node.Table)
	}
	preds := sqlparser.PredicatesFor(c.query, refName)
	cols := scanColumns(node.TableInstance, table.Def)
	tablePages := float64(c.exec.DB.Pages(node.Table))
	tableRows := float64(len(table.Rows))
	rowsPerPage := float64(c.exec.DB.RowsPerPage(node.Table))

	switch node.Op {
	case qgm.OpTBSCAN:
		var out []storage.Row
		for _, row := range table.Rows {
			if c.rowMatches(table.Def, row, preds) {
				out = append(out, row)
			}
		}
		c.stats.LogicalReads += int64(tablePages)
		c.stats.PhysicalReads += int64(tablePages)
		c.stats.CPURows += int64(tableRows)
		c.charge(node, tablePages*c.rt()+tableRows*c.cfg.CPUSpeed, len(out))
		rs := &rowset{cols: cols, rows: out}
		c.holdRowset(rs)
		return rs, nil

	case qgm.OpIXSCAN, qgm.OpFETCH:
		idxDef := table.Def.IndexByName(node.Index)
		if idxDef == nil {
			return nil, fmt.Errorf("executor: table %s has no index %s", node.Table, node.Index)
		}
		lead := idxDef.Columns[0]
		matched := c.indexMatches(node.Table, idxDef, lead, table, preds)
		var out []storage.Row
		for _, rid := range matched {
			row := table.Rows[rid]
			if c.rowMatches(table.Def, row, preds) {
				out = append(out, row)
			}
		}
		matchRows := float64(len(matched))
		leafPages := math.Max(tableRows/300, 1)
		frac := matchRows / math.Max(tableRows, 1)
		// Mirrors ixscanCost: the B-tree dive only pays a full random I/O when
		// the table exceeds the buffer pool.
		dive := c.cfg.Overhead
		if tablePages <= float64(c.cfg.BufferPoolPages) {
			dive = c.cfg.Overhead * 0.1
		}
		millis := dive + leafPages*frac*c.rt() + matchRows*c.cfg.CPUSpeed*0.5
		c.stats.LogicalReads += int64(leafPages * frac)
		c.stats.CPURows += int64(matchRows)
		if node.Op == qgm.OpFETCH {
			clustered := matchRows * idxDef.ClusterRatio
			unclustered := matchRows * (1 - idxDef.ClusterRatio)
			randomIO := c.cfg.Overhead
			if tablePages <= float64(c.cfg.BufferPoolPages) {
				randomIO = c.rt() * 0.25
			}
			millis += (clustered/math.Max(rowsPerPage, 1))*c.rt() + unclustered*randomIO + matchRows*c.cfg.CPUSpeed
			c.stats.PhysicalReads += int64(unclustered) + int64(clustered/math.Max(rowsPerPage, 1))
			c.stats.LogicalReads += int64(matchRows)
		}
		c.charge(node, millis, len(out))
		rs := &rowset{cols: cols, rows: out}
		c.holdRowset(rs)
		return rs, nil
	}
	return nil, fmt.Errorf("executor: unsupported scan %s", node.Op)
}

// indexMatches returns the row IDs the index access touches, using the local
// predicates on the index's leading column to narrow the range when possible.
// (The streaming path's indexBounds covers the same candidates as positions;
// this materializes them as a row-ID list.)
func (c *execContext) indexMatches(tableName string, idxDef *catalog.Index, lead string, table *storage.Table, preds []sqlparser.Predicate) []int {
	idx := c.exec.DB.Index(tableName, idxDef.Name)
	if idx == nil {
		return nil
	}
	for _, p := range preds {
		if !strings.EqualFold(p.Left.Column, lead) {
			continue
		}
		switch {
		case p.Kind == sqlparser.PredCompare && p.Op == "=":
			return idx.LookupEqual(p.Value)
		case p.Kind == sqlparser.PredCompare && (p.Op == ">" || p.Op == ">="):
			v := p.Value
			return idx.LookupRange(&v, nil)
		case p.Kind == sqlparser.PredCompare && (p.Op == "<" || p.Op == "<="):
			v := p.Value
			return idx.LookupRange(nil, &v)
		case p.Kind == sqlparser.PredBetween && !p.Not:
			lo, hi := p.Lo, p.Hi
			return idx.LookupRange(&lo, &hi)
		}
	}
	// No sargable predicate: the access touches every entry (in index order).
	all := make([]int, 0, idx.Len())
	for _, e := range idx.Entries {
		all = append(all, e.RowID)
	}
	return all
}

// matJoin executes one join operator over fully materialized inputs.
func (c *execContext) matJoin(node *qgm.Node) (*rowset, error) {
	outer, err := c.matRun(node.Outer)
	if err != nil {
		return nil, err
	}
	inner, err := c.matRun(node.Inner)
	if err != nil {
		return nil, err
	}
	key, preds := c.joinKeys(node, outer.cols, inner.cols)
	joined := hashJoinRows(outer, inner, key, presizeHint(node.EstCardinality))
	cols := append(append([]string{}, outer.cols...), inner.cols...)
	out := &rowset{cols: cols, rows: joined}

	outerRows := float64(len(outer.rows))
	innerRows := float64(len(inner.rows))
	outRows := float64(len(joined))
	cpu := c.cfg.CPUSpeed

	switch node.Op {
	case qgm.OpHSJOIN:
		probeFactor := 1.0
		if node.BloomFilter {
			probeFactor = 0.6
		}
		millis := innerRows*cpu*2 + outerRows*cpu*probeFactor + outRows*cpu*0.1
		buildPages := pagesOf(c.cfg, innerRows, rowWidth(inner))
		if buildPages > float64(c.cfg.SortHeapPages) {
			spill := buildPages
			outerPages := pagesOf(c.cfg, outerRows, rowWidth(outer))
			if node.BloomFilter {
				outerPages *= 0.5
			}
			spill += outerPages
			millis += 2 * spill * c.rt()
			c.stats.SortSpillPages += int64(spill)
			c.stats.PhysicalReads += int64(spill)
		}
		c.stats.CPURows += int64(innerRows + outerRows)
		c.charge(node, millis, len(joined))

	case qgm.OpNLJOIN:
		matchedPerProbe := 0.0
		if outerRows > 0 {
			matchedPerProbe = outRows / outerRows
		}
		perProbe := c.nlProbeMillis(node.Inner, matchedPerProbe, innerRows)
		millis := outerRows*perProbe + outRows*cpu
		c.stats.CPURows += int64(outerRows)
		c.charge(node, millis, len(joined))

	case qgm.OpMSJOIN:
		// A merge join over sorted inputs can stop reading the outer as soon
		// as its key exceeds the largest inner key (the Figure 8 early-out).
		outerProcessed := outerRows
		if node.EarlyOut && len(key.outerPos) > 0 && innerRows > 0 {
			maxInner := maxKey(inner.rows, key.innerPos[0])
			processed := 0
			for _, r := range outer.rows {
				if catalog.Compare(r[key.outerPos[0]], maxInner) <= 0 {
					processed++
				}
			}
			outerProcessed = float64(processed) + 1
			if outerProcessed > outerRows {
				outerProcessed = outerRows
			}
		}
		if innerRows == 0 {
			outerProcessed = 1
		}
		// Same formula as the optimizer's msjoinCost, over actual row counts:
		// a single interleaved pass over pre-sorted inputs.
		millis := (outerProcessed+innerRows)*cpu*0.5 + outRows*cpu*0.1
		c.stats.CPURows += int64(outerProcessed + innerRows)
		c.charge(node, millis, len(joined))
	default:
		return nil, fmt.Errorf("executor: unsupported join %s", node.Op)
	}
	_ = preds
	c.holdRowset(out)
	c.releaseRowset(outer)
	c.releaseRowset(inner)
	return out, nil
}

func (c *execContext) matSort(node *qgm.Node) (*rowset, error) {
	rs, err := c.matRun(node.Outer)
	if err != nil {
		return nil, err
	}
	// A SORT carrying an order property (one feeding a merge join, or a final
	// ORDER BY sort) physically establishes that order, so downstream
	// operators — the merge join's early-out in particular — see honestly
	// sorted rows. When the property names the query's leading ORDER BY
	// column, the full ORDER BY key list is used (the property only records
	// the primary order); SORTs without a property fall back to the query's
	// ORDER BY columns.
	idx := c.sortKey(node, rs.cols)
	if len(idx) > 0 {
		sort.SliceStable(rs.rows, func(i, j int) bool {
			for _, p := range idx {
				if cmp := catalog.Compare(rs.rows[i][p], rs.rows[j][p]); cmp != 0 {
					return cmp < 0
				}
			}
			return false
		})
	}
	rows := float64(len(rs.rows))
	millis := c.sortMillis(rows, rowWidth(rs))
	c.charge(node, millis, len(rs.rows))
	return rs, nil
}

func (c *execContext) matGroupBy(node *qgm.Node) (*rowset, error) {
	rs, err := c.matRun(node.Outer)
	if err != nil {
		return nil, err
	}
	idx := make([]int, 0, len(c.query.GroupBy))
	for _, k := range c.query.GroupBy {
		inst := c.refToInst[strings.ToUpper(k.Table)]
		if p := rs.colIndex(inst + "." + k.Column); p >= 0 {
			idx = append(idx, p)
		}
	}
	seen := map[string]bool{}
	var out []storage.Row
	var key strings.Builder
	for _, row := range rs.rows {
		key.Reset()
		for _, p := range idx {
			key.WriteString(row[p].Key())
			key.WriteByte('|')
		}
		if !seen[key.String()] {
			seen[key.String()] = true
			out = append(out, row)
		}
	}
	c.charge(node, float64(len(rs.rows))*c.cfg.CPUSpeed, len(out))
	res := &rowset{cols: rs.cols, rows: out}
	c.holdRowset(res)
	c.releaseRowset(rs)
	return res, nil
}
