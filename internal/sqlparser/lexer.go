package sqlparser

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol  // , ( ) . *
	tokOperator // = <> < <= > >=
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

type lexer struct {
	input string
	pos   int
	toks  []token
}

func lex(input string) ([]token, error) {
	l := &lexer{input: input}
	for l.pos < len(l.input) {
		ch := l.input[l.pos]
		switch {
		case ch == ' ' || ch == '\t' || ch == '\n' || ch == '\r':
			l.pos++
		case ch == '-' && l.pos+1 < len(l.input) && l.input[l.pos+1] == '-':
			// line comment
			for l.pos < len(l.input) && l.input[l.pos] != '\n' {
				l.pos++
			}
		case isIdentStart(rune(ch)):
			l.lexIdent()
		case ch >= '0' && ch <= '9':
			l.lexNumber()
		case ch == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case ch == ',' || ch == '(' || ch == ')' || ch == '.' || ch == '*':
			l.toks = append(l.toks, token{kind: tokSymbol, text: string(ch), pos: l.pos})
			l.pos++
		case ch == '=' :
			l.toks = append(l.toks, token{kind: tokOperator, text: "=", pos: l.pos})
			l.pos++
		case ch == '<':
			if l.pos+1 < len(l.input) && (l.input[l.pos+1] == '=' || l.input[l.pos+1] == '>') {
				l.toks = append(l.toks, token{kind: tokOperator, text: l.input[l.pos : l.pos+2], pos: l.pos})
				l.pos += 2
			} else {
				l.toks = append(l.toks, token{kind: tokOperator, text: "<", pos: l.pos})
				l.pos++
			}
		case ch == '>':
			if l.pos+1 < len(l.input) && l.input[l.pos+1] == '=' {
				l.toks = append(l.toks, token{kind: tokOperator, text: ">=", pos: l.pos})
				l.pos += 2
			} else {
				l.toks = append(l.toks, token{kind: tokOperator, text: ">", pos: l.pos})
				l.pos++
			}
		case ch == '!':
			if l.pos+1 < len(l.input) && l.input[l.pos+1] == '=' {
				l.toks = append(l.toks, token{kind: tokOperator, text: "<>", pos: l.pos})
				l.pos += 2
			} else {
				return nil, fmt.Errorf("sqlparser: unexpected character %q at %d", ch, l.pos)
			}
		case ch == ';':
			l.pos++ // trailing semicolons are ignored
		default:
			return nil, fmt.Errorf("sqlparser: unexpected character %q at %d", ch, l.pos)
		}
	}
	l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
	return l.toks, nil
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_' || r == '"'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}

func (l *lexer) lexIdent() {
	start := l.pos
	if l.input[l.pos] == '"' {
		// delimited identifier
		l.pos++
		for l.pos < len(l.input) && l.input[l.pos] != '"' {
			l.pos++
		}
		text := l.input[start+1 : l.pos]
		if l.pos < len(l.input) {
			l.pos++ // closing quote
		}
		l.toks = append(l.toks, token{kind: tokIdent, text: text, pos: start})
		return
	}
	for l.pos < len(l.input) && isIdentPart(rune(l.input[l.pos])) {
		l.pos++
	}
	l.toks = append(l.toks, token{kind: tokIdent, text: l.input[start:l.pos], pos: start})
}

func (l *lexer) lexNumber() {
	start := l.pos
	seenDot, seenExp := false, false
	for l.pos < len(l.input) {
		ch := l.input[l.pos]
		if ch >= '0' && ch <= '9' {
			l.pos++
			continue
		}
		if ch == '.' && !seenDot && !seenExp {
			seenDot = true
			l.pos++
			continue
		}
		if (ch == 'e' || ch == 'E') && !seenExp && l.pos+1 < len(l.input) {
			next := l.input[l.pos+1]
			if next == '+' || next == '-' || (next >= '0' && next <= '9') {
				seenExp = true
				l.pos += 2
				continue
			}
		}
		break
	}
	l.toks = append(l.toks, token{kind: tokNumber, text: l.input[start:l.pos], pos: start})
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // skip opening quote
	var sb strings.Builder
	for l.pos < len(l.input) {
		ch := l.input[l.pos]
		if ch == '\'' {
			if l.pos+1 < len(l.input) && l.input[l.pos+1] == '\'' {
				sb.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.toks = append(l.toks, token{kind: tokString, text: sb.String(), pos: start})
			return nil
		}
		sb.WriteByte(ch)
		l.pos++
	}
	return fmt.Errorf("sqlparser: unterminated string literal at %d", start)
}
