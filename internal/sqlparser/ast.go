// Package sqlparser implements the SQL subset used by the evaluation
// workloads: conjunctive SELECT-PROJECT-JOIN queries over base tables, with
// optional GROUP BY and ORDER BY.
//
// It replaces DB2's SQL front end in the paper's architecture. The parser
// produces an AST that the optimizer plans and that GALO's learning engine
// decomposes into sub-queries (Figure 3 of the paper).
package sqlparser

import (
	"fmt"
	"sort"
	"strings"

	"galo/internal/catalog"
)

// ColumnRef names a column, optionally qualified by a table name or alias.
type ColumnRef struct {
	Table  string // alias or table name; empty if unqualified
	Column string
}

// String renders the reference as it appears in SQL.
func (c ColumnRef) String() string {
	if c.Table == "" {
		return c.Column
	}
	return c.Table + "." + c.Column
}

// TableRef names a table in the FROM clause with an optional alias.
type TableRef struct {
	Table string
	Alias string
}

// Name returns the name by which the table is referenced in the query: the
// alias when present, the table name otherwise.
func (t TableRef) Name() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Table
}

// String renders the table reference as SQL.
func (t TableRef) String() string {
	if t.Alias != "" && !strings.EqualFold(t.Alias, t.Table) {
		return t.Table + " " + t.Alias
	}
	return t.Table
}

// PredKind enumerates the predicate forms the parser accepts.
type PredKind uint8

// Predicate kinds.
const (
	// PredJoin is column-to-column equality, e.g. ws_item_sk = i_item_sk.
	PredJoin PredKind = iota
	// PredCompare is column-to-literal comparison with =, <>, <, <=, >, >=.
	PredCompare
	// PredBetween is col BETWEEN lo AND hi.
	PredBetween
	// PredIn is col IN (v1, v2, ...).
	PredIn
	// PredLike is col LIKE 'pattern'.
	PredLike
	// PredIsNull is col IS [NOT] NULL.
	PredIsNull
)

// Predicate is one conjunct of the WHERE clause.
type Predicate struct {
	Kind   PredKind
	Left   ColumnRef
	Op     string // for PredCompare: =, <>, <, <=, >, >=
	Right  ColumnRef
	Value  catalog.Value
	Lo, Hi catalog.Value
	Values []catalog.Value
	Not    bool // for IS NOT NULL, NOT LIKE, NOT IN
}

// IsJoin reports whether the predicate joins two different table references.
func (p Predicate) IsJoin() bool { return p.Kind == PredJoin }

// String renders the predicate as SQL.
func (p Predicate) String() string {
	switch p.Kind {
	case PredJoin:
		return fmt.Sprintf("%s = %s", p.Left, p.Right)
	case PredCompare:
		return fmt.Sprintf("%s %s %s", p.Left, p.Op, p.Value.SQLLiteral())
	case PredBetween:
		return fmt.Sprintf("%s BETWEEN %s AND %s", p.Left, p.Lo.SQLLiteral(), p.Hi.SQLLiteral())
	case PredIn:
		vals := make([]string, len(p.Values))
		for i, v := range p.Values {
			vals[i] = v.SQLLiteral()
		}
		not := ""
		if p.Not {
			not = "NOT "
		}
		return fmt.Sprintf("%s %sIN (%s)", p.Left, not, strings.Join(vals, ", "))
	case PredLike:
		not := ""
		if p.Not {
			not = "NOT "
		}
		return fmt.Sprintf("%s %sLIKE %s", p.Left, not, p.Value.SQLLiteral())
	case PredIsNull:
		if p.Not {
			return fmt.Sprintf("%s IS NOT NULL", p.Left)
		}
		return fmt.Sprintf("%s IS NULL", p.Left)
	default:
		return "<?>"
	}
}

// Query is the AST of one parsed SELECT statement.
type Query struct {
	// Select lists the projected columns; Star is true for SELECT *.
	Select []ColumnRef
	Star   bool
	From   []TableRef
	Where  []Predicate
	GroupBy []ColumnRef
	OrderBy []ColumnRef
	// Name optionally labels the query (workload query id such as "Q08").
	Name string
}

// TableByName returns the FROM entry referenced by the given alias or table
// name (case-insensitive), or nil.
func (q *Query) TableByName(name string) *TableRef {
	for i := range q.From {
		if strings.EqualFold(q.From[i].Name(), name) || strings.EqualFold(q.From[i].Table, name) {
			return &q.From[i]
		}
	}
	return nil
}

// JoinPredicates returns the column-to-column equality predicates.
func (q *Query) JoinPredicates() []Predicate {
	var out []Predicate
	for _, p := range q.Where {
		if p.IsJoin() {
			out = append(out, p)
		}
	}
	return out
}

// LocalPredicates returns the non-join predicates.
func (q *Query) LocalPredicates() []Predicate {
	var out []Predicate
	for _, p := range q.Where {
		if !p.IsJoin() {
			out = append(out, p)
		}
	}
	return out
}

// NumJoins returns the number of join predicates (the paper's "join number").
func (q *Query) NumJoins() int { return len(q.JoinPredicates()) }

// TableNames returns the referenced table names (not aliases), sorted and
// de-duplicated.
func (q *Query) TableNames() []string {
	seen := map[string]struct{}{}
	var out []string
	for _, t := range q.From {
		key := strings.ToUpper(t.Table)
		if _, ok := seen[key]; ok {
			continue
		}
		seen[key] = struct{}{}
		out = append(out, key)
	}
	sort.Strings(out)
	return out
}

// SQL renders the query back to SQL text.
func (q *Query) SQL() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if q.Star || len(q.Select) == 0 {
		b.WriteString("*")
	} else {
		parts := make([]string, len(q.Select))
		for i, c := range q.Select {
			parts[i] = c.String()
		}
		b.WriteString(strings.Join(parts, ", "))
	}
	b.WriteString(" FROM ")
	tables := make([]string, len(q.From))
	for i, t := range q.From {
		tables[i] = t.String()
	}
	b.WriteString(strings.Join(tables, ", "))
	if len(q.Where) > 0 {
		b.WriteString(" WHERE ")
		preds := make([]string, len(q.Where))
		for i, p := range q.Where {
			preds[i] = p.String()
		}
		b.WriteString(strings.Join(preds, " AND "))
	}
	if len(q.GroupBy) > 0 {
		parts := make([]string, len(q.GroupBy))
		for i, c := range q.GroupBy {
			parts[i] = c.String()
		}
		b.WriteString(" GROUP BY " + strings.Join(parts, ", "))
	}
	if len(q.OrderBy) > 0 {
		parts := make([]string, len(q.OrderBy))
		for i, c := range q.OrderBy {
			parts[i] = c.String()
		}
		b.WriteString(" ORDER BY " + strings.Join(parts, ", "))
	}
	return b.String()
}

// Clone returns a deep copy of the query.
func (q *Query) Clone() *Query {
	cp := *q
	cp.Select = append([]ColumnRef(nil), q.Select...)
	cp.From = append([]TableRef(nil), q.From...)
	cp.Where = make([]Predicate, len(q.Where))
	for i, p := range q.Where {
		pc := p
		pc.Values = append([]catalog.Value(nil), p.Values...)
		cp.Where[i] = pc
	}
	cp.GroupBy = append([]ColumnRef(nil), q.GroupBy...)
	cp.OrderBy = append([]ColumnRef(nil), q.OrderBy...)
	return &cp
}
