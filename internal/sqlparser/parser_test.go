package sqlparser

import (
	"strings"
	"testing"

	"galo/internal/catalog"
)

const figure3Query = `SELECT i_item_desc, i_category, i_class, i_current_price
FROM web_sales, item, date_dim
WHERE ws_item_sk = i_item_sk and
      i_category = 'Jewelry' and
      ws_sold_date_sk = d_date_sk and
      d_date = '2016-01-02'`

func TestParseFigure3Query(t *testing.T) {
	q, err := Parse(figure3Query)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(q.Select) != 4 {
		t.Errorf("Select has %d items", len(q.Select))
	}
	if len(q.From) != 3 {
		t.Errorf("From has %d tables", len(q.From))
	}
	if got := q.NumJoins(); got != 2 {
		t.Errorf("NumJoins = %d, want 2", got)
	}
	if got := len(q.LocalPredicates()); got != 2 {
		t.Errorf("LocalPredicates = %d, want 2", got)
	}
	// literal kinds
	var sawJewelry, sawDate bool
	for _, p := range q.LocalPredicates() {
		switch {
		case p.Value.K == catalog.KindString && p.Value.S == "Jewelry":
			sawJewelry = true
		case p.Value.K == catalog.KindDate:
			sawDate = true
		}
	}
	if !sawJewelry || !sawDate {
		t.Errorf("literal detection failed: jewelry=%v date=%v", sawJewelry, sawDate)
	}
	names := q.TableNames()
	if len(names) != 3 || names[0] != "DATE_DIM" {
		t.Errorf("TableNames = %v", names)
	}
}

func TestParseAliasesAndExplicitJoin(t *testing.T) {
	q, err := Parse(`SELECT s.ws_quantity FROM web_sales AS s INNER JOIN item i ON s.ws_item_sk = i.i_item_sk WHERE i.i_category = 'Music'`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(q.From) != 2 {
		t.Fatalf("From = %v", q.From)
	}
	if q.From[0].Alias != "S" || q.From[1].Alias != "I" {
		t.Errorf("aliases = %q, %q", q.From[0].Alias, q.From[1].Alias)
	}
	if q.NumJoins() != 1 {
		t.Errorf("NumJoins = %d", q.NumJoins())
	}
	if q.TableByName("s") == nil || q.TableByName("ITEM") == nil {
		t.Errorf("TableByName lookup failed")
	}
	if q.TableByName("zzz") != nil {
		t.Errorf("TableByName(zzz) should be nil")
	}
}

func TestParsePredicateForms(t *testing.T) {
	q, err := Parse(`SELECT * FROM item WHERE i_current_price BETWEEN 10 AND 20.5
		AND i_category IN ('Music', 'Books') AND i_class LIKE 'ath%'
		AND i_brand IS NOT NULL AND i_size IS NULL AND i_item_sk <> 5 AND i_wholesale_cost >= 3`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !q.Star {
		t.Errorf("Star not detected")
	}
	kinds := map[PredKind]int{}
	for _, p := range q.Where {
		kinds[p.Kind]++
	}
	if kinds[PredBetween] != 1 || kinds[PredIn] != 1 || kinds[PredLike] != 1 ||
		kinds[PredIsNull] != 2 || kinds[PredCompare] != 2 {
		t.Errorf("predicate kinds = %v", kinds)
	}
	for _, p := range q.Where {
		if p.Kind == PredIsNull && p.Left.Column == "I_BRAND" && !p.Not {
			t.Errorf("IS NOT NULL lost its NOT")
		}
	}
}

func TestParseGroupOrderBy(t *testing.T) {
	q, err := Parse(`SELECT i_category, i_class FROM item WHERE i_current_price > 5 GROUP BY i_category, i_class ORDER BY i_category`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(q.GroupBy) != 2 || len(q.OrderBy) != 1 {
		t.Errorf("GroupBy=%v OrderBy=%v", q.GroupBy, q.OrderBy)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"UPDATE item SET x = 1",
		"SELECT FROM item",
		"SELECT * FROM",
		"SELECT * FROM item WHERE",
		"SELECT * FROM item WHERE i_category ==",
		"SELECT * FROM item WHERE i_category = 'unterminated",
		"SELECT * FROM item WHERE i_a < i_b",
		"SELECT * FROM item WHERE i_a NOT 5",
		"SELECT * FROM item extra tokens here now",
		"SELECT * FROM item WHERE i_x @ 3",
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) should fail", sql)
		}
	}
}

func TestSQLRoundtrip(t *testing.T) {
	q := MustParse(figure3Query)
	rendered := q.SQL()
	q2, err := Parse(rendered)
	if err != nil {
		t.Fatalf("reparse of %q: %v", rendered, err)
	}
	if q2.SQL() != rendered {
		t.Errorf("SQL not stable:\n%s\n%s", rendered, q2.SQL())
	}
	if q2.NumJoins() != q.NumJoins() || len(q2.Where) != len(q.Where) {
		t.Errorf("roundtrip changed structure")
	}
}

func TestCloneIsDeep(t *testing.T) {
	q := MustParse(figure3Query)
	c := q.Clone()
	c.Where[0].Left.Column = "CHANGED"
	c.From[0].Alias = "X"
	if q.Where[0].Left.Column == "CHANGED" || q.From[0].Alias == "X" {
		t.Errorf("Clone shares memory with original")
	}
}

func tpcdsMiniSchema() *catalog.Schema {
	s := catalog.NewSchema("TPCDS")
	s.AddTable(catalog.NewTable("web_sales",
		catalog.Column{Name: "ws_item_sk", Type: catalog.KindInt},
		catalog.Column{Name: "ws_sold_date_sk", Type: catalog.KindInt},
		catalog.Column{Name: "ws_quantity", Type: catalog.KindInt},
	))
	s.AddTable(catalog.NewTable("item",
		catalog.Column{Name: "i_item_sk", Type: catalog.KindInt},
		catalog.Column{Name: "i_item_desc", Type: catalog.KindString},
		catalog.Column{Name: "i_category", Type: catalog.KindString},
		catalog.Column{Name: "i_class", Type: catalog.KindString},
		catalog.Column{Name: "i_current_price", Type: catalog.KindFloat},
	))
	s.AddTable(catalog.NewTable("date_dim",
		catalog.Column{Name: "d_date_sk", Type: catalog.KindInt},
		catalog.Column{Name: "d_date", Type: catalog.KindDate},
	))
	return s
}

func TestResolveQualifiesEveryColumn(t *testing.T) {
	q := MustParse(figure3Query)
	if err := Resolve(q, tpcdsMiniSchema()); err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	for _, c := range q.Select {
		if c.Table == "" {
			t.Errorf("unresolved select column %v", c)
		}
	}
	for _, p := range q.Where {
		if p.Left.Table == "" {
			t.Errorf("unresolved predicate column %v", p.Left)
		}
		if p.Kind == PredJoin && p.Right.Table == "" {
			t.Errorf("unresolved join column %v", p.Right)
		}
	}
	// ws_item_sk should resolve to WEB_SALES, i_item_sk to ITEM.
	jp := q.JoinPredicates()[0]
	tables := map[string]bool{BaseTable(q, jp.Left): true, BaseTable(q, jp.Right): true}
	if !tables["WEB_SALES"] || !tables["ITEM"] {
		t.Errorf("join resolution = %v", tables)
	}
}

func TestResolveErrors(t *testing.T) {
	s := tpcdsMiniSchema()
	cases := []string{
		"SELECT x FROM missing_table",
		"SELECT nope_col FROM item",
		"SELECT z.i_category FROM item",
		"SELECT i_category FROM item WHERE bad_col = 1",
	}
	for _, sql := range cases {
		q, err := Parse(sql)
		if err != nil {
			t.Fatalf("Parse(%q): %v", sql, err)
		}
		if err := Resolve(q, s); err == nil {
			t.Errorf("Resolve(%q) should fail", sql)
		}
	}
}

func TestPredicateHelpers(t *testing.T) {
	q := MustParse(figure3Query)
	if err := Resolve(q, tpcdsMiniSchema()); err != nil {
		t.Fatal(err)
	}
	itemPreds := PredicatesFor(q, "ITEM")
	if len(itemPreds) != 1 || itemPreds[0].Value.S != "Jewelry" {
		t.Errorf("PredicatesFor(ITEM) = %v", itemPreds)
	}
	joins := JoinsBetween(q, "WEB_SALES", "ITEM")
	if len(joins) != 1 {
		t.Errorf("JoinsBetween = %v", joins)
	}
	if len(JoinsBetween(q, "ITEM", "DATE_DIM")) != 0 {
		t.Errorf("ITEM and DATE_DIM are not directly joined")
	}
}

func TestPredicateStringRendering(t *testing.T) {
	q := MustParse(`SELECT * FROM item WHERE i_category IN ('a','b') AND i_class NOT LIKE 'x%' AND i_brand IS NOT NULL`)
	joined := make([]string, 0, len(q.Where))
	for _, p := range q.Where {
		joined = append(joined, p.String())
	}
	s := strings.Join(joined, " AND ")
	for _, want := range []string{"IN ('a', 'b')", "NOT LIKE 'x%'", "IS NOT NULL"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered predicates %q missing %q", s, want)
		}
	}
}

func TestDelimitedIdentifiersAndComments(t *testing.T) {
	q, err := Parse("SELECT \"i_category\" FROM item -- trailing comment\nWHERE i_current_price > 1;")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if q.Select[0].Column != "I_CATEGORY" {
		t.Errorf("delimited identifier = %v", q.Select[0])
	}
}
