package sqlparser

import (
	"fmt"
	"strings"

	"galo/internal/catalog"
)

// Resolve binds every column reference in the query to the table reference
// (alias) that defines it, using the schema. After Resolve, every ColumnRef
// has a non-empty Table field naming the FROM-clause reference (alias when
// present). Resolve also validates that every referenced table exists.
func Resolve(q *Query, schema *catalog.Schema) error {
	if len(q.From) == 0 {
		return fmt.Errorf("sqlparser: query has no FROM clause")
	}
	// Validate tables and build alias -> table map.
	aliasToTable := make(map[string]string, len(q.From))
	for _, tr := range q.From {
		if schema.Table(tr.Table) == nil {
			return fmt.Errorf("sqlparser: unknown table %s", tr.Table)
		}
		aliasToTable[strings.ToUpper(tr.Name())] = strings.ToUpper(tr.Table)
	}
	resolveRef := func(c *ColumnRef) error {
		c.Column = strings.ToUpper(c.Column)
		if c.Table != "" {
			c.Table = strings.ToUpper(c.Table)
			tbl, ok := aliasToTable[c.Table]
			if !ok {
				return fmt.Errorf("sqlparser: column %s references unknown table/alias %s", c, c.Table)
			}
			if !schema.Table(tbl).HasColumn(c.Column) {
				return fmt.Errorf("sqlparser: table %s has no column %s", tbl, c.Column)
			}
			return nil
		}
		// Unqualified: find owning table among FROM entries.
		var owner string
		for _, tr := range q.From {
			if schema.Table(tr.Table).HasColumn(c.Column) {
				if owner != "" && owner != strings.ToUpper(tr.Name()) {
					return fmt.Errorf("sqlparser: column %s is ambiguous", c.Column)
				}
				owner = strings.ToUpper(tr.Name())
			}
		}
		if owner == "" {
			return fmt.Errorf("sqlparser: column %s not found in any FROM table", c.Column)
		}
		c.Table = owner
		return nil
	}
	for i := range q.Select {
		if err := resolveRef(&q.Select[i]); err != nil {
			return err
		}
	}
	for i := range q.Where {
		if err := resolveRef(&q.Where[i].Left); err != nil {
			return err
		}
		if q.Where[i].Kind == PredJoin {
			if err := resolveRef(&q.Where[i].Right); err != nil {
				return err
			}
			// A column=column predicate within the same table reference is a
			// local predicate, not a join.
			if q.Where[i].Left.Table == q.Where[i].Right.Table {
				return fmt.Errorf("sqlparser: self-comparison %s is not supported", q.Where[i])
			}
		}
	}
	for i := range q.GroupBy {
		if err := resolveRef(&q.GroupBy[i]); err != nil {
			return err
		}
	}
	for i := range q.OrderBy {
		if err := resolveRef(&q.OrderBy[i]); err != nil {
			return err
		}
	}
	return nil
}

// BaseTable returns the underlying table name for a resolved column reference
// (mapping alias back to table).
func BaseTable(q *Query, ref ColumnRef) string {
	tr := q.TableByName(ref.Table)
	if tr == nil {
		return strings.ToUpper(ref.Table)
	}
	return strings.ToUpper(tr.Table)
}

// PredicatesFor returns the local predicates that apply to the given FROM
// reference name.
func PredicatesFor(q *Query, refName string) []Predicate {
	var out []Predicate
	for _, p := range q.LocalPredicates() {
		if strings.EqualFold(p.Left.Table, refName) {
			out = append(out, p)
		}
	}
	return out
}

// JoinsBetween returns the join predicates connecting the two FROM reference
// names, in either direction.
func JoinsBetween(q *Query, a, b string) []Predicate {
	var out []Predicate
	for _, p := range q.JoinPredicates() {
		if (strings.EqualFold(p.Left.Table, a) && strings.EqualFold(p.Right.Table, b)) ||
			(strings.EqualFold(p.Left.Table, b) && strings.EqualFold(p.Right.Table, a)) {
			out = append(out, p)
		}
	}
	return out
}
