package sqlparser

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"

	"galo/internal/catalog"
)

// Parse parses a single SELECT statement in the supported subset and returns
// its AST.
func Parse(sql string) (*Query, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, sql: sql}
	q, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, fmt.Errorf("sqlparser: unexpected trailing input near %q", p.peek().text)
	}
	return q, nil
}

// MustParse parses the statement and panics on error; intended for tests and
// static workload definitions.
func MustParse(sql string) *Query {
	q, err := Parse(sql)
	if err != nil {
		panic(err)
	}
	return q
}

type parser struct {
	toks []token
	i    int
	sql  string
}

func (p *parser) peek() token  { return p.toks[p.i] }
func (p *parser) next() token  { t := p.toks[p.i]; p.i++; return t }
func (p *parser) atEOF() bool  { return p.peek().kind == tokEOF }

func (p *parser) matchKeyword(kw string) bool {
	if p.peek().kind == tokIdent && strings.EqualFold(p.peek().text, kw) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.matchKeyword(kw) {
		return fmt.Errorf("sqlparser: expected %s near %q", kw, p.peek().text)
	}
	return nil
}

func (p *parser) matchSymbol(sym string) bool {
	if p.peek().kind == tokSymbol && p.peek().text == sym {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectSymbol(sym string) error {
	if !p.matchSymbol(sym) {
		return fmt.Errorf("sqlparser: expected %q near %q", sym, p.peek().text)
	}
	return nil
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true, "OR": true,
	"GROUP": true, "ORDER": true, "BY": true, "AS": true, "JOIN": true,
	"INNER": true, "ON": true, "BETWEEN": true, "IN": true, "LIKE": true,
	"IS": true, "NOT": true, "NULL": true, "HAVING": true, "LIMIT": true,
}

func isKeyword(s string) bool { return keywords[strings.ToUpper(s)] }

func (p *parser) parseSelect() (*Query, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	q := &Query{}
	// select list
	if p.matchSymbol("*") {
		q.Star = true
	} else {
		for {
			col, err := p.parseColumnRef()
			if err != nil {
				return nil, err
			}
			q.Select = append(q.Select, col)
			if !p.matchSymbol(",") {
				break
			}
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	// FROM list, with optional explicit INNER JOIN ... ON syntax.
	tr, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	q.From = append(q.From, tr)
	for {
		if p.matchSymbol(",") {
			tr, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			q.From = append(q.From, tr)
			continue
		}
		// [INNER] JOIN table ON pred
		save := p.i
		if p.matchKeyword("INNER") {
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
		} else if !p.matchKeyword("JOIN") {
			p.i = save
			break
		}
		jt, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		q.From = append(q.From, jt)
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		pred, err := p.parsePredicate()
		if err != nil {
			return nil, err
		}
		q.Where = append(q.Where, pred)
	}
	if p.matchKeyword("WHERE") {
		for {
			pred, err := p.parsePredicate()
			if err != nil {
				return nil, err
			}
			q.Where = append(q.Where, pred)
			if !p.matchKeyword("AND") {
				break
			}
		}
	}
	if p.matchKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			col, err := p.parseColumnRef()
			if err != nil {
				return nil, err
			}
			q.GroupBy = append(q.GroupBy, col)
			if !p.matchSymbol(",") {
				break
			}
		}
	}
	if p.matchKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			col, err := p.parseColumnRef()
			if err != nil {
				return nil, err
			}
			q.OrderBy = append(q.OrderBy, col)
			if !p.matchSymbol(",") {
				break
			}
		}
	}
	return q, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	t := p.peek()
	if t.kind != tokIdent || isKeyword(t.text) {
		return TableRef{}, fmt.Errorf("sqlparser: expected table name near %q", t.text)
	}
	p.next()
	tr := TableRef{Table: strings.ToUpper(t.text)}
	// optional alias (with or without AS)
	if p.matchKeyword("AS") {
		a := p.peek()
		if a.kind != tokIdent {
			return TableRef{}, fmt.Errorf("sqlparser: expected alias near %q", a.text)
		}
		p.next()
		tr.Alias = strings.ToUpper(a.text)
		return tr, nil
	}
	a := p.peek()
	if a.kind == tokIdent && !isKeyword(a.text) {
		p.next()
		tr.Alias = strings.ToUpper(a.text)
	}
	return tr, nil
}

func (p *parser) parseColumnRef() (ColumnRef, error) {
	t := p.peek()
	if t.kind != tokIdent || isKeyword(t.text) {
		return ColumnRef{}, fmt.Errorf("sqlparser: expected column near %q", t.text)
	}
	p.next()
	ref := ColumnRef{Column: strings.ToUpper(t.text)}
	if p.matchSymbol(".") {
		c := p.peek()
		if c.kind != tokIdent {
			return ColumnRef{}, fmt.Errorf("sqlparser: expected column after %q.", t.text)
		}
		p.next()
		ref.Table = ref.Column
		ref.Column = strings.ToUpper(c.text)
	}
	return ref, nil
}

func (p *parser) parseLiteral() (catalog.Value, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.next()
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return catalog.Null(), fmt.Errorf("sqlparser: bad number %q: %w", t.text, err)
			}
			return catalog.Float(f), nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return catalog.Null(), fmt.Errorf("sqlparser: bad number %q: %w", t.text, err)
		}
		return catalog.Int(i), nil
	case tokString:
		p.next()
		if isDateLiteral(t.text) {
			if d, err := catalog.ParseDate(t.text); err == nil {
				return d, nil
			}
		}
		return catalog.String(t.text), nil
	case tokIdent:
		if strings.EqualFold(t.text, "NULL") {
			p.next()
			return catalog.Null(), nil
		}
	}
	return catalog.Null(), fmt.Errorf("sqlparser: expected literal near %q", t.text)
}

var dateLiteralRE = regexp.MustCompile(`^\d{4}-\d{2}-\d{2}$`)

func isDateLiteral(s string) bool { return dateLiteralRE.MatchString(s) }

func (p *parser) parsePredicate() (Predicate, error) {
	left, err := p.parseColumnRef()
	if err != nil {
		return Predicate{}, err
	}
	// IS [NOT] NULL
	if p.matchKeyword("IS") {
		not := p.matchKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return Predicate{}, err
		}
		return Predicate{Kind: PredIsNull, Left: left, Not: not}, nil
	}
	not := p.matchKeyword("NOT")
	if p.matchKeyword("BETWEEN") {
		lo, err := p.parseLiteral()
		if err != nil {
			return Predicate{}, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return Predicate{}, err
		}
		hi, err := p.parseLiteral()
		if err != nil {
			return Predicate{}, err
		}
		return Predicate{Kind: PredBetween, Left: left, Lo: lo, Hi: hi, Not: not}, nil
	}
	if p.matchKeyword("IN") {
		if err := p.expectSymbol("("); err != nil {
			return Predicate{}, err
		}
		var vals []catalog.Value
		for {
			v, err := p.parseLiteral()
			if err != nil {
				return Predicate{}, err
			}
			vals = append(vals, v)
			if !p.matchSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return Predicate{}, err
		}
		return Predicate{Kind: PredIn, Left: left, Values: vals, Not: not}, nil
	}
	if p.matchKeyword("LIKE") {
		v, err := p.parseLiteral()
		if err != nil {
			return Predicate{}, err
		}
		return Predicate{Kind: PredLike, Left: left, Value: v, Not: not}, nil
	}
	if not {
		return Predicate{}, fmt.Errorf("sqlparser: NOT must be followed by BETWEEN, IN or LIKE near %q", p.peek().text)
	}
	// comparison: op then column-or-literal
	op := p.peek()
	if op.kind != tokOperator {
		return Predicate{}, fmt.Errorf("sqlparser: expected operator near %q", op.text)
	}
	p.next()
	// right side: column or literal?
	r := p.peek()
	if r.kind == tokIdent && !isKeyword(r.text) && !strings.EqualFold(r.text, "NULL") {
		right, err := p.parseColumnRef()
		if err != nil {
			return Predicate{}, err
		}
		if op.text != "=" {
			// non-equality column comparison treated as join-like but rare;
			// represent as join only for '='.
			return Predicate{}, fmt.Errorf("sqlparser: column-to-column comparison only supports '=' (got %q)", op.text)
		}
		return Predicate{Kind: PredJoin, Left: left, Right: right, Op: "="}, nil
	}
	v, err := p.parseLiteral()
	if err != nil {
		return Predicate{}, err
	}
	return Predicate{Kind: PredCompare, Left: left, Op: op.text, Value: v}, nil
}
