package stats

import (
	"testing"

	"galo/internal/catalog"
	"galo/internal/storage"
)

func buildItemDB(t *testing.T) *storage.Database {
	t.Helper()
	s := catalog.NewSchema("T")
	item := catalog.NewTable("item",
		catalog.Column{Name: "i_item_sk", Type: catalog.KindInt},
		catalog.Column{Name: "i_category", Type: catalog.KindString},
		catalog.Column{Name: "i_class", Type: catalog.KindString},
		catalog.Column{Name: "i_current_price", Type: catalog.KindFloat},
	)
	s.AddTable(item)
	db := storage.NewDatabase(catalog.New(s))
	// Category and class are perfectly correlated: class = category + "-cls".
	cats := []string{"Music", "Jewelry", "Books", "Sports", "Home"}
	for i := 0; i < 1000; i++ {
		cat := cats[i%5]
		var price catalog.Value
		if i%100 == 0 {
			price = catalog.Null()
		} else {
			price = catalog.Float(float64(i%50) + 0.5)
		}
		if err := db.Insert("item", storage.Row{
			catalog.Int(int64(i + 1)),
			catalog.String(cat),
			catalog.String(cat + "-cls"),
			price,
		}); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestCollectBasicStats(t *testing.T) {
	db := buildItemDB(t)
	ts, err := Collect(db, "item", DefaultOptions())
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	if ts.Cardinality != 1000 {
		t.Errorf("Cardinality = %d", ts.Cardinality)
	}
	if ts.Pages < 1 {
		t.Errorf("Pages = %d", ts.Pages)
	}
	sk := ts.ColumnStats("i_item_sk")
	if sk == nil || sk.NDV != 1000 {
		t.Fatalf("i_item_sk stats = %+v", sk)
	}
	if sk.Min.AsInt() != 1 || sk.Max.AsInt() != 1000 {
		t.Errorf("min/max = %v/%v", sk.Min, sk.Max)
	}
	cat := ts.ColumnStats("i_category")
	if cat.NDV != 5 {
		t.Errorf("category NDV = %d", cat.NDV)
	}
	if n, ok := cat.FrequencyOf(catalog.String("Music")); !ok || n != 200 {
		t.Errorf("FrequencyOf(Music) = %d, %v", n, ok)
	}
	price := ts.ColumnStats("i_current_price")
	if price.NullCount != 10 {
		t.Errorf("price NullCount = %d", price.NullCount)
	}
	// Installed in the catalog.
	if db.Catalog.Stats("ITEM") == nil {
		t.Errorf("stats not installed in catalog")
	}
	if _, err := Collect(db, "missing", DefaultOptions()); err == nil {
		t.Errorf("Collect on missing table should fail")
	}
}

func TestCollectColumnGroups(t *testing.T) {
	db := buildItemDB(t)
	opts := DefaultOptions()
	opts.ColumnGroups = map[string][][]string{"ITEM": {{"i_category", "i_class"}}}
	ts, err := Collect(db, "item", opts)
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	// Correlated columns: combined NDV is 5, not 5*5.
	if got := ts.GroupNDV([]string{"I_CATEGORY", "I_CLASS"}); got != 5 {
		t.Errorf("group NDV = %d, want 5", got)
	}
}

func TestCollectSamplingApproximates(t *testing.T) {
	db := buildItemDB(t)
	opts := DefaultOptions()
	opts.SampleEvery = 7 // coprime with the 5-way category cycle
	ts, err := Collect(db, "item", opts)
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	// Cardinality is exact (row count is known) but NDV comes from the
	// sample, so it is at most the sampled row count.
	if ts.Cardinality != 1000 {
		t.Errorf("Cardinality = %d", ts.Cardinality)
	}
	sk := ts.ColumnStats("i_item_sk")
	if sk.NDV > 143 {
		t.Errorf("sampled NDV = %d, want <= 143", sk.NDV)
	}
	cat := ts.ColumnStats("i_category")
	// The true frequency is 200; the sampled-and-scaled estimate should be in
	// the right ballpark but need not be exact.
	if n, ok := cat.FrequencyOf(catalog.String("Music")); !ok || n < 120 || n > 320 {
		t.Errorf("scaled frequency = %d (ok=%v), want roughly 200", n, ok)
	}
}

func TestCollectFrequentValueTruncation(t *testing.T) {
	db := buildItemDB(t)
	opts := DefaultOptions()
	opts.NumFrequentValues = 2
	ts, err := Collect(db, "item", opts)
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	if got := len(ts.ColumnStats("i_category").Frequent); got != 2 {
		t.Errorf("frequent list length = %d, want 2", got)
	}
	opts.NumFrequentValues = 0
	ts, _ = Collect(db, "item", opts)
	if got := len(ts.ColumnStats("i_category").Frequent); got != 0 {
		t.Errorf("frequent list should be empty when disabled, got %d", got)
	}
}

func TestCollectAll(t *testing.T) {
	db := buildItemDB(t)
	if err := CollectAll(db, DefaultOptions()); err != nil {
		t.Fatalf("CollectAll: %v", err)
	}
	if len(db.Catalog.TablesWithStats()) != 1 {
		t.Errorf("TablesWithStats = %v", db.Catalog.TablesWithStats())
	}
}
