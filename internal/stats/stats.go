// Package stats implements RUNSTATS-style statistics collection: it scans the
// stored data and produces the catalog statistics snapshots the cost-based
// optimizer consumes.
//
// The collector supports deliberate blind spots — sampling, frequent-value
// list truncation, and skipping column-group (correlation) statistics — so
// that the optimizer's estimates can diverge from the runtime truth, which is
// the premise of the paper: "cost estimations may go awry".
package stats

import (
	"fmt"
	"sort"
	"strings"

	"galo/internal/catalog"
	"galo/internal/storage"
)

// Options controls what the collector gathers.
type Options struct {
	// NumFrequentValues is the size of the most-frequent-value list per
	// column (DB2's NUM_FREQVALUES). Zero disables frequent-value stats.
	NumFrequentValues int
	// ColumnGroups lists sets of columns per table for which combined
	// distinct counts should be collected, e.g. {"ITEM": {{"I_CATEGORY",
	// "I_CLASS"}}}. Without a group stat the optimizer assumes independence.
	ColumnGroups map[string][][]string
	// NumFrequentGroupValues is the size of the most-frequent-combination
	// list collected per column group. Zero means DefaultGroupFrequentValues;
	// negative disables combination lists (NDV-only groups).
	NumFrequentGroupValues int
	// SampleEvery collects statistics from every k-th row only (1 = full
	// scan). Sampling introduces estimation error on skewed data.
	SampleEvery int
}

// DefaultGroupFrequentValues is the frequent-combination list size used when
// Options.NumFrequentGroupValues is zero. It is sized so that every
// (tenant, dominant type) combination of the trace workload fits.
const DefaultGroupFrequentValues = 256

// DefaultOptions returns full-scan collection with a 10-entry frequent value
// list and no column groups.
func DefaultOptions() Options {
	return Options{NumFrequentValues: 10, SampleEvery: 1}
}

// Collect gathers statistics for one table and installs them in the catalog.
func Collect(db *storage.Database, table string, opts Options) (*catalog.TableStats, error) {
	t := db.Table(table)
	if t == nil {
		return nil, fmt.Errorf("stats: unknown table %s", table)
	}
	if opts.SampleEvery < 1 {
		opts.SampleEvery = 1
	}
	def := t.Def
	ts := &catalog.TableStats{
		Table:       def.Name,
		Cardinality: int64(len(t.Rows)),
		Pages:       db.Pages(def.Name),
		RowWidth:    t.RowWidth(),
		Columns:     make(map[string]*catalog.ColumnStats, len(def.Columns)),
		StaleFactor: 1.0,
	}

	type colAcc struct {
		counts   map[string]int64
		sample   map[string]catalog.Value
		nulls    int64
		min, max catalog.Value
		rows     int64
		width    int64
	}
	accs := make([]*colAcc, len(def.Columns))
	for i := range accs {
		accs[i] = &colAcc{counts: make(map[string]int64), sample: make(map[string]catalog.Value)}
	}

	for ri, row := range t.Rows {
		if ri%opts.SampleEvery != 0 {
			continue
		}
		for ci, v := range row {
			acc := accs[ci]
			acc.rows++
			if v.IsNull() {
				acc.nulls++
				continue
			}
			key := v.Key()
			acc.counts[key]++
			if _, ok := acc.sample[key]; !ok {
				acc.sample[key] = v
			}
			if acc.min.IsNull() || catalog.Compare(v, acc.min) < 0 {
				acc.min = v
			}
			if acc.max.IsNull() || catalog.Compare(v, acc.max) > 0 {
				acc.max = v
			}
			if v.K == catalog.KindString {
				acc.width += int64(len(v.S)) + 4
			} else {
				acc.width += 8
			}
		}
	}

	scale := int64(opts.SampleEvery)
	for ci, col := range def.Columns {
		acc := accs[ci]
		cs := &catalog.ColumnStats{
			Column:    col.Name,
			NDV:       int64(len(acc.counts)),
			NullCount: acc.nulls * scale,
			Min:       acc.min,
			Max:       acc.max,
			RowCount:  ts.Cardinality,
		}
		if acc.rows > 0 {
			cs.AvgWidth = int(acc.width / acc.rows)
		}
		if opts.NumFrequentValues > 0 {
			cs.Frequent = topK(acc.counts, acc.sample, opts.NumFrequentValues, scale)
		}
		ts.Columns[col.Name] = cs
	}

	// Column-group statistics, if requested for this table.
	groupK := opts.NumFrequentGroupValues
	if groupK == 0 {
		groupK = DefaultGroupFrequentValues
	}
	if groupK < 0 {
		groupK = 0
	}
	for tbl, groups := range opts.ColumnGroups {
		if !strings.EqualFold(tbl, def.Name) {
			continue
		}
		for _, group := range groups {
			ndv, freq := groupStats(t, group, opts.SampleEvery, groupK)
			cols := make([]string, len(group))
			for i, c := range group {
				cols[i] = strings.ToUpper(c)
			}
			ts.Groups = append(ts.Groups, catalog.ColumnGroup{Columns: cols, NDV: ndv, Frequent: freq})
		}
	}

	db.Catalog.SetStats(ts)
	return ts, nil
}

// CollectAll runs Collect over every table that holds rows.
func CollectAll(db *storage.Database, opts Options) error {
	for _, name := range db.TableNames() {
		if _, err := Collect(db, name, opts); err != nil {
			return err
		}
	}
	return nil
}

func topK(counts map[string]int64, sample map[string]catalog.Value, k int, scale int64) []catalog.FrequentValue {
	type kv struct {
		key   string
		count int64
	}
	all := make([]kv, 0, len(counts))
	for key, c := range counts {
		all = append(all, kv{key, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].count != all[j].count {
			return all[i].count > all[j].count
		}
		return all[i].key < all[j].key
	})
	if len(all) > k {
		all = all[:k]
	}
	out := make([]catalog.FrequentValue, len(all))
	for i, e := range all {
		out[i] = catalog.FrequentValue{Value: sample[e.key], Count: e.count * scale}
	}
	return out
}

// groupStats computes the combined NDV of a column group and its top-k most
// frequent value combinations. Only columns present in the table definition
// participate; combination values follow the group's column order.
func groupStats(t *storage.Table, group []string, sampleEvery, k int) (int64, []catalog.GroupFrequentValue) {
	pos := make([]int, 0, len(group))
	for _, c := range group {
		if i := t.Def.ColumnIndex(c); i >= 0 {
			pos = append(pos, i)
		}
	}
	if len(pos) != len(group) {
		return 0, nil
	}
	counts := make(map[string]int64)
	samples := make(map[string][]catalog.Value)
	var sb strings.Builder
	for ri, row := range t.Rows {
		if ri%sampleEvery != 0 {
			continue
		}
		sb.Reset()
		for _, p := range pos {
			sb.WriteString(row[p].Key())
			sb.WriteByte('|')
		}
		key := sb.String()
		counts[key]++
		if _, ok := samples[key]; !ok && k > 0 {
			vals := make([]catalog.Value, len(pos))
			for vi, p := range pos {
				vals[vi] = row[p]
			}
			samples[key] = vals
		}
	}
	ndv := int64(len(counts))
	if k == 0 {
		return ndv, nil
	}
	type kv struct {
		key   string
		count int64
	}
	all := make([]kv, 0, len(counts))
	for key, c := range counts {
		all = append(all, kv{key, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].count != all[j].count {
			return all[i].count > all[j].count
		}
		return all[i].key < all[j].key
	})
	if len(all) > k {
		all = all[:k]
	}
	scale := int64(sampleEvery)
	freq := make([]catalog.GroupFrequentValue, len(all))
	for i, e := range all {
		freq[i] = catalog.GroupFrequentValue{Values: samples[e.key], Count: e.count * scale}
	}
	return ndv, freq
}
