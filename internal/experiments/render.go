package experiments

import (
	"fmt"
	"strings"

	"galo/internal/core"
)

// RenderExp1 renders Figure 9 / Exp-1 as text.
func RenderExp1(rows []Exp1Row) string {
	var b strings.Builder
	b.WriteString("Exp-1 / Figure 9 — learning scalability\n")
	b.WriteString("join-threshold | avg ms/query | avg ms/sub-query | sub-queries | templates | avg improvement\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%14d | %12.1f | %16.2f | %11d | %9d | %14.0f%%\n",
			r.JoinThreshold, r.AvgMsPerQuery, r.AvgMsPerSubQuery, r.SubQueries, r.TemplatesLearned, r.AvgImprovement*100)
	}
	return b.String()
}

// RenderExp2 renders Figure 10a/10b and the reuse count as text.
func RenderExp2(res *Exp2Result) string {
	var b strings.Builder
	b.WriteString("Exp-2 / Figure 10a — TPC-DS workload, optimizer with GALO versus without\n")
	b.WriteString(renderOutcomes(res.TPCDS))
	fmt.Fprintf(&b, "summary: %d/%d queries matched (%d rewrites kept), avg improvement %.0f%%, templates learned %d\n\n",
		res.TPCDSSummary.Matched, res.TPCDSSummary.Queries, res.TPCDSSummary.Applied, res.TPCDSSummary.AvgImprovement*100, res.TPCDSTemplates)
	b.WriteString("Exp-2 / Figure 10b — client workload, optimizer with GALO versus without\n")
	b.WriteString(renderOutcomes(res.Client))
	fmt.Fprintf(&b, "summary: %d/%d queries matched (%d rewrites kept), avg improvement %.0f%%, templates learned %d\n",
		res.ClientSummary.Matched, res.ClientSummary.Queries, res.ClientSummary.Applied, res.ClientSummary.AvgImprovement*100, res.ClientTemplates)
	fmt.Fprintf(&b, "cross-workload reuse: %d client queries improved by a pattern learned on TPC-DS\n",
		res.CrossWorkloadMatches)
	return b.String()
}

func renderOutcomes(outcomes []core.QueryOutcome) string {
	var b strings.Builder
	b.WriteString("query          | matched | original ms | GALO ms | normalized runtime\n")
	for _, o := range outcomes {
		if !o.Applied {
			continue
		}
		norm := 100.0
		if o.OriginalMillis > 0 {
			norm = o.GaloMillis / o.OriginalMillis * 100
		}
		fmt.Fprintf(&b, "%-14s | yes     | %11.1f | %7.1f | %5.1f%%\n", o.Query, o.OriginalMillis, o.GaloMillis, norm)
	}
	return b.String()
}

// RenderExp3 renders Figure 11 as text.
func RenderExp3(rows []Exp3Row) string {
	var b strings.Builder
	b.WriteString("Exp-3 / Figure 11 — matching time vs number of joined tables\n")
	b.WriteString("tables | fragments | ms per KB probe\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%6d | %9d | %14.3f\n", r.Tables, r.Fragments, r.MatchMillisPerCall)
	}
	return b.String()
}

// RenderExp4 renders Figure 12 as text.
func RenderExp4(rows []Exp4Row) string {
	var b strings.Builder
	b.WriteString("Exp-4 / Figure 12 — matching engine routinization\n")
	b.WriteString("queries | KB templates | total match ms\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%7d | %12d | %14.1f\n", r.Queries, r.KBTemplates, r.TotalMillis)
	}
	return b.String()
}

// RenderExp56 renders Figures 13 and 14 as text.
func RenderExp56(rows []Exp56Row) string {
	var b strings.Builder
	b.WriteString("Exp-5 / Figure 13 — time to learn problem patterns (minutes)\n")
	b.WriteString("pattern | query       | expert min | GALO min\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%7d | %-11s | %10.1f | %8.3f\n", r.Pattern, r.Query, r.ExpertMinutes, r.GaloMinutes)
	}
	b.WriteString("\nExp-6 / Figure 14 — quality of learned problem patterns (% improvement over optimizer plan)\n")
	b.WriteString("pattern | expert | GALO | expert found fix\n")
	for _, r := range rows {
		star := ""
		if !r.ExpertFoundFix {
			star = " (*)"
		}
		fmt.Fprintf(&b, "%7d | %5.0f%% | %3.0f%% | %v%s\n",
			r.Pattern, r.ExpertImprovement*100, r.GaloImprovement*100, r.ExpertFoundFix, star)
	}
	return b.String()
}
