package experiments

import (
	"fmt"
	"time"

	"galo/internal/fleet"
	"galo/internal/fleet/chaos"
	"galo/internal/kb"
)

// FleetHarness is an in-process chaos fleet over a knowledge base dump:
// `shards` shard groups of `replicas` chaos replicas each, every replica a
// real HTTP server over that shard's slice of the dump. Benchmarks and
// experiments point Config.Fleet at Options and then Kill/Restart replicas
// to measure the gateway's fault masking — the serving system under test
// cannot tell the harness from remote `galo shard` processes.
type FleetHarness struct {
	// Options is ready to assign to core.Config.Fleet: the replica URLs are
	// live as soon as NewFleetHarness returns.
	Options fleet.Options

	replicas [][]*chaos.Replica
}

// NewFleetHarness slices the N-Triples dump across the shard layout and
// starts every replica. A zero policy takes the fleet defaults.
func NewFleetHarness(ntriples string, shards, replicas int, policy fleet.Policy) (*FleetHarness, error) {
	if shards < 1 || replicas < 1 {
		return nil, fmt.Errorf("experiments: fleet harness needs >=1 shard and replica, got %d x %d", shards, replicas)
	}
	h := &FleetHarness{replicas: make([][]*chaos.Replica, shards)}
	h.Options.Policy = policy
	for si := 0; si < shards; si++ {
		slice, err := kb.ShardSlice(ntriples, si, shards)
		if err != nil {
			h.Close()
			return nil, err
		}
		knowledge := kb.New()
		if slice != "" {
			if err := knowledge.LoadNTriples(slice); err != nil {
				h.Close()
				return nil, err
			}
		}
		// Replicas of one shard share the handler: identical contents, the
		// way fleet replicas loaded from the same dump would serve.
		handler := fleet.NewShardServer(knowledge)
		urls := make([]string, replicas)
		for ri := 0; ri < replicas; ri++ {
			r := chaos.NewReplica(handler, chaos.NewFaults(int64(si*31+ri+1)))
			if err := r.Start(); err != nil {
				h.Close()
				return nil, err
			}
			h.replicas[si] = append(h.replicas[si], r)
			urls[ri] = r.URL()
		}
		h.Options.Shards = append(h.Options.Shards, urls)
	}
	return h, nil
}

// Replica exposes one chaos replica for kills, restarts and fault plans.
func (h *FleetHarness) Replica(shard, replica int) *chaos.Replica {
	return h.replicas[shard][replica]
}

// Kill SIGKILL-equivalently tears one replica down (listener closed,
// connections cut). KillRecovery or Restart can bring it back.
func (h *FleetHarness) Kill(shard, replica int) { h.replicas[shard][replica].Kill() }

// Restart brings a killed replica back on its original address.
func (h *FleetHarness) Restart(shard, replica int) error {
	return h.replicas[shard][replica].Start()
}

// KillRecovery measures the gateway-visible recovery from a replica kill: it
// kills the replica and repeatedly calls probe (a closure issuing one real
// request through the gateway under test) until it succeeds, returning the
// elapsed time from SIGKILL to the first successful failover probe. The
// replica stays down; restart it explicitly if the experiment continues.
func (h *FleetHarness) KillRecovery(shard, replica int, probe func() error) (time.Duration, error) {
	h.Kill(shard, replica)
	start := time.Now()
	deadline := start.Add(30 * time.Second)
	var lastErr error
	for time.Now().Before(deadline) {
		if lastErr = probe(); lastErr == nil {
			return time.Since(start), nil
		}
	}
	return 0, fmt.Errorf("experiments: no successful probe within 30s of the kill: %w", lastErr)
}

// Close kills every replica.
func (h *FleetHarness) Close() {
	for _, group := range h.replicas {
		for _, r := range group {
			if r != nil {
				r.Kill()
			}
		}
	}
}
