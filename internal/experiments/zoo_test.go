package experiments

import (
	"testing"

	"galo/internal/workload/scenario"
)

// zooTestConfig runs the zoo at gate-test scale: small enough for tier-1,
// large enough that the hazards are unmistakable.
func zooTestConfig() Config {
	cfg := DefaultConfig()
	cfg.WorkloadScales = map[string]float64{"ohlc": 0.15, "joblike": 0.15, "trace": 0.15}
	return cfg
}

// TestZooHazardGates is the zoo's adversarial gate: for every scenario, the
// estimation hazard must actually fire under default statistics (per-scan
// q-error p90 > 10) and the scenario's Learn remedy must actually fix it
// (p90 < 2). A scenario failing the pre-learning bound is decorative; one
// failing the post-learning bound has no working remedy.
func TestZooHazardGates(t *testing.T) {
	results, err := RunZoo(zooTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(Scenarios()) {
		t.Fatalf("RunZoo returned %d results, want %d", len(results), len(Scenarios()))
	}
	for _, r := range results {
		r := r
		t.Run(r.Scenario, func(t *testing.T) {
			if r.Scans < 8 {
				t.Errorf("only %d scans measured; hazard queries too thin", r.Scans)
			}
			if r.PreP90 <= 10 {
				t.Errorf("pre-learning q-error p90 = %.2f, want > 10: the hazard does not fire", r.PreP90)
			}
			if r.PostP90 >= 2 {
				t.Errorf("post-learning q-error p90 = %.2f, want < 2: the remedy does not work", r.PostP90)
			}
			if r.PostP90 >= r.PreP90 {
				t.Errorf("learning did not improve p90: pre %.2f vs post %.2f", r.PreP90, r.PostP90)
			}
		})
	}
}

// TestZooGeneratorsDeterministic extends PR 2's determinism invariant to the
// zoo: the same options produce byte-identical datasets and query lists on
// repeated runs (and across -cpu counts — CI runs this test under -cpu 1,4),
// and different seeds produce different data.
func TestZooGeneratorsDeterministic(t *testing.T) {
	for _, sc := range Scenarios() {
		sc := sc
		t.Run(sc.Name(), func(t *testing.T) {
			gen := sc.DefaultGen()
			gen.Scale = 0.1
			var dbFP, qFP uint64
			for run := 0; run < 2; run++ {
				db, err := sc.Generate(gen)
				if err != nil {
					t.Fatal(err)
				}
				fp := scenario.Fingerprint(db)
				qfp := scenario.FingerprintQueries(sc.HazardQueries(db, 0))
				if run == 0 {
					dbFP, qFP = fp, qfp
					continue
				}
				if fp != dbFP {
					t.Errorf("run %d: dataset fingerprint %x != first run %x", run, fp, dbFP)
				}
				if qfp != qFP {
					t.Errorf("run %d: query-list fingerprint %x != first run %x", run, qfp, qFP)
				}
			}
			gen.Seed += 7
			db, err := sc.Generate(gen)
			if err != nil {
				t.Fatal(err)
			}
			if fp := scenario.Fingerprint(db); fp == dbFP {
				t.Errorf("different seed produced identical dataset fingerprint %x", fp)
			}
		})
	}
}

// TestScaleForPerWorkload pins the per-workload scale contract: explicit
// entries win, missing or non-positive entries fall back to the global
// Scale, and the default configuration keeps the zoo scenarios at their own
// scales rather than the TPC-DS harness scale.
func TestScaleForPerWorkload(t *testing.T) {
	cfg := Config{Scale: 2.0, WorkloadScales: map[string]float64{"ohlc": 0.5, "trace": 0}}
	if got := cfg.ScaleFor("ohlc"); got != 0.5 {
		t.Errorf("ScaleFor(ohlc) = %v, want 0.5", got)
	}
	if got := cfg.ScaleFor("trace"); got != 2.0 {
		t.Errorf("ScaleFor(trace) with zero entry = %v, want fallback 2.0", got)
	}
	if got := cfg.ScaleFor("joblike"); got != 2.0 {
		t.Errorf("ScaleFor(joblike) missing entry = %v, want fallback 2.0", got)
	}
	def := DefaultConfig()
	for _, name := range []string{"ohlc", "joblike", "trace"} {
		if _, ok := def.WorkloadScales[name]; !ok {
			t.Errorf("DefaultConfig has no per-workload scale for %q", name)
		}
	}
	if def.ScaleFor("ohlc") >= def.ScaleFor("tpcds") {
		t.Errorf("default ohlc scale %v should be below the tpcds scale %v (deep calendar at small row counts)",
			def.ScaleFor("ohlc"), def.ScaleFor("tpcds"))
	}
}
