package experiments

import (
	"strings"
	"testing"

	"galo/internal/kb"
)

// tinyConfig keeps the harness tests fast; the benchmarks in the repository
// root run the fuller configurations.
func tinyConfig() Config {
	cfg := DefaultConfig()
	cfg.Scale = 0.06
	cfg.TPCDSQueries = 20
	cfg.ClientQueries = 30
	cfg.RandomPlans = 6
	cfg.Workers = 2
	return cfg
}

func TestRunExp1ShowsThresholdGrowth(t *testing.T) {
	rows, err := RunExp1(tinyConfig(), []int{1, 3})
	if err != nil {
		t.Fatalf("RunExp1: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].JoinThreshold != 1 || rows[1].JoinThreshold != 3 {
		t.Errorf("thresholds = %+v", rows)
	}
	// A larger threshold analyzes at least as many sub-queries.
	if rows[1].SubQueries < rows[0].SubQueries {
		t.Errorf("sub-queries did not grow with the threshold: %+v", rows)
	}
	if rows[0].AvgMsPerQuery <= 0 || rows[1].AvgMsPerSubQuery <= 0 {
		t.Errorf("timings missing: %+v", rows)
	}
	text := RenderExp1(rows)
	if !strings.Contains(text, "Figure 9") || !strings.Contains(text, "join-threshold") {
		t.Errorf("render output malformed:\n%s", text)
	}
}

func TestRunExp2ImprovesWorkloads(t *testing.T) {
	res, err := RunExp2(tinyConfig())
	if err != nil {
		t.Fatalf("RunExp2: %v", err)
	}
	if res.TPCDSSummary.Queries == 0 || res.ClientSummary.Queries == 0 {
		t.Fatalf("workloads not executed: %+v", res)
	}
	if res.TPCDSTemplates == 0 {
		t.Errorf("no templates learned on TPC-DS")
	}
	if res.TPCDSSummary.Matched == 0 {
		t.Errorf("no TPC-DS queries matched for re-optimization")
	}
	if res.TPCDSSummary.Applied > 0 && res.TPCDSSummary.AvgImprovement < 0 {
		t.Errorf("applied rewrites but negative improvement: %+v", res.TPCDSSummary)
	}
	if res.TPCDSSummary.TotalGalo > res.TPCDSSummary.TotalOriginal*1.001 {
		t.Errorf("validated re-optimization must never regress the workload: %+v", res.TPCDSSummary)
	}
	text := RenderExp2(res)
	if !strings.Contains(text, "Figure 10a") || !strings.Contains(text, "cross-workload reuse") {
		t.Errorf("render output malformed:\n%s", text)
	}
}

func TestRunExp3MatchingTimeGrowsGently(t *testing.T) {
	rows, err := RunExp3(tinyConfig(), []int{2, 8, 16})
	if err != nil {
		t.Fatalf("RunExp3: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %+v", rows)
	}
	for _, r := range rows {
		if r.Tables >= 4 && r.Fragments == 0 {
			t.Errorf("no fragments for %d tables", r.Tables)
		}
		if r.MatchMillisPerCall < 0 {
			t.Errorf("negative match time: %+v", r)
		}
	}
	if !strings.Contains(RenderExp3(rows), "Figure 11") {
		t.Errorf("render output malformed")
	}
}

func TestRunExp4ScalesWithKBAndWorkload(t *testing.T) {
	rows, err := RunExp4(tinyConfig(), []int{4, 8}, []int{20, 60})
	if err != nil {
		t.Fatalf("RunExp4: %v", err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// More queries against the same KB must not be cheaper.
	if rows[1].TotalMillis < rows[0].TotalMillis*0.5 {
		t.Errorf("doubling the workload halved the time: %+v", rows[:2])
	}
	if !strings.Contains(RenderExp4(rows), "Figure 12") {
		t.Errorf("render output malformed")
	}
}

func TestInflateKB(t *testing.T) {
	knowledge := kb.New()
	if err := InflateKB(knowledge, 40, 7); err != nil {
		t.Fatalf("InflateKB: %v", err)
	}
	if knowledge.Size() != 40 {
		t.Errorf("Size = %d, want 40", knowledge.Size())
	}
	for _, tmpl := range knowledge.Templates() {
		if tmpl.GuidelineXML == "" || tmpl.Problem == nil {
			t.Errorf("synthetic template incomplete")
		}
	}
}

func TestRunExp56ComparesExpertAndGalo(t *testing.T) {
	rows, err := RunExp56(tinyConfig())
	if err != nil {
		t.Fatalf("RunExp56: %v", err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4 problem patterns", len(rows))
	}
	galoCheaperCount := 0
	galoBetterOrEqual := 0
	for _, r := range rows {
		if r.ExpertMinutes <= 0 {
			t.Errorf("expert time missing: %+v", r)
		}
		if r.GaloMinutes < r.ExpertMinutes {
			galoCheaperCount++
		}
		if r.GaloImprovement >= r.ExpertImprovement {
			galoBetterOrEqual++
		}
	}
	// The paper's qualitative findings: automatic learning is cheaper than
	// manual diagnosis and at least as effective for most patterns.
	if galoCheaperCount < 3 {
		t.Errorf("GALO should be cheaper than the expert for most patterns: %+v", rows)
	}
	if galoBetterOrEqual < 2 {
		t.Errorf("GALO should match or beat the expert's plans for most patterns: %+v", rows)
	}
	text := RenderExp56(rows)
	if !strings.Contains(text, "Figure 13") || !strings.Contains(text, "Figure 14") {
		t.Errorf("render output malformed:\n%s", text)
	}
}
