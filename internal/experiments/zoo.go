package experiments

import (
	"fmt"
	"math"
	"sort"

	"galo/internal/executor"
	"galo/internal/optimizer"
	"galo/internal/qgm"
	"galo/internal/sqlparser"
	"galo/internal/storage"
	"galo/internal/workload/joblike"
	"galo/internal/workload/ohlc"
	"galo/internal/workload/scenario"
	"galo/internal/workload/trace"
)

// Scenarios returns the workload zoo in registry order. Each scenario is an
// adversarial workload: a deterministic generator with a built-in estimation
// hazard, hazard queries, and a statistical remedy (scenario.Scenario).
func Scenarios() []scenario.Scenario {
	return []scenario.Scenario{ohlc.New(), joblike.New(), trace.New()}
}

// ScenarioByName looks a zoo scenario up by its registry name.
func ScenarioByName(name string) (scenario.Scenario, bool) {
	for _, sc := range Scenarios() {
		if sc.Name() == name {
			return sc, true
		}
	}
	return nil, false
}

// ScanQErrors optimizes and executes each query and returns the sorted
// per-scan q-errors max(est/act, act/est) — the same metric
// BENCH_optimizer.json tracks, shared here so the zoo gates and benchmarks
// measure identically.
func ScanQErrors(db *storage.Database, opts optimizer.Options, queries []*sqlparser.Query) ([]float64, error) {
	opt := optimizer.New(db.Catalog, opts)
	ex := executor.New(db)
	var errs []float64
	for _, q := range queries {
		plan, _, err := opt.Optimize(q)
		if err != nil {
			return nil, fmt.Errorf("optimize %s: %w", q.Name, err)
		}
		if _, err := ex.Execute(plan, q); err != nil {
			return nil, fmt.Errorf("execute %s: %w", q.Name, err)
		}
		plan.Root.Walk(func(n *qgm.Node) {
			if !n.Op.IsScan() {
				return
			}
			est := math.Max(n.EstCardinality, 1)
			act := math.Max(n.ActCardinality, 1)
			errs = append(errs, math.Max(est/act, act/est))
		})
	}
	sort.Float64s(errs)
	return errs, nil
}

// QErrorQuantile reads quantile q from a sorted q-error slice.
func QErrorQuantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// ZooResult is one scenario's pre/post-learning estimation quality.
type ZooResult struct {
	Scenario   string
	Hazard     string
	Scans      int
	PreMedian  float64
	PreP90     float64
	PreMax     float64
	PostMedian float64
	PostP90    float64
	PostMax    float64
}

// RunZoo generates every zoo scenario at its per-workload scale
// (Config.ScaleFor), measures per-scan q-error over the hazard queries under
// default statistics, applies the scenario's Learn remedy, and measures
// again. The pre/post gap is the tier-1 gate: pre p90 > 10 (the hazard
// fires), post p90 < 2 (the remedy works).
func RunZoo(cfg Config) ([]ZooResult, error) {
	var out []ZooResult
	for _, sc := range Scenarios() {
		gen := sc.DefaultGen()
		gen.Scale = cfg.ScaleFor(sc.Name())
		db, err := sc.Generate(gen)
		if err != nil {
			return nil, fmt.Errorf("%s: generate: %w", sc.Name(), err)
		}
		queries := sc.HazardQueries(db, 0)
		pre, err := ScanQErrors(db, optimizer.DefaultOptions(), queries)
		if err != nil {
			return nil, fmt.Errorf("%s: pre-learning: %w", sc.Name(), err)
		}
		learned, err := sc.Learn(db)
		if err != nil {
			return nil, fmt.Errorf("%s: learn: %w", sc.Name(), err)
		}
		post, err := ScanQErrors(db, learned, queries)
		if err != nil {
			return nil, fmt.Errorf("%s: post-learning: %w", sc.Name(), err)
		}
		out = append(out, ZooResult{
			Scenario:   sc.Name(),
			Hazard:     sc.Hazard(),
			Scans:      len(pre),
			PreMedian:  QErrorQuantile(pre, 0.5),
			PreP90:     QErrorQuantile(pre, 0.9),
			PreMax:     QErrorQuantile(pre, 1.0),
			PostMedian: QErrorQuantile(post, 0.5),
			PostP90:    QErrorQuantile(post, 0.9),
			PostMax:    QErrorQuantile(post, 1.0),
		})
	}
	return out, nil
}
