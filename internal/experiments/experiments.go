// Package experiments implements the paper's evaluation harness: one function
// per experiment (Exp-1 .. Exp-6, Figures 9-14), each returning the rows of
// the corresponding figure or table so that the benchmarks in the repository
// root and the galo-experiments command can regenerate them.
//
// Absolute numbers differ from the paper (the substrate is a simulator and
// the data is scaled down); EXPERIMENTS.md records, per experiment, the shape
// that is expected to hold and what was measured.
package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"galo/internal/core"
	"galo/internal/expert"
	"galo/internal/fuseki"
	"galo/internal/kb"
	"galo/internal/learning"
	"galo/internal/matching"
	"galo/internal/optimizer"
	"galo/internal/qgm"
	"galo/internal/sqlparser"
	"galo/internal/storage"
	"galo/internal/workload/client"
	"galo/internal/workload/tpcds"
)

// Config controls the scale of the experiment harness. The defaults keep
// every experiment runnable in minutes on a laptop; raising Scale and the
// query limits approaches the paper's setup.
type Config struct {
	Seed int64
	// Scale is the fallback data scale for workloads without an entry in
	// WorkloadScales.
	Scale float64
	// WorkloadScales sets the data scale per workload name ("tpcds",
	// "client", "ohlc", "joblike", "trace"). Scenario scale is per-workload
	// because the hazards need different geometries: OHLC needs a deep
	// calendar at small row counts, while the TPC-DS rescue numbers need
	// large fact tables. Missing or non-positive entries fall back to Scale.
	WorkloadScales map[string]float64
	// TPCDSQueries / ClientQueries limit how many workload queries are used
	// (0 = all: 99 and 116 respectively).
	TPCDSQueries  int
	ClientQueries int
	// LearningOverrides tunes the learning engine for harness runs.
	RandomPlans       int
	Runs              int
	PredicateVariants int
	Workers           int
	// ExecWorkers is the exchange-worker count for validated plan executions
	// (core.Config.Exec.Workers); 0 or 1 runs them serially. Simulated costs
	// are identical at any worker count, so results don't depend on it.
	ExecWorkers int
}

// DefaultConfig returns the laptop-scale configuration used by the
// benchmarks.
func DefaultConfig() Config {
	return Config{
		Seed: 20190522,
		// 10x the pre-streaming-executor default (0.12): concurrent plan
		// execution no longer materializes every intermediate, so the hazard
		// experiments can afford the data volumes where the Figure 8 rescue
		// numbers get dramatic. CI and the test suite pass their own smaller
		// explicit scales.
		Scale: 1.2,
		// The zoo scenarios are cheaper per row than the TPC-DS harness and
		// their hazards are scale-invariant, so they run smaller by default.
		// tpcds/client deliberately have no entry: they follow Scale, so
		// callers that shrink Scale (tests, CI) shrink those workloads too.
		WorkloadScales: map[string]float64{
			"ohlc":    0.4,
			"joblike": 1.0,
			"trace":   0.8,
		},
		TPCDSQueries:      28,
		ClientQueries:     36,
		RandomPlans:       6,
		Runs:              2,
		PredicateVariants: 1,
		Workers:           4,
		ExecWorkers:       4,
	}
}

func (c Config) learningOptions(workload string, joinThreshold int) learning.Options {
	opts := learning.DefaultOptions()
	opts.JoinThreshold = joinThreshold
	opts.RandomPlans = c.RandomPlans
	opts.Runs = c.Runs
	opts.PredicateVariants = c.PredicateVariants
	opts.Workers = c.Workers
	opts.MaxSubQueriesPerQuery = 16
	opts.Seed = c.Seed
	opts.Workload = workload
	return opts
}

func (c Config) tpcdsQueries() []*sqlparser.Query {
	qs := tpcds.Queries()
	if c.TPCDSQueries > 0 && c.TPCDSQueries < len(qs) {
		qs = qs[:c.TPCDSQueries]
	}
	return qs
}

func (c Config) clientQueries() []*sqlparser.Query {
	qs := client.Queries()
	if c.ClientQueries > 0 && c.ClientQueries < len(qs) {
		qs = qs[:c.ClientQueries]
	}
	return qs
}

// ScaleFor returns the data scale for a workload: its WorkloadScales entry
// when present and positive, Config.Scale otherwise.
func (c Config) ScaleFor(workload string) float64 {
	if s, ok := c.WorkloadScales[workload]; ok && s > 0 {
		return s
	}
	return c.Scale
}

func (c Config) tpcdsDB() (*storage.Database, error) {
	return tpcds.Generate(tpcds.GenOptions{Seed: c.Seed, Scale: c.ScaleFor("tpcds"), Hazards: true})
}

func (c Config) clientDB() (*storage.Database, error) {
	return client.Generate(client.GenOptions{Seed: c.Seed + 1, Scale: c.ScaleFor("client"), Hazards: true})
}

// --- Exp-1 / Figure 9: learning scalability ----------------------------------

// Exp1Row is one point of Figure 9 plus the Exp-1 aggregate numbers.
type Exp1Row struct {
	JoinThreshold    int
	AvgMsPerQuery    float64
	AvgMsPerSubQuery float64
	SubQueries       int
	TemplatesLearned int
	AvgImprovement   float64
}

// RunExp1 measures learning time per query and per sub-query as the
// join-number threshold grows (Figure 9), and reports how many templates were
// learned and their average improvement (Exp-1).
func RunExp1(cfg Config, thresholds []int) ([]Exp1Row, error) {
	if len(thresholds) == 0 {
		thresholds = []int{1, 2, 3, 4}
	}
	queries := cfg.tpcdsQueries()
	var rows []Exp1Row
	for _, th := range thresholds {
		db, err := cfg.tpcdsDB()
		if err != nil {
			return nil, err
		}
		knowledge := kb.New()
		eng := learning.New(db, knowledge, cfg.learningOptions("tpcds", th))
		report, err := eng.LearnWorkload(queries)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Exp1Row{
			JoinThreshold:    th,
			AvgMsPerQuery:    report.AvgWallPerQuery(),
			AvgMsPerSubQuery: report.AvgWallPerSubQuery(),
			SubQueries:       report.SubQueriesAnalyzed,
			TemplatesLearned: report.TemplatesAdded,
			AvgImprovement:   report.AvgImprovement,
		})
	}
	return rows, nil
}

// --- Exp-2 / Figure 10: matching performance improvement ---------------------

// Exp2Result holds the per-query outcomes for both workloads plus the
// cross-workload reuse count.
type Exp2Result struct {
	TPCDS         []core.QueryOutcome
	TPCDSSummary  core.WorkloadSummary
	Client        []core.QueryOutcome
	ClientSummary core.WorkloadSummary
	// TPCDSTemplates and ClientTemplates are the knowledge base sizes after
	// learning each workload.
	TPCDSTemplates  int
	ClientTemplates int
	// CrossWorkloadMatches counts client-workload queries improved by a
	// rewrite learned on TPC-DS (the 6-out-of-23 result of Exp-2).
	CrossWorkloadMatches int
}

// RunExp2 learns on both workloads and re-optimizes both, reporting Figure
// 10a, Figure 10b and the cross-workload reuse count.
func RunExp2(cfg Config) (*Exp2Result, error) {
	out := &Exp2Result{}

	// TPC-DS: learn then re-optimize (Figure 10a).
	tpcdsDB, err := cfg.tpcdsDB()
	if err != nil {
		return nil, err
	}
	tpcdsSys := core.NewSystem(tpcdsDB, core.Config{
		Learning: cfg.learningOptions("tpcds", 4),
		Matching: matching.DefaultOptions(),
		Exec:     core.ExecOptions{Workers: cfg.ExecWorkers},
	})
	tpcdsQueries := cfg.tpcdsQueries()
	if _, err := tpcdsSys.Learn(tpcdsQueries); err != nil {
		return nil, err
	}
	out.TPCDSTemplates = tpcdsSys.KB().Size()
	out.TPCDS, out.TPCDSSummary, err = tpcdsSys.ReoptimizeWorkload(tpcdsQueries)
	if err != nil {
		return nil, err
	}

	// Client: learn on the client workload, then merge in the TPC-DS
	// knowledge so cross-workload reuse can be observed (Figure 10b).
	clientDB, err := cfg.clientDB()
	if err != nil {
		return nil, err
	}
	clientSys := core.NewSystem(clientDB, core.Config{
		Learning: cfg.learningOptions("client", 4),
		Matching: matching.DefaultOptions(),
		Exec:     core.ExecOptions{Workers: cfg.ExecWorkers},
	})
	clientQueries := cfg.clientQueries()
	if _, err := clientSys.Learn(clientQueries); err != nil {
		return nil, err
	}
	out.ClientTemplates = clientSys.KB().Size()
	if err := clientSys.ImportKB(tpcdsSys.KB()); err != nil {
		return nil, err
	}
	out.Client, out.ClientSummary, err = clientSys.ReoptimizeWorkload(clientQueries)
	if err != nil {
		return nil, err
	}
	out.CrossWorkloadMatches = countCrossWorkloadMatches(clientSys, clientQueries)
	return out, nil
}

// countCrossWorkloadMatches re-runs matching for the improved client queries
// and counts those whose matched template was learned on the TPC-DS workload.
func countCrossWorkloadMatches(sys *core.System, queries []*sqlparser.Query) int {
	byIRI := map[string]string{}
	for _, t := range sys.KB().Templates() {
		byIRI[t.ID] = t.SourceWorkload
	}
	count := 0
	for _, q := range queries {
		res, err := sys.Reoptimize(q)
		if err != nil || len(res.Matches) == 0 {
			continue
		}
		for _, m := range res.Matches {
			id := m.TemplateIRI[strings.LastIndex(m.TemplateIRI, "/")+1:]
			if byIRI[id] == "tpcds" {
				count++
				break
			}
		}
	}
	return count
}

// --- Exp-3 / Figure 11: matching scalability ---------------------------------

// Exp3Row is one bucket of Figure 11: matching time per rewrite for queries of
// a given join width.
type Exp3Row struct {
	Tables             int
	MatchMillisPerCall float64
	Fragments          int
}

// RunExp3 measures the time to probe the knowledge base as the number of
// joined tables grows, using the wide TPC-DS queries.
func RunExp3(cfg Config, widths []int) ([]Exp3Row, error) {
	if len(widths) == 0 {
		widths = []int{2, 4, 8, 15, 24, 32}
	}
	db, err := cfg.tpcdsDB()
	if err != nil {
		return nil, err
	}
	sys := core.NewSystem(db, core.Config{
		Learning: cfg.learningOptions("tpcds", 4),
		Matching: matching.DefaultOptions(),
		Exec:     core.ExecOptions{Workers: cfg.ExecWorkers},
	})
	// Learn over a handful of queries so the knowledge base is non-trivial.
	if _, err := sys.Learn([]*sqlparser.Query{tpcds.Fig3Query(), tpcds.Fig4Query(), tpcds.Fig7Query(), tpcds.Fig8Query()}); err != nil {
		return nil, err
	}
	var rows []Exp3Row
	for _, w := range widths {
		q := tpcds.WideQuery(w)
		res, err := sys.Reoptimize(q)
		if err != nil {
			return nil, err
		}
		plan, err := sys.Optimize(q)
		if err != nil {
			return nil, err
		}
		fragments := len(plan.EnumerateSubPlans(4))
		per := 0.0
		if res.ProbeStats.Probes > 0 {
			per = res.ProbeStats.TotalMillis / float64(res.ProbeStats.Probes)
		}
		rows = append(rows, Exp3Row{Tables: w, MatchMillisPerCall: per, Fragments: fragments})
	}
	return rows, nil
}

// --- Exp-4 / Figure 12: routinization -----------------------------------------

// Exp4Row is one point of Figure 12: total time to match a workload of the
// given size against a knowledge base of the given size.
type Exp4Row struct {
	Queries     int
	KBTemplates int
	TotalMillis float64
}

// RunExp4 measures how matching scales with workload size and knowledge base
// size. The knowledge base is inflated with synthetic templates to reach the
// requested sizes, as the paper does to reach 1,000 problem patterns.
func RunExp4(cfg Config, querySizes, kbSizes []int) ([]Exp4Row, error) {
	if len(querySizes) == 0 {
		querySizes = []int{10, 20, 40}
	}
	if len(kbSizes) == 0 {
		kbSizes = []int{50, 200, 1000}
	}
	db, err := cfg.tpcdsDB()
	if err != nil {
		return nil, err
	}
	allQueries := cfg.tpcdsQueries()
	var rows []Exp4Row
	for _, kbSize := range kbSizes {
		knowledge := kb.New()
		if err := InflateKB(knowledge, kbSize, cfg.Seed); err != nil {
			return nil, err
		}
		eng := matching.New(db.Catalog, fuseki.LocalEndpoint{Store: knowledge.Store()}, matching.DefaultOptions())
		opt := optimizer.New(db.Catalog, optimizer.DefaultOptions())
		for _, qn := range querySizes {
			queries := allQueries
			for len(queries) < qn {
				queries = append(queries, allQueries...)
			}
			queries = queries[:qn]
			start := time.Now()
			for _, q := range queries {
				plan, _, err := opt.Optimize(q)
				if err != nil {
					return nil, err
				}
				if _, err := eng.MatchPlan(plan); err != nil {
					return nil, err
				}
			}
			rows = append(rows, Exp4Row{
				Queries:     qn,
				KBTemplates: knowledge.Size(),
				TotalMillis: float64(time.Since(start).Microseconds()) / 1000,
			})
		}
	}
	return rows, nil
}

// InflateKB fills a knowledge base with synthetic problem-pattern templates
// of realistic shapes (1-3 joins over canonical tables with random method and
// cardinality bounds) until it holds n templates.
func InflateKB(knowledge *kb.KB, n int, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	methods := qgm.JoinMethods()
	scans := []qgm.OpType{qgm.OpTBSCAN, qgm.OpIXSCAN, qgm.OpFETCH}
	for knowledge.Size() < n {
		joins := 1 + rng.Intn(3)
		var node *qgm.Node
		for i := 0; i <= joins; i++ {
			op := scans[rng.Intn(len(scans))]
			leaf := &qgm.Node{Op: op, Table: fmt.Sprintf("TABLE_%d", i+1), TableInstance: fmt.Sprintf("TABLE_%d", i+1),
				EstCardinality: float64(10 + rng.Intn(1_000_000))}
			if op != qgm.OpTBSCAN {
				leaf.Index = fmt.Sprintf("INDEX_%d", i+1)
			}
			if node == nil {
				node = leaf
				continue
			}
			node = &qgm.Node{Op: methods[rng.Intn(len(methods))], Outer: node, Inner: leaf,
				EstCardinality: float64(10 + rng.Intn(1_000_000))}
		}
		plan := qgm.NewPlan(node)
		problem := plan.Root.Outer
		bounds := map[int]kb.Range{}
		problem.Walk(func(x *qgm.Node) {
			bounds[x.ID] = kb.Range{Lo: x.EstCardinality / 2, Hi: x.EstCardinality * 2}
		})
		guidelineXML := "<OPTGUIDELINES><HSJOIN><TBSCAN TABID='TABLE_1'/><TBSCAN TABID='TABLE_2'/></HSJOIN></OPTGUIDELINES>"
		_, err := knowledge.Add(&kb.Template{
			Problem:        problem,
			Bounds:         bounds,
			GuidelineXML:   guidelineXML,
			Improvement:    0.1 + rng.Float64()*0.5,
			Structural:     true,
			SourceWorkload: "synthetic",
			SourceQuery:    fmt.Sprintf("SYN.%d", knowledge.Size()),
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// --- Exp-5 and Exp-6 / Figures 13 and 14: cost and quality vs experts --------

// Exp56Row compares manual and automatic problem determination for one
// problem query.
type Exp56Row struct {
	Pattern           int
	Query             string
	ExpertMinutes     float64
	GaloMinutes       float64
	ExpertImprovement float64
	GaloImprovement   float64
	ExpertFoundFix    bool
}

// RunExp56 runs the comparative study over the four problem queries of Exp-5
// and Exp-6: the simulated experts' diagnosis time and plan quality against
// GALO's learning engine.
func RunExp56(cfg Config) ([]Exp56Row, error) {
	db, err := cfg.tpcdsDB()
	if err != nil {
		return nil, err
	}
	problems := []*sqlparser.Query{tpcds.Fig4Query(), tpcds.Fig8Query(), tpcds.Fig7Query(), tpcds.Fig3Query()}
	var rows []Exp56Row
	for i, q := range problems {
		exp := expert.New(db, expert.DefaultOptions())
		expRes, err := exp.Diagnose(q)
		if err != nil {
			return nil, err
		}
		knowledge := kb.New()
		eng := learning.New(db, knowledge, cfg.learningOptions("exp56", 4))
		galoRep, err := eng.LearnQuery(q)
		if err != nil {
			return nil, err
		}
		galoImp := 0.0
		for _, v := range galoRep.BestImprovements {
			if v > galoImp {
				galoImp = v
			}
		}
		rows = append(rows, Exp56Row{
			Pattern:           i + 1,
			Query:             q.Name,
			ExpertMinutes:     expRes.ManualMinutes + expRes.MachineMillis/60000,
			GaloMinutes:       galoRep.SimulatedWorkMillis / 60000,
			ExpertImprovement: expRes.Improvement,
			GaloImprovement:   galoImp,
			ExpertFoundFix:    expRes.Found,
		})
	}
	return rows, nil
}
