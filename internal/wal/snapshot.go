package wal

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"strconv"
	"strings"

	"galo/internal/rdf"
)

const (
	snapPrefix = "snap-"
	snapSuffix = ".nt"
	// snapMagic versions the snapshot file format; bump it if the header or
	// payload encoding ever changes.
	snapMagic = "GALOSNAP1"
	// snapshotsKept is how many snapshot generations retention preserves: the
	// newest plus one fallback. The WAL is only trimmed below the OLDER
	// retained snapshot, so if the newest snapshot fails its checksum at boot
	// the fallback can still replay the gap from the log.
	snapshotsKept = 2
)

// snapName names a snapshot file after the epoch it captures; fixed-width hex
// keeps lexicographic order equal to numeric order.
func snapName(epoch uint64) string { return fmt.Sprintf("%s%016x%s", snapPrefix, epoch, snapSuffix) }

// parseSnapName extracts the epoch from a snapshot file name.
func parseSnapName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, snapPrefix) || !strings.HasSuffix(name, snapSuffix) {
		return 0, false
	}
	v, err := strconv.ParseUint(name[len(snapPrefix):len(name)-len(snapSuffix)], 16, 64)
	return v, err == nil
}

// writeSnapshot durably writes one shard's full content at the given epoch:
// a checksummed header line plus the N-Triples payload, written to a temp
// file, fsynced, and renamed into place so a crash mid-write never leaves a
// half-visible snapshot.
func writeSnapshot(fsys FS, dir string, epoch uint64, ntriples string) error {
	payload := []byte(ntriples)
	header := fmt.Sprintf("%s %d %08x %d\n", snapMagic, epoch, crc32.Checksum(payload, castagnoli), len(payload))
	final := join(dir, snapName(epoch))
	tmp := final + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(append([]byte(header), payload...)); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return fsys.Rename(tmp, final)
}

// parseSnapshot validates a snapshot file and returns its epoch and triples.
// Any defect — bad magic, malformed header, length or checksum mismatch,
// unparseable payload — is an error; the caller falls back to an older file.
func parseSnapshot(data []byte) (uint64, []rdf.Triple, error) {
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return 0, nil, fmt.Errorf("wal: snapshot missing header line")
	}
	fields := strings.Fields(string(data[:nl]))
	if len(fields) != 4 || fields[0] != snapMagic {
		return 0, nil, fmt.Errorf("wal: bad snapshot header %q", string(data[:nl]))
	}
	epoch, err := strconv.ParseUint(fields[1], 10, 64)
	if err != nil {
		return 0, nil, fmt.Errorf("wal: bad snapshot epoch: %v", err)
	}
	sum, err := strconv.ParseUint(fields[2], 16, 32)
	if err != nil {
		return 0, nil, fmt.Errorf("wal: bad snapshot checksum: %v", err)
	}
	n, err := strconv.Atoi(fields[3])
	if err != nil || n < 0 {
		return 0, nil, fmt.Errorf("wal: bad snapshot length %q", fields[3])
	}
	payload := data[nl+1:]
	if len(payload) != n {
		return 0, nil, fmt.Errorf("wal: snapshot payload is %d bytes, header says %d", len(payload), n)
	}
	if crc32.Checksum(payload, castagnoli) != uint32(sum) {
		return 0, nil, fmt.Errorf("wal: snapshot checksum mismatch")
	}
	ts, err := rdf.ParseNTriples(string(payload))
	if err != nil {
		return 0, nil, fmt.Errorf("wal: snapshot payload: %v", err)
	}
	return epoch, ts, nil
}

// listSnapshots returns the shard directory's snapshot file names in epoch
// order (oldest first).
func listSnapshots(fsys FS, dir string) ([]string, error) {
	names, err := fsys.List(dir)
	if err != nil {
		return nil, err
	}
	var snaps []string
	for _, name := range names {
		if _, ok := parseSnapName(name); ok {
			snaps = append(snaps, name)
		}
	}
	return snaps, nil
}

// loadNewestSnapshot reads the newest snapshot that passes validation,
// falling back to older generations on any defect. It returns epoch 0 and no
// triples when no valid snapshot exists (the shard then rebuilds purely from
// the log, or starts empty).
func loadNewestSnapshot(fsys FS, dir string, stats *RecoveryStats, warnf func(string, ...any)) (uint64, []rdf.Triple) {
	snaps, err := listSnapshots(fsys, dir)
	if err != nil {
		warnf("wal: %s: listing snapshots: %v", dir, err)
		return 0, nil
	}
	for i := len(snaps) - 1; i >= 0; i-- {
		name := snaps[i]
		data, err := fsys.ReadFile(join(dir, name))
		var epoch uint64
		var ts []rdf.Triple
		if err == nil {
			epoch, ts, err = parseSnapshot(data)
		}
		if err == nil {
			if want, _ := parseSnapName(name); want != epoch {
				err = fmt.Errorf("wal: snapshot %s claims epoch %d", name, epoch)
			}
		}
		if err != nil {
			stats.SnapshotFallbacks++
			warnf("wal: %s: %v — falling back to an older snapshot", name, err)
			continue
		}
		stats.SnapshotsLoaded++
		return epoch, ts
	}
	return 0, nil
}

// trimSnapshots deletes all but the newest keep snapshot files and returns
// the epoch of the oldest file retained (0 when none exist). That epoch is
// the safe WAL trim bound: records at or below it are covered by every
// snapshot a future boot could fall back to.
func trimSnapshots(fsys FS, dir string, keep int) (uint64, error) {
	snaps, err := listSnapshots(fsys, dir)
	if err != nil {
		return 0, err
	}
	for len(snaps) > keep {
		if err := fsys.Remove(join(dir, snaps[0])); err != nil {
			return 0, err
		}
		snaps = snaps[1:]
	}
	if len(snaps) == 0 {
		return 0, nil
	}
	oldest, _ := parseSnapName(snaps[0])
	return oldest, nil
}
