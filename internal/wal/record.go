package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"galo/internal/rdf"
)

// Record is one logged mutation batch: the effective removals and additions
// of a store.Apply publication and the version (epoch) the publication
// carried. Replaying records in order against the state they were logged
// over reproduces the exact epoch lineage.
type Record struct {
	Version uint64
	Removed []rdf.Triple
	Added   []rdf.Triple
}

// castagnoli is the CRC32C table (the checksum polynomial used by every
// record and snapshot file; hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// recordHeaderLen is the per-record framing: 4-byte little-endian payload
// length + 4-byte little-endian CRC32C of the payload.
const recordHeaderLen = 8

// maxRecordLen rejects absurd lengths when a corrupt header happens to
// checksum-fail later anyway — it bounds the allocation a garbage length
// prefix could cause during recovery.
const maxRecordLen = 1 << 28 // 256 MB

// appendTerm encodes one term: 1 kind byte + uvarint length + raw bytes.
func appendTerm(buf []byte, t rdf.Term) []byte {
	buf = append(buf, byte(t.Kind))
	buf = binary.AppendUvarint(buf, uint64(len(t.Value)))
	return append(buf, t.Value...)
}

func appendTriples(buf []byte, ts []rdf.Triple) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(ts)))
	for _, t := range ts {
		buf = appendTerm(buf, t.S)
		buf = appendTerm(buf, t.P)
		buf = appendTerm(buf, t.O)
	}
	return buf
}

// Encode frames the record: [len u32][crc32c u32][payload]. The payload is
// uvarint version, then the removed and added triple lists.
func (r Record) Encode() []byte {
	payload := binary.AppendUvarint(nil, r.Version)
	payload = appendTriples(payload, r.Removed)
	payload = appendTriples(payload, r.Added)
	frame := make([]byte, recordHeaderLen, recordHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, castagnoli))
	return append(frame, payload...)
}

type decoder struct {
	buf []byte
	off int
}

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("wal: truncated varint at offset %d", d.off)
	}
	d.off += n
	return v, nil
}

func (d *decoder) term() (rdf.Term, error) {
	if d.off >= len(d.buf) {
		return rdf.Term{}, fmt.Errorf("wal: truncated term at offset %d", d.off)
	}
	kind := rdf.TermKind(d.buf[d.off])
	if kind != rdf.IRI && kind != rdf.Literal {
		return rdf.Term{}, fmt.Errorf("wal: bad term kind %d", kind)
	}
	d.off++
	n, err := d.uvarint()
	if err != nil {
		return rdf.Term{}, err
	}
	if uint64(len(d.buf)-d.off) < n {
		return rdf.Term{}, fmt.Errorf("wal: term length %d overruns payload", n)
	}
	t := rdf.Term{Kind: kind, Value: string(d.buf[d.off : d.off+int(n)])}
	d.off += int(n)
	return t, nil
}

func (d *decoder) triples() ([]rdf.Triple, error) {
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(d.buf)-d.off) { // every triple takes >= 6 bytes; cheap sanity bound
		return nil, fmt.Errorf("wal: triple count %d overruns payload", n)
	}
	if n == 0 {
		return nil, nil // keep empty == nil so round trips compare equal
	}
	out := make([]rdf.Triple, 0, n)
	for i := uint64(0); i < n; i++ {
		var tr rdf.Triple
		if tr.S, err = d.term(); err != nil {
			return nil, err
		}
		if tr.P, err = d.term(); err != nil {
			return nil, err
		}
		if tr.O, err = d.term(); err != nil {
			return nil, err
		}
		out = append(out, tr)
	}
	return out, nil
}

// decodeRecord parses one framed record from the front of buf. It returns
// the record and the number of bytes consumed. A short buffer (torn tail), a
// checksum mismatch, or a malformed payload return an error — recovery
// treats all three identically: the valid prefix ends here.
func decodeRecord(buf []byte) (Record, int, error) {
	if len(buf) < recordHeaderLen {
		return Record{}, 0, fmt.Errorf("wal: torn header (%d bytes)", len(buf))
	}
	n := binary.LittleEndian.Uint32(buf[0:4])
	if n > maxRecordLen {
		return Record{}, 0, fmt.Errorf("wal: implausible record length %d", n)
	}
	sum := binary.LittleEndian.Uint32(buf[4:8])
	if uint32(len(buf)-recordHeaderLen) < n {
		return Record{}, 0, fmt.Errorf("wal: torn record (want %d payload bytes, have %d)", n, len(buf)-recordHeaderLen)
	}
	payload := buf[recordHeaderLen : recordHeaderLen+int(n)]
	if crc32.Checksum(payload, castagnoli) != sum {
		return Record{}, 0, fmt.Errorf("wal: record checksum mismatch")
	}
	d := &decoder{buf: payload}
	var rec Record
	var err error
	if rec.Version, err = d.uvarint(); err != nil {
		return Record{}, 0, err
	}
	if rec.Removed, err = d.triples(); err != nil {
		return Record{}, 0, err
	}
	if rec.Added, err = d.triples(); err != nil {
		return Record{}, 0, err
	}
	if d.off != len(payload) {
		return Record{}, 0, fmt.Errorf("wal: %d trailing payload bytes", len(payload)-d.off)
	}
	return rec, recordHeaderLen + int(n), nil
}
