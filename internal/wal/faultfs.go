package wal

import (
	"errors"
	"sync"
)

// ErrInjected is the error FaultFS returns for every injected failure.
var ErrInjected = errors.New("wal: injected fault")

// FaultFS wraps another FS and injects failures on demand: fail the Nth
// write (counted across all files), deliver short writes, fail fsyncs, or
// corrupt file contents on read. It drives the fault-injection suite that
// proves recovery truncates torn records, snapshot loading falls back past
// corrupt files, and the manager degrades to in-memory mode instead of
// crashing. Safe for concurrent use.
type FaultFS struct {
	Inner FS

	mu sync.Mutex
	// failWriteAt: writes numbered >= failWriteAt fail (1-based); 0 = off.
	failWriteAt int
	// shortWriteAt: the write numbered shortWriteAt persists only half its
	// payload (then reports ErrInjected); 0 = off.
	shortWriteAt int
	failSync     bool
	corrupt      func(name string, data []byte) []byte
	writes       int
	syncs        int
}

// NewFaultFS wraps inner (OsFS when nil) with fault injection; all faults
// start disabled.
func NewFaultFS(inner FS) *FaultFS {
	if inner == nil {
		inner = OsFS{}
	}
	return &FaultFS{Inner: inner}
}

// FailWritesFrom makes the nth write (1-based, counted across all files) and
// every later write fail with ErrInjected without persisting anything;
// n <= 0 disables.
func (f *FaultFS) FailWritesFrom(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failWriteAt = n
}

// ShortWriteAt makes the nth write (1-based) persist only the first half of
// its payload and then report ErrInjected — a torn record; n <= 0 disables.
func (f *FaultFS) ShortWriteAt(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.shortWriteAt = n
}

// FailSyncs makes every Sync fail with ErrInjected.
func (f *FaultFS) FailSyncs(fail bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failSync = fail
}

// CorruptReads installs fn to transform every ReadFile result (nil restores
// clean reads). fn receives the file name and MUST return a new or modified
// slice; returning data unchanged leaves that file clean.
func (f *FaultFS) CorruptReads(fn func(name string, data []byte) []byte) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.corrupt = fn
}

// Writes returns how many writes the FS has seen (successful or failed).
func (f *FaultFS) Writes() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.writes
}

// Syncs returns how many Sync calls the FS has seen.
func (f *FaultFS) Syncs() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.syncs
}

// faultFile wraps a File with the parent's injection state.
type faultFile struct {
	File
	fs *FaultFS
}

func (w *faultFile) Write(p []byte) (int, error) {
	w.fs.mu.Lock()
	w.fs.writes++
	n := w.fs.writes
	fail := w.fs.failWriteAt > 0 && n >= w.fs.failWriteAt
	short := w.fs.shortWriteAt == n
	w.fs.mu.Unlock()
	if fail {
		return 0, ErrInjected
	}
	if short {
		half := len(p) / 2
		if _, err := w.File.Write(p[:half]); err != nil {
			return 0, err
		}
		return half, ErrInjected
	}
	return w.File.Write(p)
}

func (w *faultFile) Sync() error {
	w.fs.mu.Lock()
	w.fs.syncs++
	fail := w.fs.failSync
	w.fs.mu.Unlock()
	if fail {
		return ErrInjected
	}
	return w.File.Sync()
}

// OpenAppend opens for appending through the inner FS, wrapping the file
// with the injection state.
func (f *FaultFS) OpenAppend(name string) (File, error) {
	file, err := f.Inner.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f}, nil
}

// Create creates through the inner FS, wrapping the file with the injection
// state.
func (f *FaultFS) Create(name string) (File, error) {
	file, err := f.Inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f}, nil
}

// ReadFile reads through the inner FS, applying the installed corruption.
func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	data, err := f.Inner.ReadFile(name)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	corrupt := f.corrupt
	f.mu.Unlock()
	if corrupt != nil {
		data = corrupt(name, data)
	}
	return data, nil
}

// Rename delegates to the inner FS.
func (f *FaultFS) Rename(oldname, newname string) error { return f.Inner.Rename(oldname, newname) }

// Remove delegates to the inner FS.
func (f *FaultFS) Remove(name string) error { return f.Inner.Remove(name) }

// RemoveAll delegates to the inner FS.
func (f *FaultFS) RemoveAll(name string) error { return f.Inner.RemoveAll(name) }

// MkdirAll delegates to the inner FS.
func (f *FaultFS) MkdirAll(name string) error { return f.Inner.MkdirAll(name) }

// List delegates to the inner FS.
func (f *FaultFS) List(dir string) ([]string, error) { return f.Inner.List(dir) }
