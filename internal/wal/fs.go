package wal

import (
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
)

// FS is the filesystem seam the write-ahead log runs over. Production uses
// OsFS; tests inject FaultFS to exercise torn writes, failed fsyncs and
// corrupted reads without touching a real disk's failure modes.
type FS interface {
	// OpenAppend opens the named file for appending, creating it if needed.
	OpenAppend(name string) (File, error)
	// Create truncates or creates the named file for writing.
	Create(name string) (File, error)
	// ReadFile returns the named file's full contents.
	ReadFile(name string) ([]byte, error)
	// Rename atomically replaces newname with oldname (POSIX rename).
	Rename(oldname, newname string) error
	// Remove deletes the named file or empty directory.
	Remove(name string) error
	// RemoveAll deletes name and everything below it.
	RemoveAll(name string) error
	// MkdirAll creates the named directory and any missing parents.
	MkdirAll(name string) error
	// List returns the sorted base names of the plain files in dir; a
	// missing directory is an empty listing, not an error.
	List(dir string) ([]string, error)
}

// File is the writable-file surface the log needs.
type File interface {
	io.Writer
	io.Closer
	// Sync flushes the file's written data to stable storage (fsync).
	Sync() error
}

// OsFS is the real-filesystem implementation of FS.
type OsFS struct{}

// OpenAppend opens the named file for appending, creating it if needed.
func (OsFS) OpenAppend(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

// Create truncates or creates the named file for writing.
func (OsFS) Create(name string) (File, error) { return os.Create(name) }

// ReadFile returns the named file's full contents.
func (OsFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// Rename atomically replaces newname with oldname.
func (OsFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

// Remove deletes the named file or empty directory.
func (OsFS) Remove(name string) error { return os.Remove(name) }

// RemoveAll deletes name and everything below it.
func (OsFS) RemoveAll(name string) error { return os.RemoveAll(name) }

// MkdirAll creates the named directory and any missing parents.
func (OsFS) MkdirAll(name string) error { return os.MkdirAll(name, 0o755) }

// List returns the sorted base names of the plain files in dir.
func (OsFS) List(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if errorIsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if e.Type().IsRegular() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func errorIsNotExist(err error) bool {
	return err != nil && (os.IsNotExist(err) || err == fs.ErrNotExist)
}

// join builds a path inside the data directory; separated out so every
// implementation agrees on layout.
func join(elem ...string) string { return filepath.Join(elem...) }
