package wal

import (
	"encoding/json"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"galo/internal/rdf"
)

// SyncPolicy controls when WAL appends reach stable storage.
type SyncPolicy int

const (
	// SyncInterval fsyncs on a background ticker (Options.SyncEvery). A crash
	// can lose at most one interval of acknowledged writes; throughput stays
	// close to in-memory. The default.
	SyncInterval SyncPolicy = iota
	// SyncAlways fsyncs inside every publication: no acknowledged write is
	// ever lost, at the cost of one fsync per mutation batch.
	SyncAlways
	// SyncNever leaves flushing to the OS page cache (and the final fsync of
	// a graceful shutdown). Fastest; a crash loses whatever the kernel had
	// not written back.
	SyncNever
)

// String returns the flag spelling of the policy.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncNever:
		return "never"
	default:
		return "interval"
	}
}

// ParseSyncPolicy parses the -sync flag spelling of a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "interval":
		return SyncInterval, nil
	case "always":
		return SyncAlways, nil
	case "never":
		return SyncNever, nil
	}
	return SyncInterval, fmt.Errorf("wal: unknown sync policy %q (want always, interval, or never)", s)
}

// Options configures the durability layer. Zero values mean defaults.
type Options struct {
	// Dir is the data directory; one MANIFEST plus one shard-<i> subdirectory
	// per knowledge-base shard live under it.
	Dir string
	// FS is the filesystem seam; nil means the real filesystem.
	FS FS
	// Sync is the fsync policy for WAL appends.
	Sync SyncPolicy
	// SyncEvery is the background fsync cadence under SyncInterval
	// (default 100ms).
	SyncEvery time.Duration
	// SegmentBytes caps a WAL segment before rotation (default 4 MiB).
	SegmentBytes int64
	// SnapshotEvery triggers snapshot compaction after this many effective
	// triple changes beyond the last snapshot (default 4096).
	SnapshotEvery uint64
	// Logf receives recovery warnings and degradation notices
	// (default log.Printf).
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.FS == nil {
		o.FS = OsFS{}
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = 100 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.SnapshotEvery == 0 {
		o.SnapshotEvery = 4096
	}
	if o.Logf == nil {
		o.Logf = log.Printf
	}
	return o
}

// RecoveryStats describes what boot-time recovery found.
type RecoveryStats struct {
	// SnapshotsLoaded counts shards restored from a valid snapshot.
	SnapshotsLoaded int `json:"snapshots_loaded"`
	// SnapshotFallbacks counts snapshot files skipped for failing validation.
	SnapshotFallbacks int `json:"snapshot_fallbacks"`
	// RecordsReplayed counts WAL records re-applied on top of snapshots.
	RecordsReplayed int64 `json:"records_replayed"`
	// BytesReplayed is the byte volume of the replayed records.
	BytesReplayed int64 `json:"bytes_replayed"`
	// Truncated reports that replay stopped at a torn or corrupt record and
	// kept the longest valid prefix (the expected outcome of kill -9 mid-
	// write, not an error).
	Truncated bool `json:"truncated"`
}

// Recovery is the result of reading a data directory back: one restored
// store per shard, at the exact epoch the log proves durable.
type Recovery struct {
	Shards int
	Stores []*rdf.Store
	Stats  RecoveryStats
}

const manifestName = "MANIFEST"

type manifest struct {
	Format int `json:"format"`
	Shards int `json:"shards"`
}

// readManifest reads dir's MANIFEST; ok is false when none exists (a fresh
// data directory).
func readManifest(fsys FS, dir string) (shards int, ok bool, err error) {
	names, err := fsys.List(dir)
	if err != nil {
		return 0, false, err
	}
	present := false
	for _, n := range names {
		if n == manifestName {
			present = true
			break
		}
	}
	if !present {
		return 0, false, nil
	}
	data, err := fsys.ReadFile(join(dir, manifestName))
	if err != nil {
		return 0, false, err
	}
	var mf manifest
	if err := json.Unmarshal(data, &mf); err != nil {
		return 0, false, fmt.Errorf("wal: parsing %s: %v", manifestName, err)
	}
	if mf.Shards <= 0 {
		return 0, false, fmt.Errorf("wal: %s declares %d shards", manifestName, mf.Shards)
	}
	return mf.Shards, true, nil
}

func writeManifest(fsys FS, dir string, shards int) error {
	data, err := json.Marshal(manifest{Format: 1, Shards: shards})
	if err != nil {
		return err
	}
	tmp := join(dir, manifestName+".tmp")
	f, err := fsys.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return fsys.Rename(tmp, join(dir, manifestName))
}

func shardDir(dir string, i int) string { return join(dir, fmt.Sprintf("shard-%d", i)) }

// Recover reads a data directory back into per-shard stores: the newest
// valid snapshot of each shard (falling back past corrupt generations), then
// the replayable WAL tail on top. It returns (nil, nil) when the directory
// holds no manifest — a fresh start. Corruption never fails recovery; it
// truncates to the longest valid prefix and reports it in Stats.
func Recover(opts Options) (*Recovery, error) {
	opts = opts.withDefaults()
	shards, ok, err := readManifest(opts.FS, opts.Dir)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, nil
	}
	rec := &Recovery{Shards: shards}
	for i := 0; i < shards; i++ {
		sdir := shardDir(opts.Dir, i)
		epoch, ts := loadNewestSnapshot(opts.FS, sdir, &rec.Stats, opts.Logf)
		store := rdf.RestoreStore(ts, epoch)
		replaySegments(opts.FS, sdir, epoch, store, &rec.Stats, opts.Logf)
		rec.Stores = append(rec.Stores, store)
	}
	return rec, nil
}

// managedShard pairs one store with its shard directory and log. Commit
// hooks capture the pointer (not a slice index) so a detached shard can
// never observe a successor's state.
type managedShard struct {
	m     *Manager
	dir   string
	store *rdf.Store
	log   *segLog

	lastSnapEpoch atomic.Uint64
	compacting    atomic.Bool // dedupes compaction notifications
}

// Manager runs the durability layer for a set of live shard stores: it
// appends every publication to the shard's WAL before the in-memory pointer
// swap, fsyncs per policy, compacts to snapshots in the background, and on
// any disk error degrades to in-memory serving instead of failing writes.
type Manager struct {
	opts   Options
	fs     FS
	shards []*managedShard

	degraded    atomic.Bool
	walAppends  atomic.Uint64
	walBytes    atomic.Int64
	fsyncCount  atomic.Uint64
	snapCount   atomic.Uint64
	lastSnap    atomic.Uint64
	diskErrors  atomic.Uint64
	replayStats RecoveryStats

	notify    chan *managedShard
	stop      chan struct{}
	done      chan struct{}
	closeOnce sync.Once
}

// Start brings up durability over stores (one WAL per shard under opts.Dir).
// It writes the manifest and a fresh snapshot of every shard at its current
// version — making the directory self-contained even if old logs were
// truncated — installs the commit hooks, and starts the background
// flush/compaction worker. fresh wipes any previous generation's shard state
// first (used when a new KB replaces a recovered one). replay carries the
// stats of the Recover call that produced stores, for /stats.
func Start(opts Options, stores []*rdf.Store, fresh bool, replay *RecoveryStats) (*Manager, error) {
	opts = opts.withDefaults()
	fsys := opts.FS
	if err := fsys.MkdirAll(opts.Dir); err != nil {
		return nil, err
	}
	if fresh {
		if old, ok, _ := readManifest(fsys, opts.Dir); ok {
			for i := 0; i < old; i++ {
				_ = fsys.RemoveAll(shardDir(opts.Dir, i))
			}
		}
		for i := range stores {
			_ = fsys.RemoveAll(shardDir(opts.Dir, i))
		}
		_ = fsys.Remove(join(opts.Dir, manifestName))
	}
	if err := writeManifest(fsys, opts.Dir, len(stores)); err != nil {
		return nil, err
	}
	m := &Manager{
		opts:   opts,
		fs:     fsys,
		notify: make(chan *managedShard, len(stores)),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	if replay != nil {
		m.replayStats = *replay
	}
	fail := func(err error) (*Manager, error) {
		for _, sh := range m.shards {
			_ = sh.log.close()
		}
		return nil, err
	}
	for i, store := range stores {
		sdir := shardDir(opts.Dir, i)
		if err := fsys.MkdirAll(sdir); err != nil {
			return fail(err)
		}
		v := store.Version()
		if err := writeSnapshot(fsys, sdir, v, store.NTriples()); err != nil {
			return fail(err)
		}
		oldest, err := trimSnapshots(fsys, sdir, snapshotsKept)
		if err != nil {
			return fail(err)
		}
		if replay != nil && replay.Truncated {
			// Segments past a truncation point hold records replay can never
			// reach again; leaving them would poison future replays.
			if err := removeAllSegments(fsys, sdir); err != nil {
				return fail(err)
			}
		}
		lg, err := openLog(fsys, sdir, v+1, opts.Sync, opts.SegmentBytes)
		if err != nil {
			return fail(err)
		}
		sh := &managedShard{m: m, dir: sdir, store: store, log: lg}
		sh.lastSnapEpoch.Store(v)
		m.shards = append(m.shards, sh)
		if err := lg.trimTo(oldest); err != nil {
			return fail(err)
		}
		if v > m.lastSnap.Load() {
			m.lastSnap.Store(v)
		}
	}
	for _, sh := range m.shards {
		sh.store.SetCommitHook(sh.onCommit)
	}
	go m.worker()
	return m, nil
}

// removeAllSegments deletes every WAL segment in a shard directory.
func removeAllSegments(fsys FS, dir string) error {
	names, err := fsys.List(dir)
	if err != nil {
		return err
	}
	for _, name := range names {
		if _, ok := parseSegName(name); ok {
			if err := fsys.Remove(join(dir, name)); err != nil {
				return err
			}
		}
	}
	return nil
}

// onCommit is the store's commit hook: it runs under the store's writer lock
// BEFORE the snapshot pointer swap, so the log always leads the published
// state. Append failures degrade the manager rather than veto the commit —
// the in-memory publication proceeds and serving continues.
func (sh *managedShard) onCommit(removed, added []rdf.Triple, version uint64) {
	m := sh.m
	if m.degraded.Load() {
		return
	}
	n, synced, err := sh.log.append(Record{Version: version, Removed: removed, Added: added})
	if err != nil {
		m.noteDiskError("wal append", err)
		return
	}
	m.walAppends.Add(1)
	m.walBytes.Add(int64(n))
	if synced {
		m.fsyncCount.Add(1)
	}
	if version-sh.lastSnapEpoch.Load() >= m.opts.SnapshotEvery && sh.compacting.CompareAndSwap(false, true) {
		select {
		case m.notify <- sh:
		default:
			sh.compacting.Store(false)
		}
	}
}

func (m *Manager) noteDiskError(op string, err error) {
	m.diskErrors.Add(1)
	if m.degraded.CompareAndSwap(false, true) {
		m.opts.Logf("wal: %s failed: %v — persistence degraded, serving continues in-memory", op, err)
	}
}

func (m *Manager) worker() {
	defer close(m.done)
	var tickC <-chan time.Time
	if m.opts.Sync == SyncInterval {
		t := time.NewTicker(m.opts.SyncEvery)
		defer t.Stop()
		tickC = t.C
	}
	for {
		select {
		case <-m.stop:
			return
		case sh := <-m.notify:
			m.compact(sh)
		case <-tickC:
			for _, sh := range m.shards {
				if m.degraded.Load() {
					break
				}
				synced, err := sh.log.flush()
				if err != nil {
					m.noteDiskError("wal fsync", err)
					break
				}
				if synced {
					m.fsyncCount.Add(1)
				}
			}
		}
	}
}

// compact snapshots one shard at its current published epoch, then trims
// snapshot generations and the WAL below the older retained snapshot.
// Callers must have won sh.compacting.
func (m *Manager) compact(sh *managedShard) {
	defer sh.compacting.Store(false)
	if m.degraded.Load() {
		return
	}
	snap := sh.store.Snapshot()
	epoch := snap.Version()
	if epoch <= sh.lastSnapEpoch.Load() {
		return
	}
	if err := writeSnapshot(m.fs, sh.dir, epoch, snap.NTriples()); err != nil {
		m.noteDiskError("snapshot", err)
		return
	}
	sh.lastSnapEpoch.Store(epoch)
	m.snapCount.Add(1)
	if epoch > m.lastSnap.Load() {
		m.lastSnap.Store(epoch)
	}
	oldest, err := trimSnapshots(m.fs, sh.dir, snapshotsKept)
	if err != nil {
		m.noteDiskError("snapshot retention", err)
		return
	}
	if err := sh.log.trimTo(oldest); err != nil {
		m.noteDiskError("wal trim", err)
	}
}

// CompactNow synchronously snapshots every shard whose published epoch moved
// past its last snapshot. Tests and graceful shutdown use it; steady-state
// compaction runs on the background worker.
func (m *Manager) CompactNow() {
	for _, sh := range m.shards {
		if sh.compacting.CompareAndSwap(false, true) {
			m.compact(sh)
		}
	}
}

// Flush forces an fsync of every shard's buffered appends (the final WAL
// fsync of a graceful shutdown, and the durability point for SyncInterval).
func (m *Manager) Flush() error {
	var first error
	for _, sh := range m.shards {
		synced, err := sh.log.flush()
		if err != nil {
			m.noteDiskError("wal fsync", err)
			if first == nil {
				first = err
			}
			continue
		}
		if synced {
			m.fsyncCount.Add(1)
		}
	}
	return first
}

// Degraded reports whether a disk error has dropped the manager to
// in-memory-only mode.
func (m *Manager) Degraded() bool { return m.degraded.Load() }

// Stats is a point-in-time snapshot of durability counters for /stats.
type Stats struct {
	SyncPolicy        string `json:"sync_policy"`
	WALAppends        uint64 `json:"wal_appends"`
	WALBytes          int64  `json:"wal_bytes"`
	Fsyncs            uint64 `json:"fsyncs"`
	Snapshots         uint64 `json:"snapshots"`
	LastSnapshotEpoch uint64 `json:"last_snapshot_epoch"`
	DiskErrors        uint64 `json:"disk_errors"`
	Degraded          bool   `json:"degraded"`
	// Replay echoes what boot-time recovery found for this data directory.
	Replay RecoveryStats `json:"replay"`
}

// Stats returns current durability counters.
func (m *Manager) Stats() Stats {
	return Stats{
		SyncPolicy:        m.opts.Sync.String(),
		WALAppends:        m.walAppends.Load(),
		WALBytes:          m.walBytes.Load(),
		Fsyncs:            m.fsyncCount.Load(),
		Snapshots:         m.snapCount.Load(),
		LastSnapshotEpoch: m.lastSnap.Load(),
		DiskErrors:        m.diskErrors.Load(),
		Degraded:          m.degraded.Load(),
		Replay:            m.replayStats,
	}
}

// Close detaches the commit hooks, stops the background worker, and fsyncs
// and closes every shard's log. Safe to call more than once. Hooks detach
// FIRST so no publication can race a closing log.
func (m *Manager) Close() error {
	var err error
	m.closeOnce.Do(func() {
		for _, sh := range m.shards {
			sh.store.SetCommitHook(nil)
		}
		close(m.stop)
		<-m.done
		for _, sh := range m.shards {
			if cerr := sh.log.close(); cerr != nil && err == nil {
				err = cerr
			}
		}
	})
	return err
}
