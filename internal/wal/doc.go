// Package wal makes the knowledge base durable: a per-shard write-ahead log
// of effective mutation batches plus periodic epoch snapshots, so a crashed
// server restarts with the exact template set and epoch vector it had
// acknowledged before dying — and cached plan keys (shard, epoch,
// fingerprint) stay honest across the restart.
//
// # Layout
//
// One data directory holds a MANIFEST (JSON: format version and shard
// count) and one subdirectory per shard:
//
//	<dir>/MANIFEST
//	<dir>/shard-0/snap-0000000000000041.nt   epoch snapshot (checksummed N-Triples)
//	<dir>/shard-0/wal-0000000000000042.seg   log segment (starting epoch in hex)
//
// Segments are framed records: [len u32le][crc32c u32le][payload], the
// payload being the record's post-publication version plus its effective
// removed and added triples. Snapshot files carry a "GALOSNAP1 <epoch>
// <crc32c> <len>" header over an N-Triples payload and are written
// temp-then-rename, so a crash never leaves a half-visible snapshot.
//
// # Write path and ordering contract
//
// The Manager installs an rdf.CommitHook on every shard store. The hook runs
// under the store's writer lock BEFORE the atomic snapshot-pointer swap, so
// the log always leads the published in-memory state: any epoch a reader can
// observe is already appended (and, under SyncAlways, fsynced). The hook
// cannot veto a commit — if the disk fails, the manager counts the error,
// flips to degraded in-memory mode, and the publication proceeds; serving
// never stops for a durability fault.
//
// # Recovery contract
//
// Recover restores each shard from its newest snapshot that passes
// validation (falling back to the previous generation on any defect — the
// WAL is only ever trimmed below the OLDER of the two retained snapshots, so
// the fallback can still replay the gap), then replays the log tail on top.
// Replay stops at the first torn or corrupt record, keeping the longest
// valid prefix; a kill -9 mid-write therefore loses at most the unsynced
// suffix and never fails the boot. Version continuity is checked on every
// record, so a replayed store reproduces the exact epoch lineage the
// original published. Start then writes a fresh snapshot of the recovered
// state and opens a new active segment — recovered segments are never
// appended to.
//
// # Concurrency
//
// Commit hooks are serialized per shard by the store's writer lock; the
// segment log's own mutex additionally orders them against background
// fsyncs, rotation, and trimming. Snapshot compaction reads the store's
// lock-free published snapshot, never the store's internals, so it cannot
// deadlock against writers. The lock order is always store.mu -> segLog.mu;
// no path acquires them in reverse.
package wal
