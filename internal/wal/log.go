package wal

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"galo/internal/rdf"
)

const (
	segPrefix = "wal-"
	segSuffix = ".seg"
)

// segName names a segment after the lowest version a record inside it can
// carry. Fixed-width hex keeps lexicographic order equal to numeric order,
// so a plain string sort of the directory listing is replay order.
func segName(epoch uint64) string { return fmt.Sprintf("%s%016x%s", segPrefix, epoch, segSuffix) }

// parseSegName extracts the starting epoch from a segment file name.
func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	v, err := strconv.ParseUint(name[len(segPrefix):len(name)-len(segSuffix)], 16, 64)
	return v, err == nil
}

// segLog is one shard's append-only segmented record log. Appends serialize on
// an internal mutex (the caller already serializes per shard — the commit
// hook runs under the store's writer lock — but compaction trims segments
// concurrently).
type segLog struct {
	fs           FS
	dir          string
	policy       SyncPolicy
	segmentBytes int64

	mu     sync.Mutex
	f      File
	name   string // active segment's base name
	size   int64
	dirty  bool
	broken bool // a failed write poisons the active segment
}

// openLog creates a fresh active segment for appends starting at nextEpoch.
// Recovered segments are never appended to: a truncated tail would otherwise
// put new records behind unreadable bytes.
func openLog(fsys FS, dir string, nextEpoch uint64, policy SyncPolicy, segmentBytes int64) (*segLog, error) {
	l := &segLog{fs: fsys, dir: dir, policy: policy, segmentBytes: segmentBytes}
	if err := l.openSegment(nextEpoch); err != nil {
		return nil, err
	}
	return l, nil
}

// openSegment opens (creating) the segment named after epoch as the active
// file. Callers hold l.mu or have exclusive access.
func (l *segLog) openSegment(epoch uint64) error {
	name := segName(epoch)
	f, err := l.fs.OpenAppend(join(l.dir, name))
	if err != nil {
		return err
	}
	l.f, l.name, l.size, l.dirty, l.broken = f, name, 0, false, false
	return nil
}

// append writes one framed record, rotating to a new segment (named after
// the record's version) when the active one is full. It reports whether the
// write was fsynced (policy always) and the frame size.
func (l *segLog) append(rec Record) (n int, synced bool, err error) {
	frame := rec.Encode()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.broken {
		return 0, false, fmt.Errorf("wal: log poisoned by earlier write error")
	}
	if l.size > 0 && l.size+int64(len(frame)) > l.segmentBytes {
		if err := l.syncLocked(); err != nil {
			l.broken = true
			return 0, false, err
		}
		_ = l.f.Close()
		if err := l.openSegment(rec.Version); err != nil {
			l.broken = true
			return 0, false, err
		}
	}
	wrote, err := l.f.Write(frame)
	l.size += int64(wrote)
	if err != nil || wrote != len(frame) {
		l.broken = true
		if err == nil {
			err = fmt.Errorf("wal: short write (%d of %d bytes)", wrote, len(frame))
		}
		return wrote, false, err
	}
	l.dirty = true
	if l.policy == SyncAlways {
		if err := l.syncLocked(); err != nil {
			l.broken = true
			return len(frame), false, err
		}
		synced = true
	}
	return len(frame), synced, nil
}

func (l *segLog) syncLocked() error {
	if !l.dirty {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.dirty = false
	return nil
}

// flush fsyncs buffered appends; it reports whether a sync actually ran.
func (l *segLog) flush() (bool, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.broken || !l.dirty {
		return false, nil
	}
	if err := l.f.Sync(); err != nil {
		l.broken = true
		return false, err
	}
	l.dirty = false
	return true, nil
}

// trimTo removes every non-active segment whose records all carry versions
// <= epoch (covered by a snapshot at that epoch). Segment i's records are
// all below segment i+1's starting epoch, so i is removable when
// start(i+1) <= epoch+1.
func (l *segLog) trimTo(epoch uint64) error {
	l.mu.Lock()
	active := l.name
	l.mu.Unlock()
	names, err := l.fs.List(l.dir)
	if err != nil {
		return err
	}
	var segs []string
	for _, name := range names {
		if _, ok := parseSegName(name); ok {
			segs = append(segs, name)
		}
	}
	for i := 0; i+1 < len(segs); i++ {
		next, _ := parseSegName(segs[i+1])
		if segs[i] == active || next > epoch+1 {
			continue
		}
		if err := l.fs.Remove(join(l.dir, segs[i])); err != nil {
			return err
		}
	}
	return nil
}

// close fsyncs and closes the active segment (the final WAL fsync of a
// graceful shutdown).
func (l *segLog) close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	var err error
	if !l.broken {
		err = l.syncLocked()
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}

// replaySegments re-applies the shard's logged records with versions above
// fromEpoch to the store, in segment order. It stops — keeping the longest
// valid prefix — at the first torn or corrupt record, at a version
// discontinuity, or at a record whose replay does not reproduce its logged
// version; the tail past that point is unrecoverable by construction and is
// reported in stats rather than failing the boot.
func replaySegments(fsys FS, dir string, fromEpoch uint64, store *rdf.Store, stats *RecoveryStats, warnf func(string, ...any)) {
	names, err := fsys.List(dir)
	if err != nil {
		stats.Truncated = true
		warnf("wal: %s: listing segments: %v", dir, err)
		return
	}
	for _, name := range names {
		if _, ok := parseSegName(name); !ok {
			continue
		}
		data, err := fsys.ReadFile(join(dir, name))
		if err != nil {
			stats.Truncated = true
			warnf("wal: %s: reading segment: %v", name, err)
			return
		}
		for off := 0; off < len(data); {
			rec, n, err := decodeRecord(data[off:])
			if err != nil {
				stats.Truncated = true
				warnf("wal: %s: offset %d: %v — replay stops here, keeping the valid prefix", name, off, err)
				return
			}
			off += n
			if rec.Version <= fromEpoch {
				continue // already covered by the snapshot
			}
			want := store.Version() + uint64(len(rec.Removed)+len(rec.Added))
			if want != rec.Version {
				stats.Truncated = true
				warnf("wal: %s: record version %d does not continue epoch %d — replay stops here", name, rec.Version, store.Version())
				return
			}
			patterns := make([]rdf.Pattern, len(rec.Removed))
			for i := range rec.Removed {
				patterns[i] = rdf.Pattern{S: &rec.Removed[i].S, P: &rec.Removed[i].P, O: &rec.Removed[i].O}
			}
			store.Apply(patterns, rec.Added)
			if store.Version() != rec.Version {
				stats.Truncated = true
				warnf("wal: %s: replaying record for epoch %d produced epoch %d — replay stops here", name, rec.Version, store.Version())
				return
			}
			stats.RecordsReplayed++
			stats.BytesReplayed += int64(n)
		}
	}
}
