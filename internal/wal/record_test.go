package wal

import (
	"fmt"
	"reflect"
	"testing"

	"galo/internal/rdf"
)

func tri(i int) rdf.Triple {
	return rdf.Triple{
		S: rdf.NewIRI(fmt.Sprintf("http://example.org/s%d", i)),
		P: rdf.NewIRI("http://example.org/p"),
		O: rdf.NewLiteral(fmt.Sprintf("v%d", i)),
	}
}

func TestRecordRoundTrip(t *testing.T) {
	cases := []Record{
		{Version: 0},
		{Version: 1, Added: []rdf.Triple{tri(1)}},
		{Version: 7, Removed: []rdf.Triple{tri(1), tri(2)}, Added: []rdf.Triple{tri(3)}},
		{Version: 1 << 40, Added: []rdf.Triple{
			{S: rdf.NewIRI("http://example.org/s"), P: rdf.NewIRI("http://example.org/p"), O: rdf.NewNumericLiteral(3.5)},
		}},
	}
	var buf []byte
	for _, rec := range cases {
		buf = append(buf, rec.Encode()...)
	}
	off := 0
	for i, want := range cases {
		got, n, err := decodeRecord(buf[off:])
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		off += n
		if got.Version != want.Version || !reflect.DeepEqual(got.Removed, want.Removed) || !reflect.DeepEqual(got.Added, want.Added) {
			t.Errorf("record %d: got %+v, want %+v", i, got, want)
		}
	}
	if off != len(buf) {
		t.Errorf("consumed %d of %d bytes", off, len(buf))
	}
}

func TestDecodeRecordRejectsDamage(t *testing.T) {
	frame := Record{Version: 3, Added: []rdf.Triple{tri(1)}}.Encode()

	if _, _, err := decodeRecord(frame[:recordHeaderLen-1]); err == nil {
		t.Error("torn header decoded")
	}
	if _, _, err := decodeRecord(frame[:len(frame)-1]); err == nil {
		t.Error("torn payload decoded")
	}
	// Every byte of the frame is covered by the length, the checksum, or the
	// checksummed payload, so any single flip must fail the decode.
	for i := range frame {
		bad := append([]byte(nil), frame...)
		bad[i] ^= 0x40
		if _, _, err := decodeRecord(bad); err == nil {
			t.Errorf("bit flip at byte %d decoded cleanly", i)
		}
	}
}

func TestSegmentAndSnapshotNames(t *testing.T) {
	for _, epoch := range []uint64{0, 1, 255, 1 << 50} {
		if got, ok := parseSegName(segName(epoch)); !ok || got != epoch {
			t.Errorf("seg name round trip for %d: got %d, %v", epoch, got, ok)
		}
		if got, ok := parseSnapName(snapName(epoch)); !ok || got != epoch {
			t.Errorf("snap name round trip for %d: got %d, %v", epoch, got, ok)
		}
	}
	for _, name := range []string{"wal-.seg", "wal-xyz.seg", "snap-01.nt.tmp", "MANIFEST", "snap-0000000000000001.ntx"} {
		if _, ok := parseSegName(name); ok {
			t.Errorf("%q parsed as a segment", name)
		}
		if _, ok := parseSnapName(name); ok {
			t.Errorf("%q parsed as a snapshot", name)
		}
	}
	// Lexicographic order must equal numeric order (replay sorts names).
	if segName(9) >= segName(16) || snapName(255) >= snapName(4096) {
		t.Error("fixed-width hex names are not ordered")
	}
}
