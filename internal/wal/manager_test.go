package wal

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"galo/internal/rdf"
)

// testOptions returns Options wired to a temp dir with warnings routed to
// the test log.
func testOptions(t *testing.T, dir string) Options {
	t.Helper()
	return Options{Dir: dir, Sync: SyncNever, Logf: t.Logf}
}

func startFresh(t *testing.T, opts Options, nshards int) (*Manager, []*rdf.Store) {
	t.Helper()
	stores := make([]*rdf.Store, nshards)
	for i := range stores {
		stores[i] = rdf.NewStore()
	}
	m, err := Start(opts, stores, true, nil)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	return m, stores
}

func recoverDir(t *testing.T, opts Options) *Recovery {
	t.Helper()
	rec, err := Recover(opts)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if rec == nil {
		t.Fatal("Recover returned nil for a populated data dir")
	}
	return rec
}

// listFiles returns the base names in a shard dir matching the given parser.
func listFiles(t *testing.T, dir string, parse func(string) (uint64, bool)) []string {
	t.Helper()
	names, err := OsFS{}.List(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, n := range names {
		if _, ok := parse(n); ok {
			out = append(out, n)
		}
	}
	return out
}

func TestRecoverEmptyDirIsFreshStart(t *testing.T) {
	rec, err := Recover(testOptions(t, t.TempDir()))
	if err != nil {
		t.Fatalf("Recover on empty dir: %v", err)
	}
	if rec != nil {
		t.Fatalf("Recover on empty dir returned %+v, want nil", rec)
	}
}

func TestRoundTripThroughLogReplay(t *testing.T) {
	dir := t.TempDir()
	m, stores := startFresh(t, testOptions(t, dir), 2)
	stores[0].AddAll([]rdf.Triple{tri(1), tri(2), tri(3)})
	stores[1].Add(tri(10))
	stores[0].Remove(&[]rdf.Term{tri(2).S}[0], nil, nil)
	stores[1].AddAll([]rdf.Triple{tri(11), tri(12)})
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	rec := recoverDir(t, testOptions(t, dir))
	if rec.Shards != 2 || len(rec.Stores) != 2 {
		t.Fatalf("recovered %d shards / %d stores, want 2/2", rec.Shards, len(rec.Stores))
	}
	for i, s := range rec.Stores {
		if s.NTriples() != stores[i].NTriples() {
			t.Errorf("shard %d content diverged:\n%q\nvs\n%q", i, s.NTriples(), stores[i].NTriples())
		}
		if s.Version() != stores[i].Version() {
			t.Errorf("shard %d version %d, want %d", i, s.Version(), stores[i].Version())
		}
	}
	if rec.Stats.RecordsReplayed == 0 || rec.Stats.Truncated {
		t.Errorf("stats = %+v, want replayed records and no truncation", rec.Stats)
	}
}

func TestSnapshotPlusEmptyWALRestartChain(t *testing.T) {
	dir := t.TempDir()
	m, stores := startFresh(t, testOptions(t, dir), 1)
	stores[0].AddAll([]rdf.Triple{tri(1), tri(2)})
	m.CompactNow()
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// First restart: state comes from the snapshot; the log tail only
	// duplicates what the snapshot covers (records at or below its epoch are
	// skipped, not reapplied).
	rec := recoverDir(t, testOptions(t, dir))
	if got := rec.Stores[0]; got.Version() != stores[0].Version() || got.NTriples() != stores[0].NTriples() {
		t.Fatalf("first restart: version %d len %d, want %d/%d", got.Version(), got.Len(), stores[0].Version(), stores[0].Len())
	}
	if rec.Stats.SnapshotsLoaded != 1 {
		t.Errorf("snapshots loaded = %d, want 1", rec.Stats.SnapshotsLoaded)
	}

	// Continue the lineage and restart again: snapshot + new tail replay.
	m2, err := Start(testOptions(t, dir), rec.Stores, false, &rec.Stats)
	if err != nil {
		t.Fatalf("Start after recover: %v", err)
	}
	rec.Stores[0].Add(tri(3))
	want := rec.Stores[0].NTriples()
	wantV := rec.Stores[0].Version()
	if err := m2.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	rec2 := recoverDir(t, testOptions(t, dir))
	if got := rec2.Stores[0]; got.Version() != wantV || got.NTriples() != want {
		t.Fatalf("second restart: version %d, want %d", got.Version(), wantV)
	}
}

func TestTornFinalRecordKeepsPrefix(t *testing.T) {
	dir := t.TempDir()
	m, stores := startFresh(t, testOptions(t, dir), 1)
	for i := 1; i <= 5; i++ {
		stores[0].Add(tri(i))
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	segs := listFiles(t, shardDir(dir, 0), parseSegName)
	if len(segs) != 1 {
		t.Fatalf("segments = %v, want exactly one", segs)
	}
	seg := filepath.Join(shardDir(dir, 0), segs[0])
	info, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Chop a few tail bytes: the final record is torn, as after kill -9
	// mid-write.
	if err := os.Truncate(seg, info.Size()-3); err != nil {
		t.Fatal(err)
	}

	rec := recoverDir(t, testOptions(t, dir))
	got := rec.Stores[0]
	if !rec.Stats.Truncated {
		t.Error("truncated tail not reported")
	}
	if got.Version() != 4 || got.Len() != 4 {
		t.Errorf("recovered version %d len %d, want 4/4 (all but the torn record)", got.Version(), got.Len())
	}
	if strings.Contains(got.NTriples(), "s5") {
		t.Error("torn record's triple resurfaced after recovery")
	}
}

func TestCorruptMiddleRecordKeepsPrefix(t *testing.T) {
	dir := t.TempDir()
	m, stores := startFresh(t, testOptions(t, dir), 1)
	for i := 1; i <= 10; i++ {
		stores[0].Add(tri(i))
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	segs := listFiles(t, shardDir(dir, 0), parseSegName)
	seg := filepath.Join(shardDir(dir, 0), segs[0])
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	rec := recoverDir(t, testOptions(t, dir))
	got := rec.Stores[0]
	if !rec.Stats.Truncated {
		t.Error("mid-log corruption not reported as truncation")
	}
	v := got.Version()
	if v == 0 || v >= 10 {
		t.Fatalf("recovered version %d, want a proper prefix of 10 batches", v)
	}
	// One triple per batch: the surviving prefix is exactly batches 1..v.
	if got.Len() != int(v) {
		t.Errorf("recovered %d triples at version %d", got.Len(), v)
	}
	for i := 1; i <= int(v); i++ {
		s := tri(i).S
		if len(got.Match(&s, nil, nil)) != 1 {
			t.Errorf("prefix triple %d missing after recovery", i)
		}
	}
}

func TestCorruptNewestSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	m, stores := startFresh(t, testOptions(t, dir), 1)
	stores[0].AddAll([]rdf.Triple{tri(1), tri(2)})
	m.CompactNow() // snapshot generation at epoch 2
	stores[0].AddAll([]rdf.Triple{tri(3), tri(4)})
	m.CompactNow() // snapshot generation at epoch 4
	stores[0].Add(tri(5))
	want := stores[0].NTriples()
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	snaps := listFiles(t, shardDir(dir, 0), parseSnapName)
	if len(snaps) != snapshotsKept {
		t.Fatalf("snapshots = %v, want %d generations", snaps, snapshotsKept)
	}
	newest := filepath.Join(shardDir(dir, 0), snaps[len(snaps)-1])
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(newest, data, 0o644); err != nil {
		t.Fatal(err)
	}

	rec := recoverDir(t, testOptions(t, dir))
	if rec.Stats.SnapshotFallbacks != 1 {
		t.Errorf("snapshot fallbacks = %d, want 1", rec.Stats.SnapshotFallbacks)
	}
	if rec.Stats.Truncated {
		t.Error("fallback recovery reported truncation; the WAL should cover the gap")
	}
	got := rec.Stores[0]
	if got.Version() != 5 || got.NTriples() != want {
		t.Errorf("recovered version %d len %d, want 5 with full content — the WAL gap above the fallback snapshot must replay", got.Version(), got.Len())
	}
}

func TestSegmentRotationAndTrim(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions(t, dir)
	opts.SegmentBytes = 64 // force rotation on nearly every append
	m, stores := startFresh(t, opts, 1)
	for i := 1; i <= 8; i++ {
		stores[0].Add(tri(i))
	}
	sdir := shardDir(dir, 0)
	if n := len(listFiles(t, sdir, parseSegName)); n < 3 {
		t.Fatalf("%d segments after 8 appends at 64-byte cap, want rotation", n)
	}
	m.CompactNow() // snapshot at 8; older retained snapshot is boot's epoch 0
	for i := 9; i <= 16; i++ {
		stores[0].Add(tri(i))
	}
	m.CompactNow() // snapshot at 16; trims the WAL below the snapshot at 8
	var below, above int
	for _, name := range listFiles(t, sdir, parseSegName) {
		if start, _ := parseSegName(name); start <= 8 {
			below++
		} else {
			above++
		}
	}
	if below > 1 || above == 0 {
		// At most the segment straddling epoch 8 may survive below the bound.
		t.Errorf("segments below snapshot bound = %d, above = %d", below, above)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	rec := recoverDir(t, testOptions(t, dir))
	if got := rec.Stores[0]; got.Version() != 16 || got.Len() != 16 {
		t.Errorf("recovered version %d len %d after rotation+trim, want 16/16", got.Version(), got.Len())
	}
}

func TestWriteFailureDegradesNotCrashes(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil)
	opts := testOptions(t, dir)
	opts.FS = ffs
	opts.Sync = SyncAlways
	m, stores := startFresh(t, opts, 1)
	stores[0].Add(tri(1)) // durable
	ffs.FailWritesFrom(ffs.Writes() + 1)
	stores[0].Add(tri(2)) // append fails -> degraded, publication proceeds
	stores[0].Add(tri(3)) // degraded mode: no further disk traffic, still serves

	if !m.Degraded() {
		t.Fatal("manager not degraded after injected write failure")
	}
	st := m.Stats()
	if st.DiskErrors == 0 {
		t.Errorf("disk errors = %d, want > 0", st.DiskErrors)
	}
	if stores[0].Len() != 3 || stores[0].Version() != 3 {
		t.Errorf("in-memory store %d triples at version %d, want 3/3 — serving must continue", stores[0].Len(), stores[0].Version())
	}
	ffs.FailWritesFrom(0)
	_ = m.Close()

	// The durable prefix survives; the post-degradation suffix is lost.
	rec := recoverDir(t, testOptions(t, dir))
	if got := rec.Stores[0]; got.Version() != 1 || got.Len() != 1 {
		t.Errorf("recovered version %d len %d, want the pre-fault prefix 1/1", got.Version(), got.Len())
	}
}

func TestFsyncFailureDegrades(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil)
	opts := testOptions(t, dir)
	opts.FS = ffs
	opts.Sync = SyncAlways
	m, stores := startFresh(t, opts, 1)
	ffs.FailSyncs(true)
	stores[0].Add(tri(1))
	if !m.Degraded() {
		t.Fatal("manager not degraded after injected fsync failure")
	}
	ffs.FailSyncs(false)
	_ = m.Close()
}

func TestShortWriteTornRecordRecovery(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil)
	opts := testOptions(t, dir)
	opts.FS = ffs
	m, stores := startFresh(t, opts, 1)
	stores[0].Add(tri(1))
	stores[0].Add(tri(2))
	ffs.ShortWriteAt(ffs.Writes() + 1)
	stores[0].Add(tri(3)) // half the frame reaches disk: a torn record
	if !m.Degraded() {
		t.Fatal("short write did not degrade the manager")
	}
	_ = m.Close()

	rec := recoverDir(t, testOptions(t, dir))
	if !rec.Stats.Truncated {
		t.Error("torn record not reported as truncation")
	}
	if got := rec.Stores[0]; got.Version() != 2 || got.Len() != 2 {
		t.Errorf("recovered version %d len %d, want the intact prefix 2/2", got.Version(), got.Len())
	}
}

func TestRestartAfterTruncationDropsUnreachableSegments(t *testing.T) {
	dir := t.TempDir()
	m, stores := startFresh(t, testOptions(t, dir), 1)
	for i := 1; i <= 6; i++ {
		stores[0].Add(tri(i))
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Corrupt an early record so replay truncates with live bytes after it.
	segs := listFiles(t, shardDir(dir, 0), parseSegName)
	seg := filepath.Join(shardDir(dir, 0), segs[0])
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[recordHeaderLen+2] ^= 0xff // inside the first record's payload
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	rec := recoverDir(t, testOptions(t, dir))
	if !rec.Stats.Truncated || rec.Stores[0].Version() != 0 {
		t.Fatalf("stats %+v version %d, want truncation at the first record", rec.Stats, rec.Stores[0].Version())
	}

	// Restarting over the truncated state must not let the stale bytes
	// poison the new lineage: new epochs reuse the lost version numbers.
	m2, err := Start(testOptions(t, dir), rec.Stores, false, &rec.Stats)
	if err != nil {
		t.Fatalf("Start after truncation: %v", err)
	}
	rec.Stores[0].Add(tri(100))
	rec.Stores[0].Add(tri(101))
	if err := m2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	rec2 := recoverDir(t, testOptions(t, dir))
	if rec2.Stats.Truncated {
		t.Error("second recovery still truncated — stale segments survived the restart")
	}
	if got := rec2.Stores[0]; got.Version() != 2 || got.Len() != 2 {
		t.Errorf("recovered version %d len %d, want the new lineage 2/2", got.Version(), got.Len())
	}
}

func TestBackgroundCompactionTriggers(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions(t, dir)
	opts.Sync = SyncInterval
	opts.SyncEvery = 5 * time.Millisecond
	opts.SnapshotEvery = 4
	m, stores := startFresh(t, opts, 1)
	defer m.Close()
	for i := 1; i <= 8; i++ {
		stores[0].Add(tri(i))
	}
	deadline := time.Now().Add(5 * time.Second)
	for m.Stats().Snapshots == 0 || m.Stats().Fsyncs == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("background worker stalled: stats %+v", m.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if m.Stats().LastSnapshotEpoch == 0 {
		t.Error("last snapshot epoch not advanced")
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for _, p := range []SyncPolicy{SyncAlways, SyncInterval, SyncNever} {
		got, err := ParseSyncPolicy(p.String())
		if err != nil || got != p {
			t.Errorf("round trip %v: got %v, %v", p, got, err)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Error("bad policy accepted")
	}
}

func TestManifestShardCountSurvives(t *testing.T) {
	dir := t.TempDir()
	m, _ := startFresh(t, testOptions(t, dir), 3)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	rec := recoverDir(t, testOptions(t, dir))
	if rec.Shards != 3 {
		t.Errorf("manifest shards = %d, want 3", rec.Shards)
	}
}
