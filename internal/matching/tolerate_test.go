package matching

import (
	"errors"
	"testing"

	"galo/internal/optimizer"
	"galo/internal/sparql"
	"galo/internal/workload/tpcds"
)

// failingEndpoint answers every probe with an error — a dead remote shard as
// the matching engine sees it once the gateway's retries are exhausted.
type failingEndpoint struct{}

var errEndpointDown = errors.New("endpoint down")

func (failingEndpoint) Select(string) ([]sparql.Solution, error) { return nil, errEndpointDown }

func TestProbeErrorsFailMatchingByDefault(t *testing.T) {
	db, _ := fixture(t)
	eng := New(db.Catalog, failingEndpoint{}, DefaultOptions())
	opt := optimizer.New(db.Catalog, optimizer.DefaultOptions())
	plan := opt.MustOptimize(tpcds.Fig8WideQuery(db))
	if _, err := eng.MatchPlan(plan); err == nil {
		t.Fatal("MatchPlan succeeded against a dead endpoint without TolerateProbeErrors")
	}
}

func TestTolerateProbeErrorsDegradesInsteadOfFailing(t *testing.T) {
	db, _ := fixture(t)
	opts := DefaultOptions()
	opts.TolerateProbeErrors = true
	eng := New(db.Catalog, failingEndpoint{}, opts)
	opt := optimizer.New(db.Catalog, optimizer.DefaultOptions())
	plan := opt.MustOptimize(tpcds.Fig8WideQuery(db))

	matches, stats, err := eng.MatchPlanStats(plan)
	if err != nil {
		t.Fatalf("MatchPlanStats = %v, want degraded success", err)
	}
	if len(matches) != 0 {
		t.Errorf("dead endpoint produced %d matches", len(matches))
	}
	if stats.Errors == 0 {
		t.Errorf("stats.Errors = 0, want the failed probes counted")
	}
	if stats.Probes < stats.Errors {
		t.Errorf("stats.Probes = %d < stats.Errors = %d", stats.Probes, stats.Errors)
	}
	if got := eng.ProbeErrors(); got == 0 {
		t.Errorf("engine.ProbeErrors() = 0, want cumulative count")
	}

	// The whole online workflow still answers: Reoptimize returns the
	// original plan unrewritten rather than an error.
	res, err := eng.Reoptimize(tpcds.Fig8WideQuery(db))
	if err != nil {
		t.Fatalf("Reoptimize = %v, want degraded success", err)
	}
	if res.Rewritten() {
		t.Errorf("dead endpoint rewrote the plan")
	}
}
