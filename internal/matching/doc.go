// Package matching implements GALO's online matching engine (Section 3.3 of
// the paper): an incoming query's plan is segmented into sub-plans (climbing
// the tree up to the RETURN operator, capped by the same join threshold used
// during learning), each segment is turned into a SPARQL query by the
// transformation engine and run against the knowledge base, and the matched
// templates' guidelines — with canonical table labels mapped back to the
// query's table instances — are collected into a guideline document with
// which the query is re-optimized.
//
// # Concurrency contract
//
// An Engine is safe for concurrent use and is built for the serving path:
//
//   - Probes for one plan fan out across a bounded worker pool
//     (Options.ProbeWorkers); selection over the results is deterministic
//     (largest fragment first, overlap-claimed fragments skipped).
//   - The knowledge base may be sharded (NewSharded): each fragment routes
//     to the single shard whose templates could match it (Router over the
//     fragment's shape signature), so a plan's probes touch only the shards
//     its signatures can hit.
//   - Epoch pinning: at plan start the engine pins one epoch per shard
//     (EpochPinner) — a vector of shard epochs — and every probe, cache
//     entry and singleflight key of the plan carries its shard's pinned
//     epoch. A learning publication on one shard mid-plan is invisible to
//     the plan and can never invalidate cache entries tagged with another
//     shard's epoch.
//   - The routinization cache (Options.ProbeCacheSize) is a sharded LRU
//     keyed by (KB shard, fragment fingerprint) and tagged with the shard
//     epoch; an epoch mismatch evicts on lookup, so the cache can never
//     serve solutions across epochs or across shards.
//   - Identical in-flight probes — same KB shard, same epoch, same fragment
//     fingerprint — collapse into one SPARQL evaluation (singleflight).
package matching
