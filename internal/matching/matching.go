package matching

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"galo/internal/catalog"
	"galo/internal/guideline"
	"galo/internal/optimizer"
	"galo/internal/qgm"
	"galo/internal/sparql"
	"galo/internal/sqlparser"
	"galo/internal/transform"
)

// Endpoint is anything that can answer SPARQL SELECT queries: the in-process
// knowledge base (fuseki.LocalEndpoint) or a remote Fuseki-style server
// (fuseki.Client). Implementations must be safe for concurrent use — the
// engine fans per-fragment probes out across a worker pool.
type Endpoint interface {
	Select(query string) ([]sparql.Solution, error)
}

// VersionedEndpoint is an Endpoint that can report a version counter for the
// knowledge base contents it serves. Probe results are cached only for
// versioned endpoints, so that knowledge base updates invalidate the cache
// instead of serving stale guidelines.
type VersionedEndpoint interface {
	Endpoint
	// KBVersion returns the current knowledge base version; ok is false when
	// the version is momentarily unavailable (e.g. a remote endpoint that
	// cannot be reached), which disables caching for that probe.
	KBVersion() (version uint64, ok bool)
}

// EpochPinner is an Endpoint that can pin one knowledge base epoch: PinEpoch
// returns a Select function frozen on the current epoch plus that epoch's
// version. The engine pins once per plan, so every probe of the plan — and
// every cache entry and singleflight key those probes produce — belongs to
// exactly that epoch; the version tag can never disagree with the data
// actually read, even while learning publishes new epochs mid-plan.
// In-process endpoints (fuseki.LocalEndpoint) implement this; remote
// endpoints cannot, and fall back to the conservative KBVersion tagging
// (entries tagged with a superseded version are evicted on next lookup).
type EpochPinner interface {
	PinEpoch() (func(string) ([]sparql.Solution, error), uint64)
}

// Options configures the matching engine.
type Options struct {
	// MaxJoins caps the size of matched sub-plans; the paper uses the same
	// threshold (four) as the learning engine.
	MaxJoins int
	// OptimizerOptions configures the optimizer used for the initial plan and
	// the re-optimization pass.
	OptimizerOptions optimizer.Options
	// ProbeWorkers bounds the worker pool that probes the knowledge base for
	// a plan's fragments in parallel; 0 means GOMAXPROCS, 1 disables
	// parallelism.
	ProbeWorkers int
	// ProbeCacheSize is the capacity of the fragment-fingerprint → probe
	// result LRU cache (the paper's routinization fast path, Figure 12).
	// 0 means the default of 4096 entries; a negative value disables the
	// cache. The cache is only active for VersionedEndpoints.
	ProbeCacheSize int
	// TolerateProbeErrors keeps a plan's matching usable when a shard
	// endpoint fails even after the transport's own retries: the failed
	// fragment counts as unmatched (ProbeStats.Errors / Engine.ProbeErrors)
	// instead of failing the whole MatchPlan. Fleet deployments enable it so
	// a dead shard degrades only that shard's rewrites, never the request.
	TolerateProbeErrors bool
}

// DefaultOptions returns the configuration used in the experiments.
func DefaultOptions() Options {
	return Options{MaxJoins: 4, OptimizerOptions: optimizer.DefaultOptions()}
}

// Router maps a plan fragment's shape signature (qgm.Node.ShapeSignature)
// and join count to the index of the knowledge base shard whose templates
// could match it. It must agree with the routing the knowledge base applied
// when templates were published (kb.KB.RouteShape); a nil Router sends every
// probe to shard 0.
type Router func(shape string, joins int) int

// Engine is the online matching engine. It is safe for concurrent use.
type Engine struct {
	Cat  *catalog.Catalog
	Opts Options

	// endpoints holds one knowledge base endpoint per shard; route picks the
	// shard a fragment's probe goes to. Both are immutable after New.
	endpoints []Endpoint
	route     Router

	cache       *probeCache
	flight      flightGroup
	deduped     atomic.Int64
	probeErrors atomic.Int64
	shardProbes []atomic.Int64
}

// New returns a matching engine over the catalog and a single (unsharded)
// knowledge base endpoint.
func New(cat *catalog.Catalog, endpoint Endpoint, opts Options) *Engine {
	return NewSharded(cat, []Endpoint{endpoint}, nil, opts)
}

// NewSharded returns a matching engine over a sharded knowledge base: one
// endpoint per shard, with route deciding which shard each fragment probes.
// The routinization cache is enabled only when every endpoint can report a
// version (VersionedEndpoint), so no shard can serve stale guidelines.
func NewSharded(cat *catalog.Catalog, endpoints []Endpoint, route Router, opts Options) *Engine {
	if len(endpoints) == 0 {
		panic("matching: NewSharded needs at least one endpoint")
	}
	if opts.MaxJoins <= 0 {
		opts.MaxJoins = 4
	}
	cacheSize := opts.ProbeCacheSize
	if cacheSize == 0 {
		cacheSize = 4096
	}
	e := &Engine{
		Cat:         cat,
		Opts:        opts,
		endpoints:   endpoints,
		route:       route,
		shardProbes: make([]atomic.Int64, len(endpoints)),
	}
	allVersioned := true
	for _, ep := range endpoints {
		if _, ok := ep.(VersionedEndpoint); !ok {
			allVersioned = false
			break
		}
	}
	if allVersioned && cacheSize > 0 {
		e.cache = newProbeCache(cacheSize)
	}
	return e
}

// Endpoint returns the single knowledge base endpoint of an unsharded
// engine (shard 0 of a sharded one).
func (e *Engine) Endpoint() Endpoint { return e.endpoints[0] }

// Shards returns the number of knowledge base shards the engine probes.
func (e *Engine) Shards() int { return len(e.endpoints) }

// ProbesByShard returns how many fragment probes each shard has answered
// (cache hits included) since the engine was built — the fan-out profile a
// deployment watches to spot routing skew.
func (e *Engine) ProbesByShard() []int64 {
	out := make([]int64, len(e.shardProbes))
	for i := range e.shardProbes {
		out[i] = e.shardProbes[i].Load()
	}
	return out
}

// shardFor routes one fragment to the shard whose templates could match it.
func (e *Engine) shardFor(frag *qgm.Node) int {
	if len(e.endpoints) == 1 || e.route == nil {
		return 0
	}
	s := e.route(frag.ShapeSignature(), frag.CountJoins())
	if s < 0 || s >= len(e.endpoints) {
		return 0
	}
	return s
}

// CachedProbes returns how many probe results are currently cached (0 when
// caching is disabled).
func (e *Engine) CachedProbes() int {
	if e.cache == nil {
		return 0
	}
	return e.cache.size()
}

// shardConn is one shard's resolved probe path for the duration of a plan:
// the Select function every probe routed to the shard goes through, plus the
// shard's pinned (or conservatively fetched) epoch.
type shardConn struct {
	sel       func(string) ([]sparql.Solution, error)
	version   uint64
	versionOK bool
}

// planShards resolves the Select function and version tag per shard, once
// per plan: a pinned epoch snapshot when the endpoint supports it
// (EpochPinner), the plain endpoint with conservative version tagging
// otherwise. The result is the plan's *epoch vector* — every probe of the
// plan reads from, and tags its cache/singleflight keys with, exactly the
// epoch its shard had at plan start, independent of the other shards.
func (e *Engine) planShards() []shardConn {
	conns := make([]shardConn, len(e.endpoints))
	for i, ep := range e.endpoints {
		if p, ok := ep.(EpochPinner); ok {
			sel, version := p.PinEpoch()
			conns[i] = shardConn{sel: sel, version: version, versionOK: true}
			continue
		}
		conn := shardConn{sel: ep.Select}
		if e.cache != nil {
			conn.version, conn.versionOK = ep.(VersionedEndpoint).KBVersion()
		}
		conns[i] = conn
	}
	return conns
}

// probe answers one knowledge base query against one shard, through the
// routinization cache when it is active and a version was resolved. Tagging
// a whole plan's probes with the version fetched at plan start is
// conservative: if the shard changes mid-plan, the entries are tagged with
// the older version and evicted on their next lookup.
//
// Cache and singleflight keys carry the shard index as well as the epoch, so
// a publication on one shard can never invalidate — or serve — entries that
// belong to another: identical probes issued by concurrent re-optimizations
// collapse into one SPARQL evaluation only when they target the same shard
// at the same epoch.
func (e *Engine) probe(shard int, conn shardConn, queryText string) (sols []sparql.Solution, cached bool, err error) {
	e.shardProbes[shard].Add(1)
	key := "s" + strconv.Itoa(shard) + "|" + queryText
	if e.cache != nil && conn.versionOK {
		if sols, hit := e.cache.get(key, conn.version); hit {
			return sols, true, nil
		}
	}
	flightKey := key
	if conn.versionOK {
		flightKey = "s" + strconv.Itoa(shard) + "|" + strconv.FormatUint(conn.version, 16) + "|" + queryText
	}
	sols, shared, err := e.flight.do(flightKey, func() ([]sparql.Solution, error) {
		return conn.sel(queryText)
	})
	if err != nil {
		return nil, false, err
	}
	if shared {
		e.deduped.Add(1)
	}
	if e.cache != nil && conn.versionOK {
		e.cache.put(key, conn.version, sols)
	}
	return sols, false, nil
}

// DedupedProbes returns how many probes were answered by joining another
// in-flight identical probe instead of evaluating SPARQL themselves.
func (e *Engine) DedupedProbes() int64 { return e.deduped.Load() }

// ProbeErrors returns how many probes failed and were tolerated as
// unmatched since the engine was built (Options.TolerateProbeErrors).
func (e *Engine) ProbeErrors() int64 { return e.probeErrors.Load() }

// Match is one problem pattern found in a plan.
type Match struct {
	// FragmentRootID is the operator ID of the matched sub-plan's root in the
	// original plan.
	FragmentRootID int
	// FragmentJoins is the number of joins in the matched sub-plan.
	FragmentJoins int
	// TemplateIRI identifies the knowledge base template that matched.
	TemplateIRI string
	// Improvement is the improvement the template recorded when it was
	// learned.
	Improvement float64
	// Guideline is the template's rewrite with TABIDs mapped to the incoming
	// query's table instances.
	Guideline *guideline.Element
	// MatchMillis is the wall-clock time spent matching this fragment
	// against the knowledge base (the quantity reported in Exp-3).
	MatchMillis float64
	// CacheHit reports whether the probe was answered from the
	// routinization cache instead of a full SPARQL evaluation.
	CacheHit bool
}

// ProbeStats aggregates the knowledge base probes issued while matching one
// plan.
type ProbeStats struct {
	// Probes is the number of fragments probed against the knowledge base.
	Probes int
	// CacheHits is how many probes were answered from the routinization
	// cache.
	CacheHits int
	// TotalMillis is the summed wall-clock time of every probe, matched or
	// not (the quantity behind Figure 11 / Exp-3).
	TotalMillis float64
	// Errors is how many probes failed and were tolerated as unmatched
	// (only ever non-zero under Options.TolerateProbeErrors).
	Errors int
}

// MatchPlan probes the knowledge base for every sub-plan of the plan and
// returns the matches found.
func (e *Engine) MatchPlan(plan *qgm.Plan) ([]Match, error) {
	matches, _, err := e.MatchPlanStats(plan)
	return matches, err
}

// MatchPlanStats is MatchPlan plus probe statistics. Probes fan out across a
// bounded worker pool (Options.ProbeWorkers), each fragment routed to the
// knowledge base shard its shape signature can hit — the plan pins a vector
// of shard epochs up front, so every probe reads a consistent snapshot of
// its shard no matter what publishes elsewhere mid-plan. Selection then runs
// over the results in deterministic order: fragments are tried from the
// largest (most context) down to single joins, and fragments overlapping an
// already-matched fragment are skipped, so each part of the plan is
// rewritten by at most one template.
func (e *Engine) MatchPlanStats(plan *qgm.Plan) ([]Match, ProbeStats, error) {
	var stats ProbeStats
	if plan == nil || plan.Root == nil {
		return nil, stats, fmt.Errorf("matching: empty plan")
	}
	fragments := plan.EnumerateSubPlans(e.Opts.MaxJoins)
	// Largest fragments first.
	for i, j := 0, len(fragments)-1; i < j; i, j = i+1, j-1 {
		fragments[i], fragments[j] = fragments[j], fragments[i]
	}
	type outcome struct {
		m   Match
		ok  bool
		err error
	}
	outcomes := make([]outcome, len(fragments))
	conns := e.planShards()
	workers := e.Opts.ProbeWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(fragments) {
		workers = len(fragments)
	}
	if workers <= 1 {
		for i, frag := range fragments {
			m, ok, err := e.matchFragment(frag.Root, conns)
			outcomes[i] = outcome{m, ok, err}
		}
	} else {
		var wg sync.WaitGroup
		jobs := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					m, ok, err := e.matchFragment(fragments[i].Root, conns)
					outcomes[i] = outcome{m, ok, err}
				}
			}()
		}
		for i := range fragments {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
	}
	var matches []Match
	claimed := map[string]bool{}
	for i, frag := range fragments {
		if outcomes[i].err != nil {
			if !e.Opts.TolerateProbeErrors {
				return nil, stats, outcomes[i].err
			}
			// Degrade, don't fail: the fragment goes unmatched (no rewrite
			// from this template shard) and the error is counted.
			e.probeErrors.Add(1)
			stats.Probes++
			stats.Errors++
			continue
		}
		stats.Probes++
		stats.TotalMillis += outcomes[i].m.MatchMillis
		if outcomes[i].m.CacheHit {
			stats.CacheHits++
		}
		if !outcomes[i].ok || overlapsClaimed(frag.Root, claimed) {
			continue
		}
		m := outcomes[i].m
		m.FragmentJoins = frag.Joins
		matches = append(matches, m)
		for inst := range frag.Root.TableInstances() {
			claimed[inst] = true
		}
	}
	return matches, stats, nil
}

func overlapsClaimed(frag *qgm.Node, claimed map[string]bool) bool {
	for inst := range frag.TableInstances() {
		if claimed[inst] {
			return true
		}
	}
	return false
}

// matchFragment matches one sub-plan against the shard of the knowledge
// base its shape signature routes to and, when a template matches, maps its
// guideline back to the incoming plan's table instances.
func (e *Engine) matchFragment(frag *qgm.Node, conns []shardConn) (Match, bool, error) {
	start := time.Now()
	queryText, info, err := transform.FragmentMatchQuery(frag)
	if err != nil {
		return Match{}, false, err
	}
	shard := e.shardFor(frag)
	sols, cached, err := e.probe(shard, conns[shard], queryText)
	if err != nil {
		return Match{}, false, fmt.Errorf("matching: knowledge base query failed: %w", err)
	}
	elapsed := float64(time.Since(start).Microseconds()) / 1000
	if len(sols) == 0 {
		return Match{MatchMillis: elapsed, CacheHit: cached}, false, nil
	}
	best, improvement := pickBestSolution(sols, info)
	guidelineXML := best[info.GuidelineVar].Value
	doc, err := guideline.Parse(guidelineXML)
	if err != nil || len(doc.Guidelines) == 0 {
		return Match{}, false, fmt.Errorf("matching: template carries an invalid guideline: %v", err)
	}
	// Canonical label -> incoming instance.
	canonicalToInstance := map[string]string{}
	for instance, varName := range info.CanonicalVarByInstance {
		if term, ok := best[varName]; ok {
			canonicalToInstance[strings.ToUpper(term.Value)] = instance
		}
	}
	g := doc.Guidelines[0]
	if !rebindGuideline(g, canonicalToInstance) {
		return Match{MatchMillis: elapsed, CacheHit: cached}, false, nil
	}
	m := Match{
		FragmentRootID: frag.ID,
		TemplateIRI:    best[info.TemplateVar].Value,
		Improvement:    improvement,
		Guideline:      g,
		MatchMillis:    elapsed,
		CacheHit:       cached,
	}
	return m, true, nil
}

// pickBestSolution chooses the matching template with the highest recorded
// improvement.
func pickBestSolution(sols []sparql.Solution, info *transform.MatchQueryInfo) (sparql.Solution, float64) {
	best := sols[0]
	bestImp := improvementOf(best, info)
	for _, s := range sols[1:] {
		if imp := improvementOf(s, info); imp > bestImp {
			best, bestImp = s, imp
		}
	}
	return best, bestImp
}

func improvementOf(s sparql.Solution, info *transform.MatchQueryInfo) float64 {
	term, ok := s[info.ImprovementVar]
	if !ok {
		return 0
	}
	f, _ := term.Float()
	return f
}

// rebindGuideline replaces canonical TABIDs with the incoming plan's table
// instances; it reports false when a canonical label has no counterpart (the
// guideline would then be inapplicable).
func rebindGuideline(g *guideline.Element, canonicalToInstance map[string]string) bool {
	ok := true
	var walk func(*guideline.Element)
	walk = func(e *guideline.Element) {
		if e == nil || !ok {
			return
		}
		if e.TabID != "" {
			inst, found := canonicalToInstance[strings.ToUpper(e.TabID)]
			if !found {
				ok = false
				return
			}
			e.TabID = inst
		}
		for _, c := range e.Children {
			walk(c)
		}
	}
	walk(g)
	return ok
}

// Result is the outcome of re-optimizing one query.
type Result struct {
	Query           *sqlparser.Query
	OriginalPlan    *qgm.Plan
	ReoptimizedPlan *qgm.Plan
	Matches         []Match
	Guidelines      *guideline.Document
	Report          *optimizer.Report
	// MatchMillis is the time spent querying the knowledge base for the
	// fragments that matched (the per-rewrite quantity of Exp-3 / Figure 11).
	MatchMillis float64
	// ProbeStats covers every probe issued, matched or not, including the
	// routinization cache's hit count.
	ProbeStats ProbeStats
}

// Rewritten reports whether re-optimization produced a different plan.
func (r *Result) Rewritten() bool {
	return r.ReoptimizedPlan != nil && r.OriginalPlan != nil &&
		r.ReoptimizedPlan.Signature() != r.OriginalPlan.Signature()
}

// Reoptimize runs the full online workflow for one query: plan it, match the
// plan against the knowledge base, and — when rewrites match — pass the query
// with the collected guideline document through the optimizer again. The
// original plan is always returned; the re-optimized plan is nil when nothing
// matched.
func (e *Engine) Reoptimize(q *sqlparser.Query) (*Result, error) {
	opt := optimizer.New(e.Cat, e.Opts.OptimizerOptions)
	original, _, err := opt.Optimize(q)
	if err != nil {
		return nil, err
	}
	matches, stats, err := e.MatchPlanStats(original)
	if err != nil {
		return nil, err
	}
	res := &Result{Query: q, OriginalPlan: original, Matches: matches, ProbeStats: stats}
	for _, m := range matches {
		res.MatchMillis += m.MatchMillis
	}
	if len(matches) == 0 {
		return res, nil
	}
	doc := &guideline.Document{}
	for _, m := range matches {
		doc.Add(m.Guideline)
	}
	res.Guidelines = guideline.Merge(doc)

	reoptOptions := e.Opts.OptimizerOptions
	reoptOptions.Guidelines = res.Guidelines
	reopt := optimizer.New(e.Cat, reoptOptions)
	replanned, report, err := reopt.Optimize(q)
	if err != nil {
		return nil, err
	}
	res.ReoptimizedPlan = replanned
	res.Report = report
	return res, nil
}
