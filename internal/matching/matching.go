// Package matching implements GALO's online matching engine (Section 3.3 of
// the paper): an incoming query's plan is segmented into sub-plans (climbing
// the tree up to the RETURN operator, capped by the same join threshold used
// during learning), each segment is turned into a SPARQL query by the
// transformation engine and run against the knowledge base, and the matched
// templates' guidelines — with canonical table labels mapped back to the
// query's table instances — are collected into a guideline document with
// which the query is re-optimized.
package matching

import (
	"fmt"
	"strings"
	"time"

	"galo/internal/catalog"
	"galo/internal/guideline"
	"galo/internal/optimizer"
	"galo/internal/qgm"
	"galo/internal/sparql"
	"galo/internal/sqlparser"
	"galo/internal/transform"
)

// Endpoint is anything that can answer SPARQL SELECT queries: the in-process
// knowledge base (fuseki.LocalEndpoint) or a remote Fuseki-style server
// (fuseki.Client).
type Endpoint interface {
	Select(query string) ([]sparql.Solution, error)
}

// Options configures the matching engine.
type Options struct {
	// MaxJoins caps the size of matched sub-plans; the paper uses the same
	// threshold (four) as the learning engine.
	MaxJoins int
	// OptimizerOptions configures the optimizer used for the initial plan and
	// the re-optimization pass.
	OptimizerOptions optimizer.Options
}

// DefaultOptions returns the configuration used in the experiments.
func DefaultOptions() Options {
	return Options{MaxJoins: 4, OptimizerOptions: optimizer.DefaultOptions()}
}

// Engine is the online matching engine.
type Engine struct {
	Cat      *catalog.Catalog
	Endpoint Endpoint
	Opts     Options
}

// New returns a matching engine over the catalog and knowledge base endpoint.
func New(cat *catalog.Catalog, endpoint Endpoint, opts Options) *Engine {
	if opts.MaxJoins <= 0 {
		opts.MaxJoins = 4
	}
	return &Engine{Cat: cat, Endpoint: endpoint, Opts: opts}
}

// Match is one problem pattern found in a plan.
type Match struct {
	// FragmentRootID is the operator ID of the matched sub-plan's root in the
	// original plan.
	FragmentRootID int
	// FragmentJoins is the number of joins in the matched sub-plan.
	FragmentJoins int
	// TemplateIRI identifies the knowledge base template that matched.
	TemplateIRI string
	// Improvement is the improvement the template recorded when it was
	// learned.
	Improvement float64
	// Guideline is the template's rewrite with TABIDs mapped to the incoming
	// query's table instances.
	Guideline *guideline.Element
	// MatchMillis is the wall-clock time spent matching this fragment
	// against the knowledge base (the quantity reported in Exp-3).
	MatchMillis float64
}

// MatchPlan probes the knowledge base for every sub-plan of the plan and
// returns the matches found. Fragments are tried from the largest (most
// context) down to single joins, and fragments overlapping an already-matched
// fragment are skipped, so each part of the plan is rewritten by at most one
// template.
func (e *Engine) MatchPlan(plan *qgm.Plan) ([]Match, error) {
	if plan == nil || plan.Root == nil {
		return nil, fmt.Errorf("matching: empty plan")
	}
	fragments := plan.EnumerateSubPlans(e.Opts.MaxJoins)
	// Largest fragments first.
	for i, j := 0, len(fragments)-1; i < j; i, j = i+1, j-1 {
		fragments[i], fragments[j] = fragments[j], fragments[i]
	}
	var matches []Match
	claimed := map[string]bool{}
	for _, frag := range fragments {
		if overlapsClaimed(frag.Root, claimed) {
			continue
		}
		m, ok, err := e.matchFragment(frag.Root)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		m.FragmentJoins = frag.Joins
		matches = append(matches, m)
		for inst := range frag.Root.TableInstances() {
			claimed[inst] = true
		}
	}
	return matches, nil
}

func overlapsClaimed(frag *qgm.Node, claimed map[string]bool) bool {
	for inst := range frag.TableInstances() {
		if claimed[inst] {
			return true
		}
	}
	return false
}

// matchFragment matches one sub-plan against the knowledge base and, when a
// template matches, maps its guideline back to the incoming plan's table
// instances.
func (e *Engine) matchFragment(frag *qgm.Node) (Match, bool, error) {
	start := time.Now()
	queryText, info, err := transform.FragmentMatchQuery(frag)
	if err != nil {
		return Match{}, false, err
	}
	sols, err := e.Endpoint.Select(queryText)
	if err != nil {
		return Match{}, false, fmt.Errorf("matching: knowledge base query failed: %w", err)
	}
	elapsed := float64(time.Since(start).Microseconds()) / 1000
	if len(sols) == 0 {
		return Match{MatchMillis: elapsed}, false, nil
	}
	best, improvement := pickBestSolution(sols, info)
	guidelineXML := best[info.GuidelineVar].Value
	doc, err := guideline.Parse(guidelineXML)
	if err != nil || len(doc.Guidelines) == 0 {
		return Match{}, false, fmt.Errorf("matching: template carries an invalid guideline: %v", err)
	}
	// Canonical label -> incoming instance.
	canonicalToInstance := map[string]string{}
	for instance, varName := range info.CanonicalVarByInstance {
		if term, ok := best[varName]; ok {
			canonicalToInstance[strings.ToUpper(term.Value)] = instance
		}
	}
	g := doc.Guidelines[0]
	if !rebindGuideline(g, canonicalToInstance) {
		return Match{MatchMillis: elapsed}, false, nil
	}
	m := Match{
		FragmentRootID: frag.ID,
		TemplateIRI:    best[info.TemplateVar].Value,
		Improvement:    improvement,
		Guideline:      g,
		MatchMillis:    elapsed,
	}
	return m, true, nil
}

// pickBestSolution chooses the matching template with the highest recorded
// improvement.
func pickBestSolution(sols []sparql.Solution, info *transform.MatchQueryInfo) (sparql.Solution, float64) {
	best := sols[0]
	bestImp := improvementOf(best, info)
	for _, s := range sols[1:] {
		if imp := improvementOf(s, info); imp > bestImp {
			best, bestImp = s, imp
		}
	}
	return best, bestImp
}

func improvementOf(s sparql.Solution, info *transform.MatchQueryInfo) float64 {
	term, ok := s[info.ImprovementVar]
	if !ok {
		return 0
	}
	f, _ := term.Float()
	return f
}

// rebindGuideline replaces canonical TABIDs with the incoming plan's table
// instances; it reports false when a canonical label has no counterpart (the
// guideline would then be inapplicable).
func rebindGuideline(g *guideline.Element, canonicalToInstance map[string]string) bool {
	ok := true
	var walk func(*guideline.Element)
	walk = func(e *guideline.Element) {
		if e == nil || !ok {
			return
		}
		if e.TabID != "" {
			inst, found := canonicalToInstance[strings.ToUpper(e.TabID)]
			if !found {
				ok = false
				return
			}
			e.TabID = inst
		}
		for _, c := range e.Children {
			walk(c)
		}
	}
	walk(g)
	return ok
}

// Result is the outcome of re-optimizing one query.
type Result struct {
	Query           *sqlparser.Query
	OriginalPlan    *qgm.Plan
	ReoptimizedPlan *qgm.Plan
	Matches         []Match
	Guidelines      *guideline.Document
	Report          *optimizer.Report
	// MatchMillis is the total time spent querying the knowledge base.
	MatchMillis float64
}

// Rewritten reports whether re-optimization produced a different plan.
func (r *Result) Rewritten() bool {
	return r.ReoptimizedPlan != nil && r.OriginalPlan != nil &&
		r.ReoptimizedPlan.Signature() != r.OriginalPlan.Signature()
}

// Reoptimize runs the full online workflow for one query: plan it, match the
// plan against the knowledge base, and — when rewrites match — pass the query
// with the collected guideline document through the optimizer again. The
// original plan is always returned; the re-optimized plan is nil when nothing
// matched.
func (e *Engine) Reoptimize(q *sqlparser.Query) (*Result, error) {
	opt := optimizer.New(e.Cat, e.Opts.OptimizerOptions)
	original, _, err := opt.Optimize(q)
	if err != nil {
		return nil, err
	}
	matches, err := e.MatchPlan(original)
	if err != nil {
		return nil, err
	}
	res := &Result{Query: q, OriginalPlan: original, Matches: matches}
	for _, m := range matches {
		res.MatchMillis += m.MatchMillis
	}
	if len(matches) == 0 {
		return res, nil
	}
	doc := &guideline.Document{}
	for _, m := range matches {
		doc.Add(m.Guideline)
	}
	res.Guidelines = guideline.Merge(doc)

	reoptOptions := e.Opts.OptimizerOptions
	reoptOptions.Guidelines = res.Guidelines
	reopt := optimizer.New(e.Cat, reoptOptions)
	replanned, report, err := reopt.Optimize(q)
	if err != nil {
		return nil, err
	}
	res.ReoptimizedPlan = replanned
	res.Report = report
	return res, nil
}
