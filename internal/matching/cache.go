package matching

import (
	"container/list"
	"hash/fnv"
	"sync"

	"galo/internal/sparql"
)

// probeCacheShards is the number of independently locked shards the
// routinization cache is split across. Under serving concurrency (the
// paper's Figure 12 amortization measured with many clients) every request
// hits the cache several times per plan; sharding keeps those hits from
// serializing on one mutex.
const probeCacheShards = 16

// probeCache is a sharded, fixed-capacity LRU cache of knowledge base probe
// results, keyed by the generated SPARQL query text. The query text is a
// complete fingerprint of the probed fragment — its operator types,
// input-stream structure and estimated cardinalities all feed the generated
// query — so two fragments with equal query text are guaranteed to receive
// equal solutions from an unchanged knowledge base. This is the paper's
// "routinization" fast path (Figure 12): workloads re-submit the same plan
// fragments over and over, and a repeated fragment should not pay full
// SPARQL evaluation again.
//
// Entries are tagged with the knowledge base epoch they were computed
// against; a lookup with a different epoch drops the stale entry, so
// knowledge base publications invalidate the cache without coordination —
// the cache can never serve a solution across epochs. Negative results (no
// matching template) are cached too — most probes miss, and the miss is
// exactly what routinization must make cheap.
type probeCache struct {
	shards []*cacheShard
}

type cacheShard struct {
	mu    sync.Mutex
	cap   int
	order *list.List
	items map[string]*list.Element
}

type probeEntry struct {
	key     string
	version uint64
	sols    []sparql.Solution
}

func newProbeCache(capacity int) *probeCache {
	// Small configured capacities get fewer shards rather than a silently
	// inflated total (16 shards of one entry each would both exceed the
	// bound and thrash colliding hot keys); full sharding kicks in once
	// every shard can hold a few entries.
	shards := probeCacheShards
	if shards > capacity {
		shards = capacity
	}
	if shards < 1 {
		shards = 1
	}
	perShard := capacity / shards
	if perShard < 1 {
		perShard = 1
	}
	c := &probeCache{shards: make([]*cacheShard, shards)}
	for i := range c.shards {
		c.shards[i] = &cacheShard{cap: perShard, order: list.New(), items: map[string]*list.Element{}}
	}
	return c
}

func (c *probeCache) shard(key string) *cacheShard {
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	return c.shards[h.Sum32()%uint32(len(c.shards))]
}

// get returns the cached solutions for key at the given knowledge base
// epoch. An epoch mismatch evicts the entry and reports a miss.
func (c *probeCache) get(key string, version uint64) ([]sparql.Solution, bool) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[key]
	if !ok {
		return nil, false
	}
	ent := el.Value.(*probeEntry)
	if ent.version != version {
		s.order.Remove(el)
		delete(s.items, key)
		return nil, false
	}
	s.order.MoveToFront(el)
	return ent.sols, true
}

// put stores the solutions for key at the given knowledge base epoch,
// evicting the shard's least recently used entry when it is full.
func (c *probeCache) put(key string, version uint64, sols []sparql.Solution) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		ent := el.Value.(*probeEntry)
		ent.version = version
		ent.sols = sols
		s.order.MoveToFront(el)
		return
	}
	s.items[key] = s.order.PushFront(&probeEntry{key: key, version: version, sols: sols})
	if s.order.Len() > s.cap {
		oldest := s.order.Back()
		s.order.Remove(oldest)
		delete(s.items, oldest.Value.(*probeEntry).key)
	}
}

// size returns the number of cached entries across all shards.
func (c *probeCache) size() int {
	total := 0
	for _, s := range c.shards {
		s.mu.Lock()
		total += s.order.Len()
		s.mu.Unlock()
	}
	return total
}
