package matching

import (
	"container/list"
	"sync"

	"galo/internal/sparql"
)

// probeCache is a fixed-capacity LRU cache of knowledge base probe results,
// keyed by the generated SPARQL query text. The query text is a complete
// fingerprint of the probed fragment — its operator types, input-stream
// structure and estimated cardinalities all feed the generated query — so two
// fragments with equal query text are guaranteed to receive equal solutions
// from an unchanged knowledge base. This is the paper's "routinization" fast
// path (Figure 12): workloads re-submit the same plan fragments over and
// over, and a repeated fragment should not pay full SPARQL evaluation again.
//
// Entries are tagged with the knowledge base version they were computed
// against; a lookup with a different version drops the stale entry, so
// knowledge base updates invalidate the cache without coordination. Negative
// results (no matching template) are cached too — most probes miss, and the
// miss is exactly what routinization must make cheap.
type probeCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List
	items map[string]*list.Element
}

type probeEntry struct {
	key     string
	version uint64
	sols    []sparql.Solution
}

func newProbeCache(capacity int) *probeCache {
	return &probeCache{cap: capacity, order: list.New(), items: map[string]*list.Element{}}
}

// get returns the cached solutions for key at the given knowledge base
// version. A version mismatch evicts the entry and reports a miss.
func (c *probeCache) get(key string, version uint64) ([]sparql.Solution, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	ent := el.Value.(*probeEntry)
	if ent.version != version {
		c.order.Remove(el)
		delete(c.items, key)
		return nil, false
	}
	c.order.MoveToFront(el)
	return ent.sols, true
}

// put stores the solutions for key at the given knowledge base version,
// evicting the least recently used entry when the cache is full.
func (c *probeCache) put(key string, version uint64, sols []sparql.Solution) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		ent := el.Value.(*probeEntry)
		ent.version = version
		ent.sols = sols
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&probeEntry{key: key, version: version, sols: sols})
	if c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*probeEntry).key)
	}
}

// size returns the number of cached entries.
func (c *probeCache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
