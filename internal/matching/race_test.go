package matching

import (
	"fmt"
	"sync"
	"testing"

	"galo/internal/rdf"
	"galo/internal/sparql"
	"galo/internal/sqlparser"
	"galo/internal/workload/tpcds"
)

// TestConcurrentReoptimize drives one shared engine from concurrent
// Reoptimize calls — exercising the probe worker pool and the routinization
// cache under contention — while another goroutine mutates the knowledge
// base store, exercising version-based cache invalidation. Run with -race.
func TestConcurrentReoptimize(t *testing.T) {
	db, knowledge := fixture(t)
	eng := newEngine(db, knowledge)
	queries := []*sqlparser.Query{tpcds.Fig8Query(), tpcds.Fig7Query(), tpcds.Fig4Query(), tpcds.Fig3Query()}

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < 3; round++ {
				q := queries[(g+round)%len(queries)]
				res, err := eng.Reoptimize(q)
				if err != nil {
					t.Errorf("Reoptimize(%s): %v", q.Name, err)
					return
				}
				if res.OriginalPlan == nil {
					t.Errorf("Reoptimize(%s): missing original plan", q.Name)
				}
			}
		}(g)
	}
	// Concurrent knowledge base churn: bumps the store version so cached
	// probe results must be re-validated while matchers are running.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 30; i++ {
			knowledge.Store().Add(rdf.Triple{
				S: rdf.NewIRI("http://galo/kb/churn/subject"),
				P: rdf.NewIRI("http://galo/kb/churn/tick"),
				O: rdf.NewNumericLiteral(float64(i)),
			})
		}
	}()
	wg.Wait()
}

// TestProbeCacheServesFreshResultsAfterKBChange pins the invalidation
// contract: a cached probe result must not survive a knowledge base update.
func TestProbeCacheServesFreshResultsAfterKBChange(t *testing.T) {
	store := rdf.NewStore()
	eng := New(nil, versionedStore{store}, DefaultOptions())
	if eng.cache == nil {
		t.Fatal("cache not enabled for a versioned endpoint")
	}
	query := `PREFIX pr: <http://galo/qep/property/>
		SELECT ?x WHERE { ?x pr:hasPopType "HSJOIN" . }`

	probe := func() ([]sparql.Solution, bool, error) {
		conns := eng.planShards()
		return eng.probe(0, conns[0], query)
	}
	store.Add(rdf.Triple{S: rdf.NewIRI("a"), P: rdf.NewIRI("http://galo/qep/property/hasPopType"), O: rdf.NewLiteral("HSJOIN")})
	sols, cached, err := probe()
	if err != nil || cached || len(sols) != 1 {
		t.Fatalf("first probe: sols=%d cached=%v err=%v", len(sols), cached, err)
	}
	sols, cached, err = probe()
	if err != nil || !cached || len(sols) != 1 {
		t.Fatalf("repeat probe should hit the cache: sols=%d cached=%v err=%v", len(sols), cached, err)
	}
	store.Add(rdf.Triple{S: rdf.NewIRI("b"), P: rdf.NewIRI("http://galo/qep/property/hasPopType"), O: rdf.NewLiteral("HSJOIN")})
	sols, cached, err = probe()
	if err != nil || cached || len(sols) != 2 {
		t.Fatalf("probe after KB change must re-evaluate: sols=%d cached=%v err=%v", len(sols), cached, err)
	}
}

// versionedStore adapts a bare store into a VersionedEndpoint, proving the
// cache works against any conforming endpoint, not just the fuseki ones.
type versionedStore struct{ store *rdf.Store }

func (v versionedStore) Select(queryText string) ([]sparql.Solution, error) {
	q, err := sparql.Parse(queryText)
	if err != nil {
		return nil, err
	}
	return sparql.Execute(q, v.store)
}

func (v versionedStore) KBVersion() (uint64, bool) { return v.store.Version(), true }

// TestProbeCacheLRUEviction pins the cache's capacity and recency behavior.
// Eviction is per shard, so the test drives three keys that hash to the same
// shard of a cache whose shards hold two entries each.
func TestProbeCacheLRUEviction(t *testing.T) {
	c := newProbeCache(2 * probeCacheShards) // two entries per shard
	var keys []string
	want := c.shard("seed")
	for i := 0; len(keys) < 3; i++ {
		k := fmt.Sprintf("key-%d", i)
		if c.shard(k) == want {
			keys = append(keys, k)
		}
	}
	a, b, cc := keys[0], keys[1], keys[2]
	c.put(a, 1, nil)
	c.put(b, 1, nil)
	if _, hit := c.get(a, 1); !hit {
		t.Fatal("a should be cached")
	}
	c.put(cc, 1, nil) // evicts b (least recently used in the shard)
	if _, hit := c.get(b, 1); hit {
		t.Error("b should have been evicted")
	}
	if _, hit := c.get(a, 1); !hit {
		t.Error("a should have survived (recently used)")
	}
	if _, hit := c.get(cc, 1); !hit {
		t.Error("c should be cached")
	}
	if c.size() != 2 {
		t.Errorf("size = %d, want 2", c.size())
	}
	// Version mismatch evicts.
	if _, hit := c.get(a, 2); hit {
		t.Error("stale version should miss")
	}
	if c.size() != 1 {
		t.Errorf("size after stale eviction = %d, want 1", c.size())
	}
}

// TestSingleflightDedupesIdenticalProbes issues the same probe from many
// goroutines against a slow endpoint and checks that concurrent callers
// joined one evaluation instead of each paying their own.
func TestSingleflightDedupesIdenticalProbes(t *testing.T) {
	store := rdf.NewStore()
	store.Add(rdf.Triple{S: rdf.NewIRI("a"), P: rdf.NewIRI("http://galo/qep/property/hasPopType"), O: rdf.NewLiteral("HSJOIN")})
	slow := slowEndpoint{versionedStore{store}, make(chan struct{})}
	eng := New(nil, slow, DefaultOptions())
	query := `PREFIX pr: <http://galo/qep/property/>
		SELECT ?x WHERE { ?x pr:hasPopType "HSJOIN" . }`

	const clients = 8
	var wg sync.WaitGroup
	var started sync.WaitGroup
	started.Add(clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			started.Done()
			conns := eng.planShards()
			sols, _, err := eng.probe(0, conns[0], query)
			if err != nil || len(sols) != 1 {
				t.Errorf("probe: sols=%d err=%v", len(sols), err)
			}
		}()
	}
	started.Wait()
	close(slow.release) // let the (deduplicated) evaluations proceed
	wg.Wait()
	if eng.DedupedProbes() == 0 {
		t.Error("no probes were deduplicated across 8 identical concurrent calls")
	}
	if eng.DedupedProbes() > clients-1 {
		t.Errorf("deduped %d probes from %d calls", eng.DedupedProbes(), clients)
	}
}

// slowEndpoint blocks Selects until released, forcing concurrent probes to
// overlap deterministically.
type slowEndpoint struct {
	versionedStore
	release chan struct{}
}

func (s slowEndpoint) Select(queryText string) ([]sparql.Solution, error) {
	<-s.release
	return s.versionedStore.Select(queryText)
}
