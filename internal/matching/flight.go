package matching

import (
	"fmt"
	"sync"

	"galo/internal/sparql"
)

// flightGroup deduplicates identical in-flight knowledge base probes: when
// several concurrent re-optimizations probe the same fragment fingerprint
// against the same knowledge base epoch, one SPARQL evaluation runs and the
// others wait for its result. Under serving concurrency this is what keeps a
// hot fragment's cold probe from being paid once per client (the cache only
// helps after the first probe completes; singleflight collapses the window
// in between).
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	sols []sparql.Solution
	err  error
}

// do runs fn once per key among concurrent callers; shared reports whether
// this caller joined another caller's evaluation instead of running its own.
func (g *flightGroup) do(key string, fn func() ([]sparql.Solution, error)) (sols []sparql.Solution, shared bool, err error) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = map[string]*flightCall{}
	}
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		<-c.done
		return c.sols, true, c.err
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	// Deregister and release joiners even if fn panics: a leaked
	// still-registered call would hang every current and future probe for
	// this key. Joiners of a panicked call receive an error, not a silent
	// empty result; the panic itself propagates to the leader's caller.
	completed := false
	defer func() {
		if !completed {
			c.err = fmt.Errorf("matching: in-flight probe evaluation panicked")
		}
		g.mu.Lock()
		delete(g.calls, key)
		g.mu.Unlock()
		close(c.done)
	}()
	c.sols, c.err = fn()
	completed = true
	return c.sols, false, c.err
}
