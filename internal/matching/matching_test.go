package matching

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"

	"galo/internal/executor"
	"galo/internal/fuseki"
	"galo/internal/kb"
	"galo/internal/learning"
	"galo/internal/optimizer"
	"galo/internal/sqlparser"
	"galo/internal/storage"
	"galo/internal/workload/tpcds"
)

// The integration fixture learns a small knowledge base once and reuses it in
// every test: this exercises the full offline workflow (learning engine,
// transformation engine, knowledge base) before the online matching tests.
// Learning is deterministic — plans are ranked on the executor's simulated
// cost, with the noise model off — so the fixture's knowledge base is
// identical at any worker count or -cpu setting.
var (
	fixtureDB *storage.Database
	fixtureKB *kb.KB
)

func fixture(t *testing.T) (*storage.Database, *kb.KB) {
	t.Helper()
	if fixtureDB == nil {
		db, err := tpcds.Generate(tpcds.GenOptions{Seed: 21, Scale: 0.08, Hazards: true})
		if err != nil {
			t.Fatal(err)
		}
		knowledge := kb.New()
		opts := learning.DefaultOptions()
		opts.RandomPlans = 8
		opts.PredicateVariants = 1
		opts.Runs = 2
		opts.Workers = 2
		opts.MaxSubQueriesPerQuery = 12
		opts.Workload = "tpcds"
		eng := learning.New(db, knowledge, opts)
		queries := []*sqlparser.Query{tpcds.Fig3Query(), tpcds.Fig4Query(), tpcds.Fig7Query(), tpcds.Fig8WideQuery(db)}
		report, err := eng.LearnWorkload(queries)
		if err != nil {
			t.Fatal(err)
		}
		if report.TemplatesAdded == 0 {
			t.Fatal("fixture learned no templates; matching tests cannot run")
		}
		fixtureDB, fixtureKB = db, knowledge
	}
	return fixtureDB, fixtureKB
}

func newEngine(db *storage.Database, knowledge *kb.KB) *Engine {
	return New(db.Catalog, fuseki.LocalEndpoint{Store: knowledge.Store()}, DefaultOptions())
}

func TestMatchPlanFindsLearnedPattern(t *testing.T) {
	db, knowledge := fixture(t)
	eng := newEngine(db, knowledge)
	opt := optimizer.New(db.Catalog, optimizer.DefaultOptions())
	plan := opt.MustOptimize(tpcds.Fig8WideQuery(db))
	matches, err := eng.MatchPlan(plan)
	if err != nil {
		t.Fatalf("MatchPlan: %v", err)
	}
	if len(matches) == 0 {
		t.Fatalf("no matches for the query the knowledge base was learned from (KB size %d)", knowledge.Size())
	}
	for _, m := range matches {
		if m.Guideline == nil {
			t.Errorf("match without guideline: %+v", m)
		}
		if m.TemplateIRI == "" || m.Improvement <= 0 {
			t.Errorf("match metadata incomplete: %+v", m)
		}
		// The rebound guideline references the incoming query's instances,
		// not canonical labels.
		for _, id := range m.Guideline.TabIDs() {
			if strings.HasPrefix(id, "TABLE_") {
				t.Errorf("guideline TABID not rebound: %s", id)
			}
		}
		if m.MatchMillis < 0 {
			t.Errorf("negative match time")
		}
	}
	if _, err := eng.MatchPlan(nil); err == nil {
		t.Errorf("nil plan should fail")
	}
}

func TestReoptimizeImprovesActualRuntime(t *testing.T) {
	db, knowledge := fixture(t)
	eng := newEngine(db, knowledge)
	ex := executor.New(db)

	improvedSomething := false
	for _, q := range []*sqlparser.Query{tpcds.Fig8WideQuery(db), tpcds.Fig7Query(), tpcds.Fig4Query()} {
		res, err := eng.Reoptimize(q)
		if err != nil {
			t.Fatalf("Reoptimize(%s): %v", q.Name, err)
		}
		if res.OriginalPlan == nil {
			t.Fatalf("missing original plan for %s", q.Name)
		}
		if len(res.Matches) == 0 {
			continue
		}
		if res.ReoptimizedPlan == nil || res.Guidelines.Empty() {
			t.Fatalf("%s matched but was not re-optimized", q.Name)
		}
		if err := res.ReoptimizedPlan.Validate(); err != nil {
			t.Fatalf("re-optimized plan invalid: %v", err)
		}
		origRes, err := ex.Execute(res.OriginalPlan, q)
		if err != nil {
			t.Fatal(err)
		}
		reoptRes, err := ex.Execute(res.ReoptimizedPlan, q)
		if err != nil {
			t.Fatal(err)
		}
		// Result correctness is preserved by re-optimization.
		if len(origRes.Rows) != len(reoptRes.Rows) {
			t.Errorf("%s: re-optimized plan returns %d rows, original %d",
				q.Name, len(reoptRes.Rows), len(origRes.Rows))
		}
		if reoptRes.Stats.ElapsedMillis < origRes.Stats.ElapsedMillis*0.95 {
			improvedSomething = true
		}
		// Never a catastrophic regression.
		if reoptRes.Stats.ElapsedMillis > origRes.Stats.ElapsedMillis*1.5 {
			t.Errorf("%s: re-optimization regressed runtime %.1f -> %.1f ms",
				q.Name, origRes.Stats.ElapsedMillis, reoptRes.Stats.ElapsedMillis)
		}
	}
	if !improvedSomething {
		t.Errorf("re-optimization improved none of the problem queries")
	}
}

func TestReoptimizeQueryWithoutMatches(t *testing.T) {
	db, knowledge := fixture(t)
	eng := newEngine(db, knowledge)
	// A single-table query has no join fragments and can never match.
	q := sqlparser.MustParse(`SELECT i_item_desc FROM item WHERE i_category = 'Music'`)
	res, err := eng.Reoptimize(q)
	if err != nil {
		t.Fatalf("Reoptimize: %v", err)
	}
	if len(res.Matches) != 0 || res.ReoptimizedPlan != nil || res.Rewritten() {
		t.Errorf("unexpected match for a single-table query: %+v", res)
	}
}

func TestCrossWorkloadReuseViaCanonicalLabels(t *testing.T) {
	// The Figure 8 pattern learned on store_sales/date_dim should match the
	// structurally identical wide-range misestimate over catalog_sales and
	// web_sales (different tables, never learned from), because the knowledge
	// base stores canonical labels rather than table names.
	db, knowledge := fixture(t)
	eng := newEngine(db, knowledge)
	lo, hi := tpcds.WideDateRange(db)
	crossQueries := []*sqlparser.Query{
		sqlparser.MustParse(fmt.Sprintf(`SELECT i_item_desc, cs_quantity FROM catalog_sales, item, date_dim
			WHERE cs_item_sk = i_item_sk AND cs_sold_date_sk = d_date_sk
			AND i_category = 'Books' AND d_date_sk BETWEEN %d AND %d`, lo, hi)),
		sqlparser.MustParse(fmt.Sprintf(`SELECT i_item_desc, ws_quantity FROM web_sales, item, date_dim
			WHERE ws_item_sk = i_item_sk AND ws_sold_date_sk = d_date_sk
			AND i_category = 'Home' AND d_date_sk BETWEEN %d AND %d`, lo, hi)),
	}
	matchedAny := false
	for _, q := range crossQueries {
		res, err := eng.Reoptimize(q)
		if err != nil {
			t.Fatalf("Reoptimize: %v", err)
		}
		if len(res.Matches) > 0 {
			matchedAny = true
		}
	}
	if !matchedAny {
		t.Errorf("no cross-query reuse: patterns learned on one query never matched another")
	}
}

func TestMatchingThroughFusekiHTTPEndpoint(t *testing.T) {
	// The knowledge base can be consulted over HTTP exactly as with a local
	// store.
	db, knowledge := fixture(t)
	srv := httptest.NewServer(fuseki.NewServer(knowledge.Store()))
	defer srv.Close()
	remote := New(db.Catalog, fuseki.NewClient(srv.URL), DefaultOptions())
	local := newEngine(db, knowledge)

	opt := optimizer.New(db.Catalog, optimizer.DefaultOptions())
	plan := opt.MustOptimize(tpcds.Fig8WideQuery(db))
	localMatches, err := local.MatchPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	remoteMatches, err := remote.MatchPlan(opt.MustOptimize(tpcds.Fig8WideQuery(db)))
	if err != nil {
		t.Fatal(err)
	}
	if len(localMatches) != len(remoteMatches) {
		t.Errorf("local found %d matches, remote %d", len(localMatches), len(remoteMatches))
	}
}
