package matching

import (
	"fmt"
	"testing"

	"galo/internal/fuseki"
	"galo/internal/kb"
	"galo/internal/optimizer"
	"galo/internal/qgm"
	"galo/internal/sqlparser"
	"galo/internal/workload/tpcds"
)

// shardedEngine builds an engine over a 4-shard copy of the fixture
// knowledge base, with one pinned-snapshot endpoint per shard and the KB's
// own shape router.
func shardedEngine(t *testing.T) (*Engine, *kb.KB) {
	t.Helper()
	_, single := fixture(t)
	sharded := kb.NewSharded(4)
	if err := sharded.LoadNTriples(single.NTriples()); err != nil {
		t.Fatal(err)
	}
	if sharded.Size() != single.Size() {
		t.Fatalf("sharded copy has %d templates, want %d", sharded.Size(), single.Size())
	}
	endpoints := make([]Endpoint, sharded.Shards())
	for i, st := range sharded.Stores() {
		endpoints[i] = fuseki.LocalEndpoint{Store: st}
	}
	return NewSharded(fixtureDB.Catalog, endpoints, sharded.RouteShape, DefaultOptions()), sharded
}

// TestShardedEngineMatchesLikeSingleShard pins the losslessness of the
// shape-routed partition: fanning probes out to per-shard endpoints finds
// exactly the applicable matches the single-shard engine finds, fragment
// for fragment.
func TestShardedEngineMatchesLikeSingleShard(t *testing.T) {
	db, knowledge := fixture(t)
	singleEng := newEngine(db, knowledge)
	shardEng, _ := shardedEngine(t)
	opt := optimizer.New(db.Catalog, optimizer.DefaultOptions())

	queries := []*sqlparser.Query{tpcds.Fig8WideQuery(db), tpcds.Fig7Query(), tpcds.Fig4Query(), tpcds.Fig3Query()}
	matchedSomewhere := false
	for _, q := range queries {
		plan := opt.MustOptimize(q)
		got, err := shardEng.MatchPlan(plan)
		if err != nil {
			t.Fatalf("sharded MatchPlan(%s): %v", q.Name, err)
		}
		want, err := singleEng.MatchPlan(plan)
		if err != nil {
			t.Fatalf("single MatchPlan(%s): %v", q.Name, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: sharded found %d matches, single-shard %d", q.Name, len(got), len(want))
		}
		for i := range got {
			if got[i].FragmentRootID != want[i].FragmentRootID {
				t.Errorf("%s match %d: fragment %d vs %d", q.Name, i, got[i].FragmentRootID, want[i].FragmentRootID)
			}
			if got[i].Improvement != want[i].Improvement {
				t.Errorf("%s match %d: improvement %v vs %v", q.Name, i, got[i].Improvement, want[i].Improvement)
			}
		}
		matchedSomewhere = matchedSomewhere || len(got) > 0
	}
	if !matchedSomewhere {
		t.Fatal("no query matched at all; the equivalence check is vacuous")
	}
	// The fan-out actually spread over shards: more than one shard probed.
	probed := 0
	for _, n := range shardEng.ProbesByShard() {
		if n > 0 {
			probed++
		}
	}
	if probed < 2 {
		t.Errorf("probes touched %d shard(s); expected fan-out over several", probed)
	}
}

// TestShardedCacheIsolation pins the cache-key widening: repeating a plan
// hits the routinization cache even though probes span several shards, and
// a publication on one shard leaves entries of other shards valid.
func TestShardedCacheIsolation(t *testing.T) {
	db, _ := fixture(t)
	shardEng, sharded := shardedEngine(t)
	opt := optimizer.New(db.Catalog, optimizer.DefaultOptions())
	plan := opt.MustOptimize(tpcds.Fig8WideQuery(db))

	if _, _, err := shardEng.MatchPlanStats(plan); err != nil {
		t.Fatal(err)
	}
	_, warm, err := shardEng.MatchPlanStats(plan)
	if err != nil {
		t.Fatal(err)
	}
	if warm.CacheHits != warm.Probes {
		t.Fatalf("warm pass: %d/%d probes cached", warm.CacheHits, warm.Probes)
	}

	// Publish on a shard the plan's probes never touched.
	probes := shardEng.ProbesByShard()
	target := -1
	for i, n := range probes {
		if n == 0 {
			target = i
			break
		}
	}
	if target == -1 {
		t.Skip("plan probed every shard; no untouched shard to publish on")
	}
	tmpl := templateRoutedTo(t, sharded, target)
	if _, err := sharded.Add(tmpl); err != nil {
		t.Fatal(err)
	}
	_, after, err := shardEng.MatchPlanStats(plan)
	if err != nil {
		t.Fatal(err)
	}
	if after.CacheHits != after.Probes {
		t.Errorf("publication on shard %d invalidated other shards' entries: %d/%d cached",
			target, after.CacheHits, after.Probes)
	}
}

// templateRoutedTo synthesizes a template whose shape routes to the wanted
// shard, by varying the synthetic problem shape until the router agrees.
func templateRoutedTo(t *testing.T, knowledge *kb.KB, want int) *kb.Template {
	t.Helper()
	for joins := 1; joins < 8; joins++ {
		for variant := 0; variant < 64; variant++ {
			tmpl := syntheticChainTemplate(joins, variant)
			if knowledge.ShardOf(tmpl) == want {
				return tmpl
			}
		}
	}
	t.Fatalf("no synthetic shape routes to shard %d", want)
	return nil
}

// syntheticChainTemplate builds a left-deep join-chain template whose shape
// varies with (joins, variant), for routing-targeted publications in tests.
func syntheticChainTemplate(joins, variant int) *kb.Template {
	ops := []qgm.OpType{qgm.OpHSJOIN, qgm.OpNLJOIN, qgm.OpMSJOIN}
	cur := &qgm.Node{Op: qgm.OpTBSCAN, Table: fmt.Sprintf("SYN%d_T0", variant), TableInstance: fmt.Sprintf("SYN%d_T0", variant), EstCardinality: 1000}
	for j := 0; j < joins; j++ {
		name := fmt.Sprintf("SYN%d_T%d", variant, j+1)
		inner := &qgm.Node{Op: qgm.OpIXSCAN, Table: name, TableInstance: name, Index: "IX", EstCardinality: 100}
		cur = &qgm.Node{Op: ops[(variant+j)%len(ops)], Outer: cur, Inner: inner, EstCardinality: 500}
	}
	plan := qgm.NewPlan(cur)
	problem := plan.Root.Outer
	bounds := map[int]kb.Range{}
	problem.Walk(func(n *qgm.Node) { bounds[n.ID] = kb.Range{Lo: n.EstCardinality / 10, Hi: n.EstCardinality * 10} })
	guideline := "<OPTGUIDELINES><HSJOIN>"
	for i := 0; i <= joins; i++ {
		guideline += fmt.Sprintf("<TBSCAN TABID='TABLE_%d'/>", i+1)
	}
	guideline += "</HSJOIN></OPTGUIDELINES>"
	return &kb.Template{Problem: problem, Bounds: bounds, GuidelineXML: guideline, Improvement: 0.2, Structural: true}
}
