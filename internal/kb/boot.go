package kb

import (
	"fmt"

	"galo/internal/rdf"
)

// NewFromStores adopts recovered per-shard stores as a live knowledge base
// WITHOUT rewriting a single triple: the template index is reconstructed by
// reading each shard, and the stores' epoch lineages continue exactly where
// crash recovery left them. That is what keeps (shard, epoch, fingerprint)
// plan-cache keys honest across a restart — re-loading the triples instead
// would republish every shard and reset the epoch vector.
//
// It fails — letting the caller fall back to a re-routing NTriples reload —
// when a shard holds a template that routes elsewhere (the shard count or
// routing function changed since the data was written) or when two shards
// hold the same problem signature (corrupt state; the index requires global
// signature uniqueness).
func NewFromStores(stores []*rdf.Store) (*KB, error) {
	if len(stores) == 0 {
		return nil, fmt.Errorf("kb: no stores to adopt")
	}
	k := &KB{stores: stores, bySignature: map[string]*Template{}}
	for i, st := range stores {
		templates, err := reconstructTemplates(st)
		if err != nil {
			return nil, fmt.Errorf("kb: shard %d: %w", i, err)
		}
		for _, t := range templates {
			if want := k.ShardOf(t); want != i {
				return nil, fmt.Errorf("kb: template %s recovered from shard %d but routes to shard %d (shard layout changed)", t.ID, i, want)
			}
			sig := t.Signature()
			if dup, ok := k.bySignature[sig]; ok {
				return nil, fmt.Errorf("kb: templates %s and %s share a problem signature across shards", dup.ID, t.ID)
			}
			k.templates = append(k.templates, t)
			k.bySignature[sig] = t
		}
	}
	// Seed the ID sequence past the adopted population so post-recovery
	// templates cannot reuse a recovered identifier.
	k.seq = len(k.templates)
	return k, nil
}
