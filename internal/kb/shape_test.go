package kb

import (
	"fmt"
	"testing"

	"galo/internal/qgm"
)

// shapedTemplate builds a template whose problem shape varies with the given
// join and scan operators, so tests can mint templates that route to
// different shards.
func shapedTemplate(joinOp, outerOp qgm.OpType, card float64) *Template {
	outer := &qgm.Node{Op: outerOp, Table: "TABLE_1", TableInstance: "TABLE_1", EstCardinality: card}
	if outerOp == qgm.OpIXSCAN {
		outer.Index = "INDEX_1"
	}
	inner := &qgm.Node{Op: qgm.OpIXSCAN, Table: "TABLE_2", TableInstance: "TABLE_2", Index: "INDEX_2", EstCardinality: 50}
	join := &qgm.Node{Op: joinOp, Outer: outer, Inner: inner, EstCardinality: card}
	p := qgm.NewPlan(join).Root.Outer
	return &Template{
		Problem:        p,
		Bounds:         map[int]Range{p.ID: {Lo: card / 4, Hi: card * 4}},
		GuidelineXML:   "<OPTGUIDELINES><HSJOIN><TBSCAN TABID='TABLE_2'/><TBSCAN TABID='TABLE_1'/></HSJOIN></OPTGUIDELINES>",
		Improvement:    0.3,
		SourceQuery:    fmt.Sprintf("TPCDS.%s_%s", joinOp, outerOp),
		SourceWorkload: "tpcds",
	}
}

func allShapedTemplates() []*Template {
	var ts []*Template
	for _, j := range []qgm.OpType{qgm.OpMSJOIN, qgm.OpHSJOIN, qgm.OpNLJOIN} {
		for _, s := range []qgm.OpType{qgm.OpTBSCAN, qgm.OpIXSCAN} {
			ts = append(ts, shapedTemplate(j, s, 1000))
		}
	}
	return ts
}

func TestRouteShapeNMatchesKBRouting(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8} {
		k := NewSharded(n)
		for _, tmpl := range allShapedTemplates() {
			if _, err := k.Add(tmpl); err != nil {
				t.Fatal(err)
			}
			shape := tmpl.Problem.ShapeSignature()
			if got, want := RouteShapeN(shape, tmpl.Joins, n), k.ShardOf(tmpl); got != want {
				t.Errorf("n=%d shape %q: RouteShapeN = %d, ShardOf = %d", n, shape, got, want)
			}
		}
	}
}

func TestRouteShapeNStripsBloomFilterSuffix(t *testing.T) {
	base := "HSJOIN(TBSCAN,IXSCAN)"
	withBF := "HSJOIN(TBSCAN+BF,IXSCAN)"
	for _, n := range []int{2, 3, 8} {
		if a, b := RouteShapeN(base, 1, n), RouteShapeN(withBF, 1, n); a != b {
			t.Errorf("n=%d: +BF variant routed to %d, base to %d", n, b, a)
		}
	}
	// Degenerate shapes fall back to the join band, never panic.
	if got := RouteShapeN("", 3, 4); got < 0 || got >= 4 {
		t.Errorf("empty shape routed out of range: %d", got)
	}
	if got := RouteShapeN("_", 0, 4); got < 0 || got >= 4 {
		t.Errorf("underscore shape routed out of range: %d", got)
	}
	if got := RouteShapeN("anything", 5, 1); got != 0 {
		t.Errorf("single shard must always route to 0, got %d", got)
	}
}

func TestNTriplesForShapeAndRemoveShapeRoundTrip(t *testing.T) {
	k := NewSharded(2)
	ts := allShapedTemplates()
	for _, tmpl := range ts {
		if _, err := k.Add(tmpl); err != nil {
			t.Fatal(err)
		}
	}
	shape := NormalizeShape(ts[0].Problem.ShapeSignature())
	matching := len(k.TemplatesForShape(shape))
	if matching == 0 {
		t.Fatalf("no templates for shape %q", shape)
	}

	nt := k.NTriplesForShape(shape)
	if nt == "" {
		t.Fatalf("NTriplesForShape(%q) empty with %d matching templates", shape, matching)
	}
	dst := New()
	if err := dst.LoadNTriples(nt); err != nil {
		t.Fatalf("load slice: %v", err)
	}
	if dst.Size() != matching {
		t.Fatalf("slice loaded %d templates, want %d", dst.Size(), matching)
	}
	for _, tmpl := range dst.Templates() {
		if got := NormalizeShape(tmpl.Problem.ShapeSignature()); got != shape {
			t.Errorf("slice leaked template of shape %q", got)
		}
	}

	before, beforeTriples := k.Size(), k.Triples()
	if removed := k.RemoveShape(shape); removed != matching {
		t.Fatalf("RemoveShape = %d, want %d", removed, matching)
	}
	if k.Size() != before-matching {
		t.Errorf("Size after remove = %d, want %d", k.Size(), before-matching)
	}
	if k.Triples() >= beforeTriples {
		t.Errorf("triples did not shrink: %d -> %d", beforeTriples, k.Triples())
	}
	if got := k.NTriplesForShape(shape); got != "" {
		t.Errorf("shape still renders triples after removal")
	}
	if len(k.TemplatesForShape(shape)) != 0 {
		t.Errorf("shape still lists templates after removal")
	}
	if k.RemoveShape(shape) != 0 {
		t.Errorf("second RemoveShape removed something")
	}
	// The other shapes are untouched and still findable.
	for _, tmpl := range ts {
		if NormalizeShape(tmpl.Problem.ShapeSignature()) == shape {
			continue
		}
		if k.FindBySignature(tmpl.Signature()) == nil {
			t.Errorf("unrelated template %s lost", tmpl.SourceQuery)
		}
	}
}

func TestShardSlicePartitionsTheDump(t *testing.T) {
	full := New()
	ts := allShapedTemplates()
	for _, tmpl := range ts {
		if _, err := full.Add(tmpl); err != nil {
			t.Fatal(err)
		}
	}
	dump := full.NTriples()
	const shards = 3
	total := 0
	for i := 0; i < shards; i++ {
		slice, err := ShardSlice(dump, i, shards)
		if err != nil {
			t.Fatalf("slice %d: %v", i, err)
		}
		part := New()
		if err := part.LoadNTriples(slice); err != nil {
			t.Fatalf("load slice %d: %v", i, err)
		}
		total += part.Size()
		for _, tmpl := range part.Templates() {
			if got := RouteShapeN(tmpl.Problem.ShapeSignature(), tmpl.Joins, shards); got != i {
				t.Errorf("slice %d holds template routed to %d (%s)", i, got, tmpl.SourceQuery)
			}
		}
	}
	if total != full.Size() {
		t.Errorf("slices hold %d templates, full KB %d", total, full.Size())
	}
	if _, err := ShardSlice(dump, 3, 3); err == nil {
		t.Errorf("out-of-range shard index accepted")
	}
	if _, err := ShardSlice("not ntriples at all \x00", 0, 2); err == nil {
		t.Errorf("malformed dump accepted")
	}
}
