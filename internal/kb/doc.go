// Package kb implements GALO's knowledge base: the collection of
// problem-pattern templates (an abstracted plan fragment with per-operator
// property bounds) and their recommended rewrites (a guideline document),
// stored as an RDF graph and queried via SPARQL during online
// re-optimization.
//
// Templates are abstracted with canonical symbol labels (TABLE_1, TABLE_2,
// ...) so that a pattern learned over one query — or one workload — matches
// structurally similar plans over entirely different tables, which is what
// the paper's Exp-2 cross-workload reuse result relies on.
//
// # Sharding
//
// A KB holds one or more shards (NewSharded), each an independent RDF store
// with its own epoch counter. Every template lands in exactly one shard,
// chosen by RouteShape from a prefix of the problem fragment's shape
// signature (qgm.Node.ShapeSignature) — with a join-count band as the
// fallback when no shape is available. Because an applicable match requires
// the incoming fragment's operator-type tree to equal the template problem's
// tree, the matching engine can route each fragment probe to the single
// shard whose templates could match it; probes for one plan therefore fan
// out across shards without ever consulting the others.
//
// # Concurrency contract
//
// A KB is safe for concurrent use. Each shard store publishes immutable
// epoch snapshots: one Add, merge or rewrite is exactly one atomic snapshot
// swap on the owning shard, and only on that shard — publications never bump
// the epoch of an unrelated shard, so caches keyed by (shard, epoch)
// elsewhere stay valid. Readers that pinned a shard snapshot before a
// publication keep evaluating against the previous epoch. The template
// index (Templates, FindBySignature, Size) is guarded by an internal mutex
// and may trail or lead the RDF view observed by an unpinned reader; probe
// correctness only ever depends on the pinned shard snapshots.
package kb
