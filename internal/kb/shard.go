package kb

import (
	"hash/fnv"
	"strings"
)

// routePrefixLen is how many leading bytes of the shape signature feed the
// routing hash. Shape signatures open with the fragment's root operator and
// left spine (e.g. "HSJOIN(IXSCAN,NLJOIN(..."), so a short prefix already
// separates structurally different fragments while keeping the key cheap to
// hash on the probe hot path.
const routePrefixLen = 24

// RouteShape maps a problem/fragment shape signature (qgm.Node.
// ShapeSignature) and join count to the owning shard. Routing hashes a
// prefix of the shape signature; when no usable shape is available it falls
// back to a join-count band. The function is deterministic and depends only
// on the shard count, so the matching engine and the learning engine always
// agree on where a given shape lives: a template published for shape S and a
// fragment probe for shape S meet in the same shard.
//
// An applicable match requires the fragment's operator-type tree to equal
// the template problem's tree (the guideline references every canonical
// table of the full problem, so a probe that only matches a rooted subtree
// of a bigger template can never rebind the guideline). The probe SPARQL
// does NOT constrain the bloom-filter flag, so the "+BF" marker the shape
// signature carries is stripped before routing — a template learned without
// a bloom filter must live in the same shard a bloom-filtered fragment of
// the same operator tree probes. BF-stripped shape equality is therefore a
// necessary condition for an applicable match, which is what makes the
// shape-keyed partition lossless for probe fan-out.
func (kb *KB) RouteShape(shape string, joins int) int {
	return RouteShapeN(shape, joins, len(kb.stores))
}

// RouteShapeN is the package-level routing function behind RouteShape: it
// maps a shape signature and join count to a shard in [0, n). It depends on
// nothing but its arguments, so a fleet gateway and a `galo shard` process
// that agree on the shard count agree on every shape's home shard without
// sharing a KB instance.
func RouteShapeN(shape string, joins, n int) int {
	if n <= 1 {
		return 0
	}
	if shape == "" || shape == "_" {
		return joinBand(joins) % n
	}
	shape = NormalizeShape(shape)
	prefix := shape
	if len(prefix) > routePrefixLen {
		prefix = prefix[:routePrefixLen]
	}
	h := fnv.New32a()
	_, _ = h.Write([]byte(prefix))
	return int(h.Sum32() % uint32(n))
}

// NormalizeShape strips the bloom-filter marker from a shape signature,
// yielding the canonical routing/migration key: templates and probes whose
// trees differ only in bloom-filter placement must agree on one shard.
func NormalizeShape(shape string) string {
	return strings.ReplaceAll(shape, "+BF", "")
}

// joinBand buckets a join count into the coarse bands used as the routing
// fallback when a fragment carries no shape signature.
func joinBand(joins int) int {
	switch {
	case joins <= 1:
		return 0
	case joins <= 3:
		return 1
	case joins <= 5:
		return 2
	default:
		return 3
	}
}

// ShardOf returns the shard that owns (or would own) the template.
func (kb *KB) ShardOf(t *Template) int {
	if t == nil || t.Problem == nil {
		joins := 0
		if t != nil {
			joins = t.Joins
		}
		return kb.RouteShape("", joins)
	}
	return kb.RouteShape(t.Problem.ShapeSignature(), t.Problem.CountJoins())
}

// ShardSizes returns the number of templates living in each shard.
func (kb *KB) ShardSizes() []int {
	kb.mu.RLock()
	defer kb.mu.RUnlock()
	sizes := make([]int, len(kb.stores))
	for _, t := range kb.templates {
		sizes[kb.ShardOf(t)]++
	}
	return sizes
}
