package kb

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"sync"

	"galo/internal/qgm"
	"galo/internal/rdf"
	"galo/internal/transform"
)

// Range is a closed numeric interval [Lo, Hi].
type Range struct {
	Lo, Hi float64
}

// Contains reports whether v lies within the range.
func (r Range) Contains(v float64) bool { return v >= r.Lo && v <= r.Hi }

// Widen extends the range to include v.
func (r Range) Widen(v float64) Range {
	if v < r.Lo {
		r.Lo = v
	}
	if v > r.Hi {
		r.Hi = v
	}
	return r
}

// Template is one problem-pattern template and its recommended rewrite.
type Template struct {
	// ID is the anonymized unique identifier of the template.
	ID string
	// Problem is the abstracted problem plan fragment (canonical labels).
	Problem *qgm.Node
	// Bounds maps the problem fragment's operator IDs to the cardinality
	// interval within which the template applies (hasLowerCardinality /
	// hasHigherCardinality in the RDF encoding).
	Bounds map[int]Range
	// GuidelineXML is the recommended rewrite as an OPTGUIDELINES document
	// whose TABIDs are canonical labels.
	GuidelineXML string
	// Improvement is the observed relative improvement (0.40 = 40% faster).
	Improvement float64
	// Structural reports whether the guideline's plan differs structurally
	// from the problem fragment. Non-structural templates record wins the
	// guideline language cannot express (e.g. index choice); they still
	// routinize matching fragments but recommend no plan change, so a
	// structural rewrite for the same problem always takes precedence.
	Structural bool
	// SourceQuery and SourceWorkload record provenance.
	SourceQuery    string
	SourceWorkload string
	// Joins is the number of join operators in the problem fragment.
	Joins int
}

// Signature returns the structural signature used to de-duplicate templates.
func (t *Template) Signature() string {
	if t.Problem == nil {
		return ""
	}
	return t.Problem.Signature()
}

// KB is the knowledge base. Its RDF graph is split across one or more
// shards (independent epoch-snapshot stores); every template's triples live
// in exactly one shard, chosen by RouteShape over the template problem's
// shape signature. The template index (templates, bySignature) stays global.
type KB struct {
	// stores is immutable after construction: one RDF store per shard.
	stores []*rdf.Store

	mu          sync.RWMutex
	templates   []*Template
	bySignature map[string]*Template
	seq         int
}

// New returns an empty single-shard knowledge base.
func New() *KB { return NewSharded(1) }

// NewSharded returns an empty knowledge base split across n shards
// (values below one mean a single shard).
func NewSharded(n int) *KB {
	if n < 1 {
		n = 1
	}
	stores := make([]*rdf.Store, n)
	for i := range stores {
		stores[i] = rdf.NewStore()
	}
	return &KB{stores: stores, bySignature: map[string]*Template{}}
}

// Shards returns the number of knowledge base shards.
func (kb *KB) Shards() int { return len(kb.stores) }

// Store exposes the first shard's RDF store. It is the whole knowledge base
// only for single-shard KBs (the default); sharded callers — the matching
// engine, the Fuseki handler — use Stores/ShardStore instead.
func (kb *KB) Store() *rdf.Store { return kb.stores[0] }

// ShardStore returns shard i's RDF store.
func (kb *KB) ShardStore(i int) *rdf.Store { return kb.stores[i] }

// Stores returns every shard's RDF store, in shard order.
func (kb *KB) Stores() []*rdf.Store { return append([]*rdf.Store(nil), kb.stores...) }

// Epoch identifies the knowledge base's current published epoch across all
// shards (the sum of the per-shard epochs, so it is monotonic and changes
// exactly when some shard publishes). Single-shard callers can use it as
// the cache-invalidation key; sharded matching pins the per-shard vector
// (Epochs) instead, so a publication on one shard never invalidates entries
// served from another.
func (kb *KB) Epoch() uint64 {
	var sum uint64
	for _, st := range kb.stores {
		sum += st.Version()
	}
	return sum
}

// Epochs returns the per-shard epoch vector. Every template addition, merge
// or rewrite publishes exactly one new epoch (one atomic snapshot swap) on
// the owning shard and leaves every other shard's epoch untouched.
func (kb *KB) Epochs() []uint64 {
	out := make([]uint64, len(kb.stores))
	for i, st := range kb.stores {
		out[i] = st.Version()
	}
	return out
}

// Triples returns the total triple count across all shards.
func (kb *KB) Triples() int {
	total := 0
	for _, st := range kb.stores {
		total += st.Len()
	}
	return total
}

// Size returns the number of templates.
func (kb *KB) Size() int {
	kb.mu.RLock()
	defer kb.mu.RUnlock()
	return len(kb.templates)
}

// Templates returns the templates sorted by ID.
func (kb *KB) Templates() []*Template {
	kb.mu.RLock()
	defer kb.mu.RUnlock()
	out := append([]*Template(nil), kb.templates...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// FindBySignature returns the template with the given problem signature, or
// nil.
func (kb *KB) FindBySignature(sig string) *Template {
	kb.mu.RLock()
	defer kb.mu.RUnlock()
	return kb.bySignature[sig]
}

// Add inserts a template. If a template with the same problem signature
// already exists, the existing template is updated instead: its bounds are
// widened to cover the new observation and its improvement/guideline are
// replaced when the new observation is better. It returns true when a new
// template was created.
func (kb *KB) Add(t *Template) (bool, error) {
	if t == nil || t.Problem == nil {
		return false, fmt.Errorf("kb: template needs a problem fragment")
	}
	if t.GuidelineXML == "" {
		return false, fmt.Errorf("kb: template needs a guideline")
	}
	kb.mu.Lock()
	defer kb.mu.Unlock()
	sig := t.Problem.Signature()
	if existing, ok := kb.bySignature[sig]; ok {
		kb.mergeInto(existing, t)
		return false, nil
	}
	if t.ID == "" {
		t.ID = kb.newID(sig)
	}
	if t.Bounds == nil {
		t.Bounds = map[int]Range{}
	}
	if t.Joins == 0 {
		t.Joins = t.Problem.CountJoins()
	}
	kb.templates = append(kb.templates, t)
	kb.bySignature[sig] = t
	kb.writeTemplate(t)
	return true, nil
}

// newID produces an anonymized unique identifier, as Section 3.2 requires to
// avoid resource-name collisions between templates.
func (kb *KB) newID(sig string) string {
	kb.seq++
	h := fnv.New64a()
	_, _ = h.Write([]byte(sig))
	_, _ = h.Write([]byte(strconv.Itoa(kb.seq)))
	return fmt.Sprintf("t%016x", h.Sum64())
}

// mergeInto widens the existing template with a new observation. The
// recommended rewrite is upgraded on a better improvement, except that a
// structural rewrite is never displaced by a non-structural one — an
// inexpressible (index-level) win must not overwrite an actual plan change,
// however large its measured improvement.
func (kb *KB) mergeInto(existing, incoming *Template) {
	for id, r := range incoming.Bounds {
		if cur, ok := existing.Bounds[id]; ok {
			cur = cur.Widen(r.Lo)
			cur = cur.Widen(r.Hi)
			existing.Bounds[id] = cur
		} else {
			existing.Bounds[id] = r
		}
	}
	switch {
	case incoming.Structural && !existing.Structural:
		existing.Improvement = incoming.Improvement
		existing.GuidelineXML = incoming.GuidelineXML
		existing.Structural = true
	case incoming.Structural == existing.Structural && incoming.Improvement > existing.Improvement:
		existing.Improvement = incoming.Improvement
		existing.GuidelineXML = incoming.GuidelineXML
	}
	kb.rewriteTemplate(existing)
}

// --- RDF encoding ------------------------------------------------------------

func (kb *KB) writeTemplate(t *Template) {
	// Triples are collected and inserted in one batch, so the template
	// becomes visible to readers as one atomic epoch publication on the
	// owning shard — a concurrent probe sees either none or all of the
	// template's triples, and no other shard's epoch moves.
	kb.stores[kb.ShardOf(t)].AddAll(kb.templateTriples(t))
}

// templateTriples renders a template's full RDF encoding.
func (kb *KB) templateTriples(t *Template) []rdf.Triple {
	tmplIRI := transform.TemplateIRI(t.ID)
	var batch []rdf.Triple
	add := func(s rdf.Term, prop string, o rdf.Term) {
		batch = append(batch, rdf.Triple{S: s, P: transform.Prop(prop), O: o})
	}
	add(tmplIRI, transform.PropGuideline, rdf.NewLiteral(t.GuidelineXML))
	add(tmplIRI, transform.PropImprovement, rdf.NewNumericLiteral(t.Improvement))
	add(tmplIRI, transform.PropSignature, rdf.NewLiteral(t.Signature()))
	add(tmplIRI, transform.PropJoinCount, rdf.NewNumericLiteral(float64(t.Joins)))
	if t.Structural {
		add(tmplIRI, transform.PropStructural, rdf.NewLiteral("true"))
	}
	if t.SourceQuery != "" {
		add(tmplIRI, transform.PropSourceQuery, rdf.NewLiteral(t.SourceQuery))
	}
	if t.SourceWorkload != "" {
		add(tmplIRI, transform.PropSourceWorkload, rdf.NewLiteral(t.SourceWorkload))
	}
	t.Problem.Walk(func(n *qgm.Node) {
		subj := transform.KBPopIRI(t.ID, n.ID)
		add(subj, transform.PropPopType, rdf.NewLiteral(string(n.Op)))
		add(subj, transform.PropInTemplate, tmplIRI)
		bounds, ok := t.Bounds[n.ID]
		if !ok {
			bounds = defaultBounds(n.EstCardinality)
		}
		add(subj, transform.PropLowerCardinality, rdf.NewNumericLiteral(bounds.Lo))
		add(subj, transform.PropHigherCardinality, rdf.NewNumericLiteral(bounds.Hi))
		if n.Op.IsScan() {
			add(subj, transform.PropCanonicalTable, rdf.NewLiteral(n.TableInstance))
		}
		if n.BloomFilter {
			add(subj, transform.PropBloomFilter, rdf.NewLiteral("true"))
		}
		if n.Outer != nil {
			add(subj, transform.PropOuterInput, transform.KBPopIRI(t.ID, n.Outer.ID))
			add(transform.KBPopIRI(t.ID, n.Outer.ID), transform.PropOutputStream, subj)
		}
		if n.Inner != nil {
			add(subj, transform.PropInnerInput, transform.KBPopIRI(t.ID, n.Inner.ID))
			add(transform.KBPopIRI(t.ID, n.Inner.ID), transform.PropOutputStream, subj)
		}
	})
	return batch
}

// rewriteTemplate replaces the template's triples (bounds or guideline may
// have changed) as ONE atomic epoch publication on the owning shard:
// removal patterns and the re-rendered triples go through a single
// store.Apply, so a concurrent reader pins either the old template or the
// new one, never a half-removed in-between. The shard cannot have changed —
// merging requires an identical problem signature, and the routing key is a
// function of the problem's shape.
func (kb *KB) rewriteTemplate(t *Template) {
	tmplIRI := transform.TemplateIRI(t.ID)
	removals := []rdf.Pattern{{S: &tmplIRI}}
	t.Problem.Walk(func(n *qgm.Node) {
		subj := transform.KBPopIRI(t.ID, n.ID)
		removals = append(removals, rdf.Pattern{S: &subj})
	})
	kb.stores[kb.ShardOf(t)].Apply(removals, kb.templateTriples(t))
}

func defaultBounds(card float64) Range {
	const slack = 4.0
	lo := card / slack
	if lo < 1 {
		lo = 0
	}
	return Range{Lo: lo, Hi: card * slack}
}

// NTriples serializes the knowledge base graph. The output is shard-
// agnostic — lines from all shards are merged into one lexicographically
// sorted document, so a dump taken from a 4-shard KB loads into a KB with
// any shard count (routing is recomputed at load time).
func (kb *KB) NTriples() string {
	kb.mu.RLock()
	defer kb.mu.RUnlock()
	return rdf.MergeNTriples(kb.stores)
}

// LoadNTriples merges the templates serialized in text into the knowledge
// base, reconstructing them (the "KB to QEP mapper" of the paper's
// architecture) and routing each to its owning shard. Like the Fuseki-style
// /data load it is additive: templates whose problem signature is already
// known widen the existing template, new templates are published in ONE
// batch per owning shard (at most one epoch per shard per load), and the
// shards never pass through an emptied state a concurrently pinned probe
// could observe. Triples that are not part of any template are kept too
// (in shard 0), so a raw-triple load through the HTTP endpoint round-trips.
// Serialized dumps carry no shard layout, so a KB saved under one shard
// count loads under any other.
func (kb *KB) LoadNTriples(text string) error {
	scratch := rdf.NewStore()
	if err := scratch.LoadNTriples(text); err != nil {
		return err
	}
	templates, err := reconstructTemplates(scratch)
	if err != nil {
		return err
	}
	kb.mu.Lock()
	defer kb.mu.Unlock()
	taken := make(map[string]bool, len(kb.templates))
	for _, t := range kb.templates {
		taken[t.ID] = true
	}
	// Every triple belonging to a reconstructed template is accounted for
	// by re-rendering it (reconstruct → render is a faithful round trip);
	// whatever remains in the text is a non-template triple to preserve.
	covered := map[string]bool{}
	tripleKey := func(tr rdf.Triple) string {
		return fmt.Sprintf("%d\x00%s\x00%d\x00%s\x00%d\x00%s",
			tr.S.Kind, tr.S.Value, tr.P.Kind, tr.P.Value, tr.O.Kind, tr.O.Value)
	}
	for _, t := range templates {
		for _, tr := range kb.templateTriples(t) {
			covered[tripleKey(tr)] = true
		}
	}
	batches := make([][]rdf.Triple, len(kb.stores))
	for _, t := range templates {
		sig := t.Signature()
		if existing, ok := kb.bySignature[sig]; ok {
			kb.mergeInto(existing, t)
			continue
		}
		kb.seq++
		if t.ID == "" || taken[t.ID] {
			t.ID = kb.newID(sig)
		}
		taken[t.ID] = true
		kb.templates = append(kb.templates, t)
		kb.bySignature[sig] = t
		shard := kb.ShardOf(t)
		batches[shard] = append(batches[shard], kb.templateTriples(t)...)
	}
	for _, tr := range scratch.Match(nil, nil, nil) {
		if !covered[tripleKey(tr)] {
			batches[0] = append(batches[0], tr)
		}
	}
	for i, batch := range batches {
		if len(batch) > 0 {
			kb.stores[i].AddAll(batch)
		}
	}
	return nil
}

// Merge copies every template of other into this knowledge base (the paper's
// unified knowledge base accumulated over multiple workloads).
func (kb *KB) Merge(other *KB) error {
	for _, t := range other.Templates() {
		cp := *t
		cp.Problem = t.Problem.Clone()
		cp.Bounds = map[int]Range{}
		for k, v := range t.Bounds {
			cp.Bounds[k] = v
		}
		cp.ID = "" // re-identified to avoid collisions
		if _, err := kb.Add(&cp); err != nil {
			return err
		}
	}
	return nil
}
