package kb

import (
	"reflect"
	"testing"
)

// TestNewFromStoresAdoptsWithoutRepublishing pins the restart contract: a KB
// rebuilt from recovered shard stores has the same templates AND the same
// per-shard epoch vector — adoption reads, it never writes.
func TestNewFromStoresAdoptsWithoutRepublishing(t *testing.T) {
	orig := NewSharded(4)
	for variant := 0; variant < 10; variant++ {
		if _, err := orig.Add(chainTemplate(1+variant%4, variant)); err != nil {
			t.Fatal(err)
		}
	}
	epochs := orig.Epochs()

	got, err := NewFromStores(orig.Stores())
	if err != nil {
		t.Fatalf("NewFromStores: %v", err)
	}
	if !reflect.DeepEqual(got.Epochs(), epochs) {
		t.Errorf("adoption moved epochs: %v -> %v", epochs, got.Epochs())
	}
	if got.Size() != orig.Size() {
		t.Fatalf("adopted %d templates, want %d", got.Size(), orig.Size())
	}
	want := orig.Templates()
	have := got.Templates()
	for i := range want {
		if have[i].ID != want[i].ID || have[i].Signature() != want[i].Signature() {
			t.Errorf("template %d: got %s/%q, want %s/%q", i, have[i].ID, have[i].Signature(), want[i].ID, want[i].Signature())
		}
		if have[i].GuidelineXML != want[i].GuidelineXML {
			t.Errorf("template %s guideline diverged", want[i].ID)
		}
	}

	// The adopted KB keeps working: a fresh template dedups against the
	// recovered population rather than duplicating it.
	created, err := got.Add(chainTemplate(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if created {
		t.Error("known problem signature created a second template after adoption")
	}
}

// TestNewFromStoresRejectsForeignLayout pins the fallback trigger: stores
// written under one shard count refuse direct adoption under another (the
// templates route elsewhere), and the caller's fallback — a shard-agnostic
// dump reloaded through LoadNTriples — lands every template in its new home.
func TestNewFromStoresRejectsForeignLayout(t *testing.T) {
	orig := NewSharded(4)
	for variant := 0; variant < 10; variant++ {
		if _, err := orig.Add(chainTemplate(1+variant%4, variant)); err != nil {
			t.Fatal(err)
		}
	}

	// A permuted layout must fail adoption: a template found at index 0 that
	// routes to shard 1 proves the stores do not match the routing function.
	// (A truncated prefix of the stores would NOT necessarily fail — hash%4
	// in {0,1} implies the same value under hash%2 — which is why the serve
	// boot path compares the manifest's shard count against the configured
	// one instead of relying on this guard.)
	swapped := orig.Stores()
	swapped[0], swapped[1] = swapped[1], swapped[0]
	if _, err := NewFromStores(swapped); err == nil {
		t.Fatal("permuted shard stores adopted cleanly")
	}

	// Fallback path: serialize shard-agnostically, reload under the new
	// layout. Every template survives and routes to its new shard.
	reloaded := NewSharded(2)
	if err := reloaded.LoadNTriples(orig.NTriples()); err != nil {
		t.Fatalf("fallback reload: %v", err)
	}
	if reloaded.Size() != orig.Size() {
		t.Fatalf("fallback kept %d templates, want %d", reloaded.Size(), orig.Size())
	}
	for _, tmpl := range reloaded.Templates() {
		shard := reloaded.ShardOf(tmpl)
		if shard < 0 || shard >= 2 {
			t.Errorf("template %s routed to shard %d under 2-shard layout", tmpl.ID, shard)
		}
	}
	// And the re-routed KB is adoptable in turn.
	again, err := NewFromStores(reloaded.Stores())
	if err != nil {
		t.Fatalf("adopting the re-routed KB: %v", err)
	}
	if again.Size() != orig.Size() {
		t.Errorf("re-adoption kept %d templates, want %d", again.Size(), orig.Size())
	}
}
