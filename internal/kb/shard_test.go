package kb

import (
	"fmt"
	"strings"
	"testing"

	"galo/internal/qgm"
	"galo/internal/transform"
)

// chainProblem builds a left-deep join chain of the given length whose op
// types vary with variant, producing distinct shape signatures for routing
// tests. Table instances carry the variant so signatures stay unique.
func chainProblem(joins, variant int) *qgm.Node {
	ops := []qgm.OpType{qgm.OpHSJOIN, qgm.OpNLJOIN, qgm.OpMSJOIN}
	cur := &qgm.Node{Op: qgm.OpTBSCAN, Table: fmt.Sprintf("V%d_T0", variant), TableInstance: fmt.Sprintf("V%d_T0", variant), EstCardinality: 1000}
	for j := 0; j < joins; j++ {
		inner := &qgm.Node{Op: qgm.OpIXSCAN, Table: fmt.Sprintf("V%d_T%d", variant, j+1), TableInstance: fmt.Sprintf("V%d_T%d", variant, j+1), Index: "IX", EstCardinality: 100}
		cur = &qgm.Node{Op: ops[(variant+j)%len(ops)], Outer: cur, Inner: inner, EstCardinality: 500}
	}
	plan := qgm.NewPlan(cur)
	return plan.Root.Outer
}

func chainTemplate(joins, variant int) *Template {
	p := chainProblem(joins, variant)
	bounds := map[int]Range{}
	p.Walk(func(n *qgm.Node) { bounds[n.ID] = Range{Lo: n.EstCardinality / 10, Hi: n.EstCardinality * 10} })
	guideline := "<OPTGUIDELINES><HSJOIN>"
	for i := 0; i <= joins; i++ {
		guideline += fmt.Sprintf("<TBSCAN TABID='TABLE_%d'/>", i+1)
	}
	guideline += "</HSJOIN></OPTGUIDELINES>"
	return &Template{
		Problem:      p,
		Bounds:       bounds,
		GuidelineXML: guideline,
		Improvement:  0.25,
		Structural:   true,
	}
}

// TestShardedAddRoutesToExactlyOneShard pins the partition invariant: a
// template's triples land in the shard its shape routes to and nowhere
// else, and the publication bumps only that shard's epoch.
func TestShardedAddRoutesToExactlyOneShard(t *testing.T) {
	k := NewSharded(4)
	if k.Shards() != 4 {
		t.Fatalf("Shards = %d, want 4", k.Shards())
	}
	guidelineProp := transform.Prop(transform.PropGuideline)
	for variant := 0; variant < 8; variant++ {
		tmpl := chainTemplate(1+variant%4, variant)
		want := k.ShardOf(tmpl)
		before := k.Epochs()
		if _, err := k.Add(tmpl); err != nil {
			t.Fatal(err)
		}
		after := k.Epochs()
		holders := 0
		for i := 0; i < 4; i++ {
			iri := transform.TemplateIRI(tmpl.ID)
			if len(k.ShardStore(i).Match(&iri, &guidelineProp, nil)) > 0 {
				holders++
				if i != want {
					t.Errorf("variant %d: triples in shard %d, routed to %d", variant, i, want)
				}
			}
			bumped := after[i] != before[i]
			if bumped != (i == want) {
				t.Errorf("variant %d: shard %d epoch %d -> %d (owning shard %d)", variant, i, before[i], after[i], want)
			}
		}
		if holders != 1 {
			t.Errorf("variant %d: template present in %d shards, want exactly 1", variant, holders)
		}
	}
	sizes := k.ShardSizes()
	total := 0
	for _, n := range sizes {
		total += n
	}
	if total != k.Size() {
		t.Errorf("ShardSizes sum = %d, Size = %d", total, k.Size())
	}
}

// TestShardedRoundTripAcrossShardCounts pins that serialization is
// shard-agnostic: a dump from a 4-shard KB loads into 1- and 2-shard KBs
// with the same templates, and re-dumps identically.
func TestShardedRoundTripAcrossShardCounts(t *testing.T) {
	src := NewSharded(4)
	for variant := 0; variant < 6; variant++ {
		if _, err := src.Add(chainTemplate(1+variant%3, variant)); err != nil {
			t.Fatal(err)
		}
	}
	dump := src.NTriples()
	for _, shards := range []int{1, 2, 4} {
		dst := NewSharded(shards)
		if err := dst.LoadNTriples(dump); err != nil {
			t.Fatalf("LoadNTriples into %d shards: %v", shards, err)
		}
		if dst.Size() != src.Size() {
			t.Errorf("%d shards: Size = %d, want %d", shards, dst.Size(), src.Size())
		}
		for _, tmpl := range src.Templates() {
			got := dst.FindBySignature(tmpl.Signature())
			if got == nil {
				t.Errorf("%d shards: signature %q lost in round trip", shards, tmpl.Signature())
				continue
			}
			if got.GuidelineXML != tmpl.GuidelineXML || got.Improvement != tmpl.Improvement {
				t.Errorf("%d shards: template %s diverged in round trip", shards, tmpl.ID)
			}
		}
		if redump := dst.NTriples(); redump != dump {
			t.Errorf("%d shards: re-dump differs from source dump", shards)
		}
	}
}

// TestRouteShapeDeterministicAndBounded pins the routing function: stable
// for equal inputs, in range, and falling back to join-count bands when no
// shape is available.
func TestRouteShapeDeterministicAndBounded(t *testing.T) {
	k := NewSharded(4)
	for variant := 0; variant < 10; variant++ {
		shape := chainProblem(1+variant%4, variant).ShapeSignature()
		a := k.RouteShape(shape, 2)
		b := k.RouteShape(shape, 2)
		if a != b {
			t.Errorf("RouteShape not deterministic for %q: %d vs %d", shape, a, b)
		}
		if a < 0 || a >= 4 {
			t.Errorf("RouteShape(%q) = %d out of range", shape, a)
		}
	}
	// Fallback: no shape routes by join band, still in range.
	for joins := 0; joins < 10; joins++ {
		s := k.RouteShape("", joins)
		if s < 0 || s >= 4 {
			t.Errorf("fallback RouteShape(joins=%d) = %d out of range", joins, s)
		}
	}
	if k.RouteShape("", 0) == k.RouteShape("", 4) {
		t.Error("join bands 0-1 and 4-5 should route differently on 4 shards")
	}
	// Single shard always routes to 0.
	single := New()
	if single.RouteShape("anything", 3) != 0 {
		t.Error("single-shard KB must route everything to shard 0")
	}
}

// TestLoadNTriplesIsAdditiveAndKeepsRawTriples pins the /data load
// contract: loads merge instead of replacing, and triples that are not part
// of any template survive the template reconstruction (in shard 0).
func TestLoadNTriplesIsAdditiveAndKeepsRawTriples(t *testing.T) {
	k := NewSharded(2)
	if _, err := k.Add(chainTemplate(1, 0)); err != nil {
		t.Fatal(err)
	}
	triplesBefore := k.Triples()
	if err := k.LoadNTriples("<http://x/a> <http://x/b> \"c\" .\n"); err != nil {
		t.Fatal(err)
	}
	if k.Triples() != triplesBefore+1 {
		t.Fatalf("raw triple dropped: %d triples, want %d", k.Triples(), triplesBefore+1)
	}
	if k.Size() != 1 {
		t.Fatalf("Size = %d after raw load, want the pre-existing 1", k.Size())
	}
	dump := k.NTriples()
	other := NewSharded(4)
	if _, err := other.Add(chainTemplate(2, 5)); err != nil {
		t.Fatal(err)
	}
	if err := other.LoadNTriples(dump); err != nil {
		t.Fatal(err)
	}
	if other.Size() != 2 {
		t.Errorf("additive load: Size = %d, want 2", other.Size())
	}
	if got := other.NTriples(); !strings.Contains(got, "<http://x/a>") {
		t.Error("raw triple lost across dump/load round trip")
	}
}

// TestRouteShapeIgnoresBloomFilterFlag pins a losslessness requirement: the
// probe SPARQL does not constrain the bloom-filter flag, so a template
// learned without one must live in the shard a bloom-filtered fragment of
// the same operator tree probes — "+BF" must not influence routing.
func TestRouteShapeIgnoresBloomFilterFlag(t *testing.T) {
	k := NewSharded(4)
	for variant := 0; variant < 8; variant++ {
		plain := chainProblem(2, variant)
		filtered := chainProblem(2, variant)
		filtered.Inner.BloomFilter = true
		if plain.ShapeSignature() == filtered.ShapeSignature() {
			t.Fatal("fixture broken: shapes should differ by +BF")
		}
		a := k.RouteShape(plain.ShapeSignature(), 2)
		b := k.RouteShape(filtered.ShapeSignature(), 2)
		if a != b {
			t.Errorf("variant %d: BF fragment routes to shard %d, plain template to %d", variant, b, a)
		}
	}
}

// TestShardedMergePreservesPerShardPublication pins that merging widens the
// existing template in place (same shard) rather than duplicating it
// elsewhere.
func TestShardedMergePreservesPerShardPublication(t *testing.T) {
	k := NewSharded(4)
	first := chainTemplate(2, 1)
	if _, err := k.Add(first); err != nil {
		t.Fatal(err)
	}
	owner := k.ShardOf(first)
	before := k.Epochs()
	again := chainTemplate(2, 1)
	again.Bounds[first.Problem.ID] = Range{Lo: 1, Hi: 1e6}
	again.Improvement = 0.9
	created, err := k.Add(again)
	if err != nil {
		t.Fatal(err)
	}
	if created {
		t.Fatal("same-signature Add should merge, not create")
	}
	after := k.Epochs()
	for i := range after {
		bumped := after[i] != before[i]
		if bumped != (i == owner) {
			t.Errorf("merge publication: shard %d epoch %d -> %d (owner %d)", i, before[i], after[i], owner)
		}
	}
	if k.Size() != 1 {
		t.Errorf("Size after merge = %d, want 1", k.Size())
	}
}
