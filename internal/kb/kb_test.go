package kb

import (
	"strings"
	"testing"

	"galo/internal/qgm"
	"galo/internal/transform"
)

func sampleProblem() *qgm.Node {
	outer := &qgm.Node{Op: qgm.OpTBSCAN, Table: "TABLE_1", TableInstance: "TABLE_1", EstCardinality: 1000}
	inner := &qgm.Node{Op: qgm.OpIXSCAN, Table: "TABLE_2", TableInstance: "TABLE_2", Index: "INDEX_2", EstCardinality: 50}
	join := &qgm.Node{Op: qgm.OpMSJOIN, Outer: outer, Inner: inner, EstCardinality: 800}
	plan := qgm.NewPlan(join)
	return plan.Root.Outer
}

func sampleTemplate() *Template {
	p := sampleProblem()
	return &Template{
		Problem:      p,
		Bounds:       map[int]Range{p.ID: {Lo: 100, Hi: 5000}},
		GuidelineXML: "<OPTGUIDELINES><HSJOIN><TBSCAN TABID='TABLE_2'/><TBSCAN TABID='TABLE_1'/></HSJOIN></OPTGUIDELINES>",
		Improvement:  0.4,
		SourceQuery:  "TPCDS.FIG8",
		SourceWorkload: "tpcds",
	}
}

func TestAddAndLookup(t *testing.T) {
	k := New()
	added, err := k.Add(sampleTemplate())
	if err != nil || !added {
		t.Fatalf("Add = %v, %v", added, err)
	}
	if k.Size() != 1 {
		t.Errorf("Size = %d", k.Size())
	}
	tmpl := k.Templates()[0]
	if tmpl.ID == "" {
		t.Errorf("template not assigned an ID")
	}
	if tmpl.Joins != 1 {
		t.Errorf("Joins = %d", tmpl.Joins)
	}
	if k.FindBySignature(tmpl.Signature()) != tmpl {
		t.Errorf("FindBySignature failed")
	}
	if k.FindBySignature("nope") != nil {
		t.Errorf("FindBySignature(nope) should be nil")
	}
	// RDF triples were written.
	if k.Store().Len() == 0 {
		t.Errorf("no triples written")
	}
	guidelineProp := transform.Prop(transform.PropGuideline)
	if len(k.Store().Match(nil, &guidelineProp, nil)) != 1 {
		t.Errorf("template guideline triple missing")
	}
}

func TestAddValidation(t *testing.T) {
	k := New()
	if _, err := k.Add(nil); err == nil {
		t.Errorf("nil template should fail")
	}
	if _, err := k.Add(&Template{Problem: sampleProblem()}); err == nil {
		t.Errorf("template without guideline should fail")
	}
	if _, err := k.Add(&Template{GuidelineXML: "<OPTGUIDELINES/>"}); err == nil {
		t.Errorf("template without problem should fail")
	}
}

func TestDuplicateSignatureMergesBounds(t *testing.T) {
	k := New()
	first := sampleTemplate()
	if _, err := k.Add(first); err != nil {
		t.Fatal(err)
	}
	second := sampleTemplate()
	rootID := second.Problem.ID
	second.Bounds[rootID] = Range{Lo: 10, Hi: 20000}
	second.Improvement = 0.7
	added, err := k.Add(second)
	if err != nil {
		t.Fatal(err)
	}
	if added {
		t.Errorf("duplicate signature should merge, not add")
	}
	if k.Size() != 1 {
		t.Errorf("Size = %d after merge", k.Size())
	}
	merged := k.Templates()[0]
	if merged.Bounds[rootID].Lo != 10 || merged.Bounds[rootID].Hi != 20000 {
		t.Errorf("bounds not widened: %+v", merged.Bounds[rootID])
	}
	if merged.Improvement != 0.7 {
		t.Errorf("improvement not upgraded: %v", merged.Improvement)
	}
}

func TestNTriplesRoundtripReconstructsTemplates(t *testing.T) {
	k := New()
	if _, err := k.Add(sampleTemplate()); err != nil {
		t.Fatal(err)
	}
	text := k.NTriples()
	if !strings.Contains(text, "TABLE_1") || !strings.Contains(text, "hasGuideline") {
		t.Fatalf("serialized KB missing expected content:\n%s", text)
	}
	restored := New()
	if err := restored.LoadNTriples(text); err != nil {
		t.Fatalf("LoadNTriples: %v", err)
	}
	if restored.Size() != 1 {
		t.Fatalf("restored Size = %d", restored.Size())
	}
	orig := k.Templates()[0]
	got := restored.Templates()[0]
	if got.Signature() != orig.Signature() {
		t.Errorf("signature changed across roundtrip: %q vs %q", got.Signature(), orig.Signature())
	}
	if got.Improvement != orig.Improvement || got.GuidelineXML != orig.GuidelineXML {
		t.Errorf("metadata changed across roundtrip")
	}
	if got.Problem.CountJoins() != 1 || len(got.Problem.Scans()) != 2 {
		t.Errorf("problem fragment not reconstructed: %s", got.Problem.Signature())
	}
	if got.Bounds[got.Problem.ID].Hi != 5000 {
		t.Errorf("bounds not reconstructed: %+v", got.Bounds)
	}
}

func TestMergeAcrossKnowledgeBases(t *testing.T) {
	a := New()
	if _, err := a.Add(sampleTemplate()); err != nil {
		t.Fatal(err)
	}
	b := New()
	other := sampleTemplate()
	other.Problem.Op = qgm.OpHSJOIN // different signature
	if _, err := b.Add(other); err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(b); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if a.Size() != 2 {
		t.Errorf("merged Size = %d, want 2", a.Size())
	}
	// Merging the same KB again does not duplicate.
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Size() != 2 {
		t.Errorf("re-merge duplicated templates: %d", a.Size())
	}
}

func TestRangeHelpers(t *testing.T) {
	r := Range{Lo: 10, Hi: 20}
	if !r.Contains(10) || !r.Contains(20) || r.Contains(9) || r.Contains(21) {
		t.Errorf("Contains misbehaves")
	}
	r = r.Widen(5)
	r = r.Widen(30)
	if r.Lo != 5 || r.Hi != 30 {
		t.Errorf("Widen = %+v", r)
	}
	if db := defaultBounds(100); db.Lo >= 100 || db.Hi <= 100 {
		t.Errorf("defaultBounds should bracket the value: %+v", db)
	}
}
