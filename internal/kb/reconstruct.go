package kb

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"galo/internal/qgm"
	"galo/internal/rdf"
	"galo/internal/transform"
)

// reconstructTemplates rebuilds the template index from an RDF graph. It is
// the inverse of writeTemplate and implements the "KB to QEP mapper" role of
// the paper's matching engine for knowledge bases loaded from disk or fetched
// from a remote endpoint. The graph carries no shard layout; LoadNTriples
// routes the reconstructed templates afterwards. Templates are returned in
// stable (ID) order so re-rendering them produces the same shard epochs for
// the same input.
func reconstructTemplates(store *rdf.Store) ([]*Template, error) {
	var templates []*Template
	guidelineProp := transform.Prop(transform.PropGuideline)
	for _, tr := range store.Match(nil, &guidelineProp, nil) {
		tmplIRI := tr.S
		id := strings.TrimPrefix(tmplIRI.Value, transform.KBTmplBase)
		t := &Template{ID: id, GuidelineXML: tr.O.Value, Bounds: map[int]Range{}}
		if v, ok := store.FirstObject(tmplIRI, transform.Prop(transform.PropImprovement)); ok {
			if f, ok := v.Float(); ok {
				t.Improvement = f
			}
		}
		if v, ok := store.FirstObject(tmplIRI, transform.Prop(transform.PropSourceQuery)); ok {
			t.SourceQuery = v.Value
		}
		if v, ok := store.FirstObject(tmplIRI, transform.Prop(transform.PropSourceWorkload)); ok {
			t.SourceWorkload = v.Value
		}
		if v, ok := store.FirstObject(tmplIRI, transform.Prop(transform.PropStructural)); ok && v.Value == "true" {
			t.Structural = true
		}
		problem, bounds, err := reconstructProblem(store, id, tmplIRI)
		if err != nil {
			return nil, fmt.Errorf("kb: template %s: %w", id, err)
		}
		t.Problem = problem
		t.Bounds = bounds
		t.Joins = problem.CountJoins()
		templates = append(templates, t)
	}
	sort.Slice(templates, func(i, j int) bool { return templates[i].ID < templates[j].ID })
	return templates, nil
}

// reconstructProblem rebuilds the problem fragment tree of one template from
// its pop resources.
func reconstructProblem(store *rdf.Store, templateID string, tmplIRI rdf.Term) (*qgm.Node, map[int]Range, error) {
	inTemplate := transform.Prop(transform.PropInTemplate)
	popTriples := store.Match(nil, &inTemplate, &tmplIRI)
	if len(popTriples) == 0 {
		return nil, nil, fmt.Errorf("no operators recorded")
	}
	nodes := map[int]*qgm.Node{}
	bounds := map[int]Range{}
	prefix := transform.KBPopBase + templateID + "/"
	idOf := func(t rdf.Term) (int, bool) {
		if !strings.HasPrefix(t.Value, prefix) {
			return 0, false
		}
		id, err := strconv.Atoi(strings.TrimPrefix(t.Value, prefix))
		return id, err == nil
	}
	for _, tr := range popTriples {
		id, ok := idOf(tr.S)
		if !ok {
			continue
		}
		n := &qgm.Node{ID: id}
		if v, ok := store.FirstObject(tr.S, transform.Prop(transform.PropPopType)); ok {
			n.Op = qgm.OpType(v.Value)
		}
		if v, ok := store.FirstObject(tr.S, transform.Prop(transform.PropCanonicalTable)); ok {
			n.Table = v.Value
			n.TableInstance = v.Value
		}
		if v, ok := store.FirstObject(tr.S, transform.Prop(transform.PropBloomFilter)); ok && v.Value == "true" {
			n.BloomFilter = true
		}
		var r Range
		if v, ok := store.FirstObject(tr.S, transform.Prop(transform.PropLowerCardinality)); ok {
			r.Lo, _ = v.Float()
		}
		if v, ok := store.FirstObject(tr.S, transform.Prop(transform.PropHigherCardinality)); ok {
			r.Hi, _ = v.Float()
		}
		bounds[id] = r
		n.EstCardinality = (r.Lo + r.Hi) / 2
		nodes[id] = n
	}
	// Link children and find the root.
	hasParent := map[int]bool{}
	for id, n := range nodes {
		subj := transform.KBPopIRI(templateID, id)
		if v, ok := store.FirstObject(subj, transform.Prop(transform.PropOuterInput)); ok {
			if cid, ok := idOf(v); ok {
				n.Outer = nodes[cid]
				hasParent[cid] = true
			}
		}
		if v, ok := store.FirstObject(subj, transform.Prop(transform.PropInnerInput)); ok {
			if cid, ok := idOf(v); ok {
				n.Inner = nodes[cid]
				hasParent[cid] = true
			}
		}
	}
	var root *qgm.Node
	for id, n := range nodes {
		if !hasParent[id] {
			if root != nil {
				return nil, nil, fmt.Errorf("multiple roots in template graph")
			}
			root = n
		}
	}
	if root == nil {
		return nil, nil, fmt.Errorf("no root operator found")
	}
	return root, bounds, nil
}
