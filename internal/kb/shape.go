package kb

import (
	"fmt"

	"galo/internal/qgm"
	"galo/internal/rdf"
	"galo/internal/transform"
)

// shapeKey returns a template's canonical (BF-stripped) shape signature —
// the unit of routing and of fleet template migration.
func shapeKey(t *Template) string {
	if t == nil || t.Problem == nil {
		return ""
	}
	return NormalizeShape(t.Problem.ShapeSignature())
}

// TemplatesForShape returns the templates whose canonical shape signature
// equals shape (itself normalized first), sorted by ID.
func (kb *KB) TemplatesForShape(shape string) []*Template {
	shape = NormalizeShape(shape)
	kb.mu.RLock()
	defer kb.mu.RUnlock()
	var out []*Template
	for _, t := range kb.templates {
		if shapeKey(t) == shape {
			out = append(out, t)
		}
	}
	return out
}

// NTriplesForShape serializes exactly the templates of one canonical shape,
// in the same shard-agnostic N-Triples format as NTriples. It is the "copy"
// half of the two-epoch migration protocol: the dump loads additively into
// another knowledge base via LoadNTriples. An empty string means the shape
// owns no templates here.
func (kb *KB) NTriplesForShape(shape string) string {
	shape = NormalizeShape(shape)
	kb.mu.RLock()
	defer kb.mu.RUnlock()
	scratch := rdf.NewStore()
	for _, t := range kb.templates {
		if shapeKey(t) == shape {
			scratch.AddAll(kb.templateTriples(t))
		}
	}
	if scratch.Len() == 0 {
		return ""
	}
	return scratch.NTriples()
}

// RemoveShape drops every template of one canonical shape — the "drop" half
// of the two-epoch migration protocol, run on the old owner after the new
// owner has taken over routing. Each owning shard sees ONE atomic Apply (one
// epoch publication), so a concurrently pinned probe observes either all of
// the shape's templates or none, never a torn subset. It returns the number
// of templates removed.
func (kb *KB) RemoveShape(shape string) int {
	shape = NormalizeShape(shape)
	kb.mu.Lock()
	defer kb.mu.Unlock()
	removals := make([][]rdf.Pattern, len(kb.stores))
	var kept []*Template
	removed := 0
	for _, t := range kb.templates {
		if shapeKey(t) != shape {
			kept = append(kept, t)
			continue
		}
		removed++
		shard := kb.ShardOf(t)
		tmplIRI := transform.TemplateIRI(t.ID)
		removals[shard] = append(removals[shard], rdf.Pattern{S: &tmplIRI})
		t.Problem.Walk(func(n *qgm.Node) {
			subj := transform.KBPopIRI(t.ID, n.ID)
			removals[shard] = append(removals[shard], rdf.Pattern{S: &subj})
		})
		delete(kb.bySignature, t.Problem.Signature())
	}
	if removed == 0 {
		return 0
	}
	kb.templates = kept
	for i, pats := range removals {
		if len(pats) > 0 {
			kb.stores[i].Apply(pats, nil)
		}
	}
	return removed
}

// ShardSlice extracts the portion of a full knowledge base dump that shard
// `shard` of a `shards`-way layout owns. A `galo shard` process uses it to
// serve exactly its slice of a shared dump file; non-template triples follow
// the LoadNTriples convention and land in shard 0.
func ShardSlice(ntriples string, shard, shards int) (string, error) {
	if shards < 1 {
		shards = 1
	}
	if shard < 0 || shard >= shards {
		return "", fmt.Errorf("kb: shard %d out of range [0,%d)", shard, shards)
	}
	full := NewSharded(shards)
	if err := full.LoadNTriples(ntriples); err != nil {
		return "", err
	}
	return rdf.MergeNTriples([]*rdf.Store{full.stores[shard]}), nil
}
