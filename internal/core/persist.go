// Durable knowledge base wiring: boot-time recovery from a data directory
// and the handoff between the system's live shard stores and the wal
// package's write-ahead log + snapshot compaction.

package core

import (
	"fmt"
	"log"

	"galo/internal/kb"
	"galo/internal/rdf"
	"galo/internal/wal"
)

// RecoveryInfo summarizes what OpenDataDir found in the data directory.
type RecoveryInfo struct {
	// Recovered reports that the directory held a previous generation (a
	// manifest); false means a fresh directory was initialized.
	Recovered bool `json:"recovered"`
	// Templates is the number of templates the recovered knowledge base
	// holds (after adoption or re-routing).
	Templates int `json:"recovered_templates"`
	// Rerouted reports that the on-disk shard layout did not match the
	// configured shard count (or failed adoption) and the knowledge base was
	// rebuilt by re-routing every template — template content survives, but
	// the epoch lineage restarts.
	Rerouted bool `json:"rerouted"`
	// Epochs is the per-shard epoch vector the system serves from after
	// recovery. Without re-routing it is exactly the pre-crash vector the
	// log proves durable.
	Epochs []uint64 `json:"epochs"`
	// Stats echoes the wal layer's recovery counters (records replayed,
	// snapshot fallbacks, truncation).
	Stats wal.RecoveryStats `json:"stats"`
}

// walOptions maps Config's durability knobs onto the wal package's Options.
func (s *System) walOptions() wal.Options {
	return wal.Options{
		Dir:           s.Config.DataDir,
		FS:            s.Config.WALFS,
		Sync:          s.Config.Sync,
		SnapshotEvery: s.Config.SnapshotEvery,
	}
}

// OpenDataDir opens Config.DataDir and brings up the durability layer. On a
// directory holding a previous generation it recovers the knowledge base —
// newest valid snapshots plus WAL tail replay — and, when the on-disk shard
// layout matches Config.Shards, ADOPTS the recovered stores without
// rewriting a triple, so the per-shard epoch vector continues exactly where
// the pre-crash process proved it durable and (shard, epoch, fingerprint)
// plan-cache keys stay honest. A layout mismatch falls back to re-routing
// the recovered templates into a fresh lineage. A directory without a
// manifest is initialized from the system's current knowledge base.
//
// Returns nil info when Config.DataDir is empty (persistence disabled). Call
// it once, before serving; LoadKB afterwards rebinds the directory to the
// replacement knowledge base on its own.
func (s *System) OpenDataDir() (*RecoveryInfo, error) {
	if s.Config.DataDir == "" {
		return nil, nil
	}
	if s.Config.RemoteKB != "" {
		return nil, fmt.Errorf("core: DataDir persists the in-process knowledge base; it cannot be combined with RemoteKB")
	}
	opts := s.walOptions()
	rec, err := wal.Recover(opts)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.persist != nil {
		return nil, fmt.Errorf("core: data dir already open")
	}
	if s.closed {
		return nil, fmt.Errorf("core: system is closed")
	}
	if rec == nil {
		// Fresh directory: start logging the current knowledge base.
		mgr, err := wal.Start(opts, s.kb.Stores(), true, nil)
		if err != nil {
			return nil, err
		}
		s.persist = mgr
		info := RecoveryInfo{Epochs: s.kb.Epochs()}
		s.recovered = info
		return &info, nil
	}

	info := RecoveryInfo{Recovered: true, Stats: rec.Stats}
	var adopted *kb.KB
	if rec.Shards == s.Config.Shards {
		// The routing guard inside NewFromStores cannot catch every layout
		// change (hash%2 aliases hash%4), so the shard-count equality check
		// above is load-bearing, not belt-and-braces.
		adopted, err = kb.NewFromStores(rec.Stores)
		if err != nil {
			logf := opts.Logf
			if logf == nil {
				logf = log.Printf
			}
			logf("core: adopting recovered shards: %v — re-routing instead", err)
		}
	}
	if adopted != nil {
		mgr, err := wal.Start(opts, rec.Stores, false, &rec.Stats)
		if err != nil {
			return nil, err
		}
		s.kb = adopted
		s.matcher = nil
		s.persist = mgr
	} else {
		// Shard layout changed: merge the recovered shards shard-agnostically
		// and re-route every template under the configured count. Fresh epoch
		// lineage; the old shard directories are wiped.
		info.Rerouted = true
		fresh := kb.NewSharded(s.Config.Shards)
		if err := fresh.LoadNTriples(rdf.MergeNTriples(rec.Stores)); err != nil {
			return nil, fmt.Errorf("core: re-routing recovered knowledge base: %w", err)
		}
		mgr, err := wal.Start(opts, fresh.Stores(), true, &rec.Stats)
		if err != nil {
			return nil, err
		}
		s.kb = fresh
		s.matcher = nil
		s.persist = mgr
	}
	info.Templates = s.kb.Size()
	info.Epochs = s.kb.Epochs()
	s.recovered = info
	return &info, nil
}

// PersistStats returns the durability counters, or nil when no data
// directory is open.
func (s *System) PersistStats() *wal.Stats {
	s.mu.Lock()
	persist := s.persist
	s.mu.Unlock()
	if persist == nil {
		return nil
	}
	st := persist.Stats()
	return &st
}

// PersistenceDegraded reports whether the durability layer has dropped to
// in-memory mode after a disk error (serving continues; /healthz says
// "degraded").
func (s *System) PersistenceDegraded() bool {
	s.mu.Lock()
	persist := s.persist
	s.mu.Unlock()
	return persist != nil && persist.Degraded()
}

// FlushWAL forces an fsync of all shards' buffered WAL appends — the
// durability point tests and SIGTERM handling rely on under SyncInterval.
func (s *System) FlushWAL() error {
	s.mu.Lock()
	persist := s.persist
	s.mu.Unlock()
	if persist == nil {
		return nil
	}
	return persist.Flush()
}
