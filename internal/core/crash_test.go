package core

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"galo/internal/wal"
	"galo/internal/workload/tpcds"
)

// TestHelperCrashServe is NOT a test: it is the server half of the kill -9
// e2e, run only when TestCrashRecoveryEndToEnd re-execs the test binary with
// GALO_CRASH_HELPER=1. It brings up a durable system over GALO_CRASH_DIR,
// prints "ADDR host:port" on stdout, and serves until killed.
func TestHelperCrashServe(t *testing.T) {
	if os.Getenv("GALO_CRASH_HELPER") != "1" {
		t.Skip("helper process for TestCrashRecoveryEndToEnd")
	}
	// Same database as trainedSystem, so templates learned in the parent
	// match and re-optimize here.
	db, err := tpcds.Generate(tpcds.GenOptions{Seed: 31, Scale: 0.08, Hazards: true})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.DataDir = os.Getenv("GALO_CRASH_DIR")
	cfg.Sync = wal.SyncAlways // every publication durable before it is visible
	sys := NewSystem(db, cfg)
	if _, err := sys.OpenDataDir(); err != nil {
		t.Fatalf("OpenDataDir: %v", err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fmt.Printf("ADDR %s\n", l.Addr())
	if err := sys.ServeListener(l); err != nil {
		t.Fatalf("ServeListener: %v", err)
	}
}

// crashHelper spawns the test binary as a durable server over dir and waits
// for its listen address. The returned stop function SIGKILLs it.
func crashHelper(t *testing.T, dir string) (base string, stop func()) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, "-test.run=^TestHelperCrashServe$", "-test.v")
	cmd.Env = append(os.Environ(), "GALO_CRASH_HELPER=1", "GALO_CRASH_DIR="+dir)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	kill := func() {
		_ = cmd.Process.Kill() // SIGKILL: no shutdown hooks, no final flush
		_, _ = cmd.Process.Wait()
	}
	t.Cleanup(kill)

	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(out)
		for sc.Scan() {
			if a, ok := strings.CutPrefix(sc.Text(), "ADDR "); ok {
				addrCh <- a
				break
			}
		}
		close(addrCh)
	}()
	select {
	case addr, ok := <-addrCh:
		if !ok || addr == "" {
			t.Fatalf("helper exited before listening; stderr:\n%s", stderr.String())
		}
		return "http://" + addr, kill
	case <-time.After(2 * time.Minute):
		t.Fatalf("helper never printed its address; stderr:\n%s", stderr.String())
	}
	panic("unreachable")
}

func matchedIRIs(resp *ReoptResponse) []string {
	iris := make([]string, 0, len(resp.Matches))
	for _, m := range resp.Matches {
		iris = append(iris, m.TemplateIRI)
	}
	sort.Strings(iris)
	return iris
}

// TestCrashRecoveryEndToEnd is the acceptance test for the durability layer:
// publish a trained knowledge base into a serving subprocess, SIGKILL it with
// no warning, restart it over the same data directory, and require that the
// same query routinizes against the same templates at an epoch no older than
// the pre-crash one — recovery, not relearning.
func TestCrashRecoveryEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess e2e skipped in -short mode")
	}
	trained := trainedSystem(t)
	dir := t.TempDir()

	base, kill := crashHelper(t, dir)

	// Publish the trained templates over POST /data (additive N-Triples
	// load); with sync=always each publication hits the WAL before the
	// response is written.
	resp, err := http.Post(base+"/data", "application/n-triples",
		strings.NewReader(trained.KB().NTriples()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /data: %s", resp.Status)
	}

	before := reoptHTTP(t, base, coreMatchedQuery.SQL(), false)
	if !before.Matched || len(before.Matches) == 0 {
		t.Fatalf("learned query did not match pre-crash: %+v", before)
	}

	kill() // SIGKILL mid-serving: no Shutdown, no flush, no snapshot

	base2, _ := crashHelper(t, dir)
	after := reoptHTTP(t, base2, coreMatchedQuery.SQL(), false)
	if !after.Matched {
		t.Fatalf("learned query did not match after crash recovery: %+v", after)
	}
	if got, want := matchedIRIs(after), matchedIRIs(before); !reflect.DeepEqual(got, want) {
		t.Errorf("matched templates changed across the crash:\n  before %v\n  after  %v", want, got)
	}
	if after.KBEpoch < before.KBEpoch {
		t.Errorf("KB epoch went backwards across the crash: %d -> %d", before.KBEpoch, after.KBEpoch)
	}

	// The restarted process must have RECOVERED the templates, not relearned
	// them: /stats reports the recovery, and the template count equals the
	// trained knowledge base exactly.
	stats, err := http.Get(base2 + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer stats.Body.Close()
	var doc struct {
		Durability *struct {
			SyncPolicy string `json:"sync_policy"`
			Recovery   struct {
				Recovered bool     `json:"recovered"`
				Templates int      `json:"recovered_templates"`
				Rerouted  bool     `json:"rerouted"`
				Epochs    []uint64 `json:"epochs"`
			} `json:"recovery"`
		} `json:"durability"`
	}
	if err := json.NewDecoder(stats.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Durability == nil {
		t.Fatal("restarted helper serves no durability stats")
	}
	rec := doc.Durability.Recovery
	if !rec.Recovered || rec.Rerouted {
		t.Fatalf("recovery = %+v, want clean adoption of the crashed generation", rec)
	}
	if rec.Templates != trained.KB().Size() {
		t.Errorf("recovered %d templates, want the trained KB's %d (zero relearning)",
			rec.Templates, trained.KB().Size())
	}
	var total uint64
	for _, e := range rec.Epochs {
		total += e
	}
	if total < before.KBEpoch {
		t.Errorf("recovered epoch vector %v sums below the pre-crash epoch %d", rec.Epochs, before.KBEpoch)
	}
}
