package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"galo/internal/kb"
	"galo/internal/qgm"
)

// shardedTrainedSystem clones the trained fixture knowledge base into a
// fresh system with four KB shards (the PR 3 serving-bench scenario, scaled
// out).
func shardedTrainedSystem(t *testing.T, cfg func(*Config)) *System {
	t.Helper()
	trained := trainedSystem(t)
	path := filepath.Join(t.TempDir(), "kb.nt")
	if err := trained.SaveKB(path); err != nil {
		t.Fatal(err)
	}
	c := trained.Config
	c.Shards = 4
	if cfg != nil {
		cfg(&c)
	}
	sys := NewSystem(coreDB, c)
	t.Cleanup(sys.Close)
	if err := sys.LoadKB(path); err != nil {
		t.Fatal(err)
	}
	if got := sys.KB().Shards(); got != 4 {
		t.Fatalf("Shards = %d, want 4", got)
	}
	if sys.KB().Size() != trained.KB().Size() {
		t.Fatalf("sharded KB has %d templates, want %d", sys.KB().Size(), trained.KB().Size())
	}
	return sys
}

// syntheticTemplateForShard synthesizes a template routed to the wanted
// shard by varying a join-chain shape until the KB's router agrees.
func syntheticTemplateForShard(t *testing.T, knowledge *kb.KB, want int) *kb.Template {
	t.Helper()
	ops := []qgm.OpType{qgm.OpHSJOIN, qgm.OpNLJOIN, qgm.OpMSJOIN}
	for joins := 1; joins < 8; joins++ {
		for variant := 0; variant < 64; variant++ {
			name := func(i int) string { return fmt.Sprintf("SYN%d_%d_T%d", joins, variant, i) }
			cur := &qgm.Node{Op: qgm.OpTBSCAN, Table: name(0), TableInstance: name(0), EstCardinality: 1000}
			for j := 0; j < joins; j++ {
				inner := &qgm.Node{Op: qgm.OpIXSCAN, Table: name(j + 1), TableInstance: name(j + 1), Index: "IX", EstCardinality: 100}
				cur = &qgm.Node{Op: ops[(variant+j)%len(ops)], Outer: cur, Inner: inner, EstCardinality: 500}
			}
			plan := qgm.NewPlan(cur)
			problem := plan.Root.Outer
			bounds := map[int]kb.Range{}
			problem.Walk(func(n *qgm.Node) { bounds[n.ID] = kb.Range{Lo: n.EstCardinality / 10, Hi: n.EstCardinality * 10} })
			guideline := "<OPTGUIDELINES><HSJOIN>"
			for i := 0; i <= joins; i++ {
				guideline += fmt.Sprintf("<TBSCAN TABID='TABLE_%d'/>", i+1)
			}
			guideline += "</HSJOIN></OPTGUIDELINES>"
			tmpl := &kb.Template{Problem: problem, Bounds: bounds, GuidelineXML: guideline, Improvement: 0.2, Structural: true}
			if knowledge.ShardOf(tmpl) == want {
				return tmpl
			}
		}
	}
	t.Fatalf("no synthetic shape routes to shard %d", want)
	return nil
}

// TestShardedPublicationPreservesRoutinizedCache is the acceptance check of
// the sharded knowledge base: with 4 shards and the trained serving
// scenario, a template publication on one shard must not invalidate
// routinized cache entries served from the other shards — the repeat
// request stays all-cache-hits, and only the publishing shard's epoch moves.
func TestShardedPublicationPreservesRoutinizedCache(t *testing.T) {
	sys := shardedTrainedSystem(t, nil)

	// Warm the routinization cache and record the fan-out profile.
	first, err := sys.Reoptimize(coreMatchedQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Matches) == 0 {
		t.Fatal("trained query no longer matches under sharding")
	}
	warm, err := sys.Reoptimize(coreMatchedQuery)
	if err != nil {
		t.Fatal(err)
	}
	if warm.ProbeStats.CacheHits != warm.ProbeStats.Probes {
		t.Fatalf("warm pass not routinized: %d/%d probes cached",
			warm.ProbeStats.CacheHits, warm.ProbeStats.Probes)
	}

	// Publish a template on a shard the plan's probes never touched.
	probes := sys.matchingEngine().ProbesByShard()
	target := -1
	for i, n := range probes {
		if n == 0 {
			target = i
			break
		}
	}
	if target == -1 {
		t.Skip("plan probed every shard; no untouched shard to publish on")
	}
	knowledge := sys.KB()
	before := knowledge.Epochs()
	if _, err := knowledge.Add(syntheticTemplateForShard(t, knowledge, target)); err != nil {
		t.Fatal(err)
	}
	after := knowledge.Epochs()
	for i := range after {
		bumped := after[i] != before[i]
		if bumped != (i == target) {
			t.Errorf("shard %d epoch %d -> %d (publishing shard %d)", i, before[i], after[i], target)
		}
	}

	// The repeat request must still be served entirely from the cache: the
	// publication belongs to another shard's epoch.
	repeat, err := sys.Reoptimize(coreMatchedQuery)
	if err != nil {
		t.Fatal(err)
	}
	if repeat.ProbeStats.CacheHits != repeat.ProbeStats.Probes {
		t.Errorf("publication on shard %d invalidated other shards' cache: %d/%d probes cached",
			target, repeat.ProbeStats.CacheHits, repeat.ProbeStats.Probes)
	}
	if len(repeat.Matches) != len(first.Matches) {
		t.Errorf("matches changed across an unrelated publication: %d -> %d",
			len(first.Matches), len(repeat.Matches))
	}
}

// statsOf fetches and decodes GET /stats.
func statsOf(t *testing.T, url string) statsResponse {
	t.Helper()
	resp, err := http.Get(url + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	return doc
}

// TestReoptProbeBudgetExhaustion pins the per-client admission control:
// when a client's probe budget is spent, /reopt answers 429 and the
// backpressure counter surfaces in /stats — while other clients are still
// admitted.
func TestReoptProbeBudgetExhaustion(t *testing.T) {
	db := coreDBForConfig(t)
	cfg := DefaultConfig()
	cfg.Admission.ProbeBudget = 1
	cfg.Admission.RefillPerSecond = 1e-9 // effectively no refill within the test
	sys := NewSystem(db, cfg)
	defer sys.Close()
	srv := httptest.NewServer(sys.APIHandler())
	defer srv.Close()

	sql := "SELECT ss_quantity FROM store_sales, date_dim WHERE ss_sold_date_sk = d_date_sk"
	post := func(client string) *http.Response {
		payload, _ := json.Marshal(ReoptRequest{SQL: sql})
		req, _ := http.NewRequest(http.MethodPost, srv.URL+"/reopt", bytes.NewReader(payload))
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Galo-Client", client)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	if resp := post("tenant-a"); resp.StatusCode != http.StatusOK {
		t.Fatalf("first request: status %d, want 200", resp.StatusCode)
	}
	resp := post("tenant-a")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("request after budget exhaustion: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After")
	}
	// Budgets are per client: another tenant is still admitted.
	if resp := post("tenant-b"); resp.StatusCode != http.StatusOK {
		t.Errorf("other client: status %d, want 200", resp.StatusCode)
	}

	stats := statsOf(t, srv.URL)
	if stats.Admission.ThrottledTotal < 1 {
		t.Errorf("throttled_total = %d, want >= 1", stats.Admission.ThrottledTotal)
	}
	if stats.Admission.ProbeBudget != 1 {
		t.Errorf("probe_budget = %d, want 1", stats.Admission.ProbeBudget)
	}
}

// TestReoptShedsWhenMatcherSaturated pins the concurrency cap: requests
// beyond MaxConcurrent are shed with 429 and counted.
func TestReoptShedsWhenMatcherSaturated(t *testing.T) {
	db := coreDBForConfig(t)
	cfg := DefaultConfig()
	cfg.Admission.MaxConcurrent = 1
	sys := NewSystem(db, cfg)
	defer sys.Close()
	srv := httptest.NewServer(sys.APIHandler())
	defer srv.Close()

	sql := "SELECT ss_quantity FROM store_sales, date_dim WHERE ss_sold_date_sk = d_date_sk"
	post := func() int {
		payload, _ := json.Marshal(ReoptRequest{SQL: sql})
		resp, err := http.Post(srv.URL+"/reopt", "application/json", bytes.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	// Occupy the only slot, as a long-running request would.
	sys.admission.inFlight.Add(1)
	if status := post(); status != http.StatusTooManyRequests {
		t.Fatalf("saturated matcher: status %d, want 429", status)
	}
	stats := statsOf(t, srv.URL)
	if stats.Admission.ShedTotal < 1 {
		t.Errorf("shed_total = %d, want >= 1", stats.Admission.ShedTotal)
	}
	if stats.Admission.InFlight != 1 {
		t.Errorf("in_flight = %d, want 1", stats.Admission.InFlight)
	}
	// Slot released: admitted again.
	sys.admission.inFlight.Add(-1)
	if status := post(); status != http.StatusOK {
		t.Errorf("after release: status %d, want 200", status)
	}
}

// TestConcurrentShardPublicationsDoNotCrossServe race-gates the per-shard
// publication contract (run with -race): publications racing onto two
// shards — the same kb.Add path online promotion publishes through — must
// never stall concurrent readers whose probes route to other shards, never
// bump the readers' shard epochs, and never invalidate their routinized
// entries. A second phase adds wholesale LoadKB replacement to the race.
func TestConcurrentShardPublicationsDoNotCrossServe(t *testing.T) {
	sys := shardedTrainedSystem(t, nil)
	path := filepath.Join(t.TempDir(), "kb.nt")
	if err := sys.SaveKB(path); err != nil {
		t.Fatal(err)
	}

	// Warm the cache and find two shards the reader's probes never touch.
	if _, err := sys.Reoptimize(coreMatchedQuery); err != nil {
		t.Fatal(err)
	}
	probes := sys.matchingEngine().ProbesByShard()
	var untouched []int
	for i, n := range probes {
		if n == 0 {
			untouched = append(untouched, i)
		}
	}
	if len(untouched) < 2 {
		t.Skipf("reader probes %v leave %d untouched shards, need 2", probes, len(untouched))
	}
	shardA, shardB := untouched[0], untouched[1]
	knowledge := sys.KB()
	epochsBefore := knowledge.Epochs()

	// Phase 1: two publishers race readers; no KB replacement, so every
	// reader pass must be a pure cache hit — the publications belong to
	// other shards' epochs.
	var wg sync.WaitGroup
	for _, target := range []int{shardA, shardB} {
		wg.Add(1)
		go func(target int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if _, err := knowledge.Add(syntheticTemplateForShard(t, knowledge, target)); err != nil {
					t.Errorf("Add to shard %d: %v", target, err)
				}
			}
		}(target)
	}
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				res, err := sys.Reoptimize(coreMatchedQuery)
				if err != nil {
					t.Errorf("Reoptimize: %v", err)
					return
				}
				if res.ProbeStats.CacheHits != res.ProbeStats.Probes {
					t.Errorf("reader lost cache entries to a foreign-shard publication: %d/%d",
						res.ProbeStats.CacheHits, res.ProbeStats.Probes)
				}
			}
		}()
	}
	wg.Wait()
	epochsAfter := knowledge.Epochs()
	for i := range epochsAfter {
		published := i == shardA || i == shardB
		if published && epochsAfter[i] == epochsBefore[i] {
			t.Errorf("publishing shard %d epoch did not move", i)
		}
		if !published && epochsAfter[i] != epochsBefore[i] {
			t.Errorf("unrelated shard %d epoch moved %d -> %d", i, epochsBefore[i], epochsAfter[i])
		}
	}

	// Phase 2: add wholesale LoadKB replacement to the race. In-flight
	// readers finish against the KB they pinned; the run must stay
	// race-free and deadlock-free, and quiesce to a matching KB.
	var wg2 sync.WaitGroup
	wg2.Add(1)
	go func() {
		defer wg2.Done()
		for i := 0; i < 4; i++ {
			if err := sys.LoadKB(path); err != nil {
				t.Errorf("LoadKB: %v", err)
			}
		}
	}()
	for _, target := range []int{shardA, shardB} {
		wg2.Add(1)
		go func(target int) {
			defer wg2.Done()
			for i := 0; i < 10; i++ {
				kbNow := sys.KB()
				if _, err := kbNow.Add(syntheticTemplateForShard(t, kbNow, target)); err != nil {
					t.Errorf("Add to shard %d: %v", target, err)
				}
			}
		}(target)
	}
	for c := 0; c < 4; c++ {
		wg2.Add(1)
		go func() {
			defer wg2.Done()
			for i := 0; i < 8; i++ {
				if _, err := sys.Reoptimize(coreMatchedQuery); err != nil {
					t.Errorf("Reoptimize during LoadKB race: %v", err)
					return
				}
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg2.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("publication race stalled")
	}

	res, err := sys.Reoptimize(coreMatchedQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) == 0 {
		t.Error("trained query no longer matches after the publication race")
	}
}
