// Package core wires GALO's components — the transformation engine, the
// learning engine, the matching engine and the knowledge base — into the two
// workflows of the paper's Figure 2: offline learning over a workload, and
// online re-optimization of incoming queries.
//
// Unlike the paper's batch experiments, this System is built as an always-on
// service: the knowledge base is sharded across independent epoch-snapshot
// stores that concurrent matchers pin per-shard snapshots of, workload
// re-optimization fans out across a bounded worker pool, identical in-flight
// knowledge base probes collapse into one evaluation, and — when enabled —
// an online incremental learner turns executed plans' actual-vs-estimated
// cardinality gaps into new templates for the next epoch of the owning
// shard, with no batch relearn. See DESIGN.md, "Serving architecture" and
// "Sharded knowledge base".
//
// # Concurrency contract
//
// A System is safe for concurrent use: Reoptimize may race Learn, LoadKB
// and the online learner's epoch publications. The knowledge base pointer
// is swapped wholesale by LoadKB under the system mutex; in-flight matchers
// finish against the KB (and shard snapshots) they already pinned, while
// new plans see the fresh one. The matching engine — and its routinization
// cache — is shared across queries and rebuilt only when the KB object is
// replaced; publications within one KB invalidate cache entries through the
// owning shard's epoch alone.
//
// The HTTP surface (server.go: /reopt, /query, /data, /version, /stats,
// /healthz) resolves the live knowledge base per request. /reopt applies
// admission control (AdmissionOptions): a global in-flight cap sheds load
// when the matcher saturates, and per-client probe budgets throttle
// monopolizing clients — both answer 429 and surface backpressure counters
// in /stats. The online learner's bounded queue (learning.OnlineOptions.
// QueueSize) is the third backpressure stage: serving latency never waits
// on learning.
//
// This is the system a deployment interacts with; the root package galo
// re-exports it as the public API.
package core
