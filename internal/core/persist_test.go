package core

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"galo/internal/wal"
)

// durableConfig returns a Config with persistence into dir and cheap
// learning knobs; SyncAlways keeps every test publication durable without
// timing games.
func durableConfig(dir string, shards int) Config {
	cfg := DefaultConfig()
	cfg.Shards = shards
	cfg.DataDir = dir
	cfg.Sync = wal.SyncAlways
	return cfg
}

// TestDataDirRestartContinuesEpochLineage pins the acceptance contract at
// the core layer: a system restarted over the same data directory serves the
// same templates at the SAME per-shard epoch vector, and new publications
// continue the lineage instead of restarting it.
func TestDataDirRestartContinuesEpochLineage(t *testing.T) {
	dir := t.TempDir()
	db := coreDBForConfig(t)

	sys := NewSystem(db, durableConfig(dir, 2))
	if info, err := sys.OpenDataDir(); err != nil || info == nil || info.Recovered {
		t.Fatalf("fresh OpenDataDir: info=%+v err=%v", info, err)
	}
	for i := 0; i < 6; i++ {
		if _, err := sys.KB().Add(syntheticTemplate(i)); err != nil {
			t.Fatal(err)
		}
	}
	wantSize := sys.KB().Size()
	wantEpochs := sys.KB().Epochs()
	wantNT := sys.KB().NTriples()
	sys.Close()

	again := NewSystem(db, durableConfig(dir, 2))
	info, err := again.OpenDataDir()
	if err != nil {
		t.Fatalf("recovering OpenDataDir: %v", err)
	}
	defer again.Close()
	if !info.Recovered || info.Rerouted {
		t.Fatalf("info = %+v, want recovered without re-routing", info)
	}
	if info.Templates != wantSize {
		t.Errorf("recovered %d templates, want %d", info.Templates, wantSize)
	}
	if !reflect.DeepEqual(again.KB().Epochs(), wantEpochs) {
		t.Errorf("epoch vector %v, want the pre-shutdown %v", again.KB().Epochs(), wantEpochs)
	}
	if again.KB().NTriples() != wantNT {
		t.Error("recovered knowledge base content diverged")
	}

	// The lineage continues: one more publication moves exactly one shard's
	// epoch forward from the recovered vector.
	if _, err := again.KB().Add(syntheticTemplate(100)); err != nil {
		t.Fatal(err)
	}
	moved := 0
	for i, e := range again.KB().Epochs() {
		if e < wantEpochs[i] {
			t.Errorf("shard %d epoch went backwards: %d < %d", i, e, wantEpochs[i])
		}
		if e > wantEpochs[i] {
			moved++
		}
	}
	if moved != 1 {
		t.Errorf("%d shards moved after one publication, want 1", moved)
	}
}

// TestDataDirShardCountChangeReroutes pins the fallback: a data directory
// written under one shard count boots under another by re-routing every
// template (content survives; the epoch lineage restarts), and the re-routed
// directory adopts cleanly on the next restart.
func TestDataDirShardCountChangeReroutes(t *testing.T) {
	dir := t.TempDir()
	db := coreDBForConfig(t)

	sys := NewSystem(db, durableConfig(dir, 4))
	if _, err := sys.OpenDataDir(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := sys.KB().Add(syntheticTemplate(i)); err != nil {
			t.Fatal(err)
		}
	}
	wantSize := sys.KB().Size()
	sys.Close()

	narrow := NewSystem(db, durableConfig(dir, 2))
	info, err := narrow.OpenDataDir()
	if err != nil {
		t.Fatalf("OpenDataDir across shard-count change: %v", err)
	}
	if !info.Recovered || !info.Rerouted {
		t.Fatalf("info = %+v, want recovered with re-routing", info)
	}
	if narrow.KB().Size() != wantSize {
		t.Errorf("re-routed KB holds %d templates, want %d", narrow.KB().Size(), wantSize)
	}
	if narrow.KB().Shards() != 2 {
		t.Errorf("re-routed KB has %d shards, want 2", narrow.KB().Shards())
	}
	narrow.Close()

	// Third boot, same shard count: straight adoption, no re-route.
	final := NewSystem(db, durableConfig(dir, 2))
	info, err = final.OpenDataDir()
	if err != nil {
		t.Fatal(err)
	}
	defer final.Close()
	if !info.Recovered || info.Rerouted {
		t.Fatalf("info = %+v, want clean adoption after the re-routed generation", info)
	}
	if final.KB().Size() != wantSize {
		t.Errorf("final KB holds %d templates, want %d", final.KB().Size(), wantSize)
	}
}

// TestLoadKBRebindsDataDir pins the replacement contract: LoadKB over an
// open data directory wipes the old generation and persists the loaded
// knowledge base, so a restart recovers the REPLACEMENT, not the past.
func TestLoadKBRebindsDataDir(t *testing.T) {
	db := coreDBForConfig(t)

	// A throwaway in-memory system produces the KB file to load.
	donor := NewSystem(db, DefaultConfig())
	for i := 50; i < 53; i++ {
		if _, err := donor.KB().Add(syntheticTemplate(i)); err != nil {
			t.Fatal(err)
		}
	}
	kbFile := filepath.Join(t.TempDir(), "donor.nt")
	if err := donor.SaveKB(kbFile); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	sys := NewSystem(db, durableConfig(dir, 2))
	if _, err := sys.OpenDataDir(); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.KB().Add(syntheticTemplate(1)); err != nil { // pre-LoadKB generation
		t.Fatal(err)
	}
	if err := sys.LoadKB(kbFile); err != nil {
		t.Fatalf("LoadKB over an open data dir: %v", err)
	}
	if _, err := sys.KB().Add(syntheticTemplate(60)); err != nil { // post-LoadKB publication
		t.Fatal(err)
	}
	wantSize := sys.KB().Size()
	wantEpochs := sys.KB().Epochs()
	sys.Close()

	again := NewSystem(db, durableConfig(dir, 2))
	info, err := again.OpenDataDir()
	if err != nil {
		t.Fatal(err)
	}
	defer again.Close()
	if info.Templates != wantSize {
		t.Errorf("recovered %d templates, want the replacement generation's %d", info.Templates, wantSize)
	}
	if !reflect.DeepEqual(again.KB().Epochs(), wantEpochs) {
		t.Errorf("epoch vector %v, want %v", again.KB().Epochs(), wantEpochs)
	}
	if again.KB().FindBySignature(syntheticTemplate(1).Problem.Signature()) != nil {
		t.Error("pre-LoadKB template survived the rebind — the old generation leaked")
	}
	if again.KB().FindBySignature(syntheticTemplate(50).Problem.Signature()) == nil {
		t.Error("donor template missing after rebound restart")
	}
	if again.KB().FindBySignature(syntheticTemplate(60).Problem.Signature()) == nil {
		t.Error("post-LoadKB publication missing after restart")
	}
}

// TestPersistenceDegradesButServes pins the fault contract: a disk failure
// mid-serving flips the system to in-memory mode — publications and matching
// keep working, /healthz reports degraded (still 200), /stats counts the
// errors — instead of failing writes or crashing.
func TestPersistenceDegradesButServes(t *testing.T) {
	dir := t.TempDir()
	db := coreDBForConfig(t)
	ffs := wal.NewFaultFS(nil)
	cfg := durableConfig(dir, 2)
	cfg.WALFS = ffs
	sys := NewSystem(db, cfg)
	if _, err := sys.OpenDataDir(); err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if _, err := sys.KB().Add(syntheticTemplate(0)); err != nil {
		t.Fatal(err)
	}
	if sys.PersistenceDegraded() {
		t.Fatal("degraded before any fault")
	}

	ffs.FailWritesFrom(ffs.Writes() + 1)
	if _, err := sys.KB().Add(syntheticTemplate(1)); err != nil {
		t.Fatalf("publication failed under disk fault: %v", err)
	}
	if !sys.PersistenceDegraded() {
		t.Fatal("disk fault did not degrade persistence")
	}
	if _, err := sys.KB().Add(syntheticTemplate(2)); err != nil {
		t.Fatalf("degraded-mode publication failed: %v", err)
	}
	if sys.KB().Size() != 3 {
		t.Errorf("KB size %d, want 3 — serving must continue in-memory", sys.KB().Size())
	}

	srv := httptest.NewServer(sys.APIHandler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz status %d while degraded, want 200 (still serving)", resp.StatusCode)
	}
	var health struct {
		Status      string `json:"status"`
		Persistence string `json:"persistence"`
		Draining    bool   `json:"draining"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "degraded" || health.Persistence != "degraded" || health.Draining {
		t.Errorf("healthz = %+v, want degraded persistence, not draining", health)
	}

	stats, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer stats.Body.Close()
	var body struct {
		Durability *struct {
			Degraded   bool   `json:"degraded"`
			DiskErrors uint64 `json:"disk_errors"`
			WALAppends uint64 `json:"wal_appends"`
		} `json:"durability"`
	}
	if err := json.NewDecoder(stats.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Durability == nil {
		t.Fatal("/stats has no durability section with an open data dir")
	}
	if !body.Durability.Degraded || body.Durability.DiskErrors == 0 || body.Durability.WALAppends == 0 {
		t.Errorf("durability = %+v, want degraded with counted errors and pre-fault appends", body.Durability)
	}
}

// TestGracefulShutdownDrains pins the lifecycle satellite: Shutdown flips
// the drain gate (503 + Retry-After for everything but /healthz), drains the
// tracked server, and Serve returns nil.
func TestGracefulShutdownDrains(t *testing.T) {
	db := coreDBForConfig(t)
	sys := NewSystem(db, DefaultConfig())

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- sys.ServeListener(l) }()
	base := "http://" + l.Addr().String()

	waitUp := func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			resp, err := http.Get(base + "/healthz")
			if err == nil {
				resp.Body.Close()
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("server never came up: %v", err)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	waitUp()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := sys.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("ServeListener returned %v after graceful shutdown, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ServeListener did not return after Shutdown")
	}

	// The drain gate outlives the listener: a second handler surface (e.g.
	// httptest against APIHandler) now answers 503 everywhere but /healthz.
	srv := httptest.NewServer(sys.APIHandler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/version")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/version while draining: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("drain rejection carries no Retry-After")
	}
	hz, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hz.Body.Close()
	if hz.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/healthz while draining: %d, want 503 so balancers stop routing", hz.StatusCode)
	}
	var health struct {
		Draining bool `json:"draining"`
	}
	if err := json.NewDecoder(hz.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if !health.Draining {
		t.Error("healthz does not report draining")
	}
}
