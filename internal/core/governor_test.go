package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"galo/internal/workload/tpcds"
)

// TestGovernorPassthrough pins the off switch: a zero budget (and a nil
// governor) admit immediately with the requested parallelism and keep no
// state.
func TestGovernorPassthrough(t *testing.T) {
	for name, g := range map[string]*execGovernor{
		"nil":         nil,
		"zero-budget": newExecGovernor(0),
	} {
		grant := g.acquire(1<<40, 8)
		if grant.workers != 8 {
			t.Errorf("%s: passthrough grant got %d workers, want 8", name, grant.workers)
		}
		grant.release()
		grant.release() // idempotent
		if st := g.stats(); st != (GovernorStats{}) {
			t.Errorf("%s: passthrough governor kept state: %+v", name, st)
		}
	}
}

// TestGovernorQueuesUntilRelease pins the blocking rule: a second execution
// that does not fit the remaining budget waits until the first releases.
func TestGovernorQueuesUntilRelease(t *testing.T) {
	g := newExecGovernor(100)
	first := g.acquire(60, 4)
	if first.workers != 4 {
		t.Fatalf("first grant degraded to %d workers", first.workers)
	}

	admitted := make(chan *execGrant)
	go func() { admitted <- g.acquire(60, 4) }()
	select {
	case <-admitted:
		t.Fatal("second 60-byte execution admitted while 60/100 reserved")
	case <-time.After(50 * time.Millisecond):
	}
	if st := g.stats(); st.ReservedBytes != 60 || st.Running != 1 {
		t.Fatalf("pre-release stats: %+v", st)
	}

	first.release()
	second := <-admitted
	if second.workers != 4 {
		t.Errorf("queued grant degraded to %d workers", second.workers)
	}
	st := g.stats()
	if st.ReservedBytes != 60 || st.Running != 1 || st.AdmittedTotal != 2 || st.QueuedTotal != 1 {
		t.Errorf("post-release stats: %+v", st)
	}
	second.release()
	if st := g.stats(); st.ReservedBytes != 0 || st.Running != 0 {
		t.Errorf("final stats not drained: %+v", st)
	}
}

// TestGovernorDegradesOversizedPlan pins the degraded path: an estimate larger
// than the whole budget waits for the system to go idle, then runs alone and
// serial with the entire budget reserved — and regular admissions hold back
// while it waits, so it cannot be starved by a stream of small plans.
func TestGovernorDegradesOversizedPlan(t *testing.T) {
	g := newExecGovernor(100)
	small := g.acquire(40, 4)

	bigAdmitted := make(chan *execGrant)
	go func() { bigAdmitted <- g.acquire(1000, 4) }()
	select {
	case <-bigAdmitted:
		t.Fatal("oversized execution admitted while another was running")
	case <-time.After(50 * time.Millisecond):
	}

	// A small plan that would fit the free budget must still wait behind the
	// pending big one (anti-starvation).
	lateAdmitted := make(chan *execGrant)
	go func() { lateAdmitted <- g.acquire(10, 4) }()
	select {
	case <-lateAdmitted:
		t.Fatal("small execution jumped the queue past a pending oversized one")
	case <-time.After(50 * time.Millisecond):
	}

	small.release()
	big := <-bigAdmitted
	if big.workers != 1 {
		t.Errorf("oversized grant got %d workers, want 1 (degraded serial)", big.workers)
	}
	st := g.stats()
	if st.ReservedBytes != 100 || st.DegradedTotal != 1 {
		t.Errorf("degraded stats: %+v", st)
	}
	big.release()
	late := <-lateAdmitted
	late.release()
	if st := g.stats(); st.AdmittedTotal != 3 || st.QueuedTotal != 2 || st.Running != 0 {
		t.Errorf("final stats: %+v", st)
	}
}

// TestGovernorConcurrentLoadNoDeadlock hammers the governor with a mix of
// fitting and oversized acquisitions from many goroutines; every one must be
// admitted and released, the reservation must never exceed the budget, and
// the whole run must finish (deadlock-freedom under -race -cpu 1,4).
func TestGovernorConcurrentLoadNoDeadlock(t *testing.T) {
	const budget = 1000
	g := newExecGovernor(budget)
	var inFlight atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				est := int64(100 + 37*((i+j)%9)) // 100..396
				if (i+j)%7 == 0 {
					est = budget * 2 // oversized: exercises the degraded path
				}
				grant := g.acquire(est, 4)
				if r := inFlight.Add(grant.bytes); r > budget && grant.bytes != 0 {
					t.Errorf("reserved bytes exceeded budget: %d > %d", r, budget)
				}
				time.Sleep(time.Duration((i+j)%3) * time.Millisecond)
				inFlight.Add(-grant.bytes)
				grant.release()
			}
		}(i)
	}
	wg.Wait()
	st := g.stats()
	if st.Running != 0 || st.ReservedBytes != 0 {
		t.Fatalf("governor not drained after load: %+v", st)
	}
	if st.AdmittedTotal != 32*20 {
		t.Fatalf("admitted %d executions, want %d", st.AdmittedTotal, 32*20)
	}
	if st.DegradedTotal == 0 || st.QueuedTotal == 0 {
		t.Fatalf("load did not exercise queue/degrade paths: %+v", st)
	}
}

// TestSystemExecuteUnderTinyBudget pins the end-to-end behaviour: a system
// with parallel workers and a budget far below any plan's estimate still
// executes correctly (degraded to serial), with identical rows and simulated
// cost to an ungoverned serial system.
func TestSystemExecuteUnderTinyBudget(t *testing.T) {
	db, err := tpcds.Generate(tpcds.GenOptions{Seed: 7, Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	q := tpcds.Fig7Query()
	plain := NewSystem(db, DefaultConfig())
	refPlan, err := plain.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := plain.Execute(refPlan, q)
	if err != nil {
		t.Fatal(err)
	}

	cfg := DefaultConfig()
	cfg.Exec.Workers = 4
	cfg.Exec.MemBudgetBytes = 1 // every plan is oversized: always degraded
	gov := NewSystem(db, cfg)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			plan, err := gov.Optimize(q)
			if err != nil {
				errs <- err
				return
			}
			res, err := gov.Execute(plan, q)
			if err != nil {
				errs <- err
				return
			}
			if len(res.Rows) != len(ref.Rows) || res.Stats.ElapsedMillis != ref.Stats.ElapsedMillis {
				t.Errorf("governed run diverged: %d rows / %v ms, want %d / %v",
					len(res.Rows), res.Stats.ElapsedMillis, len(ref.Rows), ref.Stats.ElapsedMillis)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := gov.ExecutorStats()
	if st.Governor.AdmittedTotal != 8 || st.Governor.DegradedTotal != 8 {
		t.Errorf("governor counters: %+v", st.Governor)
	}
	if st.Governor.Running != 0 || st.Governor.ReservedBytes != 0 {
		t.Errorf("governor not drained: %+v", st.Governor)
	}
	if st.Workers != 4 {
		t.Errorf("ExecutorStats workers = %d, want 4", st.Workers)
	}
}
