package core

import (
	"sort"
	"sync"
	"sync/atomic"

	"galo/internal/kb"
	"galo/internal/matching"
	"galo/internal/sqlparser"
)

// TenancyOptions configures per-tenant knowledge base namespaces on the
// serving API. Tenants are identified the same way admission control keys
// its probe buckets: the X-Galo-Client header (or remote host) — so one
// `galo serve` process can hold many isolated template namespaces.
//
// With Enabled set, each tenant's /reopt traffic matches against the
// tenant's own sharded knowledge base (created lazily, in-memory, sharded
// per Config.Shards like the shared one). Templates learned online from
// executed requests are promoted into the *shared* namespace; tenants see
// them only when ShareTemplates opts into the cross-tenant fallback.
// Per-tenant request/probe/throttle counters are always collected — even
// with Enabled false — and reported as per-tenant rows in /stats.
type TenancyOptions struct {
	// Enabled gives each client identity its own knowledge base namespace
	// for matching. Requires the in-process KB (ignored with RemoteKB).
	Enabled bool
	// ShareTemplates lets a tenant request that found no match in its own
	// namespace fall back to the shared knowledge base — opt-in
	// cross-tenant template sharing.
	ShareTemplates bool
	// MaxTenants bounds the per-tenant state map. Identities beyond the cap
	// share one overflow row (and, with Enabled, the shared namespace), so
	// an attacker minting fresh identities cannot grow memory without
	// bound while counter sums stay exact. 0 means DefaultMaxTenants.
	MaxTenants int
}

// DefaultMaxTenants bounds the tenant map when TenancyOptions.MaxTenants is 0.
const DefaultMaxTenants = 256

// OverflowTenant is the /stats row name aggregating identities beyond
// MaxTenants.
const OverflowTenant = "(overflow)"

// tenantSlot is one client identity's serving state: its (optional)
// knowledge base namespace + matching engine and its /stats counters.
type tenantSlot struct {
	name    string
	kb      *kb.KB // nil unless tenancy namespaces are enabled
	matcher *matching.Engine

	requests  atomic.Int64
	probes    atomic.Int64
	cacheHits atomic.Int64
	matched   atomic.Int64
	shared    atomic.Int64 // requests answered via the ShareTemplates fallback
	throttled atomic.Int64
	shed      atomic.Int64
}

// tenancyState is the runtime side of TenancyOptions, embedded in System.
type tenancyState struct {
	mu       sync.Mutex
	slots    map[string]*tenantSlot
	overflow *tenantSlot
}

// maxTenants returns the effective tenant-map bound.
func (s *System) maxTenants() int {
	if n := s.Config.Tenancy.MaxTenants; n > 0 {
		return n
	}
	return DefaultMaxTenants
}

// tenantSlot returns (creating if needed) the slot for a client identity.
// Identities beyond MaxTenants share the overflow slot, which has no
// namespace of its own.
func (s *System) tenantSlot(client string) *tenantSlot {
	t := &s.tenants
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.slots == nil {
		t.slots = map[string]*tenantSlot{}
	}
	if slot, ok := t.slots[client]; ok {
		return slot
	}
	if len(t.slots) >= s.maxTenants() {
		if t.overflow == nil {
			t.overflow = &tenantSlot{name: OverflowTenant}
		}
		return t.overflow
	}
	slot := &tenantSlot{name: client}
	if s.Config.Tenancy.Enabled && s.Config.RemoteKB == "" {
		slot.kb = kb.NewSharded(s.Config.Shards)
		// Tenant namespaces are isolation domains: they always probe their
		// own local KB, never the shared fleet (shared=false).
		eps, router := s.endpoints(slot.kb, false)
		slot.matcher = matching.NewSharded(s.DB.Catalog, eps, router, s.Config.Matching)
	}
	t.slots[client] = slot
	return slot
}

// TenantKB returns (creating it if needed) a tenant's knowledge base
// namespace, or nil when tenancy namespaces are disabled. Operators seed a
// tenant's templates by merging into it (kb.KB.Merge), the per-tenant
// analogue of ImportKB.
func (s *System) TenantKB(client string) *kb.KB {
	return s.tenantSlot(client).kb
}

// reoptimizeFor runs the online matching workflow in a client's namespace.
// With tenancy namespaces off (or for overflow tenants) it is exactly the
// shared Reoptimize. With namespaces on, the query matches the tenant's own
// knowledge base; when nothing matches and ShareTemplates is set, it falls
// back to the shared namespace. It returns the result, the epoch of the
// namespace that answered, and the probes/cache-hits spent on a discarded
// tenant-namespace pass (so callers charge the full cost).
func (s *System) reoptimizeFor(slot *tenantSlot, q *sqlparser.Query) (res *matching.Result, epoch uint64, extraProbes, extraCacheHits int, err error) {
	if slot.matcher == nil {
		res, err = s.Reoptimize(q)
		return res, s.KB().Epoch(), 0, 0, err
	}
	epoch = slot.kb.Epoch()
	res, err = slot.matcher.Reoptimize(q)
	if err != nil || len(res.Matches) > 0 || !s.Config.Tenancy.ShareTemplates {
		return res, epoch, 0, 0, err
	}
	// Tenant-namespace miss: consult the shared templates, keeping the
	// tenant pass's probe cost on the books.
	extraProbes = res.ProbeStats.Probes
	extraCacheHits = res.ProbeStats.CacheHits
	shared, sharedErr := s.Reoptimize(q)
	if sharedErr != nil {
		return nil, epoch, 0, 0, sharedErr
	}
	if len(shared.Matches) > 0 {
		slot.shared.Add(1)
	}
	return shared, s.KB().Epoch(), extraProbes, extraCacheHits, nil
}

// tenantStat is one tenant's row in /stats. Counter sums across rows
// (including the overflow row) equal the corresponding /reopt totals.
type tenantStat struct {
	Tenant    string `json:"tenant"`
	Requests  int64  `json:"requests"`
	Probes    int64  `json:"probes"`
	CacheHits int64  `json:"cache_hits"`
	Matched   int64  `json:"matched"`
	// SharedMatches counts requests answered by the cross-tenant fallback.
	SharedMatches int64 `json:"shared_matches"`
	Throttled     int64 `json:"throttled"`
	Shed          int64 `json:"shed"`
	// KBEpoch / Templates describe the tenant's namespace (zero without one).
	KBEpoch   uint64 `json:"kb_epoch,omitempty"`
	Templates int    `json:"templates,omitempty"`
}

// tenancyStats is the /stats tenancy section.
type tenancyStats struct {
	Enabled        bool         `json:"enabled"`
	ShareTemplates bool         `json:"share_templates"`
	MaxTenants     int          `json:"max_tenants"`
	Tenants        []tenantStat `json:"tenants,omitempty"`
}

// tenancySnapshot builds the /stats tenancy section: one row per observed
// client identity (sorted by name, overflow last).
func (s *System) tenancySnapshot() tenancyStats {
	out := tenancyStats{
		Enabled:        s.Config.Tenancy.Enabled,
		ShareTemplates: s.Config.Tenancy.ShareTemplates,
		MaxTenants:     s.maxTenants(),
	}
	t := &s.tenants
	t.mu.Lock()
	slots := make([]*tenantSlot, 0, len(t.slots)+1)
	for _, slot := range t.slots {
		slots = append(slots, slot)
	}
	overflow := t.overflow
	t.mu.Unlock()
	sort.Slice(slots, func(i, j int) bool { return slots[i].name < slots[j].name })
	if overflow != nil {
		slots = append(slots, overflow)
	}
	for _, slot := range slots {
		row := tenantStat{
			Tenant:        slot.name,
			Requests:      slot.requests.Load(),
			Probes:        slot.probes.Load(),
			CacheHits:     slot.cacheHits.Load(),
			Matched:       slot.matched.Load(),
			SharedMatches: slot.shared.Load(),
			Throttled:     slot.throttled.Load(),
			Shed:          slot.shed.Load(),
		}
		if slot.kb != nil {
			row.KBEpoch = slot.kb.Epoch()
			row.Templates = slot.kb.Size()
		}
		out.Tenants = append(out.Tenants, row)
	}
	return out
}
