package core

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"galo/internal/fleet"
	"galo/internal/fleet/chaos"
	"galo/internal/kb"
	"galo/internal/learning"
	"galo/internal/workload/tpcds"
)

// chaosFleet slices the trained knowledge base dump across `shards` shard
// groups of `replicas` chaos replicas each — the in-process stand-in for a
// fleet of `galo shard` processes — and returns the gateway options pointed
// at them plus the replicas for kills.
func chaosFleet(t *testing.T, dump string, shards, replicas int) (fleet.Options, [][]*chaos.Replica) {
	t.Helper()
	var opts fleet.Options
	all := make([][]*chaos.Replica, shards)
	for si := 0; si < shards; si++ {
		slice, err := kb.ShardSlice(dump, si, shards)
		if err != nil {
			t.Fatal(err)
		}
		knowledge := kb.New()
		if slice != "" {
			if err := knowledge.LoadNTriples(slice); err != nil {
				t.Fatal(err)
			}
		}
		handler := fleet.NewShardServer(knowledge)
		var urls []string
		for ri := 0; ri < replicas; ri++ {
			r := chaos.NewReplica(handler, nil)
			if err := r.Start(); err != nil {
				t.Fatal(err)
			}
			t.Cleanup(r.Kill)
			all[si] = append(all[si], r)
			urls = append(urls, r.URL())
		}
		opts.Shards = append(opts.Shards, urls)
	}
	opts.Policy = fleet.Policy{
		ProbeTimeout:    2 * time.Second,
		MaxAttempts:     4,
		BackoffBase:     time.Millisecond,
		BackoffCap:      10 * time.Millisecond,
		BreakerCooldown: 100 * time.Millisecond,
		Seed:            11,
	}
	return opts, all
}

// TestFleetGatewayMatchesThroughRemoteShards is the in-process gateway
// acceptance: matching routed through remote replicated shards finds the same
// templates the local KB would, keeps answering after a replica of every
// shard is killed, and reports the gateway's work under /stats "fleet".
func TestFleetGatewayMatchesThroughRemoteShards(t *testing.T) {
	trained := trainedSystem(t)
	opts, reps := chaosFleet(t, trained.KB().NTriples(), 2, 2)

	cfg := DefaultConfig()
	cfg.Shards = 2
	cfg.Fleet = opts
	sys := NewSystem(coreDB, cfg)
	defer sys.Close()

	// Kill one replica of EVERY shard before the first probe: each probe
	// that lands on a dead replica must fail over to the survivor, not
	// surface an error — and the routinization cache must not hide the
	// network (later identical fragments are cache hits, so the kill has to
	// precede the first fan-out to be observable).
	reps[0][0].Kill()
	reps[1][0].Kill()

	res, err := sys.Reoptimize(coreMatchedQuery)
	if err != nil {
		t.Fatalf("Reoptimize through the fleet with replicas down: %v", err)
	}
	if len(res.Matches) == 0 {
		t.Fatalf("fleet-routed matching found no templates (local KB has %d)", trained.KB().Size())
	}
	for _, q := range tpcds.Queries()[:4] {
		if _, err := sys.Reoptimize(q); err != nil {
			t.Fatalf("Reoptimize with a replica down: %v", err)
		}
	}
	srv := httptest.NewServer(sys.APIHandler())
	defer srv.Close()
	statsResp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer statsResp.Body.Close()
	var doc struct {
		Fleet *fleet.Stats `json:"fleet"`
	}
	if err := json.NewDecoder(statsResp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Fleet == nil {
		t.Fatal("/stats has no fleet section with Config.Fleet set")
	}
	if doc.Fleet.Probes == 0 {
		t.Error("fleet stats saw no probes")
	}
	if doc.Fleet.Failovers == 0 {
		t.Error("killed replicas produced no failovers")
	}
	if len(doc.Fleet.Replicas) != 4 {
		t.Errorf("fleet stats report %d replicas, want 4", len(doc.Fleet.Replicas))
	}
}

// TestDrainGateBlocksOnlineObserve is the regression test for the
// drain/learner race: once draining has flipped, an Execute that is still
// finishing must NOT feed the online learner — its observation could publish
// a template after the shutdown flush and final WAL fsync.
func TestDrainGateBlocksOnlineObserve(t *testing.T) {
	trainedSystem(t) // populates coreDB and coreMatchedQuery

	cfg := DefaultConfig()
	cfg.Online = learning.DefaultOnlineOptions()
	sys := NewSystem(coreDB, cfg)
	defer sys.Close()

	plan, err := sys.Optimize(coreMatchedQuery)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Execute(plan, coreMatchedQuery); err != nil {
		t.Fatal(err)
	}
	if got := sys.OnlineStats().Observed; got != 1 {
		t.Fatalf("Observed = %d before drain, want 1", got)
	}

	sys.draining.Store(true)
	if _, err := sys.Execute(plan, coreMatchedQuery); err != nil {
		t.Fatal(err)
	}
	if got := sys.OnlineStats().Observed; got != 1 {
		t.Fatalf("Observed = %d after drain flipped, want still 1 (learner fed during drain)", got)
	}
}

// TestThrottleRetryAfterReflectsRefill pins the 429 Retry-After math: the
// wait must cover the bucket's actual climb back to one whole token at the
// configured refill rate, including debt from chargeProbes.
func TestThrottleRetryAfterReflectsRefill(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Admission.ProbeBudget = 10
	cfg.Admission.RefillPerSecond = 2
	s := &System{Config: cfg}
	t0 := time.Unix(100, 0)

	if ok, _ := s.admitProbes("c", t0); !ok {
		t.Fatal("fresh client rejected")
	}
	s.chargeProbes("c", 15) // tokens = 10 - 15 = -5
	ok, wait := s.admitProbes("c", t0)
	if ok {
		t.Fatal("overdrawn client admitted")
	}
	// (1 - (-5)) tokens at 2/s = 3s.
	if wait != 3*time.Second {
		t.Fatalf("wait = %v, want 3s", wait)
	}
	if ok, _ := s.admitProbes("c", t0.Add(3*time.Second)); !ok {
		t.Fatal("client still rejected after the advertised wait")
	}
}

// TestShedRetryAfterUsesServiceEWMA pins the concurrency-cap 429 estimate:
// queue depth in units of observed service time, spread over the cap, with a
// one-second floor before any request has completed.
func TestShedRetryAfterUsesServiceEWMA(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Admission.MaxConcurrent = 2
	s := &System{Config: cfg}
	if got := s.shedRetryAfter(3); got != time.Second {
		t.Fatalf("pre-EWMA fallback = %v, want 1s", got)
	}
	s.admission.observeService(4 * time.Second)
	if got := s.shedRetryAfter(3); got != 4*time.Second {
		t.Fatalf("one queued slot = %v, want 4s", got)
	}
	if got := s.shedRetryAfter(5); got != 8*time.Second {
		t.Fatalf("three queued slots = %v, want 8s", got)
	}
	// The EWMA converges toward faster service.
	for i := 0; i < 40; i++ {
		s.admission.observeService(100 * time.Millisecond)
	}
	if got := s.shedRetryAfter(3); got != time.Second {
		t.Fatalf("fast service floor = %v, want the 1s floor", got)
	}
}

// TestThrottledResponseCarriesComputedRetryAfter drives the header end to
// end: exhaust a client's probe budget over HTTP and require a Retry-After
// that is a whole number of seconds at least as long as the refill needs.
func TestThrottledResponseCarriesComputedRetryAfter(t *testing.T) {
	trainedSystem(t)
	cfg := DefaultConfig()
	cfg.Admission.ProbeBudget = 1
	cfg.Admission.RefillPerSecond = 0.1 // a whole token takes 10s
	sys := NewSystem(coreDB, cfg)
	defer sys.Close()
	srv := httptest.NewServer(sys.APIHandler())
	defer srv.Close()

	var last *http.Response
	for i := 0; i < 8; i++ {
		resp := postReoptRaw(t, srv.URL, coreMatchedQuery.SQL())
		if resp.StatusCode == http.StatusTooManyRequests {
			last = resp
			break
		}
		resp.Body.Close()
	}
	if last == nil {
		t.Fatal("probe budget of 1 never throttled")
	}
	defer last.Body.Close()
	secs, err := strconv.Atoi(last.Header.Get("Retry-After"))
	if err != nil {
		t.Fatalf("Retry-After %q is not delta-seconds: %v", last.Header.Get("Retry-After"), err)
	}
	// The budget was overdrawn by at least one probe at 0.1 tokens/s: the
	// hardcoded pre-fix value of 1 second is impossible here.
	if secs < 2 {
		t.Fatalf("Retry-After = %ds, want the computed refill wait (>= 2s)", secs)
	}
}

func postReoptRaw(t *testing.T, url, sql string) *http.Response {
	t.Helper()
	body, _ := json.Marshal(ReoptRequest{SQL: sql})
	resp, err := http.Post(url+"/reopt", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestHelperFleetShard is NOT a test: it is one remote shard process of the
// fleet kill e2e, run only when TestFleetSurvivesReplicaKillEndToEnd re-execs
// the test binary with GALO_FLEET_HELPER=1. It slices GALO_FLEET_KB for
// GALO_FLEET_SHARD of GALO_FLEET_SHARDS, prints "ADDR host:port", and serves
// until killed — the real `galo shard` role.
func TestHelperFleetShard(t *testing.T) {
	if os.Getenv("GALO_FLEET_HELPER") != "1" {
		t.Skip("helper process for TestFleetSurvivesReplicaKillEndToEnd")
	}
	dump, err := os.ReadFile(os.Getenv("GALO_FLEET_KB"))
	if err != nil {
		t.Fatal(err)
	}
	shard, _ := strconv.Atoi(os.Getenv("GALO_FLEET_SHARD"))
	shards, _ := strconv.Atoi(os.Getenv("GALO_FLEET_SHARDS"))
	slice, err := kb.ShardSlice(string(dump), shard, shards)
	if err != nil {
		t.Fatal(err)
	}
	knowledge := kb.New()
	if slice != "" {
		if err := knowledge.LoadNTriples(slice); err != nil {
			t.Fatal(err)
		}
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fmt.Printf("ADDR %s\n", l.Addr())
	srv := &http.Server{Handler: fleet.NewShardServer(knowledge)}
	if err := srv.Serve(l); err != nil {
		t.Fatalf("serve: %v", err)
	}
}

// fleetShardHelper spawns one remote shard process and waits for its address;
// the returned kill SIGKILLs it.
func fleetShardHelper(t *testing.T, kbFile string, shard, shards int) (url string, kill func()) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, "-test.run=^TestHelperFleetShard$", "-test.v")
	cmd.Env = append(os.Environ(),
		"GALO_FLEET_HELPER=1",
		"GALO_FLEET_KB="+kbFile,
		"GALO_FLEET_SHARD="+strconv.Itoa(shard),
		"GALO_FLEET_SHARDS="+strconv.Itoa(shards),
	)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	kill = func() {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	}
	t.Cleanup(kill)
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(out)
		for sc.Scan() {
			if a, ok := strings.CutPrefix(sc.Text(), "ADDR "); ok {
				addrCh <- a
				break
			}
		}
		close(addrCh)
	}()
	select {
	case addr, ok := <-addrCh:
		if !ok || addr == "" {
			t.Fatalf("fleet shard helper exited before listening; stderr:\n%s", stderr.String())
		}
		return "http://" + addr, kill
	case <-time.After(2 * time.Minute):
		t.Fatalf("fleet shard helper never printed its address; stderr:\n%s", stderr.String())
	}
	panic("unreachable")
}

// TestFleetSurvivesReplicaKillEndToEnd is the fleet acceptance test: a
// gateway over three real shard PROCESSES (shard 0 twice replicated, shard 1
// once) serves 16 concurrent /reopt clients while one replica of shard 0 is
// SIGKILLed mid-load. Retries and failover must mask the kill completely —
// zero failed requests.
func TestFleetSurvivesReplicaKillEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess e2e skipped in -short mode")
	}
	trained := trainedSystem(t)
	kbFile := filepath.Join(t.TempDir(), "kb.nt")
	if err := os.WriteFile(kbFile, []byte(trained.KB().NTriples()), 0o644); err != nil {
		t.Fatal(err)
	}
	victimURL, killVictim := fleetShardHelper(t, kbFile, 0, 2)
	survivorURL, _ := fleetShardHelper(t, kbFile, 0, 2)
	soloURL, _ := fleetShardHelper(t, kbFile, 1, 2)

	cfg := DefaultConfig()
	cfg.Shards = 2
	// Disable the routinization cache so every request drives real probes
	// over the network — cached probes would mask the kill instead of the
	// gateway's retries doing it.
	cfg.Matching.ProbeCacheSize = -1
	cfg.Fleet = fleet.Options{
		Shards: [][]string{{victimURL, survivorURL}, {soloURL}},
		Policy: fleet.Policy{
			ProbeTimeout:    5 * time.Second,
			MaxAttempts:     4,
			BackoffBase:     2 * time.Millisecond,
			BackoffCap:      50 * time.Millisecond,
			BreakerCooldown: 200 * time.Millisecond,
			Seed:            3,
		},
	}
	sys := NewSystem(coreDB, cfg)
	defer sys.Close()
	srv := httptest.NewServer(sys.APIHandler())
	defer srv.Close()

	const clients = 16
	const perClient = 6
	var failed atomic.Int64
	var wg sync.WaitGroup
	var killOnce sync.Once
	queries := tpcds.Queries()[:8]
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				if c == 0 && i == perClient/2 {
					// SIGKILL one replica of shard 0 mid-load, exactly once.
					killOnce.Do(killVictim)
				}
				sql := queries[(c+i)%len(queries)].SQL()
				body, _ := json.Marshal(ReoptRequest{SQL: sql})
				resp, err := http.Post(srv.URL+"/reopt", "application/json", bytes.NewReader(body))
				if err != nil {
					failed.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					failed.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	killOnce.Do(killVictim) // in case the killing client errored out early

	if n := failed.Load(); n != 0 {
		t.Fatalf("%d of %d /reopt requests failed across the replica kill, want 0", n, clients*perClient)
	}
	st := sys.fleetG.Stats()
	if st.Probes == 0 {
		t.Fatal("no probes reached the fleet")
	}
	if st.Failovers == 0 && st.Retries == 0 {
		t.Errorf("SIGKILL produced neither failovers nor retries (probes=%d errors=%d)", st.Probes, st.Errors)
	}
}
