// The re-optimization HTTP service: `galo serve` exposed not just the
// knowledge base (the Fuseki role of the paper's architecture) but the whole
// online workflow, so clients submit SQL and receive the re-optimized plan —
// GALO as an always-on service in front of the optimizer rather than a batch
// experiment.
package core

import (
	"encoding/json"
	"fmt"
	"net/http"

	"galo/internal/qgm"
	"galo/internal/sqlparser"
)

// ReoptRequest is the body of POST /reopt.
type ReoptRequest struct {
	// SQL is the query text to re-optimize (required).
	SQL string `json:"sql"`
	// Name optionally labels the query in the response.
	Name string `json:"name,omitempty"`
	// Execute additionally runs both plans on the simulated executor,
	// validates the rewrite the way ReoptimizeWorkload does, and — when
	// online learning is enabled — feeds the run to the incremental learner.
	Execute bool `json:"execute,omitempty"`
}

// ReoptMatch describes one matched template in a ReoptResponse.
type ReoptMatch struct {
	TemplateIRI string  `json:"template_iri"`
	Improvement float64 `json:"improvement"`
	MatchMillis float64 `json:"match_millis"`
	CacheHit    bool    `json:"cache_hit"`
}

// ReoptResponse is the body answering POST /reopt.
type ReoptResponse struct {
	Query   string `json:"query"`
	KBEpoch uint64 `json:"kb_epoch"`
	Matched bool   `json:"matched"`
	// Rewritten reports whether re-optimization produced a different plan.
	Rewritten bool         `json:"rewritten"`
	Matches   []ReoptMatch `json:"matches,omitempty"`
	// Guidelines is the merged OPTGUIDELINES document applied during
	// re-optimization.
	Guidelines      string `json:"guidelines,omitempty"`
	OriginalPlan    string `json:"original_plan"`
	ReoptimizedPlan string `json:"reoptimized_plan,omitempty"`
	// MatchMillis is the knowledge base time spent on the matched fragments;
	// ProbeMillis covers every probe issued; CacheHits counts probes answered
	// by the routinization cache.
	MatchMillis float64 `json:"match_millis"`
	ProbeMillis float64 `json:"probe_millis"`
	Probes      int     `json:"probes"`
	CacheHits   int     `json:"cache_hits"`
	// Execution results (only when the request asked to execute).
	Executed       bool    `json:"executed,omitempty"`
	Applied        bool    `json:"applied,omitempty"`
	OriginalMillis float64 `json:"original_millis,omitempty"`
	GaloMillis     float64 `json:"galo_millis,omitempty"`
}

// APIHandler returns the system's full HTTP surface:
//
//	POST /reopt   — body {"sql": "...", "execute": true} → the re-optimized
//	                plan, matches, applied guidelines and timings.
//	POST /query   — SPARQL SELECT against the knowledge base (Fuseki role).
//	GET  /data    — knowledge base dump as N-Triples; POST loads triples.
//	GET  /version — knowledge base epoch, for cache invalidation.
//	GET  /stats   — serving counters: KB epoch and size, cached and
//	                deduplicated probes, online-learning progress.
//	GET  /healthz — liveness.
//
// Every route resolves the current knowledge base per request, so the
// handler keeps answering from the live store across LoadKB replacements and
// online-learning epoch publications.
func (s *System) APIHandler() http.Handler {
	mux := http.NewServeMux()
	kbh := s.KBHandler()
	mux.Handle("/query", kbh)
	mux.Handle("/data", kbh)
	mux.Handle("/version", kbh)
	mux.Handle("/ping", kbh)
	mux.HandleFunc("/reopt", s.handleReopt)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// Serve exposes the re-optimization API (and the knowledge base endpoint) on
// the given address; it blocks until the server stops.
func (s *System) Serve(addr string) error {
	return http.ListenAndServe(addr, s.APIHandler())
}

func (s *System) handleReopt(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST a JSON body {\"sql\": \"SELECT ...\"}", http.StatusMethodNotAllowed)
		return
	}
	var req ReoptRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad request body: %v", err), http.StatusBadRequest)
		return
	}
	if req.SQL == "" {
		http.Error(w, "missing \"sql\"", http.StatusBadRequest)
		return
	}
	q, err := sqlparser.Parse(req.SQL)
	if err != nil {
		http.Error(w, fmt.Sprintf("parse: %v", err), http.StatusBadRequest)
		return
	}
	q.Name = req.Name
	if q.Name == "" {
		q.Name = "HTTP"
	}
	resp, err := s.reoptResponse(q, req.Execute)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

// reoptResponse runs the online workflow for one request.
func (s *System) reoptResponse(q *sqlparser.Query, execute bool) (*ReoptResponse, error) {
	epoch := s.KB().Epoch()
	res, err := s.Reoptimize(q)
	if err != nil {
		return nil, fmt.Errorf("reoptimize: %w", err)
	}
	resp := &ReoptResponse{
		Query:        q.Name,
		KBEpoch:      epoch,
		Matched:      len(res.Matches) > 0,
		Rewritten:    res.Rewritten(),
		OriginalPlan: qgm.Format(res.OriginalPlan),
		MatchMillis:  res.MatchMillis,
		ProbeMillis:  res.ProbeStats.TotalMillis,
		Probes:       res.ProbeStats.Probes,
		CacheHits:    res.ProbeStats.CacheHits,
	}
	for _, m := range res.Matches {
		resp.Matches = append(resp.Matches, ReoptMatch{
			TemplateIRI: m.TemplateIRI,
			Improvement: m.Improvement,
			MatchMillis: m.MatchMillis,
			CacheHit:    m.CacheHit,
		})
	}
	if res.Guidelines != nil {
		if xml, err := res.Guidelines.XML(); err == nil {
			resp.Guidelines = xml
		}
	}
	if res.ReoptimizedPlan != nil {
		resp.ReoptimizedPlan = qgm.Format(res.ReoptimizedPlan)
	}
	if !execute {
		return resp, nil
	}
	origRun, err := s.Execute(res.OriginalPlan, q)
	if err != nil {
		return nil, fmt.Errorf("execute: %w", err)
	}
	resp.Executed = true
	resp.OriginalMillis = origRun.Stats.ElapsedMillis
	resp.GaloMillis = origRun.Stats.ElapsedMillis
	if res.ReoptimizedPlan != nil && res.Rewritten() {
		galoRun, err := s.Execute(res.ReoptimizedPlan, q)
		if err != nil {
			return nil, fmt.Errorf("execute rewritten: %w", err)
		}
		if galoRun.Stats.ElapsedMillis <= origRun.Stats.ElapsedMillis {
			resp.Applied = true
			resp.GaloMillis = galoRun.Stats.ElapsedMillis
		}
	}
	return resp, nil
}

// statsResponse is the body of GET /stats.
type statsResponse struct {
	KBEpoch     uint64 `json:"kb_epoch"`
	KBTemplates int    `json:"kb_templates"`
	KBTriples   int    `json:"kb_triples"`
	// CachedProbes is the routinization cache's current entry count;
	// DedupedProbes counts probes that joined an identical in-flight probe.
	CachedProbes  int   `json:"cached_probes"`
	DedupedProbes int64 `json:"deduped_probes"`
	Online        struct {
		Enabled           bool  `json:"enabled"`
		Observed          int64 `json:"observed"`
		Triggered         int64 `json:"triggered"`
		Dropped           int64 `json:"dropped"`
		Analyzed          int64 `json:"analyzed"`
		TemplatesPromoted int64 `json:"templates_promoted"`
	} `json:"online"`
}

func (s *System) handleStats(w http.ResponseWriter, _ *http.Request) {
	knowledge := s.KB()
	var resp statsResponse
	resp.KBEpoch = knowledge.Epoch()
	resp.KBTemplates = knowledge.Size()
	resp.KBTriples = knowledge.Store().Len()
	eng := s.matchingEngine()
	resp.CachedProbes = eng.CachedProbes()
	resp.DedupedProbes = eng.DedupedProbes()
	resp.Online.Enabled = s.Config.Online.Enabled
	st := s.OnlineStats()
	resp.Online.Observed = st.Observed
	resp.Online.Triggered = st.Triggered
	resp.Online.Dropped = st.Dropped
	resp.Online.Analyzed = st.Analyzed
	resp.Online.TemplatesPromoted = st.TemplatesPromoted
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}
