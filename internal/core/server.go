// The re-optimization HTTP service: `galo serve` exposed not just the
// knowledge base (the Fuseki role of the paper's architecture) but the whole
// online workflow, so clients submit SQL and receive the re-optimized plan —
// GALO as an always-on service in front of the optimizer rather than a batch
// experiment.
package core

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"galo/internal/fleet"
	"galo/internal/qgm"
	"galo/internal/sqlparser"
	"galo/internal/wal"
)

// AdmissionOptions configures serving-time admission control on the /reopt
// route, the backpressure layer beyond the online learner's bounded queue:
// matching work is shed *before* it starts, instead of queueing behind a
// saturated matcher. The zero value disables both mechanisms.
type AdmissionOptions struct {
	// ProbeBudget is the per-client token-bucket capacity, measured in
	// knowledge base probes. Each /reopt response debits the probes it
	// actually issued; a client whose bucket is empty receives 429 until
	// refill. 0 disables per-client budgets.
	ProbeBudget int
	// RefillPerSecond is the bucket refill rate in probes per second; 0
	// means a full bucket (ProbeBudget probes) per second.
	RefillPerSecond float64
	// MaxConcurrent caps in-flight /reopt requests — the matcher-saturation
	// guard. Requests beyond the cap are shed with 429 rather than queued.
	// 0 disables the cap.
	MaxConcurrent int
}

// admissionState is the runtime side of AdmissionOptions, embedded in System.
type admissionState struct {
	mu      sync.Mutex
	buckets map[string]*clientBucket

	inFlight  atomic.Int64
	throttled atomic.Int64 // requests rejected by a per-client probe budget
	shed      atomic.Int64 // requests rejected by the concurrency cap

	// serviceEWMA tracks an exponentially weighted moving average of /reopt
	// service time (nanoseconds, alpha 1/8) — the basis of the Retry-After
	// estimate on concurrency-cap rejections. Zero until the first request
	// completes.
	serviceEWMA atomic.Uint64
}

// observeService folds one completed /reopt's service time into the EWMA.
func (a *admissionState) observeService(d time.Duration) {
	if d <= 0 {
		return
	}
	for {
		old := a.serviceEWMA.Load()
		next := uint64(d)
		if old != 0 {
			next = uint64((7*time.Duration(old) + d) / 8)
		}
		if a.serviceEWMA.CompareAndSwap(old, next) {
			return
		}
	}
}

// setRetryAfter stamps a wait estimate as the Retry-After header. The header
// carries whole delta-seconds (RFC 9110), so fractions round UP — a client
// honoring the hint must never retry before the wait has actually elapsed —
// with a floor of one second.
func setRetryAfter(w http.ResponseWriter, wait time.Duration) {
	secs := int64((wait + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
}

// clientBucket is one client's probe token bucket.
type clientBucket struct {
	tokens float64
	last   time.Time
}

// bucketSweepThreshold is the bucket-map size that triggers a sweep of
// fully refilled buckets. A bucket whose refill has brought it back to
// capacity carries no state a fresh bucket would not (new clients start
// full), so dropping it never changes an admission decision — the sweep
// bounds the map against clients that never return (or an attacker minting
// a fresh X-Galo-Client per request) without weakening any live budget.
const bucketSweepThreshold = 1024

// clientKey identifies the client a /reopt request charges: the
// X-Galo-Client header when present (deployments put an API key or tenant
// ID there), else the remote host.
func clientKey(r *http.Request) string {
	if c := r.Header.Get("X-Galo-Client"); c != "" {
		return c
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// admitProbes reports whether the client's probe bucket holds at least one
// whole probe token, refilling it for the time elapsed since its last use.
// A new client starts with a full bucket. On rejection the second return is
// how long the refill needs to bring the bucket back to one whole token —
// the client's Retry-After.
func (s *System) admitProbes(client string, now time.Time) (bool, time.Duration) {
	opts := s.Config.Admission
	if opts.ProbeBudget <= 0 {
		return true, 0
	}
	refill := opts.RefillPerSecond
	if refill <= 0 {
		refill = float64(opts.ProbeBudget)
	}
	a := &s.admission
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.buckets == nil {
		a.buckets = map[string]*clientBucket{}
	}
	if len(a.buckets) >= bucketSweepThreshold {
		for k, b := range a.buckets {
			if k != client && b.tokens+now.Sub(b.last).Seconds()*refill >= float64(opts.ProbeBudget) {
				delete(a.buckets, k)
			}
		}
	}
	b, ok := a.buckets[client]
	if !ok {
		b = &clientBucket{tokens: float64(opts.ProbeBudget), last: now}
		a.buckets[client] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * refill
	if b.tokens > float64(opts.ProbeBudget) {
		b.tokens = float64(opts.ProbeBudget)
	}
	b.last = now
	if b.tokens >= 1 {
		return true, 0
	}
	// A debited-below-zero bucket (chargeProbes) extends the wait: the
	// estimate covers the full climb from the current balance to one token.
	return false, time.Duration((1 - b.tokens) / refill * float64(time.Second))
}

// shedRetryAfter estimates how long a request shed by the concurrency cap
// should wait: the queue depth it would face, expressed in units of the
// observed per-request service time spread over MaxConcurrent lanes. Before
// any request has completed (no EWMA yet) it falls back to one second.
func (s *System) shedRetryAfter(inFlight int64) time.Duration {
	max := int64(s.Config.Admission.MaxConcurrent)
	ewma := time.Duration(s.admission.serviceEWMA.Load())
	if ewma <= 0 || max <= 0 {
		return time.Second
	}
	queued := inFlight - max + 1
	if queued < 1 {
		queued = 1
	}
	wait := ewma * time.Duration(queued) / time.Duration(max)
	if wait < time.Second {
		wait = time.Second
	}
	return wait
}

// chargeProbes debits the probes one answered request actually issued. The
// bucket may go negative — the request was admitted on the balance known
// before its cost was — which simply extends the refill time before the
// client is admitted again.
func (s *System) chargeProbes(client string, probes int) {
	if s.Config.Admission.ProbeBudget <= 0 || probes <= 0 {
		return
	}
	a := &s.admission
	a.mu.Lock()
	defer a.mu.Unlock()
	if b, ok := a.buckets[client]; ok {
		b.tokens -= float64(probes)
	}
}

// ReoptRequest is the body of POST /reopt.
type ReoptRequest struct {
	// SQL is the query text to re-optimize (required).
	SQL string `json:"sql"`
	// Name optionally labels the query in the response.
	Name string `json:"name,omitempty"`
	// Execute additionally runs both plans on the simulated executor,
	// validates the rewrite the way ReoptimizeWorkload does, and — when
	// online learning is enabled — feeds the run to the incremental learner.
	Execute bool `json:"execute,omitempty"`
}

// ReoptMatch describes one matched template in a ReoptResponse.
type ReoptMatch struct {
	TemplateIRI string  `json:"template_iri"`
	Improvement float64 `json:"improvement"`
	MatchMillis float64 `json:"match_millis"`
	CacheHit    bool    `json:"cache_hit"`
}

// ReoptResponse is the body answering POST /reopt.
type ReoptResponse struct {
	Query   string `json:"query"`
	KBEpoch uint64 `json:"kb_epoch"`
	Matched bool   `json:"matched"`
	// Rewritten reports whether re-optimization produced a different plan.
	Rewritten bool         `json:"rewritten"`
	Matches   []ReoptMatch `json:"matches,omitempty"`
	// Guidelines is the merged OPTGUIDELINES document applied during
	// re-optimization.
	Guidelines      string `json:"guidelines,omitempty"`
	OriginalPlan    string `json:"original_plan"`
	ReoptimizedPlan string `json:"reoptimized_plan,omitempty"`
	// MatchMillis is the knowledge base time spent on the matched fragments;
	// ProbeMillis covers every probe issued; CacheHits counts probes answered
	// by the routinization cache.
	MatchMillis float64 `json:"match_millis"`
	ProbeMillis float64 `json:"probe_millis"`
	Probes      int     `json:"probes"`
	CacheHits   int     `json:"cache_hits"`
	// Execution results (only when the request asked to execute). The peak
	// fields report each validated run's high-water intermediate-row residency
	// (executor.RunStats.PeakIntermediateRows / Bytes).
	Executed          bool    `json:"executed,omitempty"`
	Applied           bool    `json:"applied,omitempty"`
	OriginalMillis    float64 `json:"original_millis,omitempty"`
	GaloMillis        float64 `json:"galo_millis,omitempty"`
	OriginalPeakRows  int64   `json:"original_peak_rows,omitempty"`
	OriginalPeakBytes int64   `json:"original_peak_bytes,omitempty"`
	GaloPeakRows      int64   `json:"galo_peak_rows,omitempty"`
	GaloPeakBytes     int64   `json:"galo_peak_bytes,omitempty"`
}

// APIHandler returns the system's full HTTP surface:
//
//	POST /reopt   — body {"sql": "...", "execute": true} → the re-optimized
//	                plan, matches, applied guidelines and timings.
//	POST /query   — SPARQL SELECT against the knowledge base (Fuseki role).
//	GET  /data    — knowledge base dump as N-Triples; POST loads triples.
//	GET  /version — knowledge base epoch (sum over shards), for cache
//	                invalidation.
//	GET  /stats   — serving counters: KB epoch and size, per-shard epochs
//	                and probe fan-out, cached and deduplicated probes,
//	                admission-control backpressure, online-learning
//	                progress, and (with a data dir) durability counters.
//	GET  /healthz — serve lifecycle: {"status","persistence","draining"},
//	                200 while serving (even persistence-degraded), 503 once
//	                draining.
//
// POST /reopt is subject to admission control (Config.Admission): requests
// beyond the concurrency cap, or from clients whose probe budget is spent,
// are rejected with 429 Too Many Requests and counted in /stats.
//
// Every route resolves the current knowledge base per request, so the
// handler keeps answering from the live shard stores across LoadKB
// replacements and online-learning epoch publications.
func (s *System) APIHandler() http.Handler {
	mux := http.NewServeMux()
	kbh := s.KBHandler()
	mux.Handle("/query", kbh)
	mux.Handle("/data", kbh)
	mux.Handle("/version", kbh)
	mux.Handle("/ping", kbh)
	mux.HandleFunc("/reopt", s.handleReopt)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return s.drainGate(mux)
}

// drainGate rejects new work with 503 + Retry-After once Shutdown has begun,
// while requests already past the gate finish normally. /healthz stays open
// so orchestrators can watch the drain.
func (s *System) drainGate(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() && r.URL.Path != "/healthz" {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "server draining", http.StatusServiceUnavailable)
			return
		}
		next.ServeHTTP(w, r)
	})
}

// handleHealthz answers GET /healthz with the serve lifecycle state:
//
//	{"status":"ok|degraded","persistence":"disabled|ok|degraded","draining":false}
//
// 200 while the system serves (including persistence-degraded in-memory
// mode — status says "degraded" but traffic is still welcome); 503 once
// draining, so load balancers stop routing here during shutdown.
func (s *System) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	resp := struct {
		Status      string `json:"status"`
		Persistence string `json:"persistence"`
		Draining    bool   `json:"draining"`
	}{Status: "ok", Persistence: "disabled"}
	if st := s.PersistStats(); st != nil {
		if st.Degraded {
			resp.Status = "degraded"
			resp.Persistence = "degraded"
		} else {
			resp.Persistence = "ok"
		}
	}
	code := http.StatusOK
	if s.draining.Load() {
		resp.Draining = true
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(resp)
}

// newServer builds the http.Server Serve/ServeKB run: explicit header, read,
// write and idle timeouts, so a stalled client cannot hold a connection (and
// a graceful drain) open forever.
func (s *System) newServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      5 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
}

// serveHTTP listens on addr and serves h until the server stops; a graceful
// Shutdown returns nil.
func (s *System) serveHTTP(addr string, h http.Handler) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.serveOn(l, h)
}

func (s *System) serveOn(l net.Listener, h http.Handler) error {
	srv := s.newServer(h)
	s.srvMu.Lock()
	s.servers = append(s.servers, srv)
	s.srvMu.Unlock()
	err := srv.Serve(l)
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// Serve exposes the re-optimization API (and the knowledge base endpoint) on
// the given address; it blocks until the server stops (nil after a graceful
// Shutdown).
func (s *System) Serve(addr string) error {
	return s.serveHTTP(addr, s.APIHandler())
}

// ServeListener is Serve over an already-bound listener — callers that bind
// ":0" learn the real address before serving starts. It blocks; a graceful
// Shutdown returns nil.
func (s *System) ServeListener(l net.Listener) error {
	return s.serveOn(l, s.APIHandler())
}

// Shutdown drains the system gracefully: new requests get 503 (the drain
// gate), in-flight requests finish within ctx's deadline, the online
// learner's backlog is flushed and published, and the write-ahead log gets
// its final fsync. Serve/ServeKB return nil once their server is drained.
func (s *System) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.srvMu.Lock()
	servers := s.servers
	s.servers = nil
	s.srvMu.Unlock()
	var err error
	for _, srv := range servers {
		if e := srv.Shutdown(ctx); e != nil && err == nil {
			err = e
		}
	}
	// Backlogged observations become templates (and WAL records) now rather
	// than dying with the process; Close then detaches the hooks and ends
	// with the final fsync.
	s.FlushOnlineLearning()
	s.Close()
	return err
}

func (s *System) handleReopt(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST a JSON body {\"sql\": \"SELECT ...\"}", http.StatusMethodNotAllowed)
		return
	}
	// Admission control: shed before any matching work happens. The
	// concurrency cap guards the matcher (global saturation); the probe
	// budget guards fairness (one client cannot monopolize the probe
	// workers). Both reject with 429 + Retry-After, counted in /stats —
	// globally and on the client's tenant row.
	client := clientKey(r)
	slot := s.tenantSlot(client)
	if max := s.Config.Admission.MaxConcurrent; max > 0 {
		if n := s.admission.inFlight.Add(1); n > int64(max) {
			s.admission.inFlight.Add(-1)
			s.admission.shed.Add(1)
			slot.shed.Add(1)
			setRetryAfter(w, s.shedRetryAfter(n))
			http.Error(w, "matcher saturated, retry later", http.StatusTooManyRequests)
			return
		}
		defer s.admission.inFlight.Add(-1)
	}
	if ok, wait := s.admitProbes(client, time.Now()); !ok {
		s.admission.throttled.Add(1)
		slot.throttled.Add(1)
		setRetryAfter(w, wait)
		http.Error(w, "probe budget exhausted, retry later", http.StatusTooManyRequests)
		return
	}
	var req ReoptRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad request body: %v", err), http.StatusBadRequest)
		return
	}
	if req.SQL == "" {
		http.Error(w, "missing \"sql\"", http.StatusBadRequest)
		return
	}
	q, err := sqlparser.Parse(req.SQL)
	if err != nil {
		http.Error(w, fmt.Sprintf("parse: %v", err), http.StatusBadRequest)
		return
	}
	q.Name = req.Name
	if q.Name == "" {
		q.Name = "HTTP"
	}
	start := time.Now()
	resp, err := s.reoptResponse(slot, q, req.Execute)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.admission.observeService(time.Since(start))
	s.chargeProbes(client, resp.Probes)
	slot.requests.Add(1)
	slot.probes.Add(int64(resp.Probes))
	slot.cacheHits.Add(int64(resp.CacheHits))
	if resp.Matched {
		slot.matched.Add(1)
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

// reoptResponse runs the online workflow for one request in the client's
// namespace (reoptimizeFor: the shared engine unless tenancy gives the slot
// its own). Probes/CacheHits include any discarded tenant-namespace pass, so
// admission charging and /stats sums see the full cost.
func (s *System) reoptResponse(slot *tenantSlot, q *sqlparser.Query, execute bool) (*ReoptResponse, error) {
	res, epoch, extraProbes, extraCacheHits, err := s.reoptimizeFor(slot, q)
	if err != nil {
		return nil, fmt.Errorf("reoptimize: %w", err)
	}
	resp := &ReoptResponse{
		Query:        q.Name,
		KBEpoch:      epoch,
		Matched:      len(res.Matches) > 0,
		Rewritten:    res.Rewritten(),
		OriginalPlan: qgm.Format(res.OriginalPlan),
		MatchMillis:  res.MatchMillis,
		ProbeMillis:  res.ProbeStats.TotalMillis,
		Probes:       res.ProbeStats.Probes + extraProbes,
		CacheHits:    res.ProbeStats.CacheHits + extraCacheHits,
	}
	for _, m := range res.Matches {
		resp.Matches = append(resp.Matches, ReoptMatch{
			TemplateIRI: m.TemplateIRI,
			Improvement: m.Improvement,
			MatchMillis: m.MatchMillis,
			CacheHit:    m.CacheHit,
		})
	}
	if res.Guidelines != nil {
		if xml, err := res.Guidelines.XML(); err == nil {
			resp.Guidelines = xml
		}
	}
	if res.ReoptimizedPlan != nil {
		resp.ReoptimizedPlan = qgm.Format(res.ReoptimizedPlan)
	}
	if !execute {
		return resp, nil
	}
	origRun, err := s.Execute(res.OriginalPlan, q)
	if err != nil {
		return nil, fmt.Errorf("execute: %w", err)
	}
	resp.Executed = true
	resp.OriginalMillis = origRun.Stats.ElapsedMillis
	resp.GaloMillis = origRun.Stats.ElapsedMillis
	resp.OriginalPeakRows = origRun.Stats.PeakIntermediateRows
	resp.OriginalPeakBytes = origRun.Stats.PeakIntermediateBytes
	resp.GaloPeakRows = origRun.Stats.PeakIntermediateRows
	resp.GaloPeakBytes = origRun.Stats.PeakIntermediateBytes
	if res.ReoptimizedPlan != nil && res.Rewritten() {
		galoRun, err := s.Execute(res.ReoptimizedPlan, q)
		if err != nil {
			return nil, fmt.Errorf("execute rewritten: %w", err)
		}
		if galoRun.Stats.ElapsedMillis <= origRun.Stats.ElapsedMillis {
			resp.Applied = true
			resp.GaloMillis = galoRun.Stats.ElapsedMillis
			resp.GaloPeakRows = galoRun.Stats.PeakIntermediateRows
			resp.GaloPeakBytes = galoRun.Stats.PeakIntermediateBytes
		}
	}
	return resp, nil
}

// shardStat is one knowledge base shard's row in /stats.
type shardStat struct {
	// Shard is the shard index (the RouteShape target).
	Shard int `json:"shard"`
	// Epoch is the shard's own epoch counter; a template publication bumps
	// exactly one shard's epoch.
	Epoch uint64 `json:"epoch"`
	// Templates and Triples size the shard's slice of the knowledge base.
	Templates int `json:"templates"`
	Triples   int `json:"triples"`
	// Probes counts the fragment probes this shard has answered since the
	// matching engine was built — the fan-out profile.
	Probes int64 `json:"probes"`
}

// statsResponse is the body of GET /stats. Every field is documented in
// DESIGN.md, "Serving architecture".
type statsResponse struct {
	KBEpoch     uint64 `json:"kb_epoch"`
	KBTemplates int    `json:"kb_templates"`
	KBTriples   int    `json:"kb_triples"`
	KBShards    int    `json:"kb_shards"`
	// Shards breaks the knowledge base down per shard.
	Shards []shardStat `json:"shards"`
	// CachedProbes is the routinization cache's current entry count;
	// DedupedProbes counts probes that joined an identical in-flight probe.
	CachedProbes  int   `json:"cached_probes"`
	DedupedProbes int64 `json:"deduped_probes"`
	// Admission reports the backpressure counters of the /reopt admission
	// layer (AdmissionOptions).
	Admission struct {
		ProbeBudget    int   `json:"probe_budget"`
		MaxConcurrent  int   `json:"max_concurrent"`
		InFlight       int64 `json:"in_flight"`
		ThrottledTotal int64 `json:"throttled_total"`
		ShedTotal      int64 `json:"shed_total"`
	} `json:"admission"`
	// Executor reports the streaming executor's memory profile — the worst
	// single-execution intermediate-row residency seen on this system — plus
	// the parallel-execution counters: configured exchange workers, shared
	// base-table scan passes, live exchange state, and the memory governor's
	// admission counters (ExecStats).
	Executor struct {
		PeakIntermediateRows  int64 `json:"peak_intermediate_rows"`
		PeakIntermediateBytes int64 `json:"peak_intermediate_bytes"`
		ExecStats
	} `json:"executor"`
	Online struct {
		Enabled           bool  `json:"enabled"`
		Observed          int64 `json:"observed"`
		Triggered         int64 `json:"triggered"`
		Dropped           int64 `json:"dropped"`
		Analyzed          int64 `json:"analyzed"`
		TemplatesPromoted int64 `json:"templates_promoted"`
	} `json:"online"`
	// Durability reports the write-ahead log's counters (wal appends and
	// bytes, fsyncs, snapshots, disk errors, degraded flag, boot-time replay
	// stats); omitted when no data directory is open. Recovery summarizes
	// what OpenDataDir found at boot.
	Durability *durabilityStats `json:"durability,omitempty"`
	// Tenancy reports per-tenant accounting: one row per client identity
	// seen on /reopt (tenancy.go). Row counter sums — probes, throttled,
	// shed — equal the corresponding totals above.
	Tenancy tenancyStats `json:"tenancy"`
	// Fleet reports the remote-shard gateway's counters — per-replica
	// breaker states and epochs, retry/hedge/failover totals, migrations
	// and (when running) the rebalancer — omitted on single-process
	// deployments (no Config.Fleet).
	Fleet *fleet.Stats `json:"fleet,omitempty"`
}

// durabilityStats is the /stats durability section: the wal layer's live
// counters plus the boot-time recovery summary.
type durabilityStats struct {
	wal.Stats
	Recovery RecoveryInfo `json:"recovery"`
}

func (s *System) handleStats(w http.ResponseWriter, _ *http.Request) {
	knowledge := s.KB()
	var resp statsResponse
	resp.KBEpoch = knowledge.Epoch()
	resp.KBTemplates = knowledge.Size()
	resp.KBTriples = knowledge.Triples()
	resp.KBShards = knowledge.Shards()
	eng := s.matchingEngine()
	resp.CachedProbes = eng.CachedProbes()
	resp.DedupedProbes = eng.DedupedProbes()
	epochs := knowledge.Epochs()
	sizes := knowledge.ShardSizes()
	probes := eng.ProbesByShard()
	for i, st := range knowledge.Stores() {
		row := shardStat{Shard: i, Epoch: epochs[i], Templates: sizes[i], Triples: st.Len()}
		// A remote KB presents fewer engine shards than the local KB holds.
		if i < len(probes) {
			row.Probes = probes[i]
		}
		resp.Shards = append(resp.Shards, row)
	}
	resp.Admission.ProbeBudget = s.Config.Admission.ProbeBudget
	resp.Admission.MaxConcurrent = s.Config.Admission.MaxConcurrent
	resp.Admission.InFlight = s.admission.inFlight.Load()
	resp.Admission.ThrottledTotal = s.admission.throttled.Load()
	resp.Admission.ShedTotal = s.admission.shed.Load()
	resp.Executor.PeakIntermediateRows, resp.Executor.PeakIntermediateBytes = s.PeakIntermediate()
	resp.Executor.ExecStats = s.ExecutorStats()
	resp.Online.Enabled = s.Config.Online.Enabled
	st := s.OnlineStats()
	resp.Online.Observed = st.Observed
	resp.Online.Triggered = st.Triggered
	resp.Online.Dropped = st.Dropped
	resp.Online.Analyzed = st.Analyzed
	resp.Online.TemplatesPromoted = st.TemplatesPromoted
	if ps := s.PersistStats(); ps != nil {
		s.mu.Lock()
		recovery := s.recovered
		s.mu.Unlock()
		resp.Durability = &durabilityStats{Stats: *ps, Recovery: recovery}
	}
	resp.Tenancy = s.tenancySnapshot()
	if s.fleetG != nil {
		fs := s.fleetG.Stats()
		s.mu.Lock()
		rebal := s.rebal
		s.mu.Unlock()
		if rebal != nil {
			rs := rebal.Stats()
			fs.Rebalancer = &rs
		}
		resp.Fleet = &fs
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}
