package core

import "sync"

// ExecOptions configures the system executor: intra-query parallelism and the
// peak-residency memory budget concurrent executions are admitted against.
type ExecOptions struct {
	// Workers is the exchange worker count per execution (executor.Workers);
	// 0 or 1 executes serially.
	Workers int
	// MemBudgetBytes caps the summed estimated peak intermediate residency
	// (qgm.Plan.EstPeakResidencyBytes) of concurrently running executions.
	// An execution that does not fit waits; one whose estimate alone exceeds
	// the whole budget runs exclusively and degraded to serial (parallel
	// exchange holds every build side at once — serial is the low-memory
	// shape). 0 disables the governor.
	MemBudgetBytes int64
}

// execGovernor admits executions against the residency budget. The policy is
// deliberately simple and deadlock-free: admission is first-come (cond
// broadcast, re-check loop), a too-big plan waits only for the system to go
// idle — which always happens, because every admitted execution releases —
// and nothing is ever rejected.
type execGovernor struct {
	mu     sync.Mutex
	cond   *sync.Cond
	budget int64

	reserved int64
	running  int
	// pendingBig counts waiting degraded-admission executions; while one is
	// queued, regular admissions hold back so a steady stream of small plans
	// cannot starve the big one.
	pendingBig int

	admitted int64 // executions admitted (including degraded)
	queued   int64 // executions that had to wait before admission
	degraded int64 // executions forced serial because est > budget
}

// execGrant is one admitted execution's reservation.
type execGrant struct {
	g        *execGovernor
	workers  int
	bytes    int64
	released bool
}

// GovernorStats is the /stats snapshot of the admission state.
type GovernorStats struct {
	BudgetBytes   int64 `json:"budget_bytes"`
	ReservedBytes int64 `json:"reserved_bytes"`
	Running       int   `json:"running"`
	AdmittedTotal int64 `json:"admitted_total"`
	QueuedTotal   int64 `json:"queued_total"`
	DegradedTotal int64 `json:"degraded_total"`
}

func newExecGovernor(budget int64) *execGovernor {
	g := &execGovernor{budget: budget}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// acquire blocks until the execution fits the budget and returns its grant.
// workers is the caller's requested parallelism; the grant's workers field is
// what the execution may actually use (1 when degraded).
func (g *execGovernor) acquire(est int64, workers int) *execGrant {
	if g == nil || g.budget <= 0 {
		return &execGrant{workers: workers}
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	waited := false
	if est > g.budget {
		// Too big to ever fit: run it alone, serially, with the whole budget
		// reserved — degraded but never starved, since running hits zero
		// whenever the current admissions finish.
		g.pendingBig++
		for g.running > 0 {
			waited = true
			g.cond.Wait()
		}
		g.pendingBig--
		g.noteAdmit(waited)
		g.degraded++
		g.reserved += g.budget
		g.running++
		return &execGrant{g: g, workers: 1, bytes: g.budget}
	}
	for g.reserved+est > g.budget || g.pendingBig > 0 {
		waited = true
		g.cond.Wait()
	}
	g.noteAdmit(waited)
	g.reserved += est
	g.running++
	return &execGrant{g: g, workers: workers, bytes: est}
}

// noteAdmit updates the admission counters; callers hold g.mu.
func (g *execGovernor) noteAdmit(waited bool) {
	g.admitted++
	if waited {
		g.queued++
	}
}

// release returns the reservation and wakes every waiter (they re-check their
// own fit). Idempotent.
func (gr *execGrant) release() {
	if gr.g == nil || gr.released {
		gr.released = true
		return
	}
	gr.released = true
	g := gr.g
	g.mu.Lock()
	g.reserved -= gr.bytes
	g.running--
	g.mu.Unlock()
	g.cond.Broadcast()
}

// stats snapshots the governor state; zero-valued when the governor is off.
func (g *execGovernor) stats() GovernorStats {
	if g == nil {
		return GovernorStats{}
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return GovernorStats{
		BudgetBytes:   g.budget,
		ReservedBytes: g.reserved,
		Running:       g.running,
		AdmittedTotal: g.admitted,
		QueuedTotal:   g.queued,
		DegradedTotal: g.degraded,
	}
}
