package core

import (
	"net/http/httptest"
	"path/filepath"
	"testing"

	"galo/internal/learning"
	"galo/internal/sqlparser"
	"galo/internal/storage"
	"galo/internal/workload/tpcds"
)

var (
	coreDB  *storage.Database
	coreSys *System
	// coreMatchedQuery is a learned query that the trained knowledge base is
	// known to match again online; found once in the fixture.
	coreMatchedQuery *sqlparser.Query
)

func trainedSystem(t *testing.T) *System {
	t.Helper()
	if coreSys == nil {
		db, err := tpcds.Generate(tpcds.GenOptions{Seed: 31, Scale: 0.08, Hazards: true})
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		cfg.Learning.RandomPlans = 8
		cfg.Learning.PredicateVariants = 1
		cfg.Learning.Runs = 2
		cfg.Learning.Workers = 2
		cfg.Learning.MaxSubQueriesPerQuery = 10
		cfg.Learning.Workload = "tpcds"
		sys := NewSystem(db, cfg)
		report, err := sys.Learn([]*sqlparser.Query{tpcds.Fig8Query(), tpcds.Fig7Query(), tpcds.Fig4Query()})
		if err != nil {
			t.Fatal(err)
		}
		if report.TemplatesAdded == 0 {
			t.Fatal("learning produced no templates")
		}
		for _, q := range []*sqlparser.Query{tpcds.Fig8Query(), tpcds.Fig7Query(), tpcds.Fig4Query()} {
			res, err := sys.Reoptimize(q)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Matches) > 0 {
				coreMatchedQuery = q
				break
			}
		}
		if coreMatchedQuery == nil {
			t.Fatalf("knowledge base (size %d) matched none of the learned queries", sys.KB().Size())
		}
		coreDB, coreSys = db, sys
	}
	return coreSys
}

func TestLearnThenReoptimizeWorkflow(t *testing.T) {
	sys := trainedSystem(t)
	res, err := sys.Reoptimize(coreMatchedQuery)
	if err != nil {
		t.Fatalf("Reoptimize: %v", err)
	}
	if res.OriginalPlan == nil {
		t.Fatal("no original plan")
	}
	if len(res.Matches) == 0 {
		t.Fatalf("knowledge base (size %d) did not match the learned query", sys.KB().Size())
	}
	base, err := sys.Optimize(coreMatchedQuery)
	if err != nil {
		t.Fatal(err)
	}
	if base.Signature() != res.OriginalPlan.Signature() {
		t.Errorf("Optimize and Reoptimize disagree on the baseline plan")
	}
	run, err := sys.Execute(res.OriginalPlan, coreMatchedQuery)
	if err != nil || run.Stats.ElapsedMillis <= 0 {
		t.Errorf("Execute failed: %v %+v", err, run)
	}
}

func TestReoptimizeWorkloadSummary(t *testing.T) {
	sys := trainedSystem(t)
	queries := []*sqlparser.Query{coreMatchedQuery, tpcds.Fig7Query(),
		sqlparser.MustParse(`SELECT i_item_desc FROM item WHERE i_category = 'Music'`)}
	outcomes, summary, err := sys.ReoptimizeWorkload(queries)
	if err != nil {
		t.Fatalf("ReoptimizeWorkload: %v", err)
	}
	if len(outcomes) != 3 || summary.Queries != 3 {
		t.Fatalf("outcomes = %d, summary = %+v", len(outcomes), summary)
	}
	if summary.Matched == 0 {
		t.Errorf("no query matched")
	}
	for _, o := range outcomes {
		if o.OriginalMillis <= 0 {
			t.Errorf("missing baseline time for %s", o.Query)
		}
		if !o.Applied && o.Improvement() != 0 {
			t.Errorf("query without an applied rewrite reports improvement: %+v", o)
		}
	}
	if summary.Applied > 0 && summary.AvgImprovement < 0 {
		t.Errorf("applied rewrites but negative average improvement: %+v", summary)
	}
	if summary.TotalGalo > summary.TotalOriginal*1.001 {
		t.Errorf("validated re-optimization must never regress the workload: %+v", summary)
	}
}

func TestKBSaveLoadRoundtrip(t *testing.T) {
	sys := trainedSystem(t)
	path := filepath.Join(t.TempDir(), "kb.nt")
	if err := sys.SaveKB(path); err != nil {
		t.Fatalf("SaveKB: %v", err)
	}
	fresh := NewSystem(coreDB, sys.Config)
	if err := fresh.LoadKB(path); err != nil {
		t.Fatalf("LoadKB: %v", err)
	}
	if fresh.KB().Size() != sys.KB().Size() {
		t.Errorf("reloaded KB size %d, want %d", fresh.KB().Size(), sys.KB().Size())
	}
	res, err := fresh.Reoptimize(coreMatchedQuery)
	if err != nil {
		t.Fatalf("Reoptimize with reloaded KB: %v", err)
	}
	if len(res.Matches) == 0 {
		t.Errorf("reloaded KB does not match")
	}
	if err := fresh.LoadKB(filepath.Join(t.TempDir(), "missing.nt")); err == nil {
		t.Errorf("loading a missing file should fail")
	}
}

func TestRemoteKBEndpoint(t *testing.T) {
	sys := trainedSystem(t)
	srv := httptest.NewServer(sys.KBHandler())
	defer srv.Close()
	remoteCfg := sys.Config
	remoteCfg.RemoteKB = srv.URL
	remote := NewSystem(coreDB, remoteCfg)
	res, err := remote.Reoptimize(coreMatchedQuery)
	if err != nil {
		t.Fatalf("Reoptimize via HTTP endpoint: %v", err)
	}
	if len(res.Matches) == 0 {
		t.Errorf("remote endpoint returned no matches")
	}
}

func TestImportKBMergesTemplates(t *testing.T) {
	sys := trainedSystem(t)
	other := NewSystem(coreDB, Config{Learning: learning.DefaultOptions(), Matching: sys.Config.Matching})
	before := other.KB().Size()
	if err := other.ImportKB(sys.KB()); err != nil {
		t.Fatalf("ImportKB: %v", err)
	}
	if other.KB().Size() != before+sys.KB().Size() {
		t.Errorf("ImportKB size = %d, want %d", other.KB().Size(), before+sys.KB().Size())
	}
}
