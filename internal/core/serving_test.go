package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"galo/internal/kb"
	"galo/internal/learning"
	"galo/internal/matching"
	"galo/internal/qgm"
	"galo/internal/sqlparser"
	"galo/internal/storage"
	"galo/internal/workload/tpcds"
)

// TestNewSystemPreservesCustomConfig pins the fill-only-unset contract: a
// partially customized Config must keep its set fields while zero fields get
// defaults (the old behaviour clobbered the whole Matching/Learning structs
// whenever one sentinel field was zero).
func TestNewSystemPreservesCustomConfig(t *testing.T) {
	db := coreDBForConfig(t)
	cfg := Config{}
	cfg.Matching.ProbeWorkers = 3
	cfg.Matching.ProbeCacheSize = 128
	cfg.Learning.Runs = 7
	cfg.Learning.Workload = "custom"
	sys := NewSystem(db, cfg)
	defer sys.Close()

	if got := sys.Config.Matching.ProbeWorkers; got != 3 {
		t.Errorf("ProbeWorkers = %d, want the customized 3", got)
	}
	if got := sys.Config.Matching.ProbeCacheSize; got != 128 {
		t.Errorf("ProbeCacheSize = %d, want the customized 128", got)
	}
	if got := sys.Config.Matching.MaxJoins; got != matching.DefaultOptions().MaxJoins {
		t.Errorf("MaxJoins = %d, want the default", got)
	}
	if got := sys.Config.Learning.Runs; got != 7 {
		t.Errorf("Learning.Runs = %d, want the customized 7", got)
	}
	if got := sys.Config.Learning.Workload; got != "custom" {
		t.Errorf("Learning.Workload = %q, want custom", got)
	}
	if got := sys.Config.Learning.JoinThreshold; got != learning.DefaultOptions().JoinThreshold {
		t.Errorf("JoinThreshold = %d, want the default", got)
	}
	if got := sys.Config.Learning.Seed; got != learning.DefaultOptions().Seed {
		t.Errorf("Seed = %d, want the default", got)
	}
}

var configDB = struct {
	once sync.Once
	db   *storage.Database
}{}

// coreDBForConfig returns a small database without training, for tests that
// only need a schema.
func coreDBForConfig(t *testing.T) *storage.Database {
	t.Helper()
	configDB.once.Do(func() {
		db, err := tpcds.Generate(tpcds.GenOptions{Seed: 7, Scale: 0.02})
		if err != nil {
			t.Fatal(err)
		}
		configDB.db = db
	})
	return configDB.db
}

// TestKBHandlerTracksLoadKB pins the stale-store fix: a handler built before
// LoadKB must serve the replaced knowledge base afterwards.
func TestKBHandlerTracksLoadKB(t *testing.T) {
	sys := trainedSystem(t)
	fresh := NewSystem(coreDB, sys.Config)
	defer fresh.Close()
	srv := httptest.NewServer(fresh.APIHandler()) // built over the EMPTY initial KB
	defer srv.Close()

	versionOf := func() uint64 {
		resp, err := http.Get(srv.URL + "/version")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var doc map[string]uint64
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatal(err)
		}
		return doc["version"]
	}
	if v := versionOf(); v != 0 {
		t.Fatalf("empty KB should serve version 0, got %d", v)
	}
	path := filepath.Join(t.TempDir(), "kb.nt")
	if err := sys.SaveKB(path); err != nil {
		t.Fatal(err)
	}
	if err := fresh.LoadKB(path); err != nil {
		t.Fatal(err)
	}
	if v := versionOf(); v == 0 {
		t.Error("handler still serves the pre-LoadKB store")
	}
	resp, err := http.Get(srv.URL + "/data")
	if err != nil {
		t.Fatal(err)
	}
	body := new(bytes.Buffer)
	_, _ = body.ReadFrom(resp.Body)
	resp.Body.Close()
	if !strings.Contains(body.String(), "hasGuideline") {
		t.Error("/data does not dump the loaded knowledge base")
	}
}

// reoptHTTP posts one /reopt request and decodes the response.
func reoptHTTP(t *testing.T, url, sql string, execute bool) *ReoptResponse {
	t.Helper()
	payload, _ := json.Marshal(ReoptRequest{SQL: sql, Execute: execute})
	resp, err := http.Post(url+"/reopt", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body := new(bytes.Buffer)
		_, _ = body.ReadFrom(resp.Body)
		t.Fatalf("/reopt: %s: %s", resp.Status, body.String())
	}
	var out ReoptResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return &out
}

// TestReoptHTTPAPI drives the serving surface end-to-end: a learned query
// posted to /reopt comes back matched with a rewritten plan and validated
// timings, /stats reports the probes, and bad requests fail cleanly.
func TestReoptHTTPAPI(t *testing.T) {
	sys := trainedSystem(t)
	srv := httptest.NewServer(sys.APIHandler())
	defer srv.Close()

	out := reoptHTTP(t, srv.URL, coreMatchedQuery.SQL(), true)
	if !out.Matched || len(out.Matches) == 0 {
		t.Fatalf("learned query did not match over HTTP: %+v", out)
	}
	if out.OriginalPlan == "" || !out.Executed {
		t.Errorf("missing plan or execution: %+v", out)
	}
	if out.Rewritten && out.ReoptimizedPlan == "" {
		t.Errorf("rewritten but no re-optimized plan rendered")
	}
	if out.Applied && out.GaloMillis > out.OriginalMillis {
		t.Errorf("applied rewrite regressed: %f -> %f", out.OriginalMillis, out.GaloMillis)
	}
	if out.OriginalPeakRows <= 0 || out.GaloPeakRows <= 0 {
		t.Errorf("validated execution did not report peak intermediate rows: %+v", out)
	}
	if out.Probes == 0 {
		t.Errorf("no probes reported")
	}
	for _, m := range out.Matches {
		if m.TemplateIRI == "" {
			t.Errorf("match without template IRI")
		}
	}

	// Unknown table: a clean 500, not a hang or panic.
	payload, _ := json.Marshal(ReoptRequest{SQL: "SELECT x FROM not_a_table"})
	resp, err := http.Post(srv.URL+"/reopt", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("re-optimizing an unknown table should fail")
	}
	// Malformed requests.
	for _, body := range []string{"", "{", `{"sql": ""}`} {
		resp, err := http.Post(srv.URL+"/reopt", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}
	// GET is not allowed.
	resp, err = http.Get(srv.URL + "/reopt")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /reopt: status %d, want 405", resp.StatusCode)
	}

	// Stats surface.
	stats, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer stats.Body.Close()
	var doc map[string]any
	if err := json.NewDecoder(stats.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc["kb_templates"].(float64) <= 0 {
		t.Errorf("/stats reports no templates: %v", doc)
	}
	execStats, ok := doc["executor"].(map[string]any)
	if !ok {
		t.Fatalf("/stats has no executor section: %v", doc)
	}
	if execStats["peak_intermediate_rows"].(float64) <= 0 {
		t.Errorf("/stats executor section reports no peak residency after executions: %v", execStats)
	}
}

// TestOnlineLearningThroughWorkload wires the loop at the System level:
// re-optimizing a workload containing the Figure 8 wide-range hazard with an
// empty KB and online learning enabled must promote templates into a new
// epoch, after which the same query matches — no batch Learn anywhere.
func TestOnlineLearningThroughWorkload(t *testing.T) {
	db, err := tpcds.Generate(tpcds.GenOptions{Seed: 31, Scale: 0.08, Hazards: true})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Learning.RandomPlans = 8
	cfg.Learning.PredicateVariants = 1
	cfg.Learning.Runs = 2
	cfg.Learning.Workers = 2
	cfg.Learning.MaxSubQueriesPerQuery = 10
	cfg.Online = learning.DefaultOnlineOptions()
	sys := NewSystem(db, cfg)
	defer sys.Close()

	q := tpcds.Fig8WideQuery(db)
	if _, _, err := sys.ReoptimizeWorkload([]*sqlparser.Query{q}); err != nil {
		t.Fatal(err)
	}
	sys.FlushOnlineLearning()
	stats := sys.OnlineStats()
	if stats.Triggered == 0 {
		t.Fatalf("misestimated workload run did not trigger online learning: %+v", stats)
	}
	if stats.TemplatesPromoted == 0 || sys.KB().Size() == 0 {
		t.Fatalf("no templates promoted online: %+v, KB size %d", stats, sys.KB().Size())
	}
	res, err := sys.Reoptimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) == 0 {
		t.Errorf("online-learned KB (size %d) does not match the offending query", sys.KB().Size())
	}
}

// TestConcurrentReoptimizeDuringKBPublication is the serving race gate (run
// in CI with -race and -cpu): at least 8 concurrent clients re-optimize —
// half in-process, half over the HTTP API — while the knowledge base is
// concurrently replaced wholesale (LoadKB) and extended incrementally
// (template publications into new epochs). No request may fail, and after
// the dust settles the matcher must answer from the final epoch only.
func TestConcurrentReoptimizeDuringKBPublication(t *testing.T) {
	sys := trainedSystem(t)
	path := filepath.Join(t.TempDir(), "kb.nt")
	if err := sys.SaveKB(path); err != nil {
		t.Fatal(err)
	}
	serve := NewSystem(coreDB, sys.Config)
	defer serve.Close()
	if err := serve.LoadKB(path); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(serve.APIHandler())
	defer srv.Close()

	const clients = 8
	const rounds = 6
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if c%2 == 0 {
					res, err := serve.Reoptimize(coreMatchedQuery)
					if err != nil {
						t.Errorf("client %d round %d: %v", c, r, err)
						return
					}
					if res.OriginalPlan == nil {
						t.Errorf("client %d: missing original plan", c)
					}
					for _, m := range res.Matches {
						if m.TemplateIRI == "" {
							t.Errorf("client %d: match without template", c)
						}
					}
				} else {
					out := reoptHTTP(t, srv.URL, coreMatchedQuery.SQL(), false)
					if out.OriginalPlan == "" {
						t.Errorf("client %d: HTTP response missing plan", c)
					}
				}
			}
		}(c)
	}
	// Publisher 1: wholesale KB replacement.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 4; i++ {
			if err := serve.LoadKB(path); err != nil {
				t.Errorf("LoadKB: %v", err)
			}
		}
	}()
	// Publisher 2: incremental epoch publications racing the readers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if _, err := serve.KB().Add(syntheticTemplate(i)); err != nil {
				t.Errorf("Add: %v", err)
			}
		}
	}()
	wg.Wait()

	// Quiesced: every match served now must come from the current epoch —
	// its template IRI must exist in the live knowledge base (a cache entry
	// surviving across epochs would surface a template the current KB may
	// not hold).
	knowledge := serve.KB()
	res, err := serve.Reoptimize(coreMatchedQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) == 0 {
		t.Fatal("trained query no longer matches after publications")
	}
	byIRI := map[string]bool{}
	for _, tmpl := range knowledge.Templates() {
		byIRI["http://galo/kb/template/"+tmpl.ID] = true
	}
	for _, m := range res.Matches {
		if !byIRI[m.TemplateIRI] {
			t.Errorf("match references template %s absent from the current epoch", m.TemplateIRI)
		}
	}
}

// syntheticTemplate builds a small distinct template, the unit of
// incremental epoch publication.
func syntheticTemplate(i int) *kb.Template {
	outer := &qgm.Node{Op: qgm.OpTBSCAN, Table: fmt.Sprintf("PUB_A%d", i), TableInstance: fmt.Sprintf("PUB_A%d", i), EstCardinality: 1000}
	inner := &qgm.Node{Op: qgm.OpIXSCAN, Table: fmt.Sprintf("PUB_B%d", i), TableInstance: fmt.Sprintf("PUB_B%d", i), Index: "IX", EstCardinality: 50}
	join := &qgm.Node{Op: qgm.OpHSJOIN, Outer: outer, Inner: inner, EstCardinality: 5000}
	plan := qgm.NewPlan(join)
	problem := plan.Root.Outer
	bounds := map[int]kb.Range{}
	problem.Walk(func(n *qgm.Node) {
		bounds[n.ID] = kb.Range{Lo: n.EstCardinality / 10, Hi: n.EstCardinality * 10}
	})
	return &kb.Template{
		Problem:      problem,
		Bounds:       bounds,
		GuidelineXML: "<OPTGUIDELINES><HSJOIN><TBSCAN TABID='TABLE_1'/><TBSCAN TABID='TABLE_2'/></HSJOIN></OPTGUIDELINES>",
		Improvement:  0.3,
		Structural:   true,
	}
}
