// Package core wires GALO's components — the transformation engine, the
// learning engine, the matching engine and the knowledge base — into the two
// workflows of the paper's Figure 2: offline learning over a workload, and
// online re-optimization of incoming queries.
//
// This is the system a deployment interacts with; the root package galo
// re-exports it as the public API.
package core

import (
	"fmt"
	"net/http"
	"os"
	"sync"

	"galo/internal/executor"
	"galo/internal/fuseki"
	"galo/internal/kb"
	"galo/internal/learning"
	"galo/internal/matching"
	"galo/internal/optimizer"
	"galo/internal/qgm"
	"galo/internal/sqlparser"
	"galo/internal/storage"
)

// Config configures a GALO system.
type Config struct {
	// Learning configures the offline learning engine.
	Learning learning.Options
	// Matching configures the online matching engine.
	Matching matching.Options
	// RemoteKB optionally points at a Fuseki-style SPARQL endpoint to use for
	// matching instead of the in-process knowledge base.
	RemoteKB string
}

// DefaultConfig returns the configuration used throughout the experiments.
func DefaultConfig() Config {
	return Config{Learning: learning.DefaultOptions(), Matching: matching.DefaultOptions()}
}

// System is one GALO deployment over a database instance.
type System struct {
	DB     *storage.Database
	KB     *kb.KB
	Config Config

	mu      sync.Mutex
	matcher *matching.Engine
}

// NewSystem creates a GALO system over the database with an empty knowledge
// base.
func NewSystem(db *storage.Database, cfg Config) *System {
	if cfg.Matching.MaxJoins == 0 {
		cfg.Matching = matching.DefaultOptions()
	}
	if cfg.Learning.JoinThreshold == 0 {
		cfg.Learning = learning.DefaultOptions()
	}
	return &System{DB: db, KB: kb.New(), Config: cfg}
}

// endpoint returns the knowledge base endpoint used for matching.
func (s *System) endpoint() matching.Endpoint {
	if s.Config.RemoteKB != "" {
		return fuseki.NewClient(s.Config.RemoteKB)
	}
	return fuseki.LocalEndpoint{Store: s.KB.Store()}
}

// matchingEngine returns the system's shared matching engine, so the
// routinization cache persists across queries (the paper's Figure 12:
// workload re-optimization gets cheaper as fragments repeat). The engine is
// rebuilt when the knowledge base object is replaced.
func (s *System) matchingEngine() *matching.Engine {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.matcher == nil {
		s.matcher = matching.New(s.DB.Catalog, s.endpoint(), s.Config.Matching)
	}
	return s.matcher
}

// kbSnapshot reads the current knowledge base pointer under the same lock
// LoadKB replaces it under, so callers racing a LoadKB see a consistent
// (old or new) knowledge base rather than a torn read.
func (s *System) kbSnapshot() *kb.KB {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.KB
}

// Learn runs the offline learning workflow over the workload queries and
// populates the knowledge base.
func (s *System) Learn(queries []*sqlparser.Query) (*learning.Report, error) {
	engine := learning.New(s.DB, s.kbSnapshot(), s.Config.Learning)
	return engine.LearnWorkload(queries)
}

// Optimize plans a query without GALO's third optimization tier (the baseline
// the experiments compare against).
func (s *System) Optimize(q *sqlparser.Query) (*qgm.Plan, error) {
	opt := optimizer.New(s.DB.Catalog, s.Config.Matching.OptimizerOptions)
	plan, _, err := opt.Optimize(q)
	return plan, err
}

// Reoptimize runs the online workflow for one query: plan, match against the
// knowledge base, and re-optimize with the matched guidelines.
func (s *System) Reoptimize(q *sqlparser.Query) (*matching.Result, error) {
	return s.matchingEngine().Reoptimize(q)
}

// Execute runs a plan and returns its result and runtime statistics.
func (s *System) Execute(plan *qgm.Plan, q *sqlparser.Query) (*executor.Result, error) {
	return executor.New(s.DB).Execute(plan, q)
}

// QueryOutcome is the before/after record of one workload query, the unit of
// Figure 10.
type QueryOutcome struct {
	Query string
	// Matched reports whether any knowledge base pattern matched the plan;
	// Applied reports whether the rewritten plan was kept after validation.
	Matched        bool
	Applied        bool
	Rewrites       int
	OriginalMillis float64
	GaloMillis     float64
	MatchMillis    float64
}

// Improvement returns the relative improvement of the GALO plan (0 when no
// rewrite was applied).
func (o QueryOutcome) Improvement() float64 {
	if !o.Applied || o.OriginalMillis <= 0 {
		return 0
	}
	return (o.OriginalMillis - o.GaloMillis) / o.OriginalMillis
}

// WorkloadSummary aggregates a re-optimized workload run.
type WorkloadSummary struct {
	Queries        int
	Matched        int
	Applied        int
	AvgImprovement float64 // over applied queries
	TotalOriginal  float64
	TotalGalo      float64
}

// ReoptimizeWorkload re-optimizes and executes every query of a workload,
// returning per-query outcomes and a summary. Query runtimes are simulated
// (executor time model); the real wall-clock matching overhead — marginal in
// the paper, since real queries run for minutes — is reported separately in
// each outcome's MatchMillis.
//
// Rewrites are validated the way the paper's routinization does when the
// workload is periodically executed: the rewritten plan is kept only when it
// does not run slower than the original, so a matched pattern whose benefit
// does not transfer to this query's context never regresses the workload.
func (s *System) ReoptimizeWorkload(queries []*sqlparser.Query) ([]QueryOutcome, WorkloadSummary, error) {
	exec := executor.New(s.DB)
	var outcomes []QueryOutcome
	var summary WorkloadSummary
	improvements := 0.0
	for _, q := range queries {
		res, err := s.Reoptimize(q)
		if err != nil {
			return nil, summary, fmt.Errorf("reoptimize %s: %w", q.Name, err)
		}
		origRun, err := exec.Execute(res.OriginalPlan, q)
		if err != nil {
			return nil, summary, fmt.Errorf("execute %s: %w", q.Name, err)
		}
		outcome := QueryOutcome{
			Query:          q.Name,
			OriginalMillis: origRun.Stats.ElapsedMillis,
			GaloMillis:     origRun.Stats.ElapsedMillis,
			MatchMillis:    res.MatchMillis,
		}
		if res.ReoptimizedPlan != nil && res.Rewritten() {
			galoRun, err := exec.Execute(res.ReoptimizedPlan, q)
			if err != nil {
				return nil, summary, fmt.Errorf("execute rewritten %s: %w", q.Name, err)
			}
			outcome.Matched = true
			outcome.Rewrites = len(res.Matches)
			if galoRun.Stats.ElapsedMillis <= origRun.Stats.ElapsedMillis {
				outcome.Applied = true
				outcome.GaloMillis = galoRun.Stats.ElapsedMillis
			}
		}
		outcomes = append(outcomes, outcome)
		summary.Queries++
		summary.TotalOriginal += outcome.OriginalMillis
		summary.TotalGalo += outcome.GaloMillis
		if outcome.Matched {
			summary.Matched++
		}
		if outcome.Applied {
			summary.Applied++
			improvements += outcome.Improvement()
		}
	}
	if summary.Applied > 0 {
		summary.AvgImprovement = improvements / float64(summary.Applied)
	}
	return outcomes, summary, nil
}

// SaveKB writes the knowledge base to a file in N-Triples format.
func (s *System) SaveKB(path string) error {
	return os.WriteFile(path, []byte(s.kbSnapshot().NTriples()), 0o644)
}

// LoadKB loads a knowledge base previously written with SaveKB, replacing the
// current one.
func (s *System) LoadKB(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	fresh := kb.New()
	if err := fresh.LoadNTriples(string(data)); err != nil {
		return err
	}
	s.mu.Lock()
	s.KB = fresh
	s.matcher = nil // the engine (and its cache) points at the old store
	s.mu.Unlock()
	return nil
}

// ImportKB merges another system's knowledge base into this one (the
// cross-workload knowledge sharing of Exp-2).
func (s *System) ImportKB(other *kb.KB) error { return s.kbSnapshot().Merge(other) }

// ServeKB exposes the knowledge base as a Fuseki-style SPARQL endpoint on the
// given address; it blocks until the server stops.
func (s *System) ServeKB(addr string) error {
	return http.ListenAndServe(addr, fuseki.NewServer(s.kbSnapshot().Store()))
}

// KBHandler returns the HTTP handler serving the knowledge base, for callers
// that want to manage the listener themselves.
func (s *System) KBHandler() http.Handler { return fuseki.NewServer(s.kbSnapshot().Store()) }
