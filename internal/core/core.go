package core

import (
	"fmt"
	"net/http"
	"os"
	"runtime"
	"sync"
	"sync/atomic"

	"galo/internal/executor"
	"galo/internal/fleet"
	"galo/internal/fuseki"
	"galo/internal/kb"
	"galo/internal/learning"
	"galo/internal/matching"
	"galo/internal/optimizer"
	"galo/internal/qgm"
	"galo/internal/rdf"
	"galo/internal/sqlparser"
	"galo/internal/storage"
	"galo/internal/wal"
)

// Config configures a GALO system. Zero-valued fields are filled with the
// defaults used throughout the experiments; set fields are preserved, so a
// caller can customize one knob without re-stating the rest.
type Config struct {
	// Learning configures the offline learning engine.
	Learning learning.Options
	// Matching configures the online matching engine.
	Matching matching.Options
	// RemoteKB optionally points at a Fuseki-style SPARQL endpoint to use for
	// matching instead of the in-process knowledge base.
	RemoteKB string
	// ReoptWorkers bounds the worker pool ReoptimizeWorkload fans queries
	// across; 0 means GOMAXPROCS, 1 restores the sequential behaviour.
	ReoptWorkers int
	// Online configures the online incremental learning loop (disabled by
	// default; `galo serve -online` and tests enable it).
	Online learning.OnlineOptions
	// Shards is the number of knowledge base shards (kb.NewSharded). Each
	// template lives in exactly one shard and publishes epochs only there;
	// a plan's probes fan out to the shards its fragment signatures route
	// to. 0 means a single shard. Ignored when RemoteKB is set (a remote
	// endpoint presents as one shard).
	Shards int
	// Admission configures serving-time admission control for the HTTP API
	// (per-client probe budgets and load shedding on /reopt); the zero
	// value disables it.
	Admission AdmissionOptions
	// DataDir enables the durable knowledge base: every template publication
	// is appended to a per-shard write-ahead log under this directory before
	// it becomes visible, and snapshots compact the log in the background.
	// OpenDataDir recovers the previous generation on boot. Empty disables
	// persistence (the knowledge base is in-memory only). Requires the
	// in-process KB (incompatible with RemoteKB).
	DataDir string
	// Sync is the WAL fsync policy (wal.SyncInterval by default: a
	// background fsync every wal.Options.SyncEvery).
	Sync wal.SyncPolicy
	// SnapshotEvery overrides how many effective triple changes a shard
	// accumulates past its last snapshot before compaction; 0 means the
	// wal package default.
	SnapshotEvery uint64
	// WALFS overrides the durability layer's filesystem — the fault
	// injection seam for tests; nil means the real disk.
	WALFS wal.FS
	// Exec configures the system executor: exchange parallelism per execution
	// and the peak-residency memory budget the governor admits concurrent
	// executions against. The zero value is serial, ungoverned execution.
	Exec ExecOptions
	// Tenancy configures per-tenant knowledge base namespaces and per-tenant
	// /stats accounting on the serving API; the zero value keeps the single
	// shared namespace (counters are still collected per client identity).
	Tenancy TenancyOptions
	// Fleet replaces the in-process knowledge base shards with a fleet of
	// remote replicated shard servers (`galo shard` processes): probes route
	// through fleet.ShardEndpoints with retries, failover, hedging and
	// circuit breakers, and a rebalancer can migrate hot shapes between
	// shards (fleet.Options.Rebalance). The zero value disables the fleet.
	// Takes precedence over RemoteKB; matching degrades per shard
	// (TolerateProbeErrors is forced on) instead of failing requests.
	// Tenant-isolated namespaces (Tenancy) keep their local per-tenant KBs —
	// the fleet serves the shared namespace.
	Fleet fleet.Options
}

// DefaultConfig returns the configuration used throughout the experiments.
func DefaultConfig() Config {
	return Config{Learning: learning.DefaultOptions(), Matching: matching.DefaultOptions()}
}

// fillConfig fills only the unset fields of a partially-customized Config —
// a caller who set Matching.ProbeWorkers must not lose it because
// Matching.MaxJoins was left zero.
func fillConfig(cfg Config) Config {
	md := matching.DefaultOptions()
	m := &cfg.Matching
	if m.MaxJoins == 0 {
		m.MaxJoins = md.MaxJoins
	}
	if m.OptimizerOptions == (optimizer.Options{}) {
		m.OptimizerOptions = md.OptimizerOptions
	}
	ld := learning.DefaultOptions()
	l := &cfg.Learning
	if l.JoinThreshold == 0 {
		l.JoinThreshold = ld.JoinThreshold
	}
	if l.MaxSubQueriesPerQuery == 0 {
		l.MaxSubQueriesPerQuery = ld.MaxSubQueriesPerQuery
	}
	if l.RandomPlans == 0 {
		l.RandomPlans = ld.RandomPlans
	}
	if l.PredicateVariants == 0 {
		l.PredicateVariants = ld.PredicateVariants
	}
	if l.Runs == 0 {
		l.Runs = ld.Runs
	}
	if l.MinImprovement == 0 {
		l.MinImprovement = ld.MinImprovement
	}
	if l.BoundsSlack == 0 {
		l.BoundsSlack = ld.BoundsSlack
	}
	if l.Workers == 0 {
		l.Workers = ld.Workers
	}
	if l.Seed == 0 {
		l.Seed = ld.Seed
	}
	if l.Workload == "" {
		l.Workload = ld.Workload
	}
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.Fleet.Enabled() {
		// A dead shard must degrade that shard's rewrites, not fail whole
		// /reopt requests — the gateway's retries already masked what could
		// be masked by the time an error reaches the matcher.
		cfg.Matching.TolerateProbeErrors = true
	}
	return cfg
}

// System is one GALO deployment over a database instance. It is safe for
// concurrent use: Reoptimize may race Learn, LoadKB and the online learner's
// epoch publications.
type System struct {
	DB     *storage.Database
	Config Config

	// mu guards the knowledge base pointer, the matching engine, the online
	// learner and the persistence manager; the heavy work happens outside it.
	mu      sync.Mutex
	kb      *kb.KB
	matcher *matching.Engine
	online  *learning.Online
	persist *wal.Manager
	closed  bool

	// recovered summarizes what OpenDataDir found, for /stats.
	recovered RecoveryInfo

	// draining flips when Shutdown begins: the HTTP surface answers 503
	// (except /healthz) while in-flight requests finish.
	draining atomic.Bool

	// srvMu guards the http.Servers Serve/ServeKB started, so Shutdown can
	// drain them.
	srvMu   sync.Mutex
	servers []*http.Server

	// admission holds the HTTP API's admission-control state (server.go).
	admission admissionState

	// tenants holds the per-tenant namespaces and counters (tenancy.go).
	tenants tenancyState

	// fleetG is the remote-shard gateway (nil without Config.Fleet); rebal is
	// its probe-skew rebalancer, started with the matching engine when
	// Config.Fleet.Rebalance.Enabled is set.
	fleetG *fleet.Fleet
	rebal  *fleet.Rebalancer

	// exec is the persistent system executor: one shared-scan registry for
	// the whole system, so concurrent executions of large scans can share a
	// snapshot pass; gov admits executions against Config.Exec.MemBudgetBytes
	// (nil budget semantics handled inside — acquire is passthrough when the
	// budget is zero).
	exec *executor.Executor
	gov  *execGovernor

	// peakIntermediateRows / peakIntermediateBytes are the worst
	// intermediate-row residency any single execution on this system has
	// reported (executor.RunStats.PeakIntermediateRows) — the number /stats
	// exposes so operators can see the memory headroom concurrent plan
	// execution needs under the streaming executor.
	peakIntermediateRows  atomic.Int64
	peakIntermediateBytes atomic.Int64
}

// NewSystem creates a GALO system over the database with an empty knowledge
// base (sharded per Config.Shards). Zero-valued Config fields are filled
// with defaults; explicitly set fields are preserved.
func NewSystem(db *storage.Database, cfg Config) *System {
	cfg = fillConfig(cfg)
	exec := executor.New(db)
	exec.Workers = cfg.Exec.Workers
	exec.ShareScans = true
	s := &System{
		DB:     db,
		kb:     kb.NewSharded(cfg.Shards),
		Config: cfg,
		exec:   exec,
		gov:    newExecGovernor(cfg.Exec.MemBudgetBytes),
	}
	if cfg.Fleet.Enabled() {
		s.fleetG = fleet.New(cfg.Fleet)
	}
	return s
}

// KB returns the current knowledge base. The pointer is replaced wholesale
// by LoadKB, so callers that need several consistent reads should hold on to
// the returned KB (or pin its store's snapshot) rather than calling KB()
// repeatedly.
func (s *System) KB() *kb.KB {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.kb
}

// endpoints returns the per-shard knowledge base endpoints and the router
// used for matching. With a fleet configured, the SHARED namespace routes
// through the gateway's fault-tolerant remote shard endpoints (shared=false —
// a tenant's isolated namespace — keeps its local per-tenant KB). A remote
// knowledge base presents as a single shard (remote endpoints cannot be
// partitioned from here); the in-process KB gets one pinned-snapshot
// endpoint per shard, routed by the same shape-prefix function the KB used
// to place templates.
func (s *System) endpoints(knowledge *kb.KB, shared bool) ([]matching.Endpoint, matching.Router) {
	if shared && s.fleetG != nil {
		eps := make([]matching.Endpoint, s.fleetG.Shards())
		for i := range eps {
			eps[i] = s.fleetG.Endpoint(i)
		}
		return eps, s.fleetG.Route
	}
	if s.Config.RemoteKB != "" {
		return []matching.Endpoint{fuseki.NewClient(s.Config.RemoteKB)}, nil
	}
	stores := knowledge.Stores()
	eps := make([]matching.Endpoint, len(stores))
	for i, st := range stores {
		eps[i] = fuseki.LocalEndpoint{Store: st}
	}
	return eps, knowledge.RouteShape
}

// matchingEngine returns the system's shared matching engine, so the
// routinization cache persists across queries (the paper's Figure 12:
// workload re-optimization gets cheaper as fragments repeat). The engine is
// rebuilt when the knowledge base object is replaced; template additions
// within one knowledge base invalidate cache entries through the owning
// shard's epoch instead.
func (s *System) matchingEngine() *matching.Engine {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.matcher == nil {
		eps, router := s.endpoints(s.kb, true)
		s.matcher = matching.NewSharded(s.DB.Catalog, eps, router, s.Config.Matching)
		if s.fleetG != nil && s.Config.Fleet.Rebalance.Enabled && s.rebal == nil && !s.closed {
			s.rebal = s.fleetG.NewRebalancer(s.matcher.ProbesByShard, s.Config.Fleet.Rebalance)
			s.rebal.Start()
		}
	}
	return s.matcher
}

// onlineLearner lazily starts the online incremental learner; a closed
// system never restarts it (an Execute racing Close must not leak a fresh
// worker goroutine past shutdown).
func (s *System) onlineLearner() *learning.Online {
	if !s.Config.Online.Enabled {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	if s.online == nil {
		s.online = learning.NewOnline(s.DB, s.KB, s.Config.Learning, s.Config.Online)
	}
	return s.online
}

// OnlineStats returns the online learner's counters (zero when the loop is
// disabled or has not started).
func (s *System) OnlineStats() learning.OnlineStats {
	s.mu.Lock()
	online := s.online
	s.mu.Unlock()
	if online == nil {
		return learning.OnlineStats{}
	}
	return online.Stats()
}

// FlushOnlineLearning blocks until the online learner's backlog is analyzed
// and its templates are published — for tests and benchmarks that need the
// next epoch deterministically.
func (s *System) FlushOnlineLearning() {
	s.mu.Lock()
	online := s.online
	s.mu.Unlock()
	if online != nil {
		online.Flush()
	}
}

// Close stops the system's background work and keeps it stopped: later
// Executes will not restart it. The online learner closes FIRST — its final
// template publications still reach the write-ahead log — and the
// persistence manager closes last, ending with the final WAL fsync. It is
// safe to call on a system that never started any, and idempotent.
func (s *System) Close() {
	s.mu.Lock()
	online := s.online
	s.online = nil
	persist := s.persist
	s.persist = nil
	rebal := s.rebal
	s.rebal = nil
	s.closed = true
	s.mu.Unlock()
	if rebal != nil {
		rebal.Stop()
	}
	if online != nil {
		online.Close()
	}
	if persist != nil {
		_ = persist.Close()
	}
}

// Learn runs the offline learning workflow over the workload queries and
// populates the knowledge base.
func (s *System) Learn(queries []*sqlparser.Query) (*learning.Report, error) {
	engine := learning.New(s.DB, s.KB(), s.Config.Learning)
	return engine.LearnWorkload(queries)
}

// Optimize plans a query without GALO's third optimization tier (the baseline
// the experiments compare against).
func (s *System) Optimize(q *sqlparser.Query) (*qgm.Plan, error) {
	opt := optimizer.New(s.DB.Catalog, s.Config.Matching.OptimizerOptions)
	plan, _, err := opt.Optimize(q)
	return plan, err
}

// Reoptimize runs the online workflow for one query: plan, match against the
// knowledge base, and re-optimize with the matched guidelines.
func (s *System) Reoptimize(q *sqlparser.Query) (*matching.Result, error) {
	return s.matchingEngine().Reoptimize(q)
}

// Execute runs a plan and returns its result and runtime statistics. The
// execution is admitted by the memory governor against the plan's estimated
// peak residency (Config.Exec.MemBudgetBytes): it may wait for headroom, and
// a plan too big for the whole budget runs alone and serially. When online
// learning is enabled, the executed plan's actual-vs-estimated cardinality
// gap is offered to the incremental learner.
func (s *System) Execute(plan *qgm.Plan, q *sqlparser.Query) (*executor.Result, error) {
	grant := s.gov.acquire(plan.EstPeakResidencyBytes(), s.exec.Workers)
	res, err := s.exec.WithWorkers(grant.workers).Execute(plan, q)
	grant.release()
	if err == nil {
		raiseMax(&s.peakIntermediateRows, res.Stats.PeakIntermediateRows)
		raiseMax(&s.peakIntermediateBytes, res.Stats.PeakIntermediateBytes)
		// The drain gate must win the race with the learner: once Shutdown
		// has flipped draining, Observe would enqueue work behind the final
		// flush and the observation could publish templates after the WAL's
		// last fsync. Requests admitted before the flip still observe.
		if online := s.onlineLearner(); online != nil && !s.draining.Load() {
			online.Observe(q, plan)
		}
	}
	return res, err
}

// raiseMax lifts an atomic high-water mark to at least v.
func raiseMax(m *atomic.Int64, v int64) {
	for {
		cur := m.Load()
		if v <= cur || m.CompareAndSwap(cur, v) {
			return
		}
	}
}

// PeakIntermediate returns the worst single-execution intermediate-row
// residency observed so far (rows, approximate bytes).
func (s *System) PeakIntermediate() (rows, bytes int64) {
	return s.peakIntermediateRows.Load(), s.peakIntermediateBytes.Load()
}

// ExecStats is the /stats snapshot of the parallel executor: configured
// parallelism, shared-scan counters and the memory governor's admission state.
type ExecStats struct {
	// Workers is the configured exchange worker count (Config.Exec.Workers).
	Workers int `json:"workers"`
	// SharedScanPasses / SharedScanAttached / SharedScanOverflows count
	// shared base-table passes spawned, consumers that joined one, and
	// consumers detached because they fell too far behind.
	SharedScanPasses    int64 `json:"shared_scan_passes"`
	SharedScanAttached  int64 `json:"shared_scan_attached"`
	SharedScanOverflows int64 `json:"shared_scan_overflows"`
	// ExchangeSegments counts parallel segments started over the system's
	// lifetime; ExchangeWorkers is the number of worker goroutines live now.
	ExchangeSegments int64 `json:"exchange_segments"`
	ExchangeWorkers  int64 `json:"exchange_workers"`
	// Governor is the admission state of the residency budget.
	Governor GovernorStats `json:"governor"`
}

// ExecutorStats snapshots the system executor's parallelism counters.
func (s *System) ExecutorStats() ExecStats {
	passes, attached, overflows := s.exec.SharedScanStats()
	return ExecStats{
		Workers:             s.exec.Workers,
		SharedScanPasses:    passes,
		SharedScanAttached:  attached,
		SharedScanOverflows: overflows,
		ExchangeSegments:    executor.ExchangeSegmentCount(),
		ExchangeWorkers:     executor.ExchangeWorkerCount(),
		Governor:            s.gov.stats(),
	}
}

// QueryOutcome is the before/after record of one workload query, the unit of
// Figure 10.
type QueryOutcome struct {
	Query string
	// Matched reports whether any knowledge base pattern matched the plan;
	// Applied reports whether the rewritten plan was kept after validation.
	Matched        bool
	Applied        bool
	Rewrites       int
	OriginalMillis float64
	GaloMillis     float64
	MatchMillis    float64
}

// Improvement returns the relative improvement of the GALO plan (0 when no
// rewrite was applied).
func (o QueryOutcome) Improvement() float64 {
	if !o.Applied || o.OriginalMillis <= 0 {
		return 0
	}
	return (o.OriginalMillis - o.GaloMillis) / o.OriginalMillis
}

// WorkloadSummary aggregates a re-optimized workload run.
type WorkloadSummary struct {
	Queries        int
	Matched        int
	Applied        int
	AvgImprovement float64 // over applied queries
	TotalOriginal  float64
	TotalGalo      float64
}

// ReoptimizeWorkload re-optimizes and executes every query of a workload
// across a bounded worker pool (Config.ReoptWorkers), returning per-query
// outcomes in workload order and a summary. Query runtimes are simulated
// (executor time model); the real wall-clock matching overhead — marginal in
// the paper, since real queries run for minutes — is reported separately in
// each outcome's MatchMillis.
//
// Rewrites are validated the way the paper's routinization does when the
// workload is periodically executed: the rewritten plan is kept only when it
// does not run slower than the original, so a matched pattern whose benefit
// does not transfer to this query's context never regresses the workload.
func (s *System) ReoptimizeWorkload(queries []*sqlparser.Query) ([]QueryOutcome, WorkloadSummary, error) {
	var summary WorkloadSummary
	workers := s.Config.ReoptWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	if workers < 1 {
		workers = 1
	}
	outcomes := make([]QueryOutcome, len(queries))
	errs := make([]error, len(queries))
	jobs := make(chan int)
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				// A failure anywhere aborts the run: remaining queries are
				// skipped instead of burning executor time on outcomes the
				// error return will discard anyway.
				if failed.Load() {
					continue
				}
				if outcomes[i], errs[i] = s.reoptimizeOne(queries[i]); errs[i] != nil {
					failed.Store(true)
				}
			}
		}()
	}
	for i := range queries {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	improvements := 0.0
	for i := range queries {
		if errs[i] != nil {
			return nil, summary, errs[i]
		}
		outcome := outcomes[i]
		summary.Queries++
		summary.TotalOriginal += outcome.OriginalMillis
		summary.TotalGalo += outcome.GaloMillis
		if outcome.Matched {
			summary.Matched++
		}
		if outcome.Applied {
			summary.Applied++
			improvements += outcome.Improvement()
		}
	}
	if summary.Applied > 0 {
		summary.AvgImprovement = improvements / float64(summary.Applied)
	}
	return outcomes, summary, nil
}

// reoptimizeOne runs the full online workflow for one workload query:
// re-optimize, execute both plans, keep the rewrite only when it does not
// regress, and feed the executed original plan to the online learner.
func (s *System) reoptimizeOne(q *sqlparser.Query) (QueryOutcome, error) {
	res, err := s.Reoptimize(q)
	if err != nil {
		return QueryOutcome{}, fmt.Errorf("reoptimize %s: %w", q.Name, err)
	}
	origRun, err := s.Execute(res.OriginalPlan, q)
	if err != nil {
		return QueryOutcome{}, fmt.Errorf("execute %s: %w", q.Name, err)
	}
	outcome := QueryOutcome{
		Query:          q.Name,
		OriginalMillis: origRun.Stats.ElapsedMillis,
		GaloMillis:     origRun.Stats.ElapsedMillis,
		MatchMillis:    res.MatchMillis,
	}
	if res.ReoptimizedPlan != nil && res.Rewritten() {
		galoRun, err := s.Execute(res.ReoptimizedPlan, q)
		if err != nil {
			return QueryOutcome{}, fmt.Errorf("execute rewritten %s: %w", q.Name, err)
		}
		outcome.Matched = true
		outcome.Rewrites = len(res.Matches)
		if galoRun.Stats.ElapsedMillis <= origRun.Stats.ElapsedMillis {
			outcome.Applied = true
			outcome.GaloMillis = galoRun.Stats.ElapsedMillis
		}
	}
	return outcome, nil
}

// SaveKB writes the knowledge base to a file in N-Triples format.
func (s *System) SaveKB(path string) error {
	return os.WriteFile(path, []byte(s.KB().NTriples()), 0o644)
}

// LoadKB loads a knowledge base previously written with SaveKB, replacing the
// current one. In-flight matchers finish against the knowledge base (and
// epoch snapshots) they already pinned; new work sees the fresh one. When
// persistence is open, the previous generation's log is closed and the data
// directory is rebound to the replacement stores (a fresh lineage: old shard
// state is wiped and new initial snapshots are written).
func (s *System) LoadKB(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	fresh := kb.NewSharded(s.Config.Shards)
	if err := fresh.LoadNTriples(string(data)); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	old := s.persist
	s.persist = nil
	if old != nil {
		// Detach the old stores' commit hooks and finish their log before
		// the swap; the replacement stores get their own manager below.
		_ = old.Close()
	}
	s.kb = fresh
	s.matcher = nil // the engine (and its cache) points at the old store
	if old != nil {
		mgr, err := wal.Start(s.walOptions(), fresh.Stores(), true, nil)
		if err != nil {
			return fmt.Errorf("core: rebinding data dir to the loaded KB: %w", err)
		}
		s.persist = mgr
	}
	return nil
}

// ImportKB merges another system's knowledge base into this one (the
// cross-workload knowledge sharing of Exp-2).
func (s *System) ImportKB(other *kb.KB) error { return s.KB().Merge(other) }

// ServeKB exposes the knowledge base as a Fuseki-style SPARQL endpoint on the
// given address; it blocks until the server stops (nil after a graceful
// Shutdown). The server carries the same read/write timeouts as Serve.
func (s *System) ServeKB(addr string) error {
	return s.serveHTTP(addr, s.drainGate(s.KBHandler()))
}

// KBHandler returns the HTTP handler serving the knowledge base, for callers
// that want to manage the listener themselves. The handler resolves the
// current knowledge base per request, so it keeps serving the live shard
// stores after a LoadKB replacement; /query fans out over a pinned snapshot
// of every shard, and POST /data additively merges the posted templates
// into their owning shards (kb.KB.LoadNTriples).
func (s *System) KBHandler() http.Handler {
	return fuseki.NewShardedServer(
		func() []*rdf.Store { return s.KB().Stores() },
		func(nt string) error { return s.KB().LoadNTriples(nt) },
	)
}
