package core

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"galo/internal/workload/trace"
)

// traceSystem builds a serving system over the multi-tenant trace workload.
func traceSystem(t *testing.T, cfg Config) (*System, *httptest.Server) {
	t.Helper()
	gen := trace.New().DefaultGen()
	gen.Scale = 0.25
	db, err := trace.New().Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	sys := NewSystem(db, cfg)
	t.Cleanup(func() { sys.Close() })
	srv := httptest.NewServer(sys.APIHandler())
	t.Cleanup(srv.Close)
	return sys, srv
}

// postReopt posts one /reopt request under a client identity and returns the
// status code plus the decoded body (nil unless 200).
func postReopt(t *testing.T, url, client, sql, name string) (int, *ReoptResponse) {
	t.Helper()
	payload, _ := json.Marshal(ReoptRequest{SQL: sql, Name: name})
	req, err := http.NewRequest(http.MethodPost, url+"/reopt", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Galo-Client", client)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, nil
	}
	var out ReoptResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, &out
}

// tenantRows indexes a /stats tenancy section by tenant name.
func tenantRows(t *testing.T, url string) map[string]tenantStat {
	t.Helper()
	doc := statsOf(t, url)
	rows := make(map[string]tenantStat, len(doc.Tenancy.Tenants))
	for _, row := range doc.Tenancy.Tenants {
		rows[row.Tenant] = row
	}
	return rows
}

// TestBurstyTraceTenantIsolation replays a deterministic bursty multi-tenant
// arrival trace (trace.Arrivals) against `galo serve`'s HTTP surface with
// per-client probe budgets, concurrently (trace.Replay dispatches one
// goroutine per arrival — CI runs this under -race -cpu 1,4). The
// admission-control isolation contract: bursting tenants are throttled with
// 429 against their *own* buckets, a quiet tenant issuing spaced requests is
// never throttled, and the per-tenant /stats rows reconcile exactly with
// what the clients observed — probes sum to the sum of response probes,
// requests and throttles match per tenant.
func TestBurstyTraceTenantIsolation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Admission.ProbeBudget = 2
	cfg.Admission.RefillPerSecond = 1e-9 // no refill within the test
	_, srv := traceSystem(t, cfg)

	const quiet = "tenant-quiet"
	if code, _ := postReopt(t, srv.URL, quiet, trace.TenantJoinQuery(1).SQL(), "QUIET.1"); code != http.StatusOK {
		t.Fatalf("quiet tenant pre-storm request: status %d, want 200", code)
	}

	// 4 tenants, 96 arrivals in bursts of 16: every tenant fires multiple
	// bursts far beyond its 2-probe budget.
	arrivals := trace.Arrivals(trace.TraceOptions{Seed: 42, Tenants: 4, Arrivals: 96, BurstLen: 16})
	type tally struct {
		ok, throttled, probes int64
	}
	var mu sync.Mutex
	byTenant := map[string]*tally{}
	trace.Replay(arrivals, 50, func(a trace.Arrival) {
		code, resp := postReopt(t, srv.URL, a.Tenant, a.Query.SQL(), a.Query.Name)
		mu.Lock()
		defer mu.Unlock()
		tl := byTenant[a.Tenant]
		if tl == nil {
			tl = &tally{}
			byTenant[a.Tenant] = tl
		}
		switch code {
		case http.StatusOK:
			tl.ok++
			tl.probes += int64(resp.Probes)
		case http.StatusTooManyRequests:
			tl.throttled++
		default:
			t.Errorf("%s %s: unexpected status %d", a.Tenant, a.Query.Name, code)
		}
	})

	// After the storm the quiet tenant still has budget: per-client buckets
	// mean the bursters spent only their own tokens.
	if code, _ := postReopt(t, srv.URL, quiet, trace.TenantJoinQuery(1).SQL(), "QUIET.2"); code != http.StatusOK {
		t.Errorf("quiet tenant post-storm request: status %d, want 200 (bursting tenants must not drain other buckets)", code)
	}

	rows := tenantRows(t, srv.URL)
	var sumProbes, sumThrottled, wantProbes int64
	for tenant, tl := range byTenant {
		row, ok := rows[tenant]
		if !ok {
			t.Fatalf("no /stats tenancy row for %s", tenant)
		}
		if tl.throttled == 0 {
			t.Errorf("%s: fired bursts of %d against a budget of %d but was never throttled", tenant, 16, cfg.Admission.ProbeBudget)
		}
		if row.Requests != tl.ok {
			t.Errorf("%s: /stats requests = %d, client saw %d answered", tenant, row.Requests, tl.ok)
		}
		if row.Throttled != tl.throttled {
			t.Errorf("%s: /stats throttled = %d, client saw %d 429s", tenant, row.Throttled, tl.throttled)
		}
		if row.Probes != tl.probes {
			t.Errorf("%s: /stats probes = %d, client responses sum to %d", tenant, row.Probes, tl.probes)
		}
		wantProbes += tl.probes
	}
	qrow, ok := rows[quiet]
	if !ok {
		t.Fatal("no /stats tenancy row for the quiet tenant")
	}
	if qrow.Throttled != 0 || qrow.Shed != 0 {
		t.Errorf("quiet tenant throttled=%d shed=%d, want 0/0", qrow.Throttled, qrow.Shed)
	}
	wantProbes += qrow.Probes
	for _, row := range rows {
		sumProbes += row.Probes
		sumThrottled += row.Throttled
	}
	if sumProbes != wantProbes {
		t.Errorf("tenancy probe rows sum to %d, responses sum to %d", sumProbes, wantProbes)
	}
	doc := statsOf(t, srv.URL)
	if sumThrottled != doc.Admission.ThrottledTotal {
		t.Errorf("tenancy throttled rows sum to %d, admission throttled_total = %d", sumThrottled, doc.Admission.ThrottledTotal)
	}
}

// TestTenantNamespaceIsolation pins the per-tenant knowledge base contract:
// with Tenancy.Enabled, a template seeded into tenant A's namespace matches
// for A and is invisible to tenant B; with ShareTemplates, a tenant whose
// own namespace comes up empty falls back to the shared knowledge base.
func TestTenantNamespaceIsolation(t *testing.T) {
	trained := trainedSystem(t)

	cfg := trained.Config
	cfg.Tenancy = TenancyOptions{Enabled: true}
	sys := NewSystem(coreDB, cfg)
	defer sys.Close()
	srv := httptest.NewServer(sys.APIHandler())
	defer srv.Close()

	if err := sys.TenantKB("tenant-a").Merge(trained.KB()); err != nil {
		t.Fatal(err)
	}
	sql := coreMatchedQuery.SQL()
	if _, resp := postReopt(t, srv.URL, "tenant-a", sql, "TEN.A"); resp == nil || !resp.Matched {
		t.Fatalf("tenant-a did not match in its seeded namespace: %+v", resp)
	}
	if _, resp := postReopt(t, srv.URL, "tenant-b", sql, "TEN.B"); resp == nil || resp.Matched {
		t.Fatalf("tenant-b matched against tenant-a's templates: %+v", resp)
	}
	rows := tenantRows(t, srv.URL)
	if rows["tenant-a"].Templates == 0 {
		t.Error("/stats shows no templates in tenant-a's namespace")
	}
	if rows["tenant-b"].Templates != 0 {
		t.Errorf("/stats shows %d templates in tenant-b's empty namespace", rows["tenant-b"].Templates)
	}

	// ShareTemplates: a tenant-namespace miss falls back to the shared KB.
	cfg.Tenancy.ShareTemplates = true
	shared := NewSystem(coreDB, cfg)
	defer shared.Close()
	if err := shared.ImportKB(trained.KB()); err != nil {
		t.Fatal(err)
	}
	srv2 := httptest.NewServer(shared.APIHandler())
	defer srv2.Close()
	if _, resp := postReopt(t, srv2.URL, "tenant-b", sql, "TEN.B2"); resp == nil || !resp.Matched {
		t.Fatalf("ShareTemplates fallback did not reach the shared templates: %+v", resp)
	}
	rows = tenantRows(t, srv2.URL)
	if rows["tenant-b"].SharedMatches != 1 {
		t.Errorf("tenant-b shared_matches = %d, want 1", rows["tenant-b"].SharedMatches)
	}
}

// TestTenantOverflowSlot pins the MaxTenants bound: identities beyond the
// cap land on the single overflow row, and counter sums stay exact.
func TestTenantOverflowSlot(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Tenancy = TenancyOptions{Enabled: true, MaxTenants: 2}
	_, srv := traceSystem(t, cfg)

	sql := trace.TenantJoinQuery(1).SQL()
	var answered int
	for _, client := range []string{"t1", "t2", "t3", "t4", "t5"} {
		if code, _ := postReopt(t, srv.URL, client, sql, "OVF"); code == http.StatusOK {
			answered++
		}
	}
	rows := tenantRows(t, srv.URL)
	if len(rows) != 3 { // t1, t2, (overflow)
		t.Fatalf("got %d tenancy rows %v, want 2 tenants + overflow", len(rows), rows)
	}
	ovf, ok := rows[OverflowTenant]
	if !ok {
		t.Fatalf("no %s row in %v", OverflowTenant, rows)
	}
	if ovf.Requests != 3 {
		t.Errorf("overflow requests = %d, want 3", ovf.Requests)
	}
	var total int64
	for _, row := range rows {
		total += row.Requests
	}
	if total != int64(answered) {
		t.Errorf("tenancy request rows sum to %d, %d requests were answered", total, answered)
	}
}
