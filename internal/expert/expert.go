// Package expert simulates the manual problem determination the paper
// compares GALO against in Exp-5 and Exp-6: an experienced engineer reading
// the QGM, trying a handful of local plan changes (swap a join's inputs,
// change a join method, change an access method) and measuring them, with a
// limited exploration budget and a realistic chance of misreading the plan
// (the paper notes decimal vs exponential cardinality formats were a common
// source of confusion).
//
// The real study used four IBM experts; this simulation stands in for them so
// the cost (Figure 13) and quality (Figure 14) comparisons can be
// regenerated.
package expert

import (
	"math/rand"

	"galo/internal/executor"
	"galo/internal/optimizer"
	"galo/internal/qgm"
	"galo/internal/sqlparser"
	"galo/internal/storage"
)

// Options configures the simulated expert.
type Options struct {
	// Budget is how many alternative plans the expert is willing to try by
	// hand before settling.
	Budget int
	// AnalysisMinutesPerPlan is the manual effort (reading the QGM, editing
	// guidelines, re-running, comparing) charged per alternative examined.
	AnalysisMinutesPerPlan float64
	// MisreadProbability is the chance the expert misreads a plan property
	// and discards a genuinely better alternative.
	MisreadProbability float64
	// Seed drives the expert's (deterministic) choices.
	Seed int64
}

// DefaultOptions models a capable but time-constrained expert.
func DefaultOptions() Options {
	return Options{Budget: 6, AnalysisMinutesPerPlan: 45, MisreadProbability: 0.25, Seed: 42}
}

// Result is the outcome of one manual diagnosis.
type Result struct {
	// Found reports whether the expert found any plan better than the
	// optimizer's.
	Found bool
	// BestPlan is the best plan the expert settled on (the optimizer's plan
	// when nothing better was found).
	BestPlan *qgm.Plan
	// Improvement is the relative runtime improvement over the optimizer's
	// plan (0 when none).
	Improvement float64
	// PlansExamined is how many alternatives were tried.
	PlansExamined int
	// ManualMinutes is the simulated human effort spent.
	ManualMinutes float64
	// MachineMillis is the simulated execution time of the plans that were
	// run while diagnosing.
	MachineMillis float64
}

// Expert simulates one engineer.
type Expert struct {
	DB   *storage.Database
	Opts Options
}

// New returns a simulated expert over the database.
func New(db *storage.Database, opts Options) *Expert {
	if opts.Budget <= 0 {
		opts.Budget = 6
	}
	return &Expert{DB: db, Opts: opts}
}

// Diagnose performs the manual tuning session for one query.
func (e *Expert) Diagnose(q *sqlparser.Query) (*Result, error) {
	opt := optimizer.New(e.DB.Catalog, optimizer.DefaultOptions())
	exec := executor.New(e.DB)
	rng := rand.New(rand.NewSource(e.Opts.Seed + int64(len(q.SQL()))))

	baseline, _, err := opt.Optimize(q)
	if err != nil {
		return nil, err
	}
	baseRes, err := exec.Execute(baseline, q)
	if err != nil {
		return nil, err
	}
	res := &Result{BestPlan: baseline, MachineMillis: baseRes.Stats.ElapsedMillis}
	bestMillis := baseRes.Stats.ElapsedMillis

	alternatives := e.alternatives(q, baseline, rng)
	for _, alt := range alternatives {
		if res.PlansExamined >= e.Opts.Budget {
			break
		}
		plan, err := opt.BuildPlan(q, alt)
		if err != nil {
			continue
		}
		res.PlansExamined++
		res.ManualMinutes += e.Opts.AnalysisMinutesPerPlan
		run, err := exec.Execute(plan, q)
		if err != nil {
			continue
		}
		res.MachineMillis += run.Stats.ElapsedMillis
		if run.Stats.ElapsedMillis < bestMillis {
			// The expert sometimes misreads the comparison (e.g. confusing
			// 1.441e+06 with 1.441) and discards the better plan.
			if rng.Float64() < e.Opts.MisreadProbability {
				continue
			}
			bestMillis = run.Stats.ElapsedMillis
			res.BestPlan = plan
			res.Found = true
		}
	}
	if res.Found && baseRes.Stats.ElapsedMillis > 0 {
		res.Improvement = (baseRes.Stats.ElapsedMillis - bestMillis) / baseRes.Stats.ElapsedMillis
	}
	// Reading the original QGM and writing up findings costs time even when
	// nothing is tried.
	res.ManualMinutes += e.Opts.AnalysisMinutesPerPlan
	return res, nil
}

// alternatives enumerates the local tweaks an expert typically tries: flip
// the join order of the topmost joins, switch join methods, and force table
// scans instead of index access.
func (e *Expert) alternatives(q *sqlparser.Query, baseline *qgm.Plan, rng *rand.Rand) []*optimizer.Spec {
	refs := make([]string, len(q.From))
	for i, tr := range q.From {
		refs[i] = tr.Name()
	}
	if len(refs) < 2 {
		return nil
	}
	var specs []*optimizer.Spec
	methods := []qgm.OpType{qgm.OpHSJOIN, qgm.OpMSJOIN, qgm.OpNLJOIN}
	// Left-deep plans over the original reference order and one shuffled
	// order, with each join method, plus a "force table scans" variant.
	orders := [][]string{refs}
	shuffled := append([]string(nil), refs...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	orders = append(orders, shuffled)
	for _, order := range orders {
		for _, m := range methods {
			specs = append(specs, leftDeep(order, m, false))
		}
		specs = append(specs, leftDeep(order, qgm.OpHSJOIN, true))
	}
	_ = baseline
	return specs
}

func leftDeep(order []string, method qgm.OpType, forceScans bool) *optimizer.Spec {
	leaf := func(ref string) *optimizer.Spec {
		if forceScans {
			return optimizer.LeafAccess(ref, qgm.OpTBSCAN, "")
		}
		return optimizer.Leaf(ref)
	}
	tree := leaf(order[0])
	for _, ref := range order[1:] {
		tree = optimizer.Join(method, tree, leaf(ref))
	}
	return tree
}
