package expert

import (
	"testing"

	"galo/internal/sqlparser"
	"galo/internal/storage"
	"galo/internal/workload/tpcds"
)

var db *storage.Database

func expertDB(t *testing.T) *storage.Database {
	t.Helper()
	if db == nil {
		var err error
		db, err = tpcds.Generate(tpcds.GenOptions{Seed: 13, Scale: 0.08, Hazards: true})
		if err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestDiagnoseChargesManualEffort(t *testing.T) {
	e := New(expertDB(t), DefaultOptions())
	res, err := e.Diagnose(tpcds.Fig8Query())
	if err != nil {
		t.Fatalf("Diagnose: %v", err)
	}
	if res.PlansExamined == 0 || res.PlansExamined > e.Opts.Budget {
		t.Errorf("PlansExamined = %d (budget %d)", res.PlansExamined, e.Opts.Budget)
	}
	if res.ManualMinutes < e.Opts.AnalysisMinutesPerPlan {
		t.Errorf("ManualMinutes = %v", res.ManualMinutes)
	}
	if res.BestPlan == nil || res.MachineMillis <= 0 {
		t.Errorf("incomplete result: %+v", res)
	}
	if res.Found && (res.Improvement <= 0 || res.Improvement >= 1) {
		t.Errorf("inconsistent improvement: %+v", res)
	}
}

func TestDiagnoseIsDeterministicForSameSeed(t *testing.T) {
	a, err := New(expertDB(t), DefaultOptions()).Diagnose(tpcds.Fig7Query())
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(expertDB(t), DefaultOptions()).Diagnose(tpcds.Fig7Query())
	if err != nil {
		t.Fatal(err)
	}
	if a.Improvement != b.Improvement || a.PlansExamined != b.PlansExamined {
		t.Errorf("expert not deterministic: %+v vs %+v", a, b)
	}
}

func TestSingleTableQueryHasNoAlternatives(t *testing.T) {
	e := New(expertDB(t), DefaultOptions())
	res, err := e.Diagnose(sqlparser.MustParse(`SELECT i_item_desc FROM item WHERE i_category = 'Music'`))
	if err != nil {
		t.Fatalf("Diagnose: %v", err)
	}
	if res.Found || res.PlansExamined != 0 {
		t.Errorf("single-table diagnosis should find nothing: %+v", res)
	}
}

func TestTighterBudgetExaminesFewerPlans(t *testing.T) {
	opts := DefaultOptions()
	opts.Budget = 2
	res, err := New(expertDB(t), opts).Diagnose(tpcds.Fig8Query())
	if err != nil {
		t.Fatal(err)
	}
	if res.PlansExamined > 2 {
		t.Errorf("budget not respected: %d", res.PlansExamined)
	}
}
