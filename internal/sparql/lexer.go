package sparql

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind uint8

const (
	tEOF tokKind = iota
	tIdent   // keyword or prefixed name (predURI:hasPopType)
	tVar     // ?name
	tIRI     // <http://...>
	tString  // "..." or '...'
	tNumber  // 123 or 1.5
	tPunct   // { } ( ) . / + , *
	tOp      // <= >= < > = != && ||
)

type tok struct {
	kind tokKind
	text string
	pos  int
}

type lexState struct {
	in   string
	pos  int
	toks []tok
}

func lexQuery(in string) ([]tok, error) {
	l := &lexState{in: in}
	for l.pos < len(l.in) {
		ch := l.in[l.pos]
		switch {
		case ch == ' ' || ch == '\t' || ch == '\n' || ch == '\r':
			l.pos++
		case ch == '#':
			for l.pos < len(l.in) && l.in[l.pos] != '\n' {
				l.pos++
			}
		case ch == '?' || ch == '$':
			start := l.pos
			l.pos++
			for l.pos < len(l.in) && isNamePart(rune(l.in[l.pos])) {
				l.pos++
			}
			l.toks = append(l.toks, tok{tVar, l.in[start+1 : l.pos], start})
		case ch == '<':
			if l.pos+1 < len(l.in) && l.in[l.pos+1] == '=' {
				l.toks = append(l.toks, tok{tOp, "<=", l.pos})
				l.pos += 2
				continue
			}
			// IRI reference if a '>' appears before whitespace.
			end := -1
			for i := l.pos + 1; i < len(l.in); i++ {
				if l.in[i] == '>' {
					end = i
					break
				}
				if l.in[i] == ' ' || l.in[i] == '\n' || l.in[i] == '\t' {
					break
				}
			}
			if end > 0 {
				l.toks = append(l.toks, tok{tIRI, l.in[l.pos+1 : end], l.pos})
				l.pos = end + 1
			} else {
				l.toks = append(l.toks, tok{tOp, "<", l.pos})
				l.pos++
			}
		case ch == '>':
			if l.pos+1 < len(l.in) && l.in[l.pos+1] == '=' {
				l.toks = append(l.toks, tok{tOp, ">=", l.pos})
				l.pos += 2
			} else {
				l.toks = append(l.toks, tok{tOp, ">", l.pos})
				l.pos++
			}
		case ch == '=':
			l.toks = append(l.toks, tok{tOp, "=", l.pos})
			l.pos++
		case ch == '!':
			if l.pos+1 < len(l.in) && l.in[l.pos+1] == '=' {
				l.toks = append(l.toks, tok{tOp, "!=", l.pos})
				l.pos += 2
			} else {
				return nil, fmt.Errorf("sparql: unexpected '!' at %d", l.pos)
			}
		case ch == '&':
			if l.pos+1 < len(l.in) && l.in[l.pos+1] == '&' {
				l.toks = append(l.toks, tok{tOp, "&&", l.pos})
				l.pos += 2
			} else {
				return nil, fmt.Errorf("sparql: unexpected '&' at %d", l.pos)
			}
		case ch == '|':
			if l.pos+1 < len(l.in) && l.in[l.pos+1] == '|' {
				l.toks = append(l.toks, tok{tOp, "||", l.pos})
				l.pos += 2
			} else {
				return nil, fmt.Errorf("sparql: unexpected '|' at %d", l.pos)
			}
		case ch == '"' || ch == '\'':
			quote := ch
			start := l.pos
			l.pos++
			var sb strings.Builder
			for l.pos < len(l.in) && l.in[l.pos] != quote {
				if l.in[l.pos] == '\\' && l.pos+1 < len(l.in) {
					l.pos++
				}
				sb.WriteByte(l.in[l.pos])
				l.pos++
			}
			if l.pos >= len(l.in) {
				return nil, fmt.Errorf("sparql: unterminated string at %d", start)
			}
			l.pos++
			l.toks = append(l.toks, tok{tString, sb.String(), start})
		case ch >= '0' && ch <= '9' || (ch == '-' && l.pos+1 < len(l.in) && l.in[l.pos+1] >= '0' && l.in[l.pos+1] <= '9'):
			start := l.pos
			l.pos++
			for l.pos < len(l.in) && (l.in[l.pos] >= '0' && l.in[l.pos] <= '9' || l.in[l.pos] == '.' || l.in[l.pos] == 'e' || l.in[l.pos] == 'E' || l.in[l.pos] == '+' || l.in[l.pos] == '-') {
				// Stop a trailing '.' that terminates a triple pattern rather
				// than continuing a decimal.
				if l.in[l.pos] == '.' && (l.pos+1 >= len(l.in) || l.in[l.pos+1] < '0' || l.in[l.pos+1] > '9') {
					break
				}
				l.pos++
			}
			l.toks = append(l.toks, tok{tNumber, l.in[start:l.pos], start})
		case strings.ContainsRune("{}().,/+*;", rune(ch)):
			l.toks = append(l.toks, tok{tPunct, string(ch), l.pos})
			l.pos++
		case isNameStart(rune(ch)):
			start := l.pos
			for l.pos < len(l.in) && (isNamePart(rune(l.in[l.pos])) || l.in[l.pos] == ':') {
				l.pos++
			}
			l.toks = append(l.toks, tok{tIdent, l.in[start:l.pos], start})
		default:
			return nil, fmt.Errorf("sparql: unexpected character %q at %d", ch, l.pos)
		}
	}
	l.toks = append(l.toks, tok{kind: tEOF, pos: l.pos})
	return l.toks, nil
}

func isNameStart(r rune) bool { return unicode.IsLetter(r) || r == '_' }
func isNamePart(r rune) bool  { return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' }
