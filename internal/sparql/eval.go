package sparql

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"galo/internal/rdf"
)

// Execute evaluates the query against a graph — the live store, or a pinned
// rdf.Snapshot when the caller needs the whole evaluation to see one
// consistent epoch — and returns its solutions. Basic graph patterns are
// evaluated by backtracking joins in greedy selectivity order: at every step
// the evaluator picks the cheapest remaining pattern under the current
// bindings (using the graph's cardinality accessors as estimates), so
// bindings produced by selective patterns propagate into the rest of the
// plan instead of being discovered by exhaustive enumeration. Filters are
// applied as soon as all of their variables are bound; numeric FILTER bounds
// on a pattern's object variable additionally route candidate-start
// resolution through the graph's numeric band index, so patterns like
// "?pop :hasLowerCardinality ?lo . FILTER(?lo <= C)" touch only the
// subjects inside the value band instead of every subject carrying the
// predicate.
func Execute(q *Query, graph rdf.Graph) ([]Solution, error) {
	if q == nil || len(q.Patterns) == 0 {
		return nil, fmt.Errorf("sparql: empty query")
	}
	ev := &evaluator{q: q, graph: graph, done: make([]bool, len(q.Patterns))}
	ev.filterVars = make([][]string, len(q.Filters))
	for i, f := range q.Filters {
		ev.filterVars[i] = exprVars(f)
	}
	ev.bounds = numericBounds(q.Filters)
	ev.match(len(q.Patterns), Solution{}, map[int]bool{})
	solutions := ev.results
	if q.Limit > 0 && len(solutions) > q.Limit {
		solutions = solutions[:q.Limit]
	}
	// Project.
	if !q.SelectAll && len(q.Select) > 0 {
		projected := make([]Solution, len(solutions))
		for i, sol := range solutions {
			row := Solution{}
			for _, v := range q.Select {
				if t, ok := sol[v]; ok {
					row[v] = t
				}
			}
			projected[i] = row
		}
		solutions = projected
	}
	return solutions, nil
}

type evaluator struct {
	q          *Query
	graph      rdf.Graph
	results    []Solution
	filterVars [][]string
	// bounds holds the numeric interval each variable is constrained to by
	// the query's top-level FILTER comparisons, for band-index lookups.
	bounds map[string]varBounds
	// done marks the patterns already evaluated on the current backtracking
	// branch; the evaluator picks the cheapest not-done pattern next.
	done []bool
}

// varBounds is the closed numeric interval a FILTER constrains a variable
// to; nil ends are open. The band lookup it feeds is conservative — the
// FILTERs themselves still decide membership exactly — so strict and
// non-strict comparisons may share the same bound.
type varBounds struct {
	lo, hi *float64
}

// numericBounds derives per-variable numeric intervals from the top-level
// conjunction of filters: only comparisons between one variable and one
// numeric constant, reached through AND alone, constrain a variable (an OR
// branch cannot, since the other branch may admit anything).
func numericBounds(filters []Expr) map[string]varBounds {
	out := map[string]varBounds{}
	narrow := func(v string, lo, hi *float64) {
		b := out[v]
		if lo != nil && (b.lo == nil || *lo > *b.lo) {
			b.lo = lo
		}
		if hi != nil && (b.hi == nil || *hi < *b.hi) {
			b.hi = hi
		}
		out[v] = b
	}
	var collect func(Expr)
	collect = func(e Expr) {
		switch x := e.(type) {
		case And:
			collect(x.L)
			collect(x.R)
		case Comparison:
			var v string
			var c float64
			op := x.Op
			switch {
			case x.L.Var != "" && x.R.Num != nil:
				v, c = x.L.Var, *x.R.Num
			case x.R.Var != "" && x.L.Num != nil:
				// Mirror the comparison so the variable is on the left.
				v, c = x.R.Var, *x.L.Num
				switch op {
				case "<":
					op = ">"
				case "<=":
					op = ">="
				case ">":
					op = "<"
				case ">=":
					op = "<="
				}
			default:
				return
			}
			val := c
			switch op {
			case "<", "<=":
				narrow(v, nil, &val)
			case ">", ">=":
				narrow(v, &val, nil)
			case "=":
				narrow(v, &val, &val)
			}
		}
	}
	for _, f := range filters {
		collect(f)
	}
	return out
}

// objectBand returns the numeric interval constraining the pattern's object
// variable, when the pattern is a single plain step whose object is an
// as-yet-unbound variable under FILTER bounds — the case the band index
// accelerates.
func (ev *evaluator) objectBand(pat Pattern, binding Solution) (lo, hi *float64, ok bool) {
	if !pat.O.IsVar || len(pat.Path) != 1 || pat.Path[0].OneOrMore {
		return nil, nil, false
	}
	if _, bound := binding[pat.O.Var]; bound {
		return nil, nil, false
	}
	b, has := ev.bounds[pat.O.Var]
	if !has || (b.lo == nil && b.hi == nil) {
		return nil, nil, false
	}
	return b.lo, b.hi, true
}

func (ev *evaluator) match(remaining int, binding Solution, applied map[int]bool) {
	if ev.q.Limit > 0 && len(ev.results) >= ev.q.Limit {
		return
	}
	// Apply any filter whose variables are all bound and which has not been
	// applied yet; abandon this branch if one fails.
	for fi, vars := range ev.filterVars {
		if applied[fi] {
			continue
		}
		ready := true
		for _, v := range vars {
			if _, ok := binding[v]; !ok {
				ready = false
				break
			}
		}
		if !ready {
			continue
		}
		if !evalExpr(ev.q.Filters[fi], binding) {
			return
		}
		applied = cloneApplied(applied)
		applied[fi] = true
	}
	if remaining == 0 {
		// All patterns matched; any remaining filters have unbound variables
		// and evaluate to an error → treat as failure per SPARQL semantics.
		for fi := range ev.q.Filters {
			if !applied[fi] {
				return
			}
		}
		ev.results = append(ev.results, cloneSolution(binding))
		return
	}
	// Greedy selectivity ordering: evaluate the cheapest remaining pattern
	// under the current bindings next.
	best, bestCost := -1, int(^uint(0)>>1)
	for i := range ev.q.Patterns {
		if ev.done[i] {
			continue
		}
		if c := ev.estimate(ev.q.Patterns[i], binding); c < bestCost {
			best, bestCost = i, c
		}
	}
	pat := ev.q.Patterns[best]
	ev.done[best] = true
	for _, start := range ev.resolveStarts(pat, binding) {
		for _, end := range ev.walkPath(start, pat.Path) {
			newBinding, ok := extend(binding, pat, start, end)
			if !ok {
				continue
			}
			ev.match(remaining-1, newBinding, applied)
		}
	}
	ev.done[best] = false
}

// resolveRef resolves a pattern position to a concrete term: directly for
// concrete terms, through the binding for bound variables.
func resolveRef(n NodeRef, binding Solution) (rdf.Term, bool) {
	if !n.IsVar {
		return n.Term, true
	}
	t, ok := binding[n.Var]
	return t, ok
}

// estimate returns the estimated number of bindings the pattern produces
// under the current binding, from the graph's cardinality accessors:
// CountSP for a resolved subject, CountPO for a resolved object reachable
// through the POS index, CountPInRange when FILTER bounds confine the
// object variable to a numeric band, and the predicate's total triple count
// otherwise.
func (ev *evaluator) estimate(pat Pattern, binding Solution) int {
	first := pat.Path[0]
	if s, ok := resolveRef(pat.S, binding); ok {
		return ev.graph.CountSP(s, first.Pred)
	}
	if o, ok := resolveRef(pat.O, binding); ok && len(pat.Path) == 1 && !first.OneOrMore {
		return ev.graph.CountPO(first.Pred, o)
	}
	if lo, hi, ok := ev.objectBand(pat, binding); ok {
		return ev.graph.CountPInRange(first.Pred, lo, hi)
	}
	return ev.graph.CountP(first.Pred)
}

// resolveStarts returns the candidate subjects for a pattern given the
// current binding: the resolved subject when it is bound or concrete, the
// POS-index reverse lookup when the object is resolved and the path is a
// single plain step, the numeric band index when FILTER bounds confine the
// object variable, and otherwise every subject carrying the path's first
// predicate (never the whole store).
func (ev *evaluator) resolveStarts(pat Pattern, binding Solution) []rdf.Term {
	if s, ok := resolveRef(pat.S, binding); ok {
		return []rdf.Term{s}
	}
	first := pat.Path[0]
	if o, ok := resolveRef(pat.O, binding); ok && len(pat.Path) == 1 && !first.OneOrMore {
		return ev.graph.SubjectsOf(first.Pred, o)
	}
	if lo, hi, ok := ev.objectBand(pat, binding); ok {
		// Subjects outside the band carry no in-range value, so every one of
		// their bindings would fail the FILTER; subjects inside may also
		// carry out-of-range values, which the FILTER still rejects
		// individually. The band is therefore a safe restriction.
		return ev.graph.SubjectsWithPredInRange(first.Pred, lo, hi)
	}
	return ev.graph.SubjectsWithPred(first.Pred)
}

// walkPath follows the property path from the start term and returns every
// reachable object.
func (ev *evaluator) walkPath(start rdf.Term, path []PredStep) []rdf.Term {
	current := []rdf.Term{start}
	for _, step := range path {
		next := map[rdf.Term]bool{}
		if step.OneOrMore {
			// Transitive closure of the predicate from each current node.
			for _, c := range current {
				frontier := []rdf.Term{c}
				visited := map[rdf.Term]bool{}
				for len(frontier) > 0 {
					n := frontier[0]
					frontier = frontier[1:]
					for _, o := range ev.graph.ObjectsOf(n, step.Pred) {
						if !visited[o] {
							visited[o] = true
							next[o] = true
							frontier = append(frontier, o)
						}
					}
				}
			}
		} else {
			for _, c := range current {
				for _, o := range ev.graph.ObjectsOf(c, step.Pred) {
					next[o] = true
				}
			}
		}
		current = current[:0]
		for t := range next {
			current = append(current, t)
		}
		sort.Slice(current, func(i, j int) bool { return rdf.CompareTerms(current[i], current[j]) < 0 })
	}
	return current
}

func extend(binding Solution, pat Pattern, start, end rdf.Term) (Solution, bool) {
	out := cloneSolution(binding)
	if pat.S.IsVar {
		if existing, ok := out[pat.S.Var]; ok && existing != start {
			return nil, false
		}
		out[pat.S.Var] = start
	} else if pat.S.Term != start {
		return nil, false
	}
	if pat.O.IsVar {
		if existing, ok := out[pat.O.Var]; ok && existing != end {
			return nil, false
		}
		out[pat.O.Var] = end
	} else if pat.O.Term != end {
		return nil, false
	}
	return out, true
}

func cloneSolution(s Solution) Solution {
	out := make(Solution, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

func cloneApplied(m map[int]bool) map[int]bool {
	out := make(map[int]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// exprVars lists the variables an expression references.
func exprVars(e Expr) []string {
	seen := map[string]bool{}
	var collect func(Expr)
	addOp := func(o Operand) {
		if o.Var != "" {
			seen[o.Var] = true
		}
		if o.StrVar != "" {
			seen[o.StrVar] = true
		}
	}
	collect = func(e Expr) {
		switch x := e.(type) {
		case Comparison:
			addOp(x.L)
			addOp(x.R)
		case And:
			collect(x.L)
			collect(x.R)
		case Or:
			collect(x.L)
			collect(x.R)
		}
	}
	collect(e)
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// evalExpr evaluates a filter expression under a binding.
func evalExpr(e Expr, binding Solution) bool {
	switch x := e.(type) {
	case And:
		return evalExpr(x.L, binding) && evalExpr(x.R, binding)
	case Or:
		return evalExpr(x.L, binding) || evalExpr(x.R, binding)
	case Comparison:
		l, lok := operandValue(x.L, binding)
		r, rok := operandValue(x.R, binding)
		if !lok || !rok {
			return false
		}
		return compareValues(x.Op, l, r)
	default:
		return false
	}
}

// operandValue resolves an operand to a string representation (numbers keep
// their text form; numeric comparison is attempted first in compareValues).
func operandValue(o Operand, binding Solution) (string, bool) {
	switch {
	case o.Num != nil:
		return strconv.FormatFloat(*o.Num, 'f', -1, 64), true
	case o.Str != nil:
		return *o.Str, true
	case o.StrVar != "":
		t, ok := binding[o.StrVar]
		if !ok {
			return "", false
		}
		return t.Value, true
	case o.Var != "":
		t, ok := binding[o.Var]
		if !ok {
			return "", false
		}
		return t.Value, true
	default:
		return "", false
	}
}

func compareValues(op, l, r string) bool {
	lf, lerr := strconv.ParseFloat(strings.TrimSpace(l), 64)
	rf, rerr := strconv.ParseFloat(strings.TrimSpace(r), 64)
	var cmp int
	if lerr == nil && rerr == nil {
		switch {
		case lf < rf:
			cmp = -1
		case lf > rf:
			cmp = 1
		}
	} else {
		cmp = strings.Compare(l, r)
	}
	switch op {
	case "<":
		return cmp < 0
	case "<=":
		return cmp <= 0
	case ">":
		return cmp > 0
	case ">=":
		return cmp >= 0
	case "=":
		return cmp == 0
	case "!=":
		return cmp != 0
	default:
		return false
	}
}
