package sparql

import (
	"fmt"
	"testing"

	"galo/internal/rdf"
)

// bandStore builds a store shaped like the knowledge base's cardinality
// bounds: pops with hasLowerCardinality values 0, 10, ..., plus a type
// marker.
func bandStore(n int) *rdf.Store {
	s := rdf.NewStore()
	for i := 0; i < n; i++ {
		pop := rdf.NewIRI(fmt.Sprintf("http://x/pop%03d", i))
		s.Add(rdf.Triple{S: pop, P: rdf.NewIRI("http://p/hasLowerCardinality"), O: rdf.NewNumericLiteral(float64(i * 10))})
		s.Add(rdf.Triple{S: pop, P: rdf.NewIRI("http://p/hasPopType"), O: rdf.NewLiteral("HSJOIN")})
	}
	return s
}

// TestFilterBoundsUseBandIndex checks that a FILTER-bounded pattern returns
// exactly the in-band solutions — through the live store and through a
// pinned snapshot that subsequent writes must not disturb.
func TestFilterBoundsUseBandIndex(t *testing.T) {
	store := bandStore(50)
	q, err := Parse(`PREFIX predURI: <http://p/>
SELECT ?pop ?lo
WHERE {
 ?pop predURI:hasPopType "HSJOIN" .
 ?pop predURI:hasLowerCardinality ?lo .
 FILTER ( ?lo <= 40 ) .
 FILTER ( ?lo >= 20 ) .
}`)
	if err != nil {
		t.Fatal(err)
	}
	sols, err := Execute(q, store)
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 3 { // values 20, 30, 40
		t.Fatalf("got %d solutions, want 3: %v", len(sols), sols)
	}
	snap := store.Snapshot()
	store.Add(rdf.Triple{S: rdf.NewIRI("http://x/late"), P: rdf.NewIRI("http://p/hasLowerCardinality"), O: rdf.NewNumericLiteral(25)})
	store.Add(rdf.Triple{S: rdf.NewIRI("http://x/late"), P: rdf.NewIRI("http://p/hasPopType"), O: rdf.NewLiteral("HSJOIN")})
	pinned, err := Execute(q, snap)
	if err != nil {
		t.Fatal(err)
	}
	if len(pinned) != 3 {
		t.Errorf("pinned snapshot sees %d solutions, want 3", len(pinned))
	}
	live, err := Execute(q, store)
	if err != nil {
		t.Fatal(err)
	}
	if len(live) != 4 {
		t.Errorf("live store sees %d solutions, want 4", len(live))
	}
}

// TestNumericBoundsDerivation covers the filter→interval analysis, including
// mirrored comparisons and the OR guard.
func TestNumericBoundsDerivation(t *testing.T) {
	q, err := Parse(`PREFIX p: <http://p/>
SELECT ?a ?b ?c
WHERE {
 ?x p:v ?a .
 ?x p:w ?b .
 ?x p:u ?c .
 FILTER ( ?a <= 100 ) .
 FILTER ( ?a >= 5 ) .
 FILTER ( 50 >= ?b ) .
}`)
	if err != nil {
		t.Fatal(err)
	}
	bounds := numericBounds(q.Filters)
	a := bounds["a"]
	if a.lo == nil || *a.lo != 5 || a.hi == nil || *a.hi != 100 {
		t.Errorf("bounds[a] = %+v, want [5,100]", a)
	}
	b := bounds["b"]
	if b.hi == nil || *b.hi != 50 || b.lo != nil {
		t.Errorf("bounds[b] = %+v, want (-inf,50]", b)
	}
	if c, ok := bounds["c"]; ok && (c.lo != nil || c.hi != nil) {
		t.Errorf("bounds[c] = %+v, want unconstrained", c)
	}
}
