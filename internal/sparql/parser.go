package sparql

import (
	"fmt"
	"strconv"
	"strings"

	"galo/internal/rdf"
)

// Parse parses a SPARQL SELECT query in the supported subset.
func Parse(text string) (*Query, error) {
	toks, err := lexQuery(text)
	if err != nil {
		return nil, err
	}
	p := &qparser{toks: toks}
	q, err := p.parse()
	if err != nil {
		return nil, err
	}
	return q, nil
}

// MustParse parses or panics; for tests and static queries.
func MustParse(text string) *Query {
	q, err := Parse(text)
	if err != nil {
		panic(err)
	}
	return q
}

type qparser struct {
	toks []tok
	i    int
	q    *Query
}

func (p *qparser) peek() tok { return p.toks[p.i] }
func (p *qparser) next() tok { t := p.toks[p.i]; p.i++; return t }

func (p *qparser) keyword(kw string) bool {
	if p.peek().kind == tIdent && strings.EqualFold(p.peek().text, kw) {
		p.i++
		return true
	}
	return false
}

func (p *qparser) punct(s string) bool {
	if p.peek().kind == tPunct && p.peek().text == s {
		p.i++
		return true
	}
	return false
}

func (p *qparser) expectPunct(s string) error {
	if !p.punct(s) {
		return fmt.Errorf("sparql: expected %q near %q", s, p.peek().text)
	}
	return nil
}

func (p *qparser) parse() (*Query, error) {
	p.q = &Query{Prefixes: map[string]string{}}
	for p.keyword("PREFIX") {
		name := p.next()
		if name.kind != tIdent || !strings.HasSuffix(name.text, ":") {
			return nil, fmt.Errorf("sparql: expected prefix name ending in ':' near %q", name.text)
		}
		iri := p.next()
		if iri.kind != tIRI {
			return nil, fmt.Errorf("sparql: expected IRI after PREFIX %s", name.text)
		}
		p.q.Prefixes[strings.TrimSuffix(name.text, ":")] = iri.text
	}
	if !p.keyword("SELECT") {
		return nil, fmt.Errorf("sparql: expected SELECT near %q", p.peek().text)
	}
	if p.punct("*") {
		p.q.SelectAll = true
	} else {
		for p.peek().kind == tVar {
			p.q.Select = append(p.q.Select, p.next().text)
		}
		if len(p.q.Select) == 0 {
			return nil, fmt.Errorf("sparql: SELECT needs variables or *")
		}
	}
	if !p.keyword("WHERE") {
		return nil, fmt.Errorf("sparql: expected WHERE near %q", p.peek().text)
	}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	for {
		if p.punct("}") {
			break
		}
		if p.peek().kind == tEOF {
			return nil, fmt.Errorf("sparql: unterminated WHERE block")
		}
		if p.keyword("FILTER") {
			expr, err := p.parseFilter()
			if err != nil {
				return nil, err
			}
			p.q.Filters = append(p.q.Filters, expr)
			p.punct(".") // optional separator
			continue
		}
		pat, err := p.parsePattern()
		if err != nil {
			return nil, err
		}
		p.q.Patterns = append(p.q.Patterns, pat)
		p.punct(".") // optional trailing dot
	}
	if p.keyword("LIMIT") {
		n := p.next()
		if n.kind != tNumber {
			return nil, fmt.Errorf("sparql: LIMIT needs a number")
		}
		limit, err := strconv.Atoi(n.text)
		if err != nil {
			return nil, err
		}
		p.q.Limit = limit
	}
	if p.peek().kind != tEOF {
		return nil, fmt.Errorf("sparql: unexpected trailing input near %q", p.peek().text)
	}
	if len(p.q.Patterns) == 0 {
		return nil, fmt.Errorf("sparql: WHERE block has no triple patterns")
	}
	return p.q, nil
}

func (p *qparser) parseNode() (NodeRef, error) {
	t := p.peek()
	switch t.kind {
	case tVar:
		p.i++
		return Variable(t.text), nil
	case tIRI:
		p.i++
		return TermRef(rdf.NewIRI(t.text)), nil
	case tIdent:
		p.i++
		iri, err := p.expandPrefixed(t.text)
		if err != nil {
			return NodeRef{}, err
		}
		return TermRef(rdf.NewIRI(iri)), nil
	case tString:
		p.i++
		return TermRef(rdf.NewLiteral(t.text)), nil
	case tNumber:
		p.i++
		return TermRef(rdf.NewLiteral(t.text)), nil
	default:
		return NodeRef{}, fmt.Errorf("sparql: expected term or variable near %q", t.text)
	}
}

func (p *qparser) expandPrefixed(name string) (string, error) {
	idx := strings.Index(name, ":")
	if idx < 0 {
		return "", fmt.Errorf("sparql: %q is not a prefixed name", name)
	}
	prefix, local := name[:idx], name[idx+1:]
	base, ok := p.q.Prefixes[prefix]
	if !ok {
		return "", fmt.Errorf("sparql: unknown prefix %q", prefix)
	}
	return base + local, nil
}

func (p *qparser) parsePattern() (Pattern, error) {
	s, err := p.parseNode()
	if err != nil {
		return Pattern{}, err
	}
	var path []PredStep
	for {
		predNode, err := p.parseNode()
		if err != nil {
			return Pattern{}, err
		}
		if predNode.IsVar {
			return Pattern{}, fmt.Errorf("sparql: variable predicates are not supported (near ?%s)", predNode.Var)
		}
		step := PredStep{Pred: predNode.Term}
		if p.punct("+") {
			step.OneOrMore = true
		}
		path = append(path, step)
		if !p.punct("/") {
			break
		}
	}
	o, err := p.parseNode()
	if err != nil {
		return Pattern{}, err
	}
	return Pattern{S: s, O: o, Path: path}, nil
}

func (p *qparser) parseFilter() (Expr, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	expr, err := p.parseOrExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return expr, nil
}

func (p *qparser) parseOrExpr() (Expr, error) {
	left, err := p.parseAndExpr()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tOp && p.peek().text == "||" {
		p.i++
		right, err := p.parseAndExpr()
		if err != nil {
			return nil, err
		}
		left = Or{L: left, R: right}
	}
	return left, nil
}

func (p *qparser) parseAndExpr() (Expr, error) {
	left, err := p.parseComparison()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tOp && p.peek().text == "&&" {
		p.i++
		right, err := p.parseComparison()
		if err != nil {
			return nil, err
		}
		left = And{L: left, R: right}
	}
	return left, nil
}

func (p *qparser) parseComparison() (Expr, error) {
	if p.punct("(") {
		inner, err := p.parseOrExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return inner, nil
	}
	left, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	op := p.peek()
	if op.kind != tOp {
		return nil, fmt.Errorf("sparql: expected comparison operator near %q", op.text)
	}
	p.i++
	right, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	return Comparison{Op: op.text, L: left, R: right}, nil
}

func (p *qparser) parseOperand() (Operand, error) {
	t := p.peek()
	switch t.kind {
	case tVar:
		p.i++
		return Operand{Var: t.text}, nil
	case tNumber:
		p.i++
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return Operand{}, err
		}
		return Operand{Num: &f}, nil
	case tString:
		p.i++
		s := t.text
		return Operand{Str: &s}, nil
	case tIdent:
		if strings.EqualFold(t.text, "STR") {
			p.i++
			if err := p.expectPunct("("); err != nil {
				return Operand{}, err
			}
			v := p.peek()
			if v.kind != tVar {
				return Operand{}, fmt.Errorf("sparql: STR() needs a variable")
			}
			p.i++
			if err := p.expectPunct(")"); err != nil {
				return Operand{}, err
			}
			return Operand{StrVar: v.text}, nil
		}
	}
	return Operand{}, fmt.Errorf("sparql: expected operand near %q", t.text)
}
