// Package sparql implements the SPARQL subset GALO generates and evaluates
// against the RDF knowledge base: PREFIX declarations, SELECT over basic
// graph patterns, FILTER expressions with comparisons and the STR() function,
// and property paths (p+ and p1/p2), evaluated over an rdf.Store.
//
// It replaces Apache Jena's ARQ engine in the paper's architecture. The
// matching engine's auto-generated queries (Figure 6 of the paper) fall
// entirely within this subset.
package sparql

import (
	"fmt"
	"strings"

	"galo/internal/rdf"
)

// NodeRef is one position (subject, predicate or object) of a triple
// pattern: either a variable or a concrete RDF term.
type NodeRef struct {
	IsVar bool
	Var   string // without the leading '?'
	Term  rdf.Term
}

// Variable returns a variable node reference.
func Variable(name string) NodeRef { return NodeRef{IsVar: true, Var: strings.TrimPrefix(name, "?")} }

// TermRef returns a concrete-term node reference.
func TermRef(t rdf.Term) NodeRef { return NodeRef{Term: t} }

// String renders the node in SPARQL syntax.
func (n NodeRef) String() string {
	if n.IsVar {
		return "?" + n.Var
	}
	return n.Term.String()
}

// PredStep is one step of a property path: a predicate IRI, optionally with
// the one-or-more (+) modifier.
type PredStep struct {
	Pred      rdf.Term
	OneOrMore bool
}

// Pattern is one triple pattern of the WHERE clause. Path holds the
// predicate's property-path steps; a plain predicate is a single step.
type Pattern struct {
	S, O NodeRef
	Path []PredStep
}

// String renders the pattern in SPARQL syntax.
func (p Pattern) String() string {
	steps := make([]string, len(p.Path))
	for i, s := range p.Path {
		steps[i] = s.Pred.String()
		if s.OneOrMore {
			steps[i] += "+"
		}
	}
	return fmt.Sprintf("%s %s %s .", p.S, strings.Join(steps, "/"), p.O)
}

// Operand is one side of a comparison in a FILTER expression.
type Operand struct {
	// Exactly one of the following is meaningful.
	Var    string // variable reference (without '?')
	StrVar string // STR(?var)
	Num    *float64
	Str    *string
}

// Expr is a FILTER expression.
type Expr interface{ exprNode() }

// Comparison compares two operands with one of <, <=, >, >=, =, !=.
type Comparison struct {
	Op   string
	L, R Operand
}

// And is a conjunction of two expressions.
type And struct{ L, R Expr }

// Or is a disjunction of two expressions.
type Or struct{ L, R Expr }

func (Comparison) exprNode() {}
func (And) exprNode()        {}
func (Or) exprNode()         {}

// Query is one parsed SPARQL SELECT query.
type Query struct {
	Prefixes  map[string]string
	Select    []string // variable names without '?'
	SelectAll bool
	Patterns  []Pattern
	Filters   []Expr
	Limit     int // 0 means no limit
}

// Vars returns the variables mentioned in the query's patterns.
func (q *Query) Vars() []string {
	seen := map[string]bool{}
	var out []string
	add := func(n NodeRef) {
		if n.IsVar && !seen[n.Var] {
			seen[n.Var] = true
			out = append(out, n.Var)
		}
	}
	for _, p := range q.Patterns {
		add(p.S)
		add(p.O)
	}
	return out
}

// Solution is one result row: a binding of variable names to terms.
type Solution map[string]rdf.Term
