package sparql

import (
	"fmt"
	"testing"

	"galo/internal/rdf"
)

const prop = "http://galo/qep/property/"

func pop(id string) rdf.Term { return rdf.NewIRI("http://galo/qep/pop/" + id) }
func p(name string) rdf.Term { return rdf.NewIRI(prop + name) }

// planStore encodes a small plan graph: 2 -> 3 -> 4 chained by
// hasOutputStream, with types and cardinalities.
func planStore() *rdf.Store {
	s := rdf.NewStore()
	add := func(subj rdf.Term, name string, obj rdf.Term) { s.Add(rdf.Triple{S: subj, P: p(name), O: obj}) }
	add(pop("2"), "hasPopType", rdf.NewLiteral("HSJOIN"))
	add(pop("2"), "hasEstimateCardinality", rdf.NewNumericLiteral(13))
	add(pop("3"), "hasPopType", rdf.NewLiteral("NLJOIN"))
	add(pop("3"), "hasEstimateCardinality", rdf.NewNumericLiteral(1750))
	add(pop("4"), "hasPopType", rdf.NewLiteral("IXSCAN"))
	add(pop("4"), "hasEstimateCardinality", rdf.NewNumericLiteral(73049))
	add(pop("4"), "hasOutputStream", pop("3"))
	add(pop("3"), "hasOutputStream", pop("2"))
	return s
}

func TestParseFigure6StyleQuery(t *testing.T) {
	q, err := Parse(`PREFIX predURI: <http://galo/qep/property/>
		SELECT ?pop_Q3 ?pop_6
		WHERE {
			?pop_Q3 predURI:hasLowerRowSize ?ih1 .
			FILTER ( ?ih1 <= 8) .
			?pop_Q3 predURI:hasHigherRowSize ?ih2 .
			FILTER ( ?ih2 >= 8) .
			?pop_Q3 predURI:hasOutputStream ?pop_6 .
			FILTER (STR(?pop_6) > STR(?pop_Q3)) .
		}`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(q.Select) != 2 || q.Select[0] != "pop_Q3" {
		t.Errorf("Select = %v", q.Select)
	}
	if len(q.Patterns) != 3 || len(q.Filters) != 3 {
		t.Errorf("patterns=%d filters=%d", len(q.Patterns), len(q.Filters))
	}
	if q.Patterns[0].Path[0].Pred.Value != prop+"hasLowerRowSize" {
		t.Errorf("prefix not expanded: %v", q.Patterns[0].Path[0].Pred)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT ?x",                               // no WHERE
		"SELECT WHERE { ?x <p> ?y }",               // no vars
		"SELECT ?x WHERE { ?x <p> ?y",              // unterminated block
		"SELECT ?x WHERE { }",                      // no patterns
		"SELECT ?x WHERE { ?x ?p ?y }",             // variable predicate
		"PREFIX p <http://x> SELECT ?x WHERE { ?x p:a ?y }", // prefix without colon
		"SELECT ?x WHERE { ?x q:a ?y }",            // unknown prefix
		"SELECT ?x WHERE { ?x <p> ?y } LIMIT z",    // bad limit
		"SELECT ?x WHERE { ?x <p> ?y . FILTER (?y !! 3) }",
	}
	for _, text := range bad {
		if _, err := Parse(text); err == nil {
			t.Errorf("Parse(%q) should fail", text)
		}
	}
}

func TestExecuteSimpleChain(t *testing.T) {
	store := planStore()
	q := MustParse(`PREFIX pr: <http://galo/qep/property/>
		SELECT ?a ?b WHERE {
			?a pr:hasPopType "IXSCAN" .
			?a pr:hasOutputStream ?b .
			?b pr:hasPopType "NLJOIN" .
		}`)
	sols, err := Execute(q, store)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if len(sols) != 1 {
		t.Fatalf("solutions = %v", sols)
	}
	if sols[0]["a"] != pop("4") || sols[0]["b"] != pop("3") {
		t.Errorf("bindings = %v", sols[0])
	}
}

func TestExecuteFiltersNumericBounds(t *testing.T) {
	store := planStore()
	template := `PREFIX pr: <http://galo/qep/property/>
		SELECT ?x WHERE {
			?x pr:hasEstimateCardinality ?c .
			FILTER (?c >= %d && ?c <= %d) .
		}`
	sols, err := Execute(MustParse(fmt.Sprintf(template, 1000, 100000)), store)
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 2 {
		t.Errorf("range filter matched %d, want 2", len(sols))
	}
	sols, err = Execute(MustParse(fmt.Sprintf(template, 1, 20)), store)
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 1 {
		t.Errorf("narrow filter matched %d, want 1", len(sols))
	}
}

func TestExecuteStrFunctionAndDistinctness(t *testing.T) {
	store := planStore()
	// Two distinct join operators, enforced distinct via STR comparison as
	// the paper's generated queries do.
	q := MustParse(`PREFIX pr: <http://galo/qep/property/>
		SELECT ?a ?b WHERE {
			?a pr:hasEstimateCardinality ?ca .
			?b pr:hasEstimateCardinality ?cb .
			FILTER (STR(?a) > STR(?b)) .
		}`)
	sols, err := Execute(q, store)
	if err != nil {
		t.Fatal(err)
	}
	// 3 subjects -> ordered pairs with a>b: 3.
	if len(sols) != 3 {
		t.Errorf("solutions = %d, want 3", len(sols))
	}
	for _, s := range sols {
		if s["a"] == s["b"] {
			t.Errorf("STR filter failed to keep resources distinct: %v", s)
		}
	}
}

func TestExecutePropertyPathTransitive(t *testing.T) {
	store := planStore()
	q := MustParse(`PREFIX pr: <http://galo/qep/property/>
		SELECT ?top WHERE {
			<http://galo/qep/pop/4> pr:hasOutputStream+ ?top .
			?top pr:hasPopType "HSJOIN" .
		}`)
	sols, err := Execute(q, store)
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 1 || sols[0]["top"] != pop("2") {
		t.Errorf("transitive path solutions = %v", sols)
	}
	// Sequence path: type of the node two hops up.
	q2 := MustParse(`PREFIX pr: <http://galo/qep/property/>
		SELECT ?t WHERE {
			<http://galo/qep/pop/4> pr:hasOutputStream/pr:hasOutputStream ?mid .
			?mid pr:hasPopType ?t .
		}`)
	sols2, err := Execute(q2, store)
	if err != nil {
		t.Fatal(err)
	}
	if len(sols2) != 1 || sols2[0]["t"].Value != "HSJOIN" {
		t.Errorf("sequence path solutions = %v", sols2)
	}
}

func TestExecuteOrAndLimit(t *testing.T) {
	store := planStore()
	q := MustParse(`PREFIX pr: <http://galo/qep/property/>
		SELECT ?x WHERE {
			?x pr:hasPopType ?t .
			FILTER (?t = "HSJOIN" || ?t = "NLJOIN") .
		}`)
	sols, err := Execute(q, store)
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 2 {
		t.Errorf("OR filter matched %d", len(sols))
	}
	q.Limit = 1
	sols, _ = Execute(q, store)
	if len(sols) != 1 {
		t.Errorf("LIMIT not applied: %d", len(sols))
	}
}

func TestExecuteSelectAllProjection(t *testing.T) {
	store := planStore()
	q := MustParse(`PREFIX pr: <http://galo/qep/property/>
		SELECT * WHERE { ?x pr:hasPopType "HSJOIN" . }`)
	sols, err := Execute(q, store)
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 1 || sols[0]["x"] != pop("2") {
		t.Errorf("SELECT * solutions = %v", sols)
	}
	// Projection drops unselected variables.
	q2 := MustParse(`PREFIX pr: <http://galo/qep/property/>
		SELECT ?x WHERE { ?x pr:hasOutputStream ?y . }`)
	sols2, _ := Execute(q2, store)
	for _, s := range sols2 {
		if _, ok := s["y"]; ok {
			t.Errorf("unprojected variable leaked: %v", s)
		}
	}
	if _, err := Execute(nil, store); err == nil {
		t.Errorf("nil query should fail")
	}
}

func TestNoMatchWhenBoundsExcludeValue(t *testing.T) {
	// Mirrors the matching engine's main use: a template whose cardinality
	// bounds exclude the incoming plan's value must not match.
	store := rdf.NewStore()
	store.Add(rdf.Triple{S: pop("t1"), P: p("hasLowerCardinality"), O: rdf.NewNumericLiteral(19771)})
	store.Add(rdf.Triple{S: pop("t1"), P: p("hasHigherCardinality"), O: rdf.NewNumericLiteral(128500)})
	mk := func(v int) *Query {
		return MustParse(fmt.Sprintf(`PREFIX pr: <http://galo/qep/property/>
			SELECT ?x WHERE {
				?x pr:hasLowerCardinality ?lo . FILTER (?lo <= %d) .
				?x pr:hasHigherCardinality ?hi . FILTER (?hi >= %d) .
			}`, v, v))
	}
	if sols, _ := Execute(mk(50000), store); len(sols) != 1 {
		t.Errorf("value inside bounds should match")
	}
	if sols, _ := Execute(mk(500), store); len(sols) != 0 {
		t.Errorf("value below bounds should not match")
	}
	if sols, _ := Execute(mk(500000), store); len(sols) != 0 {
		t.Errorf("value above bounds should not match")
	}
}
