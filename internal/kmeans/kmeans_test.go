package kmeans

import (
	"math"
	"testing"
	"testing/quick"
)

func TestClusterSeparatesTwoGroups(t *testing.T) {
	values := []float64{10, 11, 12, 9, 10.5, 100, 105, 98}
	res := Cluster(values, 2)
	if len(res.Centroids) != 2 {
		t.Fatalf("centroids = %v", res.Centroids)
	}
	if res.Centroids[0] > 20 || res.Centroids[1] < 80 {
		t.Errorf("centroids not separated: %v", res.Centroids)
	}
	for i, v := range values {
		want := 0
		if v > 50 {
			want = 1
		}
		if res.Assignments[i] != want {
			t.Errorf("value %v assigned to cluster %d", v, res.Assignments[i])
		}
	}
}

func TestClusterEdgeCases(t *testing.T) {
	if res := Cluster(nil, 2); len(res.Assignments) != 0 {
		t.Errorf("empty input should produce empty result")
	}
	res := Cluster([]float64{5}, 2)
	if len(res.Centroids) != 1 || res.Assignments[0] != 0 {
		t.Errorf("single value result = %+v", res)
	}
	res = Cluster([]float64{3, 3, 3, 3}, 2)
	for _, a := range res.Assignments {
		if a != res.Assignments[0] {
			t.Errorf("identical values split across clusters")
		}
	}
	res = Cluster([]float64{1, 2, 3}, 0)
	if len(res.Centroids) != 1 {
		t.Errorf("k=0 should clamp to 1, got %v", res.Centroids)
	}
}

func TestClusterCentroidsSortedProperty(t *testing.T) {
	f := func(raw []float64) bool {
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, math.Mod(math.Abs(v), 1e6))
			}
		}
		res := Cluster(vals, 3)
		for i := 1; i < len(res.Centroids); i++ {
			if res.Centroids[i] < res.Centroids[i-1] {
				return false
			}
		}
		// Every assignment is a valid cluster index.
		for _, a := range res.Assignments {
			if a < 0 || a >= len(res.Centroids) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProspectiveRemovesAnomalies(t *testing.T) {
	values := []float64{100, 102, 99, 101, 100, 950}
	kept := Prospective(values)
	if len(kept) != 5 {
		t.Fatalf("Prospective kept %d values: %v", len(kept), kept)
	}
	for _, v := range kept {
		if v > 200 {
			t.Errorf("anomaly %v not removed", v)
		}
	}
}

func TestProspectiveKeepsTightMeasurements(t *testing.T) {
	values := []float64{100, 101, 99, 100.5, 102}
	kept := Prospective(values)
	if len(kept) != len(values) {
		t.Errorf("tight measurements should all be kept, got %d of %d", len(kept), len(values))
	}
	short := Prospective([]float64{50, 500})
	if len(short) != 2 {
		t.Errorf("short inputs should be returned unchanged")
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Errorf("Mean(nil) != 0")
	}
	if got := Mean([]float64{2, 4, 6}); got != 4 {
		t.Errorf("Mean = %v", got)
	}
}
