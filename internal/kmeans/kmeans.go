// Package kmeans implements the small one-dimensional k-means clustering the
// paper's ranking module uses to separate "prospective" plan timings from
// "anomaly" timings (noise from server or network load) before ranking.
package kmeans

import (
	"math"
	"sort"
)

// Result is the outcome of clustering.
type Result struct {
	// Assignments maps each input point to its cluster index.
	Assignments []int
	// Centroids holds the final cluster centers, sorted ascending.
	Centroids []float64
}

// Cluster partitions the values into k clusters using Lloyd's algorithm with
// deterministic quantile-based initialization. It returns a Result whose
// centroids are sorted ascending, so cluster 0 is always the "low" cluster.
func Cluster(values []float64, k int) Result {
	n := len(values)
	if k <= 0 {
		k = 1
	}
	if k > n {
		k = n
	}
	if n == 0 {
		return Result{}
	}
	// Deterministic initialization: quantiles of the sorted values.
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	centroids := make([]float64, k)
	for i := 0; i < k; i++ {
		pos := int(float64(i) / float64(k) * float64(n-1))
		if k > 1 {
			pos = int(float64(i) / float64(k-1) * float64(n-1))
		}
		centroids[i] = sorted[pos]
	}
	assign := make([]int, n)
	for iter := 0; iter < 100; iter++ {
		changed := false
		for i, v := range values {
			bestC, bestD := 0, math.Inf(1)
			for ci, c := range centroids {
				d := math.Abs(v - c)
				if d < bestD {
					bestD, bestC = d, ci
				}
			}
			if assign[i] != bestC {
				assign[i] = bestC
				changed = true
			}
		}
		sums := make([]float64, k)
		counts := make([]int, k)
		for i, v := range values {
			sums[assign[i]] += v
			counts[assign[i]]++
		}
		for ci := range centroids {
			if counts[ci] > 0 {
				centroids[ci] = sums[ci] / float64(counts[ci])
			}
		}
		if !changed {
			break
		}
	}
	// Sort centroids ascending and remap assignments accordingly.
	type ci struct {
		center float64
		old    int
	}
	order := make([]ci, k)
	for i, c := range centroids {
		order[i] = ci{c, i}
	}
	sort.Slice(order, func(i, j int) bool { return order[i].center < order[j].center })
	remap := make([]int, k)
	outCentroids := make([]float64, k)
	for newIdx, o := range order {
		remap[o.old] = newIdx
		outCentroids[newIdx] = o.center
	}
	for i := range assign {
		assign[i] = remap[assign[i]]
	}
	return Result{Assignments: assign, Centroids: outCentroids}
}

// Prospective splits timing measurements into two clusters and returns the
// values assigned to the lower ("prospective") cluster; values in the upper
// ("anomaly") cluster are treated as noise and discarded, as the paper's
// ranking module does. When there are fewer than three measurements, or the
// clusters are not meaningfully separated, all values are kept.
func Prospective(values []float64) []float64 {
	if len(values) < 3 {
		return append([]float64(nil), values...)
	}
	res := Cluster(values, 2)
	if len(res.Centroids) < 2 {
		return append([]float64(nil), values...)
	}
	lo, hi := res.Centroids[0], res.Centroids[1]
	if hi < lo*1.5 {
		// Not separated enough to call anything an anomaly.
		return append([]float64(nil), values...)
	}
	var out []float64
	for i, v := range values {
		if res.Assignments[i] == 0 {
			out = append(out, v)
		}
	}
	if len(out) == 0 {
		return append([]float64(nil), values...)
	}
	return out
}

// Mean returns the arithmetic mean of the values (0 for an empty slice).
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values))
}
