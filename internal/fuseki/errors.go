package fuseki

import "fmt"

// The client surfaces every failure as one of three typed errors, so callers
// (the fleet gateway above all) can tell transport faults and server errors —
// which replica failover and retries can mask — from permanent request
// errors that would fail identically on every replica:
//
//   - *OpError: the HTTP exchange itself failed (connection refused, DNS,
//     deadline exceeded, connection reset mid-body). Always worth retrying
//     elsewhere.
//   - *StatusError: the server answered with a non-success status. Temporary
//     reports whether another attempt can help (5xx, 429) or not (4xx).
//   - *DecodeError: the response arrived but its payload was malformed or
//     truncated mid-stream. The store's answer is unknown, so it counts as
//     retryable.

// OpError reports a transport-level failure of one client operation.
type OpError struct {
	Op  string // "query", "load", "version", "dump"
	URL string
	Err error
}

func (e *OpError) Error() string { return fmt.Sprintf("fuseki: %s %s: %v", e.Op, e.URL, e.Err) }

// Unwrap exposes the underlying transport error (e.g. *url.Error).
func (e *OpError) Unwrap() error { return e.Err }

// StatusError reports a non-success HTTP response.
type StatusError struct {
	Op     string
	URL    string
	Code   int
	Status string
	Body   string // first bytes of the response body, trimmed
}

func (e *StatusError) Error() string {
	if e.Body != "" {
		return fmt.Sprintf("fuseki: %s %s: %s: %s", e.Op, e.URL, e.Status, e.Body)
	}
	return fmt.Sprintf("fuseki: %s %s: %s", e.Op, e.URL, e.Status)
}

// Temporary reports whether a retry (possibly against another replica) can
// succeed: server-side errors and throttling are temporary, client errors
// (a malformed query is malformed everywhere) are not.
func (e *StatusError) Temporary() bool {
	return e.Code >= 500 || e.Code == 429
}

// DecodeError reports a response whose payload could not be decoded — a
// malformed document or a body truncated mid-stream.
type DecodeError struct {
	Op  string
	URL string
	Err error
}

func (e *DecodeError) Error() string {
	return fmt.Sprintf("fuseki: %s %s: bad response payload: %v", e.Op, e.URL, e.Err)
}

// Unwrap exposes the underlying decoding error.
func (e *DecodeError) Unwrap() error { return e.Err }
