package fuseki

import (
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
)

// deadURL returns a loopback URL with nothing listening on it: the listener
// is opened to reserve a port and closed again, so dialing it is refused.
func deadURL(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	url := "http://" + ln.Addr().String()
	ln.Close()
	return url
}

func TestClientConnectionRefusedIsOpError(t *testing.T) {
	c := NewClient(deadURL(t))
	checks := []struct {
		op  string
		err error
	}{
		{"select", func() error { _, err := c.Select(typeQuery); return err }()},
		{"version", func() error { _, err := c.Version(); return err }()},
		{"dump", func() error { _, err := c.Dump(); return err }()},
		{"load", c.Load("")},
	}
	for _, ck := range checks {
		var oe *OpError
		if !errors.As(ck.err, &oe) {
			t.Errorf("%s against a dead endpoint: err = %v (%T), want *OpError", ck.op, ck.err, ck.err)
			continue
		}
		if oe.Err == nil {
			t.Errorf("%s OpError carries no cause", ck.op)
		}
	}
	if v, ok := c.KBVersion(); ok {
		t.Errorf("KBVersion against a dead endpoint = (%d, true), want ok=false", v)
	}
}

func TestClientBodyTruncationMidStream(t *testing.T) {
	// The handler advertises a long body, writes half a JSON results payload,
	// and cuts the connection — the client's read fails mid-stream.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/sparql-results+json")
		w.Header().Set("Content-Length", "4096")
		fmt.Fprint(w, `{"head":{"vars":["x"]},"results":{"bindings":[{"x":`)
		w.(http.Flusher).Flush()
		hj, _ := w.(http.Hijacker)
		conn, _, _ := hj.Hijack()
		conn.Close()
	}))
	defer srv.Close()
	_, err := NewClient(srv.URL).Select(typeQuery)
	var oe *OpError
	if !errors.As(err, &oe) {
		t.Fatalf("truncated select: err = %v (%T), want *OpError", err, err)
	}
}

func TestClientMalformedPayloadIsDecodeError(t *testing.T) {
	cases := []struct {
		name string
		body string
	}{
		{"not-json", "this is not json"},
		{"wrong-shape", `{"unrelated": true}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
				fmt.Fprint(w, tc.body)
			}))
			defer srv.Close()
			c := NewClient(srv.URL)
			_, err := c.Version()
			var de *DecodeError
			if !errors.As(err, &de) {
				t.Fatalf("version over %q: err = %v (%T), want *DecodeError", tc.body, err, err)
			}
			if tc.name == "not-json" {
				if _, err := c.Select(typeQuery); !errors.As(err, &de) {
					t.Fatalf("select over %q: err = %v (%T), want *DecodeError", tc.body, err, err)
				}
			}
		})
	}
}

func TestClientStatusErrorRetryability(t *testing.T) {
	for _, tc := range []struct {
		code      int
		temporary bool
	}{
		{http.StatusBadRequest, false},
		{http.StatusNotFound, false},
		{http.StatusTooManyRequests, true},
		{http.StatusInternalServerError, true},
		{http.StatusServiceUnavailable, true},
	} {
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			http.Error(w, "nope", tc.code)
		}))
		_, err := NewClient(srv.URL).Select(typeQuery)
		srv.Close()
		var se *StatusError
		if !errors.As(err, &se) {
			t.Fatalf("status %d: err = %v (%T), want *StatusError", tc.code, err, err)
		}
		if se.Code != tc.code {
			t.Errorf("status %d: StatusError.Code = %d", tc.code, se.Code)
		}
		if se.Temporary() != tc.temporary {
			t.Errorf("status %d: Temporary() = %v, want %v", tc.code, se.Temporary(), tc.temporary)
		}
	}
}

func TestClientTracksAdvertisedEpoch(t *testing.T) {
	var epoch uint64 = 41
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set(EpochHeader, strconv.FormatUint(epoch, 10))
		fmt.Fprint(w, `{"head":{"vars":[]},"results":{"bindings":[]}}`)
	}))
	defer srv.Close()
	c := NewClient(srv.URL)
	if _, ok := c.AdvertisedEpoch(); ok {
		t.Fatal("epoch known before any response")
	}
	if _, err := c.Select(typeQuery); err != nil {
		t.Fatal(err)
	}
	if got, ok := c.AdvertisedEpoch(); !ok || got != 41 {
		t.Fatalf("AdvertisedEpoch = (%d, %v), want (41, true)", got, ok)
	}
	epoch = 42
	if _, err := c.Select(typeQuery); err != nil {
		t.Fatal(err)
	}
	if got, _ := c.AdvertisedEpoch(); got != 42 {
		t.Fatalf("AdvertisedEpoch after bump = %d, want 42", got)
	}
}
