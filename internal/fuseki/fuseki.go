// Package fuseki implements a small SPARQL-over-HTTP endpoint and client in
// the spirit of Apache Jena's Fuseki server, which the paper uses to host the
// knowledge base. The server exposes:
//
//	POST /query   — body (or form field "query") is a SPARQL SELECT query;
//	                 the response is the SPARQL 1.1 JSON results format.
//	GET  /query   — same, with the query in the "query" URL parameter.
//	POST /data    — body is N-Triples to load into the store.
//	GET  /data    — dumps the store as N-Triples.
//	GET  /ping    — liveness check.
//	GET  /version — the store's mutation counter, for cache invalidation.
//
// The client side turns a remote endpoint back into the same Select/Load
// interface the local store offers, so the knowledge base can be consulted
// either in-process or over HTTP, exactly as GALO does with Fuseki.
package fuseki

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"galo/internal/rdf"
	"galo/internal/sparql"
)

// EpochHeader is the response header on which a server advertises its
// knowledge base epoch (the sum of its shard store versions) with every
// response. Fleet gateways read it to track replica freshness without extra
// /version round trips.
const EpochHeader = "X-Galo-Epoch"

// Server serves one or more triple stores (knowledge base shards) over
// HTTP. The stores are resolved per request, so a deployment that replaces
// its knowledge base (core.System.LoadKB) keeps serving the live stores
// rather than the ones the handler was built over. With several shards,
// /query fans out over a pinned snapshot of every shard and merges the
// solutions, /version reports the epoch sum, and /data dumps the merged
// graph — one Fuseki front door over a partitioned knowledge base.
type Server struct {
	stores func() []*rdf.Store
	load   func(ntriples string) error
	mux    *http.ServeMux
}

// NewServer returns a server over a fixed single store.
func NewServer(store *rdf.Store) *Server {
	return NewDynamicServer(func() *rdf.Store { return store })
}

// NewDynamicServer returns a single-store server that re-resolves its store
// on every request. POST /data loads triples additively into the resolved
// store, preserving the raw-store semantics callers of this constructor
// expect.
func NewDynamicServer(resolve func() *rdf.Store) *Server {
	return NewShardedServer(
		func() []*rdf.Store { return []*rdf.Store{resolve()} },
		func(nt string) error { return resolve().LoadNTriples(nt) },
	)
}

// NewShardedServer returns a server over a dynamic set of shard stores.
// load handles POST /data (a knowledge base passes kb.KB.LoadNTriples here,
// so posted templates are routed to their owning shards; nil rejects loads).
func NewShardedServer(resolve func() []*rdf.Store, load func(ntriples string) error) *Server {
	s := &Server{stores: resolve, load: load, mux: http.NewServeMux()}
	s.mux.HandleFunc("/query", s.handleQuery)
	s.mux.HandleFunc("/data", s.handleData)
	s.mux.HandleFunc("/ping", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("/version", func(w http.ResponseWriter, _ *http.Request) {
		var sum uint64
		for _, st := range s.stores() {
			sum += st.Version()
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]uint64{"version": sum})
	})
	return s
}

// ServeHTTP implements http.Handler. Every response — including errors —
// carries the store's current epoch in EpochHeader.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	w.Header().Set(EpochHeader, strconv.FormatUint(s.Epoch(), 10))
	s.mux.ServeHTTP(w, r)
}

// Epoch returns the epoch advertised on responses: the sum of the served
// stores' mutation counters.
func (s *Server) Epoch() uint64 {
	var sum uint64
	for _, st := range s.stores() {
		sum += st.Version()
	}
	return sum
}

// jsonResults is the SPARQL JSON results document.
type jsonResults struct {
	Head    jsonHead    `json:"head"`
	Results jsonBinding `json:"results"`
}

type jsonHead struct {
	Vars []string `json:"vars"`
}

type jsonBinding struct {
	Bindings []map[string]jsonTerm `json:"bindings"`
}

type jsonTerm struct {
	Type  string `json:"type"` // "uri" or "literal"
	Value string `json:"value"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var queryText string
	switch r.Method {
	case http.MethodGet:
		queryText = r.URL.Query().Get("query")
	case http.MethodPost:
		if err := r.ParseForm(); err == nil && r.PostForm.Get("query") != "" {
			queryText = r.PostForm.Get("query")
		} else {
			body, err := io.ReadAll(r.Body)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			queryText = string(body)
		}
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if strings.TrimSpace(queryText) == "" {
		http.Error(w, "missing query", http.StatusBadRequest)
		return
	}
	q, err := sparql.Parse(queryText)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// Pin one epoch per shard for the whole evaluation: a concurrent
	// knowledge base publication must not be half-visible to a
	// multi-pattern query. Each shard holds disjoint templates, so the
	// merged solution set is the union.
	var sols []sparql.Solution
	for _, st := range s.stores() {
		part, err := sparql.Execute(q, st.Snapshot())
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		sols = append(sols, part...)
	}
	if q.Limit > 0 && len(sols) > q.Limit {
		sols = sols[:q.Limit]
	}
	doc := jsonResults{Results: jsonBinding{Bindings: []map[string]jsonTerm{}}}
	if q.SelectAll {
		doc.Head.Vars = q.Vars()
	} else {
		doc.Head.Vars = q.Select
	}
	for _, sol := range sols {
		row := map[string]jsonTerm{}
		for v, term := range sol {
			jt := jsonTerm{Type: "literal", Value: term.Value}
			if term.IsIRI() {
				jt.Type = "uri"
			}
			row[v] = jt
		}
		doc.Results.Bindings = append(doc.Results.Bindings, row)
	}
	w.Header().Set("Content-Type", "application/sparql-results+json")
	_ = json.NewEncoder(w).Encode(doc)
}

func (s *Server) handleData(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		w.Header().Set("Content-Type", "application/n-triples")
		fmt.Fprint(w, rdf.MergeNTriples(s.stores()))
	case http.MethodPost:
		if s.load == nil {
			http.Error(w, "loading not supported", http.StatusMethodNotAllowed)
			return
		}
		body, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := s.load(string(body)); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// Client talks to a Fuseki-style endpoint. Every method returns one of the
// typed errors in errors.go (*OpError, *StatusError, *DecodeError) on
// failure, and records the epoch the server advertises on each response
// (AdvertisedEpoch).
type Client struct {
	BaseURL string
	HTTP    *http.Client

	// advertised holds the last epoch seen in an EpochHeader, offset by one
	// so the zero value means "never seen".
	advertised atomic.Uint64
}

// NewClient returns a client for the endpoint base URL (e.g.
// "http://localhost:3030").
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/"), HTTP: &http.Client{Timeout: 30 * time.Second}}
}

// noteEpoch records the epoch a response advertises, if any.
func (c *Client) noteEpoch(resp *http.Response) {
	if v := resp.Header.Get(EpochHeader); v != "" {
		if n, err := strconv.ParseUint(v, 10, 64); err == nil {
			c.advertised.Store(n + 1)
		}
	}
}

// AdvertisedEpoch returns the knowledge base epoch the endpoint most
// recently advertised on any response; ok is false until the first response
// carrying an EpochHeader arrives (e.g. a pre-fleet server).
func (c *Client) AdvertisedEpoch() (uint64, bool) {
	v := c.advertised.Load()
	if v == 0 {
		return 0, false
	}
	return v - 1, true
}

// statusError drains up to a few hundred bytes of the body into a typed
// status error.
func statusError(op, url string, resp *http.Response) *StatusError {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	return &StatusError{Op: op, URL: url, Code: resp.StatusCode, Status: resp.Status, Body: strings.TrimSpace(string(body))}
}

// Select runs a SPARQL SELECT query remotely and converts the JSON results
// back into solutions.
func (c *Client) Select(queryText string) ([]sparql.Solution, error) {
	target := c.BaseURL + "/query"
	form := url.Values{"query": {queryText}}
	resp, err := c.HTTP.PostForm(target, form)
	if err != nil {
		return nil, &OpError{Op: "query", URL: target, Err: err}
	}
	defer resp.Body.Close()
	c.noteEpoch(resp)
	if resp.StatusCode != http.StatusOK {
		return nil, statusError("query", target, resp)
	}
	// Read the full body first so a connection cut mid-stream surfaces as a
	// typed decode error instead of a silently short solution set.
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, &OpError{Op: "query", URL: target, Err: err}
	}
	var doc jsonResults
	if err := json.Unmarshal(body, &doc); err != nil {
		return nil, &DecodeError{Op: "query", URL: target, Err: err}
	}
	var out []sparql.Solution
	for _, b := range doc.Results.Bindings {
		sol := sparql.Solution{}
		for v, term := range b {
			if term.Type == "uri" {
				sol[v] = rdf.NewIRI(term.Value)
			} else {
				sol[v] = rdf.NewLiteral(term.Value)
			}
		}
		out = append(out, sol)
	}
	return out, nil
}

// Load uploads N-Triples into the remote store.
func (c *Client) Load(ntriples string) error {
	target := c.BaseURL + "/data"
	resp, err := c.HTTP.Post(target, "application/n-triples", strings.NewReader(ntriples))
	if err != nil {
		return &OpError{Op: "load", URL: target, Err: err}
	}
	defer resp.Body.Close()
	c.noteEpoch(resp)
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		return statusError("load", target, resp)
	}
	return nil
}

// Version fetches the remote store's mutation counter, surfacing transport,
// status and payload failures as their typed errors (a /version body that is
// not JSON or lacks the "version" key is a *DecodeError, not a zero value).
func (c *Client) Version() (uint64, error) {
	target := c.BaseURL + "/version"
	resp, err := c.HTTP.Get(target)
	if err != nil {
		return 0, &OpError{Op: "version", URL: target, Err: err}
	}
	defer resp.Body.Close()
	c.noteEpoch(resp)
	if resp.StatusCode != http.StatusOK {
		return 0, statusError("version", target, resp)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, &OpError{Op: "version", URL: target, Err: err}
	}
	var doc map[string]uint64
	if err := json.Unmarshal(body, &doc); err != nil {
		return 0, &DecodeError{Op: "version", URL: target, Err: err}
	}
	v, ok := doc["version"]
	if !ok {
		return 0, &DecodeError{Op: "version", URL: target, Err: fmt.Errorf("payload missing %q key", "version")}
	}
	return v, nil
}

// KBVersion adapts Version to the matching engine's VersionedEndpoint
// interface; ok is false when the endpoint is unreachable or predates the
// /version route, which disables probe-result caching rather than risking
// stale guidelines.
func (c *Client) KBVersion() (uint64, bool) {
	v, err := c.Version()
	return v, err == nil
}

// Dump downloads the remote store as N-Triples.
func (c *Client) Dump() (string, error) {
	target := c.BaseURL + "/data"
	resp, err := c.HTTP.Get(target)
	if err != nil {
		return "", &OpError{Op: "dump", URL: target, Err: err}
	}
	defer resp.Body.Close()
	c.noteEpoch(resp)
	if resp.StatusCode != http.StatusOK {
		return "", statusError("dump", target, resp)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", &OpError{Op: "dump", URL: target, Err: err}
	}
	return string(body), nil
}

// LocalEndpoint adapts an in-process store to the same Select interface the
// client offers, so callers can swap local and remote knowledge bases.
type LocalEndpoint struct {
	Store *rdf.Store
}

// Select parses and runs the query against a pinned snapshot of the local
// store, so one probe sees one consistent knowledge base epoch even while
// learning publishes new templates concurrently.
func (l LocalEndpoint) Select(queryText string) ([]sparql.Solution, error) {
	q, err := sparql.Parse(queryText)
	if err != nil {
		return nil, err
	}
	return sparql.Execute(q, l.Store.Snapshot())
}

// PinEpoch pins the store's current epoch and returns a Select function
// frozen on it plus that epoch's version (matching the matching engine's
// EpochPinner interface). Every probe issued through the returned function
// sees exactly the pinned epoch, so cache entries tagged with the returned
// version can never carry another epoch's solutions.
func (l LocalEndpoint) PinEpoch() (func(string) ([]sparql.Solution, error), uint64) {
	snap := l.Store.Snapshot()
	return func(queryText string) ([]sparql.Solution, error) {
		q, err := sparql.Parse(queryText)
		if err != nil {
			return nil, err
		}
		return sparql.Execute(q, snap)
	}, snap.Version()
}

// KBVersion returns the local store's mutation counter (matching the
// matching engine's VersionedEndpoint interface), enabling probe-result
// caching with exact invalidation.
func (l LocalEndpoint) KBVersion() (uint64, bool) { return l.Store.Version(), true }
