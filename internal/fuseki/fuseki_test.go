package fuseki

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"galo/internal/rdf"
)

func testStore() *rdf.Store {
	s := rdf.NewStore()
	s.Add(rdf.Triple{S: rdf.NewIRI("http://galo/qep/pop/2"), P: rdf.NewIRI("http://galo/qep/property/hasPopType"), O: rdf.NewLiteral("HSJOIN")})
	s.Add(rdf.Triple{S: rdf.NewIRI("http://galo/qep/pop/2"), P: rdf.NewIRI("http://galo/qep/property/hasEstimateCardinality"), O: rdf.NewNumericLiteral(128500)})
	s.Add(rdf.Triple{S: rdf.NewIRI("http://galo/qep/pop/3"), P: rdf.NewIRI("http://galo/qep/property/hasPopType"), O: rdf.NewLiteral("TBSCAN")})
	return s
}

const typeQuery = `PREFIX pr: <http://galo/qep/property/>
SELECT ?x WHERE { ?x pr:hasPopType "HSJOIN" . }`

func TestServerAndClientQuery(t *testing.T) {
	srv := httptest.NewServer(NewServer(testStore()))
	defer srv.Close()
	client := NewClient(srv.URL)

	sols, err := client.Select(typeQuery)
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	if len(sols) != 1 {
		t.Fatalf("solutions = %v", sols)
	}
	term := sols[0]["x"]
	if !term.IsIRI() || !strings.HasSuffix(term.Value, "/pop/2") {
		t.Errorf("binding = %v", term)
	}
}

func TestClientLoadAndDump(t *testing.T) {
	store := rdf.NewStore()
	srv := httptest.NewServer(NewServer(store))
	defer srv.Close()
	client := NewClient(srv.URL)

	nt := testStore().NTriples()
	if err := client.Load(nt); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if store.Len() != 3 {
		t.Errorf("store has %d triples after load", store.Len())
	}
	dump, err := client.Dump()
	if err != nil {
		t.Fatalf("Dump: %v", err)
	}
	if dump != nt {
		t.Errorf("dump differs from upload:\n%s\nvs\n%s", dump, nt)
	}
	// Loading garbage fails.
	if err := client.Load("<broken"); err == nil {
		t.Errorf("loading invalid N-Triples should fail")
	}
}

func TestServerQueryErrors(t *testing.T) {
	srv := httptest.NewServer(NewServer(testStore()))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty query status = %d", resp.StatusCode)
	}
	resp, err = http.Post(srv.URL+"/query", "application/sparql-query", strings.NewReader("SELECT garbage"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad query status = %d", resp.StatusCode)
	}
	client := NewClient(srv.URL)
	if _, err := client.Select("not sparql at all"); err == nil {
		t.Errorf("client should surface server-side parse errors")
	}
	// GET with query parameter works.
	resp, err = http.Get(srv.URL + "/query?query=" + strings.ReplaceAll(
		"PREFIX pr: <http://galo/qep/property/> SELECT ?x WHERE { ?x pr:hasPopType \"TBSCAN\" . }", " ", "%20"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("GET query status = %d", resp.StatusCode)
	}
}

func TestPingAndMethodNotAllowed(t *testing.T) {
	srv := httptest.NewServer(NewServer(testStore()))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/ping")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("ping status = %d", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/data", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("DELETE /data status = %d", resp.StatusCode)
	}
}

func TestLocalEndpointMatchesRemote(t *testing.T) {
	store := testStore()
	local := LocalEndpoint{Store: store}
	srv := httptest.NewServer(NewServer(store))
	defer srv.Close()
	remote := NewClient(srv.URL)

	localSols, err := local.Select(typeQuery)
	if err != nil {
		t.Fatal(err)
	}
	remoteSols, err := remote.Select(typeQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(localSols) != len(remoteSols) {
		t.Fatalf("local %d vs remote %d solutions", len(localSols), len(remoteSols))
	}
	if localSols[0]["x"].Value != remoteSols[0]["x"].Value {
		t.Errorf("local and remote bindings differ: %v vs %v", localSols[0], remoteSols[0])
	}
}
