// Package randplan implements the Random Plan Generator: the DB2-internal
// tool the paper's learning engine uses to produce competing plans for a
// (sub-)query, which are then executed and ranked against the optimizer's
// choice.
//
// Plans are sampled as explicit plan specs (join order, join methods, access
// methods) and materialized/costed through the optimizer's spec builder, so
// every generated plan is a valid executable plan over the same query.
package randplan

import (
	"fmt"
	"math/rand"
	"strings"

	"galo/internal/optimizer"
	"galo/internal/qgm"
	"galo/internal/sqlparser"
)

// Generator samples random plans for queries.
type Generator struct {
	opt *optimizer.Optimizer
	rng *rand.Rand
}

// New returns a generator over the given optimizer (whose catalog provides
// the schema and statistics) seeded deterministically.
func New(opt *optimizer.Optimizer, seed int64) *Generator {
	return &Generator{opt: opt, rng: rand.New(rand.NewSource(seed))}
}

// RandomSpec samples one random, connected plan spec for the query: a mostly
// left-deep join tree (occasionally bushy at the top) over a random join
// order, with random join methods and access methods.
func (g *Generator) RandomSpec(q *sqlparser.Query) (*optimizer.Spec, error) {
	if len(q.From) == 0 {
		return nil, fmt.Errorf("randplan: query has no tables")
	}
	refs := make([]string, len(q.From))
	for i, tr := range q.From {
		refs[i] = strings.ToUpper(tr.Name())
	}
	if len(refs) == 1 {
		return g.randomLeaf(q, refs[0]), nil
	}
	// Build a connected random order: start anywhere, repeatedly add a
	// reference joined to the current set (falling back to any reference if
	// the join graph is disconnected).
	remaining := append([]string(nil), refs...)
	g.rng.Shuffle(len(remaining), func(i, j int) { remaining[i], remaining[j] = remaining[j], remaining[i] })
	order := []string{remaining[0]}
	remaining = remaining[1:]
	for len(remaining) > 0 {
		pick := -1
		for idx, cand := range remaining {
			if connectedToAny(q, cand, order) {
				pick = idx
				break
			}
		}
		if pick < 0 {
			pick = 0
		}
		order = append(order, remaining[pick])
		remaining = append(remaining[:pick], remaining[pick+1:]...)
	}
	// Left-deep tree over the order with random methods; the inner of every
	// join is a single leaf so NLJOIN stays applicable.
	tree := g.randomLeaf(q, order[0])
	for _, ref := range order[1:] {
		method := g.randomMethod()
		leaf := g.randomLeaf(q, ref)
		if g.rng.Float64() < 0.5 {
			tree = optimizer.Join(method, tree, leaf)
		} else {
			// Swapping puts the composite on the inner side, where NLJOIN is
			// not applicable; fall back to a hash or merge join.
			if method == qgm.OpNLJOIN {
				method = qgm.OpHSJOIN
			}
			tree = optimizer.Join(method, leaf, tree)
		}
	}
	return tree, nil
}

func connectedToAny(q *sqlparser.Query, ref string, set []string) bool {
	for _, s := range set {
		if len(sqlparser.JoinsBetween(q, ref, s)) > 0 {
			return true
		}
	}
	return false
}

func (g *Generator) randomMethod() qgm.OpType {
	methods := qgm.JoinMethods()
	return methods[g.rng.Intn(len(methods))]
}

func (g *Generator) randomLeaf(q *sqlparser.Query, ref string) *optimizer.Spec {
	tr := q.TableByName(ref)
	var indexes []string
	if tr != nil {
		if tbl := g.opt.Cat.Table(tr.Table); tbl != nil {
			for _, idx := range tbl.Indexes {
				indexes = append(indexes, idx.Name)
			}
		}
	}
	switch {
	case len(indexes) > 0 && g.rng.Float64() < 0.5:
		return optimizer.LeafAccess(ref, qgm.OpIXSCAN, indexes[g.rng.Intn(len(indexes))])
	case g.rng.Float64() < 0.5:
		return optimizer.LeafAccess(ref, qgm.OpTBSCAN, "")
	default:
		return optimizer.Leaf(ref) // cheapest access, optimizer's choice
	}
}

// RandomPlans samples up to n plans with distinct structural signatures for
// the query. Sampling stops early when the plan space is exhausted (after a
// bounded number of attempts without finding a new signature).
func (g *Generator) RandomPlans(q *sqlparser.Query, n int) ([]*qgm.Plan, error) {
	if n <= 0 {
		return nil, nil
	}
	seen := map[string]bool{}
	var out []*qgm.Plan
	misses := 0
	maxMisses := 20 + 4*n
	for len(out) < n && misses < maxMisses {
		spec, err := g.RandomSpec(q)
		if err != nil {
			return nil, err
		}
		plan, err := g.opt.BuildPlan(q, spec)
		if err != nil {
			// Some random combinations are invalid (e.g. an index requested
			// on a reference whose table lost it); just resample.
			misses++
			continue
		}
		sig := plan.Signature()
		if seen[sig] {
			misses++
			continue
		}
		seen[sig] = true
		out = append(out, plan)
	}
	return out, nil
}
