package randplan

import (
	"testing"

	"galo/internal/executor"
	"galo/internal/optimizer"
	"galo/internal/sqlparser"
	"galo/internal/storage"
	"galo/internal/workload/tpcds"
)

var testDB *storage.Database

func setup(t *testing.T) (*optimizer.Optimizer, *Generator) {
	t.Helper()
	if testDB == nil {
		var err error
		testDB, err = tpcds.Generate(tpcds.GenOptions{Seed: 3, Scale: 0.08, Hazards: true})
		if err != nil {
			t.Fatal(err)
		}
	}
	opt := optimizer.New(testDB.Catalog, optimizer.DefaultOptions())
	return opt, New(opt, 99)
}

func TestRandomPlansAreValidAndDistinct(t *testing.T) {
	_, gen := setup(t)
	q := tpcds.Fig3Query()
	plans, err := gen.RandomPlans(q, 12)
	if err != nil {
		t.Fatalf("RandomPlans: %v", err)
	}
	if len(plans) < 4 {
		t.Fatalf("expected several distinct plans, got %d", len(plans))
	}
	seen := map[string]bool{}
	for _, p := range plans {
		if err := p.Validate(); err != nil {
			t.Errorf("invalid random plan: %v", err)
		}
		if len(p.TableInstances()) != len(q.From) {
			t.Errorf("plan covers %d instances, want %d", len(p.TableInstances()), len(q.From))
		}
		if seen[p.Signature()] {
			t.Errorf("duplicate signature %s", p.Signature())
		}
		seen[p.Signature()] = true
		if p.TotalCost <= 0 {
			t.Errorf("random plan has no cost estimate")
		}
	}
}

func TestRandomPlansDeterministicAcrossSeeds(t *testing.T) {
	opt, _ := setup(t)
	q := tpcds.Fig3Query()
	a, err := New(opt, 7).RandomPlans(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(opt, 7).RandomPlans(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("different plan counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Signature() != b[i].Signature() {
			t.Errorf("plan %d differs across identically seeded generators", i)
		}
	}
	c, err := New(opt, 8).RandomPlans(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if i >= len(c) || a[i].Signature() != c[i].Signature() {
			same = false
		}
	}
	if same && len(a) == len(c) {
		t.Errorf("different seeds produced identical plan sequences (suspicious)")
	}
}

func TestRandomPlansExecuteToSameResult(t *testing.T) {
	// All random plans for a query are semantically equivalent: they must
	// produce the same number of result rows as the optimizer's plan.
	opt, gen := setup(t)
	ex := executor.New(testDB)
	q := sqlparser.MustParse(`SELECT i_item_desc, ws_quantity FROM web_sales, item, date_dim
		WHERE ws_item_sk = i_item_sk AND ws_sold_date_sk = d_date_sk AND i_category = 'Sports'`)
	baseline := opt.MustOptimize(q)
	baseRes, err := ex.Execute(baseline, q)
	if err != nil {
		t.Fatal(err)
	}
	plans, err := gen.RandomPlans(q, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range plans {
		res, err := ex.Execute(p, q)
		if err != nil {
			t.Fatalf("execute random plan %s: %v", p.Signature(), err)
		}
		if len(res.Rows) != len(baseRes.Rows) {
			t.Errorf("plan %s produced %d rows, optimizer plan produced %d",
				p.Signature(), len(res.Rows), len(baseRes.Rows))
		}
	}
}

func TestRandomSpecSingleTable(t *testing.T) {
	opt, gen := setup(t)
	q := sqlparser.MustParse(`SELECT i_item_desc FROM item WHERE i_category = 'Music'`)
	spec, err := gen.RandomSpec(q)
	if err != nil {
		t.Fatalf("RandomSpec: %v", err)
	}
	plan, err := opt.BuildPlan(q, spec)
	if err != nil {
		t.Fatalf("BuildPlan: %v", err)
	}
	if plan.NumJoins() != 0 {
		t.Errorf("single-table random plan has joins")
	}
	if _, err := gen.RandomSpec(&sqlparser.Query{}); err == nil {
		t.Errorf("empty query should fail")
	}
	if plans, err := gen.RandomPlans(q, 0); err != nil || plans != nil {
		t.Errorf("RandomPlans(0) = %v, %v", plans, err)
	}
}
