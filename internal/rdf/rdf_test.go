package rdf

import (
	"strings"
	"testing"
	"testing/quick"
)

func popIRI(id string) Term  { return NewIRI("http://galo/qep/pop/" + id) }
func propIRI(p string) Term  { return NewIRI("http://galo/qep/property/" + p) }

func paperStore() *Store {
	// The triples from Section 3.1 of the paper.
	s := NewStore()
	s.Add(Triple{popIRI("2"), propIRI("hasPopType"), NewLiteral("NLJOIN")})
	s.Add(Triple{popIRI("2"), propIRI("hasEstimateCardinality"), NewLiteral("2949250")})
	s.Add(Triple{popIRI("2"), propIRI("hasOuterInputStream"), popIRI("3")})
	s.Add(Triple{popIRI("3"), propIRI("hasPopType"), NewLiteral("IXSCAN")})
	return s
}

func TestAddMatchAndLen(t *testing.T) {
	s := paperStore()
	if s.Len() != 4 {
		t.Errorf("Len = %d", s.Len())
	}
	// Duplicate insert is ignored.
	s.Add(Triple{popIRI("2"), propIRI("hasPopType"), NewLiteral("NLJOIN")})
	if s.Len() != 4 {
		t.Errorf("duplicate changed Len to %d", s.Len())
	}
	subj := popIRI("2")
	if got := len(s.Match(&subj, nil, nil)); got != 3 {
		t.Errorf("Match(S,*,*) = %d", got)
	}
	pred := propIRI("hasPopType")
	if got := len(s.Match(nil, &pred, nil)); got != 2 {
		t.Errorf("Match(*,P,*) = %d", got)
	}
	obj := NewLiteral("IXSCAN")
	if got := len(s.Match(nil, nil, &obj)); got != 1 {
		t.Errorf("Match(*,*,O) = %d", got)
	}
	if got := len(s.Match(nil, nil, nil)); got != 4 {
		t.Errorf("Match(*,*,*) = %d", got)
	}
	if got := len(s.Match(&subj, &pred, &obj)); got != 0 {
		t.Errorf("non-existent triple matched")
	}
}

func TestObjectsOfAndSubjects(t *testing.T) {
	s := paperStore()
	objs := s.ObjectsOf(popIRI("2"), propIRI("hasOuterInputStream"))
	if len(objs) != 1 || objs[0] != popIRI("3") {
		t.Errorf("ObjectsOf = %v", objs)
	}
	if _, ok := s.FirstObject(popIRI("2"), propIRI("hasPopType")); !ok {
		t.Errorf("FirstObject missing")
	}
	if _, ok := s.FirstObject(popIRI("99"), propIRI("hasPopType")); ok {
		t.Errorf("FirstObject on missing subject should report false")
	}
	if got := len(s.Subjects()); got != 2 {
		t.Errorf("Subjects = %d", got)
	}
}

func TestRemove(t *testing.T) {
	s := paperStore()
	subj := popIRI("2")
	if n := s.Remove(&subj, nil, nil); n != 3 {
		t.Errorf("Remove removed %d", n)
	}
	if s.Len() != 1 {
		t.Errorf("Len after remove = %d", s.Len())
	}
	if n := s.Remove(&subj, nil, nil); n != 0 {
		t.Errorf("second Remove removed %d", n)
	}
}

func TestNTriplesRoundtrip(t *testing.T) {
	s := paperStore()
	text := s.NTriples()
	if !strings.Contains(text, "<http://galo/qep/pop/2> <http://galo/qep/property/hasPopType> \"NLJOIN\" .") {
		t.Errorf("NTriples output malformed:\n%s", text)
	}
	s2 := NewStore()
	if err := s2.LoadNTriples(text); err != nil {
		t.Fatalf("LoadNTriples: %v", err)
	}
	if s2.Len() != s.Len() {
		t.Errorf("roundtrip Len = %d, want %d", s2.Len(), s.Len())
	}
	if s2.NTriples() != text {
		t.Errorf("roundtrip is not stable")
	}
}

func TestParseNTriplesErrorsAndComments(t *testing.T) {
	if _, err := ParseNTriples("<a> <b> .\n"); err == nil {
		t.Errorf("two-term line should fail")
	}
	if _, err := ParseNTriples("<a <b> <c> .\n"); err == nil {
		t.Errorf("unterminated IRI should fail")
	}
	ts, err := ParseNTriples("# comment\n\n<a> <b> \"x\" .\n")
	if err != nil || len(ts) != 1 {
		t.Errorf("comments/blank lines should be skipped: %v %v", ts, err)
	}
	// Literal with escaped quote survives the roundtrip.
	s := NewStore()
	s.Add(Triple{NewIRI("a"), NewIRI("b"), NewLiteral(`say "hi" \ ok`)})
	s2 := NewStore()
	if err := s2.LoadNTriples(s.NTriples()); err != nil {
		t.Fatalf("LoadNTriples: %v", err)
	}
	if s2.Len() != 1 || s2.Match(nil, nil, nil)[0].O.Value != `say "hi" \ ok` {
		t.Errorf("escaped literal mangled: %v", s2.Match(nil, nil, nil))
	}
}

func TestTermHelpers(t *testing.T) {
	if !NewIRI("x").IsIRI() || NewLiteral("x").IsIRI() {
		t.Errorf("IsIRI misreports")
	}
	if f, ok := NewLiteral("12.5").Float(); !ok || f != 12.5 {
		t.Errorf("Float = %v %v", f, ok)
	}
	if _, ok := NewLiteral("abc").Float(); ok {
		t.Errorf("non-numeric literal parsed as float")
	}
	if _, ok := NewIRI("12").Float(); ok {
		t.Errorf("IRI should not parse as float")
	}
	if NewNumericLiteral(42).Value != "42" {
		t.Errorf("NumericLiteral = %q", NewNumericLiteral(42).Value)
	}
}

func TestStoreAddMatchProperty(t *testing.T) {
	// Property: every added triple is findable by full match, and Len equals
	// the number of distinct triples added.
	f := func(ids []uint8) bool {
		s := NewStore()
		seen := map[Triple]bool{}
		for _, id := range ids {
			tr := Triple{popIRI(string(rune('a' + id%5))), propIRI(string(rune('p' + id%3))), NewNumericLiteral(float64(id % 7))}
			s.Add(tr)
			seen[tr] = true
		}
		if s.Len() != len(seen) {
			return false
		}
		for tr := range seen {
			if len(s.Match(&tr.S, &tr.P, &tr.O)) != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
