// Package rdf implements the in-memory RDF triple store GALO's knowledge base
// is built on, replacing the Apache Jena RDF API / TDB store used by the
// paper. It supports the subset GALO needs: IRIs and literals, triple
// insertion, wildcard matching over SPO/POS/OSP indexes, and N-Triples
// serialization for persistence and for the Fuseki-style HTTP endpoint.
//
// Terms are dictionary-encoded: every distinct term is interned once as a
// dense uint32 ID, and the three indexes are nested maps over IDs whose
// posting lists are kept sorted at insert time. Lookups therefore hash
// machine words instead of strings, results need no re-sorting on read, and
// per-probe cost depends on the size of the touched posting lists rather than
// on the total store size — the property GALO's online matching engine relies
// on (Figures 11-12 of the paper). A per-predicate numeric (value, subject)
// band index answers range-constrained subject lookups
// (SubjectsWithPredInRange) by binary search, which the SPARQL evaluator
// uses to resolve FILTER-bounded candidate starts.
//
// # Concurrency contract
//
// The store has epoch-snapshot semantics: every mutation batch (AddAll,
// Remove, Apply) builds a fresh immutable Snapshot by copying-on-write
// exactly what it touches and publishes it with ONE atomic pointer swap,
// incrementing Version by one. Readers pin a Snapshot and see one
// consistent epoch for as long as they hold it — a SPARQL probe never
// observes a half-written template — while writers never block readers.
// Version is the invalidation key for every cache built over the store;
// a sharded knowledge base (kb.NewSharded) holds one independent store per
// shard, so each shard versions — and snapshots — on its own.
package rdf
