package rdf

import (
	"sort"
	"strconv"
	"strings"
)

// Graph is the read-only view of a triple store. Both *Store (always the
// latest published epoch) and *Snapshot (one pinned epoch) implement it, so
// code that only reads — the SPARQL evaluator above all — can run against
// either: against the live store for convenience, or against a pinned
// snapshot when a multi-step evaluation must see one consistent epoch.
type Graph interface {
	// Match returns the triples matching the pattern; nil components are
	// wildcards.
	Match(subj, pred, obj *Term) []Triple
	// Subjects returns every distinct subject.
	Subjects() []Term
	// ObjectsOf returns the objects of (subject, predicate).
	ObjectsOf(subject, predicate Term) []Term
	// SubjectsOf returns the subjects carrying (predicate, object).
	SubjectsOf(predicate, object Term) []Term
	// SubjectsWithPred returns the distinct subjects carrying the predicate.
	SubjectsWithPred(predicate Term) []Term
	// SubjectsWithPredInRange returns the distinct subjects carrying the
	// predicate with a numeric literal object in [lo, hi] (nil bounds are
	// open), answered from the numeric secondary index.
	SubjectsWithPredInRange(predicate Term, lo, hi *float64) []Term
	// CountSP / CountPO / CountP / CountO are the cardinality accessors the
	// selectivity-ordered SPARQL evaluator estimates with.
	CountSP(subject, predicate Term) int
	CountPO(predicate, object Term) int
	CountP(predicate Term) int
	CountO(object Term) int
	// CountPInRange counts the predicate's triples whose numeric literal
	// object lies in [lo, hi] (nil bounds are open).
	CountPInRange(predicate Term, lo, hi *float64) int
	// FirstObject returns the first object of (subject, predicate).
	FirstObject(subject, predicate Term) (Term, bool)
	// Len returns the number of distinct triples.
	Len() int
	// Version identifies the epoch of the contents.
	Version() uint64
}

// numEntry is one entry of the numeric secondary index: a triple
// (subject, predicate, numeric literal) recorded as (value, subject) in a
// per-predicate list sorted by (value, subject). It is the cardinality-band
// index: probe queries constrain hasLowerCardinality/hasHigherCardinality
// values with FILTER bounds, and the sorted list turns candidate-start
// resolution for such patterns from "every subject carrying the predicate"
// into a binary-searched band.
type numEntry struct {
	val  float64
	subj uint32
}

// Snapshot is one immutable epoch of a Store. Readers share snapshots
// without locks: a snapshot's maps and posting lists are never mutated after
// publication (writers copy-on-write whatever a batch touches and publish a
// fresh Snapshot atomically).
type Snapshot struct {
	dict *dictionary
	// spo: subject -> predicate -> sorted object IDs, and the two rotations.
	spo map[uint32]map[uint32][]uint32
	pos map[uint32]map[uint32][]uint32
	osp map[uint32]map[uint32][]uint32
	// num: predicate -> (value, subject) entries sorted by (value, subject),
	// for triples whose object is a numeric literal.
	num map[uint32][]numEntry
	// predN / objN count the triples carrying each predicate / object.
	predN map[uint32]int
	objN  map[uint32]int
	n     int
	// version counts mutations since the store was created; every published
	// epoch has a distinct, increasing version.
	version uint64
}

func emptySnapshot() *Snapshot {
	return &Snapshot{
		dict:  newDictionary(),
		spo:   map[uint32]map[uint32][]uint32{},
		pos:   map[uint32]map[uint32][]uint32{},
		osp:   map[uint32]map[uint32][]uint32{},
		num:   map[uint32][]numEntry{},
		predN: map[uint32]int{},
		objN:  map[uint32]int{},
	}
}

// Len returns the number of distinct triples in the snapshot.
func (g *Snapshot) Len() int { return g.n }

// Version identifies the snapshot's epoch.
func (g *Snapshot) Version() uint64 { return g.version }

// Match returns the triples matching the pattern; nil components are
// wildcards. Results are in a deterministic order (ascending dictionary IDs,
// i.e. first-interned terms first); callers needing lexicographic order must
// sort the result themselves.
func (g *Snapshot) Match(subj, pred, obj *Term) []Triple {
	var sid, pid, oid uint32
	var ok bool
	if subj != nil {
		if sid, ok = g.dict.lookup(*subj); !ok {
			return nil
		}
	}
	if pred != nil {
		if pid, ok = g.dict.lookup(*pred); !ok {
			return nil
		}
	}
	if obj != nil {
		if oid, ok = g.dict.lookup(*obj); !ok {
			return nil
		}
	}
	var out []Triple
	switch {
	case subj != nil && pred != nil:
		for _, o := range g.spo[sid][pid] {
			if obj != nil && o != oid {
				continue
			}
			out = append(out, Triple{*subj, *pred, g.dict.term(o)})
		}
	case subj != nil:
		pm := g.spo[sid]
		for _, p := range sortedIDs(pm) {
			pt := g.dict.term(p)
			for _, o := range pm[p] {
				if obj != nil && o != oid {
					continue
				}
				out = append(out, Triple{*subj, pt, g.dict.term(o)})
			}
		}
	case pred != nil && obj != nil:
		for _, su := range g.pos[pid][oid] {
			out = append(out, Triple{g.dict.term(su), *pred, *obj})
		}
	case pred != nil:
		om := g.pos[pid]
		for _, o := range sortedIDs(om) {
			ot := g.dict.term(o)
			for _, su := range om[o] {
				out = append(out, Triple{g.dict.term(su), *pred, ot})
			}
		}
	case obj != nil:
		sm := g.osp[oid]
		for _, su := range sortedIDs(sm) {
			st := g.dict.term(su)
			for _, p := range sm[su] {
				out = append(out, Triple{st, g.dict.term(p), *obj})
			}
		}
	default:
		for _, su := range sortedIDs(g.spo) {
			st := g.dict.term(su)
			pm := g.spo[su]
			for _, p := range sortedIDs(pm) {
				pt := g.dict.term(p)
				for _, o := range pm[p] {
					out = append(out, Triple{st, pt, g.dict.term(o)})
				}
			}
		}
	}
	return out
}

func sortedIDs[V any](m map[uint32]V) []uint32 {
	out := make([]uint32, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Subjects returns every distinct subject in the snapshot, in deterministic
// (dictionary ID) order.
func (g *Snapshot) Subjects() []Term { return g.termsOf(sortedIDs(g.spo)) }

func (g *Snapshot) termsOf(ids []uint32) []Term {
	out := make([]Term, len(ids))
	for i, id := range ids {
		out[i] = g.dict.term(id)
	}
	return out
}

// ObjectsOf returns the objects of (subject, predicate) in deterministic
// (dictionary ID) order. The result is shared with the snapshot's internal
// posting list rendering; callers must not mutate it.
func (g *Snapshot) ObjectsOf(subject, predicate Term) []Term {
	sid, ok := g.dict.lookup(subject)
	if !ok {
		return nil
	}
	pid, ok := g.dict.lookup(predicate)
	if !ok {
		return nil
	}
	return g.termsOf(g.spo[sid][pid])
}

// SubjectsOf returns the subjects carrying (predicate, object) in
// deterministic (dictionary ID) order — the reverse of ObjectsOf, answered
// from the POS index without scanning.
func (g *Snapshot) SubjectsOf(predicate, object Term) []Term {
	pid, ok := g.dict.lookup(predicate)
	if !ok {
		return nil
	}
	oid, ok := g.dict.lookup(object)
	if !ok {
		return nil
	}
	return g.termsOf(g.pos[pid][oid])
}

// SubjectsWithPred returns the distinct subjects that carry at least one
// triple with the given predicate, in deterministic (dictionary ID) order.
func (g *Snapshot) SubjectsWithPred(predicate Term) []Term {
	pid, ok := g.dict.lookup(predicate)
	if !ok {
		return nil
	}
	seen := map[uint32]struct{}{}
	ids := make([]uint32, 0, len(g.pos[pid]))
	for _, subs := range g.pos[pid] {
		for _, su := range subs {
			if _, dup := seen[su]; !dup {
				seen[su] = struct{}{}
				ids = append(ids, su)
			}
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return g.termsOf(ids)
}

// numRange returns the half-open slice [i, j) of the predicate's numeric
// index entries whose values lie in [lo, hi]; nil bounds are open.
func numRange(entries []numEntry, lo, hi *float64) []numEntry {
	i := 0
	if lo != nil {
		i = sort.Search(len(entries), func(k int) bool { return entries[k].val >= *lo })
	}
	j := len(entries)
	if hi != nil {
		j = sort.Search(len(entries), func(k int) bool { return entries[k].val > *hi })
	}
	if i >= j {
		return nil
	}
	return entries[i:j]
}

// SubjectsWithPredInRange returns the distinct subjects carrying the
// predicate with a numeric literal object in [lo, hi] (nil bounds are open),
// in deterministic (dictionary ID) order. This is the cardinality-band
// secondary index lookup: cost is proportional to the band, not to the
// number of subjects carrying the predicate.
func (g *Snapshot) SubjectsWithPredInRange(predicate Term, lo, hi *float64) []Term {
	pid, ok := g.dict.lookup(predicate)
	if !ok {
		return nil
	}
	band := numRange(g.num[pid], lo, hi)
	if len(band) == 0 {
		return nil
	}
	seen := make(map[uint32]struct{}, len(band))
	ids := make([]uint32, 0, len(band))
	for _, e := range band {
		if _, dup := seen[e.subj]; !dup {
			seen[e.subj] = struct{}{}
			ids = append(ids, e.subj)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return g.termsOf(ids)
}

// CountPInRange counts the predicate's triples whose numeric literal object
// lies in [lo, hi] (nil bounds are open).
func (g *Snapshot) CountPInRange(predicate Term, lo, hi *float64) int {
	pid, ok := g.dict.lookup(predicate)
	if !ok {
		return 0
	}
	return len(numRange(g.num[pid], lo, hi))
}

// CountSP returns the number of triples with the given subject and predicate.
func (g *Snapshot) CountSP(subject, predicate Term) int {
	sid, ok := g.dict.lookup(subject)
	if !ok {
		return 0
	}
	pid, ok := g.dict.lookup(predicate)
	if !ok {
		return 0
	}
	return len(g.spo[sid][pid])
}

// CountPO returns the number of triples with the given predicate and object.
func (g *Snapshot) CountPO(predicate, object Term) int {
	pid, ok := g.dict.lookup(predicate)
	if !ok {
		return 0
	}
	oid, ok := g.dict.lookup(object)
	if !ok {
		return 0
	}
	return len(g.pos[pid][oid])
}

// CountP returns the number of triples carrying the given predicate.
func (g *Snapshot) CountP(predicate Term) int {
	pid, ok := g.dict.lookup(predicate)
	if !ok {
		return 0
	}
	return g.predN[pid]
}

// CountO returns the number of triples carrying the given object.
func (g *Snapshot) CountO(object Term) int {
	oid, ok := g.dict.lookup(object)
	if !ok {
		return 0
	}
	return g.objN[oid]
}

// FirstObject returns the first object of (subject, predicate) — in
// deterministic dictionary-ID order — and whether it exists.
func (g *Snapshot) FirstObject(subject, predicate Term) (Term, bool) {
	sid, ok := g.dict.lookup(subject)
	if !ok {
		return Term{}, false
	}
	pid, ok := g.dict.lookup(predicate)
	if !ok {
		return Term{}, false
	}
	objs := g.spo[sid][pid]
	if len(objs) == 0 {
		return Term{}, false
	}
	return g.dict.term(objs[0]), true
}

// NTriples serializes the snapshot in N-Triples format with a deterministic,
// lexicographically sorted line order.
func (g *Snapshot) NTriples() string {
	triples := g.Match(nil, nil, nil)
	lines := make([]string, len(triples))
	for i, t := range triples {
		lines[i] = t.String()
	}
	sort.Strings(lines)
	var b strings.Builder
	for _, line := range lines {
		b.WriteString(line)
		b.WriteString("\n")
	}
	return b.String()
}

// numericLiteral parses a literal term's numeric value for the secondary
// index; ok is false for IRIs and non-numeric literals.
func numericLiteral(t Term) (float64, bool) {
	if t.Kind != Literal {
		return 0, false
	}
	f, err := strconv.ParseFloat(strings.TrimSpace(t.Value), 64)
	if err != nil {
		return 0, false
	}
	return f, true
}
