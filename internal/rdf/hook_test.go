package rdf

import (
	"reflect"
	"testing"
)

// TestCommitHookObservesEffectiveChanges pins the write-ahead seam contract:
// the hook sees exactly the triples a batch actually removed and actually
// inserted (duplicates and absent removals filtered), with the version of
// the epoch about to be published, and a no-op batch never fires it.
func TestCommitHookObservesEffectiveChanges(t *testing.T) {
	s := NewStore()
	type commit struct {
		removed, added []Triple
		version        uint64
	}
	var commits []commit
	s.SetCommitHook(func(removed, added []Triple, version uint64) {
		commits = append(commits, commit{
			removed: append([]Triple(nil), removed...),
			added:   append([]Triple(nil), added...),
			version: version,
		})
	})

	a := Triple{popIRI("a"), propIRI("p"), NewLiteral("1")}
	b := Triple{popIRI("b"), propIRI("p"), NewLiteral("2")}
	s.AddAll([]Triple{a, b, a}) // duplicate a in one batch: one effective add
	if len(commits) != 1 {
		t.Fatalf("commits = %d, want 1", len(commits))
	}
	if got := commits[0]; len(got.removed) != 0 || !reflect.DeepEqual(got.added, []Triple{a, b}) {
		t.Errorf("first commit = %+v, want adds [a b]", got)
	}
	if commits[0].version != s.Version() {
		t.Errorf("hook version %d != published version %d", commits[0].version, s.Version())
	}

	// Re-adding an existing triple changes nothing: no publication, no hook.
	s.Add(a)
	if len(commits) != 1 {
		t.Fatalf("no-op batch fired the hook: %d commits", len(commits))
	}

	// A rewrite batch (remove + re-add) reports both sides; the absent
	// removal pattern contributes nothing.
	missing := popIRI("missing")
	n := s.Apply([]Pattern{{S: &a.S}, {S: &missing}}, []Triple{a})
	if n != 1 {
		t.Fatalf("Apply removed %d, want 1", n)
	}
	last := commits[len(commits)-1]
	if !reflect.DeepEqual(last.removed, []Triple{a}) || !reflect.DeepEqual(last.added, []Triple{a}) {
		t.Errorf("rewrite commit = %+v, want removed [a] added [a]", last)
	}
	if last.version != s.Version() {
		t.Errorf("hook version %d != store version %d", last.version, s.Version())
	}

	// The hook leads the publication: replaying the commit log against a
	// fresh store reproduces the exact content and version.
	replay := NewStore()
	for _, c := range commits {
		patterns := make([]Pattern, len(c.removed))
		for i := range c.removed {
			patterns[i] = Pattern{S: &c.removed[i].S, P: &c.removed[i].P, O: &c.removed[i].O}
		}
		replay.Apply(patterns, c.added)
		if replay.Version() != c.version {
			t.Fatalf("replay version %d, want %d", replay.Version(), c.version)
		}
	}
	if replay.NTriples() != s.NTriples() {
		t.Errorf("replaying the commit log diverged:\n%s\nvs\n%s", replay.NTriples(), s.NTriples())
	}

	// SetCommitHook(nil) detaches.
	s.SetCommitHook(nil)
	s.Add(Triple{popIRI("c"), propIRI("p"), NewLiteral("3")})
	if len(commits) != 2 {
		t.Errorf("detached hook still fired (%d commits)", len(commits))
	}
}

// TestRestoreStore pins the boot-time inverse of snapshot serialization: the
// restored store holds exactly the triples at exactly the given version, and
// later mutations continue the version lineage.
func TestRestoreStore(t *testing.T) {
	orig := NewStore()
	orig.AddAll([]Triple{
		{popIRI("a"), propIRI("p"), NewLiteral("1")},
		{popIRI("b"), propIRI("q"), NewNumericLiteral(7)},
	})
	orig.Remove(&[]Term{popIRI("b")}[0], nil, nil)
	version := orig.Version()

	ts, err := ParseNTriples(orig.NTriples())
	if err != nil {
		t.Fatal(err)
	}
	restored := RestoreStore(ts, version)
	if restored.Version() != version {
		t.Fatalf("restored version %d, want %d", restored.Version(), version)
	}
	if restored.NTriples() != orig.NTriples() {
		t.Errorf("restored content diverged:\n%q\nvs\n%q", restored.NTriples(), orig.NTriples())
	}
	// The lineage continues: one more add bumps the version by its change
	// count, exactly as it would have on the original store.
	restored.Add(Triple{popIRI("c"), propIRI("p"), NewLiteral("2")})
	if restored.Version() != version+1 {
		t.Errorf("post-restore version %d, want %d", restored.Version(), version+1)
	}

	// Restoring zero triples at a non-zero version works (a shard that only
	// ever saw removals can legitimately be empty at a high epoch).
	empty := RestoreStore(nil, 42)
	if empty.Len() != 0 || empty.Version() != 42 {
		t.Errorf("empty restore: len %d version %d, want 0/42", empty.Len(), empty.Version())
	}
}
