package rdf

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentAddMatchLoad hammers the store from concurrent writers
// (Add, LoadNTriples) and readers (Match, ObjectsOf, Subjects, the count
// accessors, NTriples) at once. Run with -race; the final state is also
// verified for consistency.
func TestConcurrentAddMatchLoad(t *testing.T) {
	s := NewStore()
	const writers, perWriter = 4, 150
	pred := NewIRI("http://galo/qep/property/hasPopType")

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				s.Add(Triple{
					S: NewIRI(fmt.Sprintf("http://galo/qep/pop/%d-%d", w, i)),
					P: pred,
					O: NewLiteral(fmt.Sprintf("OP%d", i%7)),
				})
			}
		}(w)
	}
	// A loader racing the writers over a disjoint subject space.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var text string
		for i := 0; i < 50; i++ {
			text += fmt.Sprintf("<http://galo/kb/loaded/%d> <http://galo/qep/property/inTemplate> \"t\" .\n", i)
		}
		if err := s.LoadNTriples(text); err != nil {
			t.Errorf("LoadNTriples: %v", err)
		}
	}()
	// Readers racing both.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			obj := NewLiteral("OP3")
			for i := 0; i < 100; i++ {
				s.Match(nil, &pred, &obj)
				s.ObjectsOf(NewIRI("http://galo/qep/pop/0-1"), pred)
				s.SubjectsOf(pred, obj)
				s.Subjects()
				s.CountP(pred)
				s.CountPO(pred, obj)
				s.Len()
				s.Version()
			}
			s.NTriples()
		}()
	}
	wg.Wait()

	want := writers*perWriter + 50
	if s.Len() != want {
		t.Errorf("Len = %d, want %d", s.Len(), want)
	}
	if got := s.CountP(pred); got != writers*perWriter {
		t.Errorf("CountP = %d, want %d", got, writers*perWriter)
	}
	// Every writer's triples are findable.
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			subj := NewIRI(fmt.Sprintf("http://galo/qep/pop/%d-%d", w, i))
			if len(s.Match(&subj, nil, nil)) != 1 {
				t.Fatalf("missing triple for writer %d item %d", w, i)
			}
		}
	}
	// The roundtrip is still stable after concurrent construction.
	s2 := NewStore()
	if err := s2.LoadNTriples(s.NTriples()); err != nil {
		t.Fatal(err)
	}
	if s2.NTriples() != s.NTriples() {
		t.Errorf("roundtrip unstable after concurrent construction")
	}
}

// TestConcurrentAddSameTriples has every writer insert the same triples, so
// duplicate suppression is exercised under contention.
func TestConcurrentAddSameTriples(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 80; i++ {
				s.Add(Triple{
					S: NewIRI(fmt.Sprintf("http://galo/qep/pop/%d", i%20)),
					P: NewIRI("http://galo/qep/property/hasPages"),
					O: NewNumericLiteral(float64(i / 20)),
				})
			}
		}()
	}
	wg.Wait()
	// 20 subjects x 4 objects.
	if s.Len() != 80 {
		t.Errorf("Len = %d, want 80", s.Len())
	}
}
