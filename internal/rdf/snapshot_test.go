package rdf

import (
	"fmt"
	"sync"
	"testing"
)

func f64(v float64) *float64 { return &v }

func TestSnapshotIsolation(t *testing.T) {
	s := NewStore()
	s.AddAll([]Triple{
		{NewIRI("a"), NewIRI("p"), NewLiteral("1")},
		{NewIRI("b"), NewIRI("p"), NewLiteral("2")},
	})
	snap := s.Snapshot()
	if snap.Len() != 2 || snap.Version() != 2 {
		t.Fatalf("snapshot len=%d version=%d", snap.Len(), snap.Version())
	}
	before := snap.NTriples()

	// Mutate the store: the pinned snapshot must not move.
	s.Add(Triple{NewIRI("c"), NewIRI("p"), NewLiteral("3")})
	p := NewIRI("a")
	s.Remove(&p, nil, nil)
	s.Add(Triple{NewIRI("b"), NewIRI("q"), NewLiteral("4")})

	if snap.Len() != 2 {
		t.Errorf("pinned snapshot Len changed to %d", snap.Len())
	}
	if got := snap.NTriples(); got != before {
		t.Errorf("pinned snapshot contents changed:\n%s\nwant:\n%s", got, before)
	}
	pred := NewIRI("p")
	if n := snap.CountP(pred); n != 2 {
		t.Errorf("pinned CountP = %d, want 2", n)
	}
	if n := s.CountP(pred); n != 2 { // a removed, c added
		t.Errorf("live CountP = %d, want 2", n)
	}
	if s.Len() != 3 {
		t.Errorf("live Len = %d, want 3", s.Len())
	}
	if s.Version() <= snap.Version() {
		t.Errorf("live version %d must exceed pinned %d", s.Version(), snap.Version())
	}
}

func TestApplyIsOneAtomicEpoch(t *testing.T) {
	s := NewStore()
	subj := NewIRI("tmpl")
	s.AddAll([]Triple{
		{subj, NewIRI("p"), NewLiteral("old")},
		{NewIRI("other"), NewIRI("p"), NewLiteral("keep")},
	})
	v := s.Version()
	removed := s.Apply(
		[]Pattern{{S: &subj}},
		[]Triple{{subj, NewIRI("p"), NewLiteral("new")}, {subj, NewIRI("q"), NewLiteral("5")}},
	)
	if removed != 1 {
		t.Fatalf("removed = %d, want 1", removed)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	// One batch, one publication: the version moved exactly once (by the
	// number of changes), and no intermediate epoch existed.
	if s.Version() != v+3 {
		t.Errorf("version = %d, want %d", s.Version(), v+3)
	}
	if got := s.ObjectsOf(subj, NewIRI("p")); len(got) != 1 || got[0].Value != "new" {
		t.Errorf("ObjectsOf after Apply = %v", got)
	}
}

func TestApplyNoChangeKeepsVersion(t *testing.T) {
	s := NewStore()
	tr := Triple{NewIRI("a"), NewIRI("p"), NewLiteral("1")}
	s.Add(tr)
	v := s.Version()
	s.Add(tr) // duplicate
	missing := NewIRI("missing")
	s.Remove(&missing, nil, nil)
	if s.Version() != v {
		t.Errorf("no-op mutations moved the version: %d -> %d", v, s.Version())
	}
}

func TestNumericBandIndex(t *testing.T) {
	s := NewStore()
	lower := NewIRI("hasLowerCardinality")
	for i := 0; i < 100; i++ {
		s.Add(Triple{NewIRI(fmt.Sprintf("pop%02d", i)), lower, NewNumericLiteral(float64(i * 10))})
	}
	// Non-numeric objects never enter the band index.
	s.Add(Triple{NewIRI("popX"), lower, NewLiteral("not-a-number")})

	subs := s.SubjectsWithPredInRange(lower, f64(100), f64(140))
	if len(subs) != 5 {
		t.Fatalf("band [100,140] = %d subjects, want 5 (%v)", len(subs), subs)
	}
	for _, want := range []string{"pop10", "pop11", "pop12", "pop13", "pop14"} {
		found := false
		for _, got := range subs {
			if got.Value == want {
				found = true
			}
		}
		if !found {
			t.Errorf("band missing %s", want)
		}
	}
	if n := s.CountPInRange(lower, f64(100), f64(140)); n != 5 {
		t.Errorf("CountPInRange = %d, want 5", n)
	}
	// Open bounds.
	if got := s.SubjectsWithPredInRange(lower, nil, f64(25)); len(got) != 3 {
		t.Errorf("band (-inf,25] = %d, want 3", len(got))
	}
	if got := s.SubjectsWithPredInRange(lower, f64(970), nil); len(got) != 3 {
		t.Errorf("band [970,inf) = %d, want 3", len(got))
	}
	// Removal maintains the index.
	p12 := NewIRI("pop12")
	s.Remove(&p12, nil, nil)
	if got := s.SubjectsWithPredInRange(lower, f64(100), f64(140)); len(got) != 4 {
		t.Errorf("band after removal = %d, want 4", len(got))
	}
	// A subject with several values appears once per distinct-subject query.
	s.Add(Triple{NewIRI("pop13"), lower, NewNumericLiteral(135)})
	if got := s.SubjectsWithPredInRange(lower, f64(100), f64(140)); len(got) != 4 {
		t.Errorf("multi-valued subject duplicated in band: %d, want 4", len(got))
	}
	if n := s.CountPInRange(lower, f64(100), f64(140)); n != 5 {
		t.Errorf("CountPInRange counts entries: %d, want 5", n)
	}
}

// TestConcurrentSnapshotReadersDuringWrites pins snapshots from many reader
// goroutines while a writer publishes epochs, asserting every reader sees an
// internally consistent epoch (Len matches the enumerated triple count).
func TestConcurrentSnapshotReadersDuringWrites(t *testing.T) {
	s := NewStore()
	const writers = 2
	const readers = 8
	const rounds = 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				subj := NewIRI(fmt.Sprintf("s-%d-%d", w, i))
				s.Apply(nil, []Triple{
					{subj, NewIRI("p"), NewNumericLiteral(float64(i))},
					{subj, NewIRI("q"), NewLiteral("v")},
				})
				if i%3 == 0 {
					s.Remove(&subj, nil, nil)
				}
			}
		}(w)
	}
	errs := make(chan string, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				snap := s.Snapshot()
				if got := len(snap.Match(nil, nil, nil)); got != snap.Len() {
					errs <- fmt.Sprintf("snapshot inconsistent: enumerated %d, Len %d", got, snap.Len())
					return
				}
				p := NewIRI("p")
				snap.SubjectsWithPredInRange(p, f64(0), f64(50))
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}
