package rdf

// dictionary interns RDF terms as dense uint32 IDs. All index structures in
// the store are keyed on these IDs instead of full Term structs, so that the
// hot matching path hashes and compares machine words rather than strings.
// IDs are assigned in first-seen order and are stable for the lifetime of the
// store (terms are never un-interned, even when every triple mentioning them
// is removed — the memory cost is bounded by the vocabulary, not the triple
// count).
type dictionary struct {
	terms []Term
	ids   map[Term]uint32
}

func newDictionary() *dictionary {
	return &dictionary{ids: map[Term]uint32{}}
}

// intern returns the ID of t, assigning the next dense ID on first sight.
func (d *dictionary) intern(t Term) uint32 {
	if id, ok := d.ids[t]; ok {
		return id
	}
	id := uint32(len(d.terms))
	d.terms = append(d.terms, t)
	d.ids[t] = id
	return id
}

// lookup returns the ID of t and whether it has been interned.
func (d *dictionary) lookup(t Term) (uint32, bool) {
	id, ok := d.ids[t]
	return id, ok
}

// term is the reverse lookup; id must have been returned by intern.
func (d *dictionary) term(id uint32) Term { return d.terms[id] }

// clone returns a copy whose ID map is private; the terms slice is shared by
// header (appends only ever write beyond this clone's length, which holders
// of the original never read).
func (d *dictionary) clone() *dictionary {
	ids := make(map[Term]uint32, len(d.ids)+8)
	for k, v := range d.ids {
		ids[k] = v
	}
	return &dictionary{terms: d.terms, ids: ids}
}

// size returns the number of interned terms.
func (d *dictionary) size() int { return len(d.terms) }

// insertSorted inserts v into the ascending list, reporting false when v was
// already present.
func insertSorted(list []uint32, v uint32) ([]uint32, bool) {
	i := searchID(list, v)
	if i < len(list) && list[i] == v {
		return list, false
	}
	list = append(list, 0)
	copy(list[i+1:], list[i:])
	list[i] = v
	return list, true
}

// removeSorted removes v from the ascending list, reporting whether it was
// present.
func removeSorted(list []uint32, v uint32) ([]uint32, bool) {
	i := searchID(list, v)
	if i < len(list) && list[i] == v {
		return append(list[:i], list[i+1:]...), true
	}
	return list, false
}

// searchID returns the insertion point of v in the ascending list.
func searchID(list []uint32, v uint32) int {
	lo, hi := 0, len(list)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if list[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
