package rdf

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// TermKind distinguishes IRIs from literals.
type TermKind uint8

// Term kinds.
const (
	IRI TermKind = iota
	Literal
)

// Term is one RDF term: an IRI resource or a literal value.
type Term struct {
	Kind  TermKind
	Value string
}

// NewIRI returns an IRI term.
func NewIRI(v string) Term { return Term{Kind: IRI, Value: v} }

// NewLiteral returns a string literal term.
func NewLiteral(v string) Term { return Term{Kind: Literal, Value: v} }

// NewNumericLiteral returns a literal holding the decimal rendering of v.
func NewNumericLiteral(v float64) Term {
	return Term{Kind: Literal, Value: strconv.FormatFloat(v, 'f', -1, 64)}
}

// IsIRI reports whether the term is an IRI.
func (t Term) IsIRI() bool { return t.Kind == IRI }

// Float parses the literal as a float64; ok is false for IRIs and
// non-numeric literals.
func (t Term) Float() (float64, bool) { return numericLiteral(t) }

// String renders the term in N-Triples syntax.
func (t Term) String() string {
	if t.Kind == IRI {
		return "<" + t.Value + ">"
	}
	return strconv.Quote(t.Value)
}

// CompareTerms orders terms by (Kind, Value) without rendering them to
// N-Triples syntax (IRIs sort before literals).
func CompareTerms(a, b Term) int {
	if a.Kind != b.Kind {
		return int(a.Kind) - int(b.Kind)
	}
	return strings.Compare(a.Value, b.Value)
}

// Triple is one RDF statement.
type Triple struct {
	S, P, O Term
}

// String renders the triple in N-Triples syntax.
func (t Triple) String() string {
	return fmt.Sprintf("%s %s %s .", t.S, t.P, t.O)
}

// Pattern is a triple pattern for batch removal; nil components are
// wildcards.
type Pattern struct {
	S, P, O *Term
}

// Store is an in-memory triple store with subject/predicate/object indexes
// keyed on dictionary-encoded term IDs, plus a numeric secondary index per
// predicate. It is safe for concurrent use: writers serialize on a mutex and
// publish immutable epoch snapshots; readers load the current snapshot
// without locking.
type Store struct {
	mu   sync.Mutex // serializes writers; readers never take it
	snap atomic.Pointer[Snapshot]
	hook CommitHook
}

// CommitHook observes every publishable mutation batch. It is invoked with
// the batch's effective changes — the triples actually removed and actually
// inserted, duplicates and absent removals already filtered out — and the
// version the new epoch will carry. The hook runs under the writer mutex
// BEFORE the snapshot pointer swap, which makes it a write-ahead seam: a
// hook that persists the batch has always logged a publication before any
// reader can observe it. Hooks must not call back into the store's mutation
// methods (the writer mutex is held) and must not block indefinitely; they
// cannot veto the publication — durability failures are the hook's own to
// absorb (see internal/wal's degraded mode).
type CommitHook func(removed, added []Triple, version uint64)

// SetCommitHook installs (or, with nil, removes) the store's commit hook.
// The swap synchronizes with writers: once SetCommitHook(nil) returns, no
// further invocations of the previous hook are in flight.
func (s *Store) SetCommitHook(h CommitHook) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hook = h
}

// NewStore returns an empty store.
func NewStore() *Store {
	s := &Store{}
	s.snap.Store(emptySnapshot())
	return s
}

// Snapshot pins the current epoch. The returned view is immutable and safe
// to read without coordination for as long as the caller holds it; later
// mutations publish new epochs without disturbing it.
func (s *Store) Snapshot() *Snapshot { return s.snap.Load() }

// Add inserts a triple (duplicates are ignored).
func (s *Store) Add(t Triple) { s.AddAll([]Triple{t}) }

// AddAll inserts several triples as one atomic batch: readers observe either
// none or all of them.
func (s *Store) AddAll(ts []Triple) { s.Apply(nil, ts) }

// Remove deletes matching triples and returns how many were removed; nil
// components are wildcards.
func (s *Store) Remove(subj, pred, obj *Term) int {
	return s.Apply([]Pattern{{S: subj, P: pred, O: obj}}, nil)
}

// Apply removes every triple matching one of the removal patterns and then
// inserts the additions, all as ONE atomic epoch publication — the primitive
// the knowledge base uses to replace a template's triples without readers
// ever seeing the template half-written. It returns the number of triples
// removed.
func (s *Store) Apply(removals []Pattern, additions []Triple) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	base := s.snap.Load()
	m := newMutation(base)
	var removed []Triple
	for _, p := range removals {
		for _, victim := range base.Match(p.S, p.P, p.O) {
			if m.remove(victim) {
				removed = append(removed, victim)
			}
		}
	}
	var added []Triple
	for _, t := range additions {
		if m.add(t) {
			added = append(added, t)
		}
	}
	if next := m.publishable(base); next != nil {
		if s.hook != nil {
			s.hook(removed, added, next.version)
		}
		s.snap.Store(next)
	}
	return len(removed)
}

// RestoreStore builds a store whose initial snapshot holds exactly ts at the
// given version — the boot-time inverse of serializing a pinned snapshot
// together with its epoch. Restored stores continue the original version
// lineage, so version-keyed caches built before a restart stay honest after
// it (an epoch number never refers to two different triple sets).
func RestoreStore(ts []Triple, version uint64) *Store {
	s := NewStore()
	base := s.snap.Load()
	m := newMutation(base)
	for _, t := range ts {
		m.add(t)
	}
	next := m.publishable(base)
	if next == nil {
		next = emptySnapshot()
	}
	next.version = version
	s.snap.Store(next)
	return s
}

// --- Store read methods (delegate to the current snapshot) -------------------

// Len returns the number of distinct triples stored.
func (s *Store) Len() int { return s.Snapshot().Len() }

// Version returns a counter that increases with every successful mutation
// batch. Two calls returning the same value bracket a window in which the
// store's contents did not change, which makes it a safe cache-invalidation
// key; the knowledge base surfaces it as the KB epoch.
func (s *Store) Version() uint64 { return s.Snapshot().Version() }

// Match returns the triples matching the pattern in the current epoch; nil
// components are wildcards.
func (s *Store) Match(subj, pred, obj *Term) []Triple { return s.Snapshot().Match(subj, pred, obj) }

// Subjects returns every distinct subject in the current epoch.
func (s *Store) Subjects() []Term { return s.Snapshot().Subjects() }

// ObjectsOf returns the objects of (subject, predicate) in the current epoch.
func (s *Store) ObjectsOf(subject, predicate Term) []Term {
	return s.Snapshot().ObjectsOf(subject, predicate)
}

// SubjectsOf returns the subjects carrying (predicate, object) in the
// current epoch.
func (s *Store) SubjectsOf(predicate, object Term) []Term {
	return s.Snapshot().SubjectsOf(predicate, object)
}

// SubjectsWithPred returns the distinct subjects carrying the predicate in
// the current epoch.
func (s *Store) SubjectsWithPred(predicate Term) []Term {
	return s.Snapshot().SubjectsWithPred(predicate)
}

// SubjectsWithPredInRange returns the distinct subjects carrying the
// predicate with a numeric object in [lo, hi] in the current epoch.
func (s *Store) SubjectsWithPredInRange(predicate Term, lo, hi *float64) []Term {
	return s.Snapshot().SubjectsWithPredInRange(predicate, lo, hi)
}

// CountSP returns the number of triples with the given subject and predicate.
func (s *Store) CountSP(subject, predicate Term) int { return s.Snapshot().CountSP(subject, predicate) }

// CountPO returns the number of triples with the given predicate and object.
func (s *Store) CountPO(predicate, object Term) int { return s.Snapshot().CountPO(predicate, object) }

// CountP returns the number of triples carrying the given predicate.
func (s *Store) CountP(predicate Term) int { return s.Snapshot().CountP(predicate) }

// CountPInRange counts the predicate's triples with a numeric object in
// [lo, hi].
func (s *Store) CountPInRange(predicate Term, lo, hi *float64) int {
	return s.Snapshot().CountPInRange(predicate, lo, hi)
}

// CountO returns the number of triples carrying the given object.
func (s *Store) CountO(object Term) int { return s.Snapshot().CountO(object) }

// FirstObject returns the first object of (subject, predicate) and whether
// it exists.
func (s *Store) FirstObject(subject, predicate Term) (Term, bool) {
	return s.Snapshot().FirstObject(subject, predicate)
}

// NTriples serializes the whole store in N-Triples format with a
// deterministic, lexicographically sorted line order (stable across
// serialize/parse roundtrips regardless of internal dictionary IDs).
func (s *Store) NTriples() string { return s.Snapshot().NTriples() }

// MergeNTriples renders several stores (e.g. knowledge base shards) as one
// lexicographically sorted N-Triples document, preserving the stable-dump
// contract of a single store: the output depends only on the union of the
// triples, not on how they are partitioned.
func MergeNTriples(stores []*Store) string {
	if len(stores) == 1 {
		return stores[0].NTriples()
	}
	var lines []string
	for _, st := range stores {
		for _, line := range strings.Split(st.NTriples(), "\n") {
			if line != "" {
				lines = append(lines, line)
			}
		}
	}
	if len(lines) == 0 {
		return ""
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}

// --- N-Triples parsing -------------------------------------------------------

// ParseNTriples parses N-Triples text (as produced by NTriples) into triples.
func ParseNTriples(text string) ([]Triple, error) {
	var out []Triple
	for lineNo, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		t, err := parseNTripleLine(line)
		if err != nil {
			return nil, fmt.Errorf("rdf: line %d: %w", lineNo+1, err)
		}
		out = append(out, t)
	}
	return out, nil
}

func parseNTripleLine(line string) (Triple, error) {
	line = strings.TrimSuffix(strings.TrimSpace(line), ".")
	line = strings.TrimSpace(line)
	terms, err := splitTerms(line)
	if err != nil {
		return Triple{}, err
	}
	if len(terms) != 3 {
		return Triple{}, fmt.Errorf("expected 3 terms, got %d in %q", len(terms), line)
	}
	return Triple{terms[0], terms[1], terms[2]}, nil
}

func splitTerms(line string) ([]Term, error) {
	var out []Term
	i := 0
	for i < len(line) {
		switch {
		case line[i] == ' ' || line[i] == '\t':
			i++
		case line[i] == '<':
			end := strings.IndexByte(line[i:], '>')
			if end < 0 {
				return nil, fmt.Errorf("unterminated IRI in %q", line)
			}
			out = append(out, NewIRI(line[i+1:i+end]))
			i += end + 1
		case line[i] == '"':
			rest := line[i:]
			val, err := strconv.QuotedPrefix(rest)
			if err != nil {
				return nil, fmt.Errorf("bad literal in %q: %w", line, err)
			}
			unq, err := strconv.Unquote(val)
			if err != nil {
				return nil, err
			}
			out = append(out, NewLiteral(unq))
			i += len(val)
		default:
			return nil, fmt.Errorf("unexpected character %q in %q", line[i], line)
		}
	}
	return out, nil
}

// LoadNTriples parses and adds the triples to the store as one atomic batch.
func (s *Store) LoadNTriples(text string) error {
	ts, err := ParseNTriples(text)
	if err != nil {
		return err
	}
	s.AddAll(ts)
	return nil
}
