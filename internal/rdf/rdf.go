// Package rdf implements the in-memory RDF triple store GALO's knowledge base
// is built on, replacing the Apache Jena RDF API / TDB store used by the
// paper. It supports the subset GALO needs: IRIs and literals, triple
// insertion, wildcard matching over SPO/POS/OSP indexes, and N-Triples
// serialization for persistence and for the Fuseki-style HTTP endpoint.
package rdf

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// TermKind distinguishes IRIs from literals.
type TermKind uint8

// Term kinds.
const (
	IRI TermKind = iota
	Literal
)

// Term is one RDF term: an IRI resource or a literal value.
type Term struct {
	Kind  TermKind
	Value string
}

// NewIRI returns an IRI term.
func NewIRI(v string) Term { return Term{Kind: IRI, Value: v} }

// NewLiteral returns a string literal term.
func NewLiteral(v string) Term { return Term{Kind: Literal, Value: v} }

// NewNumericLiteral returns a literal holding the decimal rendering of v.
func NewNumericLiteral(v float64) Term {
	return Term{Kind: Literal, Value: strconv.FormatFloat(v, 'f', -1, 64)}
}

// IsIRI reports whether the term is an IRI.
func (t Term) IsIRI() bool { return t.Kind == IRI }

// Float parses the literal as a float64; ok is false for IRIs and
// non-numeric literals.
func (t Term) Float() (float64, bool) {
	if t.Kind != Literal {
		return 0, false
	}
	f, err := strconv.ParseFloat(strings.TrimSpace(t.Value), 64)
	if err != nil {
		return 0, false
	}
	return f, true
}

// String renders the term in N-Triples syntax.
func (t Term) String() string {
	if t.Kind == IRI {
		return "<" + t.Value + ">"
	}
	return strconv.Quote(t.Value)
}

// Triple is one RDF statement.
type Triple struct {
	S, P, O Term
}

// String renders the triple in N-Triples syntax.
func (t Triple) String() string {
	return fmt.Sprintf("%s %s %s .", t.S, t.P, t.O)
}

// Store is an in-memory triple store with subject/predicate/object indexes.
// It is safe for concurrent use.
type Store struct {
	mu  sync.RWMutex
	spo map[Term]map[Term][]Term
	pos map[Term]map[Term][]Term
	osp map[Term]map[Term][]Term
	n   int
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		spo: map[Term]map[Term][]Term{},
		pos: map[Term]map[Term][]Term{},
		osp: map[Term]map[Term][]Term{},
	}
}

// Add inserts a triple (duplicates are ignored).
func (s *Store) Add(t Triple) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if containsTerm(s.spo[t.S][t.P], t.O) {
		return
	}
	addIndex(s.spo, t.S, t.P, t.O)
	addIndex(s.pos, t.P, t.O, t.S)
	addIndex(s.osp, t.O, t.S, t.P)
	s.n++
}

// AddAll inserts several triples.
func (s *Store) AddAll(ts []Triple) {
	for _, t := range ts {
		s.Add(t)
	}
}

func addIndex(idx map[Term]map[Term][]Term, a, b, c Term) {
	m, ok := idx[a]
	if !ok {
		m = map[Term][]Term{}
		idx[a] = m
	}
	m[b] = append(m[b], c)
}

func containsTerm(ts []Term, t Term) bool {
	for _, x := range ts {
		if x == t {
			return true
		}
	}
	return false
}

// Len returns the number of distinct triples stored.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.n
}

// Match returns the triples matching the pattern; nil components are
// wildcards. Results are returned in a deterministic order.
func (s *Store) Match(subj, pred, obj *Term) []Triple {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Triple
	switch {
	case subj != nil:
		for p, objs := range s.spo[*subj] {
			if pred != nil && p != *pred {
				continue
			}
			for _, o := range objs {
				if obj != nil && o != *obj {
					continue
				}
				out = append(out, Triple{*subj, p, o})
			}
		}
	case pred != nil:
		for o, subjs := range s.pos[*pred] {
			if obj != nil && o != *obj {
				continue
			}
			for _, su := range subjs {
				out = append(out, Triple{su, *pred, o})
			}
		}
	case obj != nil:
		for su, preds := range s.osp[*obj] {
			for _, p := range preds {
				out = append(out, Triple{su, p, *obj})
			}
		}
	default:
		for su, pm := range s.spo {
			for p, objs := range pm {
				for _, o := range objs {
					out = append(out, Triple{su, p, o})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// Subjects returns every distinct subject in the store, sorted.
func (s *Store) Subjects() []Term {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Term, 0, len(s.spo))
	for su := range s.spo {
		out = append(out, su)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Value < out[j].Value })
	return out
}

// ObjectsOf returns the objects of (subject, predicate), in insertion order.
func (s *Store) ObjectsOf(subject, predicate Term) []Term {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]Term(nil), s.spo[subject][predicate]...)
}

// FirstObject returns the first object of (subject, predicate) and whether it
// exists.
func (s *Store) FirstObject(subject, predicate Term) (Term, bool) {
	objs := s.ObjectsOf(subject, predicate)
	if len(objs) == 0 {
		return Term{}, false
	}
	return objs[0], true
}

// Remove deletes matching triples and returns how many were removed; nil
// components are wildcards.
func (s *Store) Remove(subj, pred, obj *Term) int {
	victims := s.Match(subj, pred, obj)
	if len(victims) == 0 {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, t := range victims {
		removeIndex(s.spo, t.S, t.P, t.O)
		removeIndex(s.pos, t.P, t.O, t.S)
		removeIndex(s.osp, t.O, t.S, t.P)
		s.n--
	}
	return len(victims)
}

func removeIndex(idx map[Term]map[Term][]Term, a, b, c Term) {
	m := idx[a]
	if m == nil {
		return
	}
	list := m[b]
	for i, x := range list {
		if x == c {
			m[b] = append(list[:i], list[i+1:]...)
			break
		}
	}
	if len(m[b]) == 0 {
		delete(m, b)
	}
	if len(m) == 0 {
		delete(idx, a)
	}
}

// NTriples serializes the whole store in N-Triples format with a
// deterministic line order.
func (s *Store) NTriples() string {
	triples := s.Match(nil, nil, nil)
	var b strings.Builder
	for _, t := range triples {
		b.WriteString(t.String())
		b.WriteString("\n")
	}
	return b.String()
}

// ParseNTriples parses N-Triples text (as produced by NTriples) into triples.
func ParseNTriples(text string) ([]Triple, error) {
	var out []Triple
	for lineNo, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		t, err := parseNTripleLine(line)
		if err != nil {
			return nil, fmt.Errorf("rdf: line %d: %w", lineNo+1, err)
		}
		out = append(out, t)
	}
	return out, nil
}

func parseNTripleLine(line string) (Triple, error) {
	line = strings.TrimSuffix(strings.TrimSpace(line), ".")
	line = strings.TrimSpace(line)
	terms, err := splitTerms(line)
	if err != nil {
		return Triple{}, err
	}
	if len(terms) != 3 {
		return Triple{}, fmt.Errorf("expected 3 terms, got %d in %q", len(terms), line)
	}
	return Triple{terms[0], terms[1], terms[2]}, nil
}

func splitTerms(line string) ([]Term, error) {
	var out []Term
	i := 0
	for i < len(line) {
		switch {
		case line[i] == ' ' || line[i] == '\t':
			i++
		case line[i] == '<':
			end := strings.IndexByte(line[i:], '>')
			if end < 0 {
				return nil, fmt.Errorf("unterminated IRI in %q", line)
			}
			out = append(out, NewIRI(line[i+1:i+end]))
			i += end + 1
		case line[i] == '"':
			rest := line[i:]
			val, err := strconv.QuotedPrefix(rest)
			if err != nil {
				return nil, fmt.Errorf("bad literal in %q: %w", line, err)
			}
			unq, err := strconv.Unquote(val)
			if err != nil {
				return nil, err
			}
			out = append(out, NewLiteral(unq))
			i += len(val)
		default:
			return nil, fmt.Errorf("unexpected character %q in %q", line[i], line)
		}
	}
	return out, nil
}

// LoadNTriples parses and adds the triples to the store.
func (s *Store) LoadNTriples(text string) error {
	ts, err := ParseNTriples(text)
	if err != nil {
		return err
	}
	s.AddAll(ts)
	return nil
}
