// Package rdf implements the in-memory RDF triple store GALO's knowledge base
// is built on, replacing the Apache Jena RDF API / TDB store used by the
// paper. It supports the subset GALO needs: IRIs and literals, triple
// insertion, wildcard matching over SPO/POS/OSP indexes, and N-Triples
// serialization for persistence and for the Fuseki-style HTTP endpoint.
//
// Terms are dictionary-encoded: every distinct term is interned once as a
// dense uint32 ID, and the three indexes are nested maps over IDs whose
// posting lists are kept sorted at insert time. Lookups therefore hash
// machine words instead of strings, results need no re-sorting on read, and
// per-probe cost depends on the size of the touched posting lists rather than
// on the total store size — the property GALO's online matching engine relies
// on (Figures 11-12 of the paper).
package rdf

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// TermKind distinguishes IRIs from literals.
type TermKind uint8

// Term kinds.
const (
	IRI TermKind = iota
	Literal
)

// Term is one RDF term: an IRI resource or a literal value.
type Term struct {
	Kind  TermKind
	Value string
}

// NewIRI returns an IRI term.
func NewIRI(v string) Term { return Term{Kind: IRI, Value: v} }

// NewLiteral returns a string literal term.
func NewLiteral(v string) Term { return Term{Kind: Literal, Value: v} }

// NewNumericLiteral returns a literal holding the decimal rendering of v.
func NewNumericLiteral(v float64) Term {
	return Term{Kind: Literal, Value: strconv.FormatFloat(v, 'f', -1, 64)}
}

// IsIRI reports whether the term is an IRI.
func (t Term) IsIRI() bool { return t.Kind == IRI }

// Float parses the literal as a float64; ok is false for IRIs and
// non-numeric literals.
func (t Term) Float() (float64, bool) {
	if t.Kind != Literal {
		return 0, false
	}
	f, err := strconv.ParseFloat(strings.TrimSpace(t.Value), 64)
	if err != nil {
		return 0, false
	}
	return f, true
}

// String renders the term in N-Triples syntax.
func (t Term) String() string {
	if t.Kind == IRI {
		return "<" + t.Value + ">"
	}
	return strconv.Quote(t.Value)
}

// CompareTerms orders terms by (Kind, Value) without rendering them to
// N-Triples syntax (IRIs sort before literals).
func CompareTerms(a, b Term) int {
	if a.Kind != b.Kind {
		return int(a.Kind) - int(b.Kind)
	}
	return strings.Compare(a.Value, b.Value)
}

// Triple is one RDF statement.
type Triple struct {
	S, P, O Term
}

// String renders the triple in N-Triples syntax.
func (t Triple) String() string {
	return fmt.Sprintf("%s %s %s .", t.S, t.P, t.O)
}

// Store is an in-memory triple store with subject/predicate/object indexes
// keyed on dictionary-encoded term IDs. It is safe for concurrent use.
type Store struct {
	mu   sync.RWMutex
	dict *dictionary
	// spo: subject -> predicate -> sorted object IDs, and the two rotations.
	spo map[uint32]map[uint32][]uint32
	pos map[uint32]map[uint32][]uint32
	osp map[uint32]map[uint32][]uint32
	// predN / objN count the triples carrying each predicate / object, for
	// the cardinality estimates selectivity-ordered SPARQL evaluation uses.
	predN map[uint32]int
	objN  map[uint32]int
	n     int
	// version counts successful mutations; readers use it to invalidate
	// caches built over the store's contents.
	version uint64
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		dict:  newDictionary(),
		spo:   map[uint32]map[uint32][]uint32{},
		pos:   map[uint32]map[uint32][]uint32{},
		osp:   map[uint32]map[uint32][]uint32{},
		predN: map[uint32]int{},
		objN:  map[uint32]int{},
	}
}

// Add inserts a triple (duplicates are ignored).
func (s *Store) Add(t Triple) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.addLocked(t)
}

// AddAll inserts several triples under a single lock acquisition.
func (s *Store) AddAll(ts []Triple) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, t := range ts {
		s.addLocked(t)
	}
}

func (s *Store) addLocked(t Triple) {
	sid := s.dict.intern(t.S)
	pid := s.dict.intern(t.P)
	oid := s.dict.intern(t.O)
	list, inserted := insertSorted(index(s.spo, sid)[pid], oid)
	if !inserted {
		return
	}
	s.spo[sid][pid] = list
	pm := index(s.pos, pid)
	pm[oid], _ = insertSorted(pm[oid], sid)
	om := index(s.osp, oid)
	om[sid], _ = insertSorted(om[sid], pid)
	s.predN[pid]++
	s.objN[oid]++
	s.n++
	s.version++
}

func index(idx map[uint32]map[uint32][]uint32, a uint32) map[uint32][]uint32 {
	m, ok := idx[a]
	if !ok {
		m = map[uint32][]uint32{}
		idx[a] = m
	}
	return m
}

// Len returns the number of distinct triples stored.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.n
}

// Version returns a counter that increases with every successful mutation.
// Two calls returning the same value bracket a window in which the store's
// contents did not change, which makes it a safe cache-invalidation key.
func (s *Store) Version() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.version
}

// Match returns the triples matching the pattern; nil components are
// wildcards. Results are in a deterministic order (ascending dictionary IDs,
// i.e. first-interned terms first); callers needing lexicographic order must
// sort the result themselves.
func (s *Store) Match(subj, pred, obj *Term) []Triple {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var sid, pid, oid uint32
	var ok bool
	if subj != nil {
		if sid, ok = s.dict.lookup(*subj); !ok {
			return nil
		}
	}
	if pred != nil {
		if pid, ok = s.dict.lookup(*pred); !ok {
			return nil
		}
	}
	if obj != nil {
		if oid, ok = s.dict.lookup(*obj); !ok {
			return nil
		}
	}
	var out []Triple
	switch {
	case subj != nil && pred != nil:
		for _, o := range s.spo[sid][pid] {
			if obj != nil && o != oid {
				continue
			}
			out = append(out, Triple{*subj, *pred, s.dict.term(o)})
		}
	case subj != nil:
		pm := s.spo[sid]
		for _, p := range sortedIDs(pm) {
			pt := s.dict.term(p)
			for _, o := range pm[p] {
				if obj != nil && o != oid {
					continue
				}
				out = append(out, Triple{*subj, pt, s.dict.term(o)})
			}
		}
	case pred != nil && obj != nil:
		for _, su := range s.pos[pid][oid] {
			out = append(out, Triple{s.dict.term(su), *pred, *obj})
		}
	case pred != nil:
		om := s.pos[pid]
		for _, o := range sortedIDs(om) {
			ot := s.dict.term(o)
			for _, su := range om[o] {
				out = append(out, Triple{s.dict.term(su), *pred, ot})
			}
		}
	case obj != nil:
		sm := s.osp[oid]
		for _, su := range sortedIDs(sm) {
			st := s.dict.term(su)
			for _, p := range sm[su] {
				out = append(out, Triple{st, s.dict.term(p), *obj})
			}
		}
	default:
		for _, su := range sortedIDs(s.spo) {
			st := s.dict.term(su)
			pm := s.spo[su]
			for _, p := range sortedIDs(pm) {
				pt := s.dict.term(p)
				for _, o := range pm[p] {
					out = append(out, Triple{st, pt, s.dict.term(o)})
				}
			}
		}
	}
	return out
}

func sortedIDs[V any](m map[uint32]V) []uint32 {
	out := make([]uint32, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Subjects returns every distinct subject in the store, in deterministic
// (dictionary ID) order.
func (s *Store) Subjects() []Term {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.termsOf(sortedIDs(s.spo))
}

func (s *Store) termsOf(ids []uint32) []Term {
	out := make([]Term, len(ids))
	for i, id := range ids {
		out[i] = s.dict.term(id)
	}
	return out
}

// ObjectsOf returns the objects of (subject, predicate) in deterministic
// (dictionary ID) order. The result is a fresh slice the caller owns.
func (s *Store) ObjectsOf(subject, predicate Term) []Term {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sid, ok := s.dict.lookup(subject)
	if !ok {
		return nil
	}
	pid, ok := s.dict.lookup(predicate)
	if !ok {
		return nil
	}
	return s.termsOf(s.spo[sid][pid])
}

// SubjectsOf returns the subjects carrying (predicate, object) in
// deterministic (dictionary ID) order — the reverse of ObjectsOf, answered
// from the POS index without scanning.
func (s *Store) SubjectsOf(predicate, object Term) []Term {
	s.mu.RLock()
	defer s.mu.RUnlock()
	pid, ok := s.dict.lookup(predicate)
	if !ok {
		return nil
	}
	oid, ok := s.dict.lookup(object)
	if !ok {
		return nil
	}
	return s.termsOf(s.pos[pid][oid])
}

// SubjectsWithPred returns the distinct subjects that carry at least one
// triple with the given predicate, in deterministic (dictionary ID) order.
func (s *Store) SubjectsWithPred(predicate Term) []Term {
	s.mu.RLock()
	defer s.mu.RUnlock()
	pid, ok := s.dict.lookup(predicate)
	if !ok {
		return nil
	}
	seen := map[uint32]struct{}{}
	ids := make([]uint32, 0, len(s.pos[pid]))
	for _, subs := range s.pos[pid] {
		for _, su := range subs {
			if _, dup := seen[su]; !dup {
				seen[su] = struct{}{}
				ids = append(ids, su)
			}
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return s.termsOf(ids)
}

// CountSP returns the number of triples with the given subject and predicate.
func (s *Store) CountSP(subject, predicate Term) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sid, ok := s.dict.lookup(subject)
	if !ok {
		return 0
	}
	pid, ok := s.dict.lookup(predicate)
	if !ok {
		return 0
	}
	return len(s.spo[sid][pid])
}

// CountPO returns the number of triples with the given predicate and object.
func (s *Store) CountPO(predicate, object Term) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	pid, ok := s.dict.lookup(predicate)
	if !ok {
		return 0
	}
	oid, ok := s.dict.lookup(object)
	if !ok {
		return 0
	}
	return len(s.pos[pid][oid])
}

// CountP returns the number of triples carrying the given predicate.
func (s *Store) CountP(predicate Term) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	pid, ok := s.dict.lookup(predicate)
	if !ok {
		return 0
	}
	return s.predN[pid]
}

// CountO returns the number of triples carrying the given object.
func (s *Store) CountO(object Term) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	oid, ok := s.dict.lookup(object)
	if !ok {
		return 0
	}
	return s.objN[oid]
}

// FirstObject returns the first object of (subject, predicate) — in
// deterministic dictionary-ID order — and whether it exists.
func (s *Store) FirstObject(subject, predicate Term) (Term, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sid, ok := s.dict.lookup(subject)
	if !ok {
		return Term{}, false
	}
	pid, ok := s.dict.lookup(predicate)
	if !ok {
		return Term{}, false
	}
	objs := s.spo[sid][pid]
	if len(objs) == 0 {
		return Term{}, false
	}
	return s.dict.term(objs[0]), true
}

// Remove deletes matching triples and returns how many were removed; nil
// components are wildcards.
func (s *Store) Remove(subj, pred, obj *Term) int {
	victims := s.Match(subj, pred, obj)
	if len(victims) == 0 {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, t := range victims {
		sid, _ := s.dict.lookup(t.S)
		pid, _ := s.dict.lookup(t.P)
		oid, _ := s.dict.lookup(t.O)
		if !removeIndex(s.spo, sid, pid, oid) {
			continue
		}
		removeIndex(s.pos, pid, oid, sid)
		removeIndex(s.osp, oid, sid, pid)
		if s.predN[pid]--; s.predN[pid] == 0 {
			delete(s.predN, pid)
		}
		if s.objN[oid]--; s.objN[oid] == 0 {
			delete(s.objN, oid)
		}
		s.n--
		s.version++
	}
	return len(victims)
}

func removeIndex(idx map[uint32]map[uint32][]uint32, a, b, c uint32) bool {
	m := idx[a]
	if m == nil {
		return false
	}
	list, removed := removeSorted(m[b], c)
	if !removed {
		return false
	}
	m[b] = list
	if len(list) == 0 {
		delete(m, b)
	}
	if len(m) == 0 {
		delete(idx, a)
	}
	return true
}

// NTriples serializes the whole store in N-Triples format with a
// deterministic, lexicographically sorted line order (stable across
// serialize/parse roundtrips regardless of internal dictionary IDs).
func (s *Store) NTriples() string {
	triples := s.Match(nil, nil, nil)
	lines := make([]string, len(triples))
	for i, t := range triples {
		lines[i] = t.String()
	}
	sort.Strings(lines)
	var b strings.Builder
	for _, line := range lines {
		b.WriteString(line)
		b.WriteString("\n")
	}
	return b.String()
}

// ParseNTriples parses N-Triples text (as produced by NTriples) into triples.
func ParseNTriples(text string) ([]Triple, error) {
	var out []Triple
	for lineNo, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		t, err := parseNTripleLine(line)
		if err != nil {
			return nil, fmt.Errorf("rdf: line %d: %w", lineNo+1, err)
		}
		out = append(out, t)
	}
	return out, nil
}

func parseNTripleLine(line string) (Triple, error) {
	line = strings.TrimSuffix(strings.TrimSpace(line), ".")
	line = strings.TrimSpace(line)
	terms, err := splitTerms(line)
	if err != nil {
		return Triple{}, err
	}
	if len(terms) != 3 {
		return Triple{}, fmt.Errorf("expected 3 terms, got %d in %q", len(terms), line)
	}
	return Triple{terms[0], terms[1], terms[2]}, nil
}

func splitTerms(line string) ([]Term, error) {
	var out []Term
	i := 0
	for i < len(line) {
		switch {
		case line[i] == ' ' || line[i] == '\t':
			i++
		case line[i] == '<':
			end := strings.IndexByte(line[i:], '>')
			if end < 0 {
				return nil, fmt.Errorf("unterminated IRI in %q", line)
			}
			out = append(out, NewIRI(line[i+1:i+end]))
			i += end + 1
		case line[i] == '"':
			rest := line[i:]
			val, err := strconv.QuotedPrefix(rest)
			if err != nil {
				return nil, fmt.Errorf("bad literal in %q: %w", line, err)
			}
			unq, err := strconv.Unquote(val)
			if err != nil {
				return nil, err
			}
			out = append(out, NewLiteral(unq))
			i += len(val)
		default:
			return nil, fmt.Errorf("unexpected character %q in %q", line[i], line)
		}
	}
	return out, nil
}

// LoadNTriples parses and adds the triples to the store.
func (s *Store) LoadNTriples(text string) error {
	ts, err := ParseNTriples(text)
	if err != nil {
		return err
	}
	s.AddAll(ts)
	return nil
}
