package rdf

import "sort"

// mutation builds the next epoch Snapshot from a base snapshot by
// copying-on-write exactly what the batch touches: outer index maps are
// shallow-copied up front (sharing every untouched inner map and posting
// list with the base), inner maps and posting lists are cloned the first
// time the batch writes to them, and the dictionary is cloned only when the
// batch interns a new term. Readers holding the base snapshot therefore
// never observe a batch in progress, and an AddAll/Apply batch becomes
// visible with one atomic pointer swap.
type mutation struct {
	dict       *dictionary
	dictCloned bool
	spo        map[uint32]map[uint32][]uint32
	pos        map[uint32]map[uint32][]uint32
	osp        map[uint32]map[uint32][]uint32
	// copied marks, per index (0=spo 1=pos 2=osp), the outer keys whose
	// inner map this batch already owns; cloned marks owned posting lists.
	copied    [3]map[uint32]bool
	cloned    map[listKey]bool
	num       map[uint32][]numEntry
	numCloned map[uint32]bool
	predN     map[uint32]int
	objN      map[uint32]int
	n         int
	changes   uint64
}

type listKey struct {
	idx  uint8
	a, b uint32
}

func newMutation(base *Snapshot) *mutation {
	return &mutation{
		dict:      base.dict,
		spo:       copyOuter(base.spo),
		pos:       copyOuter(base.pos),
		osp:       copyOuter(base.osp),
		copied:    [3]map[uint32]bool{{}, {}, {}},
		cloned:    map[listKey]bool{},
		num:       copyNum(base.num),
		numCloned: map[uint32]bool{},
		predN:     copyCounts(base.predN),
		objN:      copyCounts(base.objN),
		n:         base.n,
	}
}

func copyOuter(m map[uint32]map[uint32][]uint32) map[uint32]map[uint32][]uint32 {
	out := make(map[uint32]map[uint32][]uint32, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func copyInnerMap(m map[uint32][]uint32) map[uint32][]uint32 {
	out := make(map[uint32][]uint32, len(m)+1)
	for k, v := range m {
		out[k] = v
	}
	return out
}

func copyNum(m map[uint32][]numEntry) map[uint32][]numEntry {
	out := make(map[uint32][]numEntry, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func copyCounts(m map[uint32]int) map[uint32]int {
	out := make(map[uint32]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// intern returns the term's dictionary ID, cloning the dictionary's ID map
// on the batch's first new term. The terms slice is shared with the base by
// slice header: appends write beyond the base's length, which no reader of
// an already-published snapshot ever accesses.
func (m *mutation) intern(t Term) uint32 {
	if id, ok := m.dict.lookup(t); ok {
		return id
	}
	if !m.dictCloned {
		m.dict = m.dict.clone()
		m.dictCloned = true
	}
	return m.dict.intern(t)
}

// add inserts a triple; it reports false when the triple was already present
// (duplicates are ignored).
func (m *mutation) add(t Triple) bool {
	sid := m.intern(t.S)
	pid := m.intern(t.P)
	oid := m.intern(t.O)
	if !m.insert(0, m.spo, sid, pid, oid) {
		return false
	}
	m.insert(1, m.pos, pid, oid, sid)
	m.insert(2, m.osp, oid, sid, pid)
	if val, ok := numericLiteral(t.O); ok {
		m.numInsert(pid, val, sid)
	}
	m.predN[pid]++
	m.objN[oid]++
	m.n++
	m.changes++
	return true
}

// remove deletes one triple; it reports false when the triple is absent.
func (m *mutation) remove(t Triple) bool {
	sid, ok1 := m.dict.lookup(t.S)
	pid, ok2 := m.dict.lookup(t.P)
	oid, ok3 := m.dict.lookup(t.O)
	if !ok1 || !ok2 || !ok3 {
		return false
	}
	if !m.removeFrom(0, m.spo, sid, pid, oid) {
		return false
	}
	m.removeFrom(1, m.pos, pid, oid, sid)
	m.removeFrom(2, m.osp, oid, sid, pid)
	if val, ok := numericLiteral(t.O); ok {
		m.numRemove(pid, val, sid)
	}
	if m.predN[pid]--; m.predN[pid] == 0 {
		delete(m.predN, pid)
	}
	if m.objN[oid]--; m.objN[oid] == 0 {
		delete(m.objN, oid)
	}
	m.n--
	m.changes++
	return true
}

// insert adds c to the sorted posting list idx[a][b], cloning the inner map
// and the list the first time this batch writes to them. It reports false
// when c was already present.
func (m *mutation) insert(tag uint8, idx map[uint32]map[uint32][]uint32, a, b, c uint32) bool {
	inner, ok := idx[a]
	switch {
	case !ok:
		inner = map[uint32][]uint32{}
		idx[a] = inner
		m.copied[tag][a] = true
	case !m.copied[tag][a]:
		inner = copyInnerMap(inner)
		idx[a] = inner
		m.copied[tag][a] = true
	}
	list := inner[b]
	i := searchID(list, c)
	if i < len(list) && list[i] == c {
		return false
	}
	key := listKey{tag, a, b}
	if !m.cloned[key] {
		nl := make([]uint32, len(list)+1, len(list)+4)
		copy(nl, list[:i])
		nl[i] = c
		copy(nl[i+1:], list[i:])
		inner[b] = nl
		m.cloned[key] = true
		return true
	}
	list = append(list, 0)
	copy(list[i+1:], list[i:])
	list[i] = c
	inner[b] = list
	return true
}

// removeFrom deletes c from the sorted posting list idx[a][b] under the same
// copy-on-write discipline as insert, dropping emptied lists and maps.
func (m *mutation) removeFrom(tag uint8, idx map[uint32]map[uint32][]uint32, a, b, c uint32) bool {
	inner, ok := idx[a]
	if !ok {
		return false
	}
	list := inner[b]
	i := searchID(list, c)
	if i >= len(list) || list[i] != c {
		return false
	}
	if !m.copied[tag][a] {
		inner = copyInnerMap(inner)
		idx[a] = inner
		m.copied[tag][a] = true
	}
	key := listKey{tag, a, b}
	var nl []uint32
	if !m.cloned[key] {
		nl = make([]uint32, len(list)-1)
		copy(nl, list[:i])
		copy(nl[i:], list[i+1:])
		m.cloned[key] = true
	} else {
		nl = append(list[:i], list[i+1:]...)
	}
	if len(nl) == 0 {
		delete(inner, b)
	} else {
		inner[b] = nl
	}
	if len(inner) == 0 {
		delete(idx, a)
	}
	return true
}

// numInsert records (val, sid) in the predicate's numeric index, keeping the
// list sorted by (value, subject). Distinct triples whose objects parse to
// the same value (e.g. "1" and "1.0") produce one entry each; numRemove
// removes one occurrence per removed triple.
func (m *mutation) numInsert(pid uint32, val float64, sid uint32) {
	list := m.num[pid]
	i := numSearch(list, val, sid)
	if !m.numCloned[pid] {
		nl := make([]numEntry, len(list)+1, len(list)+4)
		copy(nl, list[:i])
		nl[i] = numEntry{val, sid}
		copy(nl[i+1:], list[i:])
		m.num[pid] = nl
		m.numCloned[pid] = true
		return
	}
	list = append(list, numEntry{})
	copy(list[i+1:], list[i:])
	list[i] = numEntry{val, sid}
	m.num[pid] = list
}

// numRemove deletes one (val, sid) occurrence from the predicate's numeric
// index.
func (m *mutation) numRemove(pid uint32, val float64, sid uint32) {
	list := m.num[pid]
	i := numSearch(list, val, sid)
	if i >= len(list) || list[i].val != val || list[i].subj != sid {
		return
	}
	if !m.numCloned[pid] {
		nl := make([]numEntry, len(list)-1)
		copy(nl, list[:i])
		copy(nl[i:], list[i+1:])
		list = nl
		m.numCloned[pid] = true
	} else {
		list = append(list[:i], list[i+1:]...)
	}
	if len(list) == 0 {
		delete(m.num, pid)
	} else {
		m.num[pid] = list
	}
}

// numSearch returns the insertion point of (val, sid) in the
// (value, subject)-sorted list.
func numSearch(list []numEntry, val float64, sid uint32) int {
	return sort.Search(len(list), func(k int) bool {
		if list[k].val != val {
			return list[k].val > val
		}
		return list[k].subj >= sid
	})
}

// publishable returns the next epoch's snapshot, or nil when the batch
// changed nothing (so the version — and with it every version-keyed cache —
// stays put).
func (m *mutation) publishable(base *Snapshot) *Snapshot {
	if m.changes == 0 {
		return nil
	}
	return &Snapshot{
		dict:    m.dict,
		spo:     m.spo,
		pos:     m.pos,
		osp:     m.osp,
		num:     m.num,
		predN:   m.predN,
		objN:    m.objN,
		n:       m.n,
		version: base.version + m.changes,
	}
}
