package catalog

import "testing"

func TestCatalogStatsRoundtrip(t *testing.T) {
	c := New(testSchema())
	if c.Stats("ITEM") != nil {
		t.Errorf("stats should be nil before SetStats")
	}
	if got := c.EstimatedCardinality("ITEM"); got != 1000 {
		t.Errorf("default cardinality = %v, want 1000", got)
	}
	ts := &TableStats{
		Table:       "item",
		Cardinality: 18000,
		Pages:       240,
		RowWidth:    56,
		Columns: map[string]*ColumnStats{
			"I_CATEGORY": {Column: "I_CATEGORY", NDV: 10, RowCount: 18000,
				Frequent: []FrequentValue{{Value: String("Music"), Count: 7442}}},
		},
		Groups: []ColumnGroup{{Columns: []string{"I_CATEGORY", "I_CURRENT_PRICE"}, NDV: 500}},
	}
	c.SetStats(ts)
	got := c.Stats("item")
	if got == nil || got.Cardinality != 18000 {
		t.Fatalf("Stats(item) = %+v", got)
	}
	if got.StaleFactor != 1.0 {
		t.Errorf("StaleFactor default = %v", got.StaleFactor)
	}
	cs := got.ColumnStats("i_category")
	if cs == nil || cs.NDV != 10 {
		t.Fatalf("ColumnStats = %+v", cs)
	}
	if n, ok := cs.FrequencyOf(String("Music")); !ok || n != 7442 {
		t.Errorf("FrequencyOf(Music) = %d, %v", n, ok)
	}
	if _, ok := cs.FrequencyOf(String("Jewelry")); ok {
		t.Errorf("FrequencyOf(Jewelry) should be absent")
	}
	if got.GroupNDV([]string{"i_current_price", "i_category"}) != 500 {
		t.Errorf("GroupNDV order-insensitive lookup failed")
	}
	if got.GroupNDV([]string{"i_category"}) != 0 {
		t.Errorf("GroupNDV for unrecorded group should be 0")
	}
}

func TestStaleFactorDistortsEstimates(t *testing.T) {
	c := New(testSchema())
	c.SetStats(&TableStats{Table: "WEB_SALES", Cardinality: 100000, Pages: 2000})
	if got := c.EstimatedCardinality("web_sales"); got != 100000 {
		t.Fatalf("fresh cardinality = %v", got)
	}
	if err := c.SetStaleFactor("web_sales", 0.01); err != nil {
		t.Fatalf("SetStaleFactor: %v", err)
	}
	if got := c.EstimatedCardinality("web_sales"); got != 1000 {
		t.Errorf("stale cardinality = %v, want 1000", got)
	}
	if got := c.EstimatedPages("web_sales"); got != 20 {
		t.Errorf("stale pages = %v, want 20", got)
	}
	if err := c.SetStaleFactor("missing", 0.5); err == nil {
		t.Errorf("SetStaleFactor on missing table should fail")
	}
}

func TestCatalogCloneIsIndependent(t *testing.T) {
	c := New(testSchema())
	c.SetStats(&TableStats{Table: "ITEM", Cardinality: 18000, Pages: 240,
		Columns: map[string]*ColumnStats{"I_CATEGORY": {Column: "I_CATEGORY", NDV: 10}}})
	clone := c.Clone()
	if err := clone.SetStaleFactor("ITEM", 0.5); err != nil {
		t.Fatalf("clone SetStaleFactor: %v", err)
	}
	if c.Stats("ITEM").StaleFactor != 1.0 {
		t.Errorf("mutating the clone changed the original")
	}
	clone.Stats("ITEM").Columns["I_CATEGORY"].NDV = 99
	if c.Stats("ITEM").Columns["I_CATEGORY"].NDV != 10 {
		t.Errorf("clone column stats share memory with original")
	}
	if len(clone.TablesWithStats()) != 1 || clone.TablesWithStats()[0] != "ITEM" {
		t.Errorf("TablesWithStats = %v", clone.TablesWithStats())
	}
}

func TestDefaultSystemConfig(t *testing.T) {
	cfg := DefaultSystemConfig()
	if cfg.TransferRate <= 0 || cfg.Overhead <= cfg.TransferRate {
		t.Errorf("random I/O should cost more than sequential: %+v", cfg)
	}
	if cfg.BufferPoolPages <= 0 || cfg.SortHeapPages <= 0 || cfg.PageSizeBytes <= 0 {
		t.Errorf("non-positive config: %+v", cfg)
	}
}
