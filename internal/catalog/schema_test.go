package catalog

import "testing"

func testSchema() *Schema {
	s := NewSchema("TEST")
	item := NewTable("item",
		Column{Name: "i_item_sk", Type: KindInt},
		Column{Name: "i_category", Type: KindString},
		Column{Name: "i_current_price", Type: KindFloat},
	)
	item.PrimaryKey = []string{"I_ITEM_SK"}
	if err := item.AddIndex(Index{Columns: []string{"i_item_sk"}, Unique: true, ClusterRatio: 0.95}); err != nil {
		panic(err)
	}
	sales := NewTable("web_sales",
		Column{Name: "ws_item_sk", Type: KindInt},
		Column{Name: "ws_sold_date_sk", Type: KindInt},
		Column{Name: "ws_quantity", Type: KindInt},
	)
	s.AddTable(item)
	s.AddTable(sales)
	return s
}

func TestTableColumnLookup(t *testing.T) {
	s := testSchema()
	item := s.Table("ITEM")
	if item == nil {
		t.Fatal("Table(ITEM) is nil")
	}
	if item.ColumnIndex("i_category") != 1 {
		t.Errorf("ColumnIndex(i_category) = %d", item.ColumnIndex("i_category"))
	}
	if item.ColumnIndex("I_CATEGORY") != 1 {
		t.Errorf("case-insensitive lookup failed")
	}
	if item.ColumnIndex("nope") != -1 {
		t.Errorf("missing column should return -1")
	}
	if c := item.Column("i_current_price"); c == nil || c.Type != KindFloat {
		t.Errorf("Column(i_current_price) = %+v", c)
	}
	names := item.ColumnNames()
	if len(names) != 3 || names[0] != "I_ITEM_SK" {
		t.Errorf("ColumnNames = %v", names)
	}
}

func TestSchemaLookupCaseInsensitive(t *testing.T) {
	s := testSchema()
	if s.Table("item") == nil || s.Table("Item") == nil {
		t.Errorf("case-insensitive table lookup failed")
	}
	if s.Table("missing") != nil {
		t.Errorf("missing table should be nil")
	}
	if got := len(s.Tables()); got != 2 {
		t.Errorf("Tables() len = %d", got)
	}
	names := s.TableNames()
	if len(names) != 2 || names[0] != "ITEM" || names[1] != "WEB_SALES" {
		t.Errorf("TableNames = %v", names)
	}
}

func TestAddIndexValidation(t *testing.T) {
	s := testSchema()
	sales := s.Table("web_sales")
	if err := sales.AddIndex(Index{Columns: []string{"no_such_col"}}); err == nil {
		t.Errorf("AddIndex on unknown column should fail")
	}
	if err := sales.AddIndex(Index{Columns: []string{"ws_item_sk"}}); err != nil {
		t.Fatalf("AddIndex: %v", err)
	}
	idx := sales.IndexOn("WS_ITEM_SK")
	if idx == nil {
		t.Fatal("IndexOn returned nil")
	}
	if idx.Name == "" || idx.Table != "WEB_SALES" {
		t.Errorf("index defaults not applied: %+v", idx)
	}
	if idx.ClusterRatio != 0.5 {
		t.Errorf("default cluster ratio = %v", idx.ClusterRatio)
	}
	if sales.IndexByName(idx.Name) == nil {
		t.Errorf("IndexByName(%q) is nil", idx.Name)
	}
	if sales.IndexOn("ws_quantity") != nil {
		t.Errorf("IndexOn(ws_quantity) should be nil")
	}
}

func TestResolveColumn(t *testing.T) {
	s := testSchema()
	owner, err := s.ResolveColumn("i_category", []string{"ITEM", "WEB_SALES"})
	if err != nil || owner != "ITEM" {
		t.Errorf("ResolveColumn = %q, %v", owner, err)
	}
	if _, err := s.ResolveColumn("unknown_col", []string{"ITEM"}); err == nil {
		t.Errorf("ResolveColumn should fail for unknown column")
	}
	// Ambiguity: add a table that shares a column name.
	dup := NewTable("item2", Column{Name: "i_category", Type: KindString})
	s.AddTable(dup)
	if _, err := s.ResolveColumn("i_category", []string{"ITEM", "ITEM2"}); err == nil {
		t.Errorf("ResolveColumn should report ambiguity")
	}
}
