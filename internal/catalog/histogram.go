package catalog

// Bucket is one bucket of an equi-depth histogram. Buckets cover contiguous,
// non-overlapping value ranges; a bucket spans (previous bucket's Hi, Hi],
// except the first, which spans [Histogram.Min, Hi]. Count is the number of
// rows in the bucket and NDV the number of distinct values among them.
type Bucket struct {
	Hi    Value
	Count int64
	NDV   int64
}

// Histogram is an equi-depth (equal-height) histogram over one column's
// non-null values, as collected by the storage layer's ANALYZE pass. It is
// immutable after construction and may therefore be shared between catalog
// clones.
//
// This is the statistics structure DB2's RUNSTATS quantile statistics play in
// the paper: it replaces the System-R constant reduction factors for range
// and equality predicates. Like any statistic it describes the data *as of
// collection time* — a histogram collected before the latest load is exactly
// the Figure 8 hazard.
type Histogram struct {
	// Min is the smallest value covered (the lower bound of the first bucket).
	Min Value
	// Buckets are ordered by Hi ascending.
	Buckets []Bucket
	// Rows is the total non-null row count the histogram describes.
	Rows int64
}

// NumBuckets returns the number of buckets.
func (h *Histogram) NumBuckets() int {
	if h == nil {
		return 0
	}
	return len(h.Buckets)
}

// numeric reports whether the histogram's domain supports interpolation.
func (h *Histogram) numeric() bool {
	switch h.Min.K {
	case KindInt, KindFloat, KindDate:
		return true
	}
	return false
}

// Max returns the largest value covered.
func (h *Histogram) Max() Value {
	if h == nil || len(h.Buckets) == 0 {
		return Null()
	}
	return h.Buckets[len(h.Buckets)-1].Hi
}

// RangeFraction estimates the fraction of rows with lo <= v <= hi; a nil
// bound is unbounded on that side. Whole buckets inside the range contribute
// their full count; the partially covered boundary buckets are interpolated
// linearly. It returns -1 when the histogram cannot answer (empty, or a
// non-numeric domain where interpolation is meaningless).
func (h *Histogram) RangeFraction(lo, hi *Value) float64 {
	if h == nil || len(h.Buckets) == 0 || h.Rows <= 0 || !h.numeric() {
		return -1
	}
	loV := h.Min.AsFloat()
	hiV := h.Max().AsFloat()
	if lo != nil && !lo.IsNull() {
		loV = lo.AsFloat()
	}
	if hi != nil && !hi.IsNull() {
		hiV = hi.AsFloat()
	}
	if hiV < loV {
		return 0
	}
	covered := 0.0
	bLo := h.Min.AsFloat()
	for _, b := range h.Buckets {
		bHi := b.Hi.AsFloat()
		covered += float64(b.Count) * overlapFraction(bLo, bHi, loV, hiV)
		bLo = bHi
	}
	frac := covered / float64(h.Rows)
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	return frac
}

// overlapFraction returns which fraction of the bucket [bLo, bHi] the query
// range [qLo, qHi] covers, treating values as uniformly spread inside the
// bucket. Zero-width buckets (a single distinct value) count fully when the
// range contains that value.
func overlapFraction(bLo, bHi, qLo, qHi float64) float64 {
	if bHi <= bLo {
		if qLo <= bHi && bHi <= qHi {
			return 1
		}
		return 0
	}
	lo := bLo
	if qLo > lo {
		lo = qLo
	}
	hi := bHi
	if qHi < hi {
		hi = qHi
	}
	if hi <= lo {
		return 0
	}
	return (hi - lo) / (bHi - bLo)
}

// EqFraction estimates the fraction of rows equal to v: the containing
// bucket's count spread uniformly over its distinct values. Returns -1 when
// the histogram cannot answer.
func (h *Histogram) EqFraction(v Value) float64 {
	if h == nil || len(h.Buckets) == 0 || h.Rows <= 0 || v.IsNull() {
		return -1
	}
	if Compare(v, h.Min) < 0 || Compare(v, h.Max()) > 0 {
		return 0
	}
	for _, b := range h.Buckets {
		if Compare(v, b.Hi) <= 0 {
			ndv := b.NDV
			if ndv < 1 {
				ndv = 1
			}
			return float64(b.Count) / float64(ndv) / float64(h.Rows)
		}
	}
	return 0
}
