package catalog

import "testing"

func intHist(rowsPerBucket []struct {
	hi    int64
	count int64
	ndv   int64
}, min int64) *Histogram {
	h := &Histogram{Min: Int(min)}
	for _, b := range rowsPerBucket {
		h.Buckets = append(h.Buckets, Bucket{Hi: Int(b.hi), Count: b.count, NDV: b.ndv})
		h.Rows += b.count
	}
	return h
}

func TestHistogramRangeFraction(t *testing.T) {
	// 100 rows uniform over [1,100]: four buckets of 25.
	h := intHist([]struct{ hi, count, ndv int64 }{
		{25, 25, 25}, {50, 25, 25}, {75, 25, 25}, {100, 25, 25},
	}, 1)

	lo, hi := Int(1), Int(100)
	if f := h.RangeFraction(&lo, &hi); f < 0.95 || f > 1.0 {
		t.Errorf("full range fraction = %v", f)
	}
	lo, hi = Int(26), Int(50)
	if f := h.RangeFraction(&lo, &hi); f < 0.2 || f > 0.3 {
		t.Errorf("one-bucket fraction = %v, want ~0.25", f)
	}
	// Unbounded sides.
	hi = Int(50)
	if f := h.RangeFraction(nil, &hi); f < 0.45 || f > 0.55 {
		t.Errorf("<=50 fraction = %v, want ~0.5", f)
	}
	lo = Int(76)
	if f := h.RangeFraction(&lo, nil); f < 0.2 || f > 0.3 {
		t.Errorf(">=76 fraction = %v, want ~0.25", f)
	}
	// A range entirely outside the collected domain sees nothing — the
	// Figure 8 stale-histogram answer.
	lo, hi = Int(150), Int(200)
	if f := h.RangeFraction(&lo, &hi); f != 0 {
		t.Errorf("out-of-domain fraction = %v, want 0", f)
	}
	// Inverted range.
	lo, hi = Int(60), Int(40)
	if f := h.RangeFraction(&lo, &hi); f != 0 {
		t.Errorf("inverted range fraction = %v", f)
	}
	// Nil / empty histograms cannot answer.
	var nilH *Histogram
	if f := nilH.RangeFraction(nil, nil); f != -1 {
		t.Errorf("nil histogram = %v, want -1", f)
	}
	strH := &Histogram{Min: String("a"), Rows: 10, Buckets: []Bucket{{Hi: String("z"), Count: 10, NDV: 5}}}
	if f := strH.RangeFraction(nil, nil); f != -1 {
		t.Errorf("string histogram interpolation = %v, want -1", f)
	}
}

func TestHistogramSkewedRangeFraction(t *testing.T) {
	// 1000 rows: 900 concentrated in [91,100], 100 spread over [1,90] —
	// equi-depth buckets are narrow where the data is dense.
	h := intHist([]struct{ hi, count, ndv int64 }{
		{90, 100, 90}, {93, 300, 3}, {96, 300, 3}, {100, 300, 4},
	}, 1)
	lo, hi := Int(91), Int(100)
	if f := h.RangeFraction(&lo, &hi); f < 0.8 || f > 1.0 {
		t.Errorf("dense tail fraction = %v, want ~0.9 (uniformity would say 0.1)", f)
	}
	lo, hi = Int(1), Int(90)
	if f := h.RangeFraction(&lo, &hi); f > 0.2 {
		t.Errorf("sparse head fraction = %v, want ~0.1", f)
	}
}

func TestHistogramEqFraction(t *testing.T) {
	h := intHist([]struct{ hi, count, ndv int64 }{
		{10, 50, 10}, {11, 50, 1}, // 11 is a heavy hitter: 50 rows alone
	}, 1)
	if f := h.EqFraction(Int(11)); f < 0.45 || f > 0.55 {
		t.Errorf("heavy hitter fraction = %v, want 0.5", f)
	}
	if f := h.EqFraction(Int(5)); f < 0.03 || f > 0.08 {
		t.Errorf("uniform value fraction = %v, want 0.05", f)
	}
	if f := h.EqFraction(Int(999)); f != 0 {
		t.Errorf("out-of-domain equality = %v, want 0", f)
	}
	if f := h.EqFraction(Null()); f != -1 {
		t.Errorf("NULL equality = %v, want -1", f)
	}
	// Strings work for equality (no interpolation needed).
	s := &Histogram{Min: String("a"), Rows: 100, Buckets: []Bucket{
		{Hi: String("m"), Count: 60, NDV: 6}, {Hi: String("z"), Count: 40, NDV: 4},
	}}
	if f := s.EqFraction(String("c")); f < 0.05 || f > 0.15 {
		t.Errorf("string equality fraction = %v, want 0.1", f)
	}
}
