// Package catalog defines the schema metadata, value model, and statistics
// used by the minidb substrate (parser, optimizer, executor) and by GALO's
// learning engine.
//
// The catalog plays the role DB2's system catalog plays in the paper: it is
// where the optimizer gets table cardinalities, column distinct counts and
// frequent-value statistics, and where deliberate blind spots (stale stats,
// ignored column correlation) create the estimation errors that GALO learns
// to repair.
package catalog

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Kind enumerates the runtime value kinds supported by minidb.
type Kind uint8

// Value kinds.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindDate // stored as days since 1970-01-01 in I
	KindBool
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INTEGER"
	case KindFloat:
		return "DOUBLE"
	case KindString:
		return "VARCHAR"
	case KindDate:
		return "DATE"
	case KindBool:
		return "BOOLEAN"
	default:
		return fmt.Sprintf("KIND(%d)", uint8(k))
	}
}

// Value is a compact tagged union holding a single SQL value. The zero Value
// is SQL NULL.
type Value struct {
	K Kind
	I int64
	F float64
	S string
}

// Null returns the SQL NULL value.
func Null() Value { return Value{K: KindNull} }

// Int returns an integer value.
func Int(i int64) Value { return Value{K: KindInt, I: i} }

// Float returns a floating point value.
func Float(f float64) Value { return Value{K: KindFloat, F: f} }

// String returns a string value.
func String(s string) Value { return Value{K: KindString, S: s} }

// Bool returns a boolean value.
func Bool(b bool) Value {
	v := Value{K: KindBool}
	if b {
		v.I = 1
	}
	return v
}

// Date returns a date value for the given civil date.
func Date(year int, month time.Month, day int) Value {
	t := time.Date(year, month, day, 0, 0, 0, 0, time.UTC)
	return Value{K: KindDate, I: int64(t.Unix() / 86400)}
}

// DateFromDays returns a date value holding the given number of days since
// the Unix epoch.
func DateFromDays(days int64) Value { return Value{K: KindDate, I: days} }

// ParseDate parses a 'YYYY-MM-DD' literal into a date value.
func ParseDate(s string) (Value, error) {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		return Null(), fmt.Errorf("catalog: parse date %q: %w", s, err)
	}
	return Value{K: KindDate, I: int64(t.Unix() / 86400)}, nil
}

// IsNull reports whether the value is SQL NULL.
func (v Value) IsNull() bool { return v.K == KindNull }

// AsBool reports the truthiness of the value (NULL is false).
func (v Value) AsBool() bool {
	switch v.K {
	case KindBool, KindInt, KindDate:
		return v.I != 0
	case KindFloat:
		return v.F != 0
	case KindString:
		return v.S != ""
	default:
		return false
	}
}

// AsFloat converts numeric values to float64; strings parse if possible.
func (v Value) AsFloat() float64 {
	switch v.K {
	case KindInt, KindBool, KindDate:
		return float64(v.I)
	case KindFloat:
		return v.F
	case KindString:
		f, err := strconv.ParseFloat(v.S, 64)
		if err != nil {
			return 0
		}
		return f
	default:
		return 0
	}
}

// AsInt converts numeric values to int64.
func (v Value) AsInt() int64 {
	switch v.K {
	case KindInt, KindBool, KindDate:
		return v.I
	case KindFloat:
		return int64(v.F)
	case KindString:
		i, err := strconv.ParseInt(v.S, 10, 64)
		if err != nil {
			return 0
		}
		return i
	default:
		return 0
	}
}

// AsString renders the value as a string, the way it would appear in a
// result set.
func (v Value) AsString() string {
	switch v.K {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return v.S
	case KindDate:
		return time.Unix(v.I*86400, 0).UTC().Format("2006-01-02")
	case KindBool:
		if v.I != 0 {
			return "TRUE"
		}
		return "FALSE"
	default:
		return fmt.Sprintf("<%v>", v.K)
	}
}

// SQLLiteral renders the value as a SQL literal (strings and dates quoted).
func (v Value) SQLLiteral() string {
	switch v.K {
	case KindString:
		return "'" + strings.ReplaceAll(v.S, "'", "''") + "'"
	case KindDate:
		return "'" + v.AsString() + "'"
	default:
		return v.AsString()
	}
}

// Compare orders two values. NULL sorts before everything; values of
// different numeric kinds compare numerically; strings compare
// lexicographically. It returns -1, 0, or +1.
func Compare(a, b Value) int {
	if a.K == KindNull || b.K == KindNull {
		switch {
		case a.K == KindNull && b.K == KindNull:
			return 0
		case a.K == KindNull:
			return -1
		default:
			return 1
		}
	}
	if a.K == KindString && b.K == KindString {
		return strings.Compare(a.S, b.S)
	}
	if a.K == KindString || b.K == KindString {
		// Mixed string/numeric comparison falls back to string form.
		return strings.Compare(a.AsString(), b.AsString())
	}
	af, bf := a.AsFloat(), b.AsFloat()
	switch {
	case af < bf:
		return -1
	case af > bf:
		return 1
	default:
		return 0
	}
}

// Equal reports SQL equality between two values. NULL equals nothing,
// including NULL.
func Equal(a, b Value) bool {
	if a.K == KindNull || b.K == KindNull {
		return false
	}
	return Compare(a, b) == 0
}

// Key returns a string usable as a hash key that is consistent with Equal
// (two Equal values have the same Key).
func (v Value) Key() string {
	switch v.K {
	case KindNull:
		return "\x00null"
	case KindString:
		return "s:" + v.S
	default:
		return "n:" + strconv.FormatFloat(v.AsFloat(), 'g', -1, 64)
	}
}
