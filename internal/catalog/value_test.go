package catalog

import (
	"testing"
	"testing/quick"
	"time"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	if !Null().IsNull() {
		t.Fatal("Null() should be null")
	}
	if Int(42).AsInt() != 42 {
		t.Errorf("Int roundtrip failed")
	}
	if Float(3.5).AsFloat() != 3.5 {
		t.Errorf("Float roundtrip failed")
	}
	if String("abc").AsString() != "abc" {
		t.Errorf("String roundtrip failed")
	}
	if !Bool(true).AsBool() || Bool(false).AsBool() {
		t.Errorf("Bool roundtrip failed")
	}
	d := Date(2016, time.January, 2)
	if d.AsString() != "2016-01-02" {
		t.Errorf("Date rendered %q, want 2016-01-02", d.AsString())
	}
}

func TestParseDate(t *testing.T) {
	v, err := ParseDate("2016-01-02")
	if err != nil {
		t.Fatalf("ParseDate: %v", err)
	}
	if v.K != KindDate {
		t.Fatalf("ParseDate kind = %v", v.K)
	}
	if v.AsString() != "2016-01-02" {
		t.Errorf("ParseDate roundtrip = %q", v.AsString())
	}
	if _, err := ParseDate("not-a-date"); err == nil {
		t.Errorf("ParseDate should fail on garbage")
	}
}

func TestCompareOrdering(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(1), 1},
		{Int(2), Int(2), 0},
		{Int(2), Float(2.0), 0},
		{Float(1.5), Int(2), -1},
		{String("a"), String("b"), -1},
		{String("b"), String("a"), 1},
		{String("a"), String("a"), 0},
		{Null(), Int(1), -1},
		{Int(1), Null(), 1},
		{Null(), Null(), 0},
		{Date(2020, 1, 1), Date(2021, 1, 1), -1},
	}
	for i, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("case %d: Compare(%v,%v) = %d, want %d", i, c.a, c.b, got, c.want)
		}
	}
}

func TestEqualNullSemantics(t *testing.T) {
	if Equal(Null(), Null()) {
		t.Errorf("NULL = NULL must be false under SQL semantics")
	}
	if Equal(Null(), Int(1)) || Equal(Int(1), Null()) {
		t.Errorf("NULL = x must be false")
	}
	if !Equal(Int(3), Float(3)) {
		t.Errorf("3 = 3.0 should hold")
	}
}

func TestSQLLiteralQuoting(t *testing.T) {
	if got := String("O'Hara").SQLLiteral(); got != "'O''Hara'" {
		t.Errorf("SQLLiteral = %q", got)
	}
	if got := Int(7).SQLLiteral(); got != "7" {
		t.Errorf("SQLLiteral int = %q", got)
	}
	if got := Date(2016, 1, 2).SQLLiteral(); got != "'2016-01-02'" {
		t.Errorf("SQLLiteral date = %q", got)
	}
}

func TestValueKeyConsistentWithEqual(t *testing.T) {
	// Property: Equal(a,b) => a.Key() == b.Key().
	f := func(ai, bi int64) bool {
		a, b := Int(ai), Int(bi)
		if Equal(a, b) && a.Key() != b.Key() {
			return false
		}
		// Also cross-kind.
		af, bf := Float(float64(ai)), Float(float64(bi))
		if Equal(a, af) && a.Key() != af.Key() {
			return false
		}
		_ = bf
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareIsAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		return Compare(Int(a), Int(b)) == -Compare(Int(b), Int(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindNull: "NULL", KindInt: "INTEGER", KindFloat: "DOUBLE",
		KindString: "VARCHAR", KindDate: "DATE", KindBool: "BOOLEAN",
	} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}
