package catalog

import (
	"fmt"
	"sort"
	"strings"
)

// Column describes one column of a table.
type Column struct {
	Name     string
	Type     Kind
	Nullable bool
}

// Index describes a secondary (or primary) index over one or more columns of
// a table. ClusterRatio in [0,1] models how well the index order matches the
// physical row order; poorly clustered indexes cause the random-I/O flooding
// problem of the paper's Figure 4.
type Index struct {
	Name         string
	Table        string
	Columns      []string
	Unique       bool
	ClusterRatio float64
}

// Table describes a base table: its columns, primary key and indexes.
type Table struct {
	Name       string
	Columns    []Column
	PrimaryKey []string
	Indexes    []Index

	colPos map[string]int
}

// NewTable constructs a table definition.
func NewTable(name string, cols ...Column) *Table {
	t := &Table{Name: strings.ToUpper(name), Columns: cols}
	t.reindex()
	return t
}

func (t *Table) reindex() {
	t.colPos = make(map[string]int, len(t.Columns))
	for i := range t.Columns {
		t.Columns[i].Name = strings.ToUpper(t.Columns[i].Name)
		t.colPos[t.Columns[i].Name] = i
	}
}

// ColumnIndex returns the ordinal position of the named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	if t.colPos == nil {
		t.reindex()
	}
	if i, ok := t.colPos[strings.ToUpper(name)]; ok {
		return i
	}
	return -1
}

// Column returns the named column definition, or nil.
func (t *Table) Column(name string) *Column {
	i := t.ColumnIndex(name)
	if i < 0 {
		return nil
	}
	return &t.Columns[i]
}

// HasColumn reports whether the table defines the named column.
func (t *Table) HasColumn(name string) bool { return t.ColumnIndex(name) >= 0 }

// ColumnNames returns the column names in declaration order.
func (t *Table) ColumnNames() []string {
	names := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		names[i] = c.Name
	}
	return names
}

// AddIndex registers an index on the table. Column names are upper-cased;
// unknown columns are an error.
func (t *Table) AddIndex(idx Index) error {
	idx.Table = t.Name
	if idx.Name == "" {
		idx.Name = t.Name + "_" + strings.Join(idx.Columns, "_") + "_IDX"
	}
	idx.Name = strings.ToUpper(idx.Name)
	for i, c := range idx.Columns {
		c = strings.ToUpper(c)
		if !t.HasColumn(c) {
			return fmt.Errorf("catalog: index %s references unknown column %s.%s", idx.Name, t.Name, c)
		}
		idx.Columns[i] = c
	}
	if idx.ClusterRatio == 0 {
		idx.ClusterRatio = 0.5
	}
	t.Indexes = append(t.Indexes, idx)
	return nil
}

// IndexOn returns the first index whose leading column is the given column,
// or nil.
func (t *Table) IndexOn(column string) *Index {
	column = strings.ToUpper(column)
	for i := range t.Indexes {
		if len(t.Indexes[i].Columns) > 0 && t.Indexes[i].Columns[0] == column {
			return &t.Indexes[i]
		}
	}
	return nil
}

// IndexByName returns the named index, or nil.
func (t *Table) IndexByName(name string) *Index {
	name = strings.ToUpper(name)
	for i := range t.Indexes {
		if t.Indexes[i].Name == name {
			return &t.Indexes[i]
		}
	}
	return nil
}

// Schema is a collection of table definitions keyed by upper-case name.
type Schema struct {
	Name   string
	tables map[string]*Table
}

// NewSchema creates an empty schema.
func NewSchema(name string) *Schema {
	return &Schema{Name: name, tables: make(map[string]*Table)}
}

// AddTable registers a table; it replaces any previous definition of the same
// name.
func (s *Schema) AddTable(t *Table) {
	s.tables[strings.ToUpper(t.Name)] = t
}

// Table looks up a table by name (case-insensitive), returning nil if absent.
func (s *Schema) Table(name string) *Table {
	return s.tables[strings.ToUpper(name)]
}

// Tables returns all tables sorted by name.
func (s *Schema) Tables() []*Table {
	out := make([]*Table, 0, len(s.tables))
	for _, t := range s.tables {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// TableNames returns the sorted table names.
func (s *Schema) TableNames() []string {
	names := make([]string, 0, len(s.tables))
	for n := range s.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ResolveColumn finds which of the given candidate tables defines the column.
// It returns the table name, or an error if the column is ambiguous or
// unknown.
func (s *Schema) ResolveColumn(column string, candidates []string) (string, error) {
	column = strings.ToUpper(column)
	var owner string
	for _, tn := range candidates {
		t := s.Table(tn)
		if t == nil {
			continue
		}
		if t.HasColumn(column) {
			if owner != "" && owner != t.Name {
				return "", fmt.Errorf("catalog: column %s is ambiguous between %s and %s", column, owner, t.Name)
			}
			owner = t.Name
		}
	}
	if owner == "" {
		return "", fmt.Errorf("catalog: column %s not found in tables %v", column, candidates)
	}
	return owner, nil
}
