package catalog

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// FrequentValue records one entry of a column's most-frequent-value list.
type FrequentValue struct {
	Value Value
	Count int64
}

// ColumnStats carries the per-column statistics the cost-based optimizer
// consults: number of distinct values, null count, min/max, and the
// most-frequent-value list.
type ColumnStats struct {
	Column    string
	NDV       int64
	NullCount int64
	Min       Value
	Max       Value
	Frequent  []FrequentValue
	RowCount  int64
	AvgWidth  int // bytes, used for row-size estimates

	// Histogram is the column's equi-depth histogram when an ANALYZE pass has
	// collected one (storage.Analyze); nil otherwise. Histograms are immutable
	// and shared between catalog clones.
	Histogram *Histogram
}

// FrequencyOf returns the recorded frequency of v if it appears in the
// frequent-value list, and whether it was found.
func (c *ColumnStats) FrequencyOf(v Value) (int64, bool) {
	for _, f := range c.Frequent {
		if Equal(f.Value, v) {
			return f.Count, true
		}
	}
	return 0, false
}

// GroupFrequentValue records one frequent combination of a column group's
// values. Values is aligned with the owning group's Columns order.
type GroupFrequentValue struct {
	Values []Value
	Count  int64
}

// ColumnGroup records the combined distinct count of a set of correlated
// columns, plus the most frequent value combinations (DB2's column-group
// frequent values). The estimator may or may not use it; the gap between
// using and ignoring it is one of the sources of mis-estimation GALO learns
// about.
type ColumnGroup struct {
	Columns  []string
	NDV      int64
	Frequent []GroupFrequentValue
}

// FrequencyOf returns the recorded row count of the exact value combination
// (aligned with g.Columns), and whether it appears in the frequent list.
func (g ColumnGroup) FrequencyOf(vals []Value) (int64, bool) {
	if len(vals) != len(g.Columns) {
		return 0, false
	}
	for _, f := range g.Frequent {
		if len(f.Values) != len(vals) {
			continue
		}
		match := true
		for i := range vals {
			if !Equal(f.Values[i], vals[i]) {
				match = false
				break
			}
		}
		if match {
			return f.Count, true
		}
	}
	return 0, false
}

// TableStats carries the per-table statistics snapshot.
type TableStats struct {
	Table       string
	Cardinality int64
	Pages       int64
	RowWidth    int // average row width in bytes
	Columns     map[string]*ColumnStats
	Groups      []ColumnGroup

	// StaleFactor scales the cardinality the optimizer sees relative to the
	// truth: 1.0 means fresh statistics; 0.1 means the optimizer believes the
	// table is 10x smaller than it really is.
	StaleFactor float64
}

// ColumnStats returns statistics for the named column, or nil.
func (t *TableStats) ColumnStats(col string) *ColumnStats {
	if t == nil || t.Columns == nil {
		return nil
	}
	return t.Columns[strings.ToUpper(col)]
}

// GroupNDV returns the combined NDV recorded for exactly the given set of
// columns (order-insensitive), or 0 if no group statistic exists.
func (t *TableStats) GroupNDV(cols []string) int64 {
	if g := t.Group(cols); g != nil {
		return g.NDV
	}
	return 0
}

// Group returns the column-group statistic recorded for exactly the given
// set of columns (order-insensitive), or nil. The returned pointer aliases
// the stats snapshot; group contents are immutable once installed.
func (t *TableStats) Group(cols []string) *ColumnGroup {
	if t == nil {
		return nil
	}
	want := normalizeCols(cols)
	for i := range t.Groups {
		if equalCols(normalizeCols(t.Groups[i].Columns), want) {
			return &t.Groups[i]
		}
	}
	return nil
}

func normalizeCols(cols []string) []string {
	out := make([]string, len(cols))
	for i, c := range cols {
		out[i] = strings.ToUpper(c)
	}
	sort.Strings(out)
	return out
}

func equalCols(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// SystemConfig carries the system-wide parameters of the cost model. In the
// paper these correspond to DB2 configuration such as the disk transfer rate
// (Figure 7), buffer pool size and sort heap size.
type SystemConfig struct {
	// TransferRate is the per-page sequential read cost in milliseconds, as
	// the optimizer believes it to be.
	TransferRate float64
	// RuntimeTransferRate is the transfer rate the runtime actually observes.
	// When zero it equals TransferRate. A mismatch reproduces the paper's
	// Figure 7 problem pattern, where the configured transfer rate makes the
	// optimizer overestimate the cost of table scans.
	RuntimeTransferRate float64
	// Overhead is the per-random-I/O seek cost in milliseconds.
	Overhead float64
	// CPUSpeed is the per-row CPU processing cost in milliseconds.
	CPUSpeed float64
	// BufferPoolPages is the number of pages the buffer pool can hold.
	BufferPoolPages int64
	// SortHeapPages is the number of pages a sort may use before spilling.
	SortHeapPages int64
	// PageSizeBytes is the page size used to convert rows to pages.
	PageSizeBytes int64
}

// EffectiveRuntimeTransferRate returns the transfer rate the runtime
// observes: RuntimeTransferRate when set, TransferRate otherwise.
func (c SystemConfig) EffectiveRuntimeTransferRate() float64 {
	if c.RuntimeTransferRate > 0 {
		return c.RuntimeTransferRate
	}
	return c.TransferRate
}

// DefaultSystemConfig returns the configuration used throughout the
// experiments: a small buffer pool and sort heap relative to the data so that
// bad plans actually spill, as in the paper's 1 GB / constrained-memory
// setup.
func DefaultSystemConfig() SystemConfig {
	return SystemConfig{
		TransferRate:    0.18,
		Overhead:        3.5,
		CPUSpeed:        0.0005,
		BufferPoolPages: 4000,
		SortHeapPages:   256,
		PageSizeBytes:   4096,
	}
}

// Catalog bundles a schema, its statistics and the system configuration.
// It is safe for concurrent readers; statistics updates take the write lock.
type Catalog struct {
	mu     sync.RWMutex
	Schema *Schema
	Config SystemConfig
	stats  map[string]*TableStats
}

// New creates a catalog over the given schema with default system
// configuration and no statistics.
func New(schema *Schema) *Catalog {
	return &Catalog{
		Schema: schema,
		Config: DefaultSystemConfig(),
		stats:  make(map[string]*TableStats),
	}
}

// SetStats installs (or replaces) the statistics snapshot for a table.
func (c *Catalog) SetStats(ts *TableStats) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ts.StaleFactor == 0 {
		ts.StaleFactor = 1.0
	}
	c.stats[strings.ToUpper(ts.Table)] = ts
}

// Stats returns the statistics snapshot for a table, or nil if RUNSTATS has
// not been collected.
func (c *Catalog) Stats(table string) *TableStats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.stats[strings.ToUpper(table)]
}

// EstimatedCardinality returns the table cardinality as the optimizer sees it
// (after stale-factor distortion), defaulting to 1000 when no statistics
// exist, as DB2 does with default statistics.
func (c *Catalog) EstimatedCardinality(table string) float64 {
	ts := c.Stats(table)
	if ts == nil {
		return 1000
	}
	card := float64(ts.Cardinality) * ts.StaleFactor
	if card < 1 {
		card = 1
	}
	return card
}

// EstimatedPages returns the number of pages the optimizer believes the table
// occupies.
func (c *Catalog) EstimatedPages(table string) float64 {
	ts := c.Stats(table)
	if ts == nil {
		return 100
	}
	pages := float64(ts.Pages) * ts.StaleFactor
	if pages < 1 {
		pages = 1
	}
	return pages
}

// Table is a convenience accessor for the schema's table.
func (c *Catalog) Table(name string) *Table { return c.Schema.Table(name) }

// SetStaleFactor marks a table's statistics as stale by the given factor.
// It is an error if statistics have not been collected for the table.
func (c *Catalog) SetStaleFactor(table string, factor float64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	ts := c.stats[strings.ToUpper(table)]
	if ts == nil {
		return fmt.Errorf("catalog: no statistics for table %s", table)
	}
	ts.StaleFactor = factor
	return nil
}

// Clone returns a deep-enough copy of the catalog that statistics can be
// modified independently (the schema is shared, statistics maps are copied).
func (c *Catalog) Clone() *Catalog {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := &Catalog{Schema: c.Schema, Config: c.Config, stats: make(map[string]*TableStats, len(c.stats))}
	for k, v := range c.stats {
		cp := *v
		cp.Columns = make(map[string]*ColumnStats, len(v.Columns))
		for ck, cv := range v.Columns {
			cc := *cv
			cp.Columns[ck] = &cc
		}
		cp.Groups = append([]ColumnGroup(nil), v.Groups...)
		out.stats[k] = &cp
	}
	return out
}

// TablesWithStats returns the names of tables that have statistics, sorted.
func (c *Catalog) TablesWithStats() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.stats))
	for n := range c.stats {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
