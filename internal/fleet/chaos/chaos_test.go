package chaos

import (
	"io"
	"net/http"
	"testing"
	"time"
)

func okHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "ok")
	})
}

func get(t *testing.T, url string) (*http.Response, error) {
	t.Helper()
	c := &http.Client{Timeout: 2 * time.Second}
	return c.Get(url)
}

func TestReplicaKillAndRestartSameAddress(t *testing.T) {
	r := NewReplica(okHandler(), nil)
	if err := r.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	defer r.Kill()
	url := r.URL()
	resp, err := get(t, url)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	resp.Body.Close()

	r.Kill()
	if r.Running() {
		t.Fatalf("killed replica reports running")
	}
	if _, err := get(t, url); err == nil {
		t.Fatalf("killed replica still answering")
	}
	if err := r.Start(); err != nil {
		t.Fatalf("restart: %v", err)
	}
	if r.URL() != url {
		t.Fatalf("restart moved the address: %s -> %s", url, r.URL())
	}
	// The rebind can race the OS releasing the port; poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	for {
		resp, err = get(t, url)
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("restarted replica never answered: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestFaultInjectionRates(t *testing.T) {
	f := NewFaults(42).Err(1)
	r := NewReplica(okHandler(), f)
	if err := r.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	defer r.Kill()
	resp, err := get(t, r.URL())
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d with Err(1), want 500", resp.StatusCode)
	}
	f.Err(0)
	resp, err = get(t, r.URL())
	if err != nil {
		t.Fatalf("get after clearing: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d with faults cleared, want 200", resp.StatusCode)
	}
}

func TestDropCutsConnection(t *testing.T) {
	f := NewFaults(7).Drop(1)
	r := NewReplica(okHandler(), f)
	if err := r.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	defer r.Kill()
	if _, err := get(t, r.URL()); err == nil {
		t.Fatalf("Drop(1) request succeeded, want transport error")
	}
}

func TestDelayStallsRequests(t *testing.T) {
	const stall = 150 * time.Millisecond
	f := NewFaults(9).Delay(1, stall)
	r := NewReplica(okHandler(), f)
	if err := r.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	defer r.Kill()
	start := time.Now()
	resp, err := get(t, r.URL())
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	resp.Body.Close()
	if elapsed := time.Since(start); elapsed < stall {
		t.Fatalf("request returned in %v, want >= %v", elapsed, stall)
	}
}
