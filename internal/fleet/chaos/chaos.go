// Package chaos is the fleet's fault-injection harness, in the spirit of
// internal/wal's FaultFS: the same replica processes the production fleet
// runs, wrapped in seams that kill and restart them and corrupt their
// traffic at configurable rates. Tests (and the BENCH_serving fleet
// section) drive real HTTP through real listeners — the gateway under test
// cannot tell a chaos replica from a remote `galo shard` process.
package chaos

import (
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"sync"
	"time"
)

// Faults configures per-request fault injection on a replica. Rates are
// probabilities in [0, 1]; the zero value injects nothing. All fields may be
// changed at runtime through the setters, which are safe against concurrent
// requests.
type Faults struct {
	mu  sync.Mutex
	rng *rand.Rand

	delayP   float64
	delayFor time.Duration
	dropP    float64
	errP     float64
}

// NewFaults returns a fault plan with a deterministic seeded source.
func NewFaults(seed int64) *Faults {
	if seed == 0 {
		seed = 1
	}
	return &Faults{rng: rand.New(rand.NewSource(seed))}
}

// Delay makes a fraction p of requests stall for d before being served —
// the tail-latency fault hedging exists for.
func (f *Faults) Delay(p float64, d time.Duration) *Faults {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.delayP, f.delayFor = p, d
	return f
}

// Drop makes a fraction p of requests abort their connection mid-response —
// the client sees a transport error, not an HTTP status.
func (f *Faults) Drop(p float64) *Faults {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.dropP = p
	return f
}

// Err makes a fraction p of requests answer 500.
func (f *Faults) Err(p float64) *Faults {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.errP = p
	return f
}

// roll draws the fault decision for one request.
func (f *Faults) roll() (delay time.Duration, drop, err bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.delayP > 0 && f.rng.Float64() < f.delayP {
		delay = f.delayFor
	}
	if f.dropP > 0 && f.rng.Float64() < f.dropP {
		drop = true
	}
	if f.errP > 0 && f.rng.Float64() < f.errP {
		err = true
	}
	return
}

// inject wraps a handler with the fault plan.
func (f *Faults) inject(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		delay, drop, fail := f.roll()
		if delay > 0 {
			time.Sleep(delay)
		}
		if drop {
			// Abort the connection without a response; net/http suppresses
			// the stack trace for ErrAbortHandler.
			panic(http.ErrAbortHandler)
		}
		if fail {
			http.Error(w, "chaos: injected server error", http.StatusInternalServerError)
			return
		}
		next.ServeHTTP(w, r)
	})
}

// Replica is one shard replica under chaos control: a real HTTP server on a
// real loopback listener that can be killed (socket torn down, in-flight
// connections cut — the observable signature of SIGKILL) and restarted on
// the same address.
type Replica struct {
	handler http.Handler
	faults  *Faults

	mu   sync.Mutex
	addr string // pinned after first Start so restarts rebind the same port
	srv  *http.Server
	ln   net.Listener
}

// NewReplica wraps a handler (typically a fleet.ShardServer). faults may be
// nil for a fault-free replica that is only ever killed/restarted.
func NewReplica(handler http.Handler, faults *Faults) *Replica {
	return &Replica{handler: handler, faults: faults}
}

// Start binds the replica's listener (first start picks a free loopback
// port; restarts reuse the recorded address) and begins serving.
func (r *Replica) Start() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.srv != nil {
		return fmt.Errorf("chaos: replica already running on %s", r.addr)
	}
	addr := r.addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	// After a kill the OS may briefly hold the port; retry the rebind.
	var ln net.Listener
	var err error
	for i := 0; i < 50; i++ {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		return fmt.Errorf("chaos: bind %s: %w", addr, err)
	}
	r.addr = ln.Addr().String()
	h := r.handler
	if r.faults != nil {
		h = r.faults.inject(h)
	}
	srv := &http.Server{Handler: h}
	r.srv, r.ln = srv, ln
	go func() { _ = srv.Serve(ln) }()
	return nil
}

// URL returns the replica's base URL (valid after the first Start, stable
// across restarts).
func (r *Replica) URL() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return "http://" + r.addr
}

// Kill tears the replica down abruptly: the listener closes and every open
// connection is cut without draining — what a SIGKILLed process looks like
// from the network. The replica can be Started again.
func (r *Replica) Kill() {
	r.mu.Lock()
	srv := r.srv
	r.srv, r.ln = nil, nil
	r.mu.Unlock()
	if srv != nil {
		_ = srv.Close()
	}
}

// Running reports whether the replica currently serves.
func (r *Replica) Running() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.srv != nil
}

// Faults returns the replica's fault plan (nil when fault-free).
func (r *Replica) Faults() *Faults { return r.faults }
