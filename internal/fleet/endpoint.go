package fleet

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync/atomic"
	"time"

	"galo/internal/fuseki"
	"galo/internal/sparql"
)

// replica is one read replica of one shard.
type replica struct {
	url       string
	client    *fuseki.Client
	brk       *breaker
	failures  atomic.Int64
	successes atomic.Int64
}

// ShardEndpoint is the fault-tolerant gateway to one shard's replicas. It
// implements matching.Endpoint (Select) and matching.VersionedEndpoint
// (KBVersion); it deliberately does NOT implement EpochPinner — remote
// replicas cannot pin an epoch, so probe caching uses the conservative
// version-tag path.
type ShardEndpoint struct {
	shard    int
	policy   Policy
	replicas []*replica
	jit      *jitter
	ctr      *counters
	cursor   atomic.Uint64 // round-robin base for replica choice
}

// errAllBreakersOpen is returned (wrapped) when every replica of a shard is
// refusing traffic.
var errAllBreakersOpen = errors.New("fleet: every replica breaker is open")

// retryable reports whether the fault could be specific to one replica or
// one attempt — transport failures, truncated payloads, 5xx/429 — as opposed
// to a request every replica would reject identically (4xx).
func retryable(err error) bool {
	var se *fuseki.StatusError
	if errors.As(err, &se) {
		return se.Temporary()
	}
	// Transport (*fuseki.OpError) and payload (*fuseki.DecodeError) faults —
	// and anything unrecognized — are worth another replica.
	return true
}

// pick returns the first breaker-admitted replica scanning from offset; nil
// when every breaker refuses.
func (e *ShardEndpoint) pick(offset int) *replica {
	n := len(e.replicas)
	for i := 0; i < n; i++ {
		rep := e.replicas[(offset+i)%n]
		if rep.brk.allow() {
			return rep
		}
	}
	return nil
}

// pickOther returns a breaker-admitted replica other than avoid, for hedges.
func (e *ShardEndpoint) pickOther(avoid *replica) *replica {
	n := len(e.replicas)
	start := int(e.cursor.Add(1) - 1)
	for i := 0; i < n; i++ {
		rep := e.replicas[(start+i)%n]
		if rep != avoid && rep.brk.allow() {
			return rep
		}
	}
	return nil
}

// probeOne sends one probe to one replica and settles its breaker.
func (e *ShardEndpoint) probeOne(rep *replica, queryText string) ([]sparql.Solution, error) {
	e.ctr.probes.Add(1)
	sols, err := rep.client.Select(queryText)
	if err != nil {
		if retryable(err) {
			rep.failures.Add(1)
			e.ctr.errors.Add(1)
			if rep.brk.failure() {
				e.ctr.breakerTrips.Add(1)
			}
		}
		return nil, err
	}
	rep.brk.success()
	rep.successes.Add(1)
	return sols, nil
}

// attempt runs one retry-loop attempt against primary, optionally hedging to
// a second replica when the primary is slow. It returns the replica that
// actually answered.
func (e *ShardEndpoint) attempt(primary *replica, queryText string) ([]sparql.Solution, *replica, error) {
	if e.policy.HedgeAfter <= 0 || len(e.replicas) < 2 {
		sols, err := e.probeOne(primary, queryText)
		return sols, primary, err
	}
	type outcome struct {
		rep  *replica
		sols []sparql.Solution
		err  error
	}
	ch := make(chan outcome, 2) // buffered: a late loser must not leak its goroutine
	go func() {
		sols, err := e.probeOne(primary, queryText)
		ch <- outcome{primary, sols, err}
	}()
	timer := time.NewTimer(e.policy.HedgeAfter)
	defer timer.Stop()
	timerC := timer.C
	outstanding := 1
	var firstErr error
	for {
		select {
		case o := <-ch:
			outstanding--
			if o.err == nil {
				if o.rep != primary {
					e.ctr.hedgeWins.Add(1)
				}
				return o.sols, o.rep, nil
			}
			if firstErr == nil {
				firstErr = o.err
			}
			if outstanding == 0 {
				return nil, primary, firstErr
			}
		case <-timerC:
			timerC = nil
			if hedge := e.pickOther(primary); hedge != nil {
				e.ctr.hedges.Add(1)
				outstanding++
				go func() {
					sols, err := e.probeOne(hedge, queryText)
					ch <- outcome{hedge, sols, err}
				}()
			}
		}
	}
}

// Select answers one SPARQL probe with up to Policy.MaxAttempts attempts:
// round-robin replica choice, failover to the next replica on retryable
// faults, capped exponential backoff with jitter between attempts, and
// optional tail-latency hedging inside each attempt. Non-retryable errors
// (4xx — the request itself is bad) propagate immediately.
func (e *ShardEndpoint) Select(queryText string) ([]sparql.Solution, error) {
	base := int(e.cursor.Add(1) - 1)
	var first *replica
	var lastErr error
	for attempt := 0; attempt < e.policy.MaxAttempts; attempt++ {
		if attempt > 0 {
			e.ctr.retries.Add(1)
			e.jitSleep(attempt - 1)
		}
		rep := e.pick(base + attempt)
		if rep == nil {
			e.ctr.noReplica.Add(1)
			lastErr = fmt.Errorf("fleet: shard %d: %w", e.shard, errAllBreakersOpen)
			continue
		}
		if first == nil {
			first = rep
		}
		sols, served, err := e.attempt(rep, queryText)
		if err == nil {
			if served != first {
				e.ctr.failovers.Add(1)
			}
			return sols, nil
		}
		if !retryable(err) {
			return nil, err
		}
		lastErr = err
	}
	return nil, fmt.Errorf("fleet: shard %d: %d attempts exhausted: %w", e.shard, e.policy.MaxAttempts, lastErr)
}

func (e *ShardEndpoint) jitSleep(attempt int) {
	time.Sleep(e.jit.backoff(e.policy, attempt))
}

// KBVersion implements matching.VersionedEndpoint over a replicated shard.
// Caching across replicas is only sound when every replica that may serve
// the next probe agrees on the epoch, so it returns the advertised epoch iff
// all breaker-admitted replicas advertise the same one; any unknown or
// divergent replica disables caching (ok=false) rather than risking a cache
// entry tagged with one replica's epoch but filled by another's data.
func (e *ShardEndpoint) KBVersion() (uint64, bool) {
	var epoch uint64
	seen := false
	for _, rep := range e.replicas {
		if rep.brk.state() == breakerOpen {
			continue // not serving traffic; its staleness is irrelevant
		}
		v, ok := rep.client.AdvertisedEpoch()
		if !ok {
			// No response seen yet (e.g. gateway just started): one cheap
			// /version round trip settles it.
			var err error
			if v, err = rep.client.Version(); err != nil {
				return 0, false
			}
		}
		if seen && v != epoch {
			return 0, false
		}
		epoch, seen = v, true
	}
	return epoch, seen
}

// --- shape migration transport ----------------------------------------------

// shapeURL builds the /shape URL for one replica.
func shapeURL(base, shape string) string {
	return base + "/shape?sig=" + url.QueryEscape(shape)
}

// dumpShape downloads one shape's templates (N-Triples) from the first
// healthy replica, failing over like a probe but without hedging.
func (e *ShardEndpoint) dumpShape(shape string) (string, error) {
	var lastErr error
	base := int(e.cursor.Add(1) - 1)
	for attempt := 0; attempt < e.policy.MaxAttempts; attempt++ {
		rep := e.pick(base + attempt)
		if rep == nil {
			lastErr = fmt.Errorf("fleet: shard %d: %w", e.shard, errAllBreakersOpen)
			continue
		}
		nt, err := rep.dumpShape(shape)
		if err == nil {
			return nt, nil
		}
		lastErr = err
	}
	return "", fmt.Errorf("fleet: dump shape from shard %d: %w", e.shard, lastErr)
}

func (r *replica) dumpShape(shape string) (string, error) {
	resp, err := r.client.HTTP.Get(shapeURL(r.url, shape))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("fleet: dump shape: %s", resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	return string(body), err
}

// loadAll publishes the N-Triples on every replica of the shard; the first
// failure aborts (the migration retries or gives up with routing untouched).
func (e *ShardEndpoint) loadAll(ntriples string) error {
	for _, rep := range e.replicas {
		if err := rep.client.Load(ntriples); err != nil {
			return fmt.Errorf("fleet: load to %s: %w", rep.url, err)
		}
	}
	return nil
}

// dropShape removes the shape from every replica of the shard; failures are
// reported but partial (a replica that kept the templates serves harmless
// extra data that routing no longer reaches).
func (e *ShardEndpoint) dropShape(shape string) error {
	var firstErr error
	for _, rep := range e.replicas {
		req, err := http.NewRequest(http.MethodDelete, shapeURL(rep.url, shape), nil)
		if err != nil {
			return err
		}
		resp, err := rep.client.HTTP.Do(req)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		io.Copy(io.Discard, io.LimitReader(resp.Body, 512))
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK && firstErr == nil {
			firstErr = fmt.Errorf("fleet: drop shape on %s: %s", rep.url, resp.Status)
		}
	}
	return firstErr
}

// Replicas returns the replica base URLs (diagnostics).
func (e *ShardEndpoint) Replicas() []string {
	out := make([]string, len(e.replicas))
	for i, rep := range e.replicas {
		out[i] = rep.url
	}
	return out
}
