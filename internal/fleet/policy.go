package fleet

import (
	"math/rand"
	"sync"
	"time"
)

// Policy is the gateway's fault-handling configuration. The zero value is
// normalized to the defaults noted on each field.
type Policy struct {
	// ProbeTimeout is the per-attempt deadline for one probe HTTP exchange
	// (default 2s). It also lower-bounds MigrationGrace.
	ProbeTimeout time.Duration
	// MaxAttempts is how many replicas/attempts one probe may consume before
	// the error propagates (default 3).
	MaxAttempts int
	// BackoffBase and BackoffCap shape the capped exponential backoff slept
	// between attempts: attempt k sleeps a jittered duration drawn from
	// [base·2^k / 2, base·2^k), capped at BackoffCap (defaults 5ms / 250ms).
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// HedgeAfter, when positive, launches a hedge probe against a second
	// replica if the first has not answered within this duration; the first
	// success wins. 0 disables hedging.
	HedgeAfter time.Duration
	// BreakerThreshold is how many consecutive replica faults trip that
	// replica's circuit breaker (default 3). BreakerCooldown is how long a
	// tripped breaker stays open before admitting one half-open trial probe
	// (default 1s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// MigrationGrace separates the phases of a two-epoch shape migration
	// (dual-route window, post-cutover drain). 0 means ProbeTimeout: a probe
	// routed under the previous table must complete or time out before the
	// data it may read is dropped.
	MigrationGrace time.Duration
	// Seed seeds the jitter source; 0 uses a fixed default, keeping tests
	// deterministic.
	Seed int64
}

// withDefaults returns the policy with zero fields filled in.
func (p Policy) withDefaults() Policy {
	if p.ProbeTimeout <= 0 {
		p.ProbeTimeout = 2 * time.Second
	}
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BackoffBase <= 0 {
		p.BackoffBase = 5 * time.Millisecond
	}
	if p.BackoffCap <= 0 {
		p.BackoffCap = 250 * time.Millisecond
	}
	if p.BreakerThreshold <= 0 {
		p.BreakerThreshold = 3
	}
	if p.BreakerCooldown <= 0 {
		p.BreakerCooldown = time.Second
	}
	if p.MigrationGrace <= 0 {
		p.MigrationGrace = p.ProbeTimeout
	}
	return p
}

// jitter is a mutex-guarded seeded random source: backoff jitter must be
// safe under concurrent probes yet reproducible under a fixed Policy.Seed.
type jitter struct {
	mu  sync.Mutex
	rng *rand.Rand
}

func newJitter(seed int64) *jitter {
	if seed == 0 {
		seed = 1
	}
	return &jitter{rng: rand.New(rand.NewSource(seed))}
}

// backoff returns the sleep before retry attempt k (0-based): capped
// exponential with half-width jitter, so synchronized failures do not
// reconverge on the replica in lockstep.
func (j *jitter) backoff(p Policy, attempt int) time.Duration {
	d := p.BackoffBase << uint(attempt)
	if d > p.BackoffCap || d <= 0 {
		d = p.BackoffCap
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	half := d / 2
	return half + time.Duration(j.rng.Int63n(int64(half)+1))
}
