package fleet

import (
	"fmt"
	"testing"
	"time"

	"galo/internal/fleet/chaos"
	"galo/internal/kb"
	"galo/internal/qgm"
	"galo/internal/transform"
)

// testProblem builds a join problem whose shape varies with the join/scan
// operator choice, so tests can mint distinct shape signatures at will.
func testProblem(join, outerScan, innerScan qgm.OpType, card float64) *qgm.Node {
	outer := &qgm.Node{Op: outerScan, Table: "T_OUT", TableInstance: "T_OUT", EstCardinality: card}
	if outerScan == qgm.OpIXSCAN {
		outer.Index = "IDX_OUT"
	}
	inner := &qgm.Node{Op: innerScan, Table: "T_IN", TableInstance: "T_IN", EstCardinality: card / 20}
	if innerScan == qgm.OpIXSCAN {
		inner.Index = "IDX_IN"
	}
	root := &qgm.Node{Op: join, Outer: outer, Inner: inner, EstCardinality: card / 2}
	plan := qgm.NewPlan(root)
	return plan.Root.Outer
}

func testTemplate(join, outerScan, innerScan qgm.OpType) *kb.Template {
	p := testProblem(join, outerScan, innerScan, 1000)
	return &kb.Template{
		Problem:      p,
		GuidelineXML: "<OPTGUIDELINES><HSJOIN><TBSCAN TABID='T_IN'/><TBSCAN TABID='T_OUT'/></HSJOIN></OPTGUIDELINES>",
		Improvement:  0.3,
		Structural:   true,
		SourceQuery:  "FLEET.TEST",
	}
}

// probeQueryFor returns the real matching probe SPARQL for a fragment of the
// template's shape with in-bounds cardinalities.
func probeQueryFor(t *testing.T, join, outerScan, innerScan qgm.OpType) string {
	t.Helper()
	frag := testProblem(join, outerScan, innerScan, 1000)
	q, _, err := transform.FragmentMatchQuery(frag)
	if err != nil {
		t.Fatalf("FragmentMatchQuery: %v", err)
	}
	return q
}

// shapeOf returns the canonical shape key of a (join, scans) combination.
func shapeOf(join, outerScan, innerScan qgm.OpType) string {
	return kb.NormalizeShape(testProblem(join, outerScan, innerScan, 1000).ShapeSignature())
}

// startReplica serves a single-shard KB holding the given templates on a
// chaos replica.
func startReplica(t *testing.T, faults *chaos.Faults, templates ...*kb.Template) (*chaos.Replica, *kb.KB) {
	t.Helper()
	knowledge := kb.New()
	for _, tpl := range templates {
		cp := *tpl
		cp.Problem = tpl.Problem.Clone()
		if _, err := knowledge.Add(&cp); err != nil {
			t.Fatalf("kb.Add: %v", err)
		}
	}
	rep := chaos.NewReplica(NewShardServer(knowledge), faults)
	if err := rep.Start(); err != nil {
		t.Fatalf("replica start: %v", err)
	}
	t.Cleanup(rep.Kill)
	return rep, knowledge
}

// fastPolicy keeps retries and graces test-sized.
func fastPolicy() Policy {
	return Policy{
		ProbeTimeout:    2 * time.Second,
		MaxAttempts:     3,
		BackoffBase:     time.Millisecond,
		BackoffCap:      5 * time.Millisecond,
		BreakerCooldown: 50 * time.Millisecond,
		MigrationGrace:  20 * time.Millisecond,
		Seed:            7,
	}
}

func TestSelectFailsOverToHealthyReplica(t *testing.T) {
	tpl := testTemplate(qgm.OpMSJOIN, qgm.OpTBSCAN, qgm.OpIXSCAN)
	dead := chaos.NewFaults(11).Err(1) // every request answers 500
	sick, _ := startReplica(t, dead, tpl)
	healthy, _ := startReplica(t, nil, tpl)

	f := New(Options{Shards: [][]string{{sick.URL(), healthy.URL()}}, Policy: fastPolicy()})
	q := probeQueryFor(t, qgm.OpMSJOIN, qgm.OpTBSCAN, qgm.OpIXSCAN)
	for i := 0; i < 8; i++ {
		sols, err := f.Endpoint(0).Select(q)
		if err != nil {
			t.Fatalf("Select %d: %v", i, err)
		}
		if len(sols) == 0 {
			t.Fatalf("Select %d: no solutions through failover", i)
		}
	}
	st := f.Stats()
	if st.Failovers == 0 && st.Retries == 0 {
		t.Fatalf("expected failovers or retries against a 100%%-erroring replica, got %+v", st)
	}
	if st.Errors == 0 {
		t.Fatalf("expected replica faults to be counted, got %+v", st)
	}
}

func TestBreakerTripsAndRecovers(t *testing.T) {
	tpl := testTemplate(qgm.OpHSJOIN, qgm.OpTBSCAN, qgm.OpTBSCAN)
	flaky := chaos.NewFaults(5)
	flaky.Err(1)
	sick, _ := startReplica(t, flaky, tpl)
	healthy, _ := startReplica(t, nil, tpl)

	f := New(Options{Shards: [][]string{{sick.URL(), healthy.URL()}}, Policy: fastPolicy()})
	q := probeQueryFor(t, qgm.OpHSJOIN, qgm.OpTBSCAN, qgm.OpTBSCAN)
	for i := 0; i < 12; i++ {
		if _, err := f.Endpoint(0).Select(q); err != nil {
			t.Fatalf("Select %d: %v", i, err)
		}
	}
	if trips := f.Stats().BreakerTrips; trips == 0 {
		t.Fatalf("breaker never tripped against a 100%%-erroring replica")
	}
	// Heal the replica; after the cooldown a half-open trial must readmit it.
	flaky.Err(0)
	time.Sleep(2 * fastPolicy().BreakerCooldown)
	for i := 0; i < 20; i++ {
		if _, err := f.Endpoint(0).Select(q); err != nil {
			t.Fatalf("Select after heal: %v", err)
		}
	}
	for _, rs := range f.Stats().Replicas {
		if rs.Breaker != breakerClosed {
			t.Fatalf("replica %s breaker = %s after heal, want closed", rs.URL, rs.Breaker)
		}
	}
}

func TestSelectSurvivesReplicaKillAndRestart(t *testing.T) {
	tpl := testTemplate(qgm.OpNLJOIN, qgm.OpTBSCAN, qgm.OpIXSCAN)
	a, _ := startReplica(t, nil, tpl)
	b, _ := startReplica(t, nil, tpl)

	f := New(Options{Shards: [][]string{{a.URL(), b.URL()}}, Policy: fastPolicy()})
	q := probeQueryFor(t, qgm.OpNLJOIN, qgm.OpTBSCAN, qgm.OpIXSCAN)
	if _, err := f.Endpoint(0).Select(q); err != nil {
		t.Fatalf("warmup: %v", err)
	}
	a.Kill()
	for i := 0; i < 10; i++ {
		sols, err := f.Endpoint(0).Select(q)
		if err != nil {
			t.Fatalf("Select with replica killed: %v", err)
		}
		if len(sols) == 0 {
			t.Fatalf("no solutions with replica killed")
		}
	}
	if err := a.Start(); err != nil {
		t.Fatalf("restart: %v", err)
	}
	time.Sleep(2 * fastPolicy().BreakerCooldown)
	for i := 0; i < 20; i++ {
		if _, err := f.Endpoint(0).Select(q); err != nil {
			t.Fatalf("Select after restart: %v", err)
		}
	}
	st := f.Stats()
	restarted := false
	for _, rs := range st.Replicas {
		if rs.URL == a.URL() && rs.Successes > 0 {
			restarted = true
		}
	}
	if !restarted {
		t.Fatalf("restarted replica never served again: %+v", st.Replicas)
	}
}

func TestHedgingBeatsSlowReplica(t *testing.T) {
	tpl := testTemplate(qgm.OpMSJOIN, qgm.OpTBSCAN, qgm.OpTBSCAN)
	const stall = 300 * time.Millisecond
	slow := chaos.NewFaults(3).Delay(1, stall)
	s, _ := startReplica(t, slow, tpl)
	fast, _ := startReplica(t, nil, tpl)

	p := fastPolicy()
	p.HedgeAfter = 10 * time.Millisecond
	f := New(Options{Shards: [][]string{{s.URL(), fast.URL()}}, Policy: p})
	q := probeQueryFor(t, qgm.OpMSJOIN, qgm.OpTBSCAN, qgm.OpTBSCAN)
	start := time.Now()
	const n = 6
	for i := 0; i < n; i++ {
		if _, err := f.Endpoint(0).Select(q); err != nil {
			t.Fatalf("Select %d: %v", i, err)
		}
	}
	elapsed := time.Since(start)
	st := f.Stats()
	if st.Hedges == 0 {
		t.Fatalf("no hedges launched against a delayed replica: %+v", st)
	}
	if st.HedgeWins == 0 {
		t.Fatalf("no hedge wins against a 100%%-delayed replica: %+v", st)
	}
	// Round-robin sends ~half the probes to the slow primary; every one of
	// those must have been rescued by its hedge well before the stall.
	if elapsed > time.Duration(n)*stall {
		t.Fatalf("hedging saved no latency: %v for %d probes at %v stall", elapsed, n, stall)
	}
}

func TestKBVersionRequiresReplicaAgreement(t *testing.T) {
	tpl := testTemplate(qgm.OpHSJOIN, qgm.OpIXSCAN, qgm.OpTBSCAN)
	a, _ := startReplica(t, nil, tpl)
	b, kbB := startReplica(t, nil, tpl)

	f := New(Options{Shards: [][]string{{a.URL(), b.URL()}}, Policy: fastPolicy()})
	v, ok := f.Endpoint(0).KBVersion()
	if !ok {
		t.Fatalf("KBVersion not ok with agreeing replicas")
	}
	// Publish on one replica only: epochs diverge, caching must disable.
	extra := testTemplate(qgm.OpNLJOIN, qgm.OpTBSCAN, qgm.OpTBSCAN)
	if _, err := kbB.Add(extra); err != nil {
		t.Fatalf("Add: %v", err)
	}
	q := probeQueryFor(t, qgm.OpHSJOIN, qgm.OpIXSCAN, qgm.OpTBSCAN)
	for i := 0; i < 4; i++ { // refresh both advertised epochs
		if _, err := f.Endpoint(0).Select(q); err != nil {
			t.Fatalf("Select: %v", err)
		}
	}
	if v2, ok := f.Endpoint(0).KBVersion(); ok {
		t.Fatalf("KBVersion = (%d, true) with diverged replicas (agreed was %d), want ok=false", v2, v)
	}
}

func TestRouteTableDualWindowAlternates(t *testing.T) {
	rt := newRouteTable(4)
	shape := "HSJOIN(TBSCAN,IXSCAN)"
	home := kb.RouteShapeN(shape, 1, 4)
	if got := rt.Route(shape, 1); got != home {
		t.Fatalf("Route = %d, want static home %d", got, home)
	}
	to := (home + 1) % 4
	rt.SetDual(shape, home, to)
	seen := map[int]bool{}
	for i := 0; i < 16; i++ {
		seen[rt.Route(shape, 1)] = true
	}
	if !seen[home] || !seen[to] {
		t.Fatalf("dual window routed only to %v, want both %d and %d", seen, home, to)
	}
	rt.SetOwner(shape, to)
	for i := 0; i < 16; i++ {
		if got := rt.Route(shape, 1); got != to {
			t.Fatalf("post-cutover Route = %d, want %d", got, to)
		}
	}
	// Cutting back to the hash home clears the override entirely.
	rt.SetOwner(shape, home)
	if n, _ := rt.overrideCounts(); n != 0 {
		t.Fatalf("override kept after returning to hash home: %d", n)
	}
}

// TestMigrationNeverMissesAProbe is the two-epoch handover gate: concurrent
// probes run through the full migration and every one of them must see the
// template.
func TestMigrationNeverMissesAProbe(t *testing.T) {
	join, outerScan, innerScan := qgm.OpMSJOIN, qgm.OpTBSCAN, qgm.OpIXSCAN
	tpl := testTemplate(join, outerScan, innerScan)
	shape := shapeOf(join, outerScan, innerScan)
	home := kb.RouteShapeN(shape, 1, 2)

	// The shape's templates start on the home shard only.
	replicas := make([][]*chaos.Replica, 2)
	kbs := make([]*kb.KB, 2)
	urls := make([][]string, 2)
	for shard := 0; shard < 2; shard++ {
		var rep *chaos.Replica
		if shard == home {
			rep, kbs[shard] = startReplica(t, nil, tpl)
		} else {
			rep, kbs[shard] = startReplica(t, nil)
		}
		replicas[shard] = []*chaos.Replica{rep}
		urls[shard] = []string{rep.URL()}
	}
	f := New(Options{Shards: urls, Policy: fastPolicy()})
	q := probeQueryFor(t, join, outerScan, innerScan)

	probe := func() error {
		shard := f.Route(shape, 1)
		sols, err := f.Endpoint(shard).Select(q)
		if err != nil {
			return err
		}
		if len(sols) == 0 {
			return fmt.Errorf("probe missed on shard %d", shard)
		}
		return nil
	}
	if err := probe(); err != nil {
		t.Fatalf("pre-migration: %v", err)
	}

	stop := make(chan struct{})
	errc := make(chan error, 4)
	for w := 0; w < 4; w++ {
		go func() {
			for {
				select {
				case <-stop:
					errc <- nil
					return
				default:
				}
				if err := probe(); err != nil {
					errc <- err
					return
				}
			}
		}()
	}
	target := 1 - home
	if err := f.MigrateShape(shape, home, target); err != nil {
		t.Fatalf("MigrateShape: %v", err)
	}
	// Keep probing a moment after the drop.
	time.Sleep(50 * time.Millisecond)
	close(stop)
	for w := 0; w < 4; w++ {
		if err := <-errc; err != nil {
			t.Fatalf("concurrent probe during migration: %v", err)
		}
	}
	if err := probe(); err != nil {
		t.Fatalf("post-migration: %v", err)
	}
	if got := f.table.Owner(shape, 1); got != target {
		t.Fatalf("owner after migration = %d, want %d", got, target)
	}
	if kbs[home].Size() != 0 {
		t.Fatalf("old owner still holds %d templates after drop", kbs[home].Size())
	}
	if kbs[target].Size() != 1 {
		t.Fatalf("new owner holds %d templates, want 1", kbs[target].Size())
	}
	st := f.Stats()
	if st.Migrations.Completed != 1 || st.DualRouted == 0 {
		t.Fatalf("migration stats = %+v (dual_routed=%d), want 1 completed with dual-routed probes", st.Migrations, st.DualRouted)
	}
}

// TestRebalancerConvergesUnderSkew drives a workload whose shapes all hash
// to one shard and checks Step migrates until the window ratio is under 2.
func TestRebalancerConvergesUnderSkew(t *testing.T) {
	// Mint shapes that all live on the same home shard of 2.
	combos := [][3]qgm.OpType{}
	for _, j := range []qgm.OpType{qgm.OpMSJOIN, qgm.OpHSJOIN, qgm.OpNLJOIN} {
		for _, so := range []qgm.OpType{qgm.OpTBSCAN, qgm.OpIXSCAN} {
			for _, si := range []qgm.OpType{qgm.OpTBSCAN, qgm.OpIXSCAN} {
				combos = append(combos, [3]qgm.OpType{j, so, si})
			}
		}
	}
	home := -1
	var hot [][3]qgm.OpType
	for _, c := range combos {
		s := kb.RouteShapeN(shapeOf(c[0], c[1], c[2]), 1, 2)
		if home == -1 {
			home = s
		}
		if s == home {
			hot = append(hot, c)
		}
		if len(hot) == 4 {
			break
		}
	}
	if len(hot) < 2 {
		t.Fatalf("could not mint %d same-shard shapes", len(hot))
	}

	var tpls []*kb.Template
	for _, c := range hot {
		tpls = append(tpls, testTemplate(c[0], c[1], c[2]))
	}
	repHome, _ := startReplica(t, nil, tpls...)
	repOther, _ := startReplica(t, nil)
	urls := make([][]string, 2)
	urls[home] = []string{repHome.URL()}
	urls[1-home] = []string{repOther.URL()}

	f := New(Options{Shards: urls, Policy: fastPolicy()})
	queries := make([]string, len(hot))
	shapes := make([]string, len(hot))
	for i, c := range hot {
		queries[i] = probeQueryFor(t, c[0], c[1], c[2])
		shapes[i] = shapeOf(c[0], c[1], c[2])
	}

	// The skew source: per-shard counts of the probes we actually issue.
	var shardProbes [2]int64
	window := func() {
		for round := 0; round < 16; round++ {
			for i := range shapes {
				shard := f.Route(shapes[i], 1)
				sols, err := f.Endpoint(shard).Select(queries[i])
				if err != nil {
					t.Fatalf("probe: %v", err)
				}
				if len(sols) == 0 {
					t.Fatalf("probe missed for shape %s on shard %d", shapes[i], shard)
				}
				shardProbes[shard]++
			}
		}
	}
	reb := f.NewRebalancer(func() []int64 { return []int64{shardProbes[0], shardProbes[1]} },
		RebalanceOptions{Enabled: true, MinWindowProbes: 8})

	if _, err := reb.Step(); err != nil { // prime the window baseline
		t.Fatalf("Step: %v", err)
	}
	var ratio float64
	for i := 0; i < 10; i++ {
		window()
		if _, err := reb.Step(); err != nil {
			t.Fatalf("Step %d: %v", i, err)
		}
		ratio = reb.Stats().LastRatio
		if ratio < 2 {
			break
		}
	}
	if ratio >= 2 {
		t.Fatalf("rebalancer never brought max/min ratio under 2 (last %v, stats %+v)", ratio, reb.Stats())
	}
	if reb.Stats().Moves == 0 {
		t.Fatalf("ratio converged without any migration: %+v", reb.Stats())
	}
	// And no probe missed at any point (window() fails hard on a miss).
}
