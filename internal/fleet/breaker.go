package fleet

import (
	"sync"
	"time"
)

// Breaker states.
const (
	breakerClosed   = "closed"    // healthy, all traffic admitted
	breakerOpen     = "open"      // tripped, traffic rejected until cooldown
	breakerHalfOpen = "half-open" // cooldown elapsed, one trial in flight
)

// breaker is a per-replica circuit breaker: BreakerThreshold consecutive
// faults trip it open; after BreakerCooldown it admits exactly one trial
// probe (half-open) whose outcome either closes it again or re-opens it for
// another cooldown. It keeps a replica that is down from soaking up probe
// deadlines on every request while still rediscovering recovery quickly.
type breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time // test seam

	mu       sync.Mutex
	failures int       // consecutive faults while closed
	openedAt time.Time // when the breaker last tripped
	open     bool
	trial    bool // a half-open trial probe is in flight
	trips    int64
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// allow reports whether a probe may be sent to the replica right now. In the
// open state it admits a single trial once the cooldown has elapsed.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.open {
		return true
	}
	if b.trial || b.now().Sub(b.openedAt) < b.cooldown {
		return false
	}
	b.trial = true
	return true
}

// success records a healthy response: any state collapses back to closed.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.open = false
	b.trial = false
	b.failures = 0
}

// failure records a replica fault; it reports whether this fault tripped the
// breaker open (for the BreakerTrips counter).
func (b *breaker) failure() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.open {
		// A failed half-open trial re-opens for another full cooldown.
		b.trial = false
		b.openedAt = b.now()
		return false
	}
	b.failures++
	if b.failures < b.threshold {
		return false
	}
	b.open = true
	b.trial = false
	b.openedAt = b.now()
	b.trips++
	return true
}

// state returns the breaker's current state name for /stats.
func (b *breaker) state() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.open {
		return breakerClosed
	}
	if b.trial || b.now().Sub(b.openedAt) >= b.cooldown {
		return breakerHalfOpen
	}
	return breakerOpen
}
