package fleet

import (
	"errors"
	"math"
	"sync/atomic"
	"time"
)

// RebalanceOptions configures the probe-skew rebalancer.
type RebalanceOptions struct {
	// Enabled turns the rebalancer on (core starts it with the gateway).
	Enabled bool
	// Interval is how often the rebalancer samples the probe counters and
	// considers one migration (default 5s).
	Interval time.Duration
	// MaxMinRatio is the skew trigger: when the busiest shard received more
	// than MaxMinRatio times the probes of the idlest shard within the last
	// window, one hot shape migrates (default 2).
	MaxMinRatio float64
	// MinWindowProbes is the minimum probe volume a window needs before its
	// skew is acted on; quiet windows are never rebalanced (default 64).
	MinWindowProbes int64
}

func (o RebalanceOptions) withDefaults() RebalanceOptions {
	if o.Interval <= 0 {
		o.Interval = 5 * time.Second
	}
	if o.MaxMinRatio <= 1 {
		o.MaxMinRatio = 2
	}
	if o.MinWindowProbes <= 0 {
		o.MinWindowProbes = 64
	}
	return o
}

// RebalanceStats is the rebalancer's row in the /stats fleet section.
type RebalanceStats struct {
	Moves     int64   `json:"moves"`
	LastRatio float64 `json:"last_ratio"`
	Skipped   int64   `json:"skipped"`
}

// Rebalancer watches a per-shard probe counter source (the matching
// engine's ProbesByShard) and migrates the hottest shape off the busiest
// shard whenever a window's max/min probe ratio exceeds the threshold — one
// shape per window, so a large imbalance is worked off in paced steps
// instead of one bulk move.
type Rebalancer struct {
	f      *Fleet
	source func() []int64
	opts   RebalanceOptions

	last      []int64
	moves     atomic.Int64
	skipped   atomic.Int64
	lastRatio atomic.Uint64 // float64 bits

	stop chan struct{}
	done chan struct{}
}

// NewRebalancer builds a rebalancer over the fleet. source must return one
// cumulative probe counter per shard (len == f.Shards()).
func (f *Fleet) NewRebalancer(source func() []int64, opts RebalanceOptions) *Rebalancer {
	return &Rebalancer{
		f:      f,
		source: source,
		opts:   opts.withDefaults(),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
}

// Start launches the sampling loop; Stop ends it.
func (r *Rebalancer) Start() {
	go func() {
		defer close(r.done)
		ticker := time.NewTicker(r.opts.Interval)
		defer ticker.Stop()
		for {
			select {
			case <-r.stop:
				return
			case <-ticker.C:
				_, _ = r.Step()
			}
		}
	}()
}

// Stop terminates the sampling loop and waits for it to exit.
func (r *Rebalancer) Stop() {
	select {
	case <-r.stop:
	default:
		close(r.stop)
	}
	<-r.done
}

// Step samples one window and performs at most one migration. It is the
// loop body Start drives on a ticker, exported so tests (and drills) can
// pace windows deterministically. It reports whether a shape was migrated.
func (r *Rebalancer) Step() (bool, error) {
	cur := r.source()
	if len(cur) != r.f.Shards() {
		return false, errors.New("fleet: rebalancer source length != shard count")
	}
	if r.last == nil {
		r.last = cur
		return false, nil
	}
	delta := make([]int64, len(cur))
	var total int64
	for i := range cur {
		delta[i] = cur[i] - r.last[i]
		total += delta[i]
	}
	r.last = cur
	if total < r.opts.MinWindowProbes {
		return false, nil
	}
	maxI, minI := 0, 0
	for i, d := range delta {
		if d > delta[maxI] {
			maxI = i
		}
		if d < delta[minI] {
			minI = i
		}
	}
	den := delta[minI]
	if den < 1 {
		den = 1
	}
	ratio := float64(delta[maxI]) / float64(den)
	r.lastRatio.Store(math.Float64bits(ratio))
	if ratio < r.opts.MaxMinRatio || maxI == minI {
		return false, nil
	}
	shape, ok := r.f.table.HotShape(maxI)
	if !ok || shape == "" {
		r.skipped.Add(1)
		return false, nil
	}
	if err := r.f.MigrateShape(shape, maxI, minI); err != nil {
		r.skipped.Add(1)
		if errors.Is(err, ErrShapeEmpty) {
			return false, nil // fallback-routed traffic; nothing movable
		}
		return false, err
	}
	r.moves.Add(1)
	return true, nil
}

// Stats snapshots the rebalancer's counters.
func (r *Rebalancer) Stats() RebalanceStats {
	return RebalanceStats{
		Moves:     r.moves.Load(),
		LastRatio: math.Float64frombits(r.lastRatio.Load()),
		Skipped:   r.skipped.Load(),
	}
}
