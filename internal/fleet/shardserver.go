package fleet

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"galo/internal/fuseki"
	"galo/internal/kb"
	"galo/internal/rdf"
)

// ShardServer serves one shard's slice of the knowledge base to the fleet:
// the full fuseki surface (/query /data /ping /version) plus the migration
// transport (/shape) and a liveness route (/healthz). Every response carries
// the shard's epoch in fuseki.EpochHeader.
type ShardServer struct {
	kb  *kb.KB
	fus *fuseki.Server
	mux *http.ServeMux
}

// NewShardServer wraps a knowledge base (typically single-shard: one `galo
// shard` process serves exactly its slice).
func NewShardServer(knowledge *kb.KB) *ShardServer {
	s := &ShardServer{kb: knowledge}
	s.fus = fuseki.NewShardedServer(
		func() []*rdf.Store { return knowledge.Stores() },
		knowledge.LoadNTriples,
	)
	s.mux = http.NewServeMux()
	s.mux.Handle("/query", s.fus)
	s.mux.Handle("/data", s.fus)
	s.mux.Handle("/ping", s.fus)
	s.mux.Handle("/version", s.fus)
	s.mux.HandleFunc("/shape", s.handleShape)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	return s
}

// ServeHTTP implements http.Handler.
func (s *ShardServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	// The fuseki sub-handler stamps its own routes; stamp the rest here.
	if w.Header().Get(fuseki.EpochHeader) == "" {
		w.Header().Set(fuseki.EpochHeader, strconv.FormatUint(s.kb.Epoch(), 10))
	}
	s.mux.ServeHTTP(w, r)
}

// handleShape is the migration transport: GET dumps one shape's templates
// as N-Triples, DELETE drops them (one atomic epoch per owning store).
func (s *ShardServer) handleShape(w http.ResponseWriter, r *http.Request) {
	sig := r.URL.Query().Get("sig")
	if sig == "" {
		http.Error(w, "missing sig parameter", http.StatusBadRequest)
		return
	}
	switch r.Method {
	case http.MethodGet:
		w.Header().Set("Content-Type", "application/n-triples")
		fmt.Fprint(w, s.kb.NTriplesForShape(sig))
	case http.MethodDelete:
		removed := s.kb.RemoveShape(sig)
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]int{"removed": removed})
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (s *ShardServer) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{
		"status":    "ok",
		"templates": s.kb.Size(),
		"epoch":     s.kb.Epoch(),
	})
}
