package fleet

import (
	"errors"
	"fmt"
	"strings"

	"galo/internal/kb"
)

// ErrShapeEmpty reports a migration source that holds no templates for the
// requested shape (nothing to move — e.g. a fallback-routed shape).
var ErrShapeEmpty = errors.New("fleet: shape owns no templates on the source shard")

// MigrateShape moves one shape's templates from shard `from` to shard `to`
// with the two-epoch handover, so no concurrently routed probe ever misses:
//
//  1. copy — dump the shape from a healthy replica of the old owner and
//     publish it on EVERY replica of the new owner (each publication is one
//     atomic epoch there). Routing still sends all reads to the old owner;
//     a copy failure aborts with routing untouched.
//  2. dual-route — reads alternate between old and new owner for one grace
//     period (both hold the data, so either answers completely); the new
//     owner's caches warm while the old owner still backs every probe.
//  3. cut over — the route table points the shape at the new owner only.
//  4. drain — wait another grace period ≥ the probe deadline, bounding the
//     lifetime of any in-flight probe that was routed under the old table
//     (its replica-side evaluation pins a pre-drop epoch snapshot anyway).
//  5. drop — remove the shape from the old owner's replicas, one atomic
//     epoch each. Drop failures are counted, not fatal: the leftover
//     templates are unreachable through routing and merely occupy space.
//
// The old owner keeps serving throughout; the only irreversible step (drop)
// happens strictly after no new probe can route to it.
func (f *Fleet) MigrateShape(shape string, from, to int) error {
	shape = kb.NormalizeShape(shape)
	if from == to {
		return fmt.Errorf("fleet: migrate shape: from == to == %d", from)
	}
	if from < 0 || from >= len(f.endpoints) || to < 0 || to >= len(f.endpoints) {
		return fmt.Errorf("fleet: migrate shape: shard out of range (%d -> %d of %d)", from, to, len(f.endpoints))
	}
	dump, err := f.endpoints[from].dumpShape(shape)
	if err != nil {
		return err
	}
	if strings.TrimSpace(dump) == "" {
		return fmt.Errorf("%w (shape %q, shard %d)", ErrShapeEmpty, shape, from)
	}
	f.migrationsStarted.Add(1)
	if err := f.endpoints[to].loadAll(dump); err != nil {
		// Copy failed: routing never changed, the old owner still serves.
		// Templates already copied onto some replicas of `to` are unreachable
		// duplicates a later retry overwrites (template merge is idempotent).
		return err
	}
	f.table.SetDual(shape, from, to)
	f.sleep(f.policy.MigrationGrace)
	f.table.SetOwner(shape, to)
	f.sleep(f.policy.MigrationGrace)
	if err := f.endpoints[from].dropShape(shape); err != nil {
		f.migrationDropFails.Add(1)
	}
	f.migrationsCompleted.Add(1)
	return nil
}
