package fleet

import (
	"sync"
	"sync/atomic"

	"galo/internal/kb"
)

// maxTrackedShapes bounds the per-shape probe counters the rebalancer mines
// for hot shapes; beyond it, new shapes route correctly but are not counted.
const maxTrackedShapes = 4096

// override is one shape's routing override created by a migration.
type override struct {
	owner int
	prev  int
	dual  bool // dual-route window: reads alternate between prev and owner
}

// RouteTable overlays migration-created ownership overrides on the static
// shape-hash routing (kb.RouteShapeN). During a migration's dual-route
// window reads alternate between the old and the new owner — both hold the
// shape's templates then, so either answer is complete and the new owner's
// caches warm before cutover.
type RouteTable struct {
	n int

	mu        sync.RWMutex
	overrides map[string]override
	counts    map[string]*atomic.Int64

	flip       atomic.Uint64 // alternates dual-window reads
	dualRouted *atomic.Int64 // fleet counter (set by New)
}

func newRouteTable(n int) *RouteTable {
	return &RouteTable{
		n:         n,
		overrides: map[string]override{},
		counts:    map[string]*atomic.Int64{},
	}
}

// Route maps a shape to its current owning shard and counts the probe
// against the shape (up to maxTrackedShapes distinct shapes).
func (t *RouteTable) Route(shape string, joins int) int {
	key := kb.NormalizeShape(shape)
	t.mu.RLock()
	ov, overridden := t.overrides[key]
	c := t.counts[key]
	t.mu.RUnlock()
	if c == nil {
		t.mu.Lock()
		if c = t.counts[key]; c == nil && len(t.counts) < maxTrackedShapes {
			c = &atomic.Int64{}
			t.counts[key] = c
		}
		t.mu.Unlock()
	}
	if c != nil {
		c.Add(1)
	}
	if overridden {
		if ov.dual {
			if t.dualRouted != nil {
				t.dualRouted.Add(1)
			}
			if t.flip.Add(1)%2 == 0 {
				return ov.prev
			}
		}
		return ov.owner
	}
	return kb.RouteShapeN(shape, joins, t.n)
}

// SetDual opens a shape's dual-route window: reads alternate between the old
// owner (from) and the new owner (to).
func (t *RouteTable) SetDual(key string, from, to int) {
	key = kb.NormalizeShape(key)
	t.mu.Lock()
	defer t.mu.Unlock()
	t.overrides[key] = override{owner: to, prev: from, dual: true}
}

// SetOwner cuts a shape over to its final owner. A shape cut back to its
// static hash home needs no override at all.
func (t *RouteTable) SetOwner(key string, to int) {
	key = kb.NormalizeShape(key)
	t.mu.Lock()
	defer t.mu.Unlock()
	if kb.RouteShapeN(key, 0, t.n) == to {
		delete(t.overrides, key)
		return
	}
	t.overrides[key] = override{owner: to, prev: to}
}

// Owner returns the shard currently owning the shape (dual windows report
// the migration target).
func (t *RouteTable) Owner(key string, joins int) int {
	key = kb.NormalizeShape(key)
	t.mu.RLock()
	defer t.mu.RUnlock()
	if ov, ok := t.overrides[key]; ok {
		return ov.owner
	}
	return kb.RouteShapeN(key, joins, t.n)
}

// Migrating reports whether the shape is inside a dual-route window.
func (t *RouteTable) Migrating(key string) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	ov, ok := t.overrides[kb.NormalizeShape(key)]
	return ok && ov.dual
}

// HotShape returns the most-probed tracked shape currently owned by the
// shard, skipping shapes mid-migration; ok is false when the shard owns no
// tracked shape.
func (t *RouteTable) HotShape(shard int) (string, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	best, bestCount := "", int64(-1)
	for key, c := range t.counts {
		if ov, ok := t.overrides[key]; ok {
			if ov.dual || ov.owner != shard {
				continue
			}
		} else if kb.RouteShapeN(key, 0, t.n) != shard {
			continue
		}
		if n := c.Load(); n > bestCount || (n == bestCount && key < best) {
			best, bestCount = key, n
		}
	}
	return best, bestCount >= 0
}

// overrideCounts returns (total overrides, overrides in a dual window).
func (t *RouteTable) overrideCounts() (int, int) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	dual := 0
	for _, ov := range t.overrides {
		if ov.dual {
			dual++
		}
	}
	return len(t.overrides), dual
}
