// Package fleet turns the knowledge base's shards into a fault-tolerant
// fleet of remote processes. Each shard is served by one or more read
// replicas (`galo shard` processes speaking the fuseki HTTP surface, or any
// other server of that protocol); the gateway side of this package exposes
// one matching.Endpoint per shard that hides replica faults behind:
//
//   - per-probe deadlines (Policy.ProbeTimeout),
//   - capped exponential backoff with jitter between attempts,
//   - replica failover on timeouts / 5xx / truncated responses,
//   - optional tail-latency hedging to a second replica (Policy.HedgeAfter),
//   - a per-replica circuit breaker (trip after consecutive failures,
//     half-open trial probes to recover).
//
// All degradation is counted (Fleet.Stats) and surfaced by core's /stats as
// the "fleet" section.
//
// The package also implements the two-epoch template migration protocol:
// MigrateShape moves one shape's templates to a new owner by copying them
// under the current routing (epoch E), dual-routing reads to both owners
// through the handover (E → E+1), cutting routing over to the new owner, and
// only then dropping the templates from the old owner — each step separated
// by a grace period at least as long as the probe deadline, so no probe ever
// misses mid-migration. A Rebalancer watches the per-shard probe counters
// for skew and drives migrations until the max/min probe ratio falls under
// its threshold, one shape per round (oversized rebalances are paced, not
// aborted).
//
// Concurrency: a Fleet and its endpoints are safe for concurrent use; all
// counters are atomics. Route-table updates (migration) synchronize with
// in-flight routing through an RWMutex and are ordered so a stale read is
// always served by an owner that still holds the data.
package fleet
