package fleet

import (
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"galo/internal/fuseki"
)

// Options configures a fleet gateway.
type Options struct {
	// Shards lists the replica base URLs per shard: Shards[i] are the
	// interchangeable read replicas serving shard i. At least one shard with
	// at least one replica is required.
	Shards [][]string
	// Policy is the fault-handling policy (zero value = defaults).
	Policy Policy
	// Rebalance configures the optional probe-skew rebalancer core starts
	// over the gateway (zero value = disabled).
	Rebalance RebalanceOptions
}

// Enabled reports whether the options describe a usable fleet.
func (o Options) Enabled() bool { return len(o.Shards) > 0 }

// counters aggregates the gateway's degradation-visibility counters.
type counters struct {
	probes       atomic.Int64 // replica HTTP probes issued (attempts, incl. hedges)
	retries      atomic.Int64 // backoff-separated re-attempts
	hedges       atomic.Int64 // hedge probes launched
	hedgeWins    atomic.Int64 // probes won by the hedge, not the primary
	failovers    atomic.Int64 // probes answered by a different replica than first tried
	errors       atomic.Int64 // replica faults observed (per attempt)
	breakerTrips atomic.Int64 // closed→open transitions
	noReplica    atomic.Int64 // attempts finding every breaker open
	dualRouted   atomic.Int64 // probes routed during a dual-route migration window
}

// Fleet is the gateway over all shards: one fault-tolerant ShardEndpoint per
// shard plus the routing table migrations rewrite.
type Fleet struct {
	opts      Options
	policy    Policy
	endpoints []*ShardEndpoint
	table     *RouteTable
	jit       *jitter
	ctr       counters

	migrationsStarted   atomic.Int64
	migrationsCompleted atomic.Int64
	migrationDropFails  atomic.Int64

	// sleep is a test seam for the migration grace waits.
	sleep func(time.Duration)
}

// New builds the gateway. Options must describe at least one shard with at
// least one replica URL each; a structurally unusable topology is a
// configuration programming error and panics (the CLI validates its flags
// before constructing).
func New(opts Options) *Fleet {
	if !opts.Enabled() {
		panic("fleet: Options.Shards is empty")
	}
	policy := opts.Policy.withDefaults()
	f := &Fleet{
		opts:   opts,
		policy: policy,
		table:  newRouteTable(len(opts.Shards)),
		jit:    newJitter(policy.Seed),
		sleep:  time.Sleep,
	}
	for shard, urls := range opts.Shards {
		if len(urls) == 0 {
			panic(fmt.Sprintf("fleet: shard %d has no replicas", shard))
		}
		ep := &ShardEndpoint{shard: shard, policy: policy, jit: f.jit, ctr: &f.ctr}
		for _, u := range urls {
			c := fuseki.NewClient(u)
			c.HTTP = &http.Client{Timeout: policy.ProbeTimeout}
			ep.replicas = append(ep.replicas, &replica{
				url:    c.BaseURL,
				client: c,
				brk:    newBreaker(policy.BreakerThreshold, policy.BreakerCooldown),
			})
		}
		f.endpoints = append(f.endpoints, ep)
	}
	f.table.dualRouted = &f.ctr.dualRouted
	return f
}

// Shards returns the number of shards the fleet serves.
func (f *Fleet) Shards() int { return len(f.endpoints) }

// Endpoint returns shard i's fault-tolerant endpoint (a matching.Endpoint).
func (f *Fleet) Endpoint(i int) *ShardEndpoint { return f.endpoints[i] }

// Route is the fleet's matching.Router: the static shape hash overlaid with
// the migration table's ownership overrides.
func (f *Fleet) Route(shape string, joins int) int { return f.table.Route(shape, joins) }

// Policy returns the normalized fault-handling policy in effect.
func (f *Fleet) Policy() Policy { return f.policy }

// --- /stats view -------------------------------------------------------------

// ReplicaStats is one replica's row in the /stats fleet section.
type ReplicaStats struct {
	Shard      int    `json:"shard"`
	URL        string `json:"url"`
	Breaker    string `json:"breaker_state"`
	Failures   int64  `json:"failures"`
	Successes  int64  `json:"successes"`
	Epoch      uint64 `json:"epoch"`
	EpochKnown bool   `json:"epoch_known"`
}

// MigrationStats is the migration/rebalance corner of the fleet section.
type MigrationStats struct {
	Started        int64 `json:"started"`
	Completed      int64 `json:"completed"`
	DropFailures   int64 `json:"drop_failures"`
	RouteOverrides int   `json:"route_overrides"`
	DualRouting    int   `json:"dual_routing"`
}

// Stats is the /stats "fleet" section: per-replica health plus every
// degradation counter the gateway maintains.
type Stats struct {
	Shards       int             `json:"shards"`
	Replicas     []ReplicaStats  `json:"replicas"`
	Probes       int64           `json:"probes"`
	Retries      int64           `json:"retries"`
	Hedges       int64           `json:"hedges"`
	HedgeWins    int64           `json:"hedge_wins"`
	Failovers    int64           `json:"failovers"`
	Errors       int64           `json:"errors"`
	BreakerTrips int64           `json:"breaker_trips"`
	NoReplica    int64           `json:"no_replica"`
	DualRouted   int64           `json:"dual_routed_probes"`
	Migrations   MigrationStats  `json:"migrations"`
	Rebalancer   *RebalanceStats `json:"rebalancer,omitempty"`
}

// Stats snapshots the gateway's counters and per-replica health.
func (f *Fleet) Stats() Stats {
	st := Stats{
		Shards:       len(f.endpoints),
		Probes:       f.ctr.probes.Load(),
		Retries:      f.ctr.retries.Load(),
		Hedges:       f.ctr.hedges.Load(),
		HedgeWins:    f.ctr.hedgeWins.Load(),
		Failovers:    f.ctr.failovers.Load(),
		Errors:       f.ctr.errors.Load(),
		BreakerTrips: f.ctr.breakerTrips.Load(),
		NoReplica:    f.ctr.noReplica.Load(),
		DualRouted:   f.ctr.dualRouted.Load(),
		Migrations: MigrationStats{
			Started:      f.migrationsStarted.Load(),
			Completed:    f.migrationsCompleted.Load(),
			DropFailures: f.migrationDropFails.Load(),
		},
	}
	st.Migrations.RouteOverrides, st.Migrations.DualRouting = f.table.overrideCounts()
	for _, ep := range f.endpoints {
		for _, rep := range ep.replicas {
			epoch, known := rep.client.AdvertisedEpoch()
			st.Replicas = append(st.Replicas, ReplicaStats{
				Shard:      ep.shard,
				URL:        rep.url,
				Breaker:    rep.brk.state(),
				Failures:   rep.failures.Load(),
				Successes:  rep.successes.Load(),
				Epoch:      epoch,
				EpochKnown: known,
			})
		}
	}
	return st
}
