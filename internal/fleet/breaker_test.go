package fleet

import (
	"testing"
	"time"
)

func TestBreakerLifecycle(t *testing.T) {
	now := time.Unix(0, 0)
	b := newBreaker(3, time.Second)
	b.now = func() time.Time { return now }

	if !b.allow() || b.state() != breakerClosed {
		t.Fatalf("new breaker must be closed and admitting")
	}
	// Two faults: still closed (threshold 3).
	b.failure()
	b.failure()
	if b.state() != breakerClosed {
		t.Fatalf("breaker open before threshold")
	}
	// A success resets the consecutive count.
	b.success()
	b.failure()
	b.failure()
	if b.state() != breakerClosed {
		t.Fatalf("success did not reset the failure streak")
	}
	if tripped := b.failure(); !tripped {
		t.Fatalf("third consecutive failure did not trip")
	}
	if b.state() != breakerOpen || b.allow() {
		t.Fatalf("tripped breaker still admits traffic")
	}
	// Cooldown elapses: exactly one half-open trial is admitted.
	now = now.Add(time.Second)
	if b.state() != breakerHalfOpen {
		t.Fatalf("state after cooldown = %s, want half-open", b.state())
	}
	if !b.allow() {
		t.Fatalf("half-open breaker refused the trial probe")
	}
	if b.allow() {
		t.Fatalf("half-open breaker admitted a second concurrent trial")
	}
	// Failed trial: open again for a full cooldown.
	b.failure()
	if b.allow() {
		t.Fatalf("breaker admitted traffic right after a failed trial")
	}
	now = now.Add(time.Second)
	if !b.allow() {
		t.Fatalf("no trial after the second cooldown")
	}
	// Successful trial closes it.
	b.success()
	if b.state() != breakerClosed || !b.allow() {
		t.Fatalf("successful trial did not close the breaker")
	}
}
