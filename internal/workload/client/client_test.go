package client

import (
	"testing"

	"galo/internal/executor"
	"galo/internal/optimizer"
	"galo/internal/sqlparser"
)

func TestSchemaAndFigure1Preconditions(t *testing.T) {
	s := Schema()
	for _, name := range []string{OpenIn, EntryIdx, Account, Branch, CustomerInfo, Product, Region, TxLog} {
		if s.Table(name) == nil {
			t.Errorf("missing table %s", name)
		}
	}
	ei := s.Table(EntryIdx).IndexOn("EI_ENTRY_KEY")
	if ei == nil || ei.ClusterRatio > 0.3 {
		t.Errorf("entry_idx entry-key index should be poorly clustered: %+v", ei)
	}
}

func TestQueriesAre116AndResolve(t *testing.T) {
	qs := Queries()
	if len(qs) != 116 {
		t.Fatalf("Queries() = %d, want 116", len(qs))
	}
	schema := Schema()
	names := map[string]bool{}
	for _, q := range qs {
		if names[q.Name] {
			t.Errorf("duplicate query name %s", q.Name)
		}
		names[q.Name] = true
		if err := sqlparser.Resolve(q.Clone(), schema); err != nil {
			t.Errorf("%s does not resolve: %v", q.Name, err)
		}
	}
	// Query #8 is the Figure 1 shape.
	if qs[7].NumJoins() != 1 || qs[7].TableNames()[0] != EntryIdx {
		t.Errorf("Q08 is not the Figure 1 join: %v", qs[7].SQL())
	}
}

func TestGenerateAndRunFigure1Query(t *testing.T) {
	db, err := Generate(GenOptions{Seed: 2, Scale: 0.05, Hazards: true})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if db.RowCount(OpenIn) == 0 || db.RowCount(EntryIdx) == 0 {
		t.Fatalf("tables not populated")
	}
	if db.Catalog.Stats(OpenIn).StaleFactor >= 1 {
		t.Errorf("hazards not installed")
	}
	opt := optimizer.New(db.Catalog, optimizer.DefaultOptions())
	plan, _, err := opt.Optimize(Fig1Query())
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if err := plan.Validate(); err != nil {
		t.Fatalf("plan invalid: %v", err)
	}
	res, err := executor.New(db).Execute(plan, Fig1Query())
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if res.Stats.ElapsedMillis <= 0 {
		t.Errorf("no simulated runtime recorded")
	}
}

func TestGenerateDeterministicAndScaled(t *testing.T) {
	a, err := Generate(GenOptions{Seed: 4, Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(GenOptions{Seed: 4, Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if a.RowCount(OpenIn) != b.RowCount(OpenIn) {
		t.Errorf("generation not deterministic")
	}
	big, err := Generate(GenOptions{Seed: 4, Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if big.RowCount(OpenIn) <= a.RowCount(OpenIn) {
		t.Errorf("scale did not grow open_in")
	}
}
