// Package client provides the synthetic stand-in for the real-world IBM
// client workload the paper evaluates against (116 queries over a customer
// database): an order-entry style schema whose OPEN_IN and ENTRY_IDX tables
// reproduce the running example of Figure 1, a deterministic data generator,
// and a 116-query workload with a naming context completely different from
// the TPC-DS workload — which is what makes the cross-workload pattern-reuse
// experiment (Exp-2) meaningful.
package client

import (
	"fmt"

	"galo/internal/catalog"
	"galo/internal/sqlparser"
	"galo/internal/stats"
	"galo/internal/storage"
)

// Table names.
const (
	OpenIn       = "OPEN_IN"
	EntryIdx     = "ENTRY_IDX"
	Account      = "ACCOUNT"
	Branch       = "BRANCH"
	CustomerInfo = "CUSTOMER_INFO"
	Product      = "PRODUCT"
	Region       = "REGION"
	TxLog        = "TRANSACTION_LOG"
)

// Schema returns the client schema. ENTRY_IDX's entry-key index is poorly
// clustered, mirroring the conditions behind the Figure 1 problem pattern.
func Schema() *catalog.Schema {
	s := catalog.NewSchema("CLIENT")
	add := func(t *catalog.Table, idx ...catalog.Index) {
		for _, i := range idx {
			if err := t.AddIndex(i); err != nil {
				panic(err)
			}
		}
		s.AddTable(t)
	}

	add(catalog.NewTable(OpenIn,
		catalog.Column{Name: "oi_entry_key", Type: catalog.KindInt},
		catalog.Column{Name: "oi_account_id", Type: catalog.KindInt},
		catalog.Column{Name: "oi_status", Type: catalog.KindString},
		catalog.Column{Name: "oi_amount", Type: catalog.KindFloat},
		catalog.Column{Name: "oi_open_date", Type: catalog.KindInt},
	),
		catalog.Index{Name: "OI_ENTRY_IDX", Columns: []string{"oi_entry_key"}, ClusterRatio: 0.85},
		catalog.Index{Name: "OI_ACCOUNT_IDX", Columns: []string{"oi_account_id"}, ClusterRatio: 0.3})

	add(catalog.NewTable(EntryIdx,
		catalog.Column{Name: "ei_entry_key", Type: catalog.KindInt},
		catalog.Column{Name: "ei_product_id", Type: catalog.KindInt},
		catalog.Column{Name: "ei_branch_id", Type: catalog.KindInt},
		catalog.Column{Name: "ei_entry_type", Type: catalog.KindString},
		catalog.Column{Name: "ei_posted", Type: catalog.KindString},
	),
		catalog.Index{Name: "EI_ENTRY_IDX", Columns: []string{"ei_entry_key"}, ClusterRatio: 0.15},
		catalog.Index{Name: "EI_PRODUCT_IDX", Columns: []string{"ei_product_id"}, ClusterRatio: 0.2})

	add(catalog.NewTable(Account,
		catalog.Column{Name: "ac_account_id", Type: catalog.KindInt},
		catalog.Column{Name: "ac_customer_id", Type: catalog.KindInt},
		catalog.Column{Name: "ac_branch_id", Type: catalog.KindInt},
		catalog.Column{Name: "ac_type", Type: catalog.KindString},
		catalog.Column{Name: "ac_balance", Type: catalog.KindFloat},
	),
		catalog.Index{Name: "AC_ACCOUNT_IDX", Columns: []string{"ac_account_id"}, Unique: true, ClusterRatio: 0.95})

	add(catalog.NewTable(Branch,
		catalog.Column{Name: "br_branch_id", Type: catalog.KindInt},
		catalog.Column{Name: "br_region_id", Type: catalog.KindInt},
		catalog.Column{Name: "br_name", Type: catalog.KindString},
	),
		catalog.Index{Name: "BR_BRANCH_IDX", Columns: []string{"br_branch_id"}, Unique: true, ClusterRatio: 0.98})

	add(catalog.NewTable(CustomerInfo,
		catalog.Column{Name: "ci_customer_id", Type: catalog.KindInt},
		catalog.Column{Name: "ci_segment", Type: catalog.KindString},
		catalog.Column{Name: "ci_country", Type: catalog.KindString},
		catalog.Column{Name: "ci_risk_score", Type: catalog.KindInt},
	),
		catalog.Index{Name: "CI_CUSTOMER_IDX", Columns: []string{"ci_customer_id"}, Unique: true, ClusterRatio: 0.96})

	add(catalog.NewTable(Product,
		catalog.Column{Name: "pr_product_id", Type: catalog.KindInt},
		catalog.Column{Name: "pr_category", Type: catalog.KindString},
		catalog.Column{Name: "pr_fee", Type: catalog.KindFloat},
	),
		catalog.Index{Name: "PR_PRODUCT_IDX", Columns: []string{"pr_product_id"}, Unique: true, ClusterRatio: 0.97})

	add(catalog.NewTable(Region,
		catalog.Column{Name: "rg_region_id", Type: catalog.KindInt},
		catalog.Column{Name: "rg_name", Type: catalog.KindString},
	),
		catalog.Index{Name: "RG_REGION_IDX", Columns: []string{"rg_region_id"}, Unique: true, ClusterRatio: 0.99})

	add(catalog.NewTable(TxLog,
		catalog.Column{Name: "tx_account_id", Type: catalog.KindInt},
		catalog.Column{Name: "tx_product_id", Type: catalog.KindInt},
		catalog.Column{Name: "tx_amount", Type: catalog.KindFloat},
		catalog.Column{Name: "tx_status", Type: catalog.KindString},
	),
		catalog.Index{Name: "TX_ACCOUNT_IDX", Columns: []string{"tx_account_id"}, ClusterRatio: 0.25},
		catalog.Index{Name: "TX_PRODUCT_IDX", Columns: []string{"tx_product_id"}, ClusterRatio: 0.18})

	return s
}

// GenOptions controls data generation.
type GenOptions struct {
	Seed    int64
	Scale   float64
	Hazards bool
}

// DefaultGenOptions mirrors the TPC-DS defaults.
func DefaultGenOptions() GenOptions { return GenOptions{Seed: 20190523, Scale: 1.0, Hazards: true} }

// Generate builds and populates the client database, collects statistics and
// optionally installs estimation hazards.
func Generate(opts GenOptions) (*storage.Database, error) {
	if opts.Scale <= 0 {
		opts.Scale = 1.0
	}
	n := func(base int) int {
		v := int(float64(base) * opts.Scale)
		if v < 4 {
			v = 4
		}
		return v
	}
	nOpen := n(26000)
	nEntry := n(32000)
	nAccount := n(4000)
	nBranch := n(60)
	nCustomer := n(3000)
	nProduct := n(400)
	nRegion := 8
	nTx := n(20000)

	cat := catalog.New(Schema())
	db := storage.NewDatabase(cat)
	g := storage.NewGenerator(opts.Seed)

	statuses := []string{"OPEN", "PENDING", "CLOSED", "HOLD"}
	segments := []string{"RETAIL", "CORPORATE", "SMB", "PRIVATE"}
	countries := []string{"CA", "US", "UK", "DE", "BR", "IN"}
	categories := []string{"CHECKING", "SAVINGS", "LOAN", "CARD", "FX", "WIRE"}
	entryTypes := []string{"DEBIT", "CREDIT", "FEE", "ADJ"}

	for i := 1; i <= nRegion; i++ {
		if err := db.Insert(Region, storage.Row{catalog.Int(int64(i)), catalog.String(fmt.Sprintf("Region-%d", i))}); err != nil {
			return nil, err
		}
	}
	for i := 1; i <= nBranch; i++ {
		if err := db.Insert(Branch, storage.Row{
			catalog.Int(int64(i)), catalog.Int(g.UniformInt(1, int64(nRegion))),
			catalog.String(fmt.Sprintf("Branch-%03d", i))}); err != nil {
			return nil, err
		}
	}
	for i := 1; i <= nCustomer; i++ {
		if err := db.Insert(CustomerInfo, storage.Row{
			catalog.Int(int64(i)), catalog.String(g.Choice(segments)),
			catalog.String(g.WeightedChoice(countries, []float64{4, 3, 1, 1, 0.5, 0.5})),
			catalog.Int(g.UniformInt(1, 100))}); err != nil {
			return nil, err
		}
	}
	for i := 1; i <= nProduct; i++ {
		if err := db.Insert(Product, storage.Row{
			catalog.Int(int64(i)), catalog.String(g.Choice(categories)),
			catalog.Float(g.Float(0, 250))}); err != nil {
			return nil, err
		}
	}
	for i := 1; i <= nAccount; i++ {
		if err := db.Insert(Account, storage.Row{
			catalog.Int(int64(i)), catalog.Int(g.SkewedInt(int64(nCustomer), 1.4)),
			catalog.Int(g.UniformInt(1, int64(nBranch))), catalog.String(g.Choice(categories[:4])),
			catalog.Float(g.Float(-5000, 250000))}); err != nil {
			return nil, err
		}
	}
	// OPEN_IN and ENTRY_IDX share the entry-key domain; open items are skewed
	// toward recent entry keys and toward the OPEN status.
	entryDomain := int64(nEntry)
	for i := 0; i < nOpen; i++ {
		if err := db.Insert(OpenIn, storage.Row{
			catalog.Int(entryDomain - g.SkewedInt(entryDomain, 1.6) + 1),
			catalog.Int(g.SkewedInt(int64(nAccount), 1.5)),
			catalog.String(g.WeightedChoice(statuses, []float64{6, 2, 1, 1})),
			catalog.Float(g.Float(1, 100000)),
			catalog.Int(g.UniformInt(1, 3650))}); err != nil {
			return nil, err
		}
	}
	for i := 1; i <= nEntry; i++ {
		if err := db.Insert(EntryIdx, storage.Row{
			catalog.Int(int64(i)),
			catalog.Int(g.SkewedInt(int64(nProduct), 1.8)),
			catalog.Int(g.UniformInt(1, int64(nBranch))),
			catalog.String(g.Choice(entryTypes)),
			catalog.String(g.WeightedChoice([]string{"Y", "N"}, []float64{9, 1}))}); err != nil {
			return nil, err
		}
	}
	for i := 0; i < nTx; i++ {
		if err := db.Insert(TxLog, storage.Row{
			catalog.Int(g.SkewedInt(int64(nAccount), 1.7)),
			catalog.Int(g.SkewedInt(int64(nProduct), 1.9)),
			catalog.Float(g.Float(-10000, 10000)),
			catalog.String(g.WeightedChoice(statuses, []float64{1, 2, 6, 1}))}); err != nil {
			return nil, err
		}
	}

	if err := stats.CollectAll(db, stats.DefaultOptions()); err != nil {
		return nil, err
	}
	// As with the TPC-DS workload, size memory relative to the data so that
	// the large transactional tables do not fit in the buffer pool and big
	// sorts and hash builds spill.
	cfg := db.Catalog.Config
	bigPages := db.Pages(OpenIn) + db.Pages(EntryIdx) + db.Pages(TxLog)
	if v := bigPages / 8; v > 32 {
		cfg.BufferPoolPages = v
	} else {
		cfg.BufferPoolPages = 32
	}
	if v := bigPages / 40; v > 4 {
		cfg.SortHeapPages = v
	} else {
		cfg.SortHeapPages = 4
	}
	db.Catalog.Config = cfg

	if opts.Hazards {
		InstallHazards(db)
	}
	return db, nil
}

// InstallHazards makes the big transactional tables' statistics stale and
// overstates the configured transfer rate, as in the TPC-DS workload.
func InstallHazards(db *storage.Database) {
	cat := db.Catalog
	_ = cat.SetStaleFactor(OpenIn, 0.10)
	_ = cat.SetStaleFactor(EntryIdx, 0.12)
	_ = cat.SetStaleFactor(TxLog, 0.25)
	cfg := cat.Config
	cfg.RuntimeTransferRate = cfg.TransferRate
	cfg.TransferRate = cfg.TransferRate * 3.0
	cat.Config = cfg
}

// Fig1Query reproduces the join shape of the paper's Figure 1: OPEN_IN joined
// with ENTRY_IDX on the entry key (the client workload's query #8, whose
// rewrite took it from nine hours to five minutes).
func Fig1Query() *sqlparser.Query {
	q := sqlparser.MustParse(`SELECT oi_account_id, oi_amount, ei_product_id
		FROM open_in, entry_idx
		WHERE oi_entry_key = ei_entry_key AND oi_status = 'OPEN' AND ei_posted = 'Y'`)
	q.Name = "CLIENT.Q08"
	return q
}

// Queries returns the 116-query client workload.
func Queries() []*sqlparser.Query {
	var out []*sqlparser.Query
	add := func(sql string) {
		q := sqlparser.MustParse(sql)
		q.Name = fmt.Sprintf("CLIENT.Q%02d", len(out)+1)
		out = append(out, q)
	}
	statuses := []string{"OPEN", "PENDING", "CLOSED", "HOLD"}
	segments := []string{"RETAIL", "CORPORATE", "SMB", "PRIVATE"}
	categories := []string{"CHECKING", "SAVINGS", "LOAN", "CARD", "FX", "WIRE"}
	entryTypes := []string{"DEBIT", "CREDIT", "FEE", "ADJ"}

	// Q01..Q07: filtered single-table and simple lookups.
	for i := 0; i < 7; i++ {
		add(fmt.Sprintf(`SELECT ac_account_id, ac_balance FROM account WHERE ac_type = '%s' AND ac_balance > %d`,
			categories[i%4], i*1000))
	}
	// Q08..Q27: the Figure 1 shape with varying predicates (20 queries).
	for i := 0; i < 20; i++ {
		add(fmt.Sprintf(`SELECT oi_account_id, oi_amount, ei_product_id
			FROM open_in, entry_idx
			WHERE oi_entry_key = ei_entry_key AND oi_status = '%s' AND ei_posted = '%s'`,
			statuses[i%4], []string{"Y", "N"}[i%2]))
	}
	// Q28..Q51: open items with account and customer context (24 queries).
	for i := 0; i < 24; i++ {
		add(fmt.Sprintf(`SELECT oi_amount, ac_balance, ci_segment
			FROM open_in, account, customer_info
			WHERE oi_account_id = ac_account_id AND ac_customer_id = ci_customer_id
			AND ci_segment = '%s' AND oi_status = '%s'`, segments[i%4], statuses[i%3]))
	}
	// Q52..Q75: entry postings with product and branch/region context (24).
	for i := 0; i < 24; i++ {
		add(fmt.Sprintf(`SELECT ei_entry_type, pr_category, br_name, rg_name
			FROM entry_idx, product, branch, region
			WHERE ei_product_id = pr_product_id AND ei_branch_id = br_branch_id
			AND br_region_id = rg_region_id
			AND pr_category = '%s' AND ei_entry_type = '%s'`, categories[i%6], entryTypes[i%4]))
	}
	// Q76..Q99: transaction history with accounts, products and customers (24).
	for i := 0; i < 24; i++ {
		add(fmt.Sprintf(`SELECT tx_amount, ac_balance, pr_fee, ci_country
			FROM transaction_log, account, product, customer_info
			WHERE tx_account_id = ac_account_id AND tx_product_id = pr_product_id
			AND ac_customer_id = ci_customer_id
			AND tx_status = '%s' AND ci_segment = '%s'`, statuses[i%4], segments[(i+1)%4]))
	}
	// Q100..Q116: wide reporting queries spanning the whole schema (17).
	for i := 0; i < 17; i++ {
		add(fmt.Sprintf(`SELECT OI.oi_amount, EI.ei_entry_type, AC.ac_balance, CI.ci_segment, PR.pr_category, BR.br_name
			FROM open_in OI, entry_idx EI, account AC, customer_info CI, product PR, branch BR
			WHERE OI.oi_entry_key = EI.ei_entry_key AND OI.oi_account_id = AC.ac_account_id
			AND AC.ac_customer_id = CI.ci_customer_id AND EI.ei_product_id = PR.pr_product_id
			AND EI.ei_branch_id = BR.br_branch_id
			AND OI.oi_status = '%s' AND CI.ci_segment = '%s' AND PR.pr_category = '%s'`,
			statuses[i%4], segments[i%4], categories[i%6]))
	}
	return out
}
