// Package trace provides the multi-tenant workload of the zoo: an event
// store shared by NumTenants tenants, where each tenant's traffic is
// dominated by one event type (DominantShare of its rows). The
// (tenant, type) correlation breaks the independence assumption exactly
// where every tenant's hottest query lives; the remedy is column-group
// statistics with frequent value combinations, which record the skewed
// per-tenant mix exactly.
//
// The package also generates deterministic bursty arrival traces
// (Arrivals/Replay): per-tenant request schedules with X-Galo-Client
// identities that drive `galo serve`, exercising admission-control token
// buckets, per-tenant KB namespaces and shard-skew counters with realistic
// bursts instead of uniform client loops.
package trace

import (
	"fmt"

	"galo/internal/catalog"
	"galo/internal/optimizer"
	"galo/internal/sqlparser"
	"galo/internal/stats"
	"galo/internal/storage"
	"galo/internal/workload/scenario"
)

// Table names.
const (
	Events = "EVENTS"
	Tenant = "TENANT"
)

// Tenancy geometry. NumTenants and the event-type domain are
// scenario-intrinsic: they do not scale with GenOptions.Scale, so the
// correlation hazard has the same magnitude at any data size.
const (
	// NumTenants is the number of tenants sharing the event store.
	NumTenants = 16
	// DominantShare is the fraction of a tenant's events carrying its
	// dominant event type.
	DominantShare = 0.85
)

// EventTypes is the event type domain. Each type is the dominant type of
// exactly one tenant (DominantType), so the marginal type distribution is
// uniform while the per-tenant distribution is heavily skewed — single-column
// statistics see nothing wrong.
var EventTypes = []string{
	"ingest", "query", "export", "compact", "login", "billing", "webhook", "sync",
	"alert", "replay", "purge", "index", "schema", "backup", "restore", "audit",
}

// TenantID returns the X-Galo-Client identity of tenant i (1-based).
func TenantID(i int) string { return fmt.Sprintf("tenant-%02d", i) }

// DominantType returns the event type that dominates tenant i's traffic
// (1-based). It is the scenario's oracle.
func DominantType(i int) string { return EventTypes[(i-1)%len(EventTypes)] }

// Schema returns the multi-tenant event schema.
func Schema() *catalog.Schema {
	s := catalog.NewSchema("TRACE")

	events := catalog.NewTable(Events,
		catalog.Column{Name: "ev_tenant_sk", Type: catalog.KindInt},
		catalog.Column{Name: "ev_type", Type: catalog.KindString},
		catalog.Column{Name: "ev_status", Type: catalog.KindString},
		catalog.Column{Name: "ev_day", Type: catalog.KindInt},
		catalog.Column{Name: "ev_latency_ms", Type: catalog.KindInt},
		catalog.Column{Name: "ev_bytes", Type: catalog.KindInt},
	)
	mustIndex(events, catalog.Index{Name: "EV_TENANT_IDX", Columns: []string{"ev_tenant_sk"}, ClusterRatio: 0.30})
	mustIndex(events, catalog.Index{Name: "EV_DAY_IDX", Columns: []string{"ev_day"}, ClusterRatio: 0.85})
	s.AddTable(events)

	tenant := catalog.NewTable(Tenant,
		catalog.Column{Name: "t_tenant_sk", Type: catalog.KindInt},
		catalog.Column{Name: "t_name", Type: catalog.KindString},
		catalog.Column{Name: "t_plan", Type: catalog.KindString},
		catalog.Column{Name: "t_region", Type: catalog.KindString},
	)
	tenant.PrimaryKey = []string{"T_TENANT_SK"}
	mustIndex(tenant, catalog.Index{Name: "T_TENANT_SK_IDX", Columns: []string{"t_tenant_sk"}, Unique: true, ClusterRatio: 0.99})
	s.AddTable(tenant)

	return s
}

func mustIndex(t *catalog.Table, idx catalog.Index) {
	if err := t.AddIndex(idx); err != nil {
		panic(err)
	}
}

// ColumnGroups returns the correlation statistics specification that fixes
// this scenario: the (tenant, type) group with its frequent combinations.
func ColumnGroups() map[string][][]string {
	return map[string][][]string{
		Events: {{"ev_tenant_sk", "ev_type"}},
	}
}

// workload implements scenario.Scenario.
type workload struct{}

// New returns the multi-tenant trace scenario.
func New() scenario.Scenario { return workload{} }

func (workload) Name() string { return "trace" }

func (workload) Hazard() string {
	return "per-tenant dominant event types: uniform marginals hide the (tenant, type) correlation"
}

func (workload) DefaultGen() scenario.GenOptions {
	return scenario.GenOptions{Seed: 20190803, Scale: 1.0, Hazards: true}
}

func rowCounts(scale float64) (nEvents int) {
	if scale <= 0 {
		scale = 1.0
	}
	nEvents = int(24000 * scale)
	if nEvents < 128*NumTenants {
		nEvents = 128 * NumTenants
	}
	return nEvents
}

// Generate builds the multi-tenant event store. Statistics are always
// fresh; with Hazards on, no column-group statistics exist, so the
// optimizer multiplies the uniform tenant and type marginals and
// underestimates every tenant's dominant-type scan by ~DominantShare *
// len(EventTypes).
func (workload) Generate(opts scenario.GenOptions) (*storage.Database, error) {
	if opts.Scale <= 0 {
		opts.Scale = 1.0
	}
	nEvents := rowCounts(opts.Scale)
	cat := catalog.New(Schema())
	db := storage.NewDatabase(cat)
	g := storage.NewGenerator(opts.Seed)

	plans := []string{"free", "pro", "enterprise"}
	regions := []string{"us-east", "us-west", "eu-central", "ap-south"}
	for i := 1; i <= NumTenants; i++ {
		if err := db.Insert(Tenant, storage.Row{
			catalog.Int(int64(i)),
			catalog.String(TenantID(i)),
			catalog.String(plans[i%len(plans)]),
			catalog.String(regions[i%len(regions)]),
		}); err != nil {
			return nil, err
		}
	}

	statuses := []string{"ok", "ok", "ok", "retry", "error"}
	for i := 0; i < nEvents; i++ {
		tenant := g.Intn(NumTenants) + 1
		var typ string
		if g.Bool(DominantShare) {
			typ = DominantType(tenant)
		} else {
			// A non-dominant type, uniform over the remaining domain.
			off := g.Intn(len(EventTypes) - 1)
			typ = EventTypes[((tenant-1)+1+off)%len(EventTypes)]
		}
		if err := db.Insert(Events, storage.Row{
			catalog.Int(int64(tenant)),
			catalog.String(typ),
			catalog.String(statuses[g.Intn(len(statuses))]),
			catalog.Int(g.UniformInt(1, 365)),
			catalog.Int(g.SkewedInt(5000, 1.2)),
			catalog.Int(g.UniformInt(64, 1<<20)),
		}); err != nil {
			return nil, err
		}
	}

	statOpts := stats.DefaultOptions()
	if !opts.Hazards {
		statOpts.ColumnGroups = ColumnGroups()
	}
	if err := stats.CollectAll(db, statOpts); err != nil {
		return nil, err
	}
	if err := storage.AnalyzeAll(db, storage.AnalyzeOptions{}); err != nil {
		return nil, err
	}

	cfg := db.Catalog.Config
	evPages := db.Pages(Events)
	cfg.BufferPoolPages = maxPages(32, evPages/5)
	cfg.SortHeapPages = maxPages(4, evPages/40)
	db.Catalog.Config = cfg
	return db, nil
}

// TenantQuery returns tenant i's hottest query: its own events of its
// dominant type. This is the scan the correlation hazard hits.
func TenantQuery(i int) *sqlparser.Query {
	q := sqlparser.MustParse(fmt.Sprintf(
		`SELECT ev_day, ev_status, ev_latency_ms FROM events
		 WHERE ev_tenant_sk = %d AND ev_type = '%s'`, i, DominantType(i)))
	q.Name = fmt.Sprintf("TRACE.T%02d", i)
	return q
}

// TenantJoinQuery returns tenant i's dominant-type scan joined with the
// tenant dimension. The dimension is pinned by name as well as key: the
// optimizer infers t_tenant_sk = i transitively, and the executed dimension
// scan must apply an equivalent restriction for est/act to be comparable.
// Unlike the single-table TenantQuery, the join carries a fragment the
// matching engine probes the knowledge base for, so a trace of these
// exercises the per-client probe budgets.
func TenantJoinQuery(i int) *sqlparser.Query {
	q := sqlparser.MustParse(fmt.Sprintf(
		`SELECT t_name, ev_day, ev_latency_ms FROM events, tenant
		 WHERE ev_tenant_sk = t_tenant_sk AND t_name = '%s'
		 AND ev_tenant_sk = %d AND ev_type = '%s'`,
		TenantID(i), i, DominantType(i)))
	q.Name = fmt.Sprintf("TRACE.J%02d", i)
	return q
}

// HazardQueries returns each tenant's dominant-type scan (optionally joined
// with the tenant dimension) plus one non-dominant control.
func (workload) HazardQueries(db *storage.Database, n int) []*sqlparser.Query {
	var out []*sqlparser.Query
	for i := 1; i <= NumTenants/2; i++ {
		out = append(out, TenantQuery(i))
	}
	for i := NumTenants/2 + 1; i <= NumTenants/2+2; i++ {
		out = append(out, TenantJoinQuery(i))
	}
	// Control: single-column predicates the marginal statistics estimate well.
	q := sqlparser.MustParse(`SELECT ev_day, ev_bytes FROM events WHERE ev_tenant_sk = 1`)
	q.Name = "TRACE.C01"
	out = append(out, q)
	if n > 0 && n < len(out) {
		out = out[:n]
	}
	return out
}

// Learn is the trace remedy: collect the (tenant, type) column group with
// its frequent value combinations — 256 combinations cover the whole domain,
// so every tenant's skewed mix is recorded exactly — and turn on the
// estimator's group lookup.
func (workload) Learn(db *storage.Database) (optimizer.Options, error) {
	statOpts := stats.DefaultOptions()
	statOpts.ColumnGroups = ColumnGroups()
	if err := stats.CollectAll(db, statOpts); err != nil {
		return optimizer.Options{}, err
	}
	if err := storage.AnalyzeAll(db, storage.AnalyzeOptions{}); err != nil {
		return optimizer.Options{}, err
	}
	o := optimizer.DefaultOptions()
	o.UseColumnGroups = true
	return o, nil
}

func maxPages(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
