package trace

import (
	"sort"
	"sync"
	"time"

	"galo/internal/sqlparser"
	"galo/internal/storage"
)

// Arrival is one request of a multi-tenant trace: at offset AtMillis from
// the trace start, tenant Tenant (an X-Galo-Client identity) issues Query.
type Arrival struct {
	AtMillis int64
	Tenant   string
	Query    *sqlparser.Query
}

// TraceOptions controls arrival-trace generation.
type TraceOptions struct {
	// Seed makes the schedule deterministic.
	Seed int64
	// Tenants is the number of tenant identities (default NumTenants).
	Tenants int
	// Arrivals is the total number of requests (default 32 per tenant).
	Arrivals int
	// Profile selects the arrival process: "bursty" (default) rotates a
	// burst owner that fires a dense run of requests while the others trickle;
	// "steady" spreads the same request mix uniformly — the uncontended
	// control for latency comparisons.
	Profile string
	// BurstLen is the number of back-to-back requests per burst (default 16).
	BurstLen int
}

// Profiles supported by Arrivals.
const (
	ProfileBursty = "bursty"
	ProfileSteady = "steady"
)

func (o *TraceOptions) fill() {
	if o.Tenants <= 0 {
		o.Tenants = NumTenants
	}
	if o.Arrivals <= 0 {
		o.Arrivals = 32 * o.Tenants
	}
	if o.Profile == "" {
		o.Profile = ProfileBursty
	}
	if o.BurstLen <= 0 {
		o.BurstLen = 16
	}
}

// Arrivals generates a deterministic arrival trace over the trace workload's
// query mix: each tenant mostly issues its dominant-type query
// (TenantQuery), with occasional dimension lookups. Arrivals are returned in
// schedule order.
func Arrivals(opts TraceOptions) []Arrival {
	opts.fill()
	g := storage.NewGenerator(opts.Seed)
	queryFor := func(tenant int) *sqlparser.Query {
		// Mostly the tenant's dominant-type join (each request costs a
		// knowledge base probe, so bursts drain the tenant's probe bucket),
		// with occasional single-table dominant-type scans.
		if g.Bool(0.8) {
			return TenantJoinQuery((tenant-1)%NumTenants + 1)
		}
		return TenantQuery((tenant-1)%NumTenants + 1)
	}

	out := make([]Arrival, 0, opts.Arrivals)
	switch opts.Profile {
	case ProfileSteady:
		// Uniform round-robin: one request every 5ms, tenants take turns.
		at := int64(0)
		for i := 0; i < opts.Arrivals; i++ {
			tenant := i%opts.Tenants + 1
			out = append(out, Arrival{AtMillis: at, Tenant: TenantID(tenant), Query: queryFor(tenant)})
			at += 5
		}
	default:
		// Bursty: the burst owner rotates; during its burst it fires
		// BurstLen requests 1-2ms apart while every other tenant trickles
		// with probability 0.2, so bursts overlap background traffic.
		at := int64(0)
		owner := 0
		for len(out) < opts.Arrivals {
			owner = owner%opts.Tenants + 1
			burstStart := at
			for b := 0; b < opts.BurstLen && len(out) < opts.Arrivals; b++ {
				out = append(out, Arrival{AtMillis: at, Tenant: TenantID(owner), Query: queryFor(owner)})
				at += g.UniformInt(1, 2)
			}
			for t := 1; t <= opts.Tenants && len(out) < opts.Arrivals; t++ {
				if t != owner && g.Bool(0.2) {
					trickleAt := burstStart + g.UniformInt(0, at-burstStart)
					out = append(out, Arrival{AtMillis: trickleAt, Tenant: TenantID(t), Query: queryFor(t)})
				}
			}
			// An inter-burst gap lets buckets refill partially — bursts are
			// bursts, not a uniform hammer.
			at += g.UniformInt(10, 20)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].AtMillis < out[j].AtMillis })
	return out
}

// Replay dispatches every arrival at its scheduled offset divided by
// speedup, each in its own goroutine (concurrent arrivals overlap, as they
// would against a real server), and waits for all dispatched calls to
// return. speedup <= 0 replays with no waiting at all.
func Replay(arrivals []Arrival, speedup float64, do func(Arrival)) {
	var wg sync.WaitGroup
	start := time.Now()
	for _, a := range arrivals {
		if speedup > 0 {
			due := time.Duration(float64(a.AtMillis)/speedup) * time.Millisecond
			if wait := due - time.Since(start); wait > 0 {
				time.Sleep(wait)
			}
		}
		wg.Add(1)
		go func(a Arrival) {
			defer wg.Done()
			do(a)
		}(a)
	}
	wg.Wait()
}
