// Package ohlc provides the time-series workload of the zoo: per-symbol
// per-day OHLC bars with a deep calendar, where the bulk of the bars floods
// into the most recent window *after* statistics collection. Window
// aggregations over the recent window are the production query shape of
// time-series stores; a statistics snapshot taken before the flood believes
// the recent window is nearly empty, so the optimizer's cardinality
// estimates for exactly the queries everyone runs are off by orders of
// magnitude until statistics are refreshed.
package ohlc

import (
	"fmt"

	"galo/internal/catalog"
	"galo/internal/optimizer"
	"galo/internal/sqlparser"
	"galo/internal/stats"
	"galo/internal/storage"
	"galo/internal/workload/scenario"
)

// Table names.
const (
	Bars     = "BARS"
	Symbol   = "SYMBOL"
	Exchange = "EXCHANGE"
)

// Calendar geometry. These are scenario-intrinsic and deliberately do NOT
// scale with GenOptions.Scale: the hazard needs a deep time range even at
// tiny row counts, which is why experiments keeps a per-workload scale
// instead of one global knob.
const (
	// CalendarDays is the depth of the bar calendar (b_day ∈ [1, CalendarDays]).
	CalendarDays = 1024
	// RecentWindowDays is the width of the recent window that receives the
	// post-ANALYZE flood.
	RecentWindowDays = 32
	// HistoricalFraction is the share of bars loaded before statistics
	// collection, spread uniformly over the old calendar.
	HistoricalFraction = 0.3
)

// Sectors is the symbol sector domain.
var Sectors = []string{"Tech", "Energy", "Finance", "Health", "Retail", "Industrial", "Utilities", "Telecom"}

// Schema returns the OHLC schema: a bars fact table, a symbol dimension and
// a small exchange dimension. The day index on bars is well clustered
// (bars append roughly in time order); the symbol index is not.
func Schema() *catalog.Schema {
	s := catalog.NewSchema("OHLC")

	bars := catalog.NewTable(Bars,
		catalog.Column{Name: "b_symbol_sk", Type: catalog.KindInt},
		catalog.Column{Name: "b_day", Type: catalog.KindInt},
		catalog.Column{Name: "b_open", Type: catalog.KindFloat},
		catalog.Column{Name: "b_high", Type: catalog.KindFloat},
		catalog.Column{Name: "b_low", Type: catalog.KindFloat},
		catalog.Column{Name: "b_close", Type: catalog.KindFloat},
		catalog.Column{Name: "b_volume", Type: catalog.KindInt},
	)
	mustIndex(bars, catalog.Index{Name: "B_DAY_IDX", Columns: []string{"b_day"}, ClusterRatio: 0.90})
	mustIndex(bars, catalog.Index{Name: "B_SYMBOL_IDX", Columns: []string{"b_symbol_sk"}, ClusterRatio: 0.10})
	s.AddTable(bars)

	symbol := catalog.NewTable(Symbol,
		catalog.Column{Name: "sy_symbol_sk", Type: catalog.KindInt},
		catalog.Column{Name: "sy_ticker", Type: catalog.KindString},
		catalog.Column{Name: "sy_sector", Type: catalog.KindString},
		catalog.Column{Name: "sy_exchange_sk", Type: catalog.KindInt},
	)
	symbol.PrimaryKey = []string{"SY_SYMBOL_SK"}
	mustIndex(symbol, catalog.Index{Name: "SY_SYMBOL_SK_IDX", Columns: []string{"sy_symbol_sk"}, Unique: true, ClusterRatio: 0.98})
	mustIndex(symbol, catalog.Index{Name: "SY_SECTOR_IDX", Columns: []string{"sy_sector"}, ClusterRatio: 0.30})
	s.AddTable(symbol)

	exchange := catalog.NewTable(Exchange,
		catalog.Column{Name: "ex_exchange_sk", Type: catalog.KindInt},
		catalog.Column{Name: "ex_name", Type: catalog.KindString},
		catalog.Column{Name: "ex_region", Type: catalog.KindString},
	)
	exchange.PrimaryKey = []string{"EX_EXCHANGE_SK"}
	mustIndex(exchange, catalog.Index{Name: "EX_EXCHANGE_SK_IDX", Columns: []string{"ex_exchange_sk"}, Unique: true, ClusterRatio: 0.99})
	s.AddTable(exchange)

	return s
}

func mustIndex(t *catalog.Table, idx catalog.Index) {
	if err := t.AddIndex(idx); err != nil {
		panic(err)
	}
}

// workload implements scenario.Scenario.
type workload struct{}

// New returns the OHLC scenario.
func New() scenario.Scenario { return workload{} }

func (workload) Name() string { return "ohlc" }

func (workload) Hazard() string {
	return "recent-window flood after ANALYZE: the time histogram believes the hot window is empty"
}

func (workload) DefaultGen() scenario.GenOptions {
	return scenario.GenOptions{Seed: 20190801, Scale: 1.0, Hazards: true}
}

func rowCounts(scale float64) (nBars, nSymbols, nExchanges int) {
	if scale <= 0 {
		scale = 1.0
	}
	nBars = int(36000 * scale)
	if nBars < 256 {
		nBars = 256
	}
	nSymbols = int(240 * scale)
	if nSymbols < 8 {
		nSymbols = 8
	}
	return nBars, nSymbols, 8
}

// Generate builds the OHLC database. With Hazards on, statistics (including
// the ANALYZE histograms) are collected after the historical wave but before
// the recent-window flood — the snapshot is genuinely stale, exactly the
// two-wave discipline the tpcds workload uses for Figure 8.
func (workload) Generate(opts scenario.GenOptions) (*storage.Database, error) {
	if opts.Scale <= 0 {
		opts.Scale = 1.0
	}
	nBars, nSymbols, nExchanges := rowCounts(opts.Scale)
	cat := catalog.New(Schema())
	db := storage.NewDatabase(cat)
	g := storage.NewGenerator(opts.Seed)

	for i := 1; i <= nExchanges; i++ {
		if err := db.Insert(Exchange, storage.Row{
			catalog.Int(int64(i)),
			catalog.String(fmt.Sprintf("EXCH%02d", i)),
			catalog.String([]string{"AMER", "EMEA", "APAC", "LATAM"}[i%4]),
		}); err != nil {
			return nil, err
		}
	}
	for i := 1; i <= nSymbols; i++ {
		if err := db.Insert(Symbol, storage.Row{
			catalog.Int(int64(i)),
			catalog.String(fmt.Sprintf("SYM%04d", i)),
			catalog.String(Sectors[g.Intn(len(Sectors))]),
			catalog.Int(g.UniformInt(1, int64(nExchanges))),
		}); err != nil {
			return nil, err
		}
	}

	histSpan := int64(CalendarDays - RecentWindowDays)
	insertBars := func(n int, day func() int64) error {
		for i := 0; i < n; i++ {
			open := g.Float(5, 500)
			spread := g.Float(0, open*0.1)
			if err := db.Insert(Bars, storage.Row{
				catalog.Int(g.SkewedInt(int64(nSymbols), 1.4)),
				catalog.Int(day()),
				catalog.Float(open),
				catalog.Float(open + spread),
				catalog.Float(open - spread),
				catalog.Float(open + g.Float(-spread, spread)),
				catalog.Int(g.UniformInt(100, 1000000)),
			}); err != nil {
				return err
			}
		}
		return nil
	}
	histDay := func() int64 { return g.UniformInt(1, histSpan) }
	floodDay := func() int64 { return g.UniformInt(histSpan+1, CalendarDays) }

	nHist := int(float64(nBars) * HistoricalFraction)
	collect := func() error {
		if err := stats.CollectAll(db, stats.DefaultOptions()); err != nil {
			return err
		}
		return storage.AnalyzeAll(db, storage.AnalyzeOptions{})
	}
	if err := insertBars(nHist, histDay); err != nil {
		return nil, err
	}
	if opts.Hazards {
		// RUNSTATS + ANALYZE before the flood: a genuinely stale snapshot
		// that believes the recent window holds almost no bars.
		if err := collect(); err != nil {
			return nil, err
		}
	}
	if err := insertBars(nBars-nHist, floodDay); err != nil {
		return nil, err
	}
	if !opts.Hazards {
		if err := collect(); err != nil {
			return nil, err
		}
	}

	// Size memory so plan choice matters: dimensions fit, the bar table does
	// not, large sorts spill.
	cfg := db.Catalog.Config
	barPages := db.Pages(Bars)
	cfg.BufferPoolPages = maxPages(32, barPages/5)
	cfg.SortHeapPages = maxPages(4, barPages/40)
	db.Catalog.Config = cfg
	return db, nil
}

// RecentWindow returns the b_day range [lo, hi] holding the post-ANALYZE
// flood — the window every dashboard query aggregates over.
func RecentWindow() (lo, hi int64) {
	return CalendarDays - RecentWindowDays + 1, CalendarDays
}

// HazardQueries returns window aggregations over the recent window (and one
// wide and one historical control variant). The bar-table estimates of the
// recent-window queries are catastrophically low until Learn refreshes the
// statistics.
func (workload) HazardQueries(db *storage.Database, n int) []*sqlparser.Query {
	lo, hi := RecentWindow()
	var out []*sqlparser.Query
	add := func(sql string) {
		q := sqlparser.MustParse(sql)
		q.Name = fmt.Sprintf("OHLC.Q%02d", len(out)+1)
		out = append(out, q)
	}
	// Whole recent window, last half, last quarter: the daily dashboards.
	for _, w := range []int64{RecentWindowDays, RecentWindowDays / 2, RecentWindowDays / 4} {
		add(fmt.Sprintf(`SELECT b_symbol_sk, b_day, b_close, b_volume FROM bars
			WHERE b_day BETWEEN %d AND %d`, hi-w+1, hi))
	}
	// Sector-filtered window aggregations (the symbol scan is estimated
	// accurately; only the bars scan is hazardous).
	for i, w := range []int64{RecentWindowDays, RecentWindowDays / 2, RecentWindowDays / 4} {
		add(fmt.Sprintf(`SELECT b_symbol_sk, b_day FROM bars, symbol
			WHERE b_symbol_sk = sy_symbol_sk AND sy_sector = '%s'
			AND b_day BETWEEN %d AND %d
			GROUP BY b_symbol_sk, b_day`, Sectors[i%len(Sectors)], hi-w+1, hi))
	}
	// Wide variant: the recent window plus a tail of the old calendar — the
	// Figure 8 shape transplanted to time series.
	add(fmt.Sprintf(`SELECT b_symbol_sk, b_day, b_close FROM bars
		WHERE b_day BETWEEN %d AND %d`, lo-int64(CalendarDays/30), hi))
	// Historical control: a mid-calendar window both snapshots estimate well.
	mid := int64(CalendarDays-RecentWindowDays) / 2
	add(fmt.Sprintf(`SELECT b_symbol_sk, b_day, b_close FROM bars
		WHERE b_day BETWEEN %d AND %d`, mid, mid+RecentWindowDays))
	if n > 0 && n < len(out) {
		out = out[:n]
	}
	return out
}

// Learn is the OHLC remedy: refresh RUNSTATS and the ANALYZE histograms over
// the full data. No correlation statistics are needed — staleness is the
// whole hazard.
func (workload) Learn(db *storage.Database) (optimizer.Options, error) {
	if err := stats.CollectAll(db, stats.DefaultOptions()); err != nil {
		return optimizer.Options{}, err
	}
	if err := storage.AnalyzeAll(db, storage.AnalyzeOptions{}); err != nil {
		return optimizer.Options{}, err
	}
	return optimizer.DefaultOptions(), nil
}

func maxPages(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
