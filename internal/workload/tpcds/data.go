package tpcds

import (
	"fmt"

	"galo/internal/catalog"
	"galo/internal/stats"
	"galo/internal/storage"
)

// GenOptions controls data generation.
type GenOptions struct {
	// Seed makes generation deterministic.
	Seed int64
	// Scale multiplies the default row counts (1.0 ≈ tens of thousands of
	// fact rows, a laptop-scale stand-in for the paper's 1 GB database).
	Scale float64
	// Hazards, when true, installs the estimation hazards the paper's problem
	// patterns stem from: statistics (including the ANALYZE histograms) are
	// collected after the historical fact wave but *before* the recent-window
	// flood — so the optimizer plans over a snapshot that is genuinely stale,
	// believing the fact tables are ~HistoricalFraction of their true size
	// and that almost no fact rows carry recent dates — and the configured
	// transfer rate overstates the true sequential read cost.
	Hazards bool
}

// HistoricalFraction is the share of each fact table loaded as the
// "historical" wave, whose dates spread over the old calendar. The remaining
// rows are the recent-window flood loaded after statistics collection when
// hazards are on.
const HistoricalFraction = 0.3

// DefaultGenOptions generates a small but realistic instance with hazards on.
func DefaultGenOptions() GenOptions {
	return GenOptions{Seed: 20190122, Scale: 1.0, Hazards: true}
}

// rowCounts returns per-table row counts at the given scale.
func rowCounts(scale float64) map[string]int {
	if scale <= 0 {
		scale = 1.0
	}
	base := map[string]int{
		Item:                 1800,
		DateDim:              2400,
		StoreSales:           28800,
		CatalogSales:         14400,
		WebSales:             9600,
		Customer:             5000,
		CustomerAddress:      2500,
		CustomerDemographics: 4800,
		Store:                12,
		Promotion:            100,
	}
	out := make(map[string]int, len(base))
	for k, v := range base {
		n := int(float64(v) * scale)
		if n < 4 {
			n = 4
		}
		out[k] = n
	}
	return out
}

// Generate builds the database, populates it, collects statistics and — when
// requested — installs the estimation hazards.
func Generate(opts GenOptions) (*storage.Database, error) {
	if opts.Scale <= 0 {
		opts.Scale = 1.0
	}
	counts := rowCounts(opts.Scale)
	cat := catalog.New(Schema())
	db := storage.NewDatabase(cat)
	g := storage.NewGenerator(opts.Seed)

	nItems := counts[Item]
	nDates := counts[DateDim]
	nCustomers := counts[Customer]
	nAddresses := counts[CustomerAddress]
	nDemos := counts[CustomerDemographics]
	nStores := counts[Store]
	nPromos := counts[Promotion]

	// ITEM: i_class is determined by i_category (3 classes per category), a
	// correlation the optimizer's independence assumption misses.
	for i := 1; i <= nItems; i++ {
		cat := Categories[g.Intn(len(Categories))]
		class := fmt.Sprintf("%s-class-%d", cat, g.Intn(3)+1)
		if err := db.Insert(Item, storage.Row{
			catalog.Int(int64(i)),
			catalog.String(fmt.Sprintf("ITEM%06d", i)),
			catalog.String(fmt.Sprintf("%s item %d description", cat, i)),
			catalog.String(cat),
			catalog.String(class),
			catalog.String(fmt.Sprintf("Brand#%d", g.Intn(40)+1)),
			catalog.Float(g.Float(0.5, 300)),
			catalog.Float(g.Float(0.2, 150)),
		}); err != nil {
			return nil, err
		}
	}

	// DATE_DIM: a long calendar range; the bulk of the sales references only
	// the final saleWindow days, reproducing the Figure 8 mismatch between
	// the dimension's range and the fact data's range.
	const startYearDay = int64(7305) // 1990-01-01 in days since epoch
	dayNames := []string{"Monday", "Tuesday", "Wednesday", "Thursday", "Friday", "Saturday", "Sunday"}
	for i := 1; i <= nDates; i++ {
		day := startYearDay + int64(i-1)
		year := 1990 + (i-1)/365
		if err := db.Insert(DateDim, storage.Row{
			catalog.Int(int64(i)),
			catalog.DateFromDays(day),
			catalog.Int(int64(year)),
			catalog.Int(int64((i/30)%12 + 1)),
			catalog.Int(int64(i%28 + 1)),
			catalog.String(dayNames[i%7]),
		}); err != nil {
			return nil, err
		}
	}
	saleWindow := nDates / 12 // the flood lives in the most recent twelfth of the calendar
	if saleWindow < 1 {
		saleWindow = 1
	}
	histSpan := nDates - saleWindow
	if histSpan < 1 {
		histSpan = 1
	}
	// saleDate draws a flood date from the recent window; histDate draws a
	// historical date uniformly over the old calendar.
	saleDate := func() int64 {
		return int64(nDates - g.Intn(saleWindow))
	}
	histDate := func() int64 {
		return int64(g.Intn(histSpan) + 1)
	}

	// CUSTOMER_ADDRESS: state heavily skewed toward the first few states.
	stateWeights := make([]float64, len(States))
	for i := range States {
		stateWeights[i] = 1.0 / float64(i+1)
	}
	for i := 1; i <= nAddresses; i++ {
		if err := db.Insert(CustomerAddress, storage.Row{
			catalog.Int(int64(i)),
			catalog.String(g.WeightedChoice(States, stateWeights)),
			catalog.String(fmt.Sprintf("City%03d", g.Intn(200))),
			catalog.String("United States"),
			catalog.Int(int64(-g.Intn(8) - 1)),
		}); err != nil {
			return nil, err
		}
	}

	// CUSTOMER_DEMOGRAPHICS: education correlates with purchase estimate.
	educations := []string{"Primary", "Secondary", "College", "2 yr Degree", "4 yr Degree", "Advanced Degree"}
	for i := 1; i <= nDemos; i++ {
		edu := g.Intn(len(educations))
		purchase := int64(500*(edu+1)) + g.UniformInt(0, 499)
		gender := "M"
		if g.Bool(0.5) {
			gender = "F"
		}
		marital := []string{"S", "M", "D", "W"}[g.Intn(4)]
		if err := db.Insert(CustomerDemographics, storage.Row{
			catalog.Int(int64(i)),
			catalog.String(gender),
			catalog.String(marital),
			catalog.String(educations[edu]),
			catalog.Int(purchase),
		}); err != nil {
			return nil, err
		}
	}

	// CUSTOMER.
	for i := 1; i <= nCustomers; i++ {
		if err := db.Insert(Customer, storage.Row{
			catalog.Int(int64(i)),
			catalog.Int(g.UniformInt(1, int64(nAddresses))),
			catalog.Int(g.UniformInt(1, int64(nDemos))),
			catalog.String(fmt.Sprintf("First%04d", g.Intn(2000))),
			catalog.String(fmt.Sprintf("Last%04d", g.Intn(3000))),
			catalog.Int(g.UniformInt(1930, 2005)),
		}); err != nil {
			return nil, err
		}
	}

	// STORE and PROMOTION.
	for i := 1; i <= nStores; i++ {
		if err := db.Insert(Store, storage.Row{
			catalog.Int(int64(i)),
			catalog.String(fmt.Sprintf("Store %c", 'A'+i%26)),
			catalog.String(States[i%len(States)]),
			catalog.Int(g.UniformInt(5000, 100000)),
		}); err != nil {
			return nil, err
		}
	}
	yn := []string{"Y", "N"}
	for i := 1; i <= nPromos; i++ {
		if err := db.Insert(Promotion, storage.Row{
			catalog.Int(int64(i)),
			catalog.String(yn[g.Intn(2)]),
			catalog.String(yn[g.Intn(2)]),
			catalog.Float(g.Float(100, 5000)),
		}); err != nil {
			return nil, err
		}
	}

	// Fact tables: item and customer foreign keys are Zipf-skewed (popular
	// items and repeat customers dominate). Rows arrive in two waves: a
	// historical wave whose dates spread over the old calendar and the
	// recent-window flood. With hazards on, statistics — cardinalities AND
	// the ANALYZE histograms — are snapshotted between the waves, which is
	// exactly the stale-statistics window behind the paper's Figure 8: the
	// optimizer believes recent dates are nearly empty of sales when in truth
	// they hold the bulk of the data.
	insertFacts := func(date func() int64, n map[string]int) error {
		for i := 0; i < n[StoreSales]; i++ {
			if err := db.Insert(StoreSales, storage.Row{
				catalog.Int(date()),
				catalog.Int(g.SkewedInt(int64(nItems), 1.8)),
				catalog.Int(g.SkewedInt(int64(nCustomers), 1.5)),
				catalog.Int(g.UniformInt(1, int64(nDemos))),
				catalog.Int(g.SkewedInt(int64(nAddresses), 1.4)),
				catalog.Int(g.UniformInt(1, int64(nStores))),
				catalog.Int(g.UniformInt(1, 100)),
				catalog.Float(g.Float(1, 500)),
				catalog.Float(g.Float(-50, 250)),
			}); err != nil {
				return err
			}
		}
		for i := 0; i < n[CatalogSales]; i++ {
			if err := db.Insert(CatalogSales, storage.Row{
				catalog.Int(date()),
				catalog.Int(g.SkewedInt(int64(nItems), 2.0)),
				catalog.Int(g.SkewedInt(int64(nCustomers), 1.6)),
				catalog.Int(g.SkewedInt(int64(nAddresses), 1.6)),
				catalog.Int(g.UniformInt(1, int64(nDemos))),
				catalog.Int(g.UniformInt(1, 100)),
				catalog.Float(g.Float(1, 800)),
			}); err != nil {
				return err
			}
		}
		for i := 0; i < n[WebSales]; i++ {
			if err := db.Insert(WebSales, storage.Row{
				catalog.Int(date()),
				catalog.Int(g.SkewedInt(int64(nItems), 1.7)),
				catalog.Int(g.SkewedInt(int64(nCustomers), 1.5)),
				catalog.Int(g.UniformInt(1, 100)),
				catalog.Float(g.Float(1, 600)),
			}); err != nil {
				return err
			}
		}
		return nil
	}
	histCounts := map[string]int{}
	floodCounts := map[string]int{}
	for _, tbl := range []string{StoreSales, CatalogSales, WebSales} {
		histCounts[tbl] = int(float64(counts[tbl]) * HistoricalFraction)
		floodCounts[tbl] = counts[tbl] - histCounts[tbl]
	}
	if err := insertFacts(histDate, histCounts); err != nil {
		return nil, err
	}
	collect := func() error {
		if err := stats.CollectAll(db, stats.DefaultOptions()); err != nil {
			return err
		}
		return storage.AnalyzeAll(db, storage.AnalyzeOptions{})
	}
	if opts.Hazards {
		// RUNSTATS + ANALYZE before the flood: genuinely stale statistics.
		if err := collect(); err != nil {
			return nil, err
		}
	}
	if err := insertFacts(saleDate, floodCounts); err != nil {
		return nil, err
	}
	if !opts.Hazards {
		if err := collect(); err != nil {
			return nil, err
		}
	}
	// Size memory relative to the data so plan choice matters at any scale:
	// dimension tables (and a stale-statistics-sized fact snapshot) fit in
	// the buffer pool while the biggest fact tables do not, and large hash
	// builds and sorts spill — mirroring the paper's 1 GB database with
	// "main memory adjusted accordingly to simulate real-world environment".
	cfg := db.Catalog.Config
	factPages := db.Pages(StoreSales) + db.Pages(CatalogSales) + db.Pages(WebSales)
	cfg.BufferPoolPages = maxPages(32, factPages/5)
	cfg.SortHeapPages = maxPages(4, factPages/40)
	db.Catalog.Config = cfg

	if opts.Hazards {
		InstallHazards(db)
	}
	return db, nil
}

func maxPages(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// InstallHazards distorts what the optimizer believes without changing the
// data: the configured transfer rate overstates the true sequential read
// cost by 3x (the Figure 7 pattern). Fact-table statistics staleness needs
// no synthetic distortion any more — Generate collects statistics before the
// recent-window flood, so the snapshot is genuinely stale.
func InstallHazards(db *storage.Database) {
	cat := db.Catalog
	cfg := cat.Config
	cfg.RuntimeTransferRate = cfg.TransferRate
	cfg.TransferRate = cfg.TransferRate * 3.0
	cat.Config = cfg
}

// SaleDateRange returns the d_date_sk range [lo, hi] holding the
// recent-window flood (the bulk of the fact rows), and the full dimension
// range [1, max]. Queries filtering on ranges around this window reproduce
// the misestimation of Figure 8.
func SaleDateRange(db *storage.Database) (lo, hi, max int64) {
	n := int64(db.RowCount(DateDim))
	window := n / 12
	if window < 1 {
		window = 1
	}
	return n - window + 1, n, n
}

// WideDateRange returns the d_date_sk range of the Figure 8 wide-range
// variant: it covers the entire recent sale window plus a tail of the old
// calendar — months of dates, all of the actual sales — yet a statistics
// snapshot taken before the flood believes it matches only the thin
// historical tail.
func WideDateRange(db *storage.Database) (lo, hi int64) {
	winLo, winHi, max := SaleDateRange(db)
	histSpan := max - (winHi - winLo + 1)
	tail := histSpan / 30
	if tail < 1 {
		tail = 1
	}
	lo = winLo - tail
	if lo < 1 {
		lo = 1
	}
	return lo, winHi
}
