package tpcds

import (
	"fmt"
	"strings"

	"galo/internal/sqlparser"
	"galo/internal/storage"
)

// Queries returns the 99-query TPC-DS-like workload. The queries are
// generated deterministically from templates that mirror the join shapes of
// the benchmark (star joins of a fact table with its dimensions, snowflake
// chains through customer, multi-fact joins through shared dimensions, and a
// tail of very wide queries — the paper reports TPC-DS join counts from 1 to
// 31 tables).
func Queries() []*sqlparser.Query {
	var out []*sqlparser.Query
	add := func(sql string) {
		q := sqlparser.MustParse(sql)
		q.Name = fmt.Sprintf("TPCDS.Q%02d", len(out)+1)
		out = append(out, q)
	}

	cat := func(i int) string { return Categories[i%len(Categories)] }
	state := func(i int) string { return States[i%len(States)] }

	// --- 0/1-join queries (8) ------------------------------------------------
	for i := 0; i < 4; i++ {
		add(fmt.Sprintf(`SELECT i_item_id, i_item_desc, i_current_price FROM item
			WHERE i_category = '%s' AND i_current_price > %d`, cat(i), 5+i*20))
	}
	for i := 0; i < 2; i++ {
		add(fmt.Sprintf(`SELECT ws_quantity, ws_sales_price, i_item_desc
			FROM web_sales, item WHERE ws_item_sk = i_item_sk AND i_category = '%s'`, cat(i+2)))
	}
	for i := 0; i < 2; i++ {
		add(fmt.Sprintf(`SELECT ss_quantity, ss_sales_price FROM store_sales, date_dim
			WHERE ss_sold_date_sk = d_date_sk AND d_year >= %d`, 1990+i*3))
	}

	// --- 2-join queries (12) --------------------------------------------------
	for i := 0; i < 6; i++ {
		// The Figure 3 query shape: web_sales x item x date_dim.
		add(fmt.Sprintf(`SELECT i_item_desc, i_category, i_class, i_current_price
			FROM web_sales, item, date_dim
			WHERE ws_item_sk = i_item_sk AND i_category = '%s'
			AND ws_sold_date_sk = d_date_sk AND d_year >= %d`, cat(i), 1988+i*2))
	}
	for i := 0; i < 6; i++ {
		// The Figure 8 query shape: store_sales x date_dim over a date range
		// far wider than where sales exist, then joined with item.
		add(fmt.Sprintf(`SELECT i_item_desc, ss_quantity, ss_sales_price
			FROM store_sales, date_dim, item
			WHERE ss_sold_date_sk = d_date_sk AND ss_item_sk = i_item_sk
			AND d_year >= %d AND i_category = '%s'`, 1990+i, cat(i+3)))
	}

	// --- 3-4 join queries (20) ------------------------------------------------
	for i := 0; i < 7; i++ {
		// The Figure 4 query shape: customer_address, catalog_sales (twice,
		// via a self join on the item key), date_dim.
		add(fmt.Sprintf(`SELECT CS1.cs_quantity, CS2.cs_sales_price, CA.ca_state
			FROM customer_address CA, catalog_sales CS1, date_dim D, catalog_sales CS2
			WHERE CS1.cs_bill_addr_sk = CA.ca_address_sk
			AND CS2.cs_item_sk = CS1.cs_item_sk
			AND CS2.cs_sold_date_sk = D.d_date_sk
			AND D.d_year >= %d AND CA.ca_state = '%s'`, 1992+i, state(i)))
	}
	for i := 0; i < 7; i++ {
		// The Figure 7 query shape: store_sales with customer demographics,
		// store and customer_address.
		add(fmt.Sprintf(`SELECT ss_quantity, cd_purchase_estimate, s_store_name
			FROM customer_address, customer_demographics, store, store_sales
			WHERE ss_addr_sk = ca_address_sk AND ss_cdemo_sk = cd_demo_sk
			AND ss_store_sk = s_store_sk
			AND cd_education_status = '%s' AND ca_state = '%s'`,
			[]string{"College", "4 yr Degree", "Advanced Degree", "Secondary", "Primary", "2 yr Degree", "College"}[i], state(i+1)))
	}
	for i := 0; i < 6; i++ {
		add(fmt.Sprintf(`SELECT i_item_desc, d_year, ss_net_profit, s_store_name
			FROM store_sales, item, date_dim, store
			WHERE ss_item_sk = i_item_sk AND ss_sold_date_sk = d_date_sk AND ss_store_sk = s_store_sk
			AND i_category = '%s' AND d_moy = %d`, cat(i+1), i+3))
	}

	// --- 5-6 join snowflake queries (30) ---------------------------------------
	for i := 0; i < 15; i++ {
		add(fmt.Sprintf(`SELECT i_item_desc, c_last_name, ca_state, ss_sales_price
			FROM store_sales, item, date_dim, customer, customer_address
			WHERE ss_item_sk = i_item_sk AND ss_sold_date_sk = d_date_sk
			AND ss_customer_sk = c_customer_sk AND c_current_addr_sk = ca_address_sk
			AND i_category = '%s' AND ca_state = '%s' AND d_year >= %d`,
			cat(i), state(i), 1990+i%8))
	}
	for i := 0; i < 15; i++ {
		add(fmt.Sprintf(`SELECT i_item_desc, c_last_name, cd_education_status, cs_sales_price
			FROM catalog_sales, item, date_dim, customer, customer_demographics, customer_address
			WHERE cs_item_sk = i_item_sk AND cs_sold_date_sk = d_date_sk
			AND cs_bill_customer_sk = c_customer_sk AND c_current_cdemo_sk = cd_demo_sk
			AND c_current_addr_sk = ca_address_sk
			AND i_category = '%s' AND cd_gender = '%s' AND ca_state = '%s'`,
			cat(i+2), []string{"M", "F"}[i%2], state(i+3)))
	}

	// --- multi-fact queries (20) -----------------------------------------------
	for i := 0; i < 10; i++ {
		add(fmt.Sprintf(`SELECT I.i_item_desc, SS.ss_quantity, WS.ws_quantity
			FROM store_sales SS, web_sales WS, item I, date_dim D1, date_dim D2
			WHERE SS.ss_item_sk = I.i_item_sk AND WS.ws_item_sk = I.i_item_sk
			AND SS.ss_sold_date_sk = D1.d_date_sk AND WS.ws_sold_date_sk = D2.d_date_sk
			AND I.i_category = '%s' AND D1.d_year >= %d`, cat(i), 1991+i%6))
	}
	for i := 0; i < 10; i++ {
		add(fmt.Sprintf(`SELECT I.i_item_desc, CS.cs_quantity, SS.ss_quantity, CA.ca_state
			FROM catalog_sales CS, store_sales SS, item I, date_dim D1, customer C, customer_address CA
			WHERE CS.cs_item_sk = I.i_item_sk AND SS.ss_item_sk = I.i_item_sk
			AND CS.cs_sold_date_sk = D1.d_date_sk
			AND SS.ss_customer_sk = C.c_customer_sk AND C.c_current_addr_sk = CA.ca_address_sk
			AND I.i_category = '%s' AND CA.ca_state = '%s'`, cat(i+4), state(i)))
	}

	// --- very wide queries (9): up to ~32 table references ---------------------
	for _, n := range []int{9, 12, 15, 17, 20, 23, 26, 29, 32} {
		q := WideQuery(n)
		q.Name = fmt.Sprintf("TPCDS.Q%02d", len(out)+1)
		out = append(out, q)
	}

	return out
}

// WideQuery builds a query with exactly n table references by chaining fact
// tables through a shared ITEM dimension, each fact bringing its own
// date/customer/address dimensions. It reproduces the very wide joins the
// paper reports for TPC-DS (up to 31 tables joined).
func WideQuery(n int) *sqlparser.Query {
	if n < 2 {
		n = 2
	}
	facts := []struct {
		table, item, date, cust string
	}{
		{StoreSales, "ss_item_sk", "ss_sold_date_sk", "ss_customer_sk"},
		{WebSales, "ws_item_sk", "ws_sold_date_sk", "ws_bill_customer_sk"},
		{CatalogSales, "cs_item_sk", "cs_sold_date_sk", "cs_bill_customer_sk"},
	}
	type ref struct{ table, alias string }
	refs := []ref{{Item, "I0"}}
	var preds []string
	var selects []string
	selects = append(selects, "I0.i_item_desc")
	preds = append(preds, "I0.i_category = 'Music'")

	block := 0
	for len(refs) < n {
		f := facts[block%len(facts)]
		fa := fmt.Sprintf("F%d", block+1)
		refs = append(refs, ref{f.table, fa})
		preds = append(preds, fmt.Sprintf("%s.%s = I0.i_item_sk", fa, f.item))
		selects = append(selects, fmt.Sprintf("%s.%s", fa, f.item))
		if len(refs) < n {
			da := fmt.Sprintf("D%d", block+1)
			refs = append(refs, ref{DateDim, da})
			preds = append(preds, fmt.Sprintf("%s.%s = %s.d_date_sk", fa, f.date, da))
			if block == 0 {
				preds = append(preds, fmt.Sprintf("%s.d_year >= 1990", da))
			}
		}
		if len(refs) < n {
			ca := fmt.Sprintf("C%d", block+1)
			refs = append(refs, ref{Customer, ca})
			preds = append(preds, fmt.Sprintf("%s.%s = %s.c_customer_sk", fa, f.cust, ca))
		}
		if len(refs) < n {
			aa := fmt.Sprintf("A%d", block+1)
			refs = append(refs, ref{CustomerAddress, aa})
			preds = append(preds, fmt.Sprintf("C%d.c_current_addr_sk = %s.ca_address_sk", block+1, aa))
		}
		block++
	}

	fromParts := make([]string, len(refs))
	for i, r := range refs {
		fromParts[i] = r.table + " " + r.alias
	}
	sql := fmt.Sprintf("SELECT %s FROM %s WHERE %s",
		strings.Join(selects, ", "),
		strings.Join(fromParts, ", "),
		strings.Join(preds, " AND "))
	q := sqlparser.MustParse(sql)
	q.Name = fmt.Sprintf("TPCDS.WIDE%02d", n)
	return q
}

// Figure-specific queries used by the experiments and examples. Each
// reproduces the join shape of the corresponding figure in the paper.

// Fig3Query is the sample query of Figure 3a (web_sales x item x date_dim).
func Fig3Query() *sqlparser.Query {
	q := sqlparser.MustParse(`SELECT i_item_desc, i_category, i_class, i_current_price
		FROM web_sales, item, date_dim
		WHERE ws_item_sk = i_item_sk AND i_category = 'Jewelry'
		AND ws_sold_date_sk = d_date_sk AND d_year >= 1995`)
	q.Name = "TPCDS.FIG3"
	return q
}

// Fig4Query reproduces the hash-join bloom-filter problem pattern of Figure 4
// (customer_address Q1, catalog_sales Q2, date_dim Q3, catalog_sales Q4).
func Fig4Query() *sqlparser.Query {
	q := sqlparser.MustParse(`SELECT CS1.cs_quantity, CS2.cs_sales_price, CA.ca_state
		FROM customer_address CA, catalog_sales CS1, date_dim D, catalog_sales CS2
		WHERE CS1.cs_bill_addr_sk = CA.ca_address_sk
		AND CS2.cs_item_sk = CS1.cs_item_sk
		AND CS2.cs_sold_date_sk = D.d_date_sk
		AND D.d_year >= 1994 AND CA.ca_state = 'CA'`)
	q.Name = "TPCDS.FIG4"
	return q
}

// Fig7Query reproduces the transfer-rate problem pattern of Figure 7
// (store_sales with customer_demographics, store and customer_address).
func Fig7Query() *sqlparser.Query {
	q := sqlparser.MustParse(`SELECT ss_quantity, cd_purchase_estimate, s_store_name
		FROM customer_address, customer_demographics, store, store_sales
		WHERE ss_addr_sk = ca_address_sk AND ss_cdemo_sk = cd_demo_sk
		AND ss_store_sk = s_store_sk
		AND cd_education_status = 'College' AND ca_state = 'CA'`)
	q.Name = "TPCDS.FIG7"
	return q
}

// Fig8Query reproduces the sorting / merge-join early-out pattern of Figure 8
// (store_sales x date_dim over a wide date range, joined with item).
func Fig8Query() *sqlparser.Query {
	q := sqlparser.MustParse(`SELECT i_item_desc, ss_quantity, ss_sales_price
		FROM store_sales, date_dim, item
		WHERE ss_sold_date_sk = d_date_sk AND ss_item_sk = i_item_sk
		AND d_year >= 1990 AND i_category = 'Jewelry'`)
	q.Name = "TPCDS.FIG8"
	return q
}

// Fig8WideQuery is the wide-range Figure 8 variant over the given database:
// store_sales joined with date_dim restricted to WideDateRange — months of
// dates covering every actual sale — then joined with item. The rewrite tier
// carries the range transitively onto ss_sold_date_sk, where the stale
// fact-side histogram (collected before the recent-window flood) says almost
// nothing matches; the believed-tiny sorted index access then lets MSJOIN
// claim sort-avoidance and win the plan, while at runtime the access floods
// and a hash join over scans is decisively faster. This is the honest,
// deterministic misestimation the learning engine harvests.
func Fig8WideQuery(db *storage.Database) *sqlparser.Query {
	lo, hi := WideDateRange(db)
	q := sqlparser.MustParse(fmt.Sprintf(`SELECT i_item_desc, ss_quantity, ss_sales_price
		FROM store_sales, date_dim, item
		WHERE ss_sold_date_sk = d_date_sk AND ss_item_sk = i_item_sk
		AND d_date_sk BETWEEN %d AND %d AND i_category = 'Jewelry'`, lo, hi))
	q.Name = "TPCDS.FIG8W"
	return q
}

// Fig8WideVariants returns n wide-range Figure 8 variants whose ranges start
// progressively deeper in the old calendar while always covering the whole
// recent sale window — the spread of reduction factors the learning engine
// varies predicates over.
func Fig8WideVariants(db *storage.Database, n int) []*sqlparser.Query {
	winLo, winHi, max := SaleDateRange(db)
	histSpan := max - (winHi - winLo + 1)
	var out []*sqlparser.Query
	for i := 0; i < n; i++ {
		// Tails from ~2% up to ~6% of the old calendar: every variant sits
		// inside the misestimation window (the stale histogram believes the
		// sorted fact access is nearly free), and their believed cardinalities
		// stay within one template's bounds band (~3x spread), so a template
		// learned from one variant rescues the others.
		tail := histSpan * int64(i+2) / int64(20*(n+1))
		lo := winLo - tail
		if lo < 1 {
			lo = 1
		}
		q := sqlparser.MustParse(fmt.Sprintf(`SELECT i_item_desc, ss_quantity, ss_sales_price
			FROM store_sales, date_dim, item
			WHERE ss_sold_date_sk = d_date_sk AND ss_item_sk = i_item_sk
			AND d_date_sk BETWEEN %d AND %d AND i_category = '%s'`,
			lo, winHi, Categories[i%len(Categories)]))
		q.Name = fmt.Sprintf("TPCDS.FIG8W%02d", i+1)
		out = append(out, q)
	}
	return out
}
