// Package tpcds provides the synthetic TPC-DS-like workload used by the
// paper's evaluation: a star/snowflake schema, a deterministic data generator
// with the skew and correlation that defeat a cost-based optimizer's
// independence and uniformity assumptions, and a 99-query workload.
//
// The real benchmark's 1 GB dsdgen data and 99 official queries are not
// available offline; this package generates a scaled-down equivalent whose
// join shapes match the paper's problem patterns (Figures 4 and 8).
package tpcds

import "galo/internal/catalog"

// Table names.
const (
	StoreSales           = "STORE_SALES"
	CatalogSales         = "CATALOG_SALES"
	WebSales             = "WEB_SALES"
	Item                 = "ITEM"
	DateDim              = "DATE_DIM"
	Customer             = "CUSTOMER"
	CustomerAddress      = "CUSTOMER_ADDRESS"
	CustomerDemographics = "CUSTOMER_DEMOGRAPHICS"
	Store                = "STORE"
	Promotion            = "PROMOTION"
)

// Schema returns the TPC-DS-like schema with its indexes. Cluster ratios are
// chosen so that fact-table date indexes are poorly clustered — the source of
// the paper's Figure 4 random-I/O flooding pattern — while surrogate-key
// indexes on dimensions are well clustered.
func Schema() *catalog.Schema {
	s := catalog.NewSchema("TPCDS")

	item := catalog.NewTable(Item,
		catalog.Column{Name: "i_item_sk", Type: catalog.KindInt},
		catalog.Column{Name: "i_item_id", Type: catalog.KindString},
		catalog.Column{Name: "i_item_desc", Type: catalog.KindString},
		catalog.Column{Name: "i_category", Type: catalog.KindString},
		catalog.Column{Name: "i_class", Type: catalog.KindString},
		catalog.Column{Name: "i_brand", Type: catalog.KindString},
		catalog.Column{Name: "i_current_price", Type: catalog.KindFloat},
		catalog.Column{Name: "i_wholesale_cost", Type: catalog.KindFloat},
	)
	item.PrimaryKey = []string{"I_ITEM_SK"}
	mustIndex(item, catalog.Index{Name: "I_ITEM_SK_IDX", Columns: []string{"i_item_sk"}, Unique: true, ClusterRatio: 0.97})
	mustIndex(item, catalog.Index{Name: "I_CATEGORY_IDX", Columns: []string{"i_category"}, ClusterRatio: 0.35})
	s.AddTable(item)

	dateDim := catalog.NewTable(DateDim,
		catalog.Column{Name: "d_date_sk", Type: catalog.KindInt},
		catalog.Column{Name: "d_date", Type: catalog.KindDate},
		catalog.Column{Name: "d_year", Type: catalog.KindInt},
		catalog.Column{Name: "d_moy", Type: catalog.KindInt},
		catalog.Column{Name: "d_dom", Type: catalog.KindInt},
		catalog.Column{Name: "d_day_name", Type: catalog.KindString},
	)
	dateDim.PrimaryKey = []string{"D_DATE_SK"}
	mustIndex(dateDim, catalog.Index{Name: "D_DATE_SK", Columns: []string{"d_date_sk"}, Unique: true, ClusterRatio: 0.99})
	mustIndex(dateDim, catalog.Index{Name: "D_DATE_IDX", Columns: []string{"d_date"}, ClusterRatio: 0.99})
	s.AddTable(dateDim)

	storeSales := catalog.NewTable(StoreSales,
		catalog.Column{Name: "ss_sold_date_sk", Type: catalog.KindInt},
		catalog.Column{Name: "ss_item_sk", Type: catalog.KindInt},
		catalog.Column{Name: "ss_customer_sk", Type: catalog.KindInt},
		catalog.Column{Name: "ss_cdemo_sk", Type: catalog.KindInt},
		catalog.Column{Name: "ss_addr_sk", Type: catalog.KindInt},
		catalog.Column{Name: "ss_store_sk", Type: catalog.KindInt},
		catalog.Column{Name: "ss_quantity", Type: catalog.KindInt},
		catalog.Column{Name: "ss_sales_price", Type: catalog.KindFloat},
		catalog.Column{Name: "ss_net_profit", Type: catalog.KindFloat},
	)
	mustIndex(storeSales, catalog.Index{Name: "SS_SOLD_DATE_IDX", Columns: []string{"ss_sold_date_sk"}, ClusterRatio: 0.20})
	mustIndex(storeSales, catalog.Index{Name: "SS_ITEM_IDX", Columns: []string{"ss_item_sk"}, ClusterRatio: 0.25})
	mustIndex(storeSales, catalog.Index{Name: "SS_CUSTOMER_IDX", Columns: []string{"ss_customer_sk"}, ClusterRatio: 0.15})
	s.AddTable(storeSales)

	catalogSales := catalog.NewTable(CatalogSales,
		catalog.Column{Name: "cs_sold_date_sk", Type: catalog.KindInt},
		catalog.Column{Name: "cs_item_sk", Type: catalog.KindInt},
		catalog.Column{Name: "cs_bill_customer_sk", Type: catalog.KindInt},
		catalog.Column{Name: "cs_bill_addr_sk", Type: catalog.KindInt},
		catalog.Column{Name: "cs_bill_cdemo_sk", Type: catalog.KindInt},
		catalog.Column{Name: "cs_quantity", Type: catalog.KindInt},
		catalog.Column{Name: "cs_sales_price", Type: catalog.KindFloat},
	)
	mustIndex(catalogSales, catalog.Index{Name: "CS_SOLD_DATE_IDX", Columns: []string{"cs_sold_date_sk"}, ClusterRatio: 0.12})
	mustIndex(catalogSales, catalog.Index{Name: "CS_ITEM_IDX", Columns: []string{"cs_item_sk"}, ClusterRatio: 0.22})
	mustIndex(catalogSales, catalog.Index{Name: "CS_BILL_ADDR_IDX", Columns: []string{"cs_bill_addr_sk"}, ClusterRatio: 0.10})
	s.AddTable(catalogSales)

	webSales := catalog.NewTable(WebSales,
		catalog.Column{Name: "ws_sold_date_sk", Type: catalog.KindInt},
		catalog.Column{Name: "ws_item_sk", Type: catalog.KindInt},
		catalog.Column{Name: "ws_bill_customer_sk", Type: catalog.KindInt},
		catalog.Column{Name: "ws_quantity", Type: catalog.KindInt},
		catalog.Column{Name: "ws_sales_price", Type: catalog.KindFloat},
	)
	mustIndex(webSales, catalog.Index{Name: "WS_SOLD_DATE_IDX", Columns: []string{"ws_sold_date_sk"}, ClusterRatio: 0.18})
	mustIndex(webSales, catalog.Index{Name: "WS_ITEM_IDX", Columns: []string{"ws_item_sk"}, ClusterRatio: 0.3})
	s.AddTable(webSales)

	customer := catalog.NewTable(Customer,
		catalog.Column{Name: "c_customer_sk", Type: catalog.KindInt},
		catalog.Column{Name: "c_current_addr_sk", Type: catalog.KindInt},
		catalog.Column{Name: "c_current_cdemo_sk", Type: catalog.KindInt},
		catalog.Column{Name: "c_first_name", Type: catalog.KindString},
		catalog.Column{Name: "c_last_name", Type: catalog.KindString},
		catalog.Column{Name: "c_birth_year", Type: catalog.KindInt},
	)
	customer.PrimaryKey = []string{"C_CUSTOMER_SK"}
	mustIndex(customer, catalog.Index{Name: "C_CUSTOMER_SK_IDX", Columns: []string{"c_customer_sk"}, Unique: true, ClusterRatio: 0.96})
	s.AddTable(customer)

	address := catalog.NewTable(CustomerAddress,
		catalog.Column{Name: "ca_address_sk", Type: catalog.KindInt},
		catalog.Column{Name: "ca_state", Type: catalog.KindString},
		catalog.Column{Name: "ca_city", Type: catalog.KindString},
		catalog.Column{Name: "ca_country", Type: catalog.KindString},
		catalog.Column{Name: "ca_gmt_offset", Type: catalog.KindInt},
	)
	address.PrimaryKey = []string{"CA_ADDRESS_SK"}
	mustIndex(address, catalog.Index{Name: "CA_ADDRESS_SK_IDX", Columns: []string{"ca_address_sk"}, Unique: true, ClusterRatio: 0.95})
	mustIndex(address, catalog.Index{Name: "CA_STATE_IDX", Columns: []string{"ca_state"}, ClusterRatio: 0.3})
	s.AddTable(address)

	demo := catalog.NewTable(CustomerDemographics,
		catalog.Column{Name: "cd_demo_sk", Type: catalog.KindInt},
		catalog.Column{Name: "cd_gender", Type: catalog.KindString},
		catalog.Column{Name: "cd_marital_status", Type: catalog.KindString},
		catalog.Column{Name: "cd_education_status", Type: catalog.KindString},
		catalog.Column{Name: "cd_purchase_estimate", Type: catalog.KindInt},
	)
	demo.PrimaryKey = []string{"CD_DEMO_SK"}
	mustIndex(demo, catalog.Index{Name: "CD_DEMO_SK_IDX", Columns: []string{"cd_demo_sk"}, Unique: true, ClusterRatio: 0.94})
	s.AddTable(demo)

	store := catalog.NewTable(Store,
		catalog.Column{Name: "s_store_sk", Type: catalog.KindInt},
		catalog.Column{Name: "s_store_name", Type: catalog.KindString},
		catalog.Column{Name: "s_state", Type: catalog.KindString},
		catalog.Column{Name: "s_floor_space", Type: catalog.KindInt},
	)
	store.PrimaryKey = []string{"S_STORE_SK"}
	mustIndex(store, catalog.Index{Name: "S_STORE_SK_IDX", Columns: []string{"s_store_sk"}, Unique: true, ClusterRatio: 0.99})
	s.AddTable(store)

	promo := catalog.NewTable(Promotion,
		catalog.Column{Name: "p_promo_sk", Type: catalog.KindInt},
		catalog.Column{Name: "p_channel_email", Type: catalog.KindString},
		catalog.Column{Name: "p_channel_tv", Type: catalog.KindString},
		catalog.Column{Name: "p_cost", Type: catalog.KindFloat},
	)
	promo.PrimaryKey = []string{"P_PROMO_SK"}
	mustIndex(promo, catalog.Index{Name: "P_PROMO_SK_IDX", Columns: []string{"p_promo_sk"}, Unique: true, ClusterRatio: 0.99})
	s.AddTable(promo)

	return s
}

func mustIndex(t *catalog.Table, idx catalog.Index) {
	if err := t.AddIndex(idx); err != nil {
		panic(err)
	}
}

// Categories are the item categories used by the generator; "Jewelry" and
// "Music" appear in the paper's running examples.
var Categories = []string{"Jewelry", "Music", "Books", "Sports", "Home", "Electronics", "Shoes", "Women", "Men", "Children"}

// States used for customer addresses, skewed toward the first few.
var States = []string{"CA", "TX", "NY", "FL", "WA", "IL", "GA", "OH", "MI", "NC"}
