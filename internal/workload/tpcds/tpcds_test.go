package tpcds

import (
	"testing"

	"galo/internal/catalog"
	"galo/internal/sqlparser"
	"galo/internal/storage"
)

func smallDB(t *testing.T) *storage.Database {
	t.Helper()
	db, err := Generate(GenOptions{Seed: 1, Scale: 0.1, Hazards: true})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return db
}

func TestSchemaHasAllTables(t *testing.T) {
	s := Schema()
	for _, name := range []string{StoreSales, CatalogSales, WebSales, Item, DateDim,
		Customer, CustomerAddress, CustomerDemographics, Store, Promotion} {
		tbl := s.Table(name)
		if tbl == nil {
			t.Errorf("missing table %s", name)
			continue
		}
		if len(tbl.Columns) < 3 {
			t.Errorf("%s has only %d columns", name, len(tbl.Columns))
		}
	}
	// Fact-table date indexes are poorly clustered (Figure 4 precondition).
	cs := s.Table(CatalogSales).IndexOn("CS_SOLD_DATE_SK")
	if cs == nil || cs.ClusterRatio > 0.3 {
		t.Errorf("catalog_sales date index should be poorly clustered: %+v", cs)
	}
}

func TestGenerateIsDeterministic(t *testing.T) {
	a, err := Generate(GenOptions{Seed: 42, Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(GenOptions{Seed: 42, Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	for _, tbl := range []string{Item, StoreSales, CustomerAddress} {
		if a.RowCount(tbl) != b.RowCount(tbl) {
			t.Errorf("%s row counts differ across runs: %d vs %d", tbl, a.RowCount(tbl), b.RowCount(tbl))
		}
	}
	ra := a.Table(Item).Rows[0]
	rb := b.Table(Item).Rows[0]
	for i := range ra {
		if ra[i].AsString() != rb[i].AsString() {
			t.Fatalf("row content differs at column %d: %v vs %v", i, ra[i], rb[i])
		}
	}
}

func TestGenerateScalesRowCounts(t *testing.T) {
	small, err := Generate(GenOptions{Seed: 7, Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Generate(GenOptions{Seed: 7, Scale: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if small.RowCount(StoreSales) >= big.RowCount(StoreSales) {
		t.Errorf("scale did not increase store_sales rows: %d vs %d",
			small.RowCount(StoreSales), big.RowCount(StoreSales))
	}
	if small.RowCount(Store) < 4 {
		t.Errorf("tiny tables should keep a minimum row count, got %d", small.RowCount(Store))
	}
}

func TestGenerateCollectsStatsAndHazards(t *testing.T) {
	db := smallDB(t)
	ts := db.Catalog.Stats(CatalogSales)
	if ts == nil {
		t.Fatal("no stats for catalog_sales")
	}
	// The statistics snapshot predates the recent-window flood, so it is
	// genuinely stale: the recorded cardinality is the historical wave only.
	actual := int64(db.RowCount(CatalogSales))
	if ts.Cardinality >= actual/2 {
		t.Errorf("hazards should leave a stale cardinality snapshot: recorded %d of %d", ts.Cardinality, actual)
	}
	// The stale histogram on the fact date key believes the sale window holds
	// almost nothing.
	cs := ts.ColumnStats("CS_SOLD_DATE_SK")
	if cs == nil || cs.Histogram == nil {
		t.Fatal("ANALYZE histograms missing for catalog_sales date key")
	}
	lo, hi, _ := SaleDateRange(db)
	loV, hiV := catalog.Int(lo), catalog.Int(hi)
	if frac := cs.Histogram.RangeFraction(&loV, &hiV); frac > 0.1 {
		t.Errorf("stale histogram believes %.2f of sales are in the flood window", frac)
	}
	cfg := db.Catalog.Config
	if cfg.RuntimeTransferRate <= 0 || cfg.TransferRate <= cfg.RuntimeTransferRate {
		t.Errorf("hazards should overstate the configured transfer rate: %+v", cfg)
	}
	// Without hazards, estimates are honest: full cardinality and a
	// histogram that sees the flood.
	clean, err := Generate(GenOptions{Seed: 7, Scale: 0.05, Hazards: false})
	if err != nil {
		t.Fatal(err)
	}
	fresh := clean.Catalog.Stats(CatalogSales)
	if fresh.Cardinality != int64(clean.RowCount(CatalogSales)) {
		t.Errorf("hazard-free generation should keep fresh stats: %d of %d",
			fresh.Cardinality, clean.RowCount(CatalogSales))
	}
	flo, fhi, _ := SaleDateRange(clean)
	floV, fhiV := catalog.Int(flo), catalog.Int(fhi)
	if frac := fresh.ColumnStats("CS_SOLD_DATE_SK").Histogram.RangeFraction(&floV, &fhiV); frac < 0.5 {
		t.Errorf("fresh histogram should see the flood window: %.2f", frac)
	}
}

func TestSalesConcentratedInRecentDates(t *testing.T) {
	db := smallDB(t)
	lo, hi, max := SaleDateRange(db)
	if hi != max || lo <= 0 || lo >= hi {
		t.Fatalf("SaleDateRange = %d..%d of %d", lo, hi, max)
	}
	// The flood wave concentrates in the sale window: at least the
	// non-historical fraction of store_sales dates falls inside it, while the
	// historical wave spreads over the old calendar.
	ssDef := db.Table(StoreSales).Def
	ci := ssDef.ColumnIndex("SS_SOLD_DATE_SK")
	inWindow, older := 0, 0
	for _, row := range db.Table(StoreSales).Rows {
		d := row[ci].AsInt()
		if d >= lo && d <= hi {
			inWindow++
		} else {
			older++
		}
	}
	total := inWindow + older
	if float64(inWindow) < float64(total)*(1-HistoricalFraction) {
		t.Errorf("flood not concentrated: %d of %d rows in window", inWindow, total)
	}
	if older == 0 {
		t.Errorf("historical wave missing: all %d rows in the sale window", total)
	}
	// The dimension is an order of magnitude wider than the sale window — the
	// Figure 8 precondition.
	if float64(hi-lo+1) > float64(max)*0.2 {
		t.Errorf("sale window too wide: %d of %d", hi-lo+1, max)
	}
}

func TestItemCategoryClassCorrelation(t *testing.T) {
	db := smallDB(t)
	itemDef := db.Table(Item).Def
	catIdx, classIdx := itemDef.ColumnIndex("I_CATEGORY"), itemDef.ColumnIndex("I_CLASS")
	for _, row := range db.Table(Item).Rows {
		cat, class := row[catIdx].S, row[classIdx].S
		if len(class) < len(cat) || class[:len(cat)] != cat {
			t.Fatalf("class %q does not embed category %q (correlation broken)", class, cat)
		}
	}
}

func TestQueriesAreExactly99AndValid(t *testing.T) {
	qs := Queries()
	if len(qs) != 99 {
		t.Fatalf("Queries() returned %d queries, want 99", len(qs))
	}
	schema := Schema()
	names := map[string]bool{}
	maxRefs := 0
	for _, q := range qs {
		if q.Name == "" || names[q.Name] {
			t.Errorf("query name missing or duplicated: %q", q.Name)
		}
		names[q.Name] = true
		if err := sqlparser.Resolve(q.Clone(), schema); err != nil {
			t.Errorf("query %s does not resolve: %v", q.Name, err)
		}
		if len(q.From) > maxRefs {
			maxRefs = len(q.From)
		}
	}
	if maxRefs < 30 {
		t.Errorf("workload should include very wide queries (max refs = %d)", maxRefs)
	}
}

func TestWideQueryReferenceCount(t *testing.T) {
	schema := Schema()
	for _, n := range []int{2, 5, 13, 32} {
		q := WideQuery(n)
		if len(q.From) != n {
			t.Errorf("WideQuery(%d) has %d references", n, len(q.From))
		}
		if err := sqlparser.Resolve(q.Clone(), schema); err != nil {
			t.Errorf("WideQuery(%d) does not resolve: %v", n, err)
		}
	}
	if got := len(WideQuery(0).From); got != 2 {
		t.Errorf("WideQuery clamps to 2 refs, got %d", got)
	}
}

func TestFigureQueriesResolve(t *testing.T) {
	schema := Schema()
	for _, q := range []*sqlparser.Query{Fig3Query(), Fig4Query(), Fig7Query(), Fig8Query()} {
		if err := sqlparser.Resolve(q.Clone(), schema); err != nil {
			t.Errorf("%s does not resolve: %v", q.Name, err)
		}
	}
	if Fig4Query().NumJoins() != 3 {
		t.Errorf("Fig4Query joins = %d, want 3", Fig4Query().NumJoins())
	}
	if len(Fig4Query().From) != 4 {
		t.Errorf("Fig4Query should reference catalog_sales twice")
	}
}
