// Package scenario defines the common contract of the workload zoo: every
// workload is a deterministic data generator with a built-in estimation
// hazard, a set of hazard queries whose cardinality estimates go badly wrong
// under default statistics, and a deterministic statistical remedy ("Learn")
// that fixes the estimates without touching the data. The gap between the
// pre-learning and post-learning q-error is what makes a scenario
// adversarial rather than decorative, and it is gated in tier-1 tests
// (internal/experiments) and BENCH_workloads.json.
package scenario

import (
	"hash/fnv"

	"galo/internal/optimizer"
	"galo/internal/sqlparser"
	"galo/internal/storage"
)

// GenOptions controls generation of a zoo scenario's dataset. It mirrors the
// tpcds generator's contract: the same options always produce a byte-identical
// database and query list at any worker count.
type GenOptions struct {
	// Seed makes generation deterministic.
	Seed int64
	// Scale multiplies the scenario's default row counts. Scenario-intrinsic
	// dimensions that the hazard depends on (calendar depth, tenant count,
	// genre fan-out) deliberately do NOT scale with it, so the hazard fires
	// at any scale.
	Scale float64
	// Hazards, when true (the usual case), leaves the scenario's estimation
	// hazard armed: statistics are collected in whatever blind-spotted way
	// the scenario prescribes (stale snapshot, no correlation stats). When
	// false, generation applies the remedy up front, producing the control
	// dataset the post-learning gate compares against.
	Hazards bool
}

// Scenario is one workload of the zoo.
type Scenario interface {
	// Name is the registry key ("ohlc", "joblike", "trace").
	Name() string
	// Hazard is a one-line description of the estimation hazard.
	Hazard() string
	// DefaultGen returns the options that make the hazard fire at a
	// laptop-friendly size.
	DefaultGen() GenOptions
	// Generate builds the dataset, collects statistics per the hazard
	// prescription, and sizes the system configuration.
	Generate(opts GenOptions) (*storage.Database, error)
	// HazardQueries returns up to n deterministic queries over the dataset
	// whose base-table cardinality estimates are badly wrong pre-learning.
	HazardQueries(db *storage.Database, n int) []*sqlparser.Query
	// Learn applies the scenario's deterministic statistical remedy (refresh
	// the stale snapshot, collect correlation statistics) and returns the
	// optimizer options that consult the new statistics. It never modifies
	// stored rows.
	Learn(db *storage.Database) (optimizer.Options, error)
}

// Fingerprint hashes every table, row and value of the database (table names
// in sorted order, rows in insertion order) into one 64-bit FNV-1a digest.
// Two databases with the same fingerprint are byte-identical for the
// purposes of the determinism gates.
func Fingerprint(db *storage.Database) uint64 {
	h := fnv.New64a()
	for _, name := range db.TableNames() {
		h.Write([]byte(name))
		h.Write([]byte{0})
		t := db.Table(name)
		if t == nil {
			continue
		}
		for _, row := range t.Rows {
			for _, v := range row {
				h.Write([]byte(v.Key()))
				h.Write([]byte{'|'})
			}
			h.Write([]byte{'\n'})
		}
	}
	return h.Sum64()
}

// FingerprintQueries hashes a query list (names and rendered SQL, in order)
// into one 64-bit FNV-1a digest.
func FingerprintQueries(qs []*sqlparser.Query) uint64 {
	h := fnv.New64a()
	for _, q := range qs {
		h.Write([]byte(q.Name))
		h.Write([]byte{0})
		h.Write([]byte(q.SQL()))
		h.Write([]byte{'\n'})
	}
	return h.Sum64()
}
