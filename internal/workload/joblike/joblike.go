// Package joblike provides the correlated-join workload of the zoo, modeled
// on the Join Order Benchmark's IMDB queries: multi-column predicates whose
// columns are functionally dependent (a movie's certification class is
// determined by its genre; a company's tier by its country). The estimator's
// independence assumption multiplies the two selectivities and underestimates
// every such scan by the genre fan-out (16x), which cascades through the join
// tree — the reproducible target for the ROADMAP learned-estimation item.
// The remedy is DB2-style column-group statistics (stats.Options.ColumnGroups
// + optimizer.Options.UseColumnGroups), which this scenario's Learn applies.
package joblike

import (
	"fmt"

	"galo/internal/catalog"
	"galo/internal/optimizer"
	"galo/internal/sqlparser"
	"galo/internal/stats"
	"galo/internal/storage"
	"galo/internal/workload/scenario"
)

// Table names.
const (
	Movie        = "MOVIE"
	Company      = "COMPANY"
	MovieCompany = "MOVIE_COMPANY"
	CastInfo     = "CAST_INFO"
	Person       = "PERSON"
)

// Genres is the movie genre domain; each genre deterministically implies one
// certification class (ClassOf), a fan-out of len(Genres) that the
// independence assumption divides estimates by.
var Genres = []string{
	"action", "comedy", "drama", "horror", "thriller", "romance", "scifi", "fantasy",
	"crime", "mystery", "western", "musical", "war", "history", "sport", "animation",
}

// Countries is the company country domain; each country implies one market
// tier (TierOf).
var Countries = []string{
	"us", "uk", "de", "fr", "jp", "in", "cn", "kr",
	"it", "es", "br", "mx", "ca", "au", "se", "nl",
}

// ClassOf returns the certification class functionally determined by a
// genre. It is the scenario's oracle: every MOVIE row satisfies
// m_class = ClassOf(m_genre).
func ClassOf(genre string) string { return "cert-" + genre }

// TierOf returns the market tier functionally determined by a country:
// every COMPANY row satisfies co_tier = TierOf(co_country).
func TierOf(country string) string { return "tier-" + country }

// Schema returns the JOB-like schema.
func Schema() *catalog.Schema {
	s := catalog.NewSchema("JOBLIKE")

	movie := catalog.NewTable(Movie,
		catalog.Column{Name: "m_movie_sk", Type: catalog.KindInt},
		catalog.Column{Name: "m_title", Type: catalog.KindString},
		catalog.Column{Name: "m_genre", Type: catalog.KindString},
		catalog.Column{Name: "m_class", Type: catalog.KindString},
		catalog.Column{Name: "m_year", Type: catalog.KindInt},
		catalog.Column{Name: "m_votes", Type: catalog.KindInt},
	)
	movie.PrimaryKey = []string{"M_MOVIE_SK"}
	mustIndex(movie, catalog.Index{Name: "M_MOVIE_SK_IDX", Columns: []string{"m_movie_sk"}, Unique: true, ClusterRatio: 0.98})
	mustIndex(movie, catalog.Index{Name: "M_GENRE_IDX", Columns: []string{"m_genre"}, ClusterRatio: 0.25})
	s.AddTable(movie)

	company := catalog.NewTable(Company,
		catalog.Column{Name: "co_company_sk", Type: catalog.KindInt},
		catalog.Column{Name: "co_name", Type: catalog.KindString},
		catalog.Column{Name: "co_country", Type: catalog.KindString},
		catalog.Column{Name: "co_tier", Type: catalog.KindString},
	)
	company.PrimaryKey = []string{"CO_COMPANY_SK"}
	mustIndex(company, catalog.Index{Name: "CO_COMPANY_SK_IDX", Columns: []string{"co_company_sk"}, Unique: true, ClusterRatio: 0.98})
	s.AddTable(company)

	movieCompany := catalog.NewTable(MovieCompany,
		catalog.Column{Name: "mc_movie_sk", Type: catalog.KindInt},
		catalog.Column{Name: "mc_company_sk", Type: catalog.KindInt},
		catalog.Column{Name: "mc_kind", Type: catalog.KindString},
	)
	mustIndex(movieCompany, catalog.Index{Name: "MC_MOVIE_IDX", Columns: []string{"mc_movie_sk"}, ClusterRatio: 0.40})
	mustIndex(movieCompany, catalog.Index{Name: "MC_COMPANY_IDX", Columns: []string{"mc_company_sk"}, ClusterRatio: 0.15})
	s.AddTable(movieCompany)

	castInfo := catalog.NewTable(CastInfo,
		catalog.Column{Name: "ci_movie_sk", Type: catalog.KindInt},
		catalog.Column{Name: "ci_person_sk", Type: catalog.KindInt},
		catalog.Column{Name: "ci_role", Type: catalog.KindString},
	)
	mustIndex(castInfo, catalog.Index{Name: "CI_MOVIE_IDX", Columns: []string{"ci_movie_sk"}, ClusterRatio: 0.40})
	mustIndex(castInfo, catalog.Index{Name: "CI_PERSON_IDX", Columns: []string{"ci_person_sk"}, ClusterRatio: 0.15})
	s.AddTable(castInfo)

	person := catalog.NewTable(Person,
		catalog.Column{Name: "p_person_sk", Type: catalog.KindInt},
		catalog.Column{Name: "p_name", Type: catalog.KindString},
		catalog.Column{Name: "p_gender", Type: catalog.KindString},
	)
	person.PrimaryKey = []string{"P_PERSON_SK"}
	mustIndex(person, catalog.Index{Name: "P_PERSON_SK_IDX", Columns: []string{"p_person_sk"}, Unique: true, ClusterRatio: 0.98})
	s.AddTable(person)

	return s
}

func mustIndex(t *catalog.Table, idx catalog.Index) {
	if err := t.AddIndex(idx); err != nil {
		panic(err)
	}
}

// ColumnGroups returns the correlation statistics specification that fixes
// this scenario: combined statistics over each functionally dependent pair.
func ColumnGroups() map[string][][]string {
	return map[string][][]string{
		Movie:   {{"m_genre", "m_class"}},
		Company: {{"co_country", "co_tier"}},
	}
}

// workload implements scenario.Scenario.
type workload struct{}

// New returns the JOB-like scenario.
func New() scenario.Scenario { return workload{} }

func (workload) Name() string { return "joblike" }

func (workload) Hazard() string {
	return "functionally dependent predicate pairs: the independence assumption underestimates by the genre fan-out"
}

func (workload) DefaultGen() scenario.GenOptions {
	return scenario.GenOptions{Seed: 20190802, Scale: 1.0, Hazards: true}
}

func rowCounts(scale float64) (nMovies, nCompanies, nMovieCompanies, nCast, nPersons int) {
	if scale <= 0 {
		scale = 1.0
	}
	atLeast := func(n, lo int) int {
		if n < lo {
			return lo
		}
		return n
	}
	nMovies = atLeast(int(8000*scale), 64*len(Genres))
	nCompanies = atLeast(int(800*scale), 8*len(Countries))
	nMovieCompanies = atLeast(int(16000*scale), nMovies)
	nCast = atLeast(int(24000*scale), nMovies)
	nPersons = atLeast(int(4000*scale), 64)
	return
}

// Generate builds the JOB-like database. Statistics are always fresh — the
// hazard here is not staleness but the *kind* of statistics collected: with
// Hazards on, no column-group statistics exist, so the optimizer multiplies
// the functionally dependent selectivities.
func (workload) Generate(opts scenario.GenOptions) (*storage.Database, error) {
	if opts.Scale <= 0 {
		opts.Scale = 1.0
	}
	nMovies, nCompanies, nMovieCompanies, nCast, nPersons := rowCounts(opts.Scale)
	cat := catalog.New(Schema())
	db := storage.NewDatabase(cat)
	g := storage.NewGenerator(opts.Seed)

	for i := 1; i <= nMovies; i++ {
		genre := Genres[g.Intn(len(Genres))]
		if err := db.Insert(Movie, storage.Row{
			catalog.Int(int64(i)),
			catalog.String(fmt.Sprintf("Movie %05d", i)),
			catalog.String(genre),
			catalog.String(ClassOf(genre)),
			catalog.Int(g.UniformInt(1950, 2019)),
			catalog.Int(g.UniformInt(10, 2000000)),
		}); err != nil {
			return nil, err
		}
	}
	for i := 1; i <= nCompanies; i++ {
		country := Countries[g.Intn(len(Countries))]
		if err := db.Insert(Company, storage.Row{
			catalog.Int(int64(i)),
			catalog.String(fmt.Sprintf("Company %04d", i)),
			catalog.String(country),
			catalog.String(TierOf(country)),
		}); err != nil {
			return nil, err
		}
	}
	kinds := []string{"production", "distribution", "effects", "finance"}
	for i := 0; i < nMovieCompanies; i++ {
		if err := db.Insert(MovieCompany, storage.Row{
			catalog.Int(g.SkewedInt(int64(nMovies), 1.3)),
			catalog.Int(g.SkewedInt(int64(nCompanies), 1.6)),
			catalog.String(kinds[g.Intn(len(kinds))]),
		}); err != nil {
			return nil, err
		}
	}
	roles := []string{"actor", "actress", "director", "writer", "producer", "composer"}
	for i := 0; i < nCast; i++ {
		if err := db.Insert(CastInfo, storage.Row{
			catalog.Int(g.SkewedInt(int64(nMovies), 1.3)),
			catalog.Int(g.SkewedInt(int64(nPersons), 1.5)),
			catalog.String(roles[g.Intn(len(roles))]),
		}); err != nil {
			return nil, err
		}
	}
	for i := 1; i <= nPersons; i++ {
		gender := "m"
		if g.Bool(0.5) {
			gender = "f"
		}
		if err := db.Insert(Person, storage.Row{
			catalog.Int(int64(i)),
			catalog.String(fmt.Sprintf("Person %05d", i)),
			catalog.String(gender),
		}); err != nil {
			return nil, err
		}
	}

	statOpts := stats.DefaultOptions()
	if !opts.Hazards {
		statOpts.ColumnGroups = ColumnGroups()
	}
	if err := stats.CollectAll(db, statOpts); err != nil {
		return nil, err
	}
	if err := storage.AnalyzeAll(db, storage.AnalyzeOptions{}); err != nil {
		return nil, err
	}

	cfg := db.Catalog.Config
	factPages := db.Pages(MovieCompany) + db.Pages(CastInfo)
	cfg.BufferPoolPages = maxPages(32, factPages/5)
	cfg.SortHeapPages = maxPages(4, factPages/40)
	db.Catalog.Config = cfg
	return db, nil
}

// HazardQueries returns JOB-shaped queries whose scans carry functionally
// dependent predicate pairs on movie (genre, class) and company
// (country, tier).
func (workload) HazardQueries(db *storage.Database, n int) []*sqlparser.Query {
	var out []*sqlparser.Query
	add := func(sql string) {
		q := sqlparser.MustParse(sql)
		q.Name = fmt.Sprintf("JOB.Q%02d", len(out)+1)
		out = append(out, q)
	}
	genre := func(i int) string { return Genres[i%len(Genres)] }
	country := func(i int) string { return Countries[i%len(Countries)] }

	// Single-table FD pairs.
	for i := 0; i < 2; i++ {
		add(fmt.Sprintf(`SELECT m_title, m_year, m_votes FROM movie
			WHERE m_genre = '%s' AND m_class = '%s'`, genre(i), ClassOf(genre(i))))
	}
	// Movie x movie_company x company with FD pairs on both ends.
	for i := 2; i < 4; i++ {
		add(fmt.Sprintf(`SELECT m_title, co_name FROM movie, movie_company, company
			WHERE m_movie_sk = mc_movie_sk AND mc_company_sk = co_company_sk
			AND m_genre = '%s' AND m_class = '%s'
			AND co_country = '%s' AND co_tier = '%s'`,
			genre(i), ClassOf(genre(i)), country(i), TierOf(country(i))))
	}
	// Movie x cast_info x person with the movie-side FD pair.
	for i := 4; i < 6; i++ {
		add(fmt.Sprintf(`SELECT m_title, p_name FROM movie, cast_info, person
			WHERE m_movie_sk = ci_movie_sk AND ci_person_sk = p_person_sk
			AND m_genre = '%s' AND m_class = '%s' AND p_gender = 'f'`,
			genre(i), ClassOf(genre(i))))
	}
	// Company-side FD pair only; the movie side carries an accurate range.
	add(fmt.Sprintf(`SELECT m_title, co_name FROM movie, movie_company, company
		WHERE m_movie_sk = mc_movie_sk AND mc_company_sk = co_company_sk
		AND m_year >= 2000 AND co_country = '%s' AND co_tier = '%s'`,
		country(6), TierOf(country(6))))
	// Control: a single-column predicate both configurations estimate well.
	add(fmt.Sprintf(`SELECT m_title, m_votes FROM movie WHERE m_genre = '%s'`, genre(7)))
	if n > 0 && n < len(out) {
		out = out[:n]
	}
	return out
}

// Learn is the JOB-like remedy: collect column-group statistics over the
// functionally dependent pairs and turn on the estimator's group lookup.
func (workload) Learn(db *storage.Database) (optimizer.Options, error) {
	statOpts := stats.DefaultOptions()
	statOpts.ColumnGroups = ColumnGroups()
	if err := stats.CollectAll(db, statOpts); err != nil {
		return optimizer.Options{}, err
	}
	if err := storage.AnalyzeAll(db, storage.AnalyzeOptions{}); err != nil {
		return optimizer.Options{}, err
	}
	o := optimizer.DefaultOptions()
	o.UseColumnGroups = true
	return o, nil
}

func maxPages(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
