package optimizer

import (
	"fmt"
	"strings"

	"galo/internal/qgm"
	"galo/internal/sqlparser"
)

// Spec describes an explicit plan shape: a binary tree of joins over base
// table accesses. Specs are how the Random Plan Generator (internal/randplan)
// and tests ask the optimizer to cost and materialize a particular plan
// without running enumeration.
type Spec struct {
	// Access is set on leaves.
	Access *AccessSpec
	// Method, Outer, Inner are set on join nodes.
	Method qgm.OpType
	Outer  *Spec
	Inner  *Spec
}

// AccessSpec names a table reference and how to read it.
type AccessSpec struct {
	// Ref is the FROM reference name (alias when present, table name
	// otherwise).
	Ref string
	// Method is OpTBSCAN, OpIXSCAN or OpFETCH; empty means "cheapest".
	Method qgm.OpType
	// Index optionally names the index for index accesses.
	Index string
}

// Leaf returns a leaf spec for the given reference.
func Leaf(ref string) *Spec { return &Spec{Access: &AccessSpec{Ref: ref}} }

// LeafAccess returns a leaf spec with an explicit access method.
func LeafAccess(ref string, method qgm.OpType, index string) *Spec {
	return &Spec{Access: &AccessSpec{Ref: ref, Method: method, Index: index}}
}

// Join returns a join spec node.
func Join(method qgm.OpType, outer, inner *Spec) *Spec {
	return &Spec{Method: method, Outer: outer, Inner: inner}
}

// Refs returns the reference names used by the spec, in-order.
func (s *Spec) Refs() []string {
	if s == nil {
		return nil
	}
	if s.Access != nil {
		return []string{strings.ToUpper(s.Access.Ref)}
	}
	return append(s.Outer.Refs(), s.Inner.Refs()...)
}

// Validate checks the spec covers every FROM reference of the query exactly
// once.
func (s *Spec) Validate(q *sqlparser.Query) error {
	refs := s.Refs()
	seen := map[string]int{}
	for _, r := range refs {
		seen[r]++
	}
	if len(refs) != len(q.From) {
		return fmt.Errorf("optimizer: spec covers %d references, query has %d", len(refs), len(q.From))
	}
	for _, tr := range q.From {
		name := strings.ToUpper(tr.Name())
		if seen[name] != 1 {
			return fmt.Errorf("optimizer: spec must reference %s exactly once (found %d)", name, seen[name])
		}
	}
	return nil
}

// BuildPlan materializes the plan described by the spec for the query,
// costing it with the optimizer's estimator. The resulting plan is annotated
// with estimated cardinalities and costs exactly like an enumerated plan, so
// it can be compared or executed directly.
func (o *Optimizer) BuildPlan(q *sqlparser.Query, spec *Spec) (*qgm.Plan, error) {
	if spec == nil {
		return nil, fmt.Errorf("optimizer: nil plan spec")
	}
	work := q.Clone()
	if err := sqlparser.Resolve(work, o.Cat.Schema); err != nil {
		return nil, err
	}
	report := &Report{}
	o.rewrite(work, report)
	if err := spec.Validate(work); err != nil {
		return nil, err
	}
	quants := o.Quantifiers(work)
	byName := refNameMap(quants)
	quantsByInstance := map[string]*Quantifier{}
	for _, qt := range quants {
		quantsByInstance[qt.Instance] = qt
	}
	cand, err := o.buildSpecCand(work, spec, byName, quantsByInstance)
	if err != nil {
		return nil, err
	}
	root := o.addFinalOperators(work, cand.node)
	plan := qgm.NewPlan(root)
	plan.SQL = work.SQL()
	plan.QueryName = work.Name
	plan.TotalCost = root.EstCost
	plan.EstimatedMillis = root.EstCost
	return plan, nil
}

func (o *Optimizer) buildSpecCand(q *sqlparser.Query, spec *Spec, byName map[string]*Quantifier, quantsByInstance map[string]*Quantifier) (*planCand, error) {
	if spec.Access != nil {
		qt := byName[strings.ToUpper(spec.Access.Ref)]
		if qt == nil {
			return nil, fmt.Errorf("optimizer: spec references unknown table %s", spec.Access.Ref)
		}
		paths := o.accessPaths(q, qt, constraintSet{access: map[string]accessConstraint{}})
		var chosen *accessPath
		for i := range paths {
			p := &paths[i]
			if spec.Access.Method != "" {
				if p.op != spec.Access.Method {
					// Treat IXSCAN/FETCH as interchangeable requests for
					// "index access" as guidelines do.
					wantIdx := spec.Access.Method == qgm.OpIXSCAN || spec.Access.Method == qgm.OpFETCH
					haveIdx := p.usesIndex()
					if !wantIdx || !haveIdx {
						continue
					}
				}
				if spec.Access.Index != "" && !strings.EqualFold(spec.Access.Index, p.indexName) {
					continue
				}
			}
			if chosen == nil || p.cost < chosen.cost {
				chosen = p
			}
		}
		if chosen == nil {
			return nil, fmt.Errorf("optimizer: no access path matches spec %+v for %s", spec.Access, qt.Ref.Name())
		}
		return o.accessCand(qt, *chosen), nil
	}
	if spec.Outer == nil || spec.Inner == nil || !spec.Method.IsJoin() {
		return nil, fmt.Errorf("optimizer: malformed spec node (method=%q)", spec.Method)
	}
	left, err := o.buildSpecCand(q, spec.Outer, byName, quantsByInstance)
	if err != nil {
		return nil, err
	}
	right, err := o.buildSpecCand(q, spec.Inner, byName, quantsByInstance)
	if err != nil {
		return nil, err
	}
	cand := o.buildJoinCand(spec.Method, q, byName, left, right, quantsByInstance)
	if cand == nil {
		return nil, fmt.Errorf("optimizer: %s is not applicable to this input combination", spec.Method)
	}
	return cand, nil
}
