package optimizer

import (
	"math"

	"galo/internal/catalog"
)

// The cost model measures everything in milliseconds-equivalent "timerons":
// sequential page reads cost TransferRate each, random page reads cost
// Overhead each (discounted when the table fits in the buffer pool), and rows
// processed cost CPUSpeed each. Sorts and hash joins that exceed the sort
// heap spill and pay the pages back out and in again. These are the same
// levers DB2's cost model exposes, which is what lets the Figure 7
// transfer-rate problem pattern arise here.

func pagesOf(cfg catalog.SystemConfig, rows float64, rowWidth int) float64 {
	if rowWidth <= 0 {
		rowWidth = 64
	}
	pageSize := float64(cfg.PageSizeBytes)
	if pageSize <= 0 {
		pageSize = 4096
	}
	pages := rows * float64(rowWidth) / pageSize
	if pages < 1 {
		pages = 1
	}
	return pages
}

// tbscanCost is the cost of a full sequential scan of a table.
func tbscanCost(cfg catalog.SystemConfig, tablePages, tableRows float64) float64 {
	return tablePages*cfg.TransferRate + tableRows*cfg.CPUSpeed
}

// ixscanCost is the cost of an index scan matching matchRows of tableRows.
// If fetch is true the base rows must also be fetched, paying random I/O on
// the unclustered fraction; poorly clustered indexes over tables larger than
// the buffer pool are where the Figure 4 "flooding" cost explodes.
func ixscanCost(cfg catalog.SystemConfig, tablePages, tableRows, matchRows float64,
	clusterRatio float64, fetch bool, rowsPerPage float64) float64 {
	if matchRows < 1 {
		matchRows = 1
	}
	leafPages := tableRows / 300
	if leafPages < 1 {
		leafPages = 1
	}
	frac := matchRows / math.Max(tableRows, 1)
	// The B-tree dive pays a full random I/O only when the table (and with it
	// the index) is too big for the buffer pool; a pool-resident index's root
	// and internal pages are cached after the first touch.
	dive := cfg.Overhead
	if tablePages <= float64(cfg.BufferPoolPages) {
		dive = cfg.Overhead * 0.1
	}
	cost := dive + leafPages*frac*cfg.TransferRate + matchRows*cfg.CPUSpeed*0.5
	if fetch {
		if rowsPerPage < 1 {
			rowsPerPage = 1
		}
		clustered := matchRows * clusterRatio
		unclustered := matchRows * (1 - clusterRatio)
		cost += (clustered / rowsPerPage) * cfg.TransferRate
		randomIO := cfg.Overhead
		if tablePages <= float64(cfg.BufferPoolPages) {
			// Table fits in the buffer pool: random reads hit cache after the
			// first pass.
			randomIO = cfg.TransferRate * 0.25
		}
		cost += unclustered * randomIO
		cost += matchRows * cfg.CPUSpeed
	}
	return cost
}

// sortCost is the cost of sorting rows of the given width, including spill
// I/O when the run exceeds the sort heap.
func sortCost(cfg catalog.SystemConfig, rows float64, rowWidth int) float64 {
	if rows < 2 {
		return cfg.CPUSpeed
	}
	cost := rows * math.Log2(rows) * cfg.CPUSpeed
	pages := pagesOf(cfg, rows, rowWidth)
	if pages > float64(cfg.SortHeapPages) {
		// External sort: write and re-read the spilled pages.
		cost += 2 * pages * cfg.TransferRate * 1.5
	}
	return cost
}

// hsjoinCost is the incremental cost of a hash join given already-costed
// inputs: build on the inner (hashing costs 2x the base per-row CPU), probe
// with the outer, emit the result rows, plus spill I/O when the build side
// exceeds the sort heap. A bloom filter discounts probe CPU and the spilled
// outer fraction. The executor charges the identical formula over the actual
// row counts, so plan/runtime divergence comes from cardinality misestimates
// alone.
func hsjoinCost(cfg catalog.SystemConfig, outerRows, innerRows, outRows float64,
	outerWidth, innerWidth int, bloom bool) float64 {
	build := innerRows * cfg.CPUSpeed * 2
	probeFactor := 1.0
	if bloom {
		probeFactor = 0.6
	}
	probe := outerRows * cfg.CPUSpeed * probeFactor
	cost := build + probe + outRows*cfg.CPUSpeed*0.1
	buildPages := pagesOf(cfg, innerRows, innerWidth)
	if buildPages > float64(cfg.SortHeapPages) {
		spill := buildPages
		outerPages := pagesOf(cfg, outerRows, outerWidth)
		if bloom {
			outerPages *= 0.5
		}
		spill += outerPages
		cost += 2 * spill * cfg.TransferRate
	}
	return cost
}

// msjoinCost is the incremental cost of a merge join over two already-sorted
// inputs: a single interleaved pass comparing pre-sorted keys, which is
// cheaper per row (0.5x) than building and probing a hash table. This is why
// a merge join that can claim sort-avoidance through input order properties
// undercuts a hash join at plan time — and why an optimizer that believes the
// sorted inputs are small walks into the Figure 8 trap. The executor charges
// the identical formula over actual row counts.
func msjoinCost(cfg catalog.SystemConfig, outerRows, innerRows, outRows float64) float64 {
	return (outerRows+innerRows)*cfg.CPUSpeed*0.5 + outRows*cfg.CPUSpeed*0.1
}

// nljoinProbeCost is the per-probe cost of re-evaluating the inner input of a
// nested-loop join. For an index access the probe is one index lookup; for a
// scan the probe re-reads the inner (discounted when it fits in the buffer
// pool and is therefore cached after the first pass).
func nljoinProbeCost(cfg catalog.SystemConfig, inner accessPath, innerQ *Quantifier, matchPerProbe float64) float64 {
	if inner.usesIndex() {
		cr := inner.clusterRatio()
		perProbe := cfg.Overhead * 0.5
		if innerQ.Pages <= float64(cfg.BufferPoolPages) {
			perProbe = cfg.TransferRate
		}
		fetchRows := matchPerProbe
		if fetchRows < 1 {
			fetchRows = 1
		}
		randomIO := cfg.Overhead
		if innerQ.Pages <= float64(cfg.BufferPoolPages) {
			randomIO = cfg.TransferRate * 0.25
		}
		return perProbe + fetchRows*(1-cr)*randomIO + fetchRows*cr*cfg.TransferRate/8 + fetchRows*cfg.CPUSpeed
	}
	// Scan probe: first pass reads all pages; later passes are cached when the
	// inner fits in the buffer pool.
	if innerQ.Pages <= float64(cfg.BufferPoolPages) {
		return innerQ.Pages*cfg.TransferRate*0.05 + innerQ.RawCard*cfg.CPUSpeed
	}
	return innerQ.Pages*cfg.TransferRate + innerQ.RawCard*cfg.CPUSpeed
}
